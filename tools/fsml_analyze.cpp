// fsml_analyze — the command-line front end to the detection pipeline.
//
//   fsml_analyze train    [--cache=training.csv] [--out=fsml.tree]
//   fsml_analyze classify --workload=NAME [--model=fsml.tree]
//                         [--input=SET] [--opt=-O2] [--threads=8]
//                         [--slices=25000] [--ground-truth] [--advise]
//   fsml_analyze sweep    --workload=NAME [--model=fsml.tree]
//   fsml_analyze robustness [--noise=0,0.05,0.2] [--counters=0,4,2]
//                         [--drop=0,0.05] [--repeats=5] [--confidence=0.6]
//                         [--out=robustness.json]
//   fsml_analyze triage   [--anomaly=fsml.anomaly] [--demote-below=0.35]
//                         [--out=triage.json] (+ the robustness options)
//   fsml_analyze list
//   fsml_analyze events
//
// `classify` runs one case of a workload proxy on the simulated machine and
// prints the verdict; with --slices it adds the phase timeline, with
// --ground-truth the shadow-memory rate, with --advise the per-line
// mitigation recommendations. `sweep` classifies every (input, opt,
// threads) case and prints the Table-5-style summary for one program.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>

#include "baseline/shadow_detector.hpp"
#include "core/advisor.hpp"
#include "core/detector.hpp"
#include "core/robustness.hpp"
#include "core/slices.hpp"
#include "core/training.hpp"
#include "core/triage.hpp"
#include "fault/fault.hpp"
#include "par/parallel_for.hpp"
#include "par/thread_pool.hpp"
#include "pmu/events.hpp"
#include "serve/drill.hpp"
#include "trainers/trainer.hpp"
#include "util/atomic_file.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/time_format.hpp"
#include "workloads/workload.hpp"

using namespace fsml;

namespace {

int usage() {
  std::printf(
      "usage: fsml_analyze <command> [options]\n"
      "\n"
      "commands:\n"
      "  train     collect mini-program training data and fit the J48 model\n"
      "            --cache=FILE (training data cache, default "
      "fsml_training_cache.csv)\n"
      "            --save-model=FILE (model file, default fsml.tree;\n"
      "                          --out is an alias)\n"
      "            --load-model=FILE (load + verify an existing model file\n"
      "                          instead of training; corrupt or mismatched\n"
      "                          files are rejected with exit 1)\n"
      "            --resume     (continue an interrupted collection from\n"
      "                          CACHE.journal instead of starting over)\n"
      "            --retries=N  (attempts per collection job, default 3)\n"
      "            --reduced    (small grid, ~3 s instead of ~20 s)\n"
      "            --jobs=N     (host threads for collection; default = all\n"
      "                          hardware threads, 1 = serial; any N yields\n"
      "                          bit-identical training data)\n"
      "            --sim-host-threads=N (host threads INSIDE each simulated\n"
      "                          machine: the epoch-parallel scheduler;\n"
      "                          default 1 = serial, any N bit-identical)\n"
      "            --inject-abort-after=N --fault-rate=R --fault-seed=N\n"
      "                         (deterministic fault injection: crash after\n"
      "                          N completed jobs / transient throw rate R;\n"
      "                          used by the CI crash-resume smoke test)\n"
      "            --save-anomaly=FILE (also fit the zero-positive anomaly\n"
      "                          model on the good rows and persist it)\n"
      "  classify  classify one case of a benchmark proxy\n"
      "            --workload=NAME --input=SET --opt=-O2 --threads=8\n"
      "            --model=FILE --load-model=FILE --seed=N\n"
      "            --slices=CYCLES   add a phase timeline\n"
      "            --ground-truth    run the shadow detector too (<=8 "
      "threads)\n"
      "            --advise          print mitigation recommendations\n"
      "  sweep     classify every case of one program (Table-5 style)\n"
      "            --workload=NAME --model=FILE --load-model=FILE --jobs=N\n"
      "  robustness  accuracy-degradation sweep under emulated PMU faults\n"
      "            --noise=L      jitter levels, e.g. 0,0.05,0.2 (each in "
      "[0,1])\n"
      "            --counters=L   programmable-counter counts, e.g. 0,4,2\n"
      "                           (0 = no multiplexing, 4 = Westmere)\n"
      "            --drop=L       event-drop probabilities (each in [0,1])\n"
      "            --repeats=N    measurements per vote (default 5)\n"
      "            --confidence=C abstention threshold (default 0.6)\n"
      "            --seed=N --jobs=N --model=FILE --load-model=FILE "
      "--reduced\n"
      "            --out=FILE     JSON artifact (default robustness.json)\n"
      "  triage    two-stage sweep: stage-1 verdicts re-ranked by the triage\n"
      "            stage (tree confidence + zero-positive anomaly + phase\n"
      "            timeline + run metadata); low-priority alarms demote to\n"
      "            unknown\n"
      "            --anomaly=FILE       zero-positive model (default\n"
      "                                 fsml.anomaly; fitted from reduced\n"
      "                                 training data when missing)\n"
      "            --load-anomaly=FILE  strict load (corrupt file = exit 1)\n"
      "            --demote-below=P     demotion cutoff (default 0.35)\n"
      "            --out=FILE           JSON artifact (default triage.json)\n"
      "            (plus every robustness option above)\n"
      "  serve     run one seeded chaos drill against the streaming\n"
      "            detection service (src/serve) and print its scorecard\n"
      "            --sessions=N      drill clients (default 48, 1..100000)\n"
      "            --queue-depth=N   bounded ring capacity (default 256)\n"
      "            --max-sessions=N  concurrent session cap (default 1024)\n"
      "            --deadline=N      per-session deadline, virtual steps\n"
      "                              (default 96; 0 disables)\n"
      "            --idle-timeout=N  idle expiry, virtual steps (default 24)\n"
      "            --service-rate=N  batches processed per tick (default 4)\n"
      "            --malformed=R --cancel=R     client misbehaviour rates\n"
      "            --stall-rate=R --overflow-rate=R --throw-rate=R\n"
      "                              injected chaos (see src/fault)\n"
      "            --seed=N --jobs=N --model=FILE --load-model=FILE\n"
      "            --out=FILE        JSON artifact (default empty: none)\n"
      "  list      available workloads and mini-programs\n"
      "  events    the modelled Westmere event table (paper Table 2)\n");
  return 2;
}

std::size_t cli_jobs(const util::Cli& cli) {
  const std::int64_t jobs = cli.get_int("jobs", 0);
  if (jobs < 0 || jobs > 4096)
    throw std::runtime_error("option --jobs expects 0..4096, got " +
                             std::to_string(jobs));
  return jobs == 0 ? par::ThreadPool::hardware_workers()
                   : static_cast<std::size_t>(jobs);
}

std::uint32_t cli_sim_host_threads(const util::Cli& cli) {
  const std::int64_t n = cli.get_int("sim-host-threads", 1);
  if (n < 1 || n > 1024)
    throw std::runtime_error(
        "option --sim-host-threads expects 1..1024, got " + std::to_string(n));
  return static_cast<std::uint32_t>(n);
}

core::FalseSharingDetector load_or_train(const util::Cli& cli) {
  // --load-model is strict: a missing, corrupt, or schema-mismatched file
  // is a hard error (exit 1 via main's catch), never silently retrained
  // around — the operator asked for *that* model.
  const std::string strict = cli.get("load-model", "");
  if (!strict.empty()) {
    std::fprintf(stderr, "loading model %s\n", strict.c_str());
    return core::FalseSharingDetector::load_file(strict);
  }
  const std::string model_path = cli.get("model", "fsml.tree");
  if (static_cast<bool>(std::ifstream(model_path))) {
    std::fprintf(stderr, "loading model %s\n", model_path.c_str());
    return core::FalseSharingDetector::load_file(model_path);
  }
  std::fprintf(stderr, "no model at %s — training (use `fsml_analyze train` "
                       "to persist one)\n",
               model_path.c_str());
  core::TrainingConfig config = core::TrainingConfig::reduced();
  config.jobs = cli_jobs(cli);
  core::FalseSharingDetector detector;
  detector.train(core::collect_training_data(config));
  return detector;
}

int cmd_train(const util::Cli& cli) {
  const std::string verify = cli.get("load-model", "");
  if (!verify.empty()) {
    // Verification mode: prove the artifact loads (magic, version, CRC,
    // feature schema) and show what is inside. No training happens.
    const auto detector = core::FalseSharingDetector::load_file(verify);
    std::printf("model %s is valid\n\n%s", verify.c_str(),
                detector.model().describe().c_str());
    return 0;
  }

  core::TrainingConfig config;
  if (cli.get_bool("reduced", false)) config = core::TrainingConfig::reduced();
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  config.jobs = cli_jobs(cli);
  config.sim_host_threads = cli_sim_host_threads(cli);

  core::CollectOptions options;
  options.resume = cli.get_bool("resume", false);
  options.supervision.max_attempts =
      static_cast<int>(cli.get_int_in("retries", 3, 1, 100));

  // Deterministic fault injection (CI crash-resume smoke, failure drills).
  fault::FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 0));
  plan.throw_rate = cli.get_double_in("fault-rate", 0.0, 0.0, 1.0);
  plan.abort_after =
      static_cast<std::uint64_t>(cli.get_int("inject-abort-after", 0));
  fault::FaultInjector injector(plan);
  if (plan.any()) options.injector = &injector;

  core::CollectReport report;
  const core::TrainingData data =
      core::collect_or_load(config, cli.get("cache", "fsml_training_cache.csv"),
                            &std::cerr, options, &report);
  core::FalseSharingDetector detector;
  detector.train(data);
  const std::string out = cli.get("save-model", cli.get("out", "fsml.tree"));
  detector.save_file(out);
  const std::string anomaly_out = cli.get("save-anomaly", "");
  if (!anomaly_out.empty()) {
    const ml::ZeroPositiveModel anomaly = core::fit_zero_positive(data);
    anomaly.save_file(anomaly_out);
    std::printf("anomaly model -> %s (%s)\n", anomaly_out.c_str(),
                anomaly.describe().c_str());
  }
  if (!report.quarantined.empty())
    std::fprintf(stderr,
                 "warning: %zu collection cell(s) quarantined; the model was "
                 "trained without them\n",
                 report.quarantined.size());
  std::printf("trained on %zu instances; model -> %s\n\n%s",
              data.instances.size(), out.c_str(),
              detector.model().describe().c_str());
  return 0;
}

int cmd_classify(const util::Cli& cli) {
  const std::string name = cli.get("workload", "");
  if (name.empty()) return usage();
  const auto& w = workloads::find_workload(name);

  workloads::WorkloadCase wcase;
  wcase.input = cli.get("input", w.input_sets()[0]);
  wcase.opt = workloads::opt_from_string(cli.get("opt", "-O2"));
  wcase.threads = static_cast<std::uint32_t>(cli.get_int("threads", 8));
  wcase.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const auto slice = static_cast<sim::Cycles>(cli.get_int("slices", 0));
  const bool ground_truth = cli.get_bool("ground-truth", false);
  const bool advise = cli.get_bool("advise", false);

  const core::FalseSharingDetector detector = load_or_train(cli);

  sim::MachineConfig config = sim::MachineConfig::westmere_dp(12);
  config.num_cores = wcase.threads;
  exec::Machine machine(config, wcase.seed);
  if (slice > 0) machine.enable_slicing(slice);
  baseline::ShadowDetector shadow(
      ground_truth || advise ? wcase.threads : 1);
  if (ground_truth || advise) machine.memory().add_observer(&shadow);
  w.build(machine, wcase);
  const exec::RunResult result = machine.run();
  const auto features = pmu::FeatureVector::normalize(
      pmu::CounterSnapshot::from_raw(result.aggregate));
  const trainers::Mode verdict = detector.classify(features);

  std::printf("%s %s %s T=%u seed=%llu\n", name.c_str(), wcase.input.c_str(),
              std::string(to_string(wcase.opt)).c_str(), wcase.threads,
              static_cast<unsigned long long>(wcase.seed));
  std::printf("  verdict      : %s\n",
              std::string(trainers::to_string(verdict)).c_str());
  std::printf("  time         : %s   instructions: %llu\n",
              util::auto_time(result.seconds).c_str(),
              static_cast<unsigned long long>(result.instructions));
  std::printf("  HITM/instr   : %.3e\n",
              features.get(pmu::WestmereEvent::kSnoopResponseHitM));
  if (slice > 0) {
    const auto report = core::analyze_slices(detector, result);
    std::printf("  timeline     : %s\n", report.timeline().c_str());
    const auto ranges = report.bad_fs_ranges();
    if (!ranges.empty())
      std::printf("  worst FS span: slices %zu..%zu\n", ranges.front().first,
                  ranges.front().last);
  }
  if (ground_truth || advise) {
    const auto sharing = shadow.report();
    std::printf("  ground truth : rate %.3e -> %s\n",
                sharing.false_sharing_rate(),
                sharing.has_false_sharing() ? "false sharing" : "clean");
    if (advise)
      std::printf("%s",
                  core::advise(sharing, machine.arena()).to_string().c_str());
  }
  return verdict == trainers::Mode::kGood ? 0 : 1;
}

int cmd_sweep(const util::Cli& cli) {
  const std::string name = cli.get("workload", "");
  if (name.empty()) return usage();
  const auto& w = workloads::find_workload(name);
  const core::FalseSharingDetector detector = load_or_train(cli);
  const auto machine = sim::MachineConfig::westmere_dp(12);

  // Enumerate the case grid, then run the simulations on the host pool;
  // parallel_transform keeps the table in grid order regardless of which
  // case finishes first.
  std::vector<workloads::WorkloadCase> cases;
  for (const std::string& input : w.input_sets())
    for (const workloads::OptLevel opt : w.opt_levels())
      for (const std::uint32_t t : {4u, 8u, 12u})
        cases.push_back({input, opt, t,
                         static_cast<std::uint64_t>(cli.get_int("seed", 7))});

  par::ThreadPool pool(cli_jobs(cli) - 1);
  struct CaseResult {
    double seconds = 0.0;
    trainers::Mode verdict = trainers::Mode::kGood;
  };
  const std::vector<CaseResult> results = par::parallel_transform(
      pool, cases, [&](const workloads::WorkloadCase& wcase) {
        const auto run = run_workload(w, wcase, machine);
        return CaseResult{run.seconds, detector.classify(run.features)};
      });

  util::Table table({"input", "opt", "T", "time", "verdict"});
  std::vector<trainers::Mode> verdicts;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    verdicts.push_back(results[i].verdict);
    table.add_row({cases[i].input, std::string(to_string(cases[i].opt)),
                   std::to_string(cases[i].threads),
                   util::auto_time(results[i].seconds),
                   std::string(trainers::to_string(results[i].verdict))});
  }
  table.render(std::cout);
  std::printf("overall (majority): %s\n",
              std::string(trainers::to_string(
                  core::FalseSharingDetector::majority(verdicts)))
                  .c_str());
  return 0;
}

core::RobustnessConfig sweep_config_from_cli(const util::Cli& cli) {
  core::RobustnessConfig config;
  config.jitters = cli.get_double_list("noise", config.jitters, 0.0, 1.0);
  const std::vector<std::int64_t> counters = cli.get_int_list(
      "counters", {0, 8, 4, 2}, 0,
      static_cast<std::int64_t>(pmu::kNumWestmereEvents));
  config.counter_groups.assign(counters.begin(), counters.end());
  config.drops = cli.get_double_list("drop", config.drops, 0.0, 1.0);
  config.repeats = static_cast<int>(cli.get_int_in("repeats", 5, 1, 1001));
  config.min_confidence = cli.get_double_in("confidence", 0.6, 0.0, 1.0);
  config.seed = static_cast<std::uint64_t>(
      cli.get_int_in("seed", 42, 0, std::numeric_limits<std::int64_t>::max()));
  config.jobs = cli_jobs(cli);
  config.reduced = cli.get_bool("reduced", false);
  return config;
}

int cmd_robustness(const util::Cli& cli) {
  const core::RobustnessConfig config = sweep_config_from_cli(cli);
  const core::FalseSharingDetector detector = load_or_train(cli);
  const core::RobustnessReport report =
      core::evaluate_robustness(detector, config, &std::cerr);

  const std::string out = cli.get("out", "robustness.json");
  util::AtomicFile artifact(out);  // never leaves a torn JSON behind
  report.write_json(artifact.stream());
  artifact.commit();

  std::printf("baseline: %zu/%zu correct\n", report.baseline.correct,
              report.baseline.runs);
  util::Table table(
      {"noise", "counters", "drop", "coverage", "accuracy", "false-pos"});
  for (const core::RobustnessPoint& p : report.points) {
    char noise[16], drop[16], coverage[16], accuracy[16];
    std::snprintf(noise, sizeof noise, "%.2f", p.jitter);
    std::snprintf(drop, sizeof drop, "%.2f", p.drop);
    std::snprintf(coverage, sizeof coverage, "%.2f", p.coverage());
    std::snprintf(accuracy, sizeof accuracy, "%.2f", p.accuracy());
    table.add_row({noise,
                   p.counters == 0 ? "all" : std::to_string(p.counters), drop,
                   coverage, accuracy, std::to_string(p.false_positives)});
  }
  table.render(std::cout);
  std::printf("artifact -> %s\n", out.c_str());
  return 0;
}

ml::ZeroPositiveModel load_or_fit_anomaly(const util::Cli& cli) {
  const std::string strict = cli.get("load-anomaly", "");
  if (!strict.empty()) {
    std::fprintf(stderr, "loading anomaly model %s\n", strict.c_str());
    return ml::ZeroPositiveModel::load_file(strict);
  }
  const std::string path = cli.get("anomaly", "fsml.anomaly");
  if (static_cast<bool>(std::ifstream(path))) {
    std::fprintf(stderr, "loading anomaly model %s\n", path.c_str());
    return ml::ZeroPositiveModel::load_file(path);
  }
  std::fprintf(stderr,
               "no anomaly model at %s — fitting from reduced training data "
               "(use `fsml_analyze train --save-anomaly=%s` to persist one)\n",
               path.c_str(), path.c_str());
  core::TrainingConfig config = core::TrainingConfig::reduced();
  config.jobs = cli_jobs(cli);
  return core::fit_zero_positive(core::collect_training_data(config));
}

int cmd_triage(const util::Cli& cli) {
  core::TriageConfig config;
  config.sweep = sweep_config_from_cli(cli);
  config.weights.demote_below =
      cli.get_double_in("demote-below", config.weights.demote_below, 0.0, 1.0);

  const core::FalseSharingDetector detector = load_or_train(cli);
  core::TriageStage stage(config.weights);
  stage.set_anomaly_model(load_or_fit_anomaly(cli));

  const core::TriageReport report =
      core::evaluate_triage(detector, stage, config, &std::cerr);

  const std::string out = cli.get("out", "triage.json");
  util::AtomicFile artifact(out);  // never leaves a torn JSON behind
  report.write_json(artifact.stream());
  artifact.commit();

  std::printf("zero-positive: flagged %zu/%zu bad runs, %zu/%zu good runs\n",
              report.flagged_bad, report.bad_runs, report.flagged_good,
              report.good_runs);
  util::Table table({"noise", "counters", "drop", "fp s1", "fp s2", "demoted",
                     "precision", "recall", "abstain"});
  for (const core::TriageCell& c : report.cells) {
    char noise[16], drop[16], precision[16], recall[16], abstain[16];
    std::snprintf(noise, sizeof noise, "%.2f", c.jitter);
    std::snprintf(drop, sizeof drop, "%.2f", c.drop);
    std::snprintf(precision, sizeof precision, "%.2f", c.stage2.precision());
    std::snprintf(recall, sizeof recall, "%.2f",
                  c.stage2.recall(report.bad_runs));
    std::snprintf(abstain, sizeof abstain, "%.2f",
                  c.stage2.abstention(report.runs));
    table.add_row({noise,
                   c.counters == 0 ? "all" : std::to_string(c.counters), drop,
                   std::to_string(c.stage1.false_alarms),
                   std::to_string(c.stage2.false_alarms),
                   std::to_string(c.demoted), precision, recall, abstain});
  }
  table.render(std::cout);
  std::printf("artifact -> %s\n", out.c_str());
  return 0;
}

int cmd_serve(const util::Cli& cli) {
  // Every numeric flag goes through the validated get_*_in getters: an
  // out-of-range --queue-depth is an actionable error at the CLI boundary,
  // not a logic_error deep inside the ring.
  serve::DrillConfig config;
  config.sessions = static_cast<std::size_t>(
      cli.get_int_in("sessions", 48, 1, 100000));
  config.server.queue_depth = static_cast<std::size_t>(
      cli.get_int_in("queue-depth", 256, 1, 1 << 20));
  config.server.max_sessions = static_cast<std::size_t>(
      cli.get_int_in("max-sessions", 1024, 1, 1 << 24));
  config.server.deadline_steps = static_cast<std::uint64_t>(
      cli.get_int_in("deadline", 96, 0, 1000000000));
  config.server.idle_timeout_steps = static_cast<std::uint64_t>(
      cli.get_int_in("idle-timeout", 24, 0, 1000000000));
  config.service_rate = static_cast<std::size_t>(
      cli.get_int_in("service-rate", 4, 1, 100000));
  // --flat=0 runs the vote loop on the pointer-tree reference instead of
  // the compiled flat kernel; verdicts are bit-identical either way.
  config.server.robust.use_flat_tree = cli.get_bool("flat", true);
  config.malformed_rate = cli.get_double_in("malformed", 0.0, 0.0, 1.0);
  config.cancel_rate = cli.get_double_in("cancel", 0.0, 0.0, 1.0);
  config.faults.stall_rate = cli.get_double_in("stall-rate", 0.0, 0.0, 1.0);
  config.faults.overflow_rate =
      cli.get_double_in("overflow-rate", 0.0, 0.0, 1.0);
  config.faults.throw_rate = cli.get_double_in("throw-rate", 0.0, 0.0, 1.0);
  config.faults.throw_attempts = 3;
  config.seed = static_cast<std::uint64_t>(
      cli.get_int_in("seed", 42, 0, std::numeric_limits<std::int64_t>::max()));
  config.faults.seed = config.seed;
  config.server.seed = config.seed;
  config.jobs = cli_jobs(cli);
  config.validate();

  const core::FalseSharingDetector detector = load_or_train(cli);
  const std::vector<core::EvalRun> templates =
      serve::drill_templates(config.seed, config.jobs, &std::cerr);
  const serve::DrillReport report =
      serve::run_drill(detector, templates, config, &std::cerr);

  std::printf("drill: %zu sessions, %llu admitted, %llu turned away\n",
              report.sessions,
              static_cast<unsigned long long>(report.admitted),
              static_cast<unsigned long long>(report.turned_away));
  util::Table table({"outcome", "count"});
  table.set_align(1, util::Align::kRight);
  table.add_row({"verdict", std::to_string(report.verdicts)});
  table.add_row({"  correct", std::to_string(report.correct)});
  table.add_row({"  false positives", std::to_string(report.false_positives)});
  table.add_row({"abstained", std::to_string(report.abstained)});
  table.add_row({"shed", std::to_string(report.shed)});
  table.add_row({"quarantined", std::to_string(report.quarantined)});
  table.add_row({"expired", std::to_string(report.expired)});
  table.add_row({"cancelled", std::to_string(report.cancelled)});
  table.add_row({"lost", std::to_string(report.lost_sessions)});
  table.render(std::cout);
  std::printf("p50/p99 latency: %llu/%llu steps, shed rate %.2f, "
              "fingerprint %08x\n",
              static_cast<unsigned long long>(report.latency_p50_steps),
              static_cast<unsigned long long>(report.latency_p99_steps),
              report.shed_rate, report.fingerprint);
  std::printf("health: %s\n", report.health.to_string().c_str());

  const std::string out = cli.get("out", "");
  if (!out.empty()) {
    util::AtomicFile artifact(out);  // never leaves a torn JSON behind
    artifact.stream() << "{\n  \"schema\": \"fsml-bench-serve-v2\",\n"
                      << "  \"seed\": " << config.seed << ",\n"
                      << "  \"sessions\": " << config.sessions << ",\n"
                      << "  \"scenarios\": [\n";
    report.write_json(artifact.stream(), "cli", config);
    artifact.stream() << "\n  ]\n}\n";
    artifact.commit();
    std::printf("artifact -> %s\n", out.c_str());
  }
  return report.lost_sessions == 0 && report.false_positives == 0 ? 0 : 1;
}

int cmd_list() {
  std::printf("benchmark workload proxies:\n");
  for (const auto* w : workloads::all_workloads()) {
    std::printf("  %-18s (%s; inputs:", std::string(w->name()).c_str(),
                std::string(to_string(w->suite())).c_str());
    for (const auto& input : w->input_sets())
      std::printf(" %s", input.c_str());
    std::printf(")\n");
  }
  std::printf("\ntraining mini-programs:\n");
  for (const auto* p : trainers::all_programs())
    std::printf("  %-14s %s — %s\n", std::string(p->name()).c_str(),
                p->multithreaded() ? "(mt) " : "(seq)",
                std::string(p->description()).c_str());
  return 0;
}

int cmd_events() {
  util::Table table({"#", "event", "code", "umask", "simulator source"});
  int n = 1;
  for (const pmu::EventInfo& info : pmu::westmere_event_table()) {
    char code[8], umask[8];
    std::snprintf(code, sizeof code, "%02X", info.event_code);
    std::snprintf(umask, sizeof umask, "%02X", info.umask);
    table.add_row({std::to_string(n++), std::string(info.name), code, umask,
                   std::string(sim::raw_event_name(info.raw))});
  }
  table.render(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.positional().empty()) return usage();
  const std::string command = cli.positional()[0];
  try {
    if (command == "train") return cmd_train(cli);
    if (command == "classify") return cmd_classify(cli);
    if (command == "sweep") return cmd_sweep(cli);
    if (command == "robustness") return cmd_robustness(cli);
    if (command == "triage") return cmd_triage(cli);
    if (command == "serve") return cmd_serve(cli);
    if (command == "list") return cmd_list();
    if (command == "events") return cmd_events();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
