file(REMOVE_RECURSE
  "CMakeFiles/fsml_baseline.dir/epoch_detector.cpp.o"
  "CMakeFiles/fsml_baseline.dir/epoch_detector.cpp.o.d"
  "CMakeFiles/fsml_baseline.dir/shadow_detector.cpp.o"
  "CMakeFiles/fsml_baseline.dir/shadow_detector.cpp.o.d"
  "libfsml_baseline.a"
  "libfsml_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsml_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
