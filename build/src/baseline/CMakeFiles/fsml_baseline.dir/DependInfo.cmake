
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/epoch_detector.cpp" "src/baseline/CMakeFiles/fsml_baseline.dir/epoch_detector.cpp.o" "gcc" "src/baseline/CMakeFiles/fsml_baseline.dir/epoch_detector.cpp.o.d"
  "/root/repo/src/baseline/shadow_detector.cpp" "src/baseline/CMakeFiles/fsml_baseline.dir/shadow_detector.cpp.o" "gcc" "src/baseline/CMakeFiles/fsml_baseline.dir/shadow_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fsml_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fsml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
