file(REMOVE_RECURSE
  "libfsml_baseline.a"
)
