# Empty compiler generated dependencies file for fsml_baseline.
# This may be replaced when dependencies are built.
