# Empty dependencies file for fsml_ml.
# This may be replaced when dependencies are built.
