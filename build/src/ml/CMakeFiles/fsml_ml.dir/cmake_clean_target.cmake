file(REMOVE_RECURSE
  "libfsml_ml.a"
)
