
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/c45.cpp" "src/ml/CMakeFiles/fsml_ml.dir/c45.cpp.o" "gcc" "src/ml/CMakeFiles/fsml_ml.dir/c45.cpp.o.d"
  "/root/repo/src/ml/classifier.cpp" "src/ml/CMakeFiles/fsml_ml.dir/classifier.cpp.o" "gcc" "src/ml/CMakeFiles/fsml_ml.dir/classifier.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/fsml_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/fsml_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/eval.cpp" "src/ml/CMakeFiles/fsml_ml.dir/eval.cpp.o" "gcc" "src/ml/CMakeFiles/fsml_ml.dir/eval.cpp.o.d"
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/fsml_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/fsml_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/io.cpp" "src/ml/CMakeFiles/fsml_ml.dir/io.cpp.o" "gcc" "src/ml/CMakeFiles/fsml_ml.dir/io.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/fsml_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/fsml_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/ml/CMakeFiles/fsml_ml.dir/naive_bayes.cpp.o" "gcc" "src/ml/CMakeFiles/fsml_ml.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/simple.cpp" "src/ml/CMakeFiles/fsml_ml.dir/simple.cpp.o" "gcc" "src/ml/CMakeFiles/fsml_ml.dir/simple.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fsml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
