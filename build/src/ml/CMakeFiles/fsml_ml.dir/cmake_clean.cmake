file(REMOVE_RECURSE
  "CMakeFiles/fsml_ml.dir/c45.cpp.o"
  "CMakeFiles/fsml_ml.dir/c45.cpp.o.d"
  "CMakeFiles/fsml_ml.dir/classifier.cpp.o"
  "CMakeFiles/fsml_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/fsml_ml.dir/dataset.cpp.o"
  "CMakeFiles/fsml_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/fsml_ml.dir/eval.cpp.o"
  "CMakeFiles/fsml_ml.dir/eval.cpp.o.d"
  "CMakeFiles/fsml_ml.dir/forest.cpp.o"
  "CMakeFiles/fsml_ml.dir/forest.cpp.o.d"
  "CMakeFiles/fsml_ml.dir/io.cpp.o"
  "CMakeFiles/fsml_ml.dir/io.cpp.o.d"
  "CMakeFiles/fsml_ml.dir/knn.cpp.o"
  "CMakeFiles/fsml_ml.dir/knn.cpp.o.d"
  "CMakeFiles/fsml_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/fsml_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/fsml_ml.dir/simple.cpp.o"
  "CMakeFiles/fsml_ml.dir/simple.cpp.o.d"
  "libfsml_ml.a"
  "libfsml_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsml_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
