# Empty compiler generated dependencies file for fsml_core.
# This may be replaced when dependencies are built.
