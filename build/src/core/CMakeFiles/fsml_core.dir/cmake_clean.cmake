file(REMOVE_RECURSE
  "CMakeFiles/fsml_core.dir/advisor.cpp.o"
  "CMakeFiles/fsml_core.dir/advisor.cpp.o.d"
  "CMakeFiles/fsml_core.dir/detector.cpp.o"
  "CMakeFiles/fsml_core.dir/detector.cpp.o.d"
  "CMakeFiles/fsml_core.dir/event_selection.cpp.o"
  "CMakeFiles/fsml_core.dir/event_selection.cpp.o.d"
  "CMakeFiles/fsml_core.dir/slices.cpp.o"
  "CMakeFiles/fsml_core.dir/slices.cpp.o.d"
  "CMakeFiles/fsml_core.dir/training.cpp.o"
  "CMakeFiles/fsml_core.dir/training.cpp.o.d"
  "libfsml_core.a"
  "libfsml_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsml_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
