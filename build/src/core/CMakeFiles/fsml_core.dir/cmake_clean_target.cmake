file(REMOVE_RECURSE
  "libfsml_core.a"
)
