file(REMOVE_RECURSE
  "libfsml_workloads.a"
)
