file(REMOVE_RECURSE
  "CMakeFiles/fsml_workloads.dir/parsec.cpp.o"
  "CMakeFiles/fsml_workloads.dir/parsec.cpp.o.d"
  "CMakeFiles/fsml_workloads.dir/phoenix.cpp.o"
  "CMakeFiles/fsml_workloads.dir/phoenix.cpp.o.d"
  "CMakeFiles/fsml_workloads.dir/workload.cpp.o"
  "CMakeFiles/fsml_workloads.dir/workload.cpp.o.d"
  "libfsml_workloads.a"
  "libfsml_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsml_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
