# Empty compiler generated dependencies file for fsml_workloads.
# This may be replaced when dependencies are built.
