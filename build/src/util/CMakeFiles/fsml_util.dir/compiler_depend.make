# Empty compiler generated dependencies file for fsml_util.
# This may be replaced when dependencies are built.
