file(REMOVE_RECURSE
  "libfsml_util.a"
)
