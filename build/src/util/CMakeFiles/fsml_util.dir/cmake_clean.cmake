file(REMOVE_RECURSE
  "CMakeFiles/fsml_util.dir/cli.cpp.o"
  "CMakeFiles/fsml_util.dir/cli.cpp.o.d"
  "CMakeFiles/fsml_util.dir/stats.cpp.o"
  "CMakeFiles/fsml_util.dir/stats.cpp.o.d"
  "CMakeFiles/fsml_util.dir/table.cpp.o"
  "CMakeFiles/fsml_util.dir/table.cpp.o.d"
  "CMakeFiles/fsml_util.dir/time_format.cpp.o"
  "CMakeFiles/fsml_util.dir/time_format.cpp.o.d"
  "libfsml_util.a"
  "libfsml_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsml_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
