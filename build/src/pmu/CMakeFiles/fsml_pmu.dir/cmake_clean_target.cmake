file(REMOVE_RECURSE
  "libfsml_pmu.a"
)
