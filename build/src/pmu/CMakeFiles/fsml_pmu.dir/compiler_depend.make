# Empty compiler generated dependencies file for fsml_pmu.
# This may be replaced when dependencies are built.
