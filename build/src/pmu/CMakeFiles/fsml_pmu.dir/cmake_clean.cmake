file(REMOVE_RECURSE
  "CMakeFiles/fsml_pmu.dir/counters.cpp.o"
  "CMakeFiles/fsml_pmu.dir/counters.cpp.o.d"
  "CMakeFiles/fsml_pmu.dir/events.cpp.o"
  "CMakeFiles/fsml_pmu.dir/events.cpp.o.d"
  "CMakeFiles/fsml_pmu.dir/perf_backend.cpp.o"
  "CMakeFiles/fsml_pmu.dir/perf_backend.cpp.o.d"
  "libfsml_pmu.a"
  "libfsml_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsml_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
