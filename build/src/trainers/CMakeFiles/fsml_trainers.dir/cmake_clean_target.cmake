file(REMOVE_RECURSE
  "libfsml_trainers.a"
)
