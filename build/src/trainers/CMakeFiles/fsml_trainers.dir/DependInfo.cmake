
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trainers/matrix_programs.cpp" "src/trainers/CMakeFiles/fsml_trainers.dir/matrix_programs.cpp.o" "gcc" "src/trainers/CMakeFiles/fsml_trainers.dir/matrix_programs.cpp.o.d"
  "/root/repo/src/trainers/registry.cpp" "src/trainers/CMakeFiles/fsml_trainers.dir/registry.cpp.o" "gcc" "src/trainers/CMakeFiles/fsml_trainers.dir/registry.cpp.o.d"
  "/root/repo/src/trainers/scalar_programs.cpp" "src/trainers/CMakeFiles/fsml_trainers.dir/scalar_programs.cpp.o" "gcc" "src/trainers/CMakeFiles/fsml_trainers.dir/scalar_programs.cpp.o.d"
  "/root/repo/src/trainers/sequential_programs.cpp" "src/trainers/CMakeFiles/fsml_trainers.dir/sequential_programs.cpp.o" "gcc" "src/trainers/CMakeFiles/fsml_trainers.dir/sequential_programs.cpp.o.d"
  "/root/repo/src/trainers/vector_programs.cpp" "src/trainers/CMakeFiles/fsml_trainers.dir/vector_programs.cpp.o" "gcc" "src/trainers/CMakeFiles/fsml_trainers.dir/vector_programs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/fsml_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/fsml_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsml_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fsml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
