# Empty dependencies file for fsml_trainers.
# This may be replaced when dependencies are built.
