file(REMOVE_RECURSE
  "CMakeFiles/fsml_trainers.dir/matrix_programs.cpp.o"
  "CMakeFiles/fsml_trainers.dir/matrix_programs.cpp.o.d"
  "CMakeFiles/fsml_trainers.dir/registry.cpp.o"
  "CMakeFiles/fsml_trainers.dir/registry.cpp.o.d"
  "CMakeFiles/fsml_trainers.dir/scalar_programs.cpp.o"
  "CMakeFiles/fsml_trainers.dir/scalar_programs.cpp.o.d"
  "CMakeFiles/fsml_trainers.dir/sequential_programs.cpp.o"
  "CMakeFiles/fsml_trainers.dir/sequential_programs.cpp.o.d"
  "CMakeFiles/fsml_trainers.dir/vector_programs.cpp.o"
  "CMakeFiles/fsml_trainers.dir/vector_programs.cpp.o.d"
  "libfsml_trainers.a"
  "libfsml_trainers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsml_trainers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
