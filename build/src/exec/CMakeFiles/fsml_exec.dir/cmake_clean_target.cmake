file(REMOVE_RECURSE
  "libfsml_exec.a"
)
