# Empty compiler generated dependencies file for fsml_exec.
# This may be replaced when dependencies are built.
