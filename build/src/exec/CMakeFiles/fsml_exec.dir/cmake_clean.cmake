file(REMOVE_RECURSE
  "CMakeFiles/fsml_exec.dir/arena.cpp.o"
  "CMakeFiles/fsml_exec.dir/arena.cpp.o.d"
  "CMakeFiles/fsml_exec.dir/machine.cpp.o"
  "CMakeFiles/fsml_exec.dir/machine.cpp.o.d"
  "CMakeFiles/fsml_exec.dir/sync.cpp.o"
  "CMakeFiles/fsml_exec.dir/sync.cpp.o.d"
  "libfsml_exec.a"
  "libfsml_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsml_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
