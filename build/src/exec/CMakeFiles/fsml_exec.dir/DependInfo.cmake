
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/arena.cpp" "src/exec/CMakeFiles/fsml_exec.dir/arena.cpp.o" "gcc" "src/exec/CMakeFiles/fsml_exec.dir/arena.cpp.o.d"
  "/root/repo/src/exec/machine.cpp" "src/exec/CMakeFiles/fsml_exec.dir/machine.cpp.o" "gcc" "src/exec/CMakeFiles/fsml_exec.dir/machine.cpp.o.d"
  "/root/repo/src/exec/sync.cpp" "src/exec/CMakeFiles/fsml_exec.dir/sync.cpp.o" "gcc" "src/exec/CMakeFiles/fsml_exec.dir/sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fsml_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fsml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
