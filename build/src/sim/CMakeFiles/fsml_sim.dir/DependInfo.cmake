
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/fsml_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/fsml_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/machine_config.cpp" "src/sim/CMakeFiles/fsml_sim.dir/machine_config.cpp.o" "gcc" "src/sim/CMakeFiles/fsml_sim.dir/machine_config.cpp.o.d"
  "/root/repo/src/sim/memory_system.cpp" "src/sim/CMakeFiles/fsml_sim.dir/memory_system.cpp.o" "gcc" "src/sim/CMakeFiles/fsml_sim.dir/memory_system.cpp.o.d"
  "/root/repo/src/sim/raw_events.cpp" "src/sim/CMakeFiles/fsml_sim.dir/raw_events.cpp.o" "gcc" "src/sim/CMakeFiles/fsml_sim.dir/raw_events.cpp.o.d"
  "/root/repo/src/sim/tlb.cpp" "src/sim/CMakeFiles/fsml_sim.dir/tlb.cpp.o" "gcc" "src/sim/CMakeFiles/fsml_sim.dir/tlb.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/fsml_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/fsml_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fsml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
