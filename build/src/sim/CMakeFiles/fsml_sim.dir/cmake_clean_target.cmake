file(REMOVE_RECURSE
  "libfsml_sim.a"
)
