file(REMOVE_RECURSE
  "CMakeFiles/fsml_sim.dir/cache.cpp.o"
  "CMakeFiles/fsml_sim.dir/cache.cpp.o.d"
  "CMakeFiles/fsml_sim.dir/machine_config.cpp.o"
  "CMakeFiles/fsml_sim.dir/machine_config.cpp.o.d"
  "CMakeFiles/fsml_sim.dir/memory_system.cpp.o"
  "CMakeFiles/fsml_sim.dir/memory_system.cpp.o.d"
  "CMakeFiles/fsml_sim.dir/raw_events.cpp.o"
  "CMakeFiles/fsml_sim.dir/raw_events.cpp.o.d"
  "CMakeFiles/fsml_sim.dir/tlb.cpp.o"
  "CMakeFiles/fsml_sim.dir/tlb.cpp.o.d"
  "CMakeFiles/fsml_sim.dir/trace.cpp.o"
  "CMakeFiles/fsml_sim.dir/trace.cpp.o.d"
  "libfsml_sim.a"
  "libfsml_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsml_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
