# Empty dependencies file for fsml_sim.
# This may be replaced when dependencies are built.
