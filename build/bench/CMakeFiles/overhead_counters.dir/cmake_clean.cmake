file(REMOVE_RECURSE
  "CMakeFiles/overhead_counters.dir/overhead_counters.cpp.o"
  "CMakeFiles/overhead_counters.dir/overhead_counters.cpp.o.d"
  "overhead_counters"
  "overhead_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
