# Empty dependencies file for overhead_counters.
# This may be replaced when dependencies are built.
