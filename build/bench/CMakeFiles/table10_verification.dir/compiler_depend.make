# Empty compiler generated dependencies file for table10_verification.
# This may be replaced when dependencies are built.
