file(REMOVE_RECURSE
  "CMakeFiles/table10_verification.dir/table10_verification.cpp.o"
  "CMakeFiles/table10_verification.dir/table10_verification.cpp.o.d"
  "table10_verification"
  "table10_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
