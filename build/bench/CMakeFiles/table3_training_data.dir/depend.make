# Empty dependencies file for table3_training_data.
# This may be replaced when dependencies are built.
