file(REMOVE_RECURSE
  "CMakeFiles/table3_training_data.dir/table3_training_data.cpp.o"
  "CMakeFiles/table3_training_data.dir/table3_training_data.cpp.o.d"
  "table3_training_data"
  "table3_training_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_training_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
