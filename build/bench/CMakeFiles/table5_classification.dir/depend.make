# Empty dependencies file for table5_classification.
# This may be replaced when dependencies are built.
