file(REMOVE_RECURSE
  "CMakeFiles/table5_classification.dir/table5_classification.cpp.o"
  "CMakeFiles/table5_classification.dir/table5_classification.cpp.o.d"
  "table5_classification"
  "table5_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
