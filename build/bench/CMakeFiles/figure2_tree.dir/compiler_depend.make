# Empty compiler generated dependencies file for figure2_tree.
# This may be replaced when dependencies are built.
