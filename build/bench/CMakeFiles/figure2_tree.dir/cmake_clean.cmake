file(REMOVE_RECURSE
  "CMakeFiles/figure2_tree.dir/figure2_tree.cpp.o"
  "CMakeFiles/figure2_tree.dir/figure2_tree.cpp.o.d"
  "figure2_tree"
  "figure2_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
