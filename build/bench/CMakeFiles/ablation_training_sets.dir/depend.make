# Empty dependencies file for ablation_training_sets.
# This may be replaced when dependencies are built.
