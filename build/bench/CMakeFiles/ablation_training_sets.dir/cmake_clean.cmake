file(REMOVE_RECURSE
  "CMakeFiles/ablation_training_sets.dir/ablation_training_sets.cpp.o"
  "CMakeFiles/ablation_training_sets.dir/ablation_training_sets.cpp.o.d"
  "ablation_training_sets"
  "ablation_training_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_training_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
