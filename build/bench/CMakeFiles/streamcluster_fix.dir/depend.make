# Empty dependencies file for streamcluster_fix.
# This may be replaced when dependencies are built.
