file(REMOVE_RECURSE
  "CMakeFiles/streamcluster_fix.dir/streamcluster_fix.cpp.o"
  "CMakeFiles/streamcluster_fix.dir/streamcluster_fix.cpp.o.d"
  "streamcluster_fix"
  "streamcluster_fix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamcluster_fix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
