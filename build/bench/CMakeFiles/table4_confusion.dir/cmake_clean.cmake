file(REMOVE_RECURSE
  "CMakeFiles/table4_confusion.dir/table4_confusion.cpp.o"
  "CMakeFiles/table4_confusion.dir/table4_confusion.cpp.o.d"
  "table4_confusion"
  "table4_confusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_confusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
