# Empty dependencies file for table4_confusion.
# This may be replaced when dependencies are built.
