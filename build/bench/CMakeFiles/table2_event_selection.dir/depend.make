# Empty dependencies file for table2_event_selection.
# This may be replaced when dependencies are built.
