file(REMOVE_RECURSE
  "CMakeFiles/table2_event_selection.dir/table2_event_selection.cpp.o"
  "CMakeFiles/table2_event_selection.dir/table2_event_selection.cpp.o.d"
  "table2_event_selection"
  "table2_event_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_event_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
