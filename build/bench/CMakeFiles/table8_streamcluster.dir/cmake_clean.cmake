file(REMOVE_RECURSE
  "CMakeFiles/table8_streamcluster.dir/table8_streamcluster.cpp.o"
  "CMakeFiles/table8_streamcluster.dir/table8_streamcluster.cpp.o.d"
  "table8_streamcluster"
  "table8_streamcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_streamcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
