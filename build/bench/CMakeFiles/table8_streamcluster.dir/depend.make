# Empty dependencies file for table8_streamcluster.
# This may be replaced when dependencies are built.
