file(REMOVE_RECURSE
  "CMakeFiles/table7_lr_fsrates.dir/table7_lr_fsrates.cpp.o"
  "CMakeFiles/table7_lr_fsrates.dir/table7_lr_fsrates.cpp.o.d"
  "table7_lr_fsrates"
  "table7_lr_fsrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_lr_fsrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
