# Empty dependencies file for table7_lr_fsrates.
# This may be replaced when dependencies are built.
