# Empty compiler generated dependencies file for table6_linear_regression.
# This may be replaced when dependencies are built.
