file(REMOVE_RECURSE
  "CMakeFiles/table6_linear_regression.dir/table6_linear_regression.cpp.o"
  "CMakeFiles/table6_linear_regression.dir/table6_linear_regression.cpp.o.d"
  "table6_linear_regression"
  "table6_linear_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_linear_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
