# Empty compiler generated dependencies file for table1_dotproduct.
# This may be replaced when dependencies are built.
