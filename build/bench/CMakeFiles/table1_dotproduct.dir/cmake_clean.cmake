file(REMOVE_RECURSE
  "CMakeFiles/table1_dotproduct.dir/table1_dotproduct.cpp.o"
  "CMakeFiles/table1_dotproduct.dir/table1_dotproduct.cpp.o.d"
  "table1_dotproduct"
  "table1_dotproduct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_dotproduct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
