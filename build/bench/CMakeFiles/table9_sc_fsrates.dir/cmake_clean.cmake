file(REMOVE_RECURSE
  "CMakeFiles/table9_sc_fsrates.dir/table9_sc_fsrates.cpp.o"
  "CMakeFiles/table9_sc_fsrates.dir/table9_sc_fsrates.cpp.o.d"
  "table9_sc_fsrates"
  "table9_sc_fsrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_sc_fsrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
