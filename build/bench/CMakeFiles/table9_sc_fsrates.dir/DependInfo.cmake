
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table9_sc_fsrates.cpp" "bench/CMakeFiles/table9_sc_fsrates.dir/table9_sc_fsrates.cpp.o" "gcc" "bench/CMakeFiles/table9_sc_fsrates.dir/table9_sc_fsrates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/fsml_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/fsml_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fsml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/fsml_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/trainers/CMakeFiles/fsml_trainers.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/fsml_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/fsml_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsml_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fsml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
