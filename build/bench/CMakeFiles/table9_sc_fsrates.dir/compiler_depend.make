# Empty compiler generated dependencies file for table9_sc_fsrates.
# This may be replaced when dependencies are built.
