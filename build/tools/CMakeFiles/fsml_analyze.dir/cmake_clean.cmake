file(REMOVE_RECURSE
  "CMakeFiles/fsml_analyze.dir/fsml_analyze.cpp.o"
  "CMakeFiles/fsml_analyze.dir/fsml_analyze.cpp.o.d"
  "fsml_analyze"
  "fsml_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsml_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
