# Empty compiler generated dependencies file for fsml_analyze.
# This may be replaced when dependencies are built.
