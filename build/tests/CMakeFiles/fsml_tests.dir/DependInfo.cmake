
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/advisor_test.cpp" "tests/CMakeFiles/fsml_tests.dir/advisor_test.cpp.o" "gcc" "tests/CMakeFiles/fsml_tests.dir/advisor_test.cpp.o.d"
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/fsml_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/fsml_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/fsml_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/fsml_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/exec_test.cpp" "tests/CMakeFiles/fsml_tests.dir/exec_test.cpp.o" "gcc" "tests/CMakeFiles/fsml_tests.dir/exec_test.cpp.o.d"
  "/root/repo/tests/ml_test.cpp" "tests/CMakeFiles/fsml_tests.dir/ml_test.cpp.o" "gcc" "tests/CMakeFiles/fsml_tests.dir/ml_test.cpp.o.d"
  "/root/repo/tests/perf_backend_test.cpp" "tests/CMakeFiles/fsml_tests.dir/perf_backend_test.cpp.o" "gcc" "tests/CMakeFiles/fsml_tests.dir/perf_backend_test.cpp.o.d"
  "/root/repo/tests/pmu_test.cpp" "tests/CMakeFiles/fsml_tests.dir/pmu_test.cpp.o" "gcc" "tests/CMakeFiles/fsml_tests.dir/pmu_test.cpp.o.d"
  "/root/repo/tests/sim_coherence_test.cpp" "tests/CMakeFiles/fsml_tests.dir/sim_coherence_test.cpp.o" "gcc" "tests/CMakeFiles/fsml_tests.dir/sim_coherence_test.cpp.o.d"
  "/root/repo/tests/sim_structures_test.cpp" "tests/CMakeFiles/fsml_tests.dir/sim_structures_test.cpp.o" "gcc" "tests/CMakeFiles/fsml_tests.dir/sim_structures_test.cpp.o.d"
  "/root/repo/tests/slices_test.cpp" "tests/CMakeFiles/fsml_tests.dir/slices_test.cpp.o" "gcc" "tests/CMakeFiles/fsml_tests.dir/slices_test.cpp.o.d"
  "/root/repo/tests/smoke_test.cpp" "tests/CMakeFiles/fsml_tests.dir/smoke_test.cpp.o" "gcc" "tests/CMakeFiles/fsml_tests.dir/smoke_test.cpp.o.d"
  "/root/repo/tests/topology_test.cpp" "tests/CMakeFiles/fsml_tests.dir/topology_test.cpp.o" "gcc" "tests/CMakeFiles/fsml_tests.dir/topology_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/fsml_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/fsml_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/trainers_test.cpp" "tests/CMakeFiles/fsml_tests.dir/trainers_test.cpp.o" "gcc" "tests/CMakeFiles/fsml_tests.dir/trainers_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/fsml_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/fsml_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/fsml_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/fsml_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/fsml_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/fsml_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fsml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/fsml_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/trainers/CMakeFiles/fsml_trainers.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/fsml_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/fsml_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsml_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fsml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
