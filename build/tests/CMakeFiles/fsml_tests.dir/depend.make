# Empty dependencies file for fsml_tests.
# This may be replaced when dependencies are built.
