file(REMOVE_RECURSE
  "CMakeFiles/real_hardware_counters.dir/real_hardware_counters.cpp.o"
  "CMakeFiles/real_hardware_counters.dir/real_hardware_counters.cpp.o.d"
  "real_hardware_counters"
  "real_hardware_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_hardware_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
