# Empty compiler generated dependencies file for real_hardware_counters.
# This may be replaced when dependencies are built.
