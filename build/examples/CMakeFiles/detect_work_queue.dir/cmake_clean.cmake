file(REMOVE_RECURSE
  "CMakeFiles/detect_work_queue.dir/detect_work_queue.cpp.o"
  "CMakeFiles/detect_work_queue.dir/detect_work_queue.cpp.o.d"
  "detect_work_queue"
  "detect_work_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_work_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
