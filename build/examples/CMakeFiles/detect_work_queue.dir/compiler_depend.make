# Empty compiler generated dependencies file for detect_work_queue.
# This may be replaced when dependencies are built.
