file(REMOVE_RECURSE
  "CMakeFiles/train_export_classify.dir/train_export_classify.cpp.o"
  "CMakeFiles/train_export_classify.dir/train_export_classify.cpp.o.d"
  "train_export_classify"
  "train_export_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_export_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
