# Empty compiler generated dependencies file for train_export_classify.
# This may be replaced when dependencies are built.
