file(REMOVE_RECURSE
  "CMakeFiles/event_selection_demo.dir/event_selection_demo.cpp.o"
  "CMakeFiles/event_selection_demo.dir/event_selection_demo.cpp.o.d"
  "event_selection_demo"
  "event_selection_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_selection_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
