# Empty compiler generated dependencies file for event_selection_demo.
# This may be replaced when dependencies are built.
