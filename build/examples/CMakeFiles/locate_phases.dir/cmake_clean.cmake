file(REMOVE_RECURSE
  "CMakeFiles/locate_phases.dir/locate_phases.cpp.o"
  "CMakeFiles/locate_phases.dir/locate_phases.cpp.o.d"
  "locate_phases"
  "locate_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locate_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
