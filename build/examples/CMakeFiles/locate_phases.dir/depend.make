# Empty dependencies file for locate_phases.
# This may be replaced when dependencies are built.
