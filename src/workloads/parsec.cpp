// PARSEC benchmark proxies (Bienia & Li, PARSEC 2.0).
//
// Published sharing behaviour reproduced here (paper §4.2, [21]):
//  * streamcluster — the CACHE_LINE=32 bug: per-thread cost slots padded to
//    32 bytes share 64-byte lines pairwise. The contended-write density
//    falls as the input grows (more distance work per cost update), which
//    is why the Zhao false-sharing rate crosses 1e-3 between simsmall and
//    simlarge (paper Table 9). Spin-lock barriers burn instructions when
//    per-round work is imbalanced, producing the non-deterministic
//    instruction-count inflation the paper analyses for the top-right cell
//    of Table 8. A secondary, always-packed flag array models the residual
//    false sharing that survives the CACHE_LINE=64 "fix" (§4.3).
//  * everything else — compute-dense kernels with private or read-shared
//    data: good.
#include <memory>

#include "exec/sync.hpp"
#include "workloads/common.hpp"
#include "workloads/streamcluster.hpp"

namespace fsml::workloads {

std::string_view StreamclusterWorkload::name() const {
  return "streamcluster";
}

Suite StreamclusterWorkload::suite() const { return Suite::kParsec; }

std::vector<std::string> StreamclusterWorkload::input_sets() const {
  return {"simsmall", "simmedium", "simlarge", "native"};
}

void StreamclusterWorkload::build(exec::Machine& m,
                                  const WorkloadCase& c) const {
  const std::uint64_t points =
      input_size(input_sets(), {8192, 16384, 32768, 131072}, c.input);
  // Contended cost-slot updates per thread and per round; fixed per input,
  // so bigger inputs dilute the false-sharing rate (Table 9's trend).
  const std::uint64_t cost_writes =
      input_size(input_sets(), {64, 48, 64, 96}, c.input);
  const int rounds = 4;

  const sim::Addr pts = m.arena().alloc_page_aligned(points * 2 * kElem);
  // The bug: work_mem cost slots padded to CACHE_LINE (=32) bytes. On a
  // 64-byte machine line, threads 2t and 2t+1 share a line.
  const sim::Addr cost = m.arena().alloc_line_aligned_named(
      "work_mem_cost", static_cast<std::uint64_t>(pad_bytes_) * c.threads);
  // Secondary false-sharing site that the CACHE_LINE=64 fix does NOT cure:
  // a packed per-thread "centre open" flag array, touched a few times per
  // round. Only matters when per-thread work is small (simsmall, T=8).
  const sim::Addr flags =
      m.arena().alloc_line_aligned_named("center_open_flags",
                                         8ULL * c.threads);
  auto barrier = std::make_shared<exec::SpinBarrier>(m.arena(), c.threads);

  for (std::uint32_t t = 0; t < c.threads; ++t) {
    const Share s = share_of(points, c.threads, t);
    const sim::Addr my_cost = cost + static_cast<std::uint64_t>(pad_bytes_) * t;
    const sim::Addr my_flag = flags + 8ULL * t;
    const OptLevel opt = c.opt;
    const std::uint64_t cost_period =
        std::max<std::uint64_t>(1, s.count / std::max<std::uint64_t>(
                                                 cost_writes, 1));
    m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
      ScaledCompute compute(opt);
      ctx.compute(ctx.rng().next_below(32));
      for (int round = 0; round < rounds; ++round) {
        for (std::uint64_t i = 0; i < s.count; ++i) {
          const std::uint64_t p = s.begin + i;
          co_await ctx.load(pts + p * 16);
          co_await ctx.load(pts + p * 16 + 8);
          compute(ctx, 9);  // distance to the candidate centre
          if (i % cost_period == 0)
            co_await ctx.rmw(my_cost);  // gl_lower-style cost update
          if (i % (cost_period * 2) == 0)
            co_await ctx.rmw(my_flag);  // secondary packed flag
        }
        // Random per-round imbalance, scaled to the *input* (not the
        // share): at high thread counts the laggard dominates the round, so
        // bad-fs rows stop improving with threads, and everyone else spins
        // at the barrier burning a non-deterministic number of instructions
        // (the paper's §4.3 analysis of the 0.445s top-right cell).
        ctx.compute(ctx.rng().next_below(points / 8 + 1));
        // Rare long stall (a descheduled or page-faulting thread): every
        // other thread spins at the barrier for the whole stall, so some
        // executions retire far more instructions than others — and since
        // features are normalized by instructions, borderline cells flip
        // verdicts between runs exactly as the paper observed.
        if (ctx.rng().next_bool(0.03)) ctx.compute(points * 2);
        co_await barrier->wait(ctx);
      }
    });
  }
}

namespace detail {
namespace {

/// Compute-dense streaming kernel shared by several "good" PARSEC proxies;
/// the parameters encode how much arithmetic each element gets and how
/// often a private output is written.
class StreamingParsec : public Workload {
 public:
  Suite suite() const override { return Suite::kParsec; }
  std::vector<std::string> input_sets() const override {
    return {"simsmall", "simmedium", "simlarge", "native"};
  }

  void build(exec::Machine& m, const WorkloadCase& c) const override {
    const std::uint64_t n = input_size(input_sets(), sizes(), c.input);
    const sim::Addr in = m.arena().alloc_page_aligned(n * kElem);
    std::vector<sim::Addr> outs;
    for (std::uint32_t t = 0; t < c.threads; ++t)
      outs.push_back(m.arena().alloc_page_aligned(n * kElem));

    const int phases = barrier_phases();
    std::shared_ptr<exec::SpinBarrier> barrier;
    if (phases > 1)
      barrier = std::make_shared<exec::SpinBarrier>(m.arena(), c.threads);

    for (std::uint32_t t = 0; t < c.threads; ++t) {
      const Share s = share_of(n, c.threads, t);
      const sim::Addr out = outs[t];
      const OptLevel opt = c.opt;
      const std::uint64_t work = compute_per_element();
      const std::uint64_t store_period = output_period();
      m.spawn([=, this](exec::ThreadCtx& ctx) -> exec::SimTask {
        ScaledCompute compute(opt);
        ctx.compute(ctx.rng().next_below(32));
        for (int phase = 0; phase < phases; ++phase) {
          std::uint64_t written = 0;
          for (std::uint64_t i = 0; i < s.count; ++i) {
            co_await ctx.load(in + (s.begin + i) * kElem);
            compute(ctx, static_cast<double>(work));
            if (i % store_period == 0)
              co_await ctx.store(out + (written++) * kElem);
          }
          if (barrier) co_await barrier->wait(ctx);
        }
      });
    }
  }

 protected:
  virtual std::vector<std::uint64_t> sizes() const = 0;
  virtual std::uint64_t compute_per_element() const = 0;
  virtual std::uint64_t output_period() const { return 4; }
  virtual int barrier_phases() const { return 1; }
};

class Blackscholes final : public StreamingParsec {
 public:
  std::string_view name() const override { return "blackscholes"; }

 protected:
  std::vector<std::uint64_t> sizes() const override {
    return {8192, 16384, 32768, 98304};
  }
  std::uint64_t compute_per_element() const override { return 40; }
  std::uint64_t output_period() const override { return 1; }
};

class Swaptions final : public StreamingParsec {
 public:
  std::string_view name() const override { return "swaptions"; }

 protected:
  std::vector<std::uint64_t> sizes() const override {
    return {4096, 8192, 16384, 49152};
  }
  std::uint64_t compute_per_element() const override { return 64; }
  std::uint64_t output_period() const override { return 16; }
};

class Vips final : public StreamingParsec {
 public:
  std::string_view name() const override { return "vips"; }

 protected:
  std::vector<std::uint64_t> sizes() const override {
    return {16384, 32768, 65536, 196608};
  }
  std::uint64_t compute_per_element() const override { return 10; }
  std::uint64_t output_period() const override { return 1; }
};

class Bodytrack final : public StreamingParsec {
 public:
  std::string_view name() const override { return "bodytrack"; }

 protected:
  std::vector<std::uint64_t> sizes() const override {
    return {12288, 24576, 49152, 131072};
  }
  std::uint64_t compute_per_element() const override { return 15; }
  std::uint64_t output_period() const override { return 8; }
  int barrier_phases() const override { return 2; }
};

class Ferret final : public StreamingParsec {
 public:
  std::string_view name() const override { return "ferret"; }

 protected:
  std::vector<std::uint64_t> sizes() const override {
    return {8192, 16384, 32768, 98304};
  }
  std::uint64_t compute_per_element() const override { return 50; }
  std::uint64_t output_period() const override { return 8; }
};

class X264 final : public StreamingParsec {
 public:
  std::string_view name() const override { return "x264"; }

 protected:
  std::vector<std::uint64_t> sizes() const override {
    return {16384, 32768, 65536, 196608};
  }
  std::uint64_t compute_per_element() const override { return 25; }
  std::uint64_t output_period() const override { return 4; }
  int barrier_phases() const override { return 2; }
};

/// Pointer-chasing kernel over a large structure with heavy per-access
/// arithmetic: canneal (simulated annealing moves), freqmine (FP-tree
/// walks), raytrace (BVH traversal). The compute density keeps the
/// per-instruction miss rates below the bad-ma regime — these programs are
/// cache-unfriendly but not *pathological*, and the paper classifies all
/// three as good.
class PointerChaseParsec : public Workload {
 public:
  Suite suite() const override { return Suite::kParsec; }
  std::vector<std::string> input_sets() const override {
    return {"simsmall", "simmedium", "simlarge", "native"};
  }

  void build(exec::Machine& m, const WorkloadCase& c) const override {
    const std::uint64_t pool_elems = pool_size() / kElem;
    const sim::Addr pool = m.arena().alloc_page_aligned(pool_size());
    const sim::Addr hot = m.arena().alloc_page_aligned(64 * 1024);  // 64 KiB
    const std::uint64_t ops = input_size(input_sets(), operations(), c.input);
    std::vector<sim::Addr> outs;
    for (std::uint32_t t = 0; t < c.threads; ++t)
      outs.push_back(m.arena().alloc_page_aligned(4096));

    for (std::uint32_t t = 0; t < c.threads; ++t) {
      const Share s = share_of(ops, c.threads, t);
      const sim::Addr out = outs[t];
      const OptLevel opt = c.opt;
      const std::uint64_t work = compute_per_op();
      m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
        ScaledCompute compute(opt);
        ctx.compute(ctx.rng().next_below(32));
        for (std::uint64_t i = 0; i < s.count; ++i) {
          const std::uint64_t h = index_hash((s.begin + i) * 2654435761ULL);
          // One cold access into the big pool, two hot-region accesses.
          co_await ctx.load(pool + (h % pool_elems) * kElem);
          co_await ctx.load(hot + (h % (64 * 1024 / kElem)) * kElem);
          co_await ctx.load(hot + ((h >> 13) % (64 * 1024 / kElem)) * kElem);
          compute(ctx, static_cast<double>(work));
          if (i % 8 == 0) co_await ctx.store(out + (i / 8 % 512) * kElem);
        }
      });
    }
  }

 protected:
  virtual std::uint64_t pool_size() const = 0;       // bytes
  virtual std::vector<std::uint64_t> operations() const = 0;
  virtual std::uint64_t compute_per_op() const = 0;
};

class Canneal final : public PointerChaseParsec {
 public:
  std::string_view name() const override { return "canneal"; }

 protected:
  std::uint64_t pool_size() const override { return 4 * 1024 * 1024; }
  std::vector<std::uint64_t> operations() const override {
    return {4096, 8192, 16384, 49152};
  }
  std::uint64_t compute_per_op() const override { return 520; }
};

class Freqmine final : public PointerChaseParsec {
 public:
  std::string_view name() const override { return "freqmine"; }

 protected:
  std::uint64_t pool_size() const override { return 48 * 1024; }
  std::vector<std::uint64_t> operations() const override {
    return {49152, 98304, 196608, 393216};
  }
  std::uint64_t compute_per_op() const override { return 100; }
};

class Raytrace final : public PointerChaseParsec {
 public:
  std::string_view name() const override { return "raytrace"; }

 protected:
  std::uint64_t pool_size() const override { return 2 * 1024 * 1024; }
  std::vector<std::uint64_t> operations() const override {
    return {8192, 16384, 32768, 98304};
  }
  std::uint64_t compute_per_op() const override { return 500; }
};

/// fluidanimate: grid neighbourhood updates with per-frame barriers.
class Fluidanimate final : public Workload {
 public:
  std::string_view name() const override { return "fluidanimate"; }
  Suite suite() const override { return Suite::kParsec; }
  std::vector<std::string> input_sets() const override {
    return {"simsmall", "simmedium", "simlarge", "native"};
  }

  void build(exec::Machine& m, const WorkloadCase& c) const override {
    const std::uint64_t particles =
        input_size(input_sets(), {16384, 32768, 65536, 131072}, c.input);
    constexpr int kFrames = 3;
    const sim::Addr cells = m.arena().alloc_page_aligned(particles * kElem);
    std::vector<sim::Addr> outs;
    for (std::uint32_t t = 0; t < c.threads; ++t)
      outs.push_back(m.arena().alloc_page_aligned(particles * kElem));
    auto barrier = std::make_shared<exec::SpinBarrier>(m.arena(), c.threads);

    for (std::uint32_t t = 0; t < c.threads; ++t) {
      const Share s = share_of(particles, c.threads, t);
      const sim::Addr out = outs[t];
      const OptLevel opt = c.opt;
      m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
        ScaledCompute compute(opt);
        ctx.compute(ctx.rng().next_below(32));
        for (int frame = 0; frame < kFrames; ++frame) {
          for (std::uint64_t i = 0; i < s.count; ++i) {
            const std::uint64_t p = s.begin + i;
            co_await ctx.load(cells + p * kElem);
            // Neighbour cells: spatially close, usually the same lines.
            co_await ctx.load(cells + (p >= 1 ? p - 1 : p) * kElem);
            co_await ctx.load(
                cells + std::min<std::uint64_t>(p + 16, particles - 1) * kElem);
            compute(ctx, 20);  // density / force kernels
            co_await ctx.store(out + i * kElem);
          }
          co_await barrier->wait(ctx);
        }
      });
    }
  }
};

}  // namespace

std::vector<const Workload*> parsec_workloads() {
  static const Ferret ferret;
  static const Canneal canneal;
  static const Fluidanimate fluidanimate;
  static const StreamclusterWorkload streamcluster;  // pad = 32 (the bug)
  static const Swaptions swaptions;
  static const Vips vips;
  static const Bodytrack bodytrack;
  static const Freqmine freqmine;
  static const Blackscholes blackscholes;
  static const Raytrace raytrace;
  static const X264 x264;
  return {&ferret,    &canneal,  &fluidanimate, &streamcluster,
          &swaptions, &vips,     &bodytrack,    &freqmine,
          &blackscholes, &raytrace, &x264};
}

}  // namespace detail
}  // namespace fsml::workloads
