// StreamclusterWorkload is exposed as a concrete class (unlike the other
// proxies) because the paper's §4.3 experiment varies its CACHE_LINE
// padding: the original source pads per-thread work memory to 32 bytes; the
// suggested "fix" sets 64. The paper found residual false sharing even
// after the fix (simsmall, T=8) — reproduce with:
//
//   StreamclusterWorkload fixed(64);
//   run_workload(fixed, {...}, config);
#pragma once

#include <cstdint>

#include "workloads/workload.hpp"

namespace fsml::workloads {

class StreamclusterWorkload final : public Workload {
 public:
  /// `pad_bytes`: the CACHE_LINE constant in the original source. 32 (the
  /// shipped value) packs two threads' cost slots per 64-byte line.
  explicit StreamclusterWorkload(std::uint32_t pad_bytes = 32)
      : pad_bytes_(pad_bytes) {}

  std::string_view name() const override;
  Suite suite() const override;
  std::vector<std::string> input_sets() const override;
  void build(exec::Machine& machine, const WorkloadCase& wcase) const override;

  std::uint32_t pad_bytes() const { return pad_bytes_; }

 private:
  std::uint32_t pad_bytes_;
};

}  // namespace fsml::workloads
