// Shared kernel-building helpers for the workload proxies.
#pragma once

#include <algorithm>
#include <cstdint>

#include "exec/machine.hpp"
#include "trainers/trainer.hpp"  // Traversal, make_slots
#include "workloads/workload.hpp"

namespace fsml::workloads {

constexpr std::uint64_t kElem = 8;

/// Retires `base` instructions scaled by the modelled optimization level,
/// carrying the fractional remainder across calls so long loops average to
/// exactly base * scale.
class ScaledCompute {
 public:
  explicit ScaledCompute(OptLevel opt) : scale_(opt_instruction_scale(opt)) {}

  void operator()(exec::ThreadCtx& ctx, double base) {
    acc_ += base * scale_;
    const auto n = static_cast<std::uint64_t>(acc_);
    if (n > 0) {
      ctx.compute(n);
      acc_ -= static_cast<double>(n);
    }
  }

 private:
  double scale_;
  double acc_ = 0.0;
};

struct Share {
  std::uint64_t begin = 0;
  std::uint64_t count = 0;
};

inline Share share_of(std::uint64_t n, std::uint32_t threads,
                      std::uint32_t t) {
  const std::uint64_t base = n / threads;
  const std::uint64_t extra = n % threads;
  const std::uint64_t begin = t * base + std::min<std::uint64_t>(t, extra);
  return {begin, base + (t < extra ? 1 : 0)};
}

/// Deterministic pseudo-random index hash (stateless, cheap).
inline std::uint64_t index_hash(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace fsml::workloads
