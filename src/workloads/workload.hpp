// Workload proxies for the Phoenix and PARSEC benchmark programs the paper
// classifies in Section 4.
//
// Each proxy is a simulated kernel whose *memory-access structure* models
// the published behaviour of the corresponding benchmark:
//  * linear_regression — per-thread accumulator structs that share cache
//    lines; gcc >= -O2 register-promotes the accumulators, which is the
//    paper's explanation for the -O2 column turning "good" (Table 6);
//  * streamcluster — the CACHE_LINE=32 padding bug (32-byte padded
//    per-thread cost slots on 64-byte lines) plus spin-lock barriers whose
//    wait time inflates the instruction count non-deterministically
//    (Table 8's top-right-cell discussion);
//  * matrix_multiply — naive loop order, a pure bad-memory-access program;
//  * everything else — streaming / private-accumulator kernels that are
//    "good" by construction (matching the paper's 100%-good columns).
//
// The modelled compiler optimization level scales the per-element
// instruction count (O0 executes ~3x the instructions of O2) and switches
// workload-specific codegen behaviours such as register promotion.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exec/machine.hpp"
#include "pmu/counters.hpp"
#include "sim/machine_config.hpp"
#include "sim/observer.hpp"
#include "trainers/trainer.hpp"

namespace fsml::workloads {

enum class OptLevel : std::uint8_t { kO0, kO1, kO2, kO3 };

std::string_view to_string(OptLevel opt);
OptLevel opt_from_string(std::string_view s);

/// Instruction-count multiplier of the modelled optimization level,
/// relative to -O2 (unoptimized code executes ~3x the instructions).
double opt_instruction_scale(OptLevel opt);

enum class Suite : std::uint8_t { kPhoenix, kParsec };

std::string_view to_string(Suite suite);

struct WorkloadCase {
  std::string input;             ///< one of the workload's input_sets()
  OptLevel opt = OptLevel::kO2;
  std::uint32_t threads = 4;
  std::uint64_t seed = 1;
  /// Thread-to-socket pinning on multi-socket machines (no effect on the
  /// single-socket default).
  exec::ThreadPlacement placement = exec::ThreadPlacement::kPacked;
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string_view name() const = 0;
  virtual Suite suite() const = 0;
  /// Input-set names, smallest first (Phoenix: sizes; PARSEC: sim*).
  virtual std::vector<std::string> input_sets() const = 0;
  /// Optimization levels the paper swept for this suite.
  std::vector<OptLevel> opt_levels() const;
  /// Allocates simulated data and spawns `threads` kernels.
  virtual void build(exec::Machine& machine,
                     const WorkloadCase& wcase) const = 0;

 protected:
  /// Resolves an input name to the workload's element count.
  std::uint64_t input_size(const std::vector<std::string>& names,
                           const std::vector<std::uint64_t>& sizes,
                           const std::string& input) const;
};

/// All Phoenix proxies in paper (Table 5) order.
const std::vector<const Workload*>& phoenix_suite();
/// All PARSEC proxies in paper (Table 5) order.
const std::vector<const Workload*>& parsec_suite();
std::vector<const Workload*> all_workloads();
const Workload& find_workload(std::string_view name);

struct WorkloadRun {
  exec::RunResult result;
  pmu::CounterSnapshot snapshot;
  pmu::FeatureVector features;
  double seconds = 0.0;
};

/// Runs one case on a machine with `threads` cores. If `observer` is
/// non-null it is attached for the whole run (ground-truth detectors).
WorkloadRun run_workload(const Workload& workload, const WorkloadCase& wcase,
                         const sim::MachineConfig& base_config,
                         sim::AccessObserver* observer = nullptr);

}  // namespace fsml::workloads
