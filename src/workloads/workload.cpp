#include "workloads/workload.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace fsml::workloads {

std::string_view to_string(OptLevel opt) {
  switch (opt) {
    case OptLevel::kO0: return "-O0";
    case OptLevel::kO1: return "-O1";
    case OptLevel::kO2: return "-O2";
    case OptLevel::kO3: return "-O3";
  }
  return "?";
}

OptLevel opt_from_string(std::string_view s) {
  if (s == "-O0" || s == "O0" || s == "0") return OptLevel::kO0;
  if (s == "-O1" || s == "O1" || s == "1") return OptLevel::kO1;
  if (s == "-O2" || s == "O2" || s == "2") return OptLevel::kO2;
  if (s == "-O3" || s == "O3" || s == "3") return OptLevel::kO3;
  throw std::runtime_error("unknown optimization level: " + std::string(s));
}

double opt_instruction_scale(OptLevel opt) {
  switch (opt) {
    case OptLevel::kO0: return 3.0;
    case OptLevel::kO1: return 1.5;
    case OptLevel::kO2: return 1.0;
    case OptLevel::kO3: return 0.95;
  }
  return 1.0;
}

std::string_view to_string(Suite suite) {
  return suite == Suite::kPhoenix ? "Phoenix" : "PARSEC";
}

std::vector<OptLevel> Workload::opt_levels() const {
  // The paper's sweeps: Phoenix tables use -O0/-O1/-O2, PARSEC tables use
  // -O1/-O2/-O3.
  if (suite() == Suite::kPhoenix)
    return {OptLevel::kO0, OptLevel::kO1, OptLevel::kO2};
  return {OptLevel::kO1, OptLevel::kO2, OptLevel::kO3};
}

std::uint64_t Workload::input_size(const std::vector<std::string>& names,
                                   const std::vector<std::uint64_t>& sizes,
                                   const std::string& input) const {
  FSML_CHECK(names.size() == sizes.size());
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == input) return sizes[i];
  throw std::runtime_error("workload '" + std::string(name()) +
                           "': unknown input set '" + input + "'");
}

namespace detail {
std::vector<const Workload*> phoenix_workloads();
std::vector<const Workload*> parsec_workloads();
}  // namespace detail

const std::vector<const Workload*>& phoenix_suite() {
  static const std::vector<const Workload*> suite =
      detail::phoenix_workloads();
  return suite;
}

const std::vector<const Workload*>& parsec_suite() {
  static const std::vector<const Workload*> suite = detail::parsec_workloads();
  return suite;
}

std::vector<const Workload*> all_workloads() {
  std::vector<const Workload*> all = phoenix_suite();
  const auto& parsec = parsec_suite();
  all.insert(all.end(), parsec.begin(), parsec.end());
  return all;
}

const Workload& find_workload(std::string_view name) {
  for (const Workload* w : all_workloads())
    if (w->name() == name) return *w;
  throw std::runtime_error("unknown workload: " + std::string(name));
}

WorkloadRun run_workload(const Workload& workload, const WorkloadCase& wcase,
                         const sim::MachineConfig& base_config,
                         sim::AccessObserver* observer) {
  FSML_CHECK(wcase.threads >= 1);
  sim::MachineConfig config = base_config;
  if (!config.topology.multi_socket()) {
    // Single-socket base: one core per thread, as before the NUMA work.
    config.num_cores = wcase.threads;
  } else {
    FSML_CHECK_MSG(wcase.threads <= config.num_cores,
                   "more threads than the multi-socket machine has cores");
  }
  exec::Machine machine(config, wcase.seed);
  machine.set_thread_placement(wcase.placement);
  if (observer) machine.memory().add_observer(observer);
  workload.build(machine, wcase);
  FSML_CHECK(machine.num_threads() == wcase.threads);

  WorkloadRun run;
  run.result = machine.run();
  run.snapshot = pmu::CounterSnapshot::from_raw(run.result.aggregate);
  run.features = pmu::FeatureVector::normalize(run.snapshot);
  run.seconds = run.result.seconds;
  return run;
}

}  // namespace fsml::workloads
