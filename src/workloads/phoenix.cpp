// Phoenix benchmark proxies (Ranger et al. HPCA'07 / Yoo et al. IISWC'09).
//
// Published sharing behaviour reproduced here (paper §4.1, [21], [33]):
//  * linear_regression — the one true false-sharing bug: the per-thread
//    accumulator structs (lreg_args) are allocated contiguously and five
//    fields are updated per point. gcc -O2 promotes the accumulators to
//    registers, eliminating the dense false sharing; a light residual
//    (periodic progress spills on the packed struct array) keeps the
//    Zhao-rate just above 1e-3 even at -O2, matching the paper's Table 7.
//  * matrix_multiply — pure bad memory access at every optimization level.
//  * everything else — private-accumulator map-reduce kernels: good.
#include <memory>

#include "exec/sync.hpp"
#include "workloads/common.hpp"

namespace fsml::workloads {
namespace detail {
namespace {

using trainers::AccessPattern;
using trainers::Traversal;

class LinearRegression final : public Workload {
 public:
  std::string_view name() const override { return "linear_regression"; }
  Suite suite() const override { return Suite::kPhoenix; }
  std::vector<std::string> input_sets() const override {
    return {"50MB", "100MB", "500MB"};
  }

  void build(exec::Machine& m, const WorkloadCase& c) const override {
    const std::uint64_t points =
        input_size(input_sets(), {16384, 32768, 163840}, c.input);
    // Points are (x, y) records: two 8-byte loads each.
    const sim::Addr pts = m.arena().alloc_page_aligned(points * 2 * kElem);
    // The lreg_args array: per-thread accumulator structs (SX, SY, SXX,
    // SYY, SXY + a bookkeeping word), 48 bytes each, *contiguous* — this
    // layout accident is the famous bug.
    const sim::Addr args =
        m.arena().alloc_line_aligned_named("lreg_args", 48ULL * c.threads);
    // Per-thread progress words, packed 8 per line: the map-reduce runtime
    // reads and updates these regardless of optimization level, which is
    // the residual false sharing the paper's Table 7 measures above 1e-3
    // even at -O2.
    const sim::Addr progress = m.arena().alloc_line_aligned_named(
        "runtime_progress", 8ULL * c.threads);
    const bool promoted = c.opt >= OptLevel::kO2;  // register promotion

    for (std::uint32_t t = 0; t < c.threads; ++t) {
      const Share s = share_of(points, c.threads, t);
      const sim::Addr my_args = args + 48ULL * t;
      const sim::Addr my_progress = progress + 8ULL * t;
      const OptLevel opt = c.opt;
      m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
        ScaledCompute compute(opt);
        ctx.compute(ctx.rng().next_below(32));
        for (std::uint64_t i = 0; i < s.count; ++i) {
          const std::uint64_t p = s.begin + i;
          co_await ctx.load(pts + p * 16);      // x
          co_await ctx.load(pts + p * 16 + 8);  // y
          if (!promoted) {
            // Accumulators live in memory: five read-modify-writes per
            // point on the packed struct — dense false sharing.
            for (int f = 0; f < 5; ++f)
              co_await ctx.rmw(my_args + 8ULL * f);
            compute(ctx, 5);
          } else {
            // Registers hold the sums; only arithmetic retires.
            compute(ctx, 10);
          }
          // Residual sharing that survives -O2: the runtime's packed
          // progress words are re-read frequently and updated periodically.
          if (i % 48 == 0) co_await ctx.load(my_progress);
          if (i % 96 == 0) co_await ctx.store(my_progress);
        }
        for (int f = 0; f < 5; ++f)  // final accumulator write-back
          co_await ctx.store(my_args + 8ULL * f);
      });
    }
  }
};

class Histogram final : public Workload {
 public:
  std::string_view name() const override { return "histogram"; }
  Suite suite() const override { return Suite::kPhoenix; }
  std::vector<std::string> input_sets() const override {
    return {"small", "medium", "large"};
  }

  void build(exec::Machine& m, const WorkloadCase& c) const override {
    const std::uint64_t pixels =
        input_size(input_sets(), {32768, 65536, 131072}, c.input);
    const sim::Addr img = m.arena().alloc_page_aligned(pixels * kElem);
    constexpr std::uint64_t kBins = 768;  // 3 x 256, as in the original
    std::vector<sim::Addr> hists;
    for (std::uint32_t t = 0; t < c.threads; ++t)
      hists.push_back(m.arena().alloc_line_aligned(kBins * kElem));

    for (std::uint32_t t = 0; t < c.threads; ++t) {
      const Share s = share_of(pixels, c.threads, t);
      const sim::Addr hist = hists[t];
      const OptLevel opt = c.opt;
      m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
        ScaledCompute compute(opt);
        ctx.compute(ctx.rng().next_below(32));
        for (std::uint64_t i = 0; i < s.count; ++i) {
          co_await ctx.load(img + (s.begin + i) * kElem);
          compute(ctx, 3);
          const std::uint64_t bin = index_hash(s.begin + i) % kBins;
          co_await ctx.rmw(hist + bin * kElem);  // private histogram
        }
      });
    }
  }
};

class WordCount final : public Workload {
 public:
  std::string_view name() const override { return "word_count"; }
  Suite suite() const override { return Suite::kPhoenix; }
  std::vector<std::string> input_sets() const override {
    return {"small", "medium", "large"};
  }

  void build(exec::Machine& m, const WorkloadCase& c) const override {
    const std::uint64_t chunks =
        input_size(input_sets(), {49152, 98304, 196608}, c.input);
    const sim::Addr text = m.arena().alloc_page_aligned(chunks * kElem);
    constexpr std::uint64_t kTableSlots = 1024;  // 8 KiB private table
    std::vector<sim::Addr> tables;
    for (std::uint32_t t = 0; t < c.threads; ++t)
      tables.push_back(m.arena().alloc_page_aligned(kTableSlots * kElem));

    for (std::uint32_t t = 0; t < c.threads; ++t) {
      const Share s = share_of(chunks, c.threads, t);
      const sim::Addr table = tables[t];
      const OptLevel opt = c.opt;
      m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
        ScaledCompute compute(opt);
        ctx.compute(ctx.rng().next_below(32));
        for (std::uint64_t i = 0; i < s.count; ++i) {
          co_await ctx.load(text + (s.begin + i) * kElem);
          compute(ctx, 5);  // tokenize + hash
          if (i % 4 == 0) {  // word boundary: bump the private count
            const std::uint64_t slot = index_hash(s.begin + i) % kTableSlots;
            co_await ctx.rmw(table + slot * kElem);
          }
        }
      });
    }
  }
};

class ReverseIndex final : public Workload {
 public:
  std::string_view name() const override { return "reverse_index"; }
  Suite suite() const override { return Suite::kPhoenix; }
  std::vector<std::string> input_sets() const override {
    return {"small", "medium", "large"};
  }

  void build(exec::Machine& m, const WorkloadCase& c) const override {
    const std::uint64_t chunks =
        input_size(input_sets(), {32768, 65536, 131072}, c.input);
    const sim::Addr html = m.arena().alloc_page_aligned(chunks * kElem);
    std::vector<sim::Addr> lists;
    for (std::uint32_t t = 0; t < c.threads; ++t)
      lists.push_back(m.arena().alloc_page_aligned(chunks * kElem));

    for (std::uint32_t t = 0; t < c.threads; ++t) {
      const Share s = share_of(chunks, c.threads, t);
      const sim::Addr list = lists[t];
      const OptLevel opt = c.opt;
      m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
        ScaledCompute compute(opt);
        ctx.compute(ctx.rng().next_below(32));
        std::uint64_t appended = 0;
        for (std::uint64_t i = 0; i < s.count; ++i) {
          co_await ctx.load(html + (s.begin + i) * kElem);
          compute(ctx, 4);  // scan for link
          if (i % 8 == 0)   // found one: append to the private list
            co_await ctx.store(list + (appended++) * kElem);
        }
      });
    }
  }
};

class Kmeans final : public Workload {
 public:
  std::string_view name() const override { return "kmeans"; }
  Suite suite() const override { return Suite::kPhoenix; }
  std::vector<std::string> input_sets() const override {
    return {"small", "medium", "large"};
  }

  void build(exec::Machine& m, const WorkloadCase& c) const override {
    const std::uint64_t points =
        input_size(input_sets(), {12288, 24576, 49152}, c.input);
    constexpr int kIterations = 3;
    constexpr std::uint64_t kCenters = 16;
    const sim::Addr pts = m.arena().alloc_page_aligned(points * 2 * kElem);
    const sim::Addr centers =
        m.arena().alloc_line_aligned(kCenters * 2 * kElem);  // shared RO
    std::vector<sim::Addr> accums;  // per-thread partial sums, padded
    for (std::uint32_t t = 0; t < c.threads; ++t)
      accums.push_back(
          m.arena().alloc_line_aligned(kCenters * 2 * kElem));
    auto barrier = std::make_shared<exec::SpinBarrier>(m.arena(), c.threads);

    for (std::uint32_t t = 0; t < c.threads; ++t) {
      const Share s = share_of(points, c.threads, t);
      const sim::Addr accum = accums[t];
      const OptLevel opt = c.opt;
      m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
        ScaledCompute compute(opt);
        ctx.compute(ctx.rng().next_below(32));
        for (int iter = 0; iter < kIterations; ++iter) {
          for (std::uint64_t i = 0; i < s.count; ++i) {
            const std::uint64_t p = s.begin + i;
            co_await ctx.load(pts + p * 16);
            co_await ctx.load(pts + p * 16 + 8);
            // Nearest-centre scan: shared read-only centre data.
            const std::uint64_t c0 = index_hash(p + iter) % kCenters;
            co_await ctx.load(centers + c0 * 16);
            co_await ctx.load(centers + ((c0 + 1) % kCenters) * 16);
            compute(ctx, 12);
            co_await ctx.rmw(accum + (index_hash(p) % kCenters) * 16);
          }
          co_await barrier->wait(ctx);
        }
      });
    }
  }
};

class MatrixMultiply final : public Workload {
 public:
  std::string_view name() const override { return "matrix_multiply"; }
  Suite suite() const override { return Suite::kPhoenix; }
  std::vector<std::string> input_sets() const override {
    return {"small", "medium", "large"};
  }

  void build(exec::Machine& m, const WorkloadCase& c) const override {
    // Phoenix's matrix_multiply is the naive i-j-k triple loop: for every
    // result cell the inner loop walks a full *column* of B, a stride-n
    // access pattern no prefetcher catches and no cache level retains once
    // B outgrows it. Bad memory access at every optimization level (the
    // paper reports bad-ma for 100% of cases). The k loop is subsampled to
    // kDepth probes spread evenly down the column, preserving the access
    // pattern at simulation scale.
    const std::uint64_t n = input_size(input_sets(), {96, 128, 192}, c.input);
    constexpr std::uint64_t kDepth = 4;
    const sim::Addr a = m.arena().alloc_page_aligned(n * kDepth * kElem);
    const sim::Addr b = m.arena().alloc_page_aligned(n * n * kElem);
    const sim::Addr cc = m.arena().alloc_page_aligned(n * n * kElem);

    for (std::uint32_t t = 0; t < c.threads; ++t) {
      const Share rows = share_of(n, c.threads, t);
      const OptLevel opt = c.opt;
      m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
        ScaledCompute compute(opt);
        ctx.compute(ctx.rng().next_below(32));
        for (std::uint64_t i = rows.begin; i < rows.begin + rows.count; ++i) {
          for (std::uint64_t j = 0; j < n; ++j) {
            for (std::uint64_t q = 0; q < kDepth; ++q) {
              // Column walk of B: rows q*n/kDepth + phase, column j.
              const std::uint64_t k = q * (n / kDepth) + (i + j) % (n / kDepth);
              co_await ctx.load(a + (i * kDepth + q) * kElem);
              co_await ctx.load(b + (k * n + j) * kElem);
              compute(ctx, 2);
            }
            co_await ctx.rmw(cc + (i * n + j) * kElem);  // C[i][j] in memory
          }
        }
      });
    }
  }
};

class StringMatch final : public Workload {
 public:
  std::string_view name() const override { return "string_match"; }
  Suite suite() const override { return Suite::kPhoenix; }
  std::vector<std::string> input_sets() const override {
    return {"small", "medium", "large"};
  }

  void build(exec::Machine& m, const WorkloadCase& c) const override {
    const std::uint64_t keys =
        input_size(input_sets(), {49152, 98304, 196608}, c.input);
    const sim::Addr data = m.arena().alloc_page_aligned(keys * kElem);
    std::vector<sim::Addr> flags;
    for (std::uint32_t t = 0; t < c.threads; ++t)
      flags.push_back(m.arena().alloc_page_aligned(keys * kElem / 8));

    for (std::uint32_t t = 0; t < c.threads; ++t) {
      const Share s = share_of(keys, c.threads, t);
      const sim::Addr flag = flags[t];
      const OptLevel opt = c.opt;
      m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
        ScaledCompute compute(opt);
        ctx.compute(ctx.rng().next_below(32));
        std::uint64_t matches = 0;
        for (std::uint64_t i = 0; i < s.count; ++i) {
          co_await ctx.load(data + (s.begin + i) * kElem);
          compute(ctx, 6);  // bcrypt-ish key comparison
          if (i % 16 == 0) co_await ctx.store(flag + (matches++) * kElem);
        }
      });
    }
  }
};

class Pca final : public Workload {
 public:
  std::string_view name() const override { return "pca"; }
  Suite suite() const override { return Suite::kPhoenix; }
  std::vector<std::string> input_sets() const override {
    return {"small", "medium", "large"};
  }

  void build(exec::Machine& m, const WorkloadCase& c) const override {
    const std::uint64_t elements =
        input_size(input_sets(), {32768, 65536, 131072}, c.input);
    const sim::Addr matrix = m.arena().alloc_page_aligned(elements * kElem);
    std::vector<sim::Addr> accums;
    for (std::uint32_t t = 0; t < c.threads; ++t)
      accums.push_back(m.arena().alloc_line_aligned(64));

    for (std::uint32_t t = 0; t < c.threads; ++t) {
      const Share s = share_of(elements, c.threads, t);
      const sim::Addr accum = accums[t];
      const OptLevel opt = c.opt;
      m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
        ScaledCompute compute(opt);
        ctx.compute(ctx.rng().next_below(32));
        // Pass 1: row means; pass 2: covariance contributions. Both stream.
        for (int pass = 0; pass < 2; ++pass) {
          for (std::uint64_t i = 0; i < s.count; ++i) {
            co_await ctx.load(matrix + (s.begin + i) * kElem);
            compute(ctx, pass == 0 ? 2 : 5);
            if (i % 8 == 0) co_await ctx.rmw(accum);  // private, padded
          }
        }
      });
    }
  }
};

}  // namespace

std::vector<const Workload*> phoenix_workloads() {
  static const Histogram histogram;
  static const LinearRegression linear_regression;
  static const WordCount word_count;
  static const ReverseIndex reverse_index;
  static const Kmeans kmeans;
  static const MatrixMultiply matrix_multiply;
  static const StringMatch string_match;
  static const Pca pca;
  return {&histogram,     &linear_regression, &word_count,
          &reverse_index, &kmeans,            &matrix_multiply,
          &string_match,  &pca};
}

}  // namespace detail
}  // namespace fsml::workloads
