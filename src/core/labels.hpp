// Class labels of the three-way classification (paper §2.1) and their
// mapping to the trainers' Mode enum.
#pragma once

#include <string>
#include <vector>

#include "trainers/trainer.hpp"

namespace fsml::core {

/// Class indices in every Dataset / ConfusionMatrix this library builds:
/// 0 = good, 1 = bad-fs, 2 = bad-ma (the paper's three modes).
inline constexpr int kGood = 0;
inline constexpr int kBadFs = 1;
inline constexpr int kBadMa = 2;

inline std::vector<std::string> class_names() {
  return {"good", "bad-fs", "bad-ma"};
}

inline int label_of(trainers::Mode mode) {
  switch (mode) {
    case trainers::Mode::kGood: return kGood;
    case trainers::Mode::kBadFs: return kBadFs;
    case trainers::Mode::kBadMa: return kBadMa;
  }
  return kGood;
}

inline trainers::Mode mode_of(int label) {
  switch (label) {
    case kGood: return trainers::Mode::kGood;
    case kBadFs: return trainers::Mode::kBadFs;
    case kBadMa: return trainers::Mode::kBadMa;
    default: return trainers::Mode::kGood;
  }
}

}  // namespace fsml::core
