#include "core/advisor.hpp"

#include <bit>
#include <sstream>

#include "util/check.hpp"

namespace fsml::core {

std::string_view to_string(Remedy remedy) {
  switch (remedy) {
    case Remedy::kPadToLine: return "pad-to-line";
    case Remedy::kReduceSharing: return "reduce-sharing";
    case Remedy::kBindToSocket: return "bind-to-socket";
    case Remedy::kNone: return "none";
  }
  return "?";
}

namespace {

std::string describe(const Recommendation& r, std::uint32_t line_bytes) {
  std::ostringstream os;
  os << "line 0x" << std::hex << r.line << std::dec;
  if (r.allocation != "<unnamed>")
    os << " (" << r.allocation << " + " << r.offset << ")";
  os << ": " << r.writers << " writers, " << r.false_sharing_events
     << " false-sharing / " << r.true_sharing_events
     << " true-sharing events — ";
  switch (r.remedy) {
    case Remedy::kPadToLine:
      os << "FALSE SHARING: give each thread's field its own " << line_bytes
         << "-byte line (alignas(" << line_bytes << ")); costs ~"
         << r.padding_cost_bytes << " extra bytes";
      break;
    case Remedy::kReduceSharing:
      os << "TRUE sharing: padding will not help; batch the updates or "
            "privatize-and-merge";
      break;
    case Remedy::kBindToSocket:
      os << "cross-socket contention";  // overwritten by the caller
      break;
    case Remedy::kNone:
      os << "contention negligible";
      break;
  }
  return os.str();
}

}  // namespace

MitigationReport advise(const baseline::SharingReport& sharing,
                        const exec::VirtualArena& arena,
                        std::uint32_t line_bytes, std::uint64_t min_events) {
  return advise(sharing, arena, line_bytes, min_events, AdvisorContext{});
}

MitigationReport advise(const baseline::SharingReport& sharing,
                        const exec::VirtualArena& arena,
                        std::uint32_t line_bytes, std::uint64_t min_events,
                        const AdvisorContext& context) {
  FSML_CHECK(std::has_single_bit(static_cast<std::uint64_t>(line_bytes)));
  MitigationReport report;
  report.has_false_sharing = sharing.has_false_sharing();

  for (const baseline::LineStat& line : sharing.top_lines) {
    const std::uint64_t events =
        line.false_sharing_events + line.true_sharing_events;
    if (events < min_events) continue;

    Recommendation rec;
    rec.line = line.line;
    rec.false_sharing_events = line.false_sharing_events;
    rec.true_sharing_events = line.true_sharing_events;
    rec.writers = static_cast<std::uint32_t>(
        std::popcount(line.writer_mask));

    if (const auto alloc = arena.find_allocation(line.line)) {
      rec.allocation = alloc->name;
      rec.offset = line.line - alloc->begin;
    } else {
      rec.allocation = "<unnamed>";
    }

    // False sharing dominates -> layout fix; true sharing dominates ->
    // algorithmic fix. (A line can show both when fields are interleaved.)
    if (rec.false_sharing_events >= 2 * rec.true_sharing_events &&
        rec.writers >= 2) {
      rec.remedy = Remedy::kPadToLine;
      // Padding gives each of the `writers` fields a full line where they
      // previously shared one.
      rec.padding_cost_bytes =
          static_cast<std::uint64_t>(rec.writers - 1) * line_bytes;
    } else if (rec.true_sharing_events > 0 && rec.writers >= 2) {
      rec.remedy = Remedy::kReduceSharing;
    } else {
      rec.remedy = Remedy::kNone;
    }
    rec.text = describe(rec, line_bytes);
    report.recommendations.push_back(std::move(rec));
  }

  report.alarm_priority = context.alarm_priority;
  // When the contended lines mostly bounce across sockets, thread placement
  // beats layout surgery as the first move: one taskset/numactl invocation
  // stops the QPI round-trips, no rebuild required. Listed first because it
  // addresses every line below it at once.
  if (context.hitm_remote_ratio > 0.5 && report.has_false_sharing &&
      !report.recommendations.empty()) {
    Recommendation bind;
    bind.remedy = Remedy::kBindToSocket;
    bind.allocation = "<thread placement>";
    std::ostringstream os;
    os.precision(0);
    os << std::fixed << "thread placement: "
       << 100.0 * context.hitm_remote_ratio
       << "% of modified-line transfers cross the socket interconnect — "
          "bind the contending threads to one socket (numactl/taskset) "
          "before (or while) applying the layout fixes below";
    bind.text = os.str();
    report.recommendations.insert(report.recommendations.begin(),
                                  std::move(bind));
  }
  return report;
}

std::string MitigationReport::to_string() const {
  std::ostringstream os;
  if (recommendations.empty()) {
    os << "no contended lines above the noise floor\n";
    return os.str();
  }
  os << (has_false_sharing ? "FALSE SHARING DETECTED" : "no false sharing")
     << " — " << recommendations.size() << " recommendation(s)";
  if (alarm_priority < 0.5)
    os << " [low-priority alarm (" << alarm_priority
       << ") — verify before refactoring]";
  os << ":\n";
  for (const Recommendation& r : recommendations)
    os << "  " << r.text << '\n';
  return os.str();
}

}  // namespace fsml::core
