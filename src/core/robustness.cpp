#include "core/robustness.hpp"

#include <chrono>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "par/parallel_for.hpp"
#include "par/thread_pool.hpp"
#include "pmu/noise.hpp"
#include "trainers/trainer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/time_format.hpp"

namespace fsml::core {

namespace {

using trainers::Mode;

void config_error(const std::string& what) {
  throw std::runtime_error("RobustnessConfig: " + what);
}

/// Coordinates of one evaluation case (EvalRun is the simulated outcome).
struct EvalJob {
  const trainers::MiniProgram* program = nullptr;
  Mode label = Mode::kGood;
  trainers::AccessPattern pattern = trainers::AccessPattern::kLinear;
  std::uint32_t threads = 4;
  std::uint64_t size = 0;
};

/// Evaluation-run seed from job coordinates (FNV-1a + SplitMix), so the
/// sweep is reproducible regardless of host scheduling — the same recipe
/// the training collector uses.
std::uint64_t eval_seed(std::uint64_t base, const EvalJob& job) {
  std::uint64_t h = 1469598103934665603ULL ^ base;
  const auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ULL; };
  for (const char c : std::string(job.program->name()))
    mix(static_cast<std::uint64_t>(c));
  mix(static_cast<std::uint64_t>(job.label));
  mix(static_cast<std::uint64_t>(job.pattern));
  mix(job.threads);
  mix(job.size);
  return util::SplitMix64(h).next();
}

/// Independent noise-model seed per grid point.
std::uint64_t point_seed(std::uint64_t base, std::size_t point_index) {
  util::SplitMix64 a(base);
  util::SplitMix64 b(0xd1b54a32d192ed03ULL * (point_index + 1));
  return a.next() ^ b.next();
}

std::vector<EvalJob> enumerate_eval_jobs(const RobustnessConfig& config) {
  const auto& programs = trainers::multithreaded_set();
  const std::size_t num_programs =
      config.reduced ? std::min<std::size_t>(3, programs.size())
                     : programs.size();
  const std::vector<std::uint32_t> threads =
      config.reduced ? std::vector<std::uint32_t>{4}
                     : std::vector<std::uint32_t>{4, 8};

  std::vector<EvalJob> jobs;
  for (std::size_t p = 0; p < num_programs; ++p) {
    const trainers::MiniProgram* program = programs[p];
    const std::uint64_t size = program->default_sizes().front();
    for (const std::uint32_t t : threads) {
      jobs.push_back({program, Mode::kGood,
                      trainers::AccessPattern::kLinear, t, size});
      jobs.push_back({program, Mode::kBadFs,
                      trainers::AccessPattern::kLinear, t, size});
      if (program->supports_bad_ma())
        jobs.push_back({program, Mode::kBadMa,
                        trainers::AccessPattern::kStrided, t, size});
    }
  }
  return jobs;
}

EvalRun run_eval_job(const EvalJob& job, const RobustnessConfig& config) {
  trainers::TrainerParams params;
  params.mode = job.label;
  params.threads = job.threads;
  params.size = job.size;
  params.pattern = job.pattern;
  params.seed = eval_seed(config.seed, job);

  sim::MachineConfig machine_config = config.machine;
  machine_config.num_cores = params.threads;
  exec::Machine machine(machine_config, params.seed);
  // Slicing gives the multiplex emulation real phase structure to lose.
  if (config.slice_cycles > 0) machine.enable_slicing(config.slice_cycles);
  job.program->build(machine, params);

  EvalRun run;
  run.label = job.label;
  run.program = std::string(job.program->name());
  run.threads = job.threads;
  run.result = machine.run();
  run.clean_features = pmu::FeatureVector::normalize(
      pmu::CounterSnapshot::from_raw(run.result.aggregate));
  run.locality = derived_locality(run.result.aggregate);
  return run;
}

void score(RobustnessPoint& point, Mode label, bool known, Mode mode) {
  ++point.runs;
  if (!known) {
    ++point.abstained;
    if (label == Mode::kGood)
      ++point.abstained_good;
    else if (label == Mode::kBadFs)
      ++point.abstained_bad_fs;
    else
      ++point.abstained_bad_ma;
    return;
  }
  ++point.classified;
  if (mode == label) ++point.correct;
  if (label == Mode::kGood && mode != Mode::kGood) ++point.false_positives;
}

void json_point(std::ostream& os, const RobustnessPoint& p) {
  os << "{\"jitter\": " << p.jitter << ", \"counters\": " << p.counters
     << ", \"drop\": " << p.drop << ", \"runs\": " << p.runs
     << ", \"classified\": " << p.classified
     << ", \"abstained\": " << p.abstained
     << ", \"abstained_good\": " << p.abstained_good
     << ", \"abstained_bad_fs\": " << p.abstained_bad_fs
     << ", \"abstained_bad_ma\": " << p.abstained_bad_ma
     << ", \"correct\": " << p.correct
     << ", \"false_positives\": " << p.false_positives
     << ", \"accuracy\": " << p.accuracy()
     << ", \"coverage\": " << p.coverage() << '}';
}

}  // namespace

void RobustnessConfig::validate() const {
  if (jitters.empty() || counter_groups.empty() || drops.empty())
    config_error("every sweep axis needs at least one value");
  for (const double j : jitters)
    if (std::isnan(j) || j < 0.0 || j > 1.0)
      config_error("jitter values must be in [0, 1]");
  for (const std::size_t c : counter_groups)
    if (c > pmu::kNumWestmereEvents)
      config_error("counter-group sizes must be 0 (unlimited) .. 16");
  for (const double d : drops)
    if (std::isnan(d) || d < 0.0 || d > 1.0)
      config_error("drop probabilities must be in [0, 1]");
  RobustConfig vote;
  vote.repeats = repeats;
  vote.min_confidence = min_confidence;
  vote.validate();
}

std::vector<EvalRun> simulate_evaluation_runs(const RobustnessConfig& config,
                                              std::ostream* log) {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t jobs_n =
      config.jobs == 0 ? par::ThreadPool::hardware_workers() : config.jobs;
  par::ThreadPool pool(jobs_n - 1);

  const std::vector<EvalJob> jobs = enumerate_eval_jobs(config);
  std::vector<EvalRun> runs = par::parallel_transform(
      pool, jobs,
      [&](const EvalJob& job) { return run_eval_job(job, config); });
  if (log) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    *log << "robustness: simulated " << runs.size()
         << " evaluation runs in " << util::auto_time(elapsed.count())
         << "\n";
  }
  return runs;
}

void RobustnessReport::write_json(std::ostream& os) const {
  std::size_t runs = baseline.runs;
  os << "{\n  \"schema\": \"fsml-robustness-v1\",\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"repeats\": " << repeats << ",\n";
  os << "  \"min_confidence\": " << min_confidence << ",\n";
  os << "  \"runs\": " << runs << ",\n";
  os << "  \"baseline\": ";
  json_point(os, baseline);
  os << ",\n  \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    json_point(os, points[i]);
  }
  os << "\n  ]\n}\n";
}

RobustnessReport evaluate_robustness(const FalseSharingDetector& detector,
                                     const RobustnessConfig& config,
                                     std::ostream* log) {
  FSML_CHECK_MSG(detector.trained(), "detector is not trained");
  config.validate();
  const auto start = std::chrono::steady_clock::now();

  const std::size_t jobs_n =
      config.jobs == 0 ? par::ThreadPool::hardware_workers() : config.jobs;
  par::ThreadPool pool(jobs_n - 1);

  // Simulate the evaluation runs once; every grid point re-measures these.
  const std::vector<EvalRun> runs = simulate_evaluation_runs(config, log);

  RobustnessReport report;
  report.repeats = config.repeats;
  report.min_confidence = config.min_confidence;
  report.seed = config.seed;

  // Clean single-shot baseline: what the paper's pipeline reports when the
  // measurement is pristine.
  for (const EvalRun& run : runs)
    score(report.baseline, run.label, true,
          detector.classify(run.clean_features));

  RobustConfig vote;
  vote.repeats = config.repeats;
  vote.min_confidence = config.min_confidence;

  struct GridPoint {
    double jitter;
    std::size_t counters;
    double drop;
    std::size_t index;
  };
  std::vector<GridPoint> grid;
  for (const double jitter : config.jitters)
    for (const std::size_t counters : config.counter_groups)
      for (const double drop : config.drops)
        grid.push_back({jitter, counters, drop, grid.size()});

  report.points = par::parallel_transform(
      pool, grid, [&](const GridPoint& cell) {
        pmu::NoiseConfig noise;
        noise.jitter = cell.jitter;
        noise.counters = cell.counters;
        noise.drop_probability = cell.drop;
        noise.seed = point_seed(config.seed, cell.index);
        const pmu::MeasurementModel model(noise);

        RobustnessPoint point;
        point.jitter = cell.jitter;
        point.counters = cell.counters;
        point.drop = cell.drop;
        for (std::size_t r = 0; r < runs.size(); ++r) {
          const RobustVerdict verdict = classify_degraded(
              detector, runs[r].result, model, vote,
              r * static_cast<std::uint64_t>(config.repeats));
          score(point, runs[r].label, verdict.known, verdict.mode);
        }
        return point;
      });

  if (log) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    *log << "robustness: swept " << report.points.size() << " grid points ("
         << config.jitters.size() << " jitter x "
         << config.counter_groups.size() << " counters x "
         << config.drops.size() << " drop) in "
         << util::auto_time(elapsed.count()) << "\n";
  }
  return report;
}

}  // namespace fsml::core
