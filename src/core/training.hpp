// Collection of training data (paper §3.1).
//
// Part A: every multi-threaded mini-program x problem sizes x thread counts
// x all supported modes, several repetitions each. Part B: every sequential
// mini-program x sizes x {good, bad-ma(random), bad-ma(strided)}.
//
// The paper manually removed instances "where the difference from
// corresponding good cases was not significant enough"; we encode that
// inspection as an explicit runtime-gap filter (see TrainingConfig), so the
// Table-3 census is regenerated rather than transcribed:
//  * Part A: bad-ma instances of a (program, size, threads) group are
//    removed when the group's median bad-ma runtime is less than
//    `significance_gap` x the matching good median.
//  * Part B: *whole groups* (good and bad-ma instances alike) are removed
//    under the same condition — for tiny arrays both variants behave the
//    same and neither is useful training signal.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/labels.hpp"
#include "fault/fault.hpp"
#include "ml/dataset.hpp"
#include "par/supervisor.hpp"
#include "pmu/counters.hpp"
#include "sim/machine_config.hpp"
#include "trainers/trainer.hpp"

namespace fsml::core {

struct TrainingConfig {
  std::vector<std::uint32_t> thread_counts = {3, 6, 9, 12};
  int reps_good = 3;
  int reps_bad_fs = 2;
  int reps_bad_ma = 2;       ///< per pattern? no: total, pattern alternates
  int seq_reps_good = 6;
  int seq_reps_bad_ma = 2;   ///< per access pattern (random, strided)
  double significance_gap = 1.20;  ///< bad must be >= 20% slower than good
  bool filter = true;
  std::uint64_t seed = 42;
  /// Host threads running simulations concurrently. 0 = hardware
  /// concurrency; 1 = fully serial (the pre-fsml::par behaviour). Any value
  /// yields bit-identical TrainingData: every run's seed derives from its
  /// job coordinates and rows assemble in job-list order (see src/par).
  std::size_t jobs = 0;
  /// Host threads inside each simulation (epoch-parallel scheduler; see
  /// exec::Machine::set_host_threads). Orthogonal to `jobs`: jobs
  /// parallelise across runs, this parallelises within one run. Any value
  /// yields bit-identical TrainingData.
  std::uint32_t sim_host_threads = 1;
  sim::MachineConfig machine = sim::MachineConfig::westmere_dp(12);

  /// Smaller configuration for unit tests (2 sizes, 2 thread counts, 1 rep).
  static TrainingConfig reduced();
};

/// One labelled training instance with its provenance.
struct LabeledInstance {
  pmu::FeatureVector features;
  int label = kGood;
  std::string program;
  std::uint64_t size = 0;
  std::uint32_t threads = 1;
  trainers::AccessPattern pattern = trainers::AccessPattern::kLinear;
  double seconds = 0.0;
  bool part_a = true;
  /// Derived NUMA-locality ratios (core::derived_locality); exactly 0 on
  /// single-socket machines, so pre-existing caches load as all-zero.
  double hitm_remote_ratio = 0.0;
  double dram_remote_ratio = 0.0;
};

/// The 15 normalized features plus the two locality ratios, in
/// extended_feature_names() order — the row shape consumed by
/// to_extended_dataset() and the zero-positive anomaly model.
std::vector<double> extended_row(const LabeledInstance& inst);

/// Census in the shape of the paper's Table 3.
struct Census {
  std::size_t initial_good = 0, initial_bad_fs = 0, initial_bad_ma = 0;
  std::size_t removed_good = 0, removed_bad_fs = 0, removed_bad_ma = 0;
  std::size_t final_good() const { return initial_good - removed_good; }
  std::size_t final_bad_fs() const { return initial_bad_fs - removed_bad_fs; }
  std::size_t final_bad_ma() const { return initial_bad_ma - removed_bad_ma; }
  std::size_t final_total() const {
    return final_good() + final_bad_fs() + final_bad_ma();
  }
};

struct TrainingData {
  std::vector<LabeledInstance> instances;  ///< after filtering, A then B
  Census census_a;
  Census census_b;

  /// Converts to an ML dataset (15 normalized features + class).
  ml::Dataset to_dataset() const;

  /// Same instances over the extended schema (15 features + the two
  /// locality ratios). On single-socket data the extra attributes are
  /// constant zero, so a C4.5 tree trained on this dataset has exactly the
  /// same structure as one trained on to_dataset().
  ml::Dataset to_extended_dataset() const;

  /// Extended rows of the good-labelled instances only — the zero-positive
  /// anomaly model's training set.
  std::vector<std::vector<double>> good_extended_rows() const;

  /// CSV persistence (features, label, provenance) so expensive collection
  /// runs once and every bench reuses it.
  void save_csv(std::ostream& os) const;
  static TrainingData load_csv(std::istream& is);
};

/// Reliability knobs for a collection sweep (all default-inert: the
/// two-argument collect_training_data overload behaves exactly as before).
struct CollectOptions {
  /// Fault-injection schedule for tests/benches; nullptr = no faults.
  /// Non-const because the abort counter advances as jobs complete.
  fault::FaultInjector* injector = nullptr;
  /// Retry / deadline / backoff policy for the par::Supervisor.
  par::SupervisorConfig supervision;
  /// Append-only progress journal (one fsync'd record per completed job);
  /// empty disables journaling. collect_or_load defaults this to
  /// "<cache>.journal".
  std::string journal_path;
  /// Replay a matching journal before running (crash recovery). When false
  /// any existing journal is discarded and the sweep starts fresh.
  bool resume = false;
};

/// One quarantined job: its cell coordinates plus the supervisor record.
struct QuarantinedCell {
  par::JobFailure failure;
  std::string cell;  ///< "program/size/threads/mode/pattern/rep"
};

/// What a supervised sweep did, for logging, benches, and tests.
struct CollectReport {
  std::vector<QuarantinedCell> quarantined;  ///< sorted by job index
  std::size_t total_jobs = 0;
  std::size_t replayed = 0;          ///< jobs restored from the journal
  std::size_t executed = 0;          ///< jobs actually simulated
  std::size_t retried_attempts = 0;  ///< wasted work (attempts beyond first)
};

/// Runs the full collection: the (program x mode x threads x size x rep)
/// job list is enumerated up front and executed on `config.jobs` host
/// threads (each job builds its own exec::Machine), then rows are filtered
/// and assembled in job-list order. Progress lines go to `log` if non-null;
/// writes to `log` are serialized across jobs.
///
/// The supervised overload adds crash safety: per-job deadlines with
/// cooperative cancellation, bounded retries with decorrelated-jitter
/// backoff, quarantine of persistently failing cells (recorded in `report`
/// instead of killing the sweep), and an fsync'd journal so an interrupted
/// sweep resumes by re-running only missing cells. For a fixed fault
/// schedule the outcome — rows, census, quarantine set — is deterministic,
/// and with everything default it is bit-identical to the plain overload.
TrainingData collect_training_data(const TrainingConfig& config,
                                   std::ostream* log = nullptr);
TrainingData collect_training_data(const TrainingConfig& config,
                                   std::ostream* log,
                                   const CollectOptions& options,
                                   CollectReport* report = nullptr);

/// Loads the cache at `path` if present and well-formed, otherwise collects
/// and saves it. A truncated or corrupt cache file (row-count census or
/// CRC32 footer mismatch) is rejected and re-collected (and overwritten)
/// instead of crashing or silently loading bad data. The cache is written
/// through util::AtomicFile — an interrupt can never leave a torn artifact
/// — and the collection journals to "<cache>.journal" (removed once the
/// cache commits), so `options.resume` continues an interrupted sweep.
TrainingData collect_or_load(const TrainingConfig& config,
                             const std::string& path,
                             std::ostream* log = nullptr);
TrainingData collect_or_load(const TrainingConfig& config,
                             const std::string& path, std::ostream* log,
                             const CollectOptions& options,
                             CollectReport* report = nullptr);

}  // namespace fsml::core
