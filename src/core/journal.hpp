// Journal: append-only durable progress log for training-data collection.
//
// One record is fsync'd per completed job, so after a crash (or an injected
// abort) `collect_or_load` replays the journal and re-runs only the missing
// cells — the resumed cache is bit-identical to an uninterrupted run.
//
// On-disk format (line oriented, one write() + fsync() per record):
//
//   fsml-journal v1 <config-hash, 16 hex digits>
//   J <job-index> <crc32, 8 hex digits> <payload>
//   ...
//
// The CRC covers "<job-index> <payload>". Replay accepts the longest valid
// *prefix*: the first malformed, CRC-failing, or torn record ends the scan
// and everything after it is discarded (a torn write leaves no trustworthy
// framing behind it). The config hash pins the journal to one exact job
// grid — a journal written under a different TrainingConfig is ignored
// wholesale rather than half-applied.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace fsml::core {

class Journal {
 public:
  Journal() = default;
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens `path` for appending, creating it (with a header) if absent.
  /// When the file exists: a matching header replays the valid record
  /// prefix into the returned map and truncates any torn tail; a missing or
  /// mismatched header resets the file to a fresh header. `note`, if
  /// non-null, receives a one-line human-readable summary.
  std::map<std::size_t, std::string> open_and_replay(
      const std::string& path, std::uint64_t config_hash,
      std::string* note = nullptr);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Appends one record durably (single write + fsync). The payload must
  /// not contain newlines. Safe to call from multiple threads.
  void append(std::size_t index, std::string_view payload);

  void close();

  /// Removes the journal file (after its cache has been committed).
  void remove();

 private:
  int fd_ = -1;
  std::string path_;
  std::mutex append_mutex_;
};

}  // namespace fsml::core
