// Robustness evaluation harness: how gracefully does the detection
// pipeline degrade as measurement quality drops?
//
// The harness simulates an evaluation set of mini-program runs once (with
// time-slicing enabled, so counter multiplexing has real phase variation to
// lose), then sweeps a grid of noise level x counter-group size x drop
// probability. At every grid point each run is classified through
// classify_degraded() — the bounded re-measure / majority-vote / abstain
// loop — and scored against its ground-truth label. The clean single-shot
// classification of the same runs is the baseline every point is compared
// against.
//
//   core::RobustnessConfig cfg;                 // default sweep grid
//   core::RobustnessReport report =
//       core::evaluate_robustness(detector, cfg, &std::cerr);
//   report.write_json(out);                     // machine-readable artifact
//
// Both the run collection and the grid sweep fan out on the fsml::par pool;
// every model seed derives from (config.seed, grid coordinates) and every
// measurement from (run index, repeat), so any `jobs` value produces a
// bit-identical report.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/event_selection.hpp"
#include "sim/machine_config.hpp"

namespace fsml::core {

struct RobustnessConfig {
  /// Sweep axes. `counter_groups` entries are programmable-counter counts
  /// (0 = no multiplexing, 4 = Westmere).
  std::vector<double> jitters = {0.0, 0.02, 0.05, 0.10, 0.20};
  std::vector<std::size_t> counter_groups = {0, 8, 4, 2};
  std::vector<double> drops = {0.0, 0.05, 0.15};

  /// Vote policy at every grid point.
  int repeats = 5;
  double min_confidence = 0.6;

  std::uint64_t seed = 42;
  std::size_t jobs = 0;  ///< host threads; 0 = hardware concurrency

  /// Virtual-time slice for the evaluation runs (gives multiplexing its
  /// coverage error); 0 disables slicing.
  sim::Cycles slice_cycles = 25000;

  /// Smaller evaluation set (3 programs, one thread count) for tests/CI.
  bool reduced = false;

  sim::MachineConfig machine = sim::MachineConfig::westmere_dp(12);

  /// Throws std::runtime_error on empty axes or out-of-range values.
  void validate() const;
};

/// One simulated evaluation case with its ground truth and metadata —
/// the shared input of evaluate_robustness() and the triage harness
/// (core/triage.hpp), which re-ranks the same runs' verdicts.
struct EvalRun {
  trainers::Mode label = trainers::Mode::kGood;
  std::string program;
  std::uint32_t threads = 4;
  exec::RunResult result;
  pmu::FeatureVector clean_features;
  /// NUMA-locality ratios of the clean aggregate counters.
  LocalityFeatures locality;
};

/// Simulates the evaluation set once (with time-slicing per
/// `config.slice_cycles`) on the fsml::par pool. Run seeds derive from job
/// coordinates, so the set is bit-identical for any `config.jobs` value.
std::vector<EvalRun> simulate_evaluation_runs(const RobustnessConfig& config,
                                              std::ostream* log = nullptr);

/// Scores of one sweep cell (or of the clean baseline).
struct RobustnessPoint {
  double jitter = 0.0;
  std::size_t counters = 0;
  double drop = 0.0;

  std::size_t runs = 0;        ///< evaluation runs scored
  std::size_t classified = 0;  ///< runs with a known verdict
  std::size_t abstained = 0;   ///< runs the detector declined to call
  /// Abstentions broken down by ground-truth label: abstaining on a good
  /// run costs only coverage, abstaining on a bad run hides a fault — the
  /// artifact separates the two so dashboards can weigh them differently.
  std::size_t abstained_good = 0;
  std::size_t abstained_bad_fs = 0;
  std::size_t abstained_bad_ma = 0;
  std::size_t correct = 0;     ///< known verdicts matching the label
  /// Runs labelled good whose *known* verdict was bad-fs or bad-ma. An
  /// abstention on a good run is degraded coverage, never a false alarm.
  std::size_t false_positives = 0;

  /// Accuracy over the runs the detector was willing to call.
  double accuracy() const {
    return classified == 0 ? 0.0
                           : static_cast<double>(correct) /
                                 static_cast<double>(classified);
  }
  /// Fraction of runs that got a verdict at all.
  double coverage() const {
    return runs == 0 ? 0.0
                     : static_cast<double>(classified) /
                           static_cast<double>(runs);
  }
};

struct RobustnessReport {
  RobustnessPoint baseline;  ///< clean single-shot classification
  std::vector<RobustnessPoint> points;  ///< grid order: jitter, counters, drop
  int repeats = 0;
  double min_confidence = 0.0;
  std::uint64_t seed = 0;

  /// The accuracy-vs-noise artifact: schema "fsml-robustness-v1".
  void write_json(std::ostream& os) const;
};

/// Runs the full sweep. Progress lines go to `log` if non-null.
RobustnessReport evaluate_robustness(const FalseSharingDetector& detector,
                                     const RobustnessConfig& config,
                                     std::ostream* log = nullptr);

}  // namespace fsml::core
