#include "core/journal.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "util/check.hpp"
#include "util/crc32.hpp"

namespace fsml::core {

namespace {

constexpr std::string_view kMagic = "fsml-journal v1";

std::string header_line(std::uint64_t config_hash) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s %016llx\n", std::string(kMagic).c_str(),
                static_cast<unsigned long long>(config_hash));
  return buf;
}

/// Parses "J <index> <crc8> <payload>"; returns false on any mismatch.
bool parse_record(const std::string& line, std::size_t& index,
                  std::string& payload) {
  if (line.size() < 2 || line[0] != 'J' || line[1] != ' ') return false;
  const std::size_t idx_end = line.find(' ', 2);
  if (idx_end == std::string::npos) return false;
  const std::size_t crc_end = line.find(' ', idx_end + 1);
  if (crc_end == std::string::npos || crc_end - idx_end != 9) return false;

  errno = 0;
  char* end = nullptr;
  const unsigned long long idx = std::strtoull(line.c_str() + 2, &end, 10);
  if (errno != 0 || end != line.c_str() + idx_end) return false;
  const unsigned long long crc =
      std::strtoull(line.c_str() + idx_end + 1, &end, 16);
  if (errno != 0 || end != line.c_str() + crc_end) return false;

  payload = line.substr(crc_end + 1);
  const std::string covered =
      line.substr(2, idx_end - 2) + " " + payload;
  if (util::crc32(covered) != crc) return false;
  index = static_cast<std::size_t>(idx);
  return true;
}

}  // namespace

Journal::~Journal() { close(); }

std::map<std::size_t, std::string> Journal::open_and_replay(
    const std::string& path, std::uint64_t config_hash, std::string* note) {
  FSML_CHECK_MSG(fd_ < 0, "journal is already open");
  path_ = path;

  std::map<std::size_t, std::string> records;
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      text = ss.str();
    }
  }

  const std::string header = header_line(config_hash);
  std::size_t valid_bytes = 0;
  std::string why;
  if (text.empty()) {
    why = "no journal";
  } else if (text.compare(0, header.size(), header) != 0) {
    why = "journal header does not match this configuration; starting over";
  } else {
    valid_bytes = header.size();
    std::size_t pos = header.size();
    while (pos < text.size()) {
      const std::size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) {
        why = "torn final record discarded";
        break;
      }
      std::size_t index = 0;
      std::string payload;
      if (!parse_record(text.substr(pos, eol - pos), index, payload)) {
        why = "invalid record ends the valid prefix";
        break;
      }
      records[index] = std::move(payload);
      pos = eol + 1;
      valid_bytes = pos;
    }
  }

  // Rewrite the file to exactly the valid prefix (fresh header when none of
  // it was usable), then append from there.
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0)
    throw std::runtime_error("cannot open journal " + path + ": " +
                             std::strerror(errno));
  if (valid_bytes == 0) {
    records.clear();
    if (::ftruncate(fd, 0) != 0 ||
        ::write(fd, header.data(), header.size()) !=
            static_cast<ssize_t>(header.size())) {
      ::close(fd);
      throw std::runtime_error("cannot initialize journal " + path);
    }
  } else if (valid_bytes < text.size()) {
    if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
      ::close(fd);
      throw std::runtime_error("cannot truncate journal " + path);
    }
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    throw std::runtime_error("cannot seek journal " + path);
  }
  ::fsync(fd);
  fd_ = fd;

  if (note) {
    std::ostringstream ss;
    ss << "journal " << path << ": replayed " << records.size()
       << " record(s)";
    if (!why.empty()) ss << " (" << why << ")";
    *note = ss.str();
  }
  return records;
}

void Journal::append(std::size_t index, std::string_view payload) {
  FSML_CHECK_MSG(fd_ >= 0, "journal is not open");
  FSML_CHECK_MSG(payload.find('\n') == std::string_view::npos,
                 "journal payloads must be single-line");
  const std::string covered =
      std::to_string(index) + " " + std::string(payload);
  char crc[16];
  std::snprintf(crc, sizeof crc, "%08x", util::crc32(covered));
  const std::string record =
      "J " + std::to_string(index) + " " + crc + " " +
      std::string(payload) + "\n";
  // One write() per record: either the whole line lands or replay sees a
  // torn tail and discards it. O_APPEND-less single-fd appends are ordered
  // because every append happens under the lock.
  std::lock_guard<std::mutex> lock(append_mutex_);
  std::size_t written = 0;
  while (written < record.size()) {
    const ssize_t n =
        ::write(fd_, record.data() + written, record.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("cannot append to journal " + path_ + ": " +
                               std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0)
    throw std::runtime_error("cannot fsync journal " + path_);
}

void Journal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Journal::remove() {
  close();
  if (!path_.empty()) std::remove(path_.c_str());
}

}  // namespace fsml::core
