#include "core/training.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>

#include "core/event_selection.hpp"
#include "core/journal.hpp"
#include "par/parallel_for.hpp"
#include "par/thread_pool.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/stats.hpp"
#include "util/time_format.hpp"

namespace fsml::core {

namespace {

using trainers::AccessPattern;
using trainers::MiniProgram;
using trainers::Mode;
using trainers::TrainerParams;

std::uint64_t run_seed(std::uint64_t base, const std::string& program,
                       std::uint64_t size, std::uint32_t threads, Mode mode,
                       AccessPattern pattern, int rep) {
  // FNV-1a over the run coordinates, then SplitMix to spread bits.
  std::uint64_t h = 1469598103934665603ULL ^ base;
  const auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 1099511628211ULL;
  };
  for (const char c : program) mix(static_cast<std::uint64_t>(c));
  mix(size);
  mix(threads);
  mix(static_cast<std::uint64_t>(mode));
  mix(static_cast<std::uint64_t>(pattern));
  mix(static_cast<std::uint64_t>(rep));
  return util::SplitMix64(h).next();
}

LabeledInstance run_one(const MiniProgram& program, std::uint64_t size,
                        std::uint32_t threads, Mode mode,
                        AccessPattern pattern, int rep,
                        const TrainingConfig& config, bool part_a,
                        const std::atomic<bool>* cancel = nullptr) {
  TrainerParams params;
  params.mode = mode;
  params.threads = threads;
  params.size = size;
  params.pattern = pattern;
  params.cancel = cancel;
  params.sim_host_threads = config.sim_host_threads;
  params.seed = run_seed(config.seed, std::string(program.name()), size,
                         threads, mode, pattern, rep);
  const trainers::TrainerRun run =
      trainers::run_trainer(program, params, config.machine);

  LabeledInstance inst;
  inst.features = run.features;
  inst.label = label_of(mode);
  inst.program = std::string(program.name());
  inst.size = size;
  inst.threads = threads;
  inst.pattern = pattern;
  inst.seconds = run.result.seconds;
  inst.part_a = part_a;
  const LocalityFeatures locality = derived_locality(run.raw);
  inst.hitm_remote_ratio = locality.hitm_remote_ratio;
  inst.dram_remote_ratio = locality.dram_remote_ratio;
  return inst;
}

double median_seconds(const std::vector<const LabeledInstance*>& group) {
  std::vector<double> secs;
  secs.reserve(group.size());
  for (const LabeledInstance* inst : group) secs.push_back(inst->seconds);
  return util::median(std::move(secs));
}

// ---- job enumeration -------------------------------------------------------
//
// Collection is a pure map over independent simulations: the full job list
// is enumerated up front in the canonical (program, size, threads, mode,
// rep) order, executed on a host-thread pool in whatever order the
// scheduler picks, and then filtered group-by-group in enumeration order.
// Each job's RNG seed derives from its coordinates (run_seed), never from
// execution order, so any `jobs` setting produces bit-identical rows.

struct CollectJob {
  const MiniProgram* program = nullptr;
  std::uint64_t size = 0;
  std::uint32_t threads = 1;
  Mode mode = Mode::kGood;
  AccessPattern pattern = AccessPattern::kLinear;
  int rep = 0;
  bool part_a = true;
};

/// One filter group: [begin, end) into the job list. Part A groups share
/// (program, size, threads); Part B groups share (program, size).
struct JobGroup {
  std::size_t begin = 0;
  std::size_t end = 0;
  bool part_a = true;
};

void enumerate_jobs(const TrainingConfig& config,
                    std::vector<CollectJob>& jobs,
                    std::vector<JobGroup>& groups) {
  for (const MiniProgram* program : trainers::multithreaded_set()) {
    for (const std::uint64_t size : program->default_sizes()) {
      for (const std::uint32_t threads : config.thread_counts) {
        JobGroup group{jobs.size(), 0, true};
        for (int r = 0; r < config.reps_good; ++r)
          jobs.push_back({program, size, threads, Mode::kGood,
                          AccessPattern::kLinear, r, true});
        for (int r = 0; r < config.reps_bad_fs; ++r)
          jobs.push_back({program, size, threads, Mode::kBadFs,
                          AccessPattern::kLinear, r, true});
        if (program->supports_bad_ma()) {
          for (int r = 0; r < config.reps_bad_ma; ++r) {
            const AccessPattern pattern = r % 2 == 0
                                              ? AccessPattern::kRandom
                                              : AccessPattern::kStrided;
            jobs.push_back(
                {program, size, threads, Mode::kBadMa, pattern, r, true});
          }
        }
        group.end = jobs.size();
        groups.push_back(group);
      }
    }
  }
  for (const MiniProgram* program : trainers::sequential_set()) {
    for (const std::uint64_t size : program->default_sizes()) {
      JobGroup group{jobs.size(), 0, false};
      for (int r = 0; r < config.seq_reps_good; ++r)
        jobs.push_back({program, size, 1, Mode::kGood, AccessPattern::kLinear,
                        r, false});
      for (const AccessPattern pattern :
           {AccessPattern::kRandom, AccessPattern::kStrided}) {
        for (int r = 0; r < config.seq_reps_bad_ma; ++r)
          jobs.push_back(
              {program, size, 1, Mode::kBadMa, pattern, r, false});
      }
      group.end = jobs.size();
      groups.push_back(group);
    }
  }
}

/// Stable cell coordinates of a job — the key fault schedules and
/// quarantine reports use (independent of enumeration order).
std::string job_key(const CollectJob& job) {
  return std::string(job.program->name()) + "/" + std::to_string(job.size) +
         "/" + std::to_string(job.threads) + "/" +
         std::string(trainers::to_string(job.mode)) + "/" +
         std::string(trainers::to_string(job.pattern)) + "/" +
         std::to_string(job.rep);
}

/// Fingerprint pinning a journal to one exact job grid: a journal written
/// under a different TrainingConfig must be ignored, never half-applied.
std::uint64_t config_fingerprint(const TrainingConfig& config,
                                 std::size_t total_jobs) {
  util::Crc32 crc;
  const auto mix_u64 = [&crc](std::uint64_t v) {
    crc.update(&v, sizeof v);
  };
  mix_u64(config.seed);
  mix_u64(total_jobs);
  for (const std::uint32_t t : config.thread_counts) mix_u64(t);
  mix_u64(static_cast<std::uint64_t>(config.reps_good));
  mix_u64(static_cast<std::uint64_t>(config.reps_bad_fs));
  mix_u64(static_cast<std::uint64_t>(config.reps_bad_ma));
  mix_u64(static_cast<std::uint64_t>(config.seq_reps_good));
  mix_u64(static_cast<std::uint64_t>(config.seq_reps_bad_ma));
  std::uint64_t gap_bits = 0;
  static_assert(sizeof gap_bits == sizeof config.significance_gap);
  std::memcpy(&gap_bits, &config.significance_gap, sizeof gap_bits);
  mix_u64(gap_bits);
  mix_u64(config.filter ? 1 : 0);
  // Spread the 32-bit CRC over 64 bits the same way run_seed does.
  return util::SplitMix64(crc.value()).next();
}

// ---- instance row codec ----------------------------------------------------
//
// One LabeledInstance <-> one CSV line, shared by the cache file and the
// collection journal. Doubles print at precision 17, which round-trips
// value-exactly through parse, so journal-replayed rows re-serialize
// byte-identically — the foundation of the "resumed cache == uninterrupted
// cache" guarantee.

std::string format_instance_row(const LabeledInstance& inst) {
  std::ostringstream os;
  os.precision(17);
  for (const double v : inst.features.values()) os << v << ',';
  os << class_names()[static_cast<std::size_t>(inst.label)] << ','
     << inst.program << ',' << inst.size << ',' << inst.threads << ','
     << trainers::to_string(inst.pattern) << ',' << inst.seconds << ','
     << (inst.part_a ? 'A' : 'B') << ',' << inst.hitm_remote_ratio << ','
     << inst.dram_remote_ratio;
  return os.str();
}

LabeledInstance parse_instance_row(const std::string& line) {
  const auto names = class_names();
  std::istringstream ss(line);
  std::string field;
  LabeledInstance inst;
  for (std::size_t i = 0; i < pmu::kNumFeatures; ++i) {
    FSML_CHECK(static_cast<bool>(std::getline(ss, field, ',')));
    inst.features.set(i, std::stod(field));
  }
  FSML_CHECK(static_cast<bool>(std::getline(ss, field, ',')));
  const auto it = std::find(names.begin(), names.end(), field);
  FSML_CHECK_MSG(it != names.end(), "unknown label in training CSV");
  inst.label = static_cast<int>(std::distance(names.begin(), it));
  FSML_CHECK(static_cast<bool>(std::getline(ss, inst.program, ',')));
  FSML_CHECK(static_cast<bool>(std::getline(ss, field, ',')));
  inst.size = std::stoull(field);
  FSML_CHECK(static_cast<bool>(std::getline(ss, field, ',')));
  inst.threads = static_cast<std::uint32_t>(std::stoul(field));
  FSML_CHECK(static_cast<bool>(std::getline(ss, field, ',')));
  if (field == "random")
    inst.pattern = AccessPattern::kRandom;
  else if (field == "strided")
    inst.pattern = AccessPattern::kStrided;
  else
    inst.pattern = AccessPattern::kLinear;
  FSML_CHECK(static_cast<bool>(std::getline(ss, field, ',')));
  inst.seconds = std::stod(field);
  FSML_CHECK(static_cast<bool>(std::getline(ss, field, ',')));
  inst.part_a = field == "A";
  // Locality columns arrived after the first cache format; rows without
  // them (legacy caches, journals) load as single-socket zeros.
  if (std::getline(ss, field, ',')) {
    inst.hitm_remote_ratio = std::stod(field);
    FSML_CHECK_MSG(static_cast<bool>(std::getline(ss, field, ',')),
                   "truncated locality columns in training CSV");
    inst.dram_remote_ratio = std::stod(field);
  }
  return inst;
}

// ---- significance filters (paper Table 3) ----------------------------------

/// Part-A filter: census the group, drop its bad-ma instances when they are
/// not significantly slower than good; append survivors to `data`.
void filter_group_a(std::vector<LabeledInstance> group,
                    const TrainingConfig& config, TrainingData& data) {
  std::vector<const LabeledInstance*> good, bad_ma;
  for (const LabeledInstance& inst : group) {
    if (inst.label == kGood) {
      ++data.census_a.initial_good;
      good.push_back(&inst);
    } else if (inst.label == kBadFs) {
      ++data.census_a.initial_bad_fs;
    } else {
      ++data.census_a.initial_bad_ma;
      bad_ma.push_back(&inst);
    }
  }
  bool drop_bad_ma = false;
  // A group whose good runs were all quarantined has no baseline to filter
  // against; keep its survivors rather than comparing to nothing.
  if (config.filter && !bad_ma.empty() && !good.empty()) {
    const double good_med = median_seconds(good);
    const double bad_med = median_seconds(bad_ma);
    drop_bad_ma = bad_med < config.significance_gap * good_med;
  }
  for (LabeledInstance& inst : group) {
    if (drop_bad_ma && inst.label == kBadMa) {
      ++data.census_a.removed_bad_ma;
      continue;
    }
    data.instances.push_back(std::move(inst));
  }
}

/// Part-B filter: drop insignificant bad-ma patterns; if none of the
/// patterns is significant the whole group (good included) goes.
void filter_group_b(std::vector<LabeledInstance> group,
                    const TrainingConfig& config, TrainingData& data) {
  std::vector<const LabeledInstance*> good;
  std::map<AccessPattern, std::vector<const LabeledInstance*>> bad_ma;
  for (const LabeledInstance& inst : group) {
    if (inst.label == kGood) {
      ++data.census_b.initial_good;
      good.push_back(&inst);
    } else {
      ++data.census_b.initial_bad_ma;
      bad_ma[inst.pattern].push_back(&inst);
    }
  }

  std::vector<AccessPattern> dropped_patterns;
  if (config.filter && !good.empty()) {  // quarantine can empty the baseline
    const double good_med = median_seconds(good);
    for (const auto& [pattern, instances] : bad_ma) {
      if (median_seconds(instances) < config.significance_gap * good_med)
        dropped_patterns.push_back(pattern);
    }
  }
  const bool drop_group = dropped_patterns.size() == bad_ma.size() &&
                          !bad_ma.empty() && config.filter;
  for (LabeledInstance& inst : group) {
    const bool dropped_pattern =
        inst.label == kBadMa &&
        std::find(dropped_patterns.begin(), dropped_patterns.end(),
                  inst.pattern) != dropped_patterns.end();
    if (drop_group || dropped_pattern) {
      if (inst.label == kGood)
        ++data.census_b.removed_good;
      else
        ++data.census_b.removed_bad_ma;
      continue;
    }
    data.instances.push_back(std::move(inst));
  }
}

}  // namespace

TrainingConfig TrainingConfig::reduced() {
  TrainingConfig cfg;
  cfg.thread_counts = {3, 6};
  cfg.reps_good = 1;
  cfg.reps_bad_fs = 1;
  cfg.reps_bad_ma = 1;
  cfg.seq_reps_good = 1;
  cfg.seq_reps_bad_ma = 1;
  return cfg;
}

TrainingData collect_training_data(const TrainingConfig& config,
                                   std::ostream* log) {
  return collect_training_data(config, log, CollectOptions{}, nullptr);
}

TrainingData collect_training_data(const TrainingConfig& config,
                                   std::ostream* log,
                                   const CollectOptions& options,
                                   CollectReport* report) {
  const auto start = std::chrono::steady_clock::now();

  std::vector<CollectJob> jobs;
  std::vector<JobGroup> groups;
  enumerate_jobs(config, jobs, groups);

  // Durable progress: replay a matching journal (resume) or start fresh.
  Journal journal;
  std::map<std::size_t, std::string> replayed;
  if (!options.journal_path.empty()) {
    if (!options.resume) std::remove(options.journal_path.c_str());
    std::string note;
    replayed = journal.open_and_replay(
        options.journal_path, config_fingerprint(config, jobs.size()), &note);
    replayed.erase(replayed.lower_bound(jobs.size()), replayed.end());
    if (log && options.resume) *log << note << '\n' << std::flush;
  }

  const std::size_t n_jobs =
      config.jobs == 0 ? par::ThreadPool::hardware_workers() : config.jobs;
  // The submitting thread participates in parallel_for, so a pool of
  // n_jobs - 1 workers gives exactly n_jobs executing threads; jobs == 1
  // runs everything inline on this thread (the pre-pool behaviour).
  par::ThreadPool pool(n_jobs - 1);
  par::Supervisor supervisor(pool, options.supervision);
  fault::FaultInjector inert;
  fault::FaultInjector* injector =
      options.injector != nullptr ? options.injector : &inert;

  std::mutex log_mutex;
  std::size_t completed = 0;
  std::atomic<std::size_t> executed{0};
  const std::size_t progress_step = std::max<std::size_t>(jobs.size() / 16, 1);
  if (log)
    *log << "collecting " << jobs.size() << " training runs on " << n_jobs
         << " job(s)"
         << (replayed.empty()
                 ? std::string()
                 : " (" + std::to_string(replayed.size()) +
                       " replayed from journal)")
         << '\n'
         << std::flush;

  auto outcome = supervisor.run(
      jobs.size(),
      [&](std::size_t i, par::CancelToken& token, int attempt) {
        const auto hit = replayed.find(i);
        if (hit != replayed.end()) return parse_instance_row(hit->second);

        const CollectJob& job = jobs[i];
        const std::string key = job_key(job);
        injector->maybe_throw("collect.run", key, attempt);
        if (injector->should_hang("collect.run", key, attempt))
          injector->hang(token);  // spins until the deadline cancels us

        LabeledInstance inst =
            run_one(*job.program, job.size, job.threads, job.mode,
                    job.pattern, job.rep, config, job.part_a, token.flag());
        injector->count_completion();  // may raise the injected mid-sweep
                                       // abort (NonRetryable: sweep stops)
        executed.fetch_add(1, std::memory_order_relaxed);
        if (journal.is_open()) journal.append(i, format_instance_row(inst));
        if (log) {
          const std::lock_guard<std::mutex> lock(log_mutex);
          ++completed;
          if (completed % progress_step == 0 || completed == jobs.size())
            *log << "collected " << completed << '/' << jobs.size()
                 << " runs\n"
                 << std::flush;
        }
        return inst;
      });

  if (log) {
    for (const par::JobFailure& f : outcome.failures)
      *log << "quarantined " << job_key(jobs[f.index]) << " after "
           << f.attempts << " attempt(s)"
           << (f.timed_out ? " [deadline]" : "") << ": " << f.error << '\n'
           << std::flush;
  }

  // Census + significance filtering run serially in enumeration order, so
  // the assembled rows are independent of the execution schedule above.
  // Quarantined jobs have empty slots and simply drop out of their group.
  TrainingData data;
  for (const JobGroup& group : groups) {
    std::vector<LabeledInstance> members;
    members.reserve(group.end - group.begin);
    for (std::size_t i = group.begin; i < group.end; ++i)
      if (outcome.results[i].has_value())
        members.push_back(std::move(*outcome.results[i]));
    if (group.part_a)
      filter_group_a(std::move(members), config, data);
    else
      filter_group_b(std::move(members), config, data);
  }

  if (report) {
    report->total_jobs = jobs.size();
    report->replayed = replayed.size();
    report->executed = executed.load();
    report->retried_attempts = outcome.retried_attempts;
    report->quarantined.clear();
    for (const par::JobFailure& f : outcome.failures)
      report->quarantined.push_back({f, job_key(jobs[f.index])});
  }

  if (log) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    *log << "collection complete: " << data.instances.size()
         << " instances in " << util::auto_time(elapsed) << " (" << n_jobs
         << " job(s)";
    if (!outcome.failures.empty())
      *log << ", " << outcome.failures.size() << " quarantined";
    if (outcome.retried_attempts > 0)
      *log << ", " << outcome.retried_attempts << " retried";
    *log << ")\n" << std::flush;
  }
  return data;
}

ml::Dataset TrainingData::to_dataset() const {
  ml::Dataset dataset(pmu::FeatureVector::feature_names(), class_names());
  for (const LabeledInstance& inst : instances) {
    std::vector<double> x(inst.features.values().begin(),
                          inst.features.values().end());
    dataset.add(std::move(x), inst.label);
  }
  return dataset;
}

std::vector<double> extended_row(const LabeledInstance& inst) {
  std::vector<double> x(inst.features.values().begin(),
                        inst.features.values().end());
  x.push_back(inst.hitm_remote_ratio);
  x.push_back(inst.dram_remote_ratio);
  return x;
}

ml::Dataset TrainingData::to_extended_dataset() const {
  ml::Dataset dataset(extended_feature_names(), class_names());
  for (const LabeledInstance& inst : instances)
    dataset.add(extended_row(inst), inst.label);
  return dataset;
}

std::vector<std::vector<double>> TrainingData::good_extended_rows() const {
  std::vector<std::vector<double>> rows;
  for (const LabeledInstance& inst : instances)
    if (inst.label == kGood) rows.push_back(extended_row(inst));
  return rows;
}

namespace {

void write_census(std::ostream& os, const char* tag, const Census& c) {
  os << "# census " << tag << ' ' << c.initial_good << ' ' << c.initial_bad_fs
     << ' ' << c.initial_bad_ma << ' ' << c.removed_good << ' '
     << c.removed_bad_fs << ' ' << c.removed_bad_ma << '\n';
}

Census read_census(const std::string& line) {
  std::istringstream ss(line);
  std::string hash, word, tag;
  Census c;
  ss >> hash >> word >> tag >> c.initial_good >> c.initial_bad_fs >>
      c.initial_bad_ma >> c.removed_good >> c.removed_bad_fs >>
      c.removed_bad_ma;
  FSML_CHECK_MSG(static_cast<bool>(ss), "malformed census line");
  return c;
}

}  // namespace

void TrainingData::save_csv(std::ostream& os) const {
  std::ostringstream body;
  write_census(body, "A", census_a);
  write_census(body, "B", census_b);
  for (const auto& name : pmu::FeatureVector::feature_names())
    body << name << ',';
  body << "label,program,size,threads,pattern,seconds,part,"
          "hitm_remote_ratio,dram_remote_ratio\n";
  for (const LabeledInstance& inst : instances)
    body << format_instance_row(inst) << '\n';
  const std::string bytes = body.str();
  char crc[16];
  std::snprintf(crc, sizeof crc, "%08x", util::crc32(bytes));
  // The footer detects any in-row corruption; the census pins the row
  // count, so together they catch both flipped bytes and truncation.
  os << bytes << "# crc32 " << crc << '\n';
}

TrainingData TrainingData::load_csv(std::istream& is) {
  TrainingData data;
  std::string line;
  util::Crc32 body_crc;
  bool footer_seen = false;
  const auto next_line = [&](std::string& out) {
    if (!std::getline(is, out)) return false;
    if (out.rfind("# crc32 ", 0) == 0) {
      unsigned long long stored = 0;
      FSML_CHECK_MSG(std::sscanf(out.c_str() + 8, "%llx", &stored) == 1,
                     "malformed CRC footer in training CSV");
      FSML_CHECK_MSG(body_crc.value() == stored,
                     "training CSV CRC mismatch: the cache is corrupt");
      footer_seen = true;
      return false;
    }
    body_crc.update(out.data(), out.size());
    body_crc.update("\n", 1);
    return true;
  };

  FSML_CHECK_MSG(next_line(line), "empty training CSV");
  data.census_a = read_census(line);
  FSML_CHECK(next_line(line));
  data.census_b = read_census(line);
  FSML_CHECK(next_line(line));  // header

  while (next_line(line)) {
    if (line.empty()) continue;
    data.instances.push_back(parse_instance_row(line));
  }
  // Legacy caches (pre-footer) are still accepted: the row-count census
  // below catches boundary truncation either way.
  (void)footer_seen;
  // A file truncated at a row boundary parses cleanly but is still missing
  // data; the census header pins the expected row count.
  FSML_CHECK_MSG(data.instances.size() ==
                     data.census_a.final_total() + data.census_b.final_total(),
                 "training CSV row count does not match its census");
  return data;
}

TrainingData collect_or_load(const TrainingConfig& config,
                             const std::string& path, std::ostream* log) {
  return collect_or_load(config, path, log, CollectOptions{}, nullptr);
}

TrainingData collect_or_load(const TrainingConfig& config,
                             const std::string& path, std::ostream* log,
                             const CollectOptions& options,
                             CollectReport* report) {
  {
    std::ifstream in(path);
    if (in) {
      try {
        TrainingData data = TrainingData::load_csv(in);
        if (log) *log << "loaded cached training data from " << path << '\n';
        return data;
      } catch (const std::exception& e) {
        // A truncated or corrupt cache must not take the pipeline down (or
        // worse, silently feed it a partial dataset): discard and re-collect.
        if (log)
          *log << "training cache " << path << " is unusable (" << e.what()
               << "); re-collecting\n";
      }
    }
  }
  CollectOptions opts = options;
  if (opts.journal_path.empty()) opts.journal_path = path + ".journal";
  TrainingData data = collect_training_data(config, log, opts, report);

  std::ostringstream out;
  data.save_csv(out);
  std::string bytes = out.str();
  if (options.injector != nullptr)
    bytes = options.injector->corrupt(std::move(bytes));
  util::write_file_atomic(path, bytes);
  // The cache is durable; the journal has served its purpose.
  std::remove(opts.journal_path.c_str());
  if (log) *log << "training data cached to " << path << '\n';
  return data;
}

}  // namespace fsml::core
