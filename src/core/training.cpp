#include "core/training.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>

#include "par/parallel_for.hpp"
#include "par/thread_pool.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/time_format.hpp"

namespace fsml::core {

namespace {

using trainers::AccessPattern;
using trainers::MiniProgram;
using trainers::Mode;
using trainers::TrainerParams;

std::uint64_t run_seed(std::uint64_t base, const std::string& program,
                       std::uint64_t size, std::uint32_t threads, Mode mode,
                       AccessPattern pattern, int rep) {
  // FNV-1a over the run coordinates, then SplitMix to spread bits.
  std::uint64_t h = 1469598103934665603ULL ^ base;
  const auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 1099511628211ULL;
  };
  for (const char c : program) mix(static_cast<std::uint64_t>(c));
  mix(size);
  mix(threads);
  mix(static_cast<std::uint64_t>(mode));
  mix(static_cast<std::uint64_t>(pattern));
  mix(static_cast<std::uint64_t>(rep));
  return util::SplitMix64(h).next();
}

LabeledInstance run_one(const MiniProgram& program, std::uint64_t size,
                        std::uint32_t threads, Mode mode,
                        AccessPattern pattern, int rep,
                        const TrainingConfig& config, bool part_a) {
  TrainerParams params;
  params.mode = mode;
  params.threads = threads;
  params.size = size;
  params.pattern = pattern;
  params.seed = run_seed(config.seed, std::string(program.name()), size,
                         threads, mode, pattern, rep);
  const trainers::TrainerRun run =
      trainers::run_trainer(program, params, config.machine);

  LabeledInstance inst;
  inst.features = run.features;
  inst.label = label_of(mode);
  inst.program = std::string(program.name());
  inst.size = size;
  inst.threads = threads;
  inst.pattern = pattern;
  inst.seconds = run.result.seconds;
  inst.part_a = part_a;
  return inst;
}

double median_seconds(const std::vector<const LabeledInstance*>& group) {
  std::vector<double> secs;
  secs.reserve(group.size());
  for (const LabeledInstance* inst : group) secs.push_back(inst->seconds);
  return util::median(std::move(secs));
}

// ---- job enumeration -------------------------------------------------------
//
// Collection is a pure map over independent simulations: the full job list
// is enumerated up front in the canonical (program, size, threads, mode,
// rep) order, executed on a host-thread pool in whatever order the
// scheduler picks, and then filtered group-by-group in enumeration order.
// Each job's RNG seed derives from its coordinates (run_seed), never from
// execution order, so any `jobs` setting produces bit-identical rows.

struct CollectJob {
  const MiniProgram* program = nullptr;
  std::uint64_t size = 0;
  std::uint32_t threads = 1;
  Mode mode = Mode::kGood;
  AccessPattern pattern = AccessPattern::kLinear;
  int rep = 0;
  bool part_a = true;
};

/// One filter group: [begin, end) into the job list. Part A groups share
/// (program, size, threads); Part B groups share (program, size).
struct JobGroup {
  std::size_t begin = 0;
  std::size_t end = 0;
  bool part_a = true;
};

void enumerate_jobs(const TrainingConfig& config,
                    std::vector<CollectJob>& jobs,
                    std::vector<JobGroup>& groups) {
  for (const MiniProgram* program : trainers::multithreaded_set()) {
    for (const std::uint64_t size : program->default_sizes()) {
      for (const std::uint32_t threads : config.thread_counts) {
        JobGroup group{jobs.size(), 0, true};
        for (int r = 0; r < config.reps_good; ++r)
          jobs.push_back({program, size, threads, Mode::kGood,
                          AccessPattern::kLinear, r, true});
        for (int r = 0; r < config.reps_bad_fs; ++r)
          jobs.push_back({program, size, threads, Mode::kBadFs,
                          AccessPattern::kLinear, r, true});
        if (program->supports_bad_ma()) {
          for (int r = 0; r < config.reps_bad_ma; ++r) {
            const AccessPattern pattern = r % 2 == 0
                                              ? AccessPattern::kRandom
                                              : AccessPattern::kStrided;
            jobs.push_back(
                {program, size, threads, Mode::kBadMa, pattern, r, true});
          }
        }
        group.end = jobs.size();
        groups.push_back(group);
      }
    }
  }
  for (const MiniProgram* program : trainers::sequential_set()) {
    for (const std::uint64_t size : program->default_sizes()) {
      JobGroup group{jobs.size(), 0, false};
      for (int r = 0; r < config.seq_reps_good; ++r)
        jobs.push_back({program, size, 1, Mode::kGood, AccessPattern::kLinear,
                        r, false});
      for (const AccessPattern pattern :
           {AccessPattern::kRandom, AccessPattern::kStrided}) {
        for (int r = 0; r < config.seq_reps_bad_ma; ++r)
          jobs.push_back(
              {program, size, 1, Mode::kBadMa, pattern, r, false});
      }
      group.end = jobs.size();
      groups.push_back(group);
    }
  }
}

// ---- significance filters (paper Table 3) ----------------------------------

/// Part-A filter: census the group, drop its bad-ma instances when they are
/// not significantly slower than good; append survivors to `data`.
void filter_group_a(std::vector<LabeledInstance> group,
                    const TrainingConfig& config, TrainingData& data) {
  std::vector<const LabeledInstance*> good, bad_ma;
  for (const LabeledInstance& inst : group) {
    if (inst.label == kGood) {
      ++data.census_a.initial_good;
      good.push_back(&inst);
    } else if (inst.label == kBadFs) {
      ++data.census_a.initial_bad_fs;
    } else {
      ++data.census_a.initial_bad_ma;
      bad_ma.push_back(&inst);
    }
  }
  bool drop_bad_ma = false;
  if (config.filter && !bad_ma.empty()) {
    const double good_med = median_seconds(good);
    const double bad_med = median_seconds(bad_ma);
    drop_bad_ma = bad_med < config.significance_gap * good_med;
  }
  for (LabeledInstance& inst : group) {
    if (drop_bad_ma && inst.label == kBadMa) {
      ++data.census_a.removed_bad_ma;
      continue;
    }
    data.instances.push_back(std::move(inst));
  }
}

/// Part-B filter: drop insignificant bad-ma patterns; if none of the
/// patterns is significant the whole group (good included) goes.
void filter_group_b(std::vector<LabeledInstance> group,
                    const TrainingConfig& config, TrainingData& data) {
  std::vector<const LabeledInstance*> good;
  std::map<AccessPattern, std::vector<const LabeledInstance*>> bad_ma;
  for (const LabeledInstance& inst : group) {
    if (inst.label == kGood) {
      ++data.census_b.initial_good;
      good.push_back(&inst);
    } else {
      ++data.census_b.initial_bad_ma;
      bad_ma[inst.pattern].push_back(&inst);
    }
  }

  std::vector<AccessPattern> dropped_patterns;
  if (config.filter) {
    const double good_med = median_seconds(good);
    for (const auto& [pattern, instances] : bad_ma) {
      if (median_seconds(instances) < config.significance_gap * good_med)
        dropped_patterns.push_back(pattern);
    }
  }
  const bool drop_group = dropped_patterns.size() == bad_ma.size() &&
                          !bad_ma.empty() && config.filter;
  for (LabeledInstance& inst : group) {
    const bool dropped_pattern =
        inst.label == kBadMa &&
        std::find(dropped_patterns.begin(), dropped_patterns.end(),
                  inst.pattern) != dropped_patterns.end();
    if (drop_group || dropped_pattern) {
      if (inst.label == kGood)
        ++data.census_b.removed_good;
      else
        ++data.census_b.removed_bad_ma;
      continue;
    }
    data.instances.push_back(std::move(inst));
  }
}

}  // namespace

TrainingConfig TrainingConfig::reduced() {
  TrainingConfig cfg;
  cfg.thread_counts = {3, 6};
  cfg.reps_good = 1;
  cfg.reps_bad_fs = 1;
  cfg.reps_bad_ma = 1;
  cfg.seq_reps_good = 1;
  cfg.seq_reps_bad_ma = 1;
  return cfg;
}

TrainingData collect_training_data(const TrainingConfig& config,
                                   std::ostream* log) {
  const auto start = std::chrono::steady_clock::now();

  std::vector<CollectJob> jobs;
  std::vector<JobGroup> groups;
  enumerate_jobs(config, jobs, groups);

  const std::size_t n_jobs =
      config.jobs == 0 ? par::ThreadPool::hardware_workers() : config.jobs;
  // The submitting thread participates in parallel_for, so a pool of
  // n_jobs - 1 workers gives exactly n_jobs executing threads; jobs == 1
  // runs everything inline on this thread (the pre-pool behaviour).
  par::ThreadPool pool(n_jobs - 1);

  std::mutex log_mutex;
  std::size_t completed = 0;
  const std::size_t progress_step = std::max<std::size_t>(jobs.size() / 16, 1);
  if (log)
    *log << "collecting " << jobs.size() << " training runs on " << n_jobs
         << " job(s)\n"
         << std::flush;

  std::vector<LabeledInstance> instances = par::parallel_transform(
      pool, jobs, [&](const CollectJob& job) {
        LabeledInstance inst =
            run_one(*job.program, job.size, job.threads, job.mode,
                    job.pattern, job.rep, config, job.part_a);
        if (log) {
          const std::lock_guard<std::mutex> lock(log_mutex);
          ++completed;
          if (completed % progress_step == 0 || completed == jobs.size())
            *log << "collected " << completed << '/' << jobs.size()
                 << " runs\n"
                 << std::flush;
        }
        return inst;
      });

  // Census + significance filtering run serially in enumeration order, so
  // the assembled rows are independent of the execution schedule above.
  TrainingData data;
  for (const JobGroup& group : groups) {
    std::vector<LabeledInstance> members(
        std::make_move_iterator(instances.begin() +
                                static_cast<std::ptrdiff_t>(group.begin)),
        std::make_move_iterator(instances.begin() +
                                static_cast<std::ptrdiff_t>(group.end)));
    if (group.part_a)
      filter_group_a(std::move(members), config, data);
    else
      filter_group_b(std::move(members), config, data);
  }

  if (log) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    *log << "collection complete: " << data.instances.size()
         << " instances in " << util::auto_time(elapsed) << " ("
         << n_jobs << " job(s))\n"
         << std::flush;
  }
  return data;
}

ml::Dataset TrainingData::to_dataset() const {
  ml::Dataset dataset(pmu::FeatureVector::feature_names(), class_names());
  for (const LabeledInstance& inst : instances) {
    std::vector<double> x(inst.features.values().begin(),
                          inst.features.values().end());
    dataset.add(std::move(x), inst.label);
  }
  return dataset;
}

namespace {

void write_census(std::ostream& os, const char* tag, const Census& c) {
  os << "# census " << tag << ' ' << c.initial_good << ' ' << c.initial_bad_fs
     << ' ' << c.initial_bad_ma << ' ' << c.removed_good << ' '
     << c.removed_bad_fs << ' ' << c.removed_bad_ma << '\n';
}

Census read_census(const std::string& line) {
  std::istringstream ss(line);
  std::string hash, word, tag;
  Census c;
  ss >> hash >> word >> tag >> c.initial_good >> c.initial_bad_fs >>
      c.initial_bad_ma >> c.removed_good >> c.removed_bad_fs >>
      c.removed_bad_ma;
  FSML_CHECK_MSG(static_cast<bool>(ss), "malformed census line");
  return c;
}

}  // namespace

void TrainingData::save_csv(std::ostream& os) const {
  write_census(os, "A", census_a);
  write_census(os, "B", census_b);
  for (const auto& name : pmu::FeatureVector::feature_names())
    os << name << ',';
  os << "label,program,size,threads,pattern,seconds,part\n";
  os.precision(17);
  for (const LabeledInstance& inst : instances) {
    for (const double v : inst.features.values()) os << v << ',';
    os << class_names()[static_cast<std::size_t>(inst.label)] << ','
       << inst.program << ',' << inst.size << ',' << inst.threads << ','
       << trainers::to_string(inst.pattern) << ',' << inst.seconds << ','
       << (inst.part_a ? 'A' : 'B') << '\n';
  }
}

TrainingData TrainingData::load_csv(std::istream& is) {
  TrainingData data;
  std::string line;
  FSML_CHECK_MSG(static_cast<bool>(std::getline(is, line)),
                 "empty training CSV");
  data.census_a = read_census(line);
  FSML_CHECK(static_cast<bool>(std::getline(is, line)));
  data.census_b = read_census(line);
  FSML_CHECK(static_cast<bool>(std::getline(is, line)));  // header

  const auto names = class_names();
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string field;
    LabeledInstance inst;
    for (std::size_t i = 0; i < pmu::kNumFeatures; ++i) {
      FSML_CHECK(static_cast<bool>(std::getline(ss, field, ',')));
      inst.features.set(i, std::stod(field));
    }
    FSML_CHECK(static_cast<bool>(std::getline(ss, field, ',')));
    const auto it = std::find(names.begin(), names.end(), field);
    FSML_CHECK_MSG(it != names.end(), "unknown label in training CSV");
    inst.label = static_cast<int>(std::distance(names.begin(), it));
    FSML_CHECK(static_cast<bool>(std::getline(ss, inst.program, ',')));
    FSML_CHECK(static_cast<bool>(std::getline(ss, field, ',')));
    inst.size = std::stoull(field);
    FSML_CHECK(static_cast<bool>(std::getline(ss, field, ',')));
    inst.threads = static_cast<std::uint32_t>(std::stoul(field));
    FSML_CHECK(static_cast<bool>(std::getline(ss, field, ',')));
    if (field == "random")
      inst.pattern = AccessPattern::kRandom;
    else if (field == "strided")
      inst.pattern = AccessPattern::kStrided;
    else
      inst.pattern = AccessPattern::kLinear;
    FSML_CHECK(static_cast<bool>(std::getline(ss, field, ',')));
    inst.seconds = std::stod(field);
    FSML_CHECK(static_cast<bool>(std::getline(ss, field, ',')));
    inst.part_a = field == "A";
    data.instances.push_back(std::move(inst));
  }
  // A file truncated at a row boundary parses cleanly but is still missing
  // data; the census header pins the expected row count.
  FSML_CHECK_MSG(data.instances.size() ==
                     data.census_a.final_total() + data.census_b.final_total(),
                 "training CSV row count does not match its census");
  return data;
}

TrainingData collect_or_load(const TrainingConfig& config,
                             const std::string& path, std::ostream* log) {
  {
    std::ifstream in(path);
    if (in) {
      try {
        TrainingData data = TrainingData::load_csv(in);
        if (log) *log << "loaded cached training data from " << path << '\n';
        return data;
      } catch (const std::exception& e) {
        // A truncated or corrupt cache must not take the pipeline down (or
        // worse, silently feed it a partial dataset): discard and re-collect.
        if (log)
          *log << "training cache " << path << " is unusable (" << e.what()
               << "); re-collecting\n";
      }
    }
  }
  TrainingData data = collect_training_data(config, log);
  std::ofstream out(path);
  FSML_CHECK_MSG(static_cast<bool>(out),
                 "cannot write training cache to " + path);
  data.save_csv(out);
  if (log) *log << "training data cached to " << path << '\n';
  return data;
}

}  // namespace fsml::core
