// FalseSharingDetector: the library's primary public API.
//
//   core::TrainingData data = core::collect_or_load(cfg, "training.csv");
//   core::FalseSharingDetector detector;
//   detector.train(data);
//
//   // classify any instrumented run of an arbitrary program:
//   trainers::TrainerRun run = ...;           // or a workload proxy run
//   trainers::Mode verdict = detector.classify(run.features);
//
// The detector wraps a J48/C4.5 decision tree over the 15 normalized
// Westmere events, mirrors the paper's majority-vote aggregation across a
// program's (input, threads, optimization) cases, and persists to disk.
//
// Degraded measurement: classify() also accepts feature vectors with NaN
// (missing) slots — e.g. events lost to counter multiplexing — which the
// C4.5 tree resolves fractionally. classify_robust() goes further: it
// re-measures a bounded number of times, majority-votes the per-measurement
// verdicts, reports a confidence, and abstains with a distinct `unknown`
// verdict (RobustVerdict::known == false) when the votes are too scattered
// to trust. classify_degraded() wires that loop to a pmu::MeasurementModel
// over one simulated run.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/labels.hpp"
#include "core/training.hpp"
#include "exec/machine.hpp"
#include "ml/c45.hpp"
#include "ml/flat_tree.hpp"
#include "pmu/counters.hpp"
#include "pmu/noise.hpp"

namespace fsml::core {

/// Retry/vote/abstain policy for classification under degraded measurement.
struct RobustConfig {
  /// Measurements taken (bounded retry loop). Odd values avoid two-way
  /// vote ties, though severity tie-breaking resolves them deterministically
  /// either way.
  int repeats = 5;
  /// Minimum fraction of classified measurements the winning verdict must
  /// hold; below it the detector abstains (verdict `unknown`).
  double min_confidence = 0.6;

  /// Classify engine for the vote loop: the compiled ml::FlatTree batch
  /// kernel (default) or the pointer tree, kept as the cross-validation
  /// reference exactly like sim::MachineConfig::use_coherence_directory
  /// keeps the snoop scan. Both produce bit-identical verdicts (debug
  /// builds DCHECK that per lookup); the knob exists so benches can time
  /// flat vs pointer and so a miscompile could be diagnosed in production.
  bool use_flat_tree = true;

  /// Throws std::runtime_error on out-of-range values (repeats in 1..1001,
  /// min_confidence in [0, 1], NaN rejected).
  void validate() const;
};

/// Outcome of a robust classification. `known == false` is the distinct
/// `unknown` verdict: the measurements were too degraded or too scattered
/// to call, which is *not* the same as `good`.
struct RobustVerdict {
  bool known = false;
  trainers::Mode mode = trainers::Mode::kGood;  ///< valid only when known
  double confidence = 0.0;      ///< winner's share of classified repeats
  std::size_t repeats = 0;      ///< measurements attempted
  std::size_t classified = 0;   ///< measurements that yielded a verdict
  std::array<std::size_t, 3> votes{};  ///< by class index (labels.hpp)

  /// "good (confidence 0.80, 4/5 runs)" or "unknown (3/5 runs classified)".
  std::string to_string() const;
};

class FalseSharingDetector {
 public:
  explicit FalseSharingDetector(ml::C45Params params = {});

  /// Trains the tree on collected mini-program data.
  void train(const TrainingData& data);
  void train(const ml::Dataset& dataset);

  bool trained() const { return trained_; }

  /// Classifies one program run by its normalized event counts. NaN slots
  /// (events lost to degraded measurement) are handled by the tree's
  /// fractional-instance machinery.
  trainers::Mode classify(const pmu::FeatureVector& features) const;

  /// One measurement attempt: the features of repeat `r`, or nullopt when
  /// the measurement was unusable (e.g. the instruction counter was lost).
  using MeasureFn =
      std::function<std::optional<pmu::FeatureVector>(std::size_t r)>;

  /// Bounded retry loop: measures `config.repeats` times, classifies each
  /// usable measurement, majority-votes with the same severity tie-break as
  /// majority(), and abstains (`known == false`) when no measurement was
  /// usable or the winner's share of classified votes is below
  /// `config.min_confidence`.
  RobustVerdict classify_robust(const MeasureFn& measure,
                                const RobustConfig& config = {}) const;

  /// Paper Table 5: a program's overall classification is the majority
  /// verdict over all its cases (ties break toward the worse verdict:
  /// bad-fs > bad-ma > good — a detector should not hide a fault it saw in
  /// half the cases).
  static trainers::Mode majority(const std::vector<trainers::Mode>& verdicts);

  const ml::C45Tree& model() const { return tree_; }

  /// The compiled flat serving form, rebuilt after every train()/load()
  /// (the pointer tree stays the single persisted source of truth — model
  /// files never carry the flat form, loaders recompile it). Null only
  /// before training.
  const ml::FlatTree* flat() const { return flat_.get(); }

  void save(std::ostream& os) const;
  static FalseSharingDetector load(std::istream& is);
  void save_file(const std::string& path) const;
  static FalseSharingDetector load_file(const std::string& path);

 private:
  ml::C45Tree tree_;
  std::shared_ptr<const ml::FlatTree> flat_;
  bool trained_ = false;
};

/// Classifies one simulated run under a measurement-degradation model: each
/// repeat re-reads the run's counters through `model` (fresh multiplex
/// rotation phase, jitter and fault draws per repeat), then the verdicts are
/// voted as in classify_robust(). `measurement_base` offsets the noise
/// draws so distinct runs measured with one model stay decorrelated.
/// Deterministic in (model seed, measurement_base, config) — host thread
/// count never changes the result.
RobustVerdict classify_degraded(const FalseSharingDetector& detector,
                                const exec::RunResult& run,
                                const pmu::MeasurementModel& model,
                                const RobustConfig& config = {},
                                std::uint64_t measurement_base = 0);

}  // namespace fsml::core
