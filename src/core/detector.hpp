// FalseSharingDetector: the library's primary public API.
//
//   core::TrainingData data = core::collect_or_load(cfg, "training.csv");
//   core::FalseSharingDetector detector;
//   detector.train(data);
//
//   // classify any instrumented run of an arbitrary program:
//   trainers::TrainerRun run = ...;           // or a workload proxy run
//   trainers::Mode verdict = detector.classify(run.features);
//
// The detector wraps a J48/C4.5 decision tree over the 15 normalized
// Westmere events, mirrors the paper's majority-vote aggregation across a
// program's (input, threads, optimization) cases, and persists to disk.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/labels.hpp"
#include "core/training.hpp"
#include "ml/c45.hpp"
#include "pmu/counters.hpp"

namespace fsml::core {

class FalseSharingDetector {
 public:
  explicit FalseSharingDetector(ml::C45Params params = {});

  /// Trains the tree on collected mini-program data.
  void train(const TrainingData& data);
  void train(const ml::Dataset& dataset);

  bool trained() const { return trained_; }

  /// Classifies one program run by its normalized event counts.
  trainers::Mode classify(const pmu::FeatureVector& features) const;

  /// Paper Table 5: a program's overall classification is the majority
  /// verdict over all its cases (ties break toward the worse verdict:
  /// bad-fs > bad-ma > good — a detector should not hide a fault it saw in
  /// half the cases).
  static trainers::Mode majority(const std::vector<trainers::Mode>& verdicts);

  const ml::C45Tree& model() const { return tree_; }

  void save(std::ostream& os) const;
  static FalseSharingDetector load(std::istream& is);
  void save_file(const std::string& path) const;
  static FalseSharingDetector load_file(const std::string& path);

 private:
  ml::C45Tree tree_;
  bool trained_ = false;
};

}  // namespace fsml::core
