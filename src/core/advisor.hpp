// MitigationAdvisor: turns ground-truth line reports into actionable
// layout recommendations — the counterpart of SHERIFF-PROTECT's automatic
// mitigation (the paper's ref [21] both detects and repairs false sharing;
// our advisor recommends, the caller applies).
//
//   baseline::ShadowDetector shadow(threads);
//   ... run instrumented ...
//   core::MitigationReport report = core::advise(
//       shadow.report(), machine.arena(), machine.config().l1d.line_bytes);
//   for (const auto& r : report.recommendations) std::puts(r.text.c_str());
//
// For each contended line the advisor: names the allocation it belongs to
// (when the kernel used alloc_named), distinguishes false from true sharing
// (padding fixes the former, only batching/redesign fixes the latter),
// counts the distinct writers, and estimates the padded-layout memory cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/report.hpp"
#include "exec/arena.hpp"

namespace fsml::core {

enum class Remedy : std::uint8_t {
  kPadToLine,       ///< false sharing: give each writer its own line
  kReduceSharing,   ///< true sharing: batch updates / privatize + merge
  kNone,            ///< contention too small to matter
};

std::string_view to_string(Remedy remedy);

struct Recommendation {
  sim::Addr line = 0;
  std::string allocation;      ///< named allocation, or "<unnamed>"
  std::uint64_t offset = 0;    ///< line offset within the allocation
  Remedy remedy = Remedy::kNone;
  std::uint32_t writers = 0;
  std::uint64_t false_sharing_events = 0;
  std::uint64_t true_sharing_events = 0;
  std::uint64_t padding_cost_bytes = 0;  ///< extra memory if padded
  std::string text;            ///< human-readable one-liner
};

struct MitigationReport {
  std::vector<Recommendation> recommendations;  ///< most severe first
  bool has_false_sharing = false;

  std::string to_string() const;
};

/// Builds recommendations from a sharing report. Lines whose combined
/// events fall below `min_events` are ignored as noise.
MitigationReport advise(const baseline::SharingReport& sharing,
                        const exec::VirtualArena& arena,
                        std::uint32_t line_bytes = 64,
                        std::uint64_t min_events = 16);

}  // namespace fsml::core
