// MitigationAdvisor: turns ground-truth line reports into actionable
// layout recommendations — the counterpart of SHERIFF-PROTECT's automatic
// mitigation (the paper's ref [21] both detects and repairs false sharing;
// our advisor recommends, the caller applies).
//
//   baseline::ShadowDetector shadow(threads);
//   ... run instrumented ...
//   core::MitigationReport report = core::advise(
//       shadow.report(), machine.arena(), machine.config().l1d.line_bytes);
//   for (const auto& r : report.recommendations) std::puts(r.text.c_str());
//
// For each contended line the advisor: names the allocation it belongs to
// (when the kernel used alloc_named), distinguishes false from true sharing
// (padding fixes the former, only batching/redesign fixes the latter),
// counts the distinct writers, and estimates the padded-layout memory cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/report.hpp"
#include "exec/arena.hpp"

namespace fsml::core {

enum class Remedy : std::uint8_t {
  kPadToLine,       ///< false sharing: give each writer its own line
  kReduceSharing,   ///< true sharing: batch updates / privatize + merge
  kBindToSocket,    ///< cross-socket ping-pong: pin the threads to one socket
  kNone,            ///< contention too small to matter
};

std::string_view to_string(Remedy remedy);

struct Recommendation {
  sim::Addr line = 0;
  std::string allocation;      ///< named allocation, or "<unnamed>"
  std::uint64_t offset = 0;    ///< line offset within the allocation
  Remedy remedy = Remedy::kNone;
  std::uint32_t writers = 0;
  std::uint64_t false_sharing_events = 0;
  std::uint64_t true_sharing_events = 0;
  std::uint64_t padding_cost_bytes = 0;  ///< extra memory if padded
  std::string text;            ///< human-readable one-liner
};

/// Run-level context from the detection pipeline (core/triage.hpp): the
/// NUMA-locality ratio of the run's coherence traffic and the triage
/// priority of the alarm that prompted this advice. Defaults reproduce the
/// context-free overload exactly.
struct AdvisorContext {
  /// Remote HITMs / all HITMs (core::derived_locality). Above 0.5 the
  /// contended lines ping-pong across the QPI link, and pinning the
  /// involved threads to one socket is the cheapest first mitigation.
  double hitm_remote_ratio = 0.0;
  /// Triage priority of the alarm in [0, 1]; below 0.5 the report is
  /// flagged as low-priority so callers verify before refactoring.
  double alarm_priority = 1.0;
};

struct MitigationReport {
  std::vector<Recommendation> recommendations;  ///< most severe first
  bool has_false_sharing = false;
  double alarm_priority = 1.0;  ///< from AdvisorContext

  std::string to_string() const;
};

/// Builds recommendations from a sharing report. Lines whose combined
/// events fall below `min_events` are ignored as noise. The context
/// overload additionally prepends a bind-to-socket recommendation when
/// remote HITMs dominate a report that shows false sharing — padding fixes
/// the layout eventually, but thread placement stops the QPI round-trips
/// today — and stamps the triage priority into the report.
MitigationReport advise(const baseline::SharingReport& sharing,
                        const exec::VirtualArena& arena,
                        std::uint32_t line_bytes = 64,
                        std::uint64_t min_events = 16);
MitigationReport advise(const baseline::SharingReport& sharing,
                        const exec::VirtualArena& arena,
                        std::uint32_t line_bytes, std::uint64_t min_events,
                        const AdvisorContext& context);

}  // namespace fsml::core
