#include "core/slices.hpp"

#include <algorithm>

#include "pmu/counters.hpp"
#include "util/check.hpp"

namespace fsml::core {

SliceReport::SliceReport(std::vector<SliceVerdict> slices,
                         sim::Cycles slice_cycles)
    : slices_(std::move(slices)), slice_cycles_(slice_cycles) {}

std::size_t SliceReport::count(trainers::Mode mode) const {
  std::size_t n = 0;
  for (const SliceVerdict& s : slices_)
    if (s.classified && s.verdict == mode) ++n;
  return n;
}

double SliceReport::fraction(trainers::Mode mode) const {
  std::size_t classified = 0;
  for (const SliceVerdict& s : slices_)
    if (s.classified) ++classified;
  if (classified == 0) return 0.0;
  return static_cast<double>(count(mode)) /
         static_cast<double>(classified);
}

trainers::Mode SliceReport::overall() const {
  std::vector<trainers::Mode> verdicts;
  for (const SliceVerdict& s : slices_)
    if (s.classified) verdicts.push_back(s.verdict);
  if (verdicts.empty()) return trainers::Mode::kGood;
  return FalseSharingDetector::majority(verdicts);
}

std::vector<SliceRange> SliceReport::bad_fs_ranges() const {
  std::vector<SliceRange> ranges;
  std::optional<std::size_t> start;
  for (std::size_t i = 0; i <= slices_.size(); ++i) {
    const bool fs = i < slices_.size() && slices_[i].classified &&
                    slices_[i].verdict == trainers::Mode::kBadFs;
    if (fs && !start) start = i;
    if (!fs && start) {
      ranges.push_back(SliceRange{*start, i - 1});
      start.reset();
    }
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const SliceRange& a, const SliceRange& b) {
              return a.length() > b.length();
            });
  return ranges;
}

std::string SliceReport::timeline() const {
  std::string out;
  out.reserve(slices_.size());
  for (const SliceVerdict& s : slices_) {
    if (!s.classified) {
      out.push_back('.');
    } else {
      switch (s.verdict) {
        case trainers::Mode::kGood: out.push_back('g'); break;
        case trainers::Mode::kBadFs: out.push_back('F'); break;
        case trainers::Mode::kBadMa: out.push_back('m'); break;
      }
    }
  }
  return out;
}

SliceReport analyze_slices(const FalseSharingDetector& detector,
                           const exec::RunResult& run,
                           std::uint64_t min_instructions) {
  FSML_CHECK_MSG(run.slice_cycles > 0,
                 "run was not sliced — call Machine::enable_slicing() "
                 "before run()");
  std::vector<SliceVerdict> verdicts;
  verdicts.reserve(run.slices.size());
  for (std::size_t i = 0; i < run.slices.size(); ++i) {
    const sim::RawCounters& raw = run.slices[i];
    SliceVerdict v;
    v.index = i;
    v.instructions = raw.get(sim::RawEvent::kInstructionsRetired);
    if (v.instructions >= min_instructions) {
      const auto snapshot = pmu::CounterSnapshot::from_raw(raw);
      const auto features = pmu::FeatureVector::normalize(snapshot);
      v.classified = true;
      v.verdict = detector.classify(features);
      v.hitm_rate = features.get(pmu::WestmereEvent::kSnoopResponseHitM);
    }
    verdicts.push_back(v);
  }
  return SliceReport(std::move(verdicts), run.slice_cycles);
}

}  // namespace fsml::core
