// Identification of relevant performance events (paper §2.3).
//
// The procedure searches the candidate event list in two steps:
//  1. run every multi-threaded mini-program in "good" and "bad-fs" modes
//     across several thread counts; an event is a *fs-discriminator* if its
//     normalized count differs by at least `ratio_threshold` (the paper's
//     "minimum 2x ratio" heuristic) between the two modes for a majority of
//     the mini-programs;
//  2. for the remaining candidates, repeat with "good" vs "bad-ma" over the
//     programs that have a bad-ma variant (plus the sequential set).
//
// The union of both steps (plus Instructions_Retired, the normalizer) is
// the event set the classifier consumes — the paper's Table 2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine_config.hpp"
#include "sim/raw_events.hpp"

namespace fsml::core {

struct EventSelectionConfig {
  double ratio_threshold = 2.0;      ///< paper's "minimum 2x" heuristic
  double majority_fraction = 0.5;    ///< "for a majority of mini-programs"
  std::vector<std::uint32_t> thread_counts = {3, 6, 9, 12};
  std::uint64_t seed = 1;
  sim::MachineConfig machine = sim::MachineConfig::westmere_dp(12);
  /// Counts below this (normalized) are treated as zero/noise.
  double noise_floor = 1e-7;
};

struct EventStat {
  sim::RawEvent event{};
  std::size_t programs_passed = 0;
  std::size_t programs_total = 0;
  double median_ratio = 0.0;  ///< median over programs of max(r, 1/r)
};

struct EventSelectionResult {
  std::vector<sim::RawEvent> fs_discriminators;  ///< step 1
  std::vector<sim::RawEvent> ma_discriminators;  ///< step 2
  std::vector<sim::RawEvent> selected;           ///< union, stable order
  std::vector<EventStat> fs_stats;               ///< all candidates, step 1
  std::vector<EventStat> ma_stats;               ///< remaining, step 2
};

EventSelectionResult select_events(const EventSelectionConfig& config);

// ---- derived NUMA-locality features ----------------------------------------
//
// Two ratios summarizing *where* coherence traffic was served from, derived
// from the simulator's socket-aware raw counters rather than measured as
// their own PMU events. Both are exactly zero on a single-socket machine
// (the remote counters never fire there), so models trained before these
// features existed stay bit-identical when the ratios are appended: a
// constant-zero attribute carries no information gain and the C4.5 tree
// never splits on it.

struct LocalityFeatures {
  /// Remote HITM transfers / all HITM transfers; high values mean modified
  /// lines ping-pong across the QPI link, not just between sibling cores.
  double hitm_remote_ratio = 0.0;
  /// DRAM reads homed on another socket / all DRAM reads.
  double dram_remote_ratio = 0.0;
};

/// Computes the ratios from an aggregate raw-counter bank. A zero
/// denominator (no HITMs / no DRAM reads at all) yields a 0.0 ratio.
LocalityFeatures derived_locality(const sim::RawCounters& raw);

/// The 15 normalized Table-2 feature names plus the two locality ratios —
/// the attribute schema of the extended dataset and the zero-positive
/// anomaly model.
std::vector<std::string> extended_feature_names();

}  // namespace fsml::core
