// Identification of relevant performance events (paper §2.3).
//
// The procedure searches the candidate event list in two steps:
//  1. run every multi-threaded mini-program in "good" and "bad-fs" modes
//     across several thread counts; an event is a *fs-discriminator* if its
//     normalized count differs by at least `ratio_threshold` (the paper's
//     "minimum 2x ratio" heuristic) between the two modes for a majority of
//     the mini-programs;
//  2. for the remaining candidates, repeat with "good" vs "bad-ma" over the
//     programs that have a bad-ma variant (plus the sequential set).
//
// The union of both steps (plus Instructions_Retired, the normalizer) is
// the event set the classifier consumes — the paper's Table 2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine_config.hpp"
#include "sim/raw_events.hpp"

namespace fsml::core {

struct EventSelectionConfig {
  double ratio_threshold = 2.0;      ///< paper's "minimum 2x" heuristic
  double majority_fraction = 0.5;    ///< "for a majority of mini-programs"
  std::vector<std::uint32_t> thread_counts = {3, 6, 9, 12};
  std::uint64_t seed = 1;
  sim::MachineConfig machine = sim::MachineConfig::westmere_dp(12);
  /// Counts below this (normalized) are treated as zero/noise.
  double noise_floor = 1e-7;
};

struct EventStat {
  sim::RawEvent event{};
  std::size_t programs_passed = 0;
  std::size_t programs_total = 0;
  double median_ratio = 0.0;  ///< median over programs of max(r, 1/r)
};

struct EventSelectionResult {
  std::vector<sim::RawEvent> fs_discriminators;  ///< step 1
  std::vector<sim::RawEvent> ma_discriminators;  ///< step 2
  std::vector<sim::RawEvent> selected;           ///< union, stable order
  std::vector<EventStat> fs_stats;               ///< all candidates, step 1
  std::vector<EventStat> ma_stats;               ///< remaining, step 2
};

EventSelectionResult select_events(const EventSelectionConfig& config);

}  // namespace fsml::core
