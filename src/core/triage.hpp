// TriageStage: second-stage alarm re-ranking over the detector's verdicts.
//
// The first stage (FalseSharingDetector::classify_robust) votes repeated
// measurements into a verdict; the triage stage decides how much an *alarm*
// (a known bad-fs / bad-ma verdict) should be trusted, fusing four signals
// into one priority in [0, 1]:
//
//  * tree confidence — the winning verdict's share of classified repeats;
//  * anomaly margin — the zero-positive model's reconstruction error
//    relative to its calibrated threshold (ml/zero_positive.hpp): an alarm
//    on a run that also looks nothing like any good training run is far
//    more credible than one the anomaly model considers normal;
//  * phase support — the fraction of classified time slices (core/slices)
//    whose verdict agrees with the alarm: real false sharing shows up in
//    the timeline, a voting fluke does not;
//  * run metadata — thread count and NUMA locality: contention grows with
//    parallelism, and remote-HITM-dominated traffic is the expensive kind.
//
// Alarms whose fused priority falls below `demote_below` are demoted to the
// detector's distinct `unknown` verdict — the pipeline would rather say "I
// can't call this" than page someone on a low-credibility alarm. Good and
// already-unknown verdicts are never touched; triage only ever *removes*
// alarms, so it cannot create a false positive.
//
//   core::TriageStage stage;
//   stage.set_anomaly_model(core::fit_zero_positive(training_data));
//   core::TriagedAlarm alarm = stage.triage(verdict, extended, context);
//   if (alarm.verdict.known) ...   // alarm survived, alarm.priority set
//
// evaluate_triage() scores the full pipeline on the robustness harness's
// evaluation set and emits the "fsml-triage-v1" artifact comparing stage-1
// and stage-2 precision/recall/abstention at every noise grid point.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/robustness.hpp"
#include "core/slices.hpp"
#include "ml/zero_positive.hpp"

namespace fsml::core {

/// Fusion weights and the demotion cutoff. Weights need not sum to 1 — the
/// priority is the weighted average — but must all be non-negative with a
/// positive sum.
struct TriageWeights {
  double tree_confidence = 0.45;
  double anomaly = 0.30;
  double phase = 0.15;
  double metadata = 0.10;
  /// Alarms with fused priority below this demote to `unknown`.
  double demote_below = 0.35;

  /// Throws std::runtime_error on negative weights, a zero weight sum, or
  /// an out-of-range cutoff.
  void validate() const;
};

/// Per-alarm side information the fusion consumes. All fields optional in
/// spirit: zeroed metadata and a null slice report fall back to neutral
/// terms (0.5) so triage degrades gracefully when context is missing.
struct AlarmContext {
  std::uint32_t threads = 1;
  double hitm_remote_ratio = 0.0;
  double dram_remote_ratio = 0.0;
  /// Phase timeline of the same run, if sliced classification ran.
  const SliceReport* slices = nullptr;
};

/// Triage outcome: the (possibly demoted) verdict plus the fused priority
/// and its component terms, kept for explainability.
struct TriagedAlarm {
  RobustVerdict verdict;
  double priority = 0.0;   ///< fused score in [0, 1]
  bool demoted = false;    ///< true: stage 1 alarmed, triage overruled it
  /// Zero-positive reconstruction error and flag; score is NaN when no
  /// anomaly model was attached.
  double anomaly_score = 0.0;
  bool anomalous = false;
  /// Individual fusion terms, each in [0, 1].
  double term_confidence = 0.0;
  double term_anomaly = 0.0;
  double term_phase = 0.0;
  double term_metadata = 0.0;

  /// "bad-fs priority 0.82 (conf 0.80, anomaly 0.91, phase 0.75, meta 0.40)"
  std::string to_string() const;
};

class TriageStage {
 public:
  explicit TriageStage(TriageWeights weights = {});

  /// Attaches a fitted zero-positive model; without one the anomaly term is
  /// neutral (0.5) and anomaly_score is NaN.
  void set_anomaly_model(ml::ZeroPositiveModel model);
  bool has_anomaly_model() const { return anomaly_.has_value(); }
  const ml::ZeroPositiveModel& anomaly_model() const;

  const TriageWeights& weights() const { return weights_; }

  /// Re-ranks one verdict. `extended` is the run's features in
  /// extended_feature_names() order (15 normalized events + locality
  /// ratios), used by the anomaly model; an empty span skips the anomaly
  /// term. Only known, non-good verdicts can be demoted.
  TriagedAlarm triage(const RobustVerdict& verdict,
                      std::span<const double> extended,
                      const AlarmContext& context) const;

 private:
  TriageWeights weights_;
  std::optional<ml::ZeroPositiveModel> anomaly_;
};

/// Fits the zero-positive anomaly model on the good-labelled rows of a
/// training collection over the extended feature schema.
ml::ZeroPositiveModel fit_zero_positive(const TrainingData& data,
                                        ml::ZeroPositiveParams params = {});

// ---- two-stage evaluation harness ------------------------------------------

struct TriageConfig {
  /// Evaluation set and noise grid (shared with evaluate_robustness).
  RobustnessConfig sweep;
  TriageWeights weights;

  void validate() const { sweep.validate(); weights.validate(); }
};

/// Alarm-level scores of one pipeline stage at one grid cell. An *alarm* is
/// a known bad-fs or bad-ma verdict; `correct` additionally requires the
/// exact label match (bad-fs vs bad-ma confusion is a true alarm but not a
/// correct verdict).
struct TriageStagePoint {
  std::size_t alarms = 0;
  std::size_t true_alarms = 0;   ///< alarms on runs labelled bad
  std::size_t false_alarms = 0;  ///< alarms on runs labelled good
  std::size_t abstained = 0;
  std::size_t correct = 0;

  double precision() const {
    return alarms == 0 ? 1.0
                       : static_cast<double>(true_alarms) /
                             static_cast<double>(alarms);
  }
  double recall(std::size_t bad_runs) const {
    return bad_runs == 0 ? 1.0
                         : static_cast<double>(true_alarms) /
                               static_cast<double>(bad_runs);
  }
  double abstention(std::size_t runs) const {
    return runs == 0 ? 0.0
                     : static_cast<double>(abstained) /
                           static_cast<double>(runs);
  }
};

/// One noise grid cell scored before (stage1) and after (stage2) triage.
struct TriageCell {
  double jitter = 0.0;
  std::size_t counters = 0;
  double drop = 0.0;
  TriageStagePoint stage1;
  TriageStagePoint stage2;
  std::size_t demoted = 0;       ///< alarms triage overruled
  std::size_t demoted_true = 0;  ///< of those, alarms that were real (cost)
};

struct TriageReport {
  std::size_t runs = 0;
  std::size_t good_runs = 0;
  std::size_t bad_runs = 0;

  /// Zero-positive model scored on the clean evaluation runs.
  std::size_t flagged_bad = 0;   ///< bad runs the anomaly model flags
  std::size_t flagged_good = 0;  ///< good runs it (wrongly) flags
  double anomaly_threshold = 0.0;
  std::size_t anomaly_components = 0;

  TriageWeights weights;
  std::vector<TriageCell> cells;  ///< grid order: jitter, counters, drop
  int repeats = 0;
  double min_confidence = 0.0;
  std::uint64_t seed = 0;

  /// The two-stage artifact: schema "fsml-triage-v1".
  void write_json(std::ostream& os) const;
};

/// Runs the two-stage evaluation: simulate the evaluation set once, fit a
/// slice report per run, then sweep the noise grid classifying every run
/// through stage 1 (classify_degraded) and stage 2 (`stage.triage`).
/// Deterministic for any `sweep.jobs` value. The stage must carry an
/// anomaly model (fit one with fit_zero_positive).
TriageReport evaluate_triage(const FalseSharingDetector& detector,
                             const TriageStage& stage,
                             const TriageConfig& config,
                             std::ostream* log = nullptr);

}  // namespace fsml::core
