#include "core/detector.hpp"

#include <array>
#include <fstream>

#include "util/check.hpp"

namespace fsml::core {

FalseSharingDetector::FalseSharingDetector(ml::C45Params params)
    : tree_(params) {}

void FalseSharingDetector::train(const TrainingData& data) {
  train(data.to_dataset());
}

void FalseSharingDetector::train(const ml::Dataset& dataset) {
  FSML_CHECK_MSG(dataset.num_attributes() == pmu::kNumFeatures,
                 "detector expects the 15 normalized Westmere features");
  tree_.train(dataset);
  trained_ = true;
}

trainers::Mode FalseSharingDetector::classify(
    const pmu::FeatureVector& features) const {
  FSML_CHECK_MSG(trained_, "detector is not trained");
  return mode_of(tree_.predict(features.values()));
}

trainers::Mode FalseSharingDetector::majority(
    const std::vector<trainers::Mode>& verdicts) {
  FSML_CHECK_MSG(!verdicts.empty(), "majority of zero verdicts");
  std::array<std::size_t, 3> counts{};
  for (const trainers::Mode v : verdicts)
    ++counts[static_cast<std::size_t>(label_of(v))];
  // Scan in severity order bad-fs, bad-ma, good so ties resolve to the
  // worse verdict.
  const std::array<int, 3> severity_order = {kBadFs, kBadMa, kGood};
  int best = kGood;
  std::size_t best_count = 0;
  for (const int label : severity_order) {
    if (counts[static_cast<std::size_t>(label)] > best_count) {
      best = label;
      best_count = counts[static_cast<std::size_t>(label)];
    }
  }
  return mode_of(best);
}

void FalseSharingDetector::save(std::ostream& os) const {
  FSML_CHECK_MSG(trained_, "cannot save an untrained detector");
  tree_.save(os);
}

FalseSharingDetector FalseSharingDetector::load(std::istream& is) {
  FalseSharingDetector detector;
  detector.tree_ = ml::C45Tree::load(is);
  detector.trained_ = true;
  return detector;
}

void FalseSharingDetector::save_file(const std::string& path) const {
  std::ofstream os(path);
  FSML_CHECK_MSG(static_cast<bool>(os), "cannot open " + path);
  save(os);
}

FalseSharingDetector FalseSharingDetector::load_file(const std::string& path) {
  std::ifstream is(path);
  FSML_CHECK_MSG(static_cast<bool>(is), "cannot open " + path);
  return load(is);
}

}  // namespace fsml::core
