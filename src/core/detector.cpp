#include "core/detector.hpp"

#include <array>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ml/io.hpp"
#include "util/check.hpp"

namespace fsml::core {

void RobustConfig::validate() const {
  if (repeats < 1 || repeats > 1001)
    throw std::runtime_error("RobustConfig: repeats must be in 1..1001");
  if (std::isnan(min_confidence) || min_confidence < 0.0 ||
      min_confidence > 1.0)
    throw std::runtime_error(
        "RobustConfig: min_confidence must be in [0, 1]");
}

std::string RobustVerdict::to_string() const {
  std::ostringstream os;
  if (known) {
    os << trainers::to_string(mode) << " (confidence " << confidence << ", "
       << votes[static_cast<std::size_t>(label_of(mode))] << '/' << repeats
       << " runs)";
  } else {
    os << "unknown (" << classified << '/' << repeats
       << " runs classified)";
  }
  return os.str();
}

FalseSharingDetector::FalseSharingDetector(ml::C45Params params)
    : tree_(params) {}

void FalseSharingDetector::train(const TrainingData& data) {
  train(data.to_dataset());
}

void FalseSharingDetector::train(const ml::Dataset& dataset) {
  FSML_CHECK_MSG(dataset.num_attributes() == pmu::kNumFeatures,
                 "detector expects the 15 normalized Westmere features");
  tree_.train(dataset);
  flat_ = tree_.compile();
  trained_ = true;
}

trainers::Mode FalseSharingDetector::classify(
    const pmu::FeatureVector& features) const {
  FSML_CHECK_MSG(trained_, "detector is not trained");
  if (flat_ != nullptr) {
    const int label = flat_->predict(features.values());
    // The pointer tree stays the cross-validation reference: debug builds
    // verify every flat lookup against it, like the coherence directory
    // verifies against the snoop scan.
    FSML_DCHECK(label == tree_.predict(features.values()));
    return mode_of(label);
  }
  return mode_of(tree_.predict(features.values()));
}

RobustVerdict FalseSharingDetector::classify_robust(
    const MeasureFn& measure, const RobustConfig& config) const {
  FSML_CHECK_MSG(trained_, "detector is not trained");
  config.validate();

  RobustVerdict out;
  out.repeats = static_cast<std::size_t>(config.repeats);

  // Gather every usable measurement into one contiguous row-major block so
  // the classify stage runs once over the batch (and so the vote loop does
  // no per-measurement allocation — the old path built a distribution
  // vector per NaN descent).
  std::vector<double> rows;
  rows.reserve(out.repeats * pmu::kNumFeatures);
  for (std::size_t r = 0; r < out.repeats; ++r) {
    const std::optional<pmu::FeatureVector> features = measure(r);
    if (!features) continue;  // unusable measurement; retry bounded by loop
    rows.insert(rows.end(), features->values().begin(),
                features->values().end());
    ++out.classified;
  }
  if (out.classified == 0) return out;  // nothing usable: unknown

  std::vector<int> labels(out.classified);
  if (config.use_flat_tree && flat_ != nullptr) {
    flat_->classify_many(rows, pmu::kNumFeatures, labels);
#ifndef NDEBUG
    // Per-lookup cross-check against the pointer-tree reference.
    std::vector<int> reference(out.classified);
    tree_.classify_many(rows, pmu::kNumFeatures, reference);
    FSML_DCHECK(labels == reference);
#endif
  } else {
    tree_.classify_many(rows, pmu::kNumFeatures, labels);
  }
  for (const int label : labels)
    ++out.votes[static_cast<std::size_t>(label)];

  // Same severity-ordered scan as majority(): ties go to the worse verdict.
  const std::array<int, 3> severity_order = {kBadFs, kBadMa, kGood};
  int best = kGood;
  std::size_t best_count = 0;
  for (const int label : severity_order) {
    if (out.votes[static_cast<std::size_t>(label)] > best_count) {
      best = label;
      best_count = out.votes[static_cast<std::size_t>(label)];
    }
  }
  out.confidence = static_cast<double>(best_count) /
                   static_cast<double>(out.classified);
  if (out.confidence >= config.min_confidence) {
    out.known = true;
    out.mode = mode_of(best);
  }
  return out;
}

trainers::Mode FalseSharingDetector::majority(
    const std::vector<trainers::Mode>& verdicts) {
  FSML_CHECK_MSG(!verdicts.empty(), "majority of zero verdicts");
  std::array<std::size_t, 3> counts{};
  for (const trainers::Mode v : verdicts)
    ++counts[static_cast<std::size_t>(label_of(v))];
  // Scan in severity order bad-fs, bad-ma, good so ties resolve to the
  // worse verdict.
  const std::array<int, 3> severity_order = {kBadFs, kBadMa, kGood};
  int best = kGood;
  std::size_t best_count = 0;
  for (const int label : severity_order) {
    if (counts[static_cast<std::size_t>(label)] > best_count) {
      best = label;
      best_count = counts[static_cast<std::size_t>(label)];
    }
  }
  return mode_of(best);
}

void FalseSharingDetector::save(std::ostream& os) const {
  FSML_CHECK_MSG(trained_, "cannot save an untrained detector");
  tree_.save(os);
}

FalseSharingDetector FalseSharingDetector::load(std::istream& is) {
  FalseSharingDetector detector;
  detector.tree_ = ml::C45Tree::load(is);
  // Model files persist only the pointer tree; the flat serving form is
  // always recompiled from it on load (single source of truth).
  detector.flat_ = detector.tree_.compile();
  detector.trained_ = true;
  return detector;
}

void FalseSharingDetector::save_file(const std::string& path) const {
  FSML_CHECK_MSG(trained_, "cannot save an untrained detector");
  // Versioned + checksummed container, written atomically: a crash mid-save
  // leaves the previous model intact, and a torn or corrupt file is
  // rejected at load time instead of silently mis-predicting.
  ml::save_model_file(tree_, path);
}

FalseSharingDetector FalseSharingDetector::load_file(const std::string& path) {
  FalseSharingDetector detector;
  detector.tree_ = ml::load_model_file(path);
  if (pmu::FeatureVector::feature_names() != detector.tree_.attribute_names())
    throw std::runtime_error(
        path + ": model was trained with a different feature schema than "
               "this build expects — retrain with `fsml_analyze train "
               "--save-model=" + path + "`");
  detector.flat_ = detector.tree_.compile();
  detector.trained_ = true;
  return detector;
}

RobustVerdict classify_degraded(const FalseSharingDetector& detector,
                                const exec::RunResult& run,
                                const pmu::MeasurementModel& model,
                                const RobustConfig& config,
                                std::uint64_t measurement_base) {
  return detector.classify_robust(
      [&](std::size_t r) -> std::optional<pmu::FeatureVector> {
        const pmu::DegradedSnapshot snapshot =
            model.measure(run.aggregate, run.slices, measurement_base + r);
        if (!snapshot.usable()) return std::nullopt;
        return snapshot.to_features();
      },
      config);
}

}  // namespace fsml::core
