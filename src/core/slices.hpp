// Time-sliced (phase-level) false-sharing detection — the paper's §6
// future-work direction "detecting false sharing at a finer granularity,
// for e.g., in short time slices".
//
// The whole-program classification can miss or dilute false sharing that
// only occurs in one phase (and conversely, spin-wait instruction inflation
// in one phase can mask it — the paper's Table-8 anomaly). Slicing samples
// the PMU every S cycles of virtual time (exec::Machine::enable_slicing)
// and classifies each window independently, yielding a verdict timeline:
//
//   exec::Machine m(...);
//   m.enable_slicing(50'000);
//   ... build & run ...
//   core::SliceReport report = core::analyze_slices(detector, run);
//   // report.timeline() -> "ggggFFFFFFgggg" (false sharing in the middle)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "exec/machine.hpp"

namespace fsml::core {

struct SliceVerdict {
  std::size_t index = 0;
  trainers::Mode verdict = trainers::Mode::kGood;
  bool classified = false;   ///< false: too few instructions to judge
  std::uint64_t instructions = 0;
  double hitm_rate = 0.0;    ///< normalized Snoop_Response.HIT_M
};

struct SliceRange {
  std::size_t first = 0;
  std::size_t last = 0;  ///< inclusive
  std::size_t length() const { return last - first + 1; }
};

class SliceReport {
 public:
  explicit SliceReport(std::vector<SliceVerdict> slices,
                       sim::Cycles slice_cycles);

  const std::vector<SliceVerdict>& slices() const { return slices_; }
  sim::Cycles slice_cycles() const { return slice_cycles_; }

  std::size_t count(trainers::Mode mode) const;
  /// Fraction of *classified* slices with this verdict.
  double fraction(trainers::Mode mode) const;

  /// Majority verdict over classified slices (severity tie-break, like the
  /// whole-program rule).
  trainers::Mode overall() const;

  /// Maximal runs of consecutive bad-fs slices, longest first.
  std::vector<SliceRange> bad_fs_ranges() const;

  /// One character per slice: 'g' good, 'F' bad-fs, 'm' bad-ma,
  /// '.' unclassified (idle window).
  std::string timeline() const;

 private:
  std::vector<SliceVerdict> slices_;
  sim::Cycles slice_cycles_;
};

/// Classifies each slice of an instrumented run. Slices with fewer than
/// `min_instructions` retired are reported unclassified — normalized
/// counts from near-idle windows are noise.
SliceReport analyze_slices(const FalseSharingDetector& detector,
                           const exec::RunResult& run,
                           std::uint64_t min_instructions = 2000);

}  // namespace fsml::core
