#include "core/event_selection.hpp"

#include <algorithm>
#include <cmath>

#include "pmu/counters.hpp"
#include "pmu/events.hpp"
#include "trainers/trainer.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace fsml::core {

namespace {

using trainers::MiniProgram;
using trainers::Mode;
using trainers::TrainerParams;

/// Normalized candidate-event counts of one run.
std::vector<double> run_and_normalize(const MiniProgram& program,
                                      const TrainerParams& params,
                                      const sim::MachineConfig& machine,
                                      const std::vector<sim::RawEvent>& events) {
  const trainers::TrainerRun run =
      trainers::run_trainer(program, params, machine);
  return pmu::normalize_raw(run.raw, events);
}

/// max(r, 1/r) with care for (near-)zero counts: a signal appearing from
/// nothing is an infinite ratio; two silent counters are ratio 1.
double symmetric_ratio(double good, double bad, double noise_floor) {
  const bool good_zero = good < noise_floor;
  const bool bad_zero = bad < noise_floor;
  if (good_zero && bad_zero) return 1.0;
  if (good_zero || bad_zero) return std::numeric_limits<double>::infinity();
  return std::max(good / bad, bad / good);
}

struct StepResult {
  std::vector<sim::RawEvent> selected;
  std::vector<EventStat> stats;
};

/// One selection step: for each program, compare good vs `bad_mode` across
/// thread counts; an event passes a program if its median symmetric ratio
/// is at least the threshold; it is selected if it passes a majority of
/// programs.
StepResult selection_step(const EventSelectionConfig& config,
                          const std::vector<const MiniProgram*>& programs,
                          Mode bad_mode,
                          const std::vector<sim::RawEvent>& candidates) {
  StepResult result;
  // ratios[program][event] = median over thread counts
  std::vector<std::vector<double>> ratios;

  for (const MiniProgram* program : programs) {
    std::vector<std::vector<double>> per_thread_ratios(candidates.size());
    const std::vector<std::uint32_t> threads =
        program->multithreaded() ? config.thread_counts
                                 : std::vector<std::uint32_t>{1};
    // Middle problem size: big enough to be out of the noise, small enough
    // to keep the search fast.
    const auto sizes = program->default_sizes();
    const std::uint64_t size = sizes[sizes.size() / 2];

    for (const std::uint32_t t : threads) {
      TrainerParams params;
      params.threads = t;
      params.size = size;
      params.seed = config.seed + t;
      params.mode = Mode::kGood;
      const auto good = run_and_normalize(*program, params, config.machine,
                                          candidates);
      params.mode = bad_mode;
      const auto bad = run_and_normalize(*program, params, config.machine,
                                         candidates);
      for (std::size_t e = 0; e < candidates.size(); ++e)
        per_thread_ratios[e].push_back(
            symmetric_ratio(good[e], bad[e], config.noise_floor));
    }

    std::vector<double> medians(candidates.size());
    for (std::size_t e = 0; e < candidates.size(); ++e) {
      auto finite = per_thread_ratios[e];
      // Median with infinities: sort handles them (inf sorts last).
      std::sort(finite.begin(), finite.end());
      medians[e] = finite[finite.size() / 2];
    }
    ratios.push_back(std::move(medians));
  }

  for (std::size_t e = 0; e < candidates.size(); ++e) {
    EventStat stat;
    stat.event = candidates[e];
    stat.programs_total = programs.size();
    std::vector<double> per_program;
    for (const auto& r : ratios) {
      per_program.push_back(r[e]);
      if (r[e] >= config.ratio_threshold) ++stat.programs_passed;
    }
    std::sort(per_program.begin(), per_program.end());
    stat.median_ratio = per_program[per_program.size() / 2];
    result.stats.push_back(stat);
    if (static_cast<double>(stat.programs_passed) >
        config.majority_fraction * static_cast<double>(stat.programs_total))
      result.selected.push_back(candidates[e]);
  }
  return result;
}

}  // namespace

EventSelectionResult select_events(const EventSelectionConfig& config) {
  FSML_CHECK(config.ratio_threshold > 1.0);
  const std::vector<sim::RawEvent> candidates = pmu::candidate_events();

  EventSelectionResult result;

  // Step 1: good vs bad-fs over the multi-threaded set.
  const auto fs_step = selection_step(config, trainers::multithreaded_set(),
                                      Mode::kBadFs, candidates);
  result.fs_discriminators = fs_step.selected;
  result.fs_stats = fs_step.stats;

  // Step 2: good vs bad-ma over programs with a bad-ma variant (including
  // the sequential set), restricted to events not already selected.
  std::vector<sim::RawEvent> remaining;
  for (const sim::RawEvent e : candidates)
    if (std::find(result.fs_discriminators.begin(),
                  result.fs_discriminators.end(),
                  e) == result.fs_discriminators.end())
      remaining.push_back(e);

  std::vector<const MiniProgram*> ma_programs;
  for (const MiniProgram* p : trainers::all_programs())
    if (p->supports_bad_ma()) ma_programs.push_back(p);

  const auto ma_step =
      selection_step(config, ma_programs, Mode::kBadMa, remaining);
  result.ma_discriminators = ma_step.selected;
  result.ma_stats = ma_step.stats;

  result.selected = result.fs_discriminators;
  result.selected.insert(result.selected.end(),
                         result.ma_discriminators.begin(),
                         result.ma_discriminators.end());
  return result;
}

LocalityFeatures derived_locality(const sim::RawCounters& raw) {
  const auto ratio = [](std::uint64_t remote, std::uint64_t local) {
    const std::uint64_t total = local + remote;
    return total == 0 ? 0.0
                      : static_cast<double>(remote) /
                            static_cast<double>(total);
  };
  LocalityFeatures out;
  out.hitm_remote_ratio =
      ratio(raw.get(sim::RawEvent::kHitmTransfersRemote),
            raw.get(sim::RawEvent::kHitmTransfersLocal));
  out.dram_remote_ratio = ratio(raw.get(sim::RawEvent::kDramReadsRemote),
                                raw.get(sim::RawEvent::kDramReadsLocal));
  return out;
}

std::vector<std::string> extended_feature_names() {
  std::vector<std::string> names = pmu::FeatureVector::feature_names();
  names.push_back("hitm_remote_ratio");
  names.push_back("dram_remote_ratio");
  return names;
}

}  // namespace fsml::core
