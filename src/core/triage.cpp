#include "core/triage.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "par/parallel_for.hpp"
#include "par/thread_pool.hpp"
#include "pmu/noise.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/time_format.hpp"

namespace fsml::core {

namespace {

using trainers::Mode;

void weights_error(const std::string& what) {
  throw std::runtime_error("TriageWeights: " + what);
}

/// Same per-cell seed recipe as robustness.cpp, so a triage sweep's stage-1
/// numbers line up cell-for-cell with an evaluate_robustness sweep run at
/// the same seed.
std::uint64_t point_seed(std::uint64_t base, std::size_t point_index) {
  util::SplitMix64 a(base);
  util::SplitMix64 b(0xd1b54a32d192ed03ULL * (point_index + 1));
  return a.next() ^ b.next();
}

/// The run's clean features over the extended schema.
std::vector<double> extended_of(const EvalRun& run) {
  std::vector<double> x(run.clean_features.values().begin(),
                        run.clean_features.values().end());
  x.push_back(run.locality.hitm_remote_ratio);
  x.push_back(run.locality.dram_remote_ratio);
  return x;
}

void score_stage(TriageStagePoint& point, Mode label,
                 const RobustVerdict& verdict) {
  if (!verdict.known) {
    ++point.abstained;
    return;
  }
  if (verdict.mode == label) ++point.correct;
  if (verdict.mode != Mode::kGood) {
    ++point.alarms;
    if (label == Mode::kGood)
      ++point.false_alarms;
    else
      ++point.true_alarms;
  }
}

void json_stage(std::ostream& os, const TriageStagePoint& p, std::size_t runs,
                std::size_t bad_runs) {
  os << "{\"alarms\": " << p.alarms << ", \"true_alarms\": " << p.true_alarms
     << ", \"false_alarms\": " << p.false_alarms
     << ", \"abstained\": " << p.abstained << ", \"correct\": " << p.correct
     << ", \"precision\": " << p.precision()
     << ", \"recall\": " << p.recall(bad_runs)
     << ", \"abstention\": " << p.abstention(runs) << '}';
}

}  // namespace

void TriageWeights::validate() const {
  const double parts[] = {tree_confidence, anomaly, phase, metadata};
  double sum = 0.0;
  for (const double w : parts) {
    if (std::isnan(w) || w < 0.0) weights_error("weights must be >= 0");
    sum += w;
  }
  if (sum <= 0.0) weights_error("at least one weight must be positive");
  if (std::isnan(demote_below) || demote_below < 0.0 || demote_below > 1.0)
    weights_error("demote_below must be in [0, 1]");
}

std::string TriagedAlarm::to_string() const {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed;
  if (demoted)
    os << "demoted to unknown";
  else if (!verdict.known)
    os << "unknown";
  else
    os << trainers::to_string(verdict.mode);
  os << " (priority " << priority << ": conf " << term_confidence
     << ", anomaly " << term_anomaly << ", phase " << term_phase << ", meta "
     << term_metadata << ')';
  return os.str();
}

TriageStage::TriageStage(TriageWeights weights) : weights_(weights) {
  weights_.validate();
}

void TriageStage::set_anomaly_model(ml::ZeroPositiveModel model) {
  FSML_CHECK_MSG(model.fitted(), "anomaly model is not fitted");
  anomaly_ = std::move(model);
}

const ml::ZeroPositiveModel& TriageStage::anomaly_model() const {
  FSML_CHECK_MSG(anomaly_.has_value(), "no anomaly model attached");
  return *anomaly_;
}

TriagedAlarm TriageStage::triage(const RobustVerdict& verdict,
                                 std::span<const double> extended,
                                 const AlarmContext& context) const {
  TriagedAlarm out;
  out.verdict = verdict;
  out.anomaly_score = std::numeric_limits<double>::quiet_NaN();

  out.term_confidence = verdict.known ? verdict.confidence : 0.0;

  // Anomaly margin relative to the calibrated threshold, squashed to
  // (0, 1) with 0.5 exactly at the threshold; neutral when the model or
  // the extended features are unavailable.
  out.term_anomaly = 0.5;
  if (anomaly_.has_value() && extended.size() == anomaly_->num_features()) {
    out.anomaly_score = anomaly_->score(extended);
    out.anomalous = out.anomaly_score > anomaly_->threshold();
    const double margin = out.anomaly_score / anomaly_->threshold();
    out.term_anomaly = margin / (margin + 1.0);
  }

  // Fraction of classified slices agreeing with the verdict; neutral
  // without a timeline or a known verdict to agree with.
  out.term_phase = 0.5;
  if (context.slices != nullptr && verdict.known)
    out.term_phase = context.slices->fraction(verdict.mode);

  // More threads mean more opportunity for genuine contention; remote
  // traffic is the expensive kind worth paging someone over.
  const double thread_term =
      static_cast<double>(std::min<std::uint32_t>(context.threads, 16)) / 16.0;
  out.term_metadata = 0.5 * thread_term + 0.25 * context.hitm_remote_ratio +
                      0.25 * context.dram_remote_ratio;

  const double weight_sum = weights_.tree_confidence + weights_.anomaly +
                            weights_.phase + weights_.metadata;
  out.priority = (weights_.tree_confidence * out.term_confidence +
                  weights_.anomaly * out.term_anomaly +
                  weights_.phase * out.term_phase +
                  weights_.metadata * out.term_metadata) /
                 weight_sum;

  const bool is_alarm = verdict.known && verdict.mode != Mode::kGood;
  if (is_alarm && out.priority < weights_.demote_below) {
    out.demoted = true;
    out.verdict.known = false;
  }
  return out;
}

ml::ZeroPositiveModel fit_zero_positive(const TrainingData& data,
                                        ml::ZeroPositiveParams params) {
  ml::ZeroPositiveModel model(params);
  model.fit(data.good_extended_rows(), extended_feature_names());
  return model;
}

void TriageReport::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"fsml-triage-v1\",\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"repeats\": " << repeats << ",\n";
  os << "  \"min_confidence\": " << min_confidence << ",\n";
  os << "  \"runs\": " << runs << ",\n";
  os << "  \"good_runs\": " << good_runs << ",\n";
  os << "  \"bad_runs\": " << bad_runs << ",\n";
  os << "  \"zero_positive\": {\"threshold\": " << anomaly_threshold
     << ", \"components\": " << anomaly_components
     << ", \"flagged_bad\": " << flagged_bad
     << ", \"flagged_good\": " << flagged_good << "},\n";
  os << "  \"weights\": {\"tree_confidence\": " << weights.tree_confidence
     << ", \"anomaly\": " << weights.anomaly
     << ", \"phase\": " << weights.phase
     << ", \"metadata\": " << weights.metadata
     << ", \"demote_below\": " << weights.demote_below << "},\n";
  os << "  \"cells\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const TriageCell& c = cells[i];
    os << (i == 0 ? "\n    " : ",\n    ");
    os << "{\"jitter\": " << c.jitter << ", \"counters\": " << c.counters
       << ", \"drop\": " << c.drop << ", \"stage1\": ";
    json_stage(os, c.stage1, runs, bad_runs);
    os << ", \"stage2\": ";
    json_stage(os, c.stage2, runs, bad_runs);
    os << ", \"demoted\": " << c.demoted
       << ", \"demoted_true\": " << c.demoted_true << '}';
  }
  os << "\n  ]\n}\n";
}

TriageReport evaluate_triage(const FalseSharingDetector& detector,
                             const TriageStage& stage,
                             const TriageConfig& config, std::ostream* log) {
  FSML_CHECK_MSG(detector.trained(), "detector is not trained");
  FSML_CHECK_MSG(stage.has_anomaly_model(),
                 "triage stage has no anomaly model; fit one with "
                 "fit_zero_positive()");
  config.validate();
  const auto start = std::chrono::steady_clock::now();
  const RobustnessConfig& sweep = config.sweep;

  const std::size_t jobs_n =
      sweep.jobs == 0 ? par::ThreadPool::hardware_workers() : sweep.jobs;
  par::ThreadPool pool(jobs_n - 1);

  // Simulate the evaluation set once; every grid cell re-measures it.
  const std::vector<EvalRun> runs = simulate_evaluation_runs(sweep, log);

  // Per-run context shared by every cell: clean extended features and the
  // phase timeline (both from the pristine measurement — triage context
  // should not inherit the very noise it is meant to discount).
  std::vector<std::vector<double>> extended;
  extended.reserve(runs.size());
  for (const EvalRun& run : runs) extended.push_back(extended_of(run));
  const std::vector<SliceReport> slice_reports = par::parallel_transform(
      pool, runs,
      [&](const EvalRun& run) { return analyze_slices(detector, run.result); });

  TriageReport report;
  report.repeats = sweep.repeats;
  report.min_confidence = sweep.min_confidence;
  report.seed = sweep.seed;
  report.weights = config.weights;
  report.runs = runs.size();

  const ml::ZeroPositiveModel& anomaly = stage.anomaly_model();
  report.anomaly_threshold = anomaly.threshold();
  report.anomaly_components = anomaly.num_components();
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const bool flagged = extended[r].size() == anomaly.num_features() &&
                         anomaly.anomalous(extended[r]);
    if (runs[r].label == Mode::kGood) {
      ++report.good_runs;
      if (flagged) ++report.flagged_good;
    } else {
      ++report.bad_runs;
      if (flagged) ++report.flagged_bad;
    }
  }

  RobustConfig vote;
  vote.repeats = sweep.repeats;
  vote.min_confidence = sweep.min_confidence;

  struct GridCell {
    double jitter;
    std::size_t counters;
    double drop;
    std::size_t index;
  };
  std::vector<GridCell> grid;
  for (const double jitter : sweep.jitters)
    for (const std::size_t counters : sweep.counter_groups)
      for (const double drop : sweep.drops)
        grid.push_back({jitter, counters, drop, grid.size()});

  report.cells = par::parallel_transform(
      pool, grid, [&](const GridCell& cell) {
        pmu::NoiseConfig noise;
        noise.jitter = cell.jitter;
        noise.counters = cell.counters;
        noise.drop_probability = cell.drop;
        noise.seed = point_seed(sweep.seed, cell.index);
        const pmu::MeasurementModel model(noise);

        TriageCell out;
        out.jitter = cell.jitter;
        out.counters = cell.counters;
        out.drop = cell.drop;
        for (std::size_t r = 0; r < runs.size(); ++r) {
          const RobustVerdict verdict = classify_degraded(
              detector, runs[r].result, model, vote,
              r * static_cast<std::uint64_t>(sweep.repeats));
          score_stage(out.stage1, runs[r].label, verdict);

          AlarmContext context;
          context.threads = runs[r].threads;
          context.hitm_remote_ratio = runs[r].locality.hitm_remote_ratio;
          context.dram_remote_ratio = runs[r].locality.dram_remote_ratio;
          context.slices = &slice_reports[r];
          const TriagedAlarm alarm =
              stage.triage(verdict, extended[r], context);
          score_stage(out.stage2, runs[r].label, alarm.verdict);
          if (alarm.demoted) {
            ++out.demoted;
            if (runs[r].label != Mode::kGood) ++out.demoted_true;
          }
        }
        return out;
      });

  if (log) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    *log << "triage: swept " << report.cells.size() << " grid cells x "
         << runs.size() << " runs through both stages in "
         << util::auto_time(elapsed.count()) << "\n";
  }
  return report;
}

}  // namespace fsml::core
