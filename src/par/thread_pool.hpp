// fsml::par — host-thread execution layer for embarrassingly parallel
// simulation batches (training-data collection, workload sweeps).
//
// Design constraints, in order:
//  1. Determinism. The pool never decides *what* is computed, only *when*:
//     callers hand it independent jobs whose results are placed by index
//     (see parallel_for.hpp), so parallel output is bit-identical to serial
//     output. Host parallelism must never change simulated results.
//  2. Safety over cleverness. Workers pull from one locked deque; there is
//     no work stealing and no lock-free queue — every job here is a full
//     `exec::Machine` simulation (milliseconds to seconds), so queue
//     overhead is irrelevant.
//  3. Nested-submit safety. Code running *on* a pool worker may call
//     parallel_for/submit on the same pool again; such calls execute inline
//     on the calling worker instead of enqueueing, so a fully busy pool can
//     never deadlock on its own sub-jobs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fsml::par {

class ThreadPool {
 public:
  /// Spawns `workers` threads. A pool with zero workers is valid: submit()
  /// then runs jobs inline on the calling thread (serial mode).
  explicit ThreadPool(std::size_t workers = hardware_workers());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// True iff the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// Enqueues a job. With zero workers, or when called from one of this
  /// pool's own workers while the queue is saturated with callers waiting,
  /// prefer parallel_for(): raw submit() gives no completion handle.
  /// Jobs submitted from a worker of this pool run inline (nested-submit
  /// safety); jobs must not throw — wrap exceptions before submitting.
  void submit(std::function<void()> job);

  /// max(1, std::thread::hardware_concurrency()).
  static std::size_t hardware_workers();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace fsml::par
