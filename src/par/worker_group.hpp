// A fork-join worker group: spawn N workers, run one function per worker,
// join them all, propagate the first failure.
//
// This is the minimal primitive the epoch-parallel simulator needs — unlike
// ThreadPool there is no queue and no sharing of workers across uses; each
// run() owns its threads for the duration, which is exactly right for a
// gang of cooperating peers that spin on each other's progress (pooled
// workers that can block on unrelated work would deadlock such a gang).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>

namespace fsml::par {

/// Cooperative spin-wait backoff for threads polling shared state: cheap
/// CPU pause instructions first, escalating to yields so an oversubscribed
/// host (more workers than cores) still makes progress.
class SpinBackoff {
 public:
  void pause();
  void reset() { spins_ = 0; }

 private:
  unsigned spins_ = 0;
};

/// Runs `fn(0) .. fn(n-1)` on `n` dedicated threads (the calling thread
/// runs fn(0)), joins them all, then rethrows the lowest-index exception if
/// any worker failed. Workers that need richer failure semantics (e.g.
/// "report the error of the earliest simulated event") coordinate through
/// their own shared state and simply return.
class WorkerGroup {
 public:
  static void run(std::size_t n, const std::function<void(std::size_t)>& fn);
};

}  // namespace fsml::par
