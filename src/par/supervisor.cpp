#include "par/supervisor.hpp"

namespace fsml::par {

void SupervisorConfig::validate() const {
  if (max_attempts < 1 || max_attempts > 100)
    throw std::runtime_error("SupervisorConfig: max_attempts must be 1..100");
  if (deadline.count() < 0)
    throw std::runtime_error("SupervisorConfig: deadline must be >= 0");
  if (backoff_base.count() < 0 || backoff_cap < backoff_base)
    throw std::runtime_error(
        "SupervisorConfig: need 0 <= backoff_base <= backoff_cap");
}

Supervisor::Supervisor(ThreadPool& pool, SupervisorConfig config)
    : pool_(pool), config_(config) {
  config_.validate();
  if (config_.deadline.count() > 0)
    watchdog_ = std::thread([this] { watchdog_loop(); });
}

Supervisor::~Supervisor() {
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watch_mutex_);
      watchdog_stop_ = true;
    }
    watch_cv_.notify_all();
    watchdog_.join();
  }
}

bool Supervisor::is_fatal(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const NonRetryable&) {
    return true;
  } catch (const std::logic_error&) {
    return true;  // FSML_CHECK failures are bugs, not transient faults
  } catch (...) {
    return false;
  }
}

std::string Supervisor::describe(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

std::uint64_t Supervisor::arm_watch(const CancelToken& token) {
  if (config_.deadline.count() == 0) return 0;
  std::lock_guard<std::mutex> lock(watch_mutex_);
  const std::uint64_t ticket = next_ticket_++;
  watches_.emplace(ticket, std::make_pair(
                               std::chrono::steady_clock::now() +
                                   config_.deadline,
                               token));
  watch_cv_.notify_all();
  return ticket;
}

void Supervisor::disarm_watch(std::uint64_t ticket) {
  if (ticket == 0) return;
  std::lock_guard<std::mutex> lock(watch_mutex_);
  watches_.erase(ticket);
}

void Supervisor::backoff_sleep(std::size_t index, int attempt) const {
  if (config_.backoff_cap.count() == 0) return;
  // Decorrelated jitter: sleep_k = uniform(base, min(cap, base * 3^k)),
  // drawn from a generator seeded by (seed, index, attempt) so the schedule
  // is reproducible and distinct jobs desynchronize.
  double ceiling = static_cast<double>(config_.backoff_base.count());
  for (int k = 1; k < attempt; ++k)
    ceiling = std::min(ceiling * 3.0,
                       static_cast<double>(config_.backoff_cap.count()));
  ceiling = std::max(ceiling, 1.0);
  util::SplitMix64 mix(config_.backoff_seed ^
                       (static_cast<std::uint64_t>(index) << 20) ^
                       static_cast<std::uint64_t>(attempt));
  const double u =
      static_cast<double>(mix.next() >> 11) * 0x1.0p-53;  // [0, 1)
  const double base = static_cast<double>(config_.backoff_base.count());
  const auto sleep_ms = static_cast<std::int64_t>(
      base + u * std::max(0.0, ceiling - base));
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

void Supervisor::watchdog_loop() {
  std::unique_lock<std::mutex> lock(watch_mutex_);
  while (!watchdog_stop_) {
    if (watches_.empty()) {
      watch_cv_.wait(lock,
                     [this] { return watchdog_stop_ || !watches_.empty(); });
      continue;
    }
    // All watches share one deadline duration, so the earliest expiry can
    // only come from the current set — a watch armed while we sleep always
    // expires later than the one we are waiting on.
    auto earliest = watches_.begin()->second.first;
    for (const auto& [ticket, watch] : watches_)
      earliest = std::min(earliest, watch.first);
    if (watch_cv_.wait_until(lock, earliest,
                             [this] { return watchdog_stop_; }))
      return;
    const auto now = std::chrono::steady_clock::now();
    for (auto it = watches_.begin(); it != watches_.end();) {
      if (it->second.first <= now) {
        it->second.second.cancel();
        it = watches_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace fsml::par
