// Chunked parallel iteration on a ThreadPool.
//
// The determinism contract (see thread_pool.hpp): these helpers decide only
// the *schedule*. parallel_for(pool, n, fn) calls fn(i) exactly once for
// every i in [0, n); parallel_transform places result i at output index i.
// Any pool size — including zero workers — therefore yields bit-identical
// results as long as fn(i) itself is independent of execution order.
//
// Exceptions: every index runs to completion even after a failure (no
// cancellation — it would make *which* exception surfaces a race). A single
// failing index rethrows its original exception; multiple failures
// aggregate into one ParallelError naming the failure count and the first
// three failing indices. "First" is defined by the input ordering, not by
// wall-clock, so error reporting is deterministic either way.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "par/thread_pool.hpp"

namespace fsml::par {

/// Aggregated failure of a multi-failure parallel_for: the message carries
/// the failure count and the lowest three failing indices with their
/// original what() strings, so multi-failure sweeps are diagnosable from
/// one exception.
class ParallelError : public std::runtime_error {
 public:
  ParallelError(std::size_t failed, std::size_t total, const std::string& msg)
      : std::runtime_error(msg), failed_(failed), total_(total) {}

  std::size_t failed_count() const { return failed_; }
  std::size_t total_count() const { return total_; }

 private:
  std::size_t failed_;
  std::size_t total_;
};

namespace detail {

/// How many failing indices an aggregated error message names.
inline constexpr std::size_t kReportedFailures = 3;

/// Deterministic failure aggregation shared by the serial and pooled paths:
/// keeps the total failure count, the what() of the lowest kReportedFailures
/// indices, and the original exception of the lowest index (rethrown
/// unwrapped when it is the only failure).
struct ErrorLog {
  std::size_t failed = 0;
  std::map<std::size_t, std::string> first_sites;  // lowest indices only
  std::exception_ptr lowest;
  std::size_t lowest_index = 0;

  void record(std::exception_ptr e, std::size_t index) {
    ++failed;
    if (!lowest || index < lowest_index) {
      lowest = e;
      lowest_index = index;
    }
    std::string what = "unknown error";
    try {
      std::rethrow_exception(e);
    } catch (const std::exception& ex) {
      what = ex.what();
    } catch (...) {
    }
    first_sites.emplace(index, std::move(what));
    if (first_sites.size() > kReportedFailures)
      first_sites.erase(std::prev(first_sites.end()));
  }

  /// Rethrows (single failure) or throws the aggregate (several); no-op
  /// when nothing failed.
  void raise(std::size_t total) const {
    if (failed == 0) return;
    if (failed == 1) std::rethrow_exception(lowest);
    std::ostringstream os;
    os << failed << " of " << total
       << " parallel jobs failed; first failures:";
    for (const auto& [index, what] : first_sites)
      os << " [" << index << "] " << what << ';';
    throw ParallelError(failed, total, os.str());
  }
};

/// Shared bookkeeping for one parallel_for: chunk dispenser + completion
/// latch + deterministic failure log.
struct ForState {
  std::atomic<std::size_t> next_chunk{0};
  std::size_t num_chunks = 0;
  std::size_t grain = 1;
  std::size_t n = 0;

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t completed_chunks = 0;        // guarded by mutex
  ErrorLog errors;                         // guarded by mutex

  void record_error(std::exception_ptr e, std::size_t index) {
    std::lock_guard<std::mutex> lock(mutex);
    errors.record(std::move(e), index);
  }
};

/// Runs chunks from `state` until the dispenser is empty. Called by pool
/// workers and by the submitting thread alike (work sharing).
template <class Fn>
void run_chunks(const std::shared_ptr<ForState>& state, const Fn& fn) {
  for (;;) {
    const std::size_t chunk = state->next_chunk.fetch_add(1);
    if (chunk >= state->num_chunks) return;
    const std::size_t begin = chunk * state->grain;
    const std::size_t end = std::min(begin + state->grain, state->n);
    for (std::size_t i = begin; i < end; ++i) {
      try {
        fn(i);
      } catch (...) {
        state->record_error(std::current_exception(), i);
      }
    }
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      ++state->completed_chunks;
    }
    state->done_cv.notify_one();
  }
}

}  // namespace detail

/// Calls fn(i) for every i in [0, n), `grain` consecutive indices per task.
/// The calling thread participates, so any pool (even zero workers) makes
/// progress. Nested calls from a pool worker run entirely inline.
template <class Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn,
                  std::size_t grain = 1) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);

  // Serial paths: no workers, single chunk, or we *are* a worker (nested
  // parallel_for must not wait on a queue only we could drain).
  if (pool.worker_count() == 0 || n <= grain || pool.on_worker_thread()) {
    detail::ErrorLog errors;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors.record(std::current_exception(), i);
      }
    }
    errors.raise(n);
    return;
  }

  auto state = std::make_shared<detail::ForState>();
  state->grain = grain;
  state->n = n;
  state->num_chunks = (n + grain - 1) / grain;

  // Enough runners to occupy the pool, never more than there are chunks
  // (a runner that wakes to an empty dispenser exits immediately anyway).
  const std::size_t runners =
      std::min(pool.worker_count(), state->num_chunks - 1);
  for (std::size_t r = 0; r < runners; ++r)
    pool.submit([state, &fn] { detail::run_chunks(state, fn); });

  detail::run_chunks(state, fn);  // the caller works too

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(lock, [&state] {
    return state->completed_chunks == state->num_chunks;
  });
  state->errors.raise(n);
}

/// Maps `fn` over `items`, returning results in input order. Exception
/// semantics and scheduling as parallel_for.
template <class T, class Fn>
auto parallel_transform(ThreadPool& pool, const std::vector<T>& items,
                        Fn&& fn, std::size_t grain = 1)
    -> std::vector<std::decay_t<decltype(fn(items.front()))>> {
  using R = std::decay_t<decltype(fn(items.front()))>;
  std::vector<std::optional<R>> slots(items.size());
  parallel_for(
      pool, items.size(),
      [&](std::size_t i) { slots[i].emplace(fn(items[i])); }, grain);
  std::vector<R> out;
  out.reserve(items.size());
  for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace fsml::par
