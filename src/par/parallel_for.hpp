// Chunked parallel iteration on a ThreadPool.
//
// The determinism contract (see thread_pool.hpp): these helpers decide only
// the *schedule*. parallel_for(pool, n, fn) calls fn(i) exactly once for
// every i in [0, n); parallel_transform places result i at output index i.
// Any pool size — including zero workers — therefore yields bit-identical
// results as long as fn(i) itself is independent of execution order.
//
// Exceptions: every index runs to completion even after a failure (no
// cancellation — it would make *which* exception surfaces a race), then the
// exception thrown by the lowest failing index is rethrown. "First" is
// defined by the input ordering, not by wall-clock, so error reporting is
// deterministic too.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "par/thread_pool.hpp"

namespace fsml::par {

namespace detail {

/// Shared bookkeeping for one parallel_for: chunk dispenser + completion
/// latch + deterministic first-error slot.
struct ForState {
  std::atomic<std::size_t> next_chunk{0};
  std::size_t num_chunks = 0;
  std::size_t grain = 1;
  std::size_t n = 0;

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t completed_chunks = 0;        // guarded by mutex
  std::exception_ptr error;                // guarded by mutex
  std::size_t error_index = 0;             // guarded by mutex

  void record_error(std::exception_ptr e, std::size_t index) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!error || index < error_index) {
      error = std::move(e);
      error_index = index;
    }
  }
};

/// Runs chunks from `state` until the dispenser is empty. Called by pool
/// workers and by the submitting thread alike (work sharing).
template <class Fn>
void run_chunks(const std::shared_ptr<ForState>& state, const Fn& fn) {
  for (;;) {
    const std::size_t chunk = state->next_chunk.fetch_add(1);
    if (chunk >= state->num_chunks) return;
    const std::size_t begin = chunk * state->grain;
    const std::size_t end = std::min(begin + state->grain, state->n);
    for (std::size_t i = begin; i < end; ++i) {
      try {
        fn(i);
      } catch (...) {
        state->record_error(std::current_exception(), i);
      }
    }
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      ++state->completed_chunks;
    }
    state->done_cv.notify_one();
  }
}

}  // namespace detail

/// Calls fn(i) for every i in [0, n), `grain` consecutive indices per task.
/// The calling thread participates, so any pool (even zero workers) makes
/// progress. Nested calls from a pool worker run entirely inline.
template <class Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn,
                  std::size_t grain = 1) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);

  // Serial paths: no workers, single chunk, or we *are* a worker (nested
  // parallel_for must not wait on a queue only we could drain).
  if (pool.worker_count() == 0 || n <= grain || pool.on_worker_thread()) {
    std::exception_ptr error;  // serial order: first caught == lowest index
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  auto state = std::make_shared<detail::ForState>();
  state->grain = grain;
  state->n = n;
  state->num_chunks = (n + grain - 1) / grain;

  // Enough runners to occupy the pool, never more than there are chunks
  // (a runner that wakes to an empty dispenser exits immediately anyway).
  const std::size_t runners =
      std::min(pool.worker_count(), state->num_chunks - 1);
  for (std::size_t r = 0; r < runners; ++r)
    pool.submit([state, &fn] { detail::run_chunks(state, fn); });

  detail::run_chunks(state, fn);  // the caller works too

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(lock, [&state] {
    return state->completed_chunks == state->num_chunks;
  });
  if (state->error) std::rethrow_exception(state->error);
}

/// Maps `fn` over `items`, returning results in input order. Exception
/// semantics and scheduling as parallel_for.
template <class T, class Fn>
auto parallel_transform(ThreadPool& pool, const std::vector<T>& items,
                        Fn&& fn, std::size_t grain = 1)
    -> std::vector<std::decay_t<decltype(fn(items.front()))>> {
  using R = std::decay_t<decltype(fn(items.front()))>;
  std::vector<std::optional<R>> slots(items.size());
  parallel_for(
      pool, items.size(),
      [&](std::size_t i) { slots[i].emplace(fn(items[i])); }, grain);
  std::vector<R> out;
  out.reserve(items.size());
  for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace fsml::par
