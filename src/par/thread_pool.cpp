#include "par/thread_pool.hpp"

#include <utility>

namespace fsml::par {

namespace {

/// The pool the current thread works for, if any. Used both for
/// nested-submit safety and for ThreadPool::on_worker_thread().
thread_local const ThreadPool* t_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const { return t_current_pool == this; }

void ThreadPool::submit(std::function<void()> job) {
  // Inline execution keeps a saturated pool deadlock-free when a job
  // submits sub-jobs to its own pool, and gives serial semantics for the
  // zero-worker pool.
  if (workers_.empty() || on_worker_thread()) {
    job();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

std::size_t ThreadPool::hardware_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace fsml::par
