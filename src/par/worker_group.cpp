#include "par/worker_group.hpp"

#include <chrono>
#include <thread>
#include <vector>

#include "util/check.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace fsml::par {

void SpinBackoff::pause() {
  ++spins_;
  if (spins_ < 64) {
#if defined(__x86_64__) || defined(_M_X64)
    _mm_pause();
#endif
    return;
  }
  if (spins_ < 320) {
    std::this_thread::yield();
    return;
  }
  // Sustained starvation: the peer this thread is waiting on is not being
  // scheduled (oversubscribed host). Stop burning its CPU time slice.
  std::this_thread::sleep_for(std::chrono::microseconds(50));
}

void WorkerGroup::run(std::size_t n,
                      const std::function<void(std::size_t)>& fn) {
  FSML_CHECK(n >= 1);
  std::vector<std::exception_ptr> errors(n);
  std::vector<std::thread> threads;
  threads.reserve(n - 1);
  const auto body = [&](std::size_t i) {
    try {
      fn(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };
  for (std::size_t i = 1; i < n; ++i) threads.emplace_back(body, i);
  body(0);
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace fsml::par
