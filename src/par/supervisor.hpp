// Supervisor: fault-tolerant execution of a job batch on a ThreadPool.
//
// parallel_for (below this layer) guarantees *placement* determinism; the
// Supervisor adds the reliability contract a long sweep needs:
//
//  * per-job deadlines — each attempt gets a CancelToken that a watchdog
//    thread flips once the deadline passes; jobs poll it cooperatively
//    (the sim inner loop polls every few thousand scheduler steps, see
//    exec::Machine::set_cancel_flag) and unwind with CancelledError;
//  * bounded retries — a failed attempt is retried up to max_attempts with
//    exponential backoff and decorrelated jitter (deterministically seeded
//    per (job, attempt), so sleep schedules are reproducible);
//  * quarantine — a job that exhausts its budget yields a recorded
//    JobFailure instead of killing the sweep; results stay order-preserving
//    and the set of quarantined jobs is deterministic for a fixed fault
//    schedule (failures depend only on what fn(i, attempt) does, never on
//    host scheduling);
//  * fatal escalation — exceptions deriving NonRetryable (e.g. an injected
//    crash, see fsml::fault) and std::logic_error (FSML_CHECK programming
//    errors) stop the sweep: no retry, no quarantine, the original
//    exception propagates after in-flight attempts drain. Jobs not yet
//    started are skipped, which is what makes "kill mid-sweep + resume from
//    the journal" testable in-process.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "par/parallel_for.hpp"
#include "par/thread_pool.hpp"
#include "util/rng.hpp"

namespace fsml::par {

/// Tag base: exceptions that also derive this are never retried or
/// quarantined — the Supervisor stops the sweep and rethrows them.
class NonRetryable {
 public:
  virtual ~NonRetryable() = default;
};

/// Thrown by cooperative jobs when their CancelToken fires (deadline).
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("job cancelled: deadline exceeded") {}
};

/// Shared cancellation flag handed to each job attempt. Copyable; all
/// copies observe the same flag. cancel() is a request — jobs honour it by
/// polling (poll() or the raw flag() wired into a sim loop).
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { flag_->store(true, std::memory_order_relaxed); }
  void reset() { flag_->store(false, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

  /// Throws CancelledError if cancellation was requested.
  void poll() const {
    if (cancelled()) throw CancelledError();
  }

  /// The raw flag, for code that polls without depending on fsml::par
  /// (e.g. exec::Machine's scheduler loop).
  const std::atomic<bool>* flag() const { return flag_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

struct SupervisorConfig {
  /// Attempts per job (first run + retries). 1 = no retries.
  int max_attempts = 3;
  /// Wall-clock budget per attempt; zero disables the watchdog entirely
  /// (no watchdog thread is spawned).
  std::chrono::milliseconds deadline{0};
  /// Exponential backoff with decorrelated jitter: attempt k sleeps
  /// uniform(base, min(cap, prev * 3)) milliseconds, deterministically
  /// drawn from (backoff_seed, job index, k).
  std::chrono::milliseconds backoff_base{2};
  std::chrono::milliseconds backoff_cap{250};
  std::uint64_t backoff_seed = 42;

  /// Throws std::runtime_error on out-of-range values.
  void validate() const;
};

/// One quarantined job: the sweep completed without it.
struct JobFailure {
  std::size_t index = 0;   ///< job-list index
  int attempts = 0;        ///< attempts consumed (== max_attempts)
  bool timed_out = false;  ///< last attempt exceeded its deadline
  std::string error;       ///< what() of the last failure
};

/// Outcome of a supervised batch. `results` is index-aligned with the job
/// list; nullopt marks a quarantined job (its JobFailure is in `failures`,
/// sorted by index).
template <class T>
struct Supervised {
  std::vector<std::optional<T>> results;
  std::vector<JobFailure> failures;
  std::size_t retried_attempts = 0;  ///< attempts beyond each job's first

  bool all_ok() const { return failures.empty(); }
};

class Supervisor {
 public:
  explicit Supervisor(ThreadPool& pool, SupervisorConfig config = {});
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  const SupervisorConfig& config() const { return config_; }

  /// Runs fn(index, token, attempt) for every index in [0, n), supervised
  /// (attempt counts from 1 — fault schedules and logging key off it).
  /// Results are placed by index. Throws only for NonRetryable /
  /// std::logic_error escalations; every other failure is retried then
  /// quarantined.
  template <class Fn>
  auto run(std::size_t n, Fn&& fn)
      -> Supervised<std::decay_t<decltype(fn(std::size_t{0},
                                             std::declval<CancelToken&>(),
                                             1))>> {
    using T = std::decay_t<decltype(fn(std::size_t{0},
                                       std::declval<CancelToken&>(), 1))>;
    config_.validate();
    Supervised<T> out;
    out.results.resize(n);

    std::mutex record_mutex;               // guards failures + fatal slot
    std::exception_ptr fatal;              // first fatal by job index
    std::size_t fatal_index = n;
    std::atomic<bool> fatal_seen{false};
    std::atomic<std::size_t> retried{0};

    parallel_for(pool_, n, [&](std::size_t i) {
      // A fatal error elsewhere "crashes" the sweep: jobs that have not
      // started yet are skipped (their slots stay empty).
      if (fatal_seen.load(std::memory_order_relaxed)) return;

      CancelToken token;
      for (int attempt = 1;; ++attempt) {
        const std::uint64_t ticket = arm_watch(token);
        try {
          out.results[i].emplace(fn(i, token, attempt));
          disarm_watch(ticket);
          return;
        } catch (...) {
          disarm_watch(ticket);
          const std::exception_ptr error = std::current_exception();
          if (is_fatal(error)) {
            std::lock_guard<std::mutex> lock(record_mutex);
            fatal_seen.store(true, std::memory_order_relaxed);
            if (!fatal || i < fatal_index) {
              fatal = error;
              fatal_index = i;
            }
            return;
          }
          if (attempt >= config_.max_attempts) {
            std::lock_guard<std::mutex> lock(record_mutex);
            out.failures.push_back({i, attempt, token.cancelled(),
                                    describe(error)});
            return;
          }
          retried.fetch_add(1, std::memory_order_relaxed);
          // Clear this attempt's deadline cancellation *before* the backoff
          // so the retry starts clean, then re-check after it: a cancel
          // arriving between retry scheduling and dispatch (an external
          // holder of the token, e.g. a serve session being torn down) must
          // land the job in quarantine exactly once — never be silently
          // swallowed by a reset, never dispatch another attempt.
          token.reset();
          backoff_sleep(i, attempt);
          if (token.cancelled()) {
            std::lock_guard<std::mutex> lock(record_mutex);
            out.failures.push_back({i, attempt, true,
                                    "cancelled before retry dispatch"});
            return;
          }
        }
      }
    });

    if (fatal) std::rethrow_exception(fatal);
    std::sort(out.failures.begin(), out.failures.end(),
              [](const JobFailure& a, const JobFailure& b) {
                return a.index < b.index;
              });
    out.retried_attempts = retried.load();
    return out;
  }

 private:
  /// True for NonRetryable-derived and std::logic_error exceptions.
  static bool is_fatal(const std::exception_ptr& error);
  static std::string describe(const std::exception_ptr& error);

  /// Registers `token` with the watchdog; returns a ticket for disarm.
  /// No-op (returns 0) when the deadline is disabled.
  std::uint64_t arm_watch(const CancelToken& token);
  void disarm_watch(std::uint64_t ticket);
  void backoff_sleep(std::size_t index, int attempt) const;
  void watchdog_loop();

  ThreadPool& pool_;
  SupervisorConfig config_;

  std::mutex watch_mutex_;
  std::condition_variable watch_cv_;
  std::map<std::uint64_t, std::pair<std::chrono::steady_clock::time_point,
                                    CancelToken>>
      watches_;
  std::uint64_t next_ticket_ = 1;
  bool watchdog_stop_ = false;
  std::thread watchdog_;
};

}  // namespace fsml::par
