#include "baseline/shadow_detector.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fsml::baseline {

ShadowDetector::ShadowDetector(std::uint32_t num_threads,
                               ShadowDetectorOptions options)
    : num_threads_(num_threads), options_(options) {
  FSML_CHECK_MSG(num_threads >= 1, "need at least one thread");
  // Faithful limitation of the original tool: its per-line ownership bitmap
  // tracks at most 8 threads (the paper notes it "cannot handle kmeans and
  // pca due to an 8-thread limit").
  FSML_CHECK_MSG(num_threads <= kMaxThreads,
                 "ShadowDetector supports at most 8 threads");
  FSML_CHECK(options_.line_bytes > 0 && options_.line_bytes <= 64);
}

std::uint64_t ShadowDetector::byte_mask(sim::Addr addr,
                                        std::uint32_t size) const {
  const std::uint64_t off = addr % options_.line_bytes;
  const std::uint64_t len =
      std::min<std::uint64_t>(size, options_.line_bytes - off);
  if (len >= 64) return ~0ULL;
  return ((1ULL << len) - 1) << off;
}

void ShadowDetector::on_instructions(sim::CoreId, std::uint64_t count) {
  instructions_ += count;
}

void ShadowDetector::on_access(const sim::AccessRecord& record) {
  ++instructions_;  // the access itself retires one instruction

  // Split line-crossing accesses.
  const sim::Addr first_line =
      record.addr / options_.line_bytes * options_.line_bytes;
  const sim::Addr last_line = (record.addr + record.size - 1) /
                              options_.line_bytes * options_.line_bytes;
  for (sim::Addr line = first_line; line <= last_line;
       line += options_.line_bytes) {
    ++accesses_;
    const sim::Addr begin = std::max(record.addr, line);
    const sim::Addr end =
        std::min<sim::Addr>(record.addr + record.size,
                            line + options_.line_bytes);
    const std::uint64_t mask =
        byte_mask(begin, static_cast<std::uint32_t>(end - begin));
    const std::uint32_t tid_bit = 1u << record.core;
    const bool writes = sim::is_write(record.type);

    LineShadow& s = shadow_[line];
    const bool cold = (s.touched_mask & tid_bit) == 0;
    const bool invalidated = !cold && (s.valid_mask & tid_bit) == 0;

    if (cold) {
      ++cold_misses_;
      if (options_.count_cold_as_fs && s.has_writer &&
          s.last_writer != record.core) {
        // The original tool's documented flaw: a cold miss on a line some
        // other thread wrote looks identical to an invalidation miss.
        ++fs_misses_;
        ++s.fs_misses;
      }
    } else if (invalidated) {
      // This thread's copy was invalidated by the last writer. Classify by
      // byte overlap between what the writer dirtied and what we touch.
      FSML_DCHECK(s.has_writer);
      if ((s.written_bytes & mask) != 0) {
        ++ts_misses_;
        ++s.ts_misses;
      } else {
        ++fs_misses_;
        ++s.fs_misses;
      }
    }

    s.touched_mask |= tid_bit;
    s.valid_mask |= tid_bit;
    if (writes) {
      if (s.has_writer && s.last_writer == record.core) {
        s.written_bytes |= mask;  // same writer keeps accumulating
      } else {
        s.written_bytes = mask;   // new writer epoch
      }
      s.last_writer = record.core;
      s.has_writer = true;
      s.writer_mask |= tid_bit;
      s.valid_mask = tid_bit;     // invalidate every other copy
    }
  }
}

SharingReport ShadowDetector::report() const {
  SharingReport r;
  r.instructions = instructions_;
  r.accesses = accesses_;
  r.cold_misses = cold_misses_;
  r.true_sharing_misses = ts_misses_;
  r.false_sharing_misses = fs_misses_;

  std::vector<LineStat> lines;
  lines.reserve(shadow_.size());
  for (const auto& [line, s] : shadow_) {
    if (s.fs_misses == 0 && s.ts_misses == 0) continue;
    lines.push_back(LineStat{line, s.fs_misses, s.ts_misses, s.writer_mask});
  }
  std::sort(lines.begin(), lines.end(),
            [](const LineStat& a, const LineStat& b) {
              return a.false_sharing_events > b.false_sharing_events;
            });
  if (lines.size() > options_.top_lines) lines.resize(options_.top_lines);
  r.top_lines = std::move(lines);
  return r;
}

}  // namespace fsml::baseline
