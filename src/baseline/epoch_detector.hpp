// EpochDetector: a SHERIFF-style detector (Liu & Berger, OOPSLA'11 — the
// paper's reference [21]).
//
// SHERIFF turns threads into processes; each thread's writes stay private
// between synchronization points and are diffed against a twin page at
// commit. Cache lines that different threads wrote *within the same epoch*
// at disjoint offsets are false-sharing suspects, ranked by how many times
// that interleaving repeats.
//
// Our observer equivalent: execution is cut into fixed-length epochs (by
// retired instructions, a stand-in for sync-point frequency); per epoch it
// records each thread's written-byte mask per line and, at the epoch
// boundary, charges every line written by two or more threads — disjointly
// (false sharing) or overlapping (true sharing). Unlike the Zhao detector
// it sees only *writes* (reader threads are invisible between commits),
// which is exactly why SHERIFF under-weighs read-mostly contention; the
// paper leans on this when discussing reverse_index/word_count.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "baseline/report.hpp"
#include "sim/observer.hpp"

namespace fsml::baseline {

struct EpochDetectorOptions {
  std::uint32_t line_bytes = 64;
  std::uint64_t epoch_instructions = 20000;  ///< epoch commit period
  std::size_t top_lines = 10;
};

class EpochDetector final : public sim::AccessObserver {
 public:
  explicit EpochDetector(std::uint32_t num_threads,
                         EpochDetectorOptions options = {});

  void on_access(const sim::AccessRecord& record) override;
  void on_instructions(sim::CoreId core, std::uint64_t count) override;

  /// Commits the final partial epoch and produces the report. The report's
  /// false_sharing_misses field carries *false-sharing write events*
  /// (writes to contended lines), comparable against the same 1e-3/instr
  /// rule.
  SharingReport report();

  std::uint64_t epochs_committed() const { return epochs_; }

 private:
  struct EpochLine {
    std::vector<std::uint64_t> written;  ///< per thread byte mask
    std::vector<std::uint64_t> writes;   ///< per thread write count
  };

  void commit_epoch();

  std::uint32_t num_threads_;
  EpochDetectorOptions options_;
  std::unordered_map<sim::Addr, EpochLine> epoch_lines_;
  std::unordered_map<sim::Addr, LineStat> totals_;
  std::uint64_t instructions_ = 0;
  std::uint64_t next_commit_;
  std::uint64_t accesses_ = 0;
  std::uint64_t fs_events_ = 0;
  std::uint64_t ts_events_ = 0;
  std::uint64_t epochs_ = 0;
};

}  // namespace fsml::baseline
