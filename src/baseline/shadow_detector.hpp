// ShadowDetector: reimplementation of the cache-contention detection
// approach of Zhao et al., "Dynamic Cache Contention Detection in
// Multi-threaded Applications" (VEE'11) — the paper's reference [33] and
// the ground truth for its Tables 7, 9 and 10.
//
// Like the original (built on the Umbra memory-shadowing framework), it
// observes every memory access, keeps a shadow copy per cache line of
// which thread owns a valid copy and which bytes the last writer dirtied,
// and classifies each invalidation-induced miss as a true-sharing miss
// (byte ranges overlap) or a false-sharing miss (disjoint). The program
// has false sharing iff  FS misses / instructions > 1e-3.
//
// Reproduced limitations of the original tool:
//  * at most 8 threads (its per-line thread bitmap is 8 bits wide);
//  * heavy overhead — it instruments every access (the original reports a
//    5x slowdown; ours is the simulator-observer equivalent);
//  * optional `count_cold_as_fs` mimics its documented misattribution of
//    cold misses as false sharing (the histogram false positive in §5).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "baseline/report.hpp"
#include "sim/observer.hpp"

namespace fsml::baseline {

struct ShadowDetectorOptions {
  std::uint32_t line_bytes = 64;
  /// Mimic the original tool's cold-miss misattribution (off by default).
  bool count_cold_as_fs = false;
  std::size_t top_lines = 10;
};

class ShadowDetector final : public sim::AccessObserver {
 public:
  static constexpr std::uint32_t kMaxThreads = 8;

  explicit ShadowDetector(std::uint32_t num_threads,
                          ShadowDetectorOptions options = {});

  // sim::AccessObserver
  void on_access(const sim::AccessRecord& record) override;
  void on_instructions(sim::CoreId core, std::uint64_t count) override;

  /// Final report; call after the run completes.
  SharingReport report() const;

  std::uint64_t instructions() const { return instructions_; }

 private:
  struct LineShadow {
    std::uint32_t valid_mask = 0;     ///< threads holding a valid copy
    std::uint32_t touched_mask = 0;   ///< threads that ever accessed
    std::uint32_t writer_mask = 0;    ///< threads that ever wrote
    sim::CoreId last_writer = 0;
    bool has_writer = false;
    /// Bytes dirtied by the last writer since it claimed the line.
    std::uint64_t written_bytes = 0;
    std::uint64_t fs_misses = 0;
    std::uint64_t ts_misses = 0;
  };

  std::uint64_t byte_mask(sim::Addr addr, std::uint32_t size) const;

  std::uint32_t num_threads_;
  ShadowDetectorOptions options_;
  std::unordered_map<sim::Addr, LineShadow> shadow_;
  std::uint64_t instructions_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t cold_misses_ = 0;
  std::uint64_t ts_misses_ = 0;
  std::uint64_t fs_misses_ = 0;
};

}  // namespace fsml::baseline
