// Common report type for the ground-truth sharing detectors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace fsml::baseline {

/// The Zhao et al. [VEE'11] decision rule: false sharing is present when
/// the false-sharing rate (false-sharing misses / instructions executed)
/// exceeds 1e-3.
inline constexpr double kFalseSharingRateThreshold = 1e-3;

struct LineStat {
  sim::Addr line = 0;
  std::uint64_t false_sharing_events = 0;
  std::uint64_t true_sharing_events = 0;
  std::uint32_t writer_mask = 0;  ///< bit per thread that wrote the line
};

struct SharingReport {
  std::uint64_t instructions = 0;
  std::uint64_t accesses = 0;
  std::uint64_t cold_misses = 0;
  std::uint64_t true_sharing_misses = 0;
  std::uint64_t false_sharing_misses = 0;

  double false_sharing_rate() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(false_sharing_misses) /
                                   static_cast<double>(instructions);
  }
  double contention_rate() const {
    return instructions == 0
               ? 0.0
               : static_cast<double>(false_sharing_misses +
                                     true_sharing_misses) /
                     static_cast<double>(instructions);
  }
  bool has_false_sharing(double threshold = kFalseSharingRateThreshold) const {
    return false_sharing_rate() > threshold;
  }

  /// Worst lines by false-sharing events, descending (the "finer
  /// granularity" view the paper lists as future work).
  std::vector<LineStat> top_lines;
};

}  // namespace fsml::baseline
