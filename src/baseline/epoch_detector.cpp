#include "baseline/epoch_detector.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fsml::baseline {

EpochDetector::EpochDetector(std::uint32_t num_threads,
                             EpochDetectorOptions options)
    : num_threads_(num_threads),
      options_(options),
      next_commit_(options.epoch_instructions) {
  FSML_CHECK(num_threads >= 1);
  FSML_CHECK(options_.epoch_instructions >= 1);
}

void EpochDetector::on_instructions(sim::CoreId, std::uint64_t count) {
  instructions_ += count;
  if (instructions_ >= next_commit_) commit_epoch();
}

void EpochDetector::on_access(const sim::AccessRecord& record) {
  ++instructions_;
  ++accesses_;
  if (sim::is_write(record.type)) {
    const sim::Addr first_line =
        record.addr / options_.line_bytes * options_.line_bytes;
    const sim::Addr last_line = (record.addr + record.size - 1) /
                                options_.line_bytes * options_.line_bytes;
    for (sim::Addr line = first_line; line <= last_line;
         line += options_.line_bytes) {
      EpochLine& e = epoch_lines_[line];
      if (e.written.empty()) {
        e.written.assign(num_threads_, 0);
        e.writes.assign(num_threads_, 0);
      }
      const sim::Addr begin = std::max(record.addr, line);
      const sim::Addr end = std::min<sim::Addr>(record.addr + record.size,
                                                line + options_.line_bytes);
      const std::uint64_t off = begin % options_.line_bytes;
      const std::uint64_t len = end - begin;
      const std::uint64_t mask =
          len >= 64 ? ~0ULL : ((1ULL << len) - 1) << off;
      e.written[record.core] |= mask;
      ++e.writes[record.core];
    }
  }
  if (instructions_ >= next_commit_) commit_epoch();
}

void EpochDetector::commit_epoch() {
  ++epochs_;
  next_commit_ = instructions_ + options_.epoch_instructions;
  for (auto& [line, e] : epoch_lines_) {
    std::uint32_t writers = 0;
    std::uint32_t writer_mask = 0;
    bool overlap = false;
    std::uint64_t seen = 0;
    std::uint64_t total_writes = 0;
    std::uint64_t max_writes = 0;
    for (std::uint32_t t = 0; t < num_threads_; ++t) {
      if (e.written[t] == 0) continue;
      ++writers;
      writer_mask |= 1u << t;
      if (seen & e.written[t]) overlap = true;
      seen |= e.written[t];
      total_writes += e.writes[t];
      max_writes = std::max(max_writes, e.writes[t]);
    }
    if (writers >= 2) {
      // Interleaving weight: every write beyond the dominant thread's is a
      // potential cross-thread invalidation this epoch.
      const std::uint64_t events = total_writes - max_writes;
      LineStat& stat = totals_[line];
      stat.line = line;
      stat.writer_mask |= writer_mask;
      if (overlap) {
        ts_events_ += events;
        stat.true_sharing_events += events;
      } else {
        fs_events_ += events;
        stat.false_sharing_events += events;
      }
    }
  }
  epoch_lines_.clear();
}

SharingReport EpochDetector::report() {
  if (!epoch_lines_.empty()) commit_epoch();
  SharingReport r;
  r.instructions = instructions_;
  r.accesses = accesses_;
  r.true_sharing_misses = ts_events_;
  r.false_sharing_misses = fs_events_;

  std::vector<LineStat> lines;
  lines.reserve(totals_.size());
  for (const auto& [line, stat] : totals_) lines.push_back(stat);
  std::sort(lines.begin(), lines.end(),
            [](const LineStat& a, const LineStat& b) {
              return a.false_sharing_events > b.false_sharing_events;
            });
  if (lines.size() > options_.top_lines) lines.resize(options_.top_lines);
  r.top_lines = std::move(lines);
  return r;
}

}  // namespace fsml::baseline
