#include "fault/fault.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/rng.hpp"

namespace fsml::fault {

namespace {

std::uint64_t mix_key(std::uint64_t seed, std::string_view site,
                      std::string_view key, std::uint64_t salt) {
  // FNV-1a over (site, key), folded with seed and salt, then SplitMix64 —
  // the same keyed-hash idiom core::training uses for per-run seeds.
  std::uint64_t h = 1469598103934665603ULL ^ seed;
  const auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ULL; };
  for (const char c : site) mix(static_cast<std::uint64_t>(c));
  mix(0xFFu);  // separator: ("ab","c") must differ from ("a","bc")
  for (const char c : key) mix(static_cast<std::uint64_t>(c));
  mix(salt);
  return util::SplitMix64(h).next();
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

double FaultInjector::draw(std::string_view site, std::string_view key,
                           std::uint64_t salt) const {
  return static_cast<double>(mix_key(plan_.seed, site, key, salt) >> 11) *
         0x1.0p-53;
}

void FaultInjector::maybe_throw(std::string_view site, std::string_view key,
                                int attempt) const {
  if (plan_.throw_rate <= 0.0) return;
  if (attempt > plan_.throw_attempts) return;  // transient: retries succeed
  if (draw(site, key, /*salt=*/1) < plan_.throw_rate)
    throw InjectedFault("injected fault at " + std::string(site) + " [" +
                        std::string(key) + "] attempt " +
                        std::to_string(attempt));
}

bool FaultInjector::should_hang(std::string_view site, std::string_view key,
                                int attempt) const {
  if (std::find(plan_.hang_keys.begin(), plan_.hang_keys.end(), key) !=
      plan_.hang_keys.end())
    return true;  // persistent: every attempt overruns
  if (plan_.hang_rate <= 0.0 || attempt > 1) return false;
  return draw(site, key, /*salt=*/2) < plan_.hang_rate;
}

void FaultInjector::hang(const par::CancelToken& token) const {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!token.cancelled()) {
    if (std::chrono::steady_clock::now() >= give_up) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  throw par::CancelledError();
}

void FaultInjector::count_completion() {
  if (plan_.abort_after == 0) return;
  if (completions_.fetch_add(1, std::memory_order_relaxed) + 1 ==
      plan_.abort_after)
    throw InjectedAbort("injected abort after " +
                        std::to_string(plan_.abort_after) +
                        " completed jobs");
}

std::uint64_t FaultInjector::stall_for(std::string_view site,
                                       std::string_view key,
                                       int attempt) const {
  if (plan_.stall_rate <= 0.0 || plan_.stall_steps == 0) return 0;
  // Salt 3 namespaces stall draws away from throws (1) and hangs (2); the
  // attempt folds in so retries of one key redraw independently.
  const std::uint64_t salt =
      3 + (static_cast<std::uint64_t>(attempt) << 8);
  return draw(site, key, salt) < plan_.stall_rate ? plan_.stall_steps : 0;
}

bool FaultInjector::should_overflow(std::string_view site,
                                    std::string_view key, int attempt) const {
  if (plan_.overflow_rate <= 0.0) return false;
  const std::uint64_t salt =
      4 + (static_cast<std::uint64_t>(attempt) << 8);
  return draw(site, key, salt) < plan_.overflow_rate;
}

std::string FaultInjector::corrupt(std::string bytes) const {
  if (!plan_.corrupt_artifacts || bytes.empty()) return bytes;
  const std::size_t pos = mix_key(plan_.seed, "corrupt", "", bytes.size()) %
                          bytes.size();
  bytes[pos] = static_cast<char>(bytes[pos] ^ 0x20);
  return bytes;
}

}  // namespace fsml::fault
