// fsml::fault — deterministic fault injection for the collection pipeline.
//
// A FaultPlan is a *schedule*, not a dice roll at runtime: every decision is
// a pure function of (plan seed, site, job key, attempt), so two sweeps with
// the same plan fail in exactly the same places regardless of host thread
// count or scheduling. That is what lets the tests pin hard properties like
// "the resumed cache is bit-identical to the uninterrupted run" and "the
// quarantine set is exactly these cells".
//
// Fault kinds, by site in the collection path:
//  * throws   — `collect.run` raises InjectedFault before the simulation;
//               transient (the first `throw_attempts` attempts fail, the
//               retry succeeds), so they exercise the Supervisor's backoff;
//  * hangs    — the job spins cooperatively until its CancelToken fires
//               (deadline overrun). Keys listed in `hang_keys` hang on every
//               attempt and therefore end up quarantined;
//  * aborts   — `count_completion()` raises InjectedAbort (NonRetryable)
//               after `abort_after` completed jobs: an in-process stand-in
//               for `kill -9` mid-sweep, used by the crash/resume tests and
//               the CI smoke;
//  * corruption — `corrupt()` flips one byte of an artifact about to be
//               written, exercising CRC rejection on the read side.
//  * stalls   — `stall_for()` reports how many *virtual* steps a (site,
//               key, attempt) must delay before it proceeds. The serve
//               drill uses it for slow clients and laggy processing; unlike
//               hangs it models latency, not death, so the stalled work
//               still completes (or trips an idle/deadline timeout).
//  * overflow — `should_overflow()` forces a bounded-queue admission site
//               to report "full" even when capacity remains, exercising
//               reject-with-retry-after and load-shedding paths without
//               needing a real arrival race.
//
// The default FaultPlan is inert: plan().any() == false and every hook is a
// no-op, so production code paths can hold an injector unconditionally.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "par/supervisor.hpp"

namespace fsml::fault {

/// A transient injected failure: retryable, quarantinable.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error(what) {}
};

/// An injected crash: NonRetryable, stops the sweep like a kill would.
class InjectedAbort : public std::runtime_error, public par::NonRetryable {
 public:
  explicit InjectedAbort(const std::string& what)
      : std::runtime_error(what) {}
};

struct FaultPlan {
  std::uint64_t seed = 0;
  /// Probability that a (site, key) draws a transient throw.
  double throw_rate = 0.0;
  /// Leading attempts that fail for keys which drew a throw; retries past
  /// this count succeed. max_attempts <= throw_attempts quarantines them.
  int throw_attempts = 1;
  /// Probability that a (site, key) draws a transient hang (first attempt
  /// only — the retry runs clean).
  double hang_rate = 0.0;
  /// Keys that hang on *every* attempt: guaranteed quarantine.
  std::vector<std::string> hang_keys;
  /// Completed jobs before count_completion() raises InjectedAbort;
  /// 0 disables.
  std::uint64_t abort_after = 0;
  /// Flip one byte of artifacts passed through corrupt().
  bool corrupt_artifacts = false;
  /// Probability that a (site, key, attempt) draws a latency stall of
  /// `stall_steps` virtual steps (serve drill: slow clients, laggy
  /// dequeues). 0 disables.
  double stall_rate = 0.0;
  /// Virtual steps a stalled (site, key, attempt) delays.
  std::uint64_t stall_steps = 4;
  /// Probability that a bounded-queue admission site reports overflow for a
  /// (site, key, attempt) even though capacity remains. 0 disables.
  double overflow_rate = 0.0;

  bool any() const {
    return throw_rate > 0.0 || hang_rate > 0.0 || !hang_keys.empty() ||
           abort_after > 0 || corrupt_artifacts ||
           (stall_rate > 0.0 && stall_steps > 0) || overflow_rate > 0.0;
  }
};

class FaultInjector {
 public:
  FaultInjector() = default;  ///< inert
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Raises InjectedFault when (site, key) drew a throw and this attempt is
  /// still within the failing prefix.
  void maybe_throw(std::string_view site, std::string_view key,
                   int attempt) const;

  /// True when this attempt must overrun its deadline.
  bool should_hang(std::string_view site, std::string_view key,
                   int attempt) const;

  /// Cooperative hang: sleeps until `token` is cancelled (with a 30 s
  /// safety cap so a missing watchdog cannot wedge a test run), then
  /// unwinds with CancelledError.
  [[noreturn]] void hang(const par::CancelToken& token) const;

  /// Counts one completed job; raises InjectedAbort on the abort_after'th.
  void count_completion();

  /// Deterministically flips one byte when corrupt_artifacts is set.
  std::string corrupt(std::string bytes) const;

  /// Virtual steps this (site, key, attempt) must stall before proceeding;
  /// 0 = run now. Pure in (seed, site, key, attempt).
  std::uint64_t stall_for(std::string_view site, std::string_view key,
                          int attempt) const;

  /// True when a bounded-queue admission at (site, key, attempt) must be
  /// treated as overflowed. Pure in (seed, site, key, attempt).
  bool should_overflow(std::string_view site, std::string_view key,
                       int attempt) const;

 private:
  /// Uniform [0, 1) draw, pure in (seed, site, key, salt).
  double draw(std::string_view site, std::string_view key,
              std::uint64_t salt) const;

  FaultPlan plan_;
  std::atomic<std::uint64_t> completions_{0};
};

}  // namespace fsml::fault
