// Counter snapshots and normalized feature vectors.
//
// A CounterSnapshot is what "reading the PMU" yields after a program run:
// the 16 Table-2 event counts aggregated over all cores. A FeatureVector is
// the paper's input representation for the classifier: events 1..15 divided
// by event 16 (Instructions_Retired), which makes counts comparable across
// programs of different lengths.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "pmu/events.hpp"
#include "sim/raw_events.hpp"

namespace fsml::pmu {

class CounterSnapshot {
 public:
  /// Reads the 16 architectural events out of an (aggregated) raw bank.
  static CounterSnapshot from_raw(const sim::RawCounters& raw);

  std::uint64_t get(WestmereEvent e) const {
    return counts_[static_cast<std::size_t>(e)];
  }
  void set(WestmereEvent e, std::uint64_t v) {
    counts_[static_cast<std::size_t>(e)] = v;
  }

  std::uint64_t instructions() const {
    return get(WestmereEvent::kInstructionsRetired);
  }

 private:
  std::array<std::uint64_t, kNumWestmereEvents> counts_{};
};

/// Number of normalized features (events 1..15; event 16 normalizes).
constexpr std::size_t kNumFeatures = kNumWestmereEvents - 1;

class FeatureVector {
 public:
  FeatureVector() = default;

  /// counts[e] / instructions for the first 15 events.
  static FeatureVector normalize(const CounterSnapshot& snapshot);

  double get(WestmereEvent e) const {
    const auto i = static_cast<std::size_t>(e);
    return i < kNumFeatures ? values_[i] : 1.0;  // event 16 / itself
  }
  double at(std::size_t i) const { return values_.at(i); }
  void set(std::size_t i, double v) { values_.at(i) = v; }

  const std::array<double, kNumFeatures>& values() const { return values_; }

  /// Stable names ("ev01_L2_Data_Requests...") used as ML attribute names
  /// and CSV headers.
  static std::vector<std::string> feature_names();

 private:
  std::array<double, kNumFeatures> values_{};
};

/// Normalizes an arbitrary set of raw counters by retired instructions.
/// Used by the event-selection experiment, which works on the full
/// candidate list rather than the 16 selected events.
std::vector<double> normalize_raw(const sim::RawCounters& raw,
                                  const std::vector<sim::RawEvent>& events);

}  // namespace fsml::pmu
