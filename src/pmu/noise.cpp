#include "pmu/noise.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace fsml::pmu {

namespace {

/// Independent, well-mixed stream per (seed, measurement_id): both inputs
/// pass through SplitMix64 so nearby seeds/ids do not correlate.
util::Rng measurement_rng(std::uint64_t seed, std::uint64_t measurement_id) {
  util::SplitMix64 a(seed);
  util::SplitMix64 b(measurement_id ^ 0x6a09e667f3bcc909ULL);
  return util::Rng(a.next() ^ b.next());
}

}  // namespace

void NoiseConfig::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::runtime_error("NoiseConfig: " + what);
  };
  if (std::isnan(jitter) || jitter < 0.0 || jitter > 1.0)
    bad("jitter must be in [0, 1]");
  if (std::isnan(drop_probability) || drop_probability < 0.0 ||
      drop_probability > 1.0)
    bad("drop_probability must be in [0, 1]");
  if (counters > kNumWestmereEvents)
    bad("counters must be 0 (unlimited) .. 16");
  if (saturation_limit == 0) bad("saturation_limit must be positive");
}

std::size_t DegradedSnapshot::num_missing() const {
  std::size_t n = 0;
  for (const bool p : present)
    if (!p) ++n;
  return n;
}

bool DegradedSnapshot::usable() const {
  return has(WestmereEvent::kInstructionsRetired) &&
         counts.instructions() > 0;
}

FeatureVector DegradedSnapshot::to_features() const {
  FSML_CHECK_MSG(usable(),
                 "cannot normalize a snapshot whose instruction count was "
                 "lost — check usable() first");
  const auto instructions = static_cast<double>(counts.instructions());
  FeatureVector fv;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    const auto e = static_cast<WestmereEvent>(i);
    fv.set(i, present[i] ? static_cast<double>(counts.get(e)) / instructions
                         : std::numeric_limits<double>::quiet_NaN());
  }
  return fv;
}

MeasurementModel::MeasurementModel(NoiseConfig config) : config_(config) {
  config_.validate();
  if (config_.counters > 0 && config_.counters < kNumWestmereEvents)
    num_groups_ =
        (kNumWestmereEvents + config_.counters - 1) / config_.counters;
}

DegradedSnapshot MeasurementModel::measure(
    const sim::RawCounters& aggregate,
    std::span<const sim::RawCounters> slices,
    std::uint64_t measurement_id) const {
  return degrade(CounterSnapshot::from_raw(aggregate), slices,
                 measurement_id);
}

DegradedSnapshot MeasurementModel::measure(
    const CounterSnapshot& clean, std::uint64_t measurement_id) const {
  return degrade(clean, {}, measurement_id);
}

DegradedSnapshot MeasurementModel::degrade(
    const CounterSnapshot& clean, std::span<const sim::RawCounters> slices,
    std::uint64_t measurement_id) const {
  util::Rng rng = measurement_rng(config_.seed, measurement_id);
  // The draw schedule is fixed — one phase, then (jitter, drop) per event in
  // table order — so a measurement depends only on (seed, id), never on
  // counter values or on which degradations happen to trigger.
  const std::size_t phase = rng.next_below(num_groups_);

  // Per-slice Table-2 counts, needed only when rotation actually loses
  // coverage (more than one group and time-resolved data to lose it in).
  std::vector<CounterSnapshot> slice_counts;
  const bool rotate = num_groups_ > 1 && !slices.empty();
  if (rotate) {
    slice_counts.reserve(slices.size());
    for (const sim::RawCounters& raw : slices)
      slice_counts.push_back(CounterSnapshot::from_raw(raw));
  }

  DegradedSnapshot out;
  for (std::size_t i = 0; i < kNumWestmereEvents; ++i) {
    const double jitter_draw = rng.next_double();
    const double drop_draw = rng.next_double();
    const auto e = static_cast<WestmereEvent>(i);

    bool lost = false;
    std::uint64_t value = clean.get(e);
    if (rotate) {
      // Event i is resident only while its group is scheduled; compensate
      // with the time_enabled/time_running scaling perf performs.
      const std::size_t group = i / config_.counters;
      std::uint64_t sum = 0, resident = 0;
      for (std::size_t s = 0; s < slice_counts.size(); ++s) {
        if ((s + phase) % num_groups_ != group) continue;
        sum += slice_counts[s].get(e);
        ++resident;
      }
      if (resident == 0) {
        lost = true;  // run shorter than one full rotation
      } else {
        const double scale = static_cast<double>(slice_counts.size()) /
                             static_cast<double>(resident);
        value = static_cast<std::uint64_t>(
            std::llround(static_cast<double>(sum) * scale));
      }
    }
    if (config_.jitter > 0.0) {
      const double factor = 1.0 + config_.jitter * (2.0 * jitter_draw - 1.0);
      value = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(value) * factor));
    }
    if (drop_draw < config_.drop_probability) lost = true;

    if (lost) {
      out.counts.set(e, 0);
      continue;  // present stays false
    }
    if (value >= config_.saturation_limit) {
      out.counts.set(e, config_.saturation_limit);
      out.saturated[i] = true;
      continue;  // pegged counter: detectably unusable, not silently wrong
    }
    out.counts.set(e, value);
    out.present[i] = true;
  }
  return out;
}

}  // namespace fsml::pmu
