#include "pmu/events.hpp"

#include <array>

#include "util/check.hpp"

namespace fsml::pmu {

namespace {

using sim::RawEvent;

constexpr std::array<EventInfo, kNumWestmereEvents> kTable = {{
    {WestmereEvent::kL2DataRequestsDemandI, 0x26, 0x01,
     "L2_Data_Requests.Demand.I_state", RawEvent::kL2DemandIState},
    {WestmereEvent::kL2WriteRfoS, 0x27, 0x02, "L2_Write.RFO.S_state",
     RawEvent::kL2RfoHitS},
    {WestmereEvent::kL2RequestsLdMiss, 0x24, 0x02, "L2_Requests.LD_MISS",
     RawEvent::kL2LdMiss},
    {WestmereEvent::kResourceStallsStore, 0xA2, 0x08, "Resource_Stalls.Store",
     RawEvent::kStoreBufferStallCycles},
    {WestmereEvent::kOffcoreDemandRdData, 0xB0, 0x01,
     "Offcore_Requests.Demand_RD_Data", RawEvent::kOffcoreDemandRdData},
    {WestmereEvent::kL2TransactionsFill, 0xF0, 0x20, "L2_Transactions.FILL",
     RawEvent::kL2Fill},
    {WestmereEvent::kL2LinesInS, 0xF1, 0x02, "L2_Lines_In.S_state",
     RawEvent::kL2LinesInS},
    {WestmereEvent::kL2LinesOutDemandClean, 0xF2, 0x01,
     "L2_Lines_Out.Demand_Clean", RawEvent::kL2LinesOutDemandClean},
    {WestmereEvent::kSnoopResponseHit, 0xB8, 0x01, "Snoop_Response.HIT",
     RawEvent::kSnoopResponseHit},
    {WestmereEvent::kSnoopResponseHitE, 0xB8, 0x02, "Snoop_Response.HIT_E",
     RawEvent::kSnoopResponseHitE},
    {WestmereEvent::kSnoopResponseHitM, 0xB8, 0x04, "Snoop_Response.HIT_M",
     RawEvent::kSnoopResponseHitM},
    {WestmereEvent::kMemLoadRetdHitLfb, 0xCB, 0x40, "Mem_Load_Retd.HIT_LFB",
     RawEvent::kL1dHitLfb},
    {WestmereEvent::kDtlbMisses, 0x49, 0x01, "DTLB_Misses",
     RawEvent::kDtlbMiss},
    {WestmereEvent::kL1dCacheReplacements, 0x51, 0x01,
     "L1D_Cache_Replacements", RawEvent::kL1dReplacement},
    {WestmereEvent::kResourceStallsLoads, 0xA2, 0x02, "Resource_Stalls.Loads",
     RawEvent::kLoadStallCycles},
    {WestmereEvent::kInstructionsRetired, 0xC0, 0x00, "Instructions_Retired",
     RawEvent::kInstructionsRetired},
}};

}  // namespace

std::span<const EventInfo> westmere_event_table() { return kTable; }

const EventInfo& event_info(WestmereEvent e) {
  const auto i = static_cast<std::size_t>(e);
  FSML_CHECK(i < kNumWestmereEvents);
  return kTable[i];
}

const EventInfo& event_by_number(int table_number) {
  FSML_CHECK_MSG(table_number >= 1 &&
                     table_number <= static_cast<int>(kNumWestmereEvents),
                 "Table-2 event numbers are 1..16");
  return kTable[static_cast<std::size_t>(table_number - 1)];
}

std::vector<sim::RawEvent> candidate_events() {
  std::vector<sim::RawEvent> events;
  events.reserve(sim::kNumRawEvents);
  for (std::size_t i = 0; i < sim::kNumRawEvents; ++i) {
    const auto e = static_cast<sim::RawEvent>(i);
    // Exclude counters with no hardware-PMU equivalent or that are pure
    // normalizers: retired-instruction and cycle counts are handled
    // separately (the paper adds Instructions_Retired explicitly as the
    // normalizing event, not as a candidate signal).
    if (e == sim::RawEvent::kInstructionsRetired) continue;
    if (e == sim::RawEvent::kCyclesTotal) continue;
    events.push_back(e);
  }
  return events;
}

}  // namespace fsml::pmu
