// MeasurementModel: deterministic emulation of degraded PMU measurement.
//
// The paper's 15-feature vector assumes a clean simultaneous read of all 16
// Table-2 events, but a real Westmere core has only 4 programmable counters:
// perf multiplexes the requested events in rotating groups and scales each
// count by its coverage fraction (time_running / time_enabled). That
// introduces coverage error on phase-varying programs, run-to-run jitter,
// and occasionally unusable counts. This model reproduces those effects on
// top of the simulator's pristine counters so the rest of the pipeline can
// be hardened — and tested — against them:
//
//  * multiplexing: the 16 events are scheduled round-robin into groups of
//    `counters`; each event is observed only during the time slices its
//    group was resident and scaled by total/observed slice count (exactly
//    the time_enabled/time_running compensation perf applies). Without
//    per-slice data the scaling is exact, so coverage error only appears on
//    sliced runs — which is faithful: multiplexing error *is* a
//    time-variation artifact.
//  * jitter: each observed count is multiplied by a uniform factor in
//    [1-jitter, 1+jitter].
//  * faults: an event is dropped (unreadable) with `drop_probability`, and
//    any count that reaches `saturation_limit` pegs there and is flagged
//    unusable (a saturated counter is detectably garbage, not silently
//    wrong).
//
// Everything is a pure function of (NoiseConfig::seed, measurement_id):
// repeated measurements of the same run differ (fresh jitter/faults/rotation
// phase per id), but any (seed, id) pair is bit-exactly reproducible, on any
// host thread count.
//
// A default-constructed NoiseConfig degrades nothing: measure() then
// returns the clean counts with every event present, so the entire noise
// path is strictly opt-in.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "pmu/counters.hpp"
#include "pmu/events.hpp"
#include "sim/raw_events.hpp"

namespace fsml::pmu {

struct NoiseConfig {
  /// Programmable counters available per multiplex group; 0 means "enough
  /// for all 16 events at once" (no multiplexing). Westmere has 4.
  std::size_t counters = 0;
  /// Half-width of the multiplicative per-event jitter: each count is
  /// scaled by a uniform factor in [1-jitter, 1+jitter]. 0 disables.
  double jitter = 0.0;
  /// Probability that an event's count is unreadable for one measurement.
  double drop_probability = 0.0;
  /// Counts at or above this value peg and are flagged unusable. The
  /// default (2^48, a full-width Westmere counter) never triggers.
  std::uint64_t saturation_limit = 1ULL << 48;
  std::uint64_t seed = 0;

  /// True when any degradation can occur.
  bool enabled() const {
    return (counters > 0 && counters < kNumWestmereEvents) || jitter > 0.0 ||
           drop_probability > 0.0 || saturation_limit < (1ULL << 48);
  }

  /// Throws std::runtime_error on out-of-range parameters (jitter and
  /// drop_probability in [0,1], counters <= 16, NaN rejected).
  void validate() const;
};

/// One degraded read of the PMU: counts plus per-event usability. A dropped
/// or saturated event is absent (`present` false); its count is 0 for drops
/// and the pegged limit for saturations.
struct DegradedSnapshot {
  CounterSnapshot counts;
  std::array<bool, kNumWestmereEvents> present{};
  std::array<bool, kNumWestmereEvents> saturated{};

  bool has(WestmereEvent e) const {
    return present[static_cast<std::size_t>(e)];
  }
  std::size_t num_missing() const;

  /// A snapshot classifies only if the normalizer survived: instructions
  /// present and non-zero.
  bool usable() const;

  /// Normalized features with NaN in every missing slot (the ML layer's
  /// missing-value sentinel). Requires usable().
  FeatureVector to_features() const;
};

class MeasurementModel {
 public:
  explicit MeasurementModel(NoiseConfig config);

  const NoiseConfig& config() const { return config_; }

  /// Multiplex groups the 16 events are scheduled into (1 = no rotation).
  std::size_t num_groups() const { return num_groups_; }

  /// Degrades one measurement of a run. `slices` are the per-time-slice raw
  /// counter deltas of the run (exec::RunResult::slices); empty means no
  /// time-resolved data, in which case multiplex scaling is exact and only
  /// jitter/faults degrade. `measurement_id` selects an independent noise
  /// draw — use the repeat index.
  DegradedSnapshot measure(const sim::RawCounters& aggregate,
                           std::span<const sim::RawCounters> slices,
                           std::uint64_t measurement_id) const;

  /// Convenience for snapshot-only callers (no slice data).
  DegradedSnapshot measure(const CounterSnapshot& clean,
                           std::uint64_t measurement_id) const;

 private:
  DegradedSnapshot degrade(const CounterSnapshot& clean,
                           std::span<const sim::RawCounters> slices,
                           std::uint64_t measurement_id) const;

  NoiseConfig config_;
  std::size_t num_groups_ = 1;
};

}  // namespace fsml::pmu
