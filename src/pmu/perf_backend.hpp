// Real-hardware counter collection via Linux perf_event_open(2) — the
// collection path the paper used (PAPI/perf on the Westmere machine), for
// running this library outside the simulator.
//
// The paper's methodology is explicitly per-platform: steps 2-6 (identify
// events, collect, label, train) are repeated on each new machine. This
// backend implements the *collection* step on whatever machine the library
// runs on:
//
//   fsml::pmu::PerfCounterGroup group(fsml::pmu::generic_event_specs());
//   if (group.ok()) {
//     group.start();
//     run_workload();
//     const auto counts = group.stop();   // scaled for multiplexing
//   }
//
// Event mapping: exact Table-2 raw event/umask codes are only valid on
// Westmere; `westmere_event_specs()` emits them for a genuine Westmere part
// (raw type), while `generic_event_specs()` maps each Table-2 event to the
// closest portable perf generic/cache event so the pipeline runs anywhere
// (with reduced fidelity — generic kernels expose no HITM-precise event;
// retraining on the target machine is required, exactly as the paper says).
//
// Everything degrades gracefully: in sandboxes/containers without
// perf_event access, available() is false and start() on a failed group
// raises a clear "perf backend unavailable" error naming each event that
// could not be opened (with the perf_event_paranoid remedy) instead of
// aborting the process.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pmu/counters.hpp"
#include "pmu/events.hpp"

namespace fsml::pmu {

/// One perf_event_attr-level event description.
struct PerfEventSpec {
  WestmereEvent id{};        ///< which Table-2 slot this measures
  std::uint32_t type = 0;    ///< PERF_TYPE_* value
  std::uint64_t config = 0;  ///< event-specific config
  std::string label;         ///< for diagnostics
};

/// True when this process may open performance counters at all
/// (perf_event_open exists and perf_event_paranoid permits self-profiling).
bool perf_available();

/// Best-effort portable mapping of the paper's 16 events onto perf generic
/// hardware/cache events. Events with no portable analogue are omitted;
/// their feature slots read as zero.
std::vector<PerfEventSpec> generic_event_specs();

/// The exact Table-2 raw codes (event | umask<<8) for a real Westmere-DP
/// part, as PERF_TYPE_RAW events.
std::vector<PerfEventSpec> westmere_event_specs();

/// A group of counters measuring the calling process (all threads,
/// inherit). Kernel-side multiplexing is compensated by
/// time_enabled/time_running scaling on read.
class PerfCounterGroup {
 public:
  explicit PerfCounterGroup(std::vector<PerfEventSpec> specs);
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// True when every requested event opened successfully.
  bool ok() const { return ok_; }
  /// Events that failed to open (diagnostics).
  const std::vector<std::string>& failures() const { return failures_; }

  /// Throws std::runtime_error ("perf backend unavailable", with per-event
  /// diagnostics and the perf_event_paranoid hint) when !ok() — an
  /// environment problem, not a programming error.
  void start();
  /// Stops counting and returns the (multiplex-scaled) snapshot. Transient
  /// read failures (EINTR/EAGAIN) are retried with bounded backoff; a
  /// counter that still cannot be read is skipped, not fatal.
  CounterSnapshot stop();

  /// Convenience: measure one callable. Returns ok() && counts.
  static bool measure(const std::vector<PerfEventSpec>& specs,
                      const std::function<void()>& work,
                      CounterSnapshot* out);

 private:
  struct OpenCounter {
    PerfEventSpec spec;
    int fd = -1;
  };

  std::vector<OpenCounter> counters_;
  std::vector<std::string> failures_;
  bool ok_ = false;
  bool running_ = false;
};

}  // namespace fsml::pmu
