// Architectural performance events of the modelled Westmere-DP PMU.
//
// Table 2 of the paper lists the 16 events its classifier consumes; this
// header defines them (with the paper's event/umask codes) plus the mapping
// from the simulator's raw micro-event counters. The *candidate* list the
// Section-2.3 selection procedure searches is the full raw-counter set — on
// real hardware it was "60-70 events from the SDM"; here it is every
// counter the simulated PMU exposes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/raw_events.hpp"

namespace fsml::pmu {

/// The 16 selected events of the paper's Table 2, in table order.
enum class WestmereEvent : std::uint8_t {
  kL2DataRequestsDemandI,   // 26/01  L2 Data Requests.Demand."I" state
  kL2WriteRfoS,             // 27/02  L2 Write.RFO."S" state
  kL2RequestsLdMiss,        // 24/02  L2_Requests.LD_MISS
  kResourceStallsStore,     // A2/08  Resource_Stalls.Store
  kOffcoreDemandRdData,     // B0/01  Offcore_Requests.Demand_RD_Data
  kL2TransactionsFill,      // F0/20  L2_Transactions.FILL
  kL2LinesInS,              // F1/02  L2_Lines_In."S" state
  kL2LinesOutDemandClean,   // F2/01  L2_Lines_Out.Demand_Clean
  kSnoopResponseHit,        // B8/01  Snoop_Response.HIT
  kSnoopResponseHitE,       // B8/02  Snoop_Response.HIT "E"
  kSnoopResponseHitM,       // B8/04  Snoop_Response.HIT "M"
  kMemLoadRetdHitLfb,       // CB/40  Mem_Load_Retd.HIT_LFB
  kDtlbMisses,              // 49/01  DTLB_Misses
  kL1dCacheReplacements,    // 51/01  L1D-Cache Replacements
  kResourceStallsLoads,     // A2/02  Resource_Stalls.Loads
  kInstructionsRetired,     // C0/00  Instructions_Retired
  kNumEvents,
};

constexpr std::size_t kNumWestmereEvents =
    static_cast<std::size_t>(WestmereEvent::kNumEvents);

struct EventInfo {
  WestmereEvent id;
  std::uint16_t event_code;  ///< Intel event select code (hex in Table 2)
  std::uint16_t umask;       ///< unit mask
  std::string_view name;     ///< Table-2 description
  sim::RawEvent raw;         ///< simulator counter it is derived from
};

/// Table 2, in order (index = paper's "Event #" - 1).
std::span<const EventInfo> westmere_event_table();

const EventInfo& event_info(WestmereEvent e);

/// Finds an event by its Table-2 "Event #" (1-based).
const EventInfo& event_by_number(int table_number);

/// The candidate list for the Section-2.3 selection procedure: every raw
/// simulator counter that a real PMU could plausibly expose (all of them,
/// minus pure-bookkeeping counters that have no hardware equivalent).
std::vector<sim::RawEvent> candidate_events();

}  // namespace fsml::pmu
