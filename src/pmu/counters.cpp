#include "pmu/counters.hpp"

#include <sstream>

#include "util/check.hpp"

namespace fsml::pmu {

CounterSnapshot CounterSnapshot::from_raw(const sim::RawCounters& raw) {
  CounterSnapshot snapshot;
  for (const EventInfo& info : westmere_event_table())
    snapshot.set(info.id, raw.get(info.raw));
  return snapshot;
}

FeatureVector FeatureVector::normalize(const CounterSnapshot& snapshot) {
  const std::uint64_t instructions = snapshot.instructions();
  FSML_CHECK_MSG(instructions > 0,
                 "cannot normalize a snapshot with zero instructions");
  FeatureVector fv;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    const auto e = static_cast<WestmereEvent>(i);
    fv.values_[i] = static_cast<double>(snapshot.get(e)) /
                    static_cast<double>(instructions);
  }
  return fv;
}

std::vector<std::string> FeatureVector::feature_names() {
  std::vector<std::string> names;
  names.reserve(kNumFeatures);
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    const EventInfo& info = event_info(static_cast<WestmereEvent>(i));
    std::ostringstream os;
    os << "ev" << (i < 9 ? "0" : "") << (i + 1) << '_' << info.name;
    names.push_back(os.str());
  }
  return names;
}

std::vector<double> normalize_raw(const sim::RawCounters& raw,
                                  const std::vector<sim::RawEvent>& events) {
  const std::uint64_t instructions =
      raw.get(sim::RawEvent::kInstructionsRetired);
  FSML_CHECK_MSG(instructions > 0,
                 "cannot normalize counters with zero instructions");
  std::vector<double> out;
  out.reserve(events.size());
  for (const sim::RawEvent e : events)
    out.push_back(static_cast<double>(raw.get(e)) /
                  static_cast<double>(instructions));
  return out;
}

}  // namespace fsml::pmu
