#include "pmu/perf_backend.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <thread>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define FSML_HAVE_PERF 1
#else
#define FSML_HAVE_PERF 0
#endif

#include "util/check.hpp"

namespace fsml::pmu {

#if FSML_HAVE_PERF

namespace {

long perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                     unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

int open_counter(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.inherit = 1;  // count child threads too
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1, /*group_fd=*/-1, 0));
}

constexpr std::uint64_t cache_config(std::uint64_t cache, std::uint64_t op,
                                     std::uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

std::string open_error(int err) {
  if (err == EACCES || err == EPERM)
    return std::string(std::strerror(err)) +
           " (perf access denied — lower /proc/sys/kernel/"
           "perf_event_paranoid or grant CAP_PERFMON)";
  return std::strerror(err);
}

// Counter reads can be interrupted (EINTR) or transiently unready (EAGAIN);
// retry with a short bounded backoff before declaring the value lost.
bool read_counter(int fd, void* buf, std::size_t size) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const ssize_t n = read(fd, buf, static_cast<std::size_t>(size));
    if (n == static_cast<ssize_t>(size)) return true;
    if (n >= 0) return false;  // short read: malformed, do not retry
    if (errno != EINTR && errno != EAGAIN) return false;
    if (attempt > 0)  // EINTR is usually instantaneous; back off after that
      std::this_thread::sleep_for(std::chrono::microseconds(1 << attempt));
  }
  return false;
}

}  // namespace

bool perf_available() {
  const int fd = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  if (fd < 0) return false;
  close(fd);
  return true;
}

std::vector<PerfEventSpec> generic_event_specs() {
  using E = WestmereEvent;
  std::vector<PerfEventSpec> specs;
  const auto add = [&](E id, std::uint32_t type, std::uint64_t config,
                       const char* label) {
    specs.push_back(PerfEventSpec{id, type, config, label});
  };
  // The normalizer is mandatory.
  add(E::kInstructionsRetired, PERF_TYPE_HARDWARE,
      PERF_COUNT_HW_INSTRUCTIONS, "instructions");
  // Closest portable analogues of the discriminating events. Modern kernels
  // expose LL/L1D cache events generically; HITM-precision needs raw PEBS
  // events and per-platform retraining, as the paper prescribes.
  add(E::kL2RequestsLdMiss, PERF_TYPE_HW_CACHE,
      cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                   PERF_COUNT_HW_CACHE_RESULT_MISS),
      "LL-read-misses");
  add(E::kL1dCacheReplacements, PERF_TYPE_HW_CACHE,
      cache_config(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                   PERF_COUNT_HW_CACHE_RESULT_MISS),
      "L1D-read-misses");
  add(E::kDtlbMisses, PERF_TYPE_HW_CACHE,
      cache_config(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
                   PERF_COUNT_HW_CACHE_RESULT_MISS),
      "dTLB-read-misses");
  add(E::kOffcoreDemandRdData, PERF_TYPE_HARDWARE,
      PERF_COUNT_HW_CACHE_MISSES, "cache-misses");
  add(E::kL2TransactionsFill, PERF_TYPE_HARDWARE,
      PERF_COUNT_HW_CACHE_REFERENCES, "cache-references");
  return specs;
}

std::vector<PerfEventSpec> westmere_event_specs() {
  std::vector<PerfEventSpec> specs;
  for (const EventInfo& info : westmere_event_table()) {
    const std::uint64_t raw =
        static_cast<std::uint64_t>(info.event_code) |
        (static_cast<std::uint64_t>(info.umask) << 8);
    specs.push_back(PerfEventSpec{info.id, PERF_TYPE_RAW, raw,
                                  std::string(info.name)});
  }
  return specs;
}

PerfCounterGroup::PerfCounterGroup(std::vector<PerfEventSpec> specs) {
  ok_ = true;
  for (PerfEventSpec& spec : specs) {
    const int fd = open_counter(spec.type, spec.config);
    if (fd < 0) {
      failures_.push_back(spec.label + ": " + open_error(errno));
      ok_ = false;
      continue;
    }
    counters_.push_back(OpenCounter{std::move(spec), fd});
  }
}

PerfCounterGroup::~PerfCounterGroup() {
  for (OpenCounter& c : counters_)
    if (c.fd >= 0) close(c.fd);
}

void PerfCounterGroup::start() {
  if (!ok_) {
    // Environment problem (container, paranoid kernel), not a programming
    // error: report what failed and how to fix it instead of aborting.
    std::ostringstream os;
    os << "perf backend unavailable:";
    for (const std::string& f : failures_) os << "\n  " << f;
    throw std::runtime_error(os.str());
  }
  FSML_CHECK_MSG(!running_, "group already running");
  for (OpenCounter& c : counters_) {
    ioctl(c.fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(c.fd, PERF_EVENT_IOC_ENABLE, 0);
  }
  running_ = true;
}

CounterSnapshot PerfCounterGroup::stop() {
  FSML_CHECK_MSG(running_, "group is not running");
  running_ = false;
  CounterSnapshot snapshot;
  for (OpenCounter& c : counters_) {
    ioctl(c.fd, PERF_EVENT_IOC_DISABLE, 0);
    struct {
      std::uint64_t value;
      std::uint64_t time_enabled;
      std::uint64_t time_running;
    } data{};
    if (!read_counter(c.fd, &data, sizeof(data))) continue;
    std::uint64_t value = data.value;
    // Compensate kernel multiplexing.
    if (data.time_running > 0 && data.time_running < data.time_enabled) {
      const double scale = static_cast<double>(data.time_enabled) /
                           static_cast<double>(data.time_running);
      value = static_cast<std::uint64_t>(static_cast<double>(value) * scale);
    }
    snapshot.set(c.spec.id, snapshot.get(c.spec.id) + value);
  }
  return snapshot;
}

bool PerfCounterGroup::measure(const std::vector<PerfEventSpec>& specs,
                               const std::function<void()>& work,
                               CounterSnapshot* out) {
  FSML_CHECK(out != nullptr);
  PerfCounterGroup group(specs);
  if (!group.ok()) return false;
  group.start();
  work();
  *out = group.stop();
  return true;
}

#else  // !FSML_HAVE_PERF

bool perf_available() { return false; }
std::vector<PerfEventSpec> generic_event_specs() { return {}; }
std::vector<PerfEventSpec> westmere_event_specs() { return {}; }

PerfCounterGroup::PerfCounterGroup(std::vector<PerfEventSpec>) {
  failures_.push_back("perf_event is not available on this platform");
}
PerfCounterGroup::~PerfCounterGroup() = default;
void PerfCounterGroup::start() {
  throw std::runtime_error(
      "perf backend unavailable: perf_event is not available on this "
      "platform");
}
CounterSnapshot PerfCounterGroup::stop() { return {}; }
bool PerfCounterGroup::measure(const std::vector<PerfEventSpec>&,
                               const std::function<void()>&,
                               CounterSnapshot*) {
  return false;
}

#endif  // FSML_HAVE_PERF

}  // namespace fsml::pmu
