#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "util/check.hpp"

namespace fsml::serve {

namespace {

core::RobustVerdict unknown_verdict(std::size_t repeats) {
  core::RobustVerdict v;
  v.known = false;
  v.repeats = repeats;
  return v;
}

std::string batch_key(std::uint64_t session, std::uint64_t sequence) {
  return std::to_string(session) + ":" + std::to_string(sequence);
}

ServeConfig validated(ServeConfig config) {
  config.validate();
  return config;
}

}  // namespace

void ServeConfig::validate() const {
  if (queue_depth < 1 || queue_depth > (1u << 20))
    throw std::runtime_error(
        "ServeConfig: queue_depth must be 1..1048576 batches, got " +
        std::to_string(queue_depth));
  if (max_sessions < 1 || max_sessions > (1u << 24))
    throw std::runtime_error(
        "ServeConfig: max_sessions must be 1..16777216, got " +
        std::to_string(max_sessions));
  if (max_batches < 1 || max_batches > 1001)
    throw std::runtime_error(
        "ServeConfig: max_batches must be 1..1001 (the vote policy's repeat "
        "ceiling), got " +
        std::to_string(max_batches));
  if (max_retry_after < 1 || max_retry_after > 1000)
    throw std::runtime_error(
        "ServeConfig: max_retry_after must be 1..1000, got " +
        std::to_string(max_retry_after));
  if (!(shed_watermark > 0.0) || shed_watermark > 1.0 ||
      !(abstain_watermark > 0.0) || abstain_watermark > 1.0 ||
      abstain_watermark < shed_watermark)
    throw std::runtime_error(
        "ServeConfig: need 0 < shed_watermark <= abstain_watermark <= 1");
  if (classify_attempts < 1 || classify_attempts > 10)
    throw std::runtime_error(
        "ServeConfig: classify_attempts must be 1..10, got " +
        std::to_string(classify_attempts));
  if (classify_deadline.count() < 0)
    throw std::runtime_error("ServeConfig: classify_deadline must be >= 0");
  robust.validate();
  breaker.validate();
}

std::string_view to_string(ServerState state) {
  switch (state) {
    case ServerState::kHealthy: return "healthy";
    case ServerState::kShedding: return "shedding";
    case ServerState::kAbstainOnly: return "abstain-only";
    case ServerState::kDraining: return "draining";
  }
  return "healthy";
}

std::string HealthSnapshot::to_string() const {
  std::string s = "state=" + std::string(serve::to_string(state));
  s += " open=" + std::to_string(open_sessions);
  s += " queue=" + std::to_string(queue_size) + "/" +
       std::to_string(queue_capacity);
  s += " admitted=" + std::to_string(admitted);
  s += " verdicts=" +
       std::to_string(verdicts_good + verdicts_bad_fs + verdicts_bad_ma);
  s += " abstained=" + std::to_string(abstained);
  s += " shed=" + std::to_string(shed);
  s += " quarantined=" + std::to_string(quarantined);
  s += " expired=" + std::to_string(expired);
  s += " cancelled=" + std::to_string(cancelled);
  s += " retry-after=" + std::to_string(retry_afters);
  s += " classify-faults=" + std::to_string(classify_faults);
  s += std::string(" breaker=") + (breaker_open ? "open" : "closed");
  char classify[96];
  std::snprintf(classify, sizeof classify,
                " classify=%s/p50=%.1fus/p99=%.1fus/calls=%llu",
                use_flat_tree ? "flat" : "pointer", classify_p50_us,
                classify_p99_us,
                static_cast<unsigned long long>(classify_calls));
  s += classify;
  return s;
}

Server::Server(const core::FalseSharingDetector& detector,
               par::ThreadPool& pool, ServeConfig config,
               const fault::FaultInjector* injector)
    : detector_(detector),
      pool_(pool),
      config_(validated(std::move(config))),
      injector_(injector),
      ring_(config_.queue_depth),
      breaker_([&] {
        BreakerConfig b = config_.breaker;
        b.seed = config_.seed ^ 0x0b7ea4e5ULL;
        return b;
      }()) {
  FSML_CHECK_MSG(detector_.trained(),
                 "serve::Server needs a trained detector");
  par::SupervisorConfig super;
  super.max_attempts = config_.classify_attempts;
  super.deadline = config_.classify_deadline;
  super.backoff_base = std::chrono::milliseconds(0);
  super.backoff_cap = std::chrono::milliseconds(0);
  super.backoff_seed = config_.seed;
  classify_super_ = std::make_unique<par::Supervisor>(pool_, super);
}

ServerState Server::state_locked() const {
  if (draining_) return ServerState::kDraining;
  if (breaker_.open()) return ServerState::kAbstainOnly;
  const double occupancy = static_cast<double>(ring_.size()) /
                           static_cast<double>(ring_.capacity());
  if (occupancy >= config_.abstain_watermark) return ServerState::kAbstainOnly;
  if (occupancy >= config_.shed_watermark) return ServerState::kShedding;
  return ServerState::kHealthy;
}

std::uint64_t Server::retry_hint_locked() const {
  // Enough virtual time for the queue to visibly move: an eighth of the
  // session deadline, floor 1 step.
  return std::max<std::uint64_t>(1, config_.deadline_steps / 8);
}

AdmitResult Server::open_session(std::uint64_t id, std::uint64_t step) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) return {Admission::kClosed, 0};
  if (sessions_.count(id) != 0) return {Admission::kDuplicate, 0};
  if (sessions_.size() >= config_.max_sessions) {
    ++stats_.retry_afters;
    return {Admission::kRetryAfter, retry_hint_locked()};
  }
  const ServerState state = state_locked();
  SessionInfo info;
  info.opened_step = step;
  info.last_step = step;
  info.degraded = state != ServerState::kHealthy;
  sessions_.emplace(id, std::move(info));
  ++stats_.admitted;
  if (state != ServerState::kHealthy) {
    ++stats_.degraded_admissions;
    return {Admission::kDegraded, 0};
  }
  return {Admission::kAdmitted, 0};
}

SubmitResult Server::submit(std::uint64_t id, const SampleBatch& batch,
                            std::uint64_t step) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return {Submit::kUnknownSession, 0, ""};
  SessionInfo& info = it->second;
  info.last_step = std::max(info.last_step, step);

  // Strict validation first: a malformed stream quarantines its session
  // even while shedding — garbage must never linger as an open session.
  ValidatedBatch validated = validate_batch(batch);
  if (validated.status == BatchStatus::kMalformed) {
    SubmitResult result{Submit::kQuarantined, 0, validated.detail};
    finalize_locked(id, info, Outcome::kQuarantined,
                    unknown_verdict(info.measurements.size()),
                    std::move(validated.detail), step, pending_records_);
    return result;
  }

  // Degraded, closed, or cancelled sessions absorb batches without
  // queueing: their terminal record is already determined, and the queue
  // capacity belongs to sessions that can still earn a verdict.
  if (info.degraded || info.closed || info.token.cancelled() || draining_)
    return {Submit::kAccepted, 0, ""};

  if (validated.status == BatchStatus::kUnusable) {
    // Honest-but-unclassifiable measurement: an empty vote, not an error.
    if (info.measurements.size() < config_.max_batches) {
      info.measurements.emplace_back(std::nullopt);
      ++info.submitted;
    }
    return {Submit::kUnusable, 0, ""};
  }

  if (info.submitted >= config_.max_batches)
    return {Submit::kAccepted, 0, ""};  // vote is full; extra batches absorb

  const std::uint64_t sequence = info.submitted;
  const bool forced_overflow =
      injector_ != nullptr &&
      injector_->should_overflow("serve.enqueue", batch_key(id, sequence),
                                 static_cast<int>(info.rejections) + 1);
  bool pushed = false;
  if (!forced_overflow)
    pushed = ring_.try_push({id, sequence, std::move(validated.features)});
  if (!pushed) {
    ++stats_.retry_afters;
    if (++info.rejections > config_.max_retry_after) {
      // Persistent overflow: shed this session to an explicit abstention
      // rather than let it retry forever against a saturated queue.
      info.degraded = true;
    }
    return {Submit::kRetryAfter, retry_hint_locked(), ""};
  }
  info.rejections = 0;
  ++info.queued;
  ++info.submitted;
  ++stats_.batches_accepted;
  return {Submit::kAccepted, 0, ""};
}

void Server::close_session(std::uint64_t id, std::uint64_t step) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  it->second.closed = true;
  it->second.last_step = std::max(it->second.last_step, step);
}

void Server::cancel_session(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  if (it != sessions_.end()) it->second.token.cancel();
}

void Server::finalize_locked(std::uint64_t id, SessionInfo& info,
                             Outcome outcome, core::RobustVerdict verdict,
                             std::string detail, std::uint64_t step,
                             std::vector<SessionRecord>& out) {
  SessionRecord record;
  record.id = id;
  record.outcome = outcome;
  record.verdict = verdict;
  record.detail = std::move(detail);
  record.opened_step = info.opened_step;
  record.final_step = step;
  out.push_back(std::move(record));

  switch (outcome) {
    case Outcome::kVerdict:
      switch (verdict.mode) {
        case trainers::Mode::kGood: ++stats_.verdicts_good; break;
        case trainers::Mode::kBadFs: ++stats_.verdicts_bad_fs; break;
        case trainers::Mode::kBadMa: ++stats_.verdicts_bad_ma; break;
      }
      break;
    case Outcome::kAbstained: ++stats_.abstained; break;
    case Outcome::kShed: ++stats_.shed; break;
    case Outcome::kQuarantined: ++stats_.quarantined; break;
    case Outcome::kExpired: ++stats_.expired; break;
    case Outcome::kCancelled: ++stats_.cancelled; break;
  }
  sessions_.erase(id);
}

core::RobustVerdict Server::classify_session(const SessionInfo& info) const {
  if (info.measurements.empty()) return unknown_verdict(0);
  core::RobustConfig vote = config_.robust;
  vote.repeats = static_cast<int>(info.measurements.size());
  return detector_.classify_robust(
      [&info](std::size_t r) { return info.measurements[r]; }, vote);
}

std::vector<SessionRecord> Server::tick(std::uint64_t step,
                                        std::size_t service_rate) {
  std::lock_guard<std::mutex> lock(mutex_);
  return tick_locked(step, service_rate);
}

std::vector<SessionRecord> Server::tick_locked(std::uint64_t step,
                                               std::size_t service_rate) {
  std::vector<SessionRecord> records = std::move(pending_records_);
  pending_records_.clear();

  // Service phase: drain up to service_rate batches from the ring; an
  // injected stall consumes extra service budget, modelling a laggy
  // dequeue without reordering the FIFO.
  std::int64_t budget = static_cast<std::int64_t>(service_rate);
  while (budget > 0) {
    std::optional<QueuedBatch> item = ring_.try_pop();
    if (!item) break;
    std::int64_t cost = 1;
    if (injector_ != nullptr)
      cost += static_cast<std::int64_t>(injector_->stall_for(
          "serve.dequeue", batch_key(item->session, item->sequence), 1));
    budget -= cost;
    ++stats_.batches_processed;
    const auto it = sessions_.find(item->session);
    if (it == sessions_.end()) continue;  // quarantined/cancelled meanwhile
    SessionInfo& info = it->second;
    if (info.queued > 0) --info.queued;
    if (info.measurements.size() < config_.max_batches)
      info.measurements.emplace_back(std::move(item->features));
  }

  // Expiry phase, in ascending id order: cancellations, deadlines, idle
  // timeouts. Each produces an explicit record — never a silent drop.
  std::vector<std::uint64_t> expired_ids;
  std::vector<std::string> expired_reasons;
  std::vector<Outcome> expired_outcomes;
  for (const auto& [id, info] : sessions_) {
    if (info.token.cancelled()) {
      expired_ids.push_back(id);
      expired_reasons.emplace_back("cancelled mid-flight");
      expired_outcomes.push_back(Outcome::kCancelled);
    } else if (config_.deadline_steps > 0 &&
               step >= info.opened_step + config_.deadline_steps) {
      expired_ids.push_back(id);
      expired_reasons.emplace_back(
          "deadline: no verdict within " +
          std::to_string(config_.deadline_steps) + " steps");
      expired_outcomes.push_back(Outcome::kExpired);
    } else if (config_.idle_timeout_steps > 0 && !info.closed &&
               step >= info.last_step + config_.idle_timeout_steps) {
      expired_ids.push_back(id);
      expired_reasons.emplace_back(
          "idle: no client activity for " +
          std::to_string(config_.idle_timeout_steps) + " steps");
      expired_outcomes.push_back(Outcome::kExpired);
    }
  }
  for (std::size_t k = 0; k < expired_ids.size(); ++k) {
    SessionInfo& info = sessions_.at(expired_ids[k]);
    finalize_locked(expired_ids[k], info, expired_outcomes[k],
                    unknown_verdict(info.measurements.size()),
                    std::move(expired_reasons[k]), step, records);
  }

  // Ready phase: sessions whose client closed and whose queued batches are
  // all processed. Degraded (shed) sessions finalize to an explicit
  // abstention; the rest classify on the pool under supervision.
  std::vector<std::uint64_t> ready;
  for (const auto& [id, info] : sessions_)
    if (info.closed && info.queued == 0) ready.push_back(id);
  std::vector<std::uint64_t> to_classify;
  for (const std::uint64_t id : ready) {
    SessionInfo& info = sessions_.at(id);
    if (info.degraded) {
      finalize_locked(id, info, Outcome::kShed,
                      unknown_verdict(info.measurements.size()),
                      "load shed: degraded admission or persistent overflow",
                      step, records);
    } else {
      to_classify.push_back(id);
    }
  }

  if (!to_classify.empty()) {
    const bool was_open = breaker_.open();
    if (was_open && !breaker_.allow(step)) {
      // Abstain-only: the breaker is open and its backoff has not elapsed.
      for (const std::uint64_t id : to_classify) {
        SessionInfo& info = sessions_.at(id);
        finalize_locked(id, info, Outcome::kShed,
                        unknown_verdict(info.measurements.size()),
                        "abstain-only: circuit breaker open", step, records);
      }
    } else {
      // Half-open: classify only the first ready session as the probe;
      // the rest stay queued for the next tick (or abstain if it fails).
      std::vector<std::uint64_t> batch_ids = to_classify;
      if (was_open) batch_ids.resize(1);

      // Per-call wall time for the HealthSnapshot percentiles. Workers
      // write disjoint slots; run() joins before they are read.
      std::vector<std::uint64_t> call_ns(batch_ids.size(), 0);
      const auto supervised = classify_super_->run(
          batch_ids.size(),
          [this, &batch_ids, &call_ns](std::size_t k, par::CancelToken&,
                                       int attempt) {
            const std::uint64_t id = batch_ids[k];
            if (injector_ != nullptr)
              injector_->maybe_throw("serve.classify", std::to_string(id),
                                     attempt);
            const auto t0 = std::chrono::steady_clock::now();
            core::RobustVerdict verdict = classify_session(sessions_.at(id));
            call_ns[k] = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            return verdict;
          });
      for (const std::uint64_t ns : call_ns)
        if (ns > 0) classify_ns_.push_back(ns);

      std::size_t failure_at = 0;
      for (std::size_t k = 0; k < batch_ids.size(); ++k) {
        SessionInfo& info = sessions_.at(batch_ids[k]);
        if (supervised.results[k].has_value()) {
          breaker_.on_success();
          const core::RobustVerdict& verdict = *supervised.results[k];
          if (verdict.known)
            finalize_locked(batch_ids[k], info, Outcome::kVerdict, verdict,
                            verdict.to_string(), step, records);
          else
            finalize_locked(batch_ids[k], info, Outcome::kAbstained, verdict,
                            verdict.to_string(), step, records);
        } else {
          const par::JobFailure& failure = supervised.failures[failure_at++];
          stats_.classify_faults +=
              static_cast<std::uint64_t>(failure.attempts);
          breaker_.on_failure(step);
          finalize_locked(batch_ids[k], info, Outcome::kAbstained,
                          unknown_verdict(info.measurements.size()),
                          "classify faulted: " + failure.error, step,
                          records);
        }
      }
      stats_.breaker_trips = breaker_.trips();
    }
  }

  return records;
}

std::vector<SessionRecord> Server::drain(std::uint64_t step,
                                         std::size_t service_rate) {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
  for (auto& [id, info] : sessions_) {
    (void)id;
    info.closed = true;
  }
  std::vector<SessionRecord> records;
  const std::size_t rate = std::max<std::size_t>(service_rate, 1);
  // Drain completeness: every queued batch is processed and every session
  // finalized. The breaker backoff bounds the wait; the deadline is the
  // hard backstop, so this terminates.
  std::uint64_t guard = 0;
  while (!sessions_.empty() || ring_.size() > 0) {
    auto produced = tick_locked(step, rate);
    records.insert(records.end(),
                   std::make_move_iterator(produced.begin()),
                   std::make_move_iterator(produced.end()));
    ++step;
    FSML_CHECK_MSG(++guard < 1000000,
                   "serve::Server::drain failed to converge");
  }
  ring_.close();
  return records;
}

ServerState Server::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_locked();
}

HealthSnapshot Server::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HealthSnapshot out = stats_;
  out.state = state_locked();
  out.open_sessions = sessions_.size();
  out.queue_size = ring_.size();
  out.queue_capacity = ring_.capacity();
  out.breaker_trips = breaker_.trips();
  out.breaker_open = breaker_.open();
  out.use_flat_tree = config_.robust.use_flat_tree;
  out.classify_calls = classify_ns_.size();
  if (!classify_ns_.empty()) {
    std::vector<std::uint64_t> sorted = classify_ns_;
    std::sort(sorted.begin(), sorted.end());
    const auto at = [&sorted](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(sorted.size() - 1) + 0.5);
      return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]) /
             1000.0;
    };
    out.classify_p50_us = at(0.50);
    out.classify_p99_us = at(0.99);
  }
  return out;
}

}  // namespace fsml::serve
