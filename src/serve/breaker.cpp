#include "serve/breaker.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace fsml::serve {

void BreakerConfig::validate() const {
  if (trip_after < 1 || trip_after > 1000)
    throw std::runtime_error("BreakerConfig: trip_after must be 1..1000");
  if (backoff_base_steps < 1 || backoff_cap_steps < backoff_base_steps)
    throw std::runtime_error(
        "BreakerConfig: need 1 <= backoff_base_steps <= backoff_cap_steps");
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {
  config_.validate();
}

std::uint64_t CircuitBreaker::backoff_steps() const {
  // Decorrelated jitter in virtual steps, seeded by (seed, trip count) —
  // the same sleep policy par::Supervisor applies between retry attempts.
  double ceiling = static_cast<double>(config_.backoff_base_steps);
  for (int k = 1; k < trips_; ++k)
    ceiling = std::min(ceiling * 3.0,
                       static_cast<double>(config_.backoff_cap_steps));
  util::SplitMix64 mix(config_.seed ^
                       (static_cast<std::uint64_t>(trips_) << 24));
  const double u = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
  const double base = static_cast<double>(config_.backoff_base_steps);
  return static_cast<std::uint64_t>(base +
                                    u * std::max(0.0, ceiling - base));
}

bool CircuitBreaker::allow(std::uint64_t step) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kHalfOpen:
      return true;  // the probe is already owed
    case State::kOpen:
      if (step < reopen_step_) return false;
      state_ = State::kHalfOpen;
      return true;
  }
  return false;
}

void CircuitBreaker::on_success() {
  state_ = State::kClosed;
  consecutive_faults_ = 0;
}

void CircuitBreaker::on_failure(std::uint64_t step) {
  ++consecutive_faults_;
  if (state_ == State::kHalfOpen || consecutive_faults_ >= config_.trip_after) {
    ++trips_;
    state_ = State::kOpen;
    reopen_step_ = step + backoff_steps();
    consecutive_faults_ = 0;
  }
}

std::string CircuitBreaker::describe() const {
  switch (state_) {
    case State::kClosed:
      return "closed";
    case State::kHalfOpen:
      return "half-open";
    case State::kOpen:
      return "open (re-probe at step " + std::to_string(reopen_step_) + ")";
  }
  return "closed";
}

}  // namespace fsml::serve
