#include "serve/drill.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <ostream>
#include <stdexcept>

#include "pmu/events.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace fsml::serve {

namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

double u01(util::SplitMix64& mix) {
  return static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
}

/// What one drill client intends to do, drawn up-front from the seed.
struct ClientPlan {
  std::size_t template_index = 0;
  std::size_t batches = 1;
  std::uint64_t arrival_step = 0;
  bool malformed = false;
  std::size_t malformed_at = 0;
  int malformed_variant = 0;
  bool cancel = false;
};

struct ClientState {
  std::size_t open_tries = 0;
  std::size_t submit_tries = 0;
};

enum class Kind : std::uint8_t { kOpen, kSubmit, kClose, kCancel };

struct ClientEvent {
  std::uint64_t session = 0;
  Kind kind = Kind::kOpen;
  std::size_t batch = 0;
};

/// Renders one degraded measurement as the wire-format sample batch a
/// client would send: present events only, in Table-2 order.
SampleBatch to_batch(const pmu::DegradedSnapshot& snapshot) {
  SampleBatch batch;
  for (const pmu::EventInfo& info : pmu::westmere_event_table()) {
    const auto slot = static_cast<std::size_t>(info.id);
    if (!snapshot.present[slot]) continue;
    batch.push_back({std::string(info.name),
                     static_cast<double>(snapshot.counts.get(info.id))});
  }
  return batch;
}

/// The four ways a drill client lies: unknown event, NaN count, negative
/// count, duplicate event. Each must quarantine, never crash or misverdict.
void corrupt_batch(SampleBatch& batch, int variant) {
  switch (variant & 3) {
    case 0:
      batch.push_back({"Bogus_Event.NOT_IN_TABLE_2", 1.0});
      break;
    case 1:
      if (batch.empty()) batch.push_back({"Instructions_Retired", 0.0});
      batch.front().count = std::numeric_limits<double>::quiet_NaN();
      break;
    case 2:
      if (batch.empty()) batch.push_back({"Instructions_Retired", 0.0});
      batch.front().count = -7.0;
      break;
    default:
      if (batch.empty()) batch.push_back({"Instructions_Retired", 1.0});
      batch.push_back(batch.front());
      break;
  }
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

void DrillConfig::validate() const {
  if (sessions < 1 || sessions > 100000)
    throw std::runtime_error("DrillConfig: sessions must be 1..100000, got " +
                             std::to_string(sessions));
  if (max_batches_per_session < 1 ||
      max_batches_per_session > server.max_batches)
    throw std::runtime_error(
        "DrillConfig: max_batches_per_session must be 1..server.max_batches");
  if (arrival_spread_steps < 1)
    throw std::runtime_error(
        "DrillConfig: arrival_spread_steps must be >= 1");
  if (service_rate < 1 || service_rate > 100000)
    throw std::runtime_error(
        "DrillConfig: service_rate must be 1..100000, got " +
        std::to_string(service_rate));
  if (!(malformed_rate >= 0.0) || malformed_rate > 1.0 ||
      !(cancel_rate >= 0.0) || cancel_rate > 1.0)
    throw std::runtime_error(
        "DrillConfig: malformed_rate and cancel_rate must be in [0, 1]");
  if (open_retries > 1000 || submit_retries > 1000)
    throw std::runtime_error(
        "DrillConfig: open_retries and submit_retries must be <= 1000");
  server.validate();
  noise.validate();
}

std::vector<core::EvalRun> drill_templates(std::uint64_t seed,
                                           std::size_t jobs,
                                           std::ostream* log) {
  core::RobustnessConfig config;
  config.reduced = true;
  config.seed = seed;
  config.jobs = jobs;
  return core::simulate_evaluation_runs(config, log);
}

DrillReport run_drill(const core::FalseSharingDetector& detector,
                      const std::vector<core::EvalRun>& templates,
                      const DrillConfig& config, std::ostream* log) {
  config.validate();
  FSML_CHECK_MSG(!templates.empty(), "run_drill needs template runs");
  const auto start = std::chrono::steady_clock::now();

  const std::size_t jobs_n =
      config.jobs > 0 ? config.jobs : par::ThreadPool::hardware_workers();
  par::ThreadPool pool(jobs_n - 1);
  fault::FaultInjector injector(config.faults);
  Server server(detector, pool, config.server, &injector);

  pmu::NoiseConfig noise = config.noise;
  noise.seed = config.noise.seed ^ (config.seed * kGolden);
  const pmu::MeasurementModel model(noise);

  // Draw every client's plan up-front: pure function of the seed.
  std::vector<ClientPlan> plans(config.sessions);
  for (std::size_t i = 0; i < config.sessions; ++i) {
    util::SplitMix64 mix(config.seed ^ (0xd1211ULL + i * kGolden));
    ClientPlan& plan = plans[i];
    plan.template_index =
        static_cast<std::size_t>(mix.next() % templates.size());
    plan.batches = 1 + static_cast<std::size_t>(
                           mix.next() % config.max_batches_per_session);
    plan.arrival_step =
        (static_cast<std::uint64_t>(i) * config.arrival_spread_steps) /
        config.sessions;
    // Every third client arrives in a thundering herd on a burst boundary.
    if (config.burst_every > 0 && i % 3 == 0)
      plan.arrival_step -= plan.arrival_step % config.burst_every;
    plan.malformed = u01(mix) < config.malformed_rate;
    plan.malformed_at = static_cast<std::size_t>(mix.next() % plan.batches);
    plan.malformed_variant = static_cast<int>(mix.next() % 4);
    plan.cancel = u01(mix) < config.cancel_rate;
  }

  auto make_batch = [&](std::size_t i, std::size_t j) {
    const core::EvalRun& run = templates[plans[i].template_index];
    const pmu::DegradedSnapshot snapshot =
        model.measure(run.result.aggregate, run.result.slices,
                      static_cast<std::uint64_t>(i) * 1024 + j);
    SampleBatch batch = to_batch(snapshot);
    if (plans[i].malformed && plans[i].malformed_at == j)
      corrupt_batch(batch, plans[i].malformed_variant);
    return batch;
  };

  // Slow-client chaos: an injected stall widens this client's next gap.
  auto client_gap = [&](std::size_t i, std::size_t j) -> std::uint64_t {
    return 1 + injector.stall_for(
                   "serve.client",
                   std::to_string(i) + ":" + std::to_string(j), 1);
  };

  // The event loop: single-threaded and virtual-step driven, so the whole
  // storm is one deterministic call sequence into the server.
  std::map<std::uint64_t, std::vector<ClientEvent>> schedule;
  for (std::size_t i = 0; i < config.sessions; ++i) {
    schedule[plans[i].arrival_step].push_back(
        {static_cast<std::uint64_t>(i), Kind::kOpen, 0});
    if (plans[i].cancel)
      schedule[plans[i].arrival_step + config.cancel_step].push_back(
          {static_cast<std::uint64_t>(i), Kind::kCancel, 0});
  }

  std::vector<ClientState> clients(config.sessions);
  DrillReport report;
  report.sessions = config.sessions;

  std::uint64_t step = 0;
  std::uint64_t guard = 0;
  while (!schedule.empty()) {
    FSML_CHECK_MSG(++guard < 10000000, "drill event loop failed to converge");
    const auto due = schedule.find(step);
    if (due != schedule.end()) {
      // Index loop: handlers may append same-step events (gap 0 is never
      // scheduled, but retry hints of 0 would land here).
      std::vector<ClientEvent>& events = due->second;
      for (std::size_t e = 0; e < events.size(); ++e) {
        const ClientEvent event = events[e];
        const std::uint64_t id = event.session;
        ClientState& client = clients[static_cast<std::size_t>(id)];
        switch (event.kind) {
          case Kind::kOpen: {
            const AdmitResult r = server.open_session(id, step);
            if (r.admission == Admission::kAdmitted ||
                r.admission == Admission::kDegraded) {
              schedule[step + client_gap(id, 0)].push_back(
                  {id, Kind::kSubmit, 0});
            } else if (r.admission == Admission::kRetryAfter &&
                       client.open_tries < config.open_retries) {
              ++client.open_tries;
              schedule[step + std::max<std::uint64_t>(
                                  1, r.retry_after_steps)]
                  .push_back({id, Kind::kOpen, 0});
            } else {
              ++report.turned_away;  // client gives up; never admitted
            }
            break;
          }
          case Kind::kSubmit: {
            const SubmitResult r = server.submit(id, make_batch(id, event.batch),
                                                 step);
            if (r.status == Submit::kAccepted ||
                r.status == Submit::kUnusable) {
              client.submit_tries = 0;
              if (event.batch + 1 < plans[id].batches)
                schedule[step + client_gap(id, event.batch + 1)].push_back(
                    {id, Kind::kSubmit, event.batch + 1});
              else
                schedule[step + 1].push_back({id, Kind::kClose, 0});
            } else if (r.status == Submit::kRetryAfter &&
                       client.submit_tries < config.submit_retries) {
              ++client.submit_tries;
              schedule[step + std::max<std::uint64_t>(
                                  1, r.retry_after_steps)]
                  .push_back({id, Kind::kSubmit, event.batch});
            } else if (r.status == Submit::kRetryAfter) {
              // Out of patience: close with whatever vote accumulated.
              schedule[step + 1].push_back({id, Kind::kClose, 0});
            }
            // kQuarantined / kUnknownSession: terminal — nothing to send.
            break;
          }
          case Kind::kClose:
            server.close_session(id, step);
            break;
          case Kind::kCancel:
            server.cancel_session(id);
            break;
        }
      }
      schedule.erase(due);
    }
    std::vector<SessionRecord> produced =
        server.tick(step, config.service_rate);
    report.records.insert(report.records.end(),
                          std::make_move_iterator(produced.begin()),
                          std::make_move_iterator(produced.end()));
    ++step;
  }
  std::vector<SessionRecord> drained = server.drain(step, config.service_rate);
  report.records.insert(report.records.end(),
                        std::make_move_iterator(drained.begin()),
                        std::make_move_iterator(drained.end()));
  report.steps = step;

  // Score against ground truth and the conservation contract.
  report.health = server.snapshot();
  report.admitted = report.health.admitted;
  const std::uint64_t terminal =
      static_cast<std::uint64_t>(report.records.size());
  report.lost_sessions =
      report.admitted > terminal ? report.admitted - terminal : 0;

  std::vector<std::uint64_t> latencies;
  latencies.reserve(report.records.size());
  std::vector<std::string> lines;
  lines.reserve(report.records.size());
  for (const SessionRecord& record : report.records) {
    latencies.push_back(record.latency_steps());
    lines.push_back(record.to_string());
    const trainers::Mode label =
        templates[plans[static_cast<std::size_t>(record.id)].template_index]
            .label;
    switch (record.outcome) {
      case Outcome::kVerdict:
        ++report.verdicts;
        if (record.verdict.mode == label) ++report.correct;
        if (label == trainers::Mode::kGood &&
            record.verdict.mode != trainers::Mode::kGood)
          ++report.false_positives;
        break;
      case Outcome::kAbstained: ++report.abstained; break;
      case Outcome::kShed: ++report.shed; break;
      case Outcome::kQuarantined: ++report.quarantined; break;
      case Outcome::kExpired: ++report.expired; break;
      case Outcome::kCancelled: ++report.cancelled; break;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  report.latency_p50_steps = percentile(latencies, 0.50);
  report.latency_p99_steps = percentile(latencies, 0.99);
  report.shed_rate =
      report.admitted == 0
          ? 0.0
          : static_cast<double>(report.shed + report.expired) /
                static_cast<double>(report.admitted);

  // Fingerprint: order-insensitive over the terminal records, so it is
  // comparable across any schedule that conserves the same verdict set.
  std::sort(lines.begin(), lines.end());
  util::Crc32 crc;
  for (const std::string& line : lines) {
    crc.update(line.data(), line.size());
    crc.update("\n", 1);
  }
  report.fingerprint = crc.value();

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  report.wall_seconds = elapsed.count();
  report.sessions_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(terminal) / report.wall_seconds
          : 0.0;

  if (log)
    *log << "drill: " << report.summary() << "\n";
  return report;
}

std::string DrillReport::summary() const {
  std::string s = std::to_string(records.size()) + " records (" +
                  std::to_string(verdicts) + " verdicts, " +
                  std::to_string(abstained) + " abstained, " +
                  std::to_string(shed) + " shed, " +
                  std::to_string(quarantined) + " quarantined, " +
                  std::to_string(expired) + " expired, " +
                  std::to_string(cancelled) + " cancelled)";
  s += ", fp=" + std::to_string(false_positives);
  s += ", lost=" + std::to_string(lost_sessions);
  s += ", p99=" + std::to_string(latency_p99_steps) + " steps";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%08x", fingerprint);
  s += ", fingerprint=";
  s += buf;
  return s;
}

void DrillReport::write_json(std::ostream& os, const std::string& name,
                             const DrillConfig& config,
                             const std::string& extra) const {
  char hex[16];
  std::snprintf(hex, sizeof(hex), "%08x", fingerprint);
  os << "    {\n";
  os << "      \"scenario\": \"" << name << "\",\n";
  os << "      \"seed\": " << config.seed << ",\n";
  os << "      \"sessions\": " << sessions << ",\n";
  os << "      \"admitted\": " << admitted << ",\n";
  os << "      \"turned_away\": " << turned_away << ",\n";
  os << "      \"lost_sessions\": " << lost_sessions << ",\n";
  os << "      \"verdicts\": " << verdicts << ",\n";
  os << "      \"correct\": " << correct << ",\n";
  os << "      \"false_positives\": " << false_positives << ",\n";
  os << "      \"abstained\": " << abstained << ",\n";
  os << "      \"shed\": " << shed << ",\n";
  os << "      \"quarantined\": " << quarantined << ",\n";
  os << "      \"expired\": " << expired << ",\n";
  os << "      \"cancelled\": " << cancelled << ",\n";
  os << "      \"steps\": " << steps << ",\n";
  os << "      \"latency_p50_steps\": " << latency_p50_steps << ",\n";
  os << "      \"latency_p99_steps\": " << latency_p99_steps << ",\n";
  os << "      \"shed_rate\": " << shed_rate << ",\n";
  os << "      \"retry_afters\": " << health.retry_afters << ",\n";
  os << "      \"classify_faults\": " << health.classify_faults << ",\n";
  os << "      \"breaker_trips\": " << health.breaker_trips << ",\n";
  os << "      \"fingerprint\": \"" << hex << "\",\n";
  os << "      \"use_flat_tree\": "
     << (health.use_flat_tree ? "true" : "false") << ",\n";
  os << "      \"classify_calls\": " << health.classify_calls << ",\n";
  os << "      \"classify_p50_us\": " << health.classify_p50_us << ",\n";
  os << "      \"classify_p99_us\": " << health.classify_p99_us << ",\n";
  os << "      \"wall_seconds\": " << wall_seconds << ",\n";
  os << "      \"sessions_per_second\": " << sessions_per_second;
  if (!extra.empty()) os << ",\n      " << extra;
  os << "\n    }";
}

}  // namespace fsml::serve
