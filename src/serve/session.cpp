#include "serve/session.hpp"

#include <array>
#include <cmath>

#include "pmu/events.hpp"
#include "pmu/noise.hpp"

namespace fsml::serve {

namespace {

/// Table-2 event lookup by wire name; nullopt for unknown events.
std::optional<pmu::WestmereEvent> event_by_name(std::string_view name) {
  for (const pmu::EventInfo& info : pmu::westmere_event_table())
    if (info.name == name) return info.id;
  return std::nullopt;
}

ValidatedBatch reject(BatchStatus status, std::string detail) {
  ValidatedBatch out;
  out.status = status;
  out.detail = std::move(detail);
  return out;
}

}  // namespace

ValidatedBatch validate_batch(const SampleBatch& batch) {
  if (batch.empty())
    return reject(BatchStatus::kUnusable, "empty batch");

  // Full-width Westmere counters are 48 bits; anything beyond is not a
  // count this PMU could have produced.
  constexpr double kMaxCount = 0x1p48;

  pmu::DegradedSnapshot snapshot;
  std::array<bool, pmu::kNumWestmereEvents> seen{};
  for (const Sample& sample : batch) {
    const auto event = event_by_name(sample.event);
    if (!event)
      return reject(BatchStatus::kMalformed,
                    "unknown event '" + sample.event + "'");
    const auto slot = static_cast<std::size_t>(*event);
    if (seen[slot])
      return reject(BatchStatus::kMalformed,
                    "duplicate event '" + sample.event + "'");
    seen[slot] = true;
    if (!std::isfinite(sample.count))
      return reject(BatchStatus::kMalformed,
                    "non-finite count for '" + sample.event + "'");
    if (sample.count < 0.0)
      return reject(BatchStatus::kMalformed,
                    "negative count for '" + sample.event + "'");
    if (sample.count > kMaxCount)
      return reject(BatchStatus::kMalformed,
                    "count overflows 48-bit counter for '" + sample.event +
                        "'");
    snapshot.counts.set(*event,
                        static_cast<std::uint64_t>(std::llround(sample.count)));
    snapshot.present[slot] = true;
  }

  if (!snapshot.usable())
    return reject(BatchStatus::kUnusable,
                  "normalizer missing (Instructions_Retired absent or zero)");

  ValidatedBatch out;
  out.status = BatchStatus::kOk;
  out.features = snapshot.to_features();
  return out;
}

std::string_view to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kVerdict: return "verdict";
    case Outcome::kAbstained: return "abstained";
    case Outcome::kShed: return "shed";
    case Outcome::kQuarantined: return "quarantined";
    case Outcome::kExpired: return "expired";
    case Outcome::kCancelled: return "cancelled";
  }
  return "abstained";
}

std::string SessionRecord::to_string() const {
  std::string s =
      std::to_string(id) + ":" + std::string(serve::to_string(outcome));
  if (outcome == Outcome::kVerdict)
    s += ":" + std::string(trainers::to_string(verdict.mode)) + ":" +
         std::to_string(verdict.votes[0]) + "/" +
         std::to_string(verdict.votes[1]) + "/" +
         std::to_string(verdict.votes[2]);
  else
    s += ":unknown";
  return s;
}

}  // namespace fsml::serve
