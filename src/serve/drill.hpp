// Deterministic chaos drills for serve::Server.
//
// A drill is a *seeded* storm: a single-threaded virtual-step event loop
// plays a population of client sessions against one Server — bursty
// arrivals, slow clients, malformed streams, injected dequeue stalls,
// queue overflows, classify throws, and mid-drill cancellations, all drawn
// from (DrillConfig::seed, FaultPlan). Because the Server's decisions are
// pure functions of (config, fault plan, call sequence) and its classify
// fan-out is order-preserving, the drill's full verdict set is bit-exactly
// reproducible for any --jobs value; bench/serve_drill asserts that by
// comparing CRC-32 fingerprints of the sorted terminal records.
//
// Session payloads are honest: each session samples one ground-truth
// labelled evaluation run (core::simulate_evaluation_runs) and streams
// per-batch measurements of it through pmu::MeasurementModel, so the drill
// also scores correctness — in particular the zero-false-positive bar,
// which must survive every storm: no session whose ground truth is `good`
// may ever receive a known bad verdict, no matter what the drill throws at
// the server.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/robustness.hpp"
#include "fault/fault.hpp"
#include "pmu/noise.hpp"
#include "serve/server.hpp"

namespace fsml::serve {

struct DrillConfig {
  /// Client population.
  std::size_t sessions = 48;
  /// Batches per session are drawn uniformly from 1..max_batches_per_session.
  std::size_t max_batches_per_session = 5;
  /// Session arrivals spread over this many virtual steps...
  std::uint64_t arrival_spread_steps = 64;
  /// ...except every third session, which snaps down to the nearest
  /// burst boundary (0 disables bursts).
  std::uint64_t burst_every = 8;
  /// Batches the server processes per tick.
  std::size_t service_rate = 4;
  /// Probability a session's stream contains one malformed batch.
  double malformed_rate = 0.0;
  /// Probability a session is cancelled mid-flight; the cancel lands
  /// `cancel_step` virtual steps after the session's arrival.
  double cancel_rate = 0.0;
  std::uint64_t cancel_step = 4;
  /// Client patience: give-up thresholds for retry-after on open/submit.
  std::size_t open_retries = 3;
  std::size_t submit_retries = 8;

  std::uint64_t seed = 42;
  std::size_t jobs = 0;  ///< host threads; 0 = hardware concurrency

  ServeConfig server;
  fault::FaultPlan faults;    ///< chaos sites (stalls/overflow/throws)
  pmu::NoiseConfig noise;     ///< per-batch measurement degradation

  /// Throws std::runtime_error on out-of-range values.
  void validate() const;
};

/// Everything a drill produces: the terminal records, their fingerprint,
/// and the robustness scorecard the bench asserts on.
struct DrillReport {
  std::vector<SessionRecord> records;  ///< final-step / id order, as produced
  HealthSnapshot health;               ///< server snapshot after drain

  std::size_t sessions = 0;      ///< clients the drill played
  std::uint64_t admitted = 0;    ///< sessions the server admitted
  std::uint64_t turned_away = 0; ///< clients that gave up on retry-after
  /// Conservation: admitted sessions without a terminal record. The drill
  /// contract is that this is always zero.
  std::uint64_t lost_sessions = 0;

  std::uint64_t verdicts = 0;
  std::uint64_t correct = 0;  ///< verdicts matching ground truth
  /// Good-labelled sessions with a known bad verdict. Must be zero.
  std::uint64_t false_positives = 0;
  std::uint64_t abstained = 0;
  std::uint64_t shed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;

  std::uint64_t steps = 0;  ///< virtual steps the drill ran (incl. drain)
  std::uint64_t latency_p50_steps = 0;
  std::uint64_t latency_p99_steps = 0;
  double shed_rate = 0.0;  ///< (shed + expired) / admitted

  /// CRC-32 over the sorted terminal-record lines — the determinism
  /// fingerprint compared across --jobs values.
  std::uint32_t fingerprint = 0;

  double wall_seconds = 0.0;
  double sessions_per_second = 0.0;

  std::string summary() const;

  /// One JSON object (no schema header — the bench wraps scenarios into a
  /// "fsml-bench-serve-v2" document). `extra` is raw JSON members (no
  /// braces, no trailing comma) spliced in before the closing brace — the
  /// bench uses it for classify-throughput rows.
  void write_json(std::ostream& os, const std::string& name,
                  const DrillConfig& config,
                  const std::string& extra = std::string()) const;
};

/// Simulates the ground-truth template runs a drill samples payloads from.
/// Thin wrapper over core::simulate_evaluation_runs (reduced set) so
/// benches can share one template set across scenarios.
std::vector<core::EvalRun> drill_templates(std::uint64_t seed,
                                           std::size_t jobs,
                                           std::ostream* log = nullptr);

/// Runs one seeded drill. The detector must be trained; `templates` must be
/// non-empty. Bit-identical records for any `config.jobs`.
DrillReport run_drill(const core::FalseSharingDetector& detector,
                      const std::vector<core::EvalRun>& templates,
                      const DrillConfig& config, std::ostream* log = nullptr);

}  // namespace fsml::serve
