// serve::Server — an overload-safe streaming detection service.
//
// Sessions of counter-sample batches are admitted, validated, queued
// through a bounded ring onto the fsml::par pool, and classified with the
// existing two-stage detector. Robustness is the load-bearing design: the
// server's one invariant is that *every admitted session receives exactly
// one terminal record*, and that under any combination of overload, stalls,
// garbage streams, and classify faults that record is a correct verdict or
// an explicit `unknown` abstention — never a guess. Concretely:
//
//  * admission control + backpressure — the ring never grows: a full queue
//    rejects the batch with a retry-after hint; a session rejected too
//    often is shed to an explicit abstention instead of queueing forever;
//  * load shedding — queue occupancy drives a degraded-mode state machine
//    (healthy → shedding → abstain-only → draining): shedding degrades
//    *new* sessions to abstention while protecting admitted work,
//    abstain-only stops queueing entirely, draining finishes what is in
//    flight and admits nothing;
//  * deadlines — per-session deadline and idle timeouts measured in the
//    caller's virtual steps, plus a per-session CancelToken (the PR 3
//    machinery) for mid-flight cancellation;
//  * validation — strict per-batch schema checks (serve/session.hpp):
//    malformed streams quarantine their session, never the server;
//  * fault containment — classification runs under a par::Supervisor
//    (bounded retries, optional watchdog deadline); repeated classify
//    faults trip a CircuitBreaker whose decorrelated-jitter re-probe
//    schedule degrades the server to abstain-only while open.
//
// Time is virtual: every entry point takes a monotonically non-decreasing
// `step` chosen by the caller (a drill's event loop, or wall milliseconds
// in production). All shedding/deadline/breaker decisions are pure
// functions of (config, fault plan, call sequence), never of host
// scheduling — which is what lets bench/serve_drill assert bit-identical
// verdict sets across --jobs values.
//
// Thread safety: all public methods are mutex-guarded; submit() may be
// called from many client threads while another thread ticks. Determinism
// across --jobs is guaranteed for a fixed *call sequence* (the drill is
// single-threaded by design); concurrent callers get linearized, conserved
// sessions instead.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "fault/fault.hpp"
#include "par/supervisor.hpp"
#include "par/thread_pool.hpp"
#include "serve/breaker.hpp"
#include "serve/ring.hpp"
#include "serve/session.hpp"

namespace fsml::serve {

struct ServeConfig {
  /// Bounded ring capacity, in batches. The queue never grows past this.
  std::size_t queue_depth = 256;
  /// Concurrently open sessions; further opens get retry-after.
  std::size_t max_sessions = 1024;
  /// Batches one session may contribute to its vote.
  std::size_t max_batches = 32;
  /// Virtual steps from admission to forced finalization (0 = no deadline).
  std::uint64_t deadline_steps = 96;
  /// Virtual steps without client activity before an open session expires
  /// (0 = no idle timeout).
  std::uint64_t idle_timeout_steps = 24;
  /// Full-queue rejections one session tolerates before it is shed.
  std::size_t max_retry_after = 3;
  /// Queue occupancy fractions entering shedding / abstain-only.
  double shed_watermark = 0.75;
  double abstain_watermark = 0.95;
  /// Classification attempts per session (par::Supervisor retries).
  int classify_attempts = 2;
  /// Optional wall-clock watchdog per classify attempt (0 = off).
  std::chrono::milliseconds classify_deadline{0};
  /// Vote policy across a session's usable batches.
  core::RobustConfig robust;
  BreakerConfig breaker;
  std::uint64_t seed = 42;

  /// Throws std::runtime_error with an actionable message on out-of-range
  /// values.
  void validate() const;
};

/// Degraded-mode state machine, in degradation order.
enum class ServerState : std::uint8_t {
  kHealthy,
  kShedding,
  kAbstainOnly,
  kDraining,
};

std::string_view to_string(ServerState state);

/// Admission decision for open_session().
enum class Admission : std::uint8_t {
  kAdmitted,    ///< session open, batches welcome
  kDegraded,    ///< admitted, but already destined for a shed abstention
  kRetryAfter,  ///< at capacity — retry after `retry_after_steps`
  kDuplicate,   ///< id already open
  kClosed,      ///< server is draining / shut down
};

struct AdmitResult {
  Admission admission = Admission::kClosed;
  std::uint64_t retry_after_steps = 0;  ///< meaningful for kRetryAfter
};

/// Outcome of submit().
enum class Submit : std::uint8_t {
  kAccepted,        ///< queued (or absorbed, for degraded sessions)
  kUnusable,        ///< honest-but-unclassifiable batch absorbed as a
                    ///< no-vote measurement
  kRetryAfter,      ///< queue full — retry after `retry_after_steps`
  kQuarantined,     ///< malformed batch; session terminally quarantined
  kUnknownSession,  ///< no such open session
};

struct SubmitResult {
  Submit status = Submit::kUnknownSession;
  std::uint64_t retry_after_steps = 0;
  std::string detail;  ///< validation failure reason, when quarantined
};

/// Monitoring snapshot; all counters are cumulative since construction.
struct HealthSnapshot {
  ServerState state = ServerState::kHealthy;
  std::size_t open_sessions = 0;
  std::size_t queue_size = 0;
  std::size_t queue_capacity = 0;
  std::uint64_t admitted = 0;
  std::uint64_t degraded_admissions = 0;
  std::uint64_t retry_afters = 0;  ///< session opens + batch submits deferred
  std::uint64_t verdicts_good = 0;
  std::uint64_t verdicts_bad_fs = 0;
  std::uint64_t verdicts_bad_ma = 0;
  std::uint64_t abstained = 0;
  std::uint64_t shed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t batches_accepted = 0;
  std::uint64_t batches_processed = 0;
  std::uint64_t classify_faults = 0;
  int breaker_trips = 0;
  bool breaker_open = false;

  /// Where classify time goes: wall-clock percentiles over every
  /// supervised classify_session call (µs), and which engine ran them —
  /// the compiled ml::FlatTree batch kernel or the pointer-tree reference
  /// (ServeConfig::robust.use_flat_tree). Wall times never influence
  /// verdicts, so they do not break the bit-identity contract.
  std::uint64_t classify_calls = 0;
  double classify_p50_us = 0.0;
  double classify_p99_us = 0.0;
  bool use_flat_tree = true;

  std::uint64_t terminal_records() const {
    return verdicts_good + verdicts_bad_fs + verdicts_bad_ma + abstained +
           shed + quarantined + expired + cancelled;
  }

  std::string to_string() const;
};

class Server {
 public:
  /// The detector must outlive the server and be trained. `injector` (may
  /// be null) supplies the chaos sites: "serve.enqueue" overflow,
  /// "serve.dequeue" stalls, "serve.classify" throws.
  Server(const core::FalseSharingDetector& detector, par::ThreadPool& pool,
         ServeConfig config, const fault::FaultInjector* injector = nullptr);

  const ServeConfig& config() const { return config_; }

  /// Opens a session at virtual time `step`.
  AdmitResult open_session(std::uint64_t id, std::uint64_t step);

  /// Submits one sample batch for an open session.
  SubmitResult submit(std::uint64_t id, const SampleBatch& batch,
                      std::uint64_t step);

  /// Marks the session complete; it finalizes once its queued batches have
  /// been processed. Unknown or already-terminal ids are ignored.
  void close_session(std::uint64_t id, std::uint64_t step);

  /// Requests mid-flight cancellation; the session finalizes with an
  /// explicit kCancelled record on the next tick.
  void cancel_session(std::uint64_t id);

  /// Advances virtual time: processes up to `service_rate` queued batches
  /// (injected stalls consume extra service budget), expires deadlines and
  /// idle sessions, classifies ready sessions on the pool, and returns the
  /// terminal records produced — in ascending session-id order per
  /// finalization class, deterministically.
  std::vector<SessionRecord> tick(std::uint64_t step,
                                  std::size_t service_rate);

  /// Enters kDraining, closes every open session, and ticks until all
  /// queued work is processed and every session has its terminal record.
  /// No admitted session is ever silently dropped.
  std::vector<SessionRecord> drain(std::uint64_t step,
                                   std::size_t service_rate);

  ServerState state() const;
  HealthSnapshot snapshot() const;

 private:
  struct SessionInfo {
    std::uint64_t opened_step = 0;
    std::uint64_t last_step = 0;
    /// Processed measurements; nullopt = honest-but-unusable batch.
    std::vector<std::optional<pmu::FeatureVector>> measurements;
    std::size_t queued = 0;      ///< batches accepted, not yet processed
    std::size_t submitted = 0;   ///< batches accepted overall
    std::size_t rejections = 0;  ///< consecutive full-queue rejections
    bool closed = false;
    bool degraded = false;  ///< admitted under shedding/abstain-only
    /// Mid-flight cancellation signal (cancel_session flips it).
    par::CancelToken token;
  };

  struct QueuedBatch {
    std::uint64_t session = 0;
    std::uint64_t sequence = 0;  ///< per-session batch index, for fault keys
    pmu::FeatureVector features;
  };

  ServerState state_locked() const;
  std::uint64_t retry_hint_locked() const;
  void finalize_locked(std::uint64_t id, SessionInfo& info, Outcome outcome,
                       core::RobustVerdict verdict, std::string detail,
                       std::uint64_t step,
                       std::vector<SessionRecord>& out);
  core::RobustVerdict classify_session(const SessionInfo& info) const;
  std::vector<SessionRecord> tick_locked(std::uint64_t step,
                                         std::size_t service_rate);

  const core::FalseSharingDetector& detector_;
  par::ThreadPool& pool_;
  ServeConfig config_;
  const fault::FaultInjector* injector_;

  mutable std::mutex mutex_;
  BoundedRing<QueuedBatch> ring_;
  std::map<std::uint64_t, SessionInfo> sessions_;
  CircuitBreaker breaker_;
  std::unique_ptr<par::Supervisor> classify_super_;
  bool draining_ = false;
  HealthSnapshot stats_;
  /// Wall-clock nanoseconds of every classify_session call, for the
  /// HealthSnapshot percentiles (guarded by mutex_; workers write disjoint
  /// per-call slots that are appended after the supervised run joins).
  std::vector<std::uint64_t> classify_ns_;
  /// Records produced outside tick (submit-time quarantines); the next
  /// tick() drains them first, keeping record order deterministic.
  std::vector<SessionRecord> pending_records_;
};

}  // namespace fsml::serve
