// CircuitBreaker: fault containment for the classify stage.
//
// Repeated classification faults (injected throws in drills, genuine bugs
// or resource exhaustion in production) must not let the service burn its
// whole budget re-failing: after `trip_after` consecutive faults the
// breaker opens and the server degrades to abstain-only verdicts. After a
// backoff the breaker half-opens and admits a single probe; a successful
// probe closes it, a failed probe re-opens it with a longer backoff.
//
// The backoff reuses par::Supervisor's decorrelated-jitter policy —
// uniform(base, min(cap, base * 3^trips)) — but measured in the server's
// *virtual steps*, and drawn deterministically from (seed, trip count), so
// a drill's breaker trajectory is a pure function of the fault schedule.
#pragma once

#include <cstdint>
#include <string>

namespace fsml::serve {

struct BreakerConfig {
  /// Consecutive classify faults that open the breaker.
  int trip_after = 3;
  /// Decorrelated-jitter re-probe backoff, in virtual steps: trip k waits
  /// uniform(base, min(cap, base * 3^(k-1))) steps before half-opening.
  std::uint64_t backoff_base_steps = 4;
  std::uint64_t backoff_cap_steps = 64;
  std::uint64_t seed = 42;

  /// Throws std::runtime_error on out-of-range values.
  void validate() const;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerConfig config = {});

  const BreakerConfig& config() const { return config_; }
  State state() const { return state_; }
  bool open() const { return state_ != State::kClosed; }
  int trips() const { return trips_; }

  /// True when a classification may be attempted at `step`: always while
  /// closed; while open, only once the backoff elapsed (which transitions
  /// to half-open — the caller then owes exactly one probe outcome).
  bool allow(std::uint64_t step);

  /// Reports one classification outcome at `step`. A success closes the
  /// breaker; a failure increments the consecutive-fault count and, at
  /// trip_after (or any half-open failure), opens it with the next backoff.
  void on_success();
  void on_failure(std::uint64_t step);

  /// "closed", "open (re-probe at step 42)", "half-open".
  std::string describe() const;

 private:
  std::uint64_t backoff_steps() const;

  BreakerConfig config_;
  State state_ = State::kClosed;
  int consecutive_faults_ = 0;
  int trips_ = 0;
  std::uint64_t reopen_step_ = 0;
};

}  // namespace fsml::serve
