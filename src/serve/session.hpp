// Session-level types of the detection service: inbound sample batches,
// strict validation, and terminal outcome records.
//
// A client session streams *sample batches* — one (event name → count) map
// per measurement, the same abstraction boundary fsml::pmu exposes — and
// eventually receives exactly one terminal SessionRecord. Following Röhl et
// al.'s hardware-event-validation stance, every inbound batch is treated as
// potentially malformed or partial:
//
//  * malformed (unknown event, duplicate event, negative / non-finite
//    count) → the whole session is quarantined: a stream that lies once is
//    not a measurement source, and a quarantined session can never turn
//    into a wrong verdict;
//  * partial (events missing — counter multiplexing; normalizer lost —
//    dropped Instructions_Retired) → a legitimately degraded measurement:
//    missing events become NaN feature slots for the C4.5 fractional-
//    instance machinery, an unusable batch contributes an empty vote, and
//    the session can still end in an honest verdict or abstention.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/detector.hpp"
#include "pmu/counters.hpp"

namespace fsml::serve {

/// One (event → count) sample as it arrives off the wire. Counts are
/// doubles because perf-style interfaces report multiplex-scaled values.
struct Sample {
  std::string event;
  double count = 0.0;
};

/// One measurement: a batch of samples read "simultaneously".
using SampleBatch = std::vector<Sample>;

/// Validation outcome of one batch.
enum class BatchStatus : std::uint8_t {
  kOk,         ///< usable measurement (possibly with missing events)
  kUnusable,   ///< honest but unclassifiable (e.g. normalizer missing)
  kMalformed,  ///< garbage — quarantines the session
};

struct ValidatedBatch {
  BatchStatus status = BatchStatus::kMalformed;
  std::string detail;  ///< human-readable reason for kUnusable/kMalformed
  /// Normalized features with NaN in missing slots; meaningful only for
  /// kOk.
  pmu::FeatureVector features;
};

/// Validates one inbound batch against the Table-2 event schema. Never
/// throws on bad input — a malformed stream is a verdict about the client,
/// not an error in the server.
ValidatedBatch validate_batch(const SampleBatch& batch);

/// How a session ended. Everything except kVerdict is an explicit
/// abstention: the service would rather say "unknown" than guess, so the
/// zero-false-positive contract survives overload, garbage, and faults.
enum class Outcome : std::uint8_t {
  kVerdict,      ///< classified: verdict.known == true
  kAbstained,    ///< votes too scattered / nothing usable / classify faulted
  kShed,         ///< degraded by load-shedding or abstain-only mode
  kQuarantined,  ///< malformed stream
  kExpired,      ///< per-session deadline or idle timeout
  kCancelled,    ///< cancelled mid-flight (client or operator)
};

std::string_view to_string(Outcome outcome);

/// The single terminal record every admitted session receives.
struct SessionRecord {
  std::uint64_t id = 0;
  Outcome outcome = Outcome::kAbstained;
  core::RobustVerdict verdict;  ///< known only for kVerdict
  std::string detail;
  std::uint64_t opened_step = 0;
  std::uint64_t final_step = 0;

  /// Virtual-step latency from admission to the terminal record.
  std::uint64_t latency_steps() const { return final_step - opened_step; }

  /// Stable one-line form, used for fingerprinting verdict sets.
  std::string to_string() const;
};

}  // namespace fsml::serve
