// BoundedRing: the admission boundary of the detection service.
//
// A fixed-capacity MPMC ring buffer with *reject-on-full* semantics:
// try_push() never blocks and never grows the queue — a full ring is the
// caller's signal to apply backpressure (retry-after) or shed load, which
// is the serve layer's overload contract. Consumers drain FIFO; close()
// stops admission while letting consumers drain everything already
// accepted, so shutdown never silently drops in-flight work.
//
// Following the fsml::par design rules, this is a mutex+cv ring, not a
// lock-free one: every queued item is a whole counter-sample batch whose
// downstream cost (validation + classification) dwarfs queue overhead, and
// the locked form makes the FIFO/drain guarantees trivially auditable.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace fsml::serve {

template <class T>
class BoundedRing {
 public:
  explicit BoundedRing(std::size_t capacity) : buffer_(capacity) {
    FSML_CHECK_MSG(capacity > 0, "BoundedRing capacity must be positive");
  }

  /// Accepts `item` unless the ring is full or closed. Never blocks; a
  /// false return is the backpressure signal.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || size_ == buffer_.size()) return false;
      buffer_[(head_ + size_) % buffer_.size()] = std::move(item);
      ++size_;
    }
    cv_.notify_one();
    return true;
  }

  /// Pops the oldest item, or nullopt when the ring is empty.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    return pop_locked();
  }

  /// Blocks until an item is available or the ring is closed *and* fully
  /// drained (nullopt). Every item accepted before close() is delivered.
  std::optional<T> pop_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return size_ > 0 || closed_; });
    return pop_locked();
  }

  /// Stops admission. Consumers drain the remaining items; pop_wait() then
  /// returns nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  std::size_t capacity() const { return buffer_.size(); }

 private:
  std::optional<T> pop_locked() {
    if (size_ == 0) return std::nullopt;
    std::optional<T> out(std::move(buffer_[head_]));
    head_ = (head_ + 1) % buffer_.size();
    --size_;
    return out;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<T> buffer_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace fsml::serve
