// The three "vector" multi-threaded mini-programs (paper §2.2.1): psumv,
// pdot, count. Each thread processes a contiguous share of vector data.
// All three support the bad-ma mode via strided/random element traversal
// (the paper's Figure-1 Method 3).
#include "trainers/trainer.hpp"

namespace fsml::trainers {
namespace detail {
namespace {

/// Elements are 8 bytes throughout the vector suite.
constexpr std::uint64_t kElem = 8;

struct Share {
  std::uint64_t begin;
  std::uint64_t count;
};

Share share_of(std::uint64_t n, std::uint32_t threads, std::uint32_t t) {
  const std::uint64_t base = n / threads;
  const std::uint64_t extra = n % threads;
  const std::uint64_t begin = t * base + std::min<std::uint64_t>(t, extra);
  return {begin, base + (t < extra ? 1 : 0)};
}

/// psumv: per-element accumulate into the thread's partial-sum slot with a
/// store *every iteration* (the slot write stream is what false sharing
/// contends on; in good mode the padded slot write is an L1 hit).
class Psumv final : public MiniProgram {
 public:
  std::string_view name() const override { return "psumv"; }
  std::string_view description() const override {
    return "vector partial sums, per-iteration accumulator store";
  }
  bool multithreaded() const override { return true; }
  bool supports_bad_ma() const override { return true; }
  std::vector<std::uint64_t> default_sizes() const override {
    return {16384, 32768, 65536, 131072};
  }

  void build(exec::Machine& m, const TrainerParams& p) const override {
    const std::uint64_t n = p.size ? p.size : default_sizes()[0];
    const sim::Addr v = m.arena().alloc_page_aligned(n * kElem);
    const auto slots =
        make_slots(m.arena(), p.threads, /*padded=*/p.mode != Mode::kBadFs);
    for (std::uint32_t t = 0; t < p.threads; ++t) {
      const Share s = share_of(n, p.threads, t);
      const sim::Addr slot = slots[t];
      const bool bad_ma = p.mode == Mode::kBadMa;
      const Traversal walk(bad_ma ? p.pattern : AccessPattern::kLinear,
                           s.count, p.stride, p.seed + t);
      m.spawn([v, slot, s, walk](exec::ThreadCtx& ctx) -> exec::SimTask {
        ctx.compute(ctx.rng().next_below(32));
        for (std::uint64_t i = 0; i < s.count; ++i) {
          const std::uint64_t idx = s.begin + walk.index(i);
          co_await ctx.load(v + idx * kElem);
          ctx.compute(1);
          co_await ctx.rmw(slot);  // psum[myid] += v[i]
        }
      });
    }
  }
};

/// pdot: the paper's Figure-1 dot product.
///  - good  (Method 1): register accumulator, one final store
///  - bad-fs (Method 2): psum[myid] += ... every iteration, packed slots
///  - bad-ma (Method 3): register accumulator but strided/random element
///    access
class Pdot final : public MiniProgram {
 public:
  std::string_view name() const override { return "pdot"; }
  std::string_view description() const override {
    return "parallel dot product (Figure 1, Methods 1/2/3)";
  }
  bool multithreaded() const override { return true; }
  bool supports_bad_ma() const override { return true; }
  std::vector<std::uint64_t> default_sizes() const override {
    return {16384, 32768, 65536, 131072};
  }

  void build(exec::Machine& m, const TrainerParams& p) const override {
    const std::uint64_t n = p.size ? p.size : default_sizes()[0];
    const sim::Addr v1 = m.arena().alloc_page_aligned(n * kElem);
    const sim::Addr v2 = m.arena().alloc_page_aligned(n * kElem);
    const auto slots =
        make_slots(m.arena(), p.threads, /*padded=*/p.mode != Mode::kBadFs);
    for (std::uint32_t t = 0; t < p.threads; ++t) {
      const Share s = share_of(n, p.threads, t);
      const sim::Addr slot = slots[t];
      const bool fs = p.mode == Mode::kBadFs;
      const bool bad_ma = p.mode == Mode::kBadMa;
      const Traversal walk(bad_ma ? p.pattern : AccessPattern::kLinear,
                           s.count, p.stride, p.seed + t);
      m.spawn([v1, v2, slot, s, walk, fs](
                  exec::ThreadCtx& ctx) -> exec::SimTask {
        ctx.compute(ctx.rng().next_below(32));
        for (std::uint64_t i = 0; i < s.count; ++i) {
          const std::uint64_t idx = s.begin + walk.index(i);
          co_await ctx.load(v1 + idx * kElem);
          co_await ctx.load(v2 + idx * kElem);
          ctx.compute(2);  // multiply + add
          if (fs) co_await ctx.rmw(slot);  // Method 2: psum[myid] += ...
        }
        co_await ctx.store(slot);  // Method 1/3: single final store
      });
    }
  }
};

/// count: each thread counts "matching" elements in its share; the counter
/// is only written on a match, and the match period *grows with the problem
/// size* (size/2048 iterations between writes). This stretches the training
/// data's bad-fs write density down to ~2 contended writes per thousand
/// instructions, which is what teaches the tree a HITM threshold low enough
/// to catch sparse real-world false sharing (streamcluster-style) instead
/// of only accumulator hammering.
class Count final : public MiniProgram {
 public:
  std::string_view name() const override { return "count"; }
  std::string_view description() const override {
    return "conditional per-thread counting (sparse counter writes)";
  }
  bool multithreaded() const override { return true; }
  bool supports_bad_ma() const override { return true; }
  std::vector<std::uint64_t> default_sizes() const override {
    return {16384, 32768, 65536, 131072};
  }

  void build(exec::Machine& m, const TrainerParams& p) const override {
    const std::uint64_t n = p.size ? p.size : default_sizes()[0];
    const sim::Addr v = m.arena().alloc_page_aligned(n * kElem);
    const auto slots =
        make_slots(m.arena(), p.threads, /*padded=*/p.mode != Mode::kBadFs);
    for (std::uint32_t t = 0; t < p.threads; ++t) {
      const Share s = share_of(n, p.threads, t);
      const sim::Addr slot = slots[t];
      const bool bad_ma = p.mode == Mode::kBadMa;
      const Traversal walk(bad_ma ? p.pattern : AccessPattern::kLinear,
                           s.count, p.stride, p.seed + t);
      const std::uint64_t period = std::max<std::uint64_t>(4, n / 2048);
      m.spawn([v, slot, s, walk, period](
                  exec::ThreadCtx& ctx) -> exec::SimTask {
        ctx.compute(ctx.rng().next_below(32));
        for (std::uint64_t i = 0; i < s.count; ++i) {
          const std::uint64_t idx = s.begin + walk.index(i);
          co_await ctx.load(v + idx * kElem);
          ctx.compute(4);  // predicate evaluation
          // Deterministic pseudo-predicate with a ~1/period hit rate.
          if (((idx * 2654435761ULL) >> 17) % period == 0)
            co_await ctx.rmw(slot);
        }
      });
    }
  }
};

}  // namespace

std::vector<const MiniProgram*> vector_programs() {
  static const Psumv psumv;
  static const Pdot pdot;
  static const Count count;
  return {&psumv, &pdot, &count};
}

}  // namespace detail
}  // namespace fsml::trainers
