// The sequential mini-program set (paper §2.2.2): single-threaded programs
// whose good vs bad-ma performance differs only by element traversal order.
// They enrich the training data on the bad-ma side (the paper reports this
// measurably improved classification accuracy).
#include "trainers/trainer.hpp"

namespace fsml::trainers {
namespace detail {
namespace {

constexpr std::uint64_t kElem = 8;
constexpr int kPasses = 2;  // a warm pass amortizes cold-miss noise

class SeqArrayProgram : public MiniProgram {
 public:
  bool multithreaded() const override { return false; }
  bool supports_bad_ma() const override { return true; }
  std::vector<std::uint64_t> default_sizes() const override {
    return {4096, 8192, 16384, 32768, 65536, 98304, 131072, 196608};
  }

  void build(exec::Machine& m, const TrainerParams& p) const override {
    const std::uint64_t n = p.size ? p.size : default_sizes()[0];
    const sim::Addr v = m.arena().alloc_page_aligned(n * kElem);
    const bool bad_ma = p.mode == Mode::kBadMa;
    const Traversal walk(bad_ma ? p.pattern : AccessPattern::kLinear, n,
                         p.stride, p.seed);
    const auto body = kernel_body();
    m.spawn([v, walk, n, body](exec::ThreadCtx& ctx) -> exec::SimTask {
      for (int pass = 0; pass < kPasses; ++pass) {
        for (std::uint64_t i = 0; i < n; ++i) {
          const sim::Addr addr = v + walk.index(i) * kElem;
          switch (body) {
            case Body::kRead:
              co_await ctx.load(addr);
              ctx.compute(1);
              break;
            case Body::kWrite:
              co_await ctx.store(addr);
              ctx.compute(1);
              break;
            case Body::kRmw:
              co_await ctx.load(addr);
              ctx.compute(1);
              co_await ctx.store(addr);
              break;
          }
        }
      }
    });
  }

 protected:
  enum class Body { kRead, kWrite, kRmw };
  virtual Body kernel_body() const = 0;
};

class SeqRead final : public SeqArrayProgram {
 public:
  std::string_view name() const override { return "seq_read"; }
  std::string_view description() const override {
    return "element-wise array read, linear vs random/strided";
  }

 protected:
  Body kernel_body() const override { return Body::kRead; }
};

class SeqWrite final : public SeqArrayProgram {
 public:
  std::string_view name() const override { return "seq_write"; }
  std::string_view description() const override {
    return "element-wise array write, linear vs random/strided";
  }

 protected:
  Body kernel_body() const override { return Body::kWrite; }
};

class SeqRmw final : public SeqArrayProgram {
 public:
  std::string_view name() const override { return "seq_rmw"; }
  std::string_view description() const override {
    return "element-wise read-modify-write, linear vs random/strided";
  }

 protected:
  Body kernel_body() const override { return Body::kRmw; }
};

/// seq_matmul: two-dimensional panel matrix multiply C[n x n] += A * B
/// (inner depth K = 4) with different memory access patterns and loop
/// structures: row-major cell order streams C (good); a scattered cell
/// order makes the C store stream miss throughout (bad-ma).
class SeqMatmul final : public MiniProgram {
 public:
  static constexpr std::uint64_t kDepth = 4;

  std::string_view name() const override { return "seq_matmul"; }
  std::string_view description() const override {
    return "panel matrix multiply, streaming vs scattered cell order";
  }
  bool multithreaded() const override { return false; }
  bool supports_bad_ma() const override { return true; }
  std::vector<std::uint64_t> default_sizes() const override {
    return {96, 128, 160, 192};
  }

  void build(exec::Machine& m, const TrainerParams& p) const override {
    const std::uint64_t n = p.size ? p.size : default_sizes()[0];
    const sim::Addr a = m.arena().alloc_page_aligned(n * kDepth * kElem);
    const sim::Addr b = m.arena().alloc_page_aligned(kDepth * n * kElem);
    const sim::Addr c = m.arena().alloc_page_aligned(n * n * kElem);
    const bool bad_ma = p.mode == Mode::kBadMa;
    const Traversal walk(bad_ma ? p.pattern : AccessPattern::kLinear, n * n,
                         p.stride, p.seed);
    m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
      for (std::uint64_t step = 0; step < n * n; ++step) {
        const std::uint64_t flat = walk.index(step);
        const std::uint64_t i = flat / n;
        const std::uint64_t j = flat % n;
        for (std::uint64_t k = 0; k < kDepth; ++k) {
          co_await ctx.load(a + (i * kDepth + k) * kElem);
          co_await ctx.load(b + (k * n + j) * kElem);
          ctx.compute(2);
        }
        co_await ctx.store(c + (i * n + j) * kElem);
      }
    });
  }
};

}  // namespace

std::vector<const MiniProgram*> sequential_programs() {
  static const SeqRead seq_read;
  static const SeqWrite seq_write;
  static const SeqRmw seq_rmw;
  static const SeqMatmul seq_matmul;
  return {&seq_read, &seq_write, &seq_rmw, &seq_matmul};
}

}  // namespace detail
}  // namespace fsml::trainers
