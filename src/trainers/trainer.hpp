// Mini-programs for training the classifier (paper Section 2.2).
//
// Two suites:
//  * multi-threaded (psums, padding, false1, psumv, pdot, count, pmatmult,
//    pmatcompare) — each thread repeatedly writes its own variable; false
//    sharing is switched on purely by data layout (packed vs line-aligned
//    per-thread slots). The vector/matrix programs additionally support a
//    "bad-ma" mode with strided/random element access.
//  * sequential (seq_read, seq_write, seq_rmw, seq_matmul) — exercise the
//    memory system alone; good (linear) vs bad-ma (random/strided) modes.
//
// A mini-program is a *builder*: given a Machine and parameters it allocates
// simulated data and spawns kernels. run_trainer() wraps the full
// build-run-snapshot cycle.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "exec/machine.hpp"
#include "pmu/counters.hpp"
#include "sim/machine_config.hpp"

namespace fsml::trainers {

/// The paper's three operation modes (Section 2.1).
enum class Mode : std::uint8_t {
  kGood,   ///< no false sharing, no bad memory access
  kBadFs,  ///< false sharing
  kBadMa,  ///< inefficient memory access
};

std::string_view to_string(Mode mode);
Mode mode_from_string(std::string_view s);

/// Element traversal orders used by bad-ma variants.
enum class AccessPattern : std::uint8_t {
  kLinear,
  kStrided,
  kRandom,
};

std::string_view to_string(AccessPattern p);

struct TrainerParams {
  Mode mode = Mode::kGood;
  std::uint32_t threads = 4;      ///< 1 for the sequential suite
  std::uint64_t size = 0;         ///< program-specific; 0 = program default
  AccessPattern pattern = AccessPattern::kStrided;  ///< used in bad-ma mode
  std::uint64_t stride = 16;      ///< elements, for kStrided
  std::uint64_t seed = 1;
  /// Thread-to-socket pinning on multi-socket machines: packed fills socket
  /// 0 first (default, matches single-socket behavior), scatter round-robins
  /// threads across sockets so per-thread data contends over QPI.
  exec::ThreadPlacement placement = exec::ThreadPlacement::kPacked;
  /// Cooperative cancellation flag wired into Machine::set_cancel_flag()
  /// (per-job deadlines under par::Supervisor). Must outlive the run;
  /// nullptr disables polling.
  const std::atomic<bool>* cancel = nullptr;
  /// Host threads for the epoch-parallel scheduler
  /// (Machine::set_host_threads). 1 = serial; any value produces
  /// bit-identical counters and features.
  std::uint32_t sim_host_threads = 1;
};

class MiniProgram {
 public:
  virtual ~MiniProgram() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  virtual bool multithreaded() const = 0;
  /// Scalar programs have no inefficient-memory-access variant.
  virtual bool supports_bad_ma() const = 0;
  /// Problem sizes used by the training harness for this program.
  virtual std::vector<std::uint64_t> default_sizes() const = 0;
  /// Allocates simulated data and spawns the kernels on `machine`.
  virtual void build(exec::Machine& machine,
                     const TrainerParams& params) const = 0;
};

/// The multi-threaded suite, in paper order.
const std::vector<const MiniProgram*>& multithreaded_set();
/// The sequential suite.
const std::vector<const MiniProgram*>& sequential_set();
/// Both suites concatenated.
std::vector<const MiniProgram*> all_programs();
/// Lookup by name; throws if unknown.
const MiniProgram& find_program(std::string_view name);

/// One complete instrumented run of a mini-program.
struct TrainerRun {
  exec::RunResult result;
  pmu::CounterSnapshot snapshot;
  pmu::FeatureVector features;
  sim::RawCounters raw;  ///< aggregate raw counters (for event selection)
};

/// Builds a machine (one core per thread) on `base_config`, runs the
/// program, and reads the PMU.
TrainerRun run_trainer(const MiniProgram& program, const TrainerParams& params,
                       const sim::MachineConfig& base_config);

// ---- shared kernel-building helpers ---------------------------------------

/// Allocates `n` per-thread 8-byte slots: packed on as few cache lines as
/// possible (false sharing) or one line each (padded).
std::vector<sim::Addr> make_slots(exec::VirtualArena& arena, std::uint32_t n,
                                  bool padded);

/// Bijective traversal of [0, n): maps iteration -> element index for the
/// requested pattern without materializing a permutation. kRandom uses a
/// multiplicative bijection (a large odd multiplier coprime to n), kStrided
/// a stride adjusted to be coprime to n; both visit every index exactly
/// once per pass.
class Traversal {
 public:
  Traversal(AccessPattern pattern, std::uint64_t n, std::uint64_t stride,
            std::uint64_t seed);

  std::uint64_t size() const { return n_; }
  std::uint64_t index(std::uint64_t i) const;

 private:
  std::uint64_t n_;
  std::uint64_t step_;
  std::uint64_t offset_;
};

}  // namespace fsml::trainers
