// The three "scalar" multi-threaded mini-programs (paper §2.2.1): psums,
// padding, false1. Each thread repeatedly writes its own scalar variable;
// false sharing appears when the per-thread variables are packed onto
// shared cache lines. The three differ in what they do, how much memory
// they use and how they access it, which diversifies the training data.
#include "trainers/trainer.hpp"

namespace fsml::trainers {
namespace detail {
namespace {

/// psums: each thread accumulates into its own partial-sum slot with a
/// load-add-store per iteration — the densest possible write stream.
class Psums final : public MiniProgram {
 public:
  std::string_view name() const override { return "psums"; }
  std::string_view description() const override {
    return "per-thread scalar accumulation, load-add-store per iteration";
  }
  bool multithreaded() const override { return true; }
  bool supports_bad_ma() const override { return false; }
  std::vector<std::uint64_t> default_sizes() const override {
    return {24000, 48000, 96000};
  }

  void build(exec::Machine& m, const TrainerParams& p) const override {
    const auto slots =
        make_slots(m.arena(), p.threads, /*padded=*/p.mode != Mode::kBadFs);
    const std::uint64_t total = p.size ? p.size : default_sizes()[0];
    const std::uint64_t iters = total / p.threads;  // each thread's share
    for (std::uint32_t t = 0; t < p.threads; ++t) {
      const sim::Addr slot = slots[t];
      m.spawn([slot, iters](exec::ThreadCtx& ctx) -> exec::SimTask {
        ctx.compute(ctx.rng().next_below(32));  // start skew
        for (std::uint64_t i = 0; i < iters; ++i) {
          co_await ctx.load(slot);
          ctx.compute(1);
          co_await ctx.store(slot);
        }
      });
    }
  }
};

/// padding: each thread updates two fields of its own record; "good" pads
/// each record to a cache line, "bad-fs" packs records of all threads.
/// Write-only stores with more compute in between than psums.
class Padding final : public MiniProgram {
 public:
  std::string_view name() const override { return "padding"; }
  std::string_view description() const override {
    return "two-field per-thread records, padded vs packed layout";
  }
  bool multithreaded() const override { return true; }
  bool supports_bad_ma() const override { return false; }
  std::vector<std::uint64_t> default_sizes() const override {
    return {24000, 48000, 96000};
  }

  void build(exec::Machine& m, const TrainerParams& p) const override {
    // Record = {a, b}, 16 bytes. good: one record per line; bad-fs: records
    // packed back to back (4 threads per line).
    std::vector<sim::Addr> records;
    if (p.mode == Mode::kBadFs) {
      const sim::Addr base = m.arena().alloc_line_aligned(16ULL * p.threads);
      for (std::uint32_t t = 0; t < p.threads; ++t)
        records.push_back(base + 16ULL * t);
    } else {
      for (std::uint32_t t = 0; t < p.threads; ++t)
        records.push_back(m.arena().alloc_line_aligned(16));
    }
    const std::uint64_t total = p.size ? p.size : default_sizes()[0];
    const std::uint64_t iters = total / p.threads;
    for (std::uint32_t t = 0; t < p.threads; ++t) {
      const sim::Addr rec = records[t];
      m.spawn([rec, iters](exec::ThreadCtx& ctx) -> exec::SimTask {
        ctx.compute(ctx.rng().next_below(32));
        for (std::uint64_t i = 0; i < iters; ++i) {
          co_await ctx.store(rec);        // field a
          ctx.compute(3);
          co_await ctx.store(rec + 8);    // field b
          ctx.compute(2);
        }
      });
    }
  }
};

/// false1: the classic demo — per-thread counters packed on one line, each
/// thread hammering read-modify-writes; each thread also walks a small
/// private L1-resident array, and all threads share a read-only
/// configuration line (benign S-state sharing) to keep the signature from
/// being write-only.
class False1 final : public MiniProgram {
 public:
  std::string_view name() const override { return "false1"; }
  std::string_view description() const override {
    return "packed per-thread counters + private scratch + shared read-only line";
  }
  bool multithreaded() const override { return true; }
  bool supports_bad_ma() const override { return false; }
  std::vector<std::uint64_t> default_sizes() const override {
    return {18000, 36000, 72000};
  }

  void build(exec::Machine& m, const TrainerParams& p) const override {
    const auto slots =
        make_slots(m.arena(), p.threads, /*padded=*/p.mode != Mode::kBadFs);
    const sim::Addr shared_ro = m.arena().alloc_line_aligned(64);
    constexpr std::uint64_t kScratchElems = 64;  // 512 B, L1-resident
    std::vector<sim::Addr> scratch;
    for (std::uint32_t t = 0; t < p.threads; ++t)
      scratch.push_back(m.arena().alloc_line_aligned(8 * kScratchElems));

    const std::uint64_t total = p.size ? p.size : default_sizes()[0];
    const std::uint64_t iters = total / p.threads;
    for (std::uint32_t t = 0; t < p.threads; ++t) {
      const sim::Addr slot = slots[t];
      const sim::Addr priv = scratch[t];
      m.spawn([slot, priv, shared_ro, iters](
                  exec::ThreadCtx& ctx) -> exec::SimTask {
        ctx.compute(ctx.rng().next_below(32));
        for (std::uint64_t i = 0; i < iters; ++i) {
          co_await ctx.rmw(slot);
          ctx.compute(4);
          co_await ctx.load(priv + 8 * (i % kScratchElems));
          if (i % 16 == 0) co_await ctx.load(shared_ro);
        }
      });
    }
  }
};

}  // namespace

std::vector<const MiniProgram*> scalar_programs() {
  static const Psums psums;
  static const Padding padding;
  static const False1 false1;
  return {&psums, &padding, &false1};
}

}  // namespace detail
}  // namespace fsml::trainers
