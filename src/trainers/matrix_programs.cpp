// The matrix multi-threaded mini-programs (paper §2.2.1): pmatmult and
// pmatcompare.
#include "trainers/trainer.hpp"

namespace fsml::trainers {
namespace detail {
namespace {

constexpr std::uint64_t kElem = 8;

/// pmatmult: panel matrix multiply C[n x n] += A[n x K] * B[K x n] with a
/// small inner depth K, so C (the large streamed operand) dominates the
/// memory traffic. Each thread computes its share of C cells.
///  - good:   block-of-rows ownership, cells in row-major order — every
///    operand streams; per-cell register accumulation, one store per cell
///  - bad-fs: column-cyclic ownership without accumulator promotion — every
///    k-step read-modify-writes C[i][j], and neighbouring j cells in a row
///    belong to different threads, so C's lines ping-pong between cores
///  - bad-ma: block-of-rows ownership but cells visited in random/strided
///    order — the C store stream scatters over the whole block and misses
class Pmatmult final : public MiniProgram {
 public:
  static constexpr std::uint64_t kDepth = 8;  // panel depth K

  std::string_view name() const override { return "pmatmult"; }
  std::string_view description() const override {
    return "parallel panel matrix multiply; ownership and cell-order variants";
  }
  bool multithreaded() const override { return true; }
  bool supports_bad_ma() const override { return true; }
  std::vector<std::uint64_t> default_sizes() const override {
    return {96, 128, 160};  // matrix dimension n (n^2 * K inner steps)
  }

  void build(exec::Machine& m, const TrainerParams& p) const override {
    const std::uint64_t n = p.size ? p.size : default_sizes()[0];
    const sim::Addr a = m.arena().alloc_page_aligned(n * kDepth * kElem);
    const sim::Addr b = m.arena().alloc_page_aligned(kDepth * n * kElem);
    const sim::Addr c = m.arena().alloc_page_aligned(n * n * kElem);

    for (std::uint32_t t = 0; t < p.threads; ++t) {
      const std::uint32_t threads = p.threads;
      const Mode mode = p.mode;
      const std::uint64_t rows = n / threads;
      const std::uint64_t extra = n % threads;
      const std::uint64_t r0 = t * rows + std::min<std::uint64_t>(t, extra);
      const std::uint64_t r1 = r0 + rows + (t < extra ? 1 : 0);
      const std::uint64_t block = (r1 - r0) * n;
      const Traversal walk(mode == Mode::kBadMa ? p.pattern
                                                : AccessPattern::kLinear,
                           std::max<std::uint64_t>(block, 1), p.stride,
                           p.seed + t);
      m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
        ctx.compute(ctx.rng().next_below(32));
        if (mode == Mode::kBadFs) {
          // Column-cyclic cells, accumulator in memory: K read-modify-writes
          // per cell into lines shared with neighbouring threads.
          for (std::uint64_t i = 0; i < n; ++i) {
            for (std::uint64_t j = t; j < n; j += threads) {
              for (std::uint64_t k = 0; k < kDepth; ++k) {
                co_await ctx.load(a + (i * kDepth + k) * kElem);
                co_await ctx.load(b + (k * n + j) * kElem);
                ctx.compute(2);
                co_await ctx.rmw(c + (i * n + j) * kElem);
              }
            }
          }
          co_return;
        }
        // Row-block ownership; cell order linear (good) or scattered
        // (bad-ma). A and B are small and stay cache-resident; the C store
        // stream is what the traversal order makes cheap or expensive.
        for (std::uint64_t step = 0; step < block; ++step) {
          const std::uint64_t flat = walk.index(step);
          const std::uint64_t i = r0 + flat / n;
          const std::uint64_t j = flat % n;
          for (std::uint64_t k = 0; k < kDepth; ++k) {
            co_await ctx.load(a + (i * kDepth + k) * kElem);
            co_await ctx.load(b + (k * n + j) * kElem);
            ctx.compute(2);
          }
          co_await ctx.store(c + (i * n + j) * kElem);
        }
      });
    }
  }
};

/// pmatcompare: element-wise comparison of two matrices; each thread
/// handles a block of rows and keeps a mismatch counter plus a progress
/// slot that it updates frequently — the progress slots are what get
/// packed (bad-fs) or padded (good).
class Pmatcompare final : public MiniProgram {
 public:
  std::string_view name() const override { return "pmatcompare"; }
  std::string_view description() const override {
    return "parallel matrix compare with per-thread progress slots";
  }
  bool multithreaded() const override { return true; }
  bool supports_bad_ma() const override { return true; }
  std::vector<std::uint64_t> default_sizes() const override {
    return {128, 192, 256};  // matrix dimension n (n^2 comparisons)
  }

  void build(exec::Machine& m, const TrainerParams& p) const override {
    const std::uint64_t n = p.size ? p.size : default_sizes()[0];
    const sim::Addr a = m.arena().alloc_page_aligned(n * n * kElem);
    const sim::Addr b = m.arena().alloc_page_aligned(n * n * kElem);
    const auto progress =
        make_slots(m.arena(), p.threads, /*padded=*/p.mode != Mode::kBadFs);

    for (std::uint32_t t = 0; t < p.threads; ++t) {
      const sim::Addr slot = progress[t];
      const std::uint64_t rows = n / p.threads;
      const std::uint64_t extra = n % p.threads;
      const std::uint64_t r0 = t * rows + std::min<std::uint64_t>(t, extra);
      const std::uint64_t r1 = r0 + rows + (t < extra ? 1 : 0);
      const std::uint64_t block = (r1 - r0) * n;  // elements in my share
      // bad-ma scatters the comparison order across the whole block.
      const Traversal walk(p.mode == Mode::kBadMa ? p.pattern
                                                  : AccessPattern::kLinear,
                           std::max<std::uint64_t>(block, 1), p.stride,
                           p.seed + t);
      // Progress updates get sparser as the matrix grows (n/8 comparisons
      // apart) — together with `count` this spans the bad-fs write-density
      // spectrum the classifier must learn.
      const std::uint64_t period = std::max<std::uint64_t>(4, n / 8);
      m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
        ctx.compute(ctx.rng().next_below(32));
        for (std::uint64_t step = 0; step < block; ++step) {
          const std::uint64_t flat = r0 * n + walk.index(step);
          co_await ctx.load(a + flat * kElem);
          co_await ctx.load(b + flat * kElem);
          ctx.compute(2);
          if (step % period == 0) co_await ctx.store(slot);  // progress
        }
      });
    }
  }
};

}  // namespace

std::vector<const MiniProgram*> matrix_programs() {
  static const Pmatmult pmatmult;
  static const Pmatcompare pmatcompare;
  return {&pmatmult, &pmatcompare};
}

}  // namespace detail
}  // namespace fsml::trainers
