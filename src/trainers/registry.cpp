#include "trainers/trainer.hpp"

#include <numeric>
#include <stdexcept>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace fsml::trainers {

std::string_view to_string(Mode mode) {
  switch (mode) {
    case Mode::kGood: return "good";
    case Mode::kBadFs: return "bad-fs";
    case Mode::kBadMa: return "bad-ma";
  }
  return "?";
}

Mode mode_from_string(std::string_view s) {
  if (s == "good") return Mode::kGood;
  if (s == "bad-fs" || s == "bad_fs" || s == "badfs") return Mode::kBadFs;
  if (s == "bad-ma" || s == "bad_ma" || s == "badma") return Mode::kBadMa;
  throw std::runtime_error("unknown mode: " + std::string(s));
}

std::string_view to_string(AccessPattern p) {
  switch (p) {
    case AccessPattern::kLinear: return "linear";
    case AccessPattern::kStrided: return "strided";
    case AccessPattern::kRandom: return "random";
  }
  return "?";
}

// Program factories defined in the per-family translation units.
namespace detail {
std::vector<const MiniProgram*> scalar_programs();
std::vector<const MiniProgram*> vector_programs();
std::vector<const MiniProgram*> matrix_programs();
std::vector<const MiniProgram*> sequential_programs();
}  // namespace detail

const std::vector<const MiniProgram*>& multithreaded_set() {
  static const std::vector<const MiniProgram*> set = [] {
    std::vector<const MiniProgram*> v = detail::scalar_programs();
    const auto vec = detail::vector_programs();
    const auto mat = detail::matrix_programs();
    v.insert(v.end(), vec.begin(), vec.end());
    v.insert(v.end(), mat.begin(), mat.end());
    return v;
  }();
  return set;
}

const std::vector<const MiniProgram*>& sequential_set() {
  static const std::vector<const MiniProgram*> set =
      detail::sequential_programs();
  return set;
}

std::vector<const MiniProgram*> all_programs() {
  std::vector<const MiniProgram*> v = multithreaded_set();
  const auto& seq = sequential_set();
  v.insert(v.end(), seq.begin(), seq.end());
  return v;
}

const MiniProgram& find_program(std::string_view name) {
  for (const MiniProgram* p : all_programs())
    if (p->name() == name) return *p;
  throw std::runtime_error("unknown mini-program: " + std::string(name));
}

TrainerRun run_trainer(const MiniProgram& program, const TrainerParams& params,
                       const sim::MachineConfig& base_config) {
  FSML_CHECK_MSG(params.threads >= 1, "at least one thread required");
  FSML_CHECK_MSG(program.multithreaded() || params.threads == 1,
                 "sequential programs run single-threaded");
  FSML_CHECK_MSG(params.mode != Mode::kBadMa || program.supports_bad_ma(),
                 "program has no bad-ma variant");

  sim::MachineConfig config = base_config;
  if (!config.topology.multi_socket()) {
    // Single-socket base: size the machine to the thread count, exactly as
    // before the NUMA work (the bit-identity contract covers this path).
    config.num_cores = params.threads;
  } else {
    // Multi-socket base: keep the full topology — shrinking it would change
    // which sockets exist — and place threads on its cores per
    // params.placement.
    FSML_CHECK_MSG(params.threads <= config.num_cores,
                   "more threads than the multi-socket machine has cores");
  }
  exec::Machine machine(config, params.seed);
  machine.set_thread_placement(params.placement);
  machine.set_cancel_flag(params.cancel);
  machine.set_host_threads(params.sim_host_threads);
  program.build(machine, params);
  FSML_CHECK(machine.num_threads() == params.threads);

  TrainerRun run;
  run.result = machine.run();
  run.raw = run.result.aggregate;
  run.snapshot = pmu::CounterSnapshot::from_raw(run.raw);
  run.features = pmu::FeatureVector::normalize(run.snapshot);
  return run;
}

std::vector<sim::Addr> make_slots(exec::VirtualArena& arena, std::uint32_t n,
                                  bool padded) {
  std::vector<sim::Addr> slots;
  slots.reserve(n);
  if (padded) {
    for (std::uint32_t i = 0; i < n; ++i)
      slots.push_back(arena.alloc_line_aligned(8));
  } else {
    // Contiguous 8-byte slots: 8 threads per 64-byte line.
    const sim::Addr base = arena.alloc_line_aligned(8ULL * n);
    for (std::uint32_t i = 0; i < n; ++i) slots.push_back(base + 8ULL * i);
  }
  return slots;
}

Traversal::Traversal(AccessPattern pattern, std::uint64_t n,
                     std::uint64_t stride, std::uint64_t seed)
    : n_(n) {
  FSML_CHECK(n >= 1);
  switch (pattern) {
    case AccessPattern::kLinear:
      step_ = 1;
      offset_ = 0;
      break;
    case AccessPattern::kStrided:
      step_ = std::max<std::uint64_t>(stride, 2);
      offset_ = 0;
      break;
    case AccessPattern::kRandom: {
      // Large odd multiplicative step derived from the seed: hops all over
      // the array, defeating spatial locality, the TLB and next-line
      // prefetching assumptions — a stand-in for a random permutation that
      // needs no O(n) side table.
      util::SplitMix64 sm(seed);
      step_ = (sm.next() | 1) % std::max<std::uint64_t>(n, 2);
      if (step_ < 2) step_ = 2654435761ULL % std::max<std::uint64_t>(n, 2);
      offset_ = sm.next() % n;
      break;
    }
  }
  // Make the step coprime to n so each pass is a bijection on [0, n).
  if (n > 1) {
    step_ %= n;
    if (step_ == 0) step_ = 1;
    while (std::gcd(step_, n_) != 1) ++step_;
  } else {
    step_ = 1;
  }
}

std::uint64_t Traversal::index(std::uint64_t i) const {
  if (n_ == 1) return 0;
  return (offset_ + i * step_) % n_;
}

}  // namespace fsml::trainers
