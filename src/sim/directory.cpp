#include "sim/directory.hpp"

#include <algorithm>

namespace fsml::sim {

CoherenceDirectory::CoherenceDirectory(const SocketTopology& topo,
                                       std::uint32_t num_cores,
                                       std::uint64_t max_lines)
    : idx_(topo) {
  FSML_CHECK_MSG(num_cores >= 1 && num_cores <= kMaxSimulatedCores,
                 "coherence directory supports 1..256 cores");
  FSML_CHECK_MSG(num_cores <= idx_.span() * kMaxSockets,
                 "core id would overflow the hierarchical sharer mask");
  // Start at 2 * max_lines rounded up to a power of two, clamped to
  // [64, 2048] slots; grow() doubles from there as lines are tracked. The
  // clamp matters: a 32-core machine's worst case is ~256k slots (6 MB to
  // zero per construction), while a typical mini-program run touches a few
  // thousand lines.
  const std::uint64_t capacity = std::clamp<std::uint64_t>(
      std::bit_ceil(2 * std::max<std::uint64_t>(max_lines, 1)), 64, 2048);
  slots_.resize(static_cast<std::size_t>(capacity));
  mask_ = static_cast<std::size_t>(capacity - 1);
  shift_ = static_cast<unsigned>(64 - std::countr_zero(capacity));
}

void CoherenceDirectory::on_line_event(CoreId core, Addr line,
                                       [[maybe_unused]] MesiState from,
                                       MesiState to) {
  FSML_DCHECK(from != to);
  std::size_t slot = find_slot(line);
  if (slots_[slot].sharers.none() && to != MesiState::kInvalid &&
      2 * (size_ + 1) > slots_.size()) {
    grow();
    slot = find_slot(line);
  }
  Entry& e = slots_[slot];

  if (to == MesiState::kInvalid) {
    // Invalidation or eviction: the entry must exist and track this core.
    FSML_DCHECK(idx_.test(e.sharers, core));
    idx_.clear(e.sharers, core);
    if (e.owner == core) {
      e.owner = kNoOwner;
      e.owner_state = MesiState::kInvalid;
    }
    if (e.sharers.none()) {
      --size_;
      erase_slot(slot);
    }
    return;
  }

  if (e.sharers.none()) {
    FSML_DCHECK(2 * (size_ + 1) <= slots_.size());
    e.line = line;
    e.owner = kNoOwner;
    e.owner_state = MesiState::kInvalid;
    ++size_;
  }
  // Skip the redundant sharer-bit write when the core is already tracked
  // (E->M upgrades): the parallel scheduler lets a core's silent upgrade
  // run concurrently with other groups' probe walks, which read `sharers`
  // to delimit probe chains — the in-place owner/owner_state field updates
  // below touch bytes no concurrent probe reads.
  if (!idx_.test(e.sharers, core)) idx_.set(e.sharers, core);
  if (to == MesiState::kModified || to == MesiState::kExclusive) {
    // MESI single-writer: a second owner would mean the protocol let two
    // cores hold the line M/E at once.
    FSML_DCHECK(e.owner == kNoOwner || e.owner == core);
    e.owner = core;
    e.owner_state = to;
  } else if (e.owner == core) {
    e.owner = kNoOwner;  // M/E -> S downgrade
    e.owner_state = MesiState::kInvalid;
  }
}

void CoherenceDirectory::grow() {
  const std::vector<Entry> old = std::move(slots_);
  const std::size_t capacity = 2 * old.size();
  slots_.assign(capacity, Entry{});
  mask_ = capacity - 1;
  shift_ = static_cast<unsigned>(
      64 - std::countr_zero(static_cast<std::uint64_t>(capacity)));
  for (const Entry& e : old)
    if (e.sharers.any()) slots_[find_slot(e.line)] = e;
}

void CoherenceDirectory::erase_slot(std::size_t slot) {
  slots_[slot].sharers.reset();
  std::size_t hole = slot;
  std::size_t i = slot;
  while (true) {
    i = (i + 1) & mask_;
    if (slots_[i].sharers.none()) return;
    const std::size_t home = static_cast<std::size_t>(
        (slots_[i].line * 0x9E3779B97F4A7C15ull) >> shift_);
    // Shift the entry back into the hole unless its home slot lies in the
    // cyclic interval (hole, i] — moving it would then break its probe
    // chain.
    const bool home_in_gap = ((i - home) & mask_) < ((i - hole) & mask_);
    if (!home_in_gap) {
      slots_[hole] = slots_[i];
      slots_[i].sharers.reset();
      hole = i;
    }
  }
}

}  // namespace fsml::sim
