#include "sim/machine_config.hpp"

#include <string>

#include "util/check.hpp"

namespace fsml::sim {

void MachineConfig::validate() const {
  FSML_CHECK(num_cores >= 1);
  topology.validate(num_cores);
  l1d.validate();
  l2.validate();
  l3.validate();
  FSML_CHECK_MSG(l1d.line_bytes == l2.line_bytes &&
                     l2.line_bytes == l3.line_bytes,
                 "all levels must share one line size");
  FSML_CHECK(store_buffer_entries >= 1);
  FSML_CHECK(lfb_entries >= 1);
  FSML_CHECK(core_hz > 0);
}

MachineConfig MachineConfig::westmere_dp(std::uint32_t cores) {
  MachineConfig cfg;
  cfg.name = "westmere-dp-x5690";
  cfg.num_cores = cores;
  cfg.l1d = {32 * 1024, 8, 64};
  cfg.l2 = {256 * 1024, 8, 64};
  cfg.l3 = {12 * 1024 * 1024, 16, 64};
  cfg.core_hz = 3.4e9;
  cfg.validate();
  return cfg;
}

MachineConfig MachineConfig::westmere_dp_2s() {
  MachineConfig cfg = westmere_dp(12);
  cfg.name = "westmere-dp-x5690-2x6";
  cfg.topology = {2, 6};
  cfg.validate();
  return cfg;
}

MachineConfig MachineConfig::numa(std::uint32_t sockets,
                                  std::uint32_t cores_per_socket) {
  MachineConfig cfg = westmere_dp(12);
  cfg.num_cores = sockets * cores_per_socket;
  cfg.name = "numa-" + std::to_string(sockets) + "x" +
             std::to_string(cores_per_socket);
  cfg.topology = {sockets, cores_per_socket};
  // Per-socket L3 and memory controller; keep the per-socket L3 at the
  // Westmere 12 MiB so socket-local behavior matches the base part.
  cfg.validate();
  return cfg;
}

MachineConfig MachineConfig::xeon32(std::uint32_t cores) {
  MachineConfig cfg = westmere_dp(cores);
  cfg.name = "xeon-32core";
  cfg.l3 = {24 * 1024 * 1024, 16, 64};
  // A 32-core box of this era is a 4-socket machine with four memory
  // controllers: ~4x the aggregate bus bandwidth and twice the banks of the
  // 12-core part, but the same per-bank row-cycle cost — streaming scales
  // to 16+ threads while random traffic still hits the activation wall
  // (the paper's Table-1 contrast).
  cfg.cycles.dram_bus_occupancy = 2;
  cfg.cycles.dram_banks = 8;
  cfg.cycles.dram_row_miss_occupancy = 96;
  cfg.validate();
  return cfg;
}

MachineConfig MachineConfig::tiny(std::uint32_t cores) {
  MachineConfig cfg;
  cfg.name = "tiny";
  cfg.num_cores = cores;
  cfg.l1d = {1024, 2, 64};       // 16 lines
  cfg.l2 = {4096, 4, 64};        // 64 lines
  cfg.l3 = {16 * 1024, 4, 64};   // 256 lines
  cfg.dtlb_entries = 8;
  cfg.dtlb_ways = 2;
  cfg.validate();
  return cfg;
}

}  // namespace fsml::sim
