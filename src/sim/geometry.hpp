// Cache geometry: size/associativity/line-size arithmetic shared by all
// cache levels and the TLB.
#pragma once

#include <bit>
#include <cstdint>

#include "sim/types.hpp"
#include "util/check.hpp"

namespace fsml::sim {

struct CacheGeometry {
  std::uint64_t size_bytes = 0;
  std::uint32_t ways = 0;
  std::uint32_t line_bytes = 64;

  constexpr std::uint64_t num_lines() const { return size_bytes / line_bytes; }
  constexpr std::uint64_t num_sets() const { return num_lines() / ways; }

  void validate() const {
    FSML_CHECK_MSG(size_bytes > 0 && ways > 0 && line_bytes > 0,
                   "cache geometry fields must be positive");
    FSML_CHECK_MSG(std::has_single_bit(static_cast<std::uint64_t>(line_bytes)),
                   "line size must be a power of two");
    FSML_CHECK_MSG(size_bytes % (static_cast<std::uint64_t>(ways) * line_bytes) == 0,
                   "size must be a multiple of ways*line");
  }

  Addr line_addr(Addr a) const { return a & ~static_cast<Addr>(line_bytes - 1); }
  // Modulo indexing: real LLCs with non-power-of-two set counts (Westmere's
  // 12 MiB/16-way L3 has 12288 sets) hash addresses to sets; modulo is the
  // simplest distribution-preserving stand-in.
  std::uint64_t set_index(Addr a) const { return (a / line_bytes) % num_sets(); }
  std::uint64_t tag(Addr a) const { return a / line_bytes / num_sets(); }
};

}  // namespace fsml::sim
