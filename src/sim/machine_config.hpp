// Whole-machine configuration: core count, per-level geometries, TLB and
// latency model. Factories model the two systems in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/cycle_model.hpp"
#include "sim/geometry.hpp"
#include "sim/topology.hpp"

namespace fsml::sim {

struct MachineConfig {
  std::string name = "generic";
  std::uint32_t num_cores = 12;
  /// Socket layout. The default ({1, 0}) puts every core on one socket.
  /// Multi-socket machines get one L3 and one memory controller per
  /// socket; cross-socket coherence transfers pay the QPI wire hop plus a
  /// home-agent directory lookup, and remote DRAM costs extra.
  SocketTopology topology;

  CacheGeometry l1d{32 * 1024, 8, 64};
  CacheGeometry l2{256 * 1024, 8, 64};
  CacheGeometry l3{12 * 1024 * 1024, 16, 64};

  std::uint32_t dtlb_entries = 64;
  std::uint32_t dtlb_ways = 4;
  std::uint32_t page_bytes = 4096;

  std::uint32_t store_buffer_entries = 8;
  std::uint32_t lfb_entries = 10;

  CycleModel cycles{};

  double core_hz = 3.4e9;  ///< for cycles -> seconds conversion only

  /// Resolve coherence lookups (owner/sharer discovery on every miss,
  /// upgrade and prefetch probe) through the O(1) coherence directory
  /// (sim/directory.hpp) instead of linearly scanning every peer core's
  /// L2. Both paths are bit-identical — same counters, same cycles, same
  /// training bytes (a regression test enforces it); the scan survives
  /// purely as the cross-validation reference and perf baseline.
  ///
  /// Unset (the default) auto-selects: the directory pays off once peer
  /// scans visit more than a couple of cores, but on 1-2 core machines its
  /// hash maintenance costs more than the scan it replaces (the 1-core
  /// BENCH_sim regression), so small machines keep the legacy scan unless
  /// a value is explicitly forced.
  std::optional<bool> use_coherence_directory;

  /// The resolved protocol choice: the forced value, or the core-count
  /// auto-selection rule.
  bool directory_enabled() const {
    return use_coherence_directory.value_or(num_cores > 2);
  }

  void validate() const;

  /// The paper's experimental platform: 12-core Xeon X5690 (Westmere DP),
  /// 32 KiB L1D + 256 KiB L2 per core, 12 MiB shared L3, 3.4 GHz.
  /// Modelled as a single socket by default.
  static MachineConfig westmere_dp(std::uint32_t cores = 12);

  /// The same platform with its true topology: 2 sockets x 6 cores, one
  /// 12 MiB L3 per socket, QPI between them. Cross-socket false sharing is
  /// costlier and its HITM transfers ride the interconnect.
  static MachineConfig westmere_dp_2s();

  /// The 32-core Xeon used for the paper's Table 1 motivation experiment.
  /// Modelled as Westmere-class cores with a larger shared LLC.
  static MachineConfig xeon32(std::uint32_t cores = 32);

  /// A wide NUMA machine: `sockets` x `cores_per_socket` Westmere-class
  /// cores, one L3 and one memory controller per socket. This is the
  /// 128/256-core scenario family the paper's single-socket hardware could
  /// never express (up to 4 sockets x 64 cores).
  static MachineConfig numa(std::uint32_t sockets,
                            std::uint32_t cores_per_socket);

  /// Tiny machine for fast unit tests (2 cores, small caches).
  static MachineConfig tiny(std::uint32_t cores = 2);
};

}  // namespace fsml::sim
