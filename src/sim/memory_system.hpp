// The coherent multicore memory hierarchy.
//
// Topology (modelled on Westmere DP):
//
//   core 0: L1D -- L2 --+
//   core 1: L1D -- L2 --+--- shared inclusive L3 --- DRAM
//   ...                 |
//
// * Private L1D and L2 keep per-line MESI state; the L2 is inclusive of the
//   L1D within a core (Westmere's L2 is non-inclusive; strict inclusion is a
//   simplification that does not change coherence-traffic signatures).
// * The shared L3 is inclusive of all private caches and acts as the snoop
//   filter: read misses snoop only an M/E owner, write misses and upgrades
//   snoop every holder. Snoop responses are counted at the responding core
//   (Intel SNOOP_RESPONSE.* semantics).
// * Stores retire into a store buffer and drain in the background; loads
//   merging with in-flight fills count as LFB hits. See store_buffer.hpp.
//
// The simulator counts ~60 raw events per core (raw_events.hpp); external
// tools can observe each access through AccessObserver.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cache.hpp"
#include "sim/directory.hpp"
#include "sim/machine_config.hpp"
#include "sim/observer.hpp"
#include "sim/raw_events.hpp"
#include "sim/store_buffer.hpp"
#include "sim/tlb.hpp"
#include "sim/types.hpp"

namespace fsml::sim {

class MemorySystem {
 public:
  explicit MemorySystem(const MachineConfig& config);

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  const MachineConfig& config() const { return config_; }
  std::uint32_t num_cores() const { return config_.num_cores; }

  /// Socket topology (one L3 and one memory controller per socket).
  std::uint32_t num_sockets() const {
    return static_cast<std::uint32_t>(l3s_.size());
  }
  std::uint32_t socket_of(CoreId core) const {
    return config_.topology.socket_of(core);
  }

  /// Home memory controller for `line`: pages interleave round-robin
  /// across sockets (the default first-touch-free NUMA policy). On a
  /// single-socket machine every line is local.
  std::uint32_t dram_home_socket(Addr line) const {
    const std::uint32_t sockets = num_sockets();
    if (sockets == 1) return 0;
    return static_cast<std::uint32_t>((line / config_.page_bytes) % sockets);
  }

  /// Performs one demand access from `core` at its local clock `now`.
  /// Accesses spanning multiple lines are split internally; the returned
  /// latency covers the whole access.
  AccessResult access(CoreId core, Addr addr, std::uint32_t size,
                      AccessType type, Cycles now);

  /// Verdict of classify_access: whether applying the access would touch
  /// only `core`-private state, and if so the exact latency access() will
  /// charge for it.
  struct AccessClass {
    bool local = false;
    Cycles latency = 0;
  };

  /// Read-only oracle for the epoch-parallel scheduler: decides whether
  /// access() for these arguments would mutate only core-private state
  /// (own L1/L2/DTLB/store-buffer/LFB/stream-table/counters, plus in-place
  /// owner-state updates on lines this core already holds exclusively) —
  /// in which case it commutes with other groups' local accesses and may
  /// run without global ordering — or would reach shared structures
  /// (directory probes, L3, peer snoops, DRAM, prefetch bursts, upgrades),
  /// which must commit in exact (clock, tid) order. For a local verdict,
  /// `latency` is exactly what access() will return; the scheduler uses it
  /// as its conservative lookahead bound and cross-checks it at apply time.
  AccessClass classify_access(CoreId core, Addr addr, std::uint32_t size,
                              AccessType type, Cycles now) const;

  bool has_observers() const { return !observers_.empty(); }

  /// Accounts `n` retired non-memory instructions on `core`.
  void retire_instructions(CoreId core, std::uint64_t n);

  /// Accounts elapsed cycles on `core` (called by the scheduler at the end
  /// of a run so CYCLES_TOTAL matches each core's final clock).
  void account_cycles(CoreId core, Cycles cycles);

  const RawCounters& counters(CoreId core) const;
  RawCounters aggregate_counters() const;
  void reset_counters();

  /// PMU collection on/off (models running without `perf`): when disabled,
  /// no raw events are counted. Used by the overhead bench.
  void set_counting_enabled(bool enabled) { counting_ = enabled; }
  bool counting_enabled() const { return counting_; }

  void add_observer(AccessObserver* observer);
  void remove_observer(AccessObserver* observer);

  // ---- introspection for tests -------------------------------------------
  const Cache& l1(CoreId core) const;
  const Cache& l2(CoreId core) const;
  const Cache& l3(std::uint32_t socket = 0) const { return l3s_.at(socket); }

  /// MESI single-writer invariant: for every line, at most one core holds it
  /// M or E, and if one does, no other core holds it in any valid state.
  bool check_coherence_invariant() const;

  /// L1D ⊆ L2 ⊆ L3 for every core.
  bool check_inclusion() const;

  /// The coherence directory (read-only; tests compare it to a full scan).
  const CoherenceDirectory& directory() const { return dir_; }

  /// Exact-sync invariant: the directory's owner/sharer records match a
  /// full linear scan of every core's L2, line for line. Always true — the
  /// directory is maintained through the caches' line-event hooks — but
  /// the fuzz tests re-prove it after every access, and debug builds
  /// FSML_DCHECK it on every directory-served miss.
  bool check_directory_invariant() const;

 private:
  struct CoreNode {
    Cache l1;
    Cache l2;
    Dtlb dtlb;
    DrainQueue store_buffer;
    LineFillBuffer lfb;
    RawCounters counters;
    /// Stream-prefetcher tracking table: expected next miss line per
    /// detected stream (real MLC streamers track ~16 streams; 8 suffices
    /// for our kernels). Round-robin replacement.
    std::array<Addr, 8> stream_table{};
    std::size_t stream_rr = 0;
    /// Context for the L2 line-event hook feeding the coherence directory.
    CoreId id = 0;
    CoherenceDirectory* directory = nullptr;

    CoreNode(const MachineConfig& cfg)
        : l1(cfg.l1d),
          l2(cfg.l2),
          dtlb(cfg.dtlb_entries, cfg.dtlb_ways, cfg.page_bytes),
          store_buffer(cfg.store_buffer_entries),
          lfb(cfg.lfb_entries) {}
  };

  /// Trampoline from a core's L2 into the directory (Cache::LineEventHook).
  static void l2_line_event(void* ctx, Addr line, MesiState from,
                            MesiState to);

  void count(CoreId core, RawEvent e, std::uint64_t n = 1) {
    if (counting_) nodes_[core].counters.add(e, n);
  }

  /// Result of servicing one line-granular request through L2/L3/peers.
  struct LineResult {
    ServiceLevel level;
    MesiState fill_state;  ///< state the line enters the requester's caches
    Cycles extra_latency = 0;  ///< queueing delay beyond the level latency
  };

  /// One line-granular access (addr is line-aligned).
  AccessResult access_line(CoreId core, Addr line, AccessType type,
                           Cycles now);

  /// Demand request that missed (or needs ownership) at L1: walks L2, L3,
  /// peers. Performs all coherence state changes and counting. Does not fill
  /// the requester's caches (caller does). `now` is the requester's clock,
  /// used by the shared DRAM-channel model.
  LineResult service_request(CoreId core, Addr line, bool want_ownership,
                             Cycles now);

  /// Who holds `line` in their L2 right now: the unique M/E owner (if any)
  /// plus a bitmask of every valid holder. This is the one question the
  /// coherence protocol asks about peers; the directory answers it in O(1),
  /// the scan in O(cores).
  struct LineHolders {
    CoreId owner = CoherenceDirectory::kNoOwner;
    MesiState owner_state = MesiState::kInvalid;
    SharerMask sharers;  ///< all valid holders, including the owner
  };

  /// Reference implementation: full linear scan over every core's L2.
  LineHolders scan_line_holders(Addr line) const;

  /// Directory-served lookup (config.directory_enabled()) or the
  /// reference scan; debug builds cross-validate the two on every call.
  LineHolders line_holders(Addr line) const;

  /// Cycles of queueing delay at `line`'s home-socket DRAM channel for an
  /// access issued at `now`; advances that channel's next-free time and
  /// open-row state. Demand requests preempt queued prefetch traffic
  /// (FR-FCFS demand priority): their queueing delay is bounded by a couple
  /// of in-flight transfers, never the full prefetch backlog.
  Cycles dram_queue_delay(Cycles now, Addr line, bool demand = true);

  /// Prefetch admission control: maximum run-ahead of the channel state
  /// before new prefetches are refused, and the sentinel returned for a
  /// refused prefetch.
  static constexpr Cycles kPrefetchAdmissionWindow = 2048;
  static constexpr Cycles kPrefetchDropped = ~Cycles{0};

  /// Next-line stream prefetcher (models Westmere's MLC streamer): when a
  /// demand load continues a sequential line stream, pulls lines ahead of it
  /// into L2 in the background, running `kPrefetchDegree` lines ahead.
  /// Prefetches consume DRAM channel bandwidth but add no latency to the
  /// triggering access, and never steal a line another core owns — which is
  /// why linear streams are cheap while strided/random (bad-ma) and
  /// falsely-shared (bad-fs) traffic sees the full miss costs.
  /// `allocate` is true on demand misses (may start tracking a new stream).
  void maybe_stream_prefetch(CoreId core, Addr line, Cycles now,
                             bool allocate);

  /// Whether maybe_stream_prefetch(core, line, ...) would issue a burst
  /// (and therefore probe the directory and touch shared fill state), as
  /// opposed to doing nothing or only core-local bookkeeping. Read-only;
  /// shares the frontier-matching and hysteresis logic above.
  bool stream_would_prefetch(CoreId core, Addr line) const;

  /// Snoop `peer` for `line`; downgrades (read) or invalidates (write) and
  /// counts responder-side events. Returns the peer's prior state.
  MesiState snoop_peer(CoreId peer, Addr line, bool for_ownership);

  /// Fills `line` into core's L2 (and, unless `fill_l1` is false, L1) in
  /// `state`, handling evictions, inclusion back-invalidations and writeback
  /// counting. Store misses leave L1 unfilled so that subsequent loads can
  /// merge with the in-flight fill (LFB hit).
  void fill_private(CoreId core, Addr line, MesiState state,
                    bool fill_l1 = true);

  /// Fills into `socket`'s L3, back-invalidating the victim line in that
  /// socket's cores.
  void fill_l3(std::uint32_t socket, Addr line, MesiState state);

  /// Writes back a dirty private line into `socket`'s L3.
  void writeback_to_l3(std::uint32_t socket, Addr line);

  /// Removes the line from every L3 except `keep_socket` (used when a core
  /// takes exclusive ownership). Callers must have invalidated the other
  /// sockets' private copies first.
  void invalidate_other_l3s(std::uint32_t keep_socket, Addr line);

  void record_fill_transition(CoreId core, MesiState state);

  MachineConfig config_;
  SharerIndex sharer_index_;  ///< core -> (socket word, bit) mapping
  CoherenceDirectory dir_;  ///< per-line owner/sharer index over all L2s
  std::vector<CoreNode> nodes_;
  std::vector<Cache> l3s_;  ///< one per socket
  struct DramBank {
    Cycles free_at = 0;
    Addr open_row = ~Addr{0};
  };
  // Two independent queueing domains approximate an FR-FCFS controller
  // with reserved service shares: demand requests contend only with other
  // demand requests (this is what makes random-access workloads hit the
  // bandwidth wall), while prefetches draw on their own share and are
  // refused — never queued — once it backs up beyond the admission window.
  // A prefetch backlog therefore can never land on a demand miss, and
  // refusing prefetches cannot spiral (demand does not consume the
  // prefetch share).
  struct DramController {
    std::vector<DramBank> banks;         ///< prefetch service share
    std::vector<DramBank> demand_banks;  ///< demand service share
    Cycles bus_free = 0;
    Cycles demand_bus_free = 0;
  };
  std::vector<DramController> dram_;  ///< one controller per socket
  bool counting_ = true;
  std::vector<AccessObserver*> observers_;
};

}  // namespace fsml::sim
