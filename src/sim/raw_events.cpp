#include "sim/raw_events.hpp"

#include "util/check.hpp"

namespace fsml::sim {

namespace {

struct EventMeta {
  std::string_view name;
  std::string_view description;
};

constexpr std::array<EventMeta, kNumRawEvents> kMeta = {{
    {"inst_retired", "Instructions retired"},
    {"loads_retired", "Load instructions retired"},
    {"stores_retired", "Store instructions retired"},
    {"atomics_retired", "Atomic RMW instructions retired"},
    {"cycles_total", "Core cycles elapsed"},

    {"l1d_load_hit", "Demand loads hitting L1D"},
    {"l1d_load_miss", "Demand loads missing L1D"},
    {"l1d_store_hit", "Store drains hitting L1D in a writable state"},
    {"l1d_store_miss", "Store drains missing L1D or needing ownership"},
    {"l1d_hit_lfb", "Loads merged with an in-flight line fill"},
    {"l1d_replacement", "Lines filled into L1D (replacements)"},
    {"l1d_evict_clean", "Clean lines evicted from L1D"},
    {"l1d_evict_dirty", "Dirty lines written back from L1D"},

    {"l2_demand_requests", "Demand requests reaching L2"},
    {"l2_demand_istate", "L2 demand requests finding the line Invalid"},
    {"l2_hit", "Demand requests hitting L2"},
    {"l2_miss", "Demand requests missing L2"},
    {"l2_ld_miss", "Demand loads missing L2"},
    {"l2_st_miss", "Demand RFOs missing L2"},
    {"l2_rfo_hit_s", "RFOs finding the line Shared in L2 (upgrade)"},
    {"l2_fill", "Lines filled into L2"},
    {"l2_lines_in_s", "Lines entering L2 in Shared state"},
    {"l2_lines_in_e", "Lines entering L2 in Exclusive state"},
    {"l2_lines_in_m", "Lines entering L2 in Modified state"},
    {"l2_lines_out_demand_clean", "Clean L2 evictions from demand fills"},
    {"l2_lines_out_demand_dirty", "Dirty L2 evictions from demand fills"},

    {"offcore_demand_rd_data", "Demand data reads leaving the core"},
    {"offcore_rfo", "RFOs leaving the core"},
    {"l3_hit", "Demand requests hitting the shared L3"},
    {"l3_miss", "Demand requests missing the shared L3"},
    {"dram_reads", "Lines read from memory"},
    {"dram_reads_local", "DRAM reads homed on the requester's socket"},
    {"dram_reads_remote", "DRAM reads homed on another socket"},
    {"dram_writes", "Lines written back to memory"},
    {"hw_prefetches_issued", "Stream-prefetcher requests sent offcore"},
    {"prefetch_fills_l2", "Prefetched lines installed into L2"},
    {"cross_socket_transfers", "Coherence transfers that crossed QPI"},
    {"remote_l3_hits", "Demand requests served by the remote socket's L3"},

    {"snoop_requests_received", "Bus snoops received by this core"},
    {"snoop_response_hit", "Snoops answered HIT (line Shared here)"},
    {"snoop_response_hit_e", "Snoops answered HIT (line Exclusive here)"},
    {"snoop_response_hitm", "Snoops answered HITM (line Modified here)"},
    {"invalidations_received", "Lines invalidated here by remote RFOs"},

    {"hitm_transfers_in", "Demand accesses serviced by a peer's M line"},
    {"hitm_transfers_local", "HITM transfers from a same-socket peer"},
    {"hitm_transfers_remote", "HITM transfers from a remote-socket peer"},
    {"clean_transfers_in", "Demand accesses serviced by a peer's S/E line"},
    {"rfo_upgrades", "Shared->Modified upgrades (invalidate-only RFO)"},
    {"invalidations_sent", "Invalidations broadcast by this core's RFOs"},

    {"trans_i_s", "MESI transitions I->S"},
    {"trans_i_e", "MESI transitions I->E"},
    {"trans_i_m", "MESI transitions I->M"},
    {"trans_s_m", "MESI transitions S->M"},
    {"trans_e_m", "MESI transitions E->M"},
    {"trans_e_s", "MESI transitions E->S"},
    {"trans_m_s", "MESI transitions M->S"},
    {"trans_s_i", "MESI transitions S->I"},
    {"trans_e_i", "MESI transitions E->I"},
    {"trans_m_i", "MESI transitions M->I"},

    {"dtlb_hit", "DTLB hits"},
    {"dtlb_miss", "DTLB misses (page walks)"},

    {"store_buffer_stall_cycles", "Cycles stalled on a full store buffer"},
    {"load_stall_cycles", "Cycles loads waited beyond L1 latency"},

    {"mem_load_retired_l1_hit", "Retired loads serviced by L1D"},
    {"mem_load_retired_l2_hit", "Retired loads serviced by L2"},
    {"mem_load_retired_l3_hit", "Retired loads serviced by L3"},
    {"mem_load_retired_dram", "Retired loads serviced by DRAM"},
    {"mem_load_retired_peer", "Retired loads serviced by a peer cache"},
}};

}  // namespace

std::string_view raw_event_name(RawEvent e) {
  const auto i = static_cast<std::size_t>(e);
  FSML_CHECK(i < kNumRawEvents);
  return kMeta[i].name;
}

std::string_view raw_event_description(RawEvent e) {
  const auto i = static_cast<std::size_t>(e);
  FSML_CHECK(i < kNumRawEvents);
  return kMeta[i].description;
}

}  // namespace fsml::sim
