#include "sim/cache.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fsml::sim {

Cache::Cache(CacheGeometry geometry) : geometry_(geometry) {
  geometry_.validate();
  ways_.resize(static_cast<std::size_t>(geometry_.num_sets()) *
               geometry_.ways);
}

Cache::Way* Cache::find(Addr addr) {
  Way* const base = set_base(addr);
  const std::uint64_t tag = geometry_.tag(addr);
  for (Way* way = base; way != base + geometry_.ways; ++way)
    if (way->state != MesiState::kInvalid && way->tag == tag) return way;
  return nullptr;
}

const Cache::Way* Cache::find(Addr addr) const {
  return const_cast<Cache*>(this)->find(addr);
}

MesiState Cache::state_of(Addr addr) const {
  const Way* way = find(addr);
  return way ? way->state : MesiState::kInvalid;
}

MesiState Cache::touch(Addr addr) {
  Way* way = find(addr);
  if (!way) return MesiState::kInvalid;
  way->lru_stamp = ++stamp_;
  return way->state;
}

std::optional<Eviction> Cache::fill(Addr addr, MesiState state) {
  FSML_DCHECK(state != MesiState::kInvalid);
  if (Way* way = find(addr)) {
    notify(geometry_.line_addr(addr), way->state, state);
    way->state = state;
    way->lru_stamp = ++stamp_;
    return std::nullopt;
  }
  Way* const base = set_base(addr);
  // Prefer an invalid way; otherwise evict true-LRU.
  Way* victim = nullptr;
  for (Way* way = base; way != base + geometry_.ways; ++way) {
    if (way->state == MesiState::kInvalid) {
      victim = way;
      break;
    }
  }
  std::optional<Eviction> eviction;
  if (!victim) {
    victim = &*std::min_element(
        base, base + geometry_.ways,
        [](const Way& a, const Way& b) { return a.lru_stamp < b.lru_stamp; });
    const Addr victim_addr =
        (victim->tag * geometry_.num_sets() + geometry_.set_index(addr)) *
        geometry_.line_bytes;
    eviction = Eviction{victim_addr, victim->state};
    notify(victim_addr, victim->state, MesiState::kInvalid);
  }
  victim->tag = geometry_.tag(addr);
  victim->state = state;
  victim->lru_stamp = ++stamp_;
  notify(geometry_.line_addr(addr), MesiState::kInvalid, state);
  return eviction;
}

void Cache::set_state(Addr addr, MesiState state) {
  Way* way = find(addr);
  FSML_CHECK_MSG(way != nullptr, "set_state on a non-resident line");
  notify(geometry_.line_addr(addr), way->state, state);
  way->state = state;
}

MesiState Cache::invalidate(Addr addr) {
  Way* way = find(addr);
  if (!way) return MesiState::kInvalid;
  const MesiState prior = way->state;
  notify(geometry_.line_addr(addr), prior, MesiState::kInvalid);
  way->state = MesiState::kInvalid;
  return prior;
}

std::size_t Cache::occupancy() const {
  std::size_t n = 0;
  for (const Way& way : ways_)
    if (way.state != MesiState::kInvalid) ++n;
  return n;
}

void Cache::for_each_line(
    const std::function<void(Addr, MesiState)>& visit) const {
  for (std::size_t i = 0; i < ways_.size(); ++i) {
    const Way& way = ways_[i];
    if (way.state == MesiState::kInvalid) continue;
    const std::uint64_t s = i / geometry_.ways;
    const Addr addr =
        (way.tag * geometry_.num_sets() + s) * geometry_.line_bytes;
    visit(addr, way.state);
  }
}

}  // namespace fsml::sim
