// Per-core data TLB modelled as a small set-associative cache of page
// numbers. Strided and random access patterns blow this structure out,
// which is the main "bad-ma" signature the paper's event 13 (DTLB_Misses)
// picks up.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace fsml::sim {

class Dtlb {
 public:
  /// `entries` total entries, `ways` associativity, `page_bytes` page size.
  Dtlb(std::uint32_t entries, std::uint32_t ways, std::uint32_t page_bytes);

  /// Translates; returns true on hit. On miss, installs the mapping (LRU).
  bool access(Addr addr);

  /// Whether access(addr) would hit, without installing or touching LRU
  /// state (the parallel scheduler's read-only access classifier).
  bool would_hit(Addr addr) const;

  void reset();

  std::uint32_t page_bytes() const { return page_bytes_; }

 private:
  struct Entry {
    std::uint64_t vpn = 0;
    bool valid = false;
    std::uint64_t lru_stamp = 0;
  };

  std::uint32_t ways_;
  std::uint32_t page_bytes_;
  std::uint64_t num_sets_;
  std::vector<Entry> entries_;  // sets_ * ways_ flattened
  std::uint64_t stamp_ = 0;
};

}  // namespace fsml::sim
