// Latency model of the simulated machine, in core cycles.
//
// Values approximate the Westmere-DP numbers from Intel's performance
// analysis guide (Levinthal 2009): L1 4cy, L2 10cy, L3 ~38cy local,
// cross-core modified-line transfer ~75cy, DRAM ~200cy. The paper only
// needs the *ordering* of these costs to hold (coherence transfer >> local
// hit) for the workload shapes to reproduce.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace fsml::sim {

struct CycleModel {
  Cycles l1_hit = 4;
  Cycles lfb_hit = 6;          ///< merge with an in-flight fill
  Cycles l2_hit = 10;
  Cycles l3_hit = 38;
  Cycles peer_clean = 60;      ///< cache-to-cache transfer, clean line
  Cycles peer_hitm = 75;       ///< cache-to-cache transfer, modified line
  Cycles dram = 200;
  /// DRAM channel model: a shared data bus plus `dram_banks` banks, each
  /// with one open row. A transfer hitting its bank's open row (streaming)
  /// occupies only the bus; one that opens a new row (random access) also
  /// holds its bank much longer. Streaming therefore scales to many cores
  /// (bus-bound) while random traffic saturates on bank activations — the
  /// bandwidth wall that flattens the paper's Table-1 "bad memory access"
  /// scaling curve without penalizing well-behaved streams. Multiple banks
  /// also keep the queueing fair: concurrent streams interleave across
  /// banks instead of serializing behind one open row.
  Cycles dram_bus_occupancy = 6;
  Cycles dram_row_miss_occupancy = 48;
  std::uint32_t dram_banks = 4;
  std::uint64_t dram_row_bytes = 4096;
  Cycles upgrade = 40;         ///< invalidate-only RFO (S->M)
  /// Extra latency for any transfer that crosses the socket interconnect
  /// (QPI on Westmere DP). Only used by multi-socket configurations.
  Cycles qpi_hop = 65;
  /// Home-agent directory lookup charged on top of the QPI wire hop for
  /// every cross-socket transfer: the requesting socket consults the home
  /// node's directory before the data moves. Only used by multi-socket
  /// configurations; a remote HITM costs peer_hitm + cross_socket_hop()
  /// versus the local peer_hitm.
  Cycles home_agent = 25;
  /// Extra DRAM latency when the line's home memory controller sits on a
  /// different socket than the requester (remote DRAM read over QPI), on
  /// top of cross_socket_hop(). Only used by multi-socket configurations.
  Cycles dram_remote_extra = 120;

  /// Total interconnect cost of one cross-socket transfer: the QPI wire
  /// hop plus the home agent's directory lookup.
  Cycles cross_socket_hop() const { return qpi_hop + home_agent; }
  Cycles tlb_walk = 30;        ///< page-walk penalty added on DTLB miss
  Cycles store_commit = 1;     ///< store retires into the store buffer
  double compute_cpi = 1.0;    ///< cycles per plain ALU instruction

  Cycles latency_for(ServiceLevel level) const {
    switch (level) {
      case ServiceLevel::kL1: return l1_hit;
      case ServiceLevel::kLfb: return lfb_hit;
      case ServiceLevel::kL2: return l2_hit;
      case ServiceLevel::kL3: return l3_hit;
      case ServiceLevel::kPeerHit: return peer_clean;
      case ServiceLevel::kPeerHitM: return peer_hitm;
      case ServiceLevel::kDram: return dram;
      case ServiceLevel::kUpgrade: return upgrade;
    }
    return l1_hit;
  }
};

}  // namespace fsml::sim
