#include "sim/memory_system.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace fsml::sim {

namespace {
MachineConfig validated(MachineConfig config) {
  config.validate();
  return config;
}

// Stream-prefetcher look-ahead window and burst size (shared between
// maybe_stream_prefetch and its read-only stream_would_prefetch probe).
// Prefetches are issued in bursts of consecutive lines so the DRAM bank
// sees row hits: steady-state one-line-at-a-time prefetching from many
// interleaved streams would turn every transfer into a row activation and
// saturate the channel.
constexpr Addr kPrefetchAhead = 8;
constexpr Addr kPrefetchBurst = 4;
}  // namespace

MemorySystem::MemorySystem(const MachineConfig& config)
    : config_(validated(config)),
      sharer_index_(config_.topology),
      dir_(config_.topology, config_.num_cores,
           std::uint64_t{config_.num_cores} * config_.l2.num_lines()) {
  nodes_.reserve(config_.num_cores);
  for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
    nodes_.emplace_back(config_);
    CoreNode& node = nodes_.back();
    node.id = i;
    node.directory = &dir_;
    // Every L2 state transition — fill, upgrade, downgrade, invalidate,
    // eviction — flows into the directory, which is what keeps it exactly
    // in sync without per-site bookkeeping. (nodes_ is fully reserved, so
    // &node stays valid for the lifetime of the MemorySystem.)
    node.l2.set_line_event_hook(&MemorySystem::l2_line_event, &node);
  }
  const std::uint32_t sockets = config_.topology.sockets;
  for (std::uint32_t sock = 0; sock < sockets; ++sock)
    l3s_.emplace_back(config_.l3);
  // One memory controller per socket; lines are homed by page interleave.
  dram_.resize(sockets);
  const std::size_t banks =
      std::max<std::uint32_t>(config_.cycles.dram_banks, 1);
  for (DramController& ctl : dram_) {
    ctl.banks.resize(banks);
    ctl.demand_banks.resize(banks);
  }
}

const RawCounters& MemorySystem::counters(CoreId core) const {
  FSML_CHECK(core < nodes_.size());
  return nodes_[core].counters;
}

RawCounters MemorySystem::aggregate_counters() const {
  RawCounters total;
  for (const CoreNode& node : nodes_) total += node.counters;
  return total;
}

void MemorySystem::reset_counters() {
  for (CoreNode& node : nodes_) node.counters.reset();
}

void MemorySystem::add_observer(AccessObserver* observer) {
  FSML_CHECK(observer != nullptr);
  observers_.push_back(observer);
}

void MemorySystem::remove_observer(AccessObserver* observer) {
  std::erase(observers_, observer);
}

const Cache& MemorySystem::l1(CoreId core) const {
  FSML_CHECK(core < nodes_.size());
  return nodes_[core].l1;
}

const Cache& MemorySystem::l2(CoreId core) const {
  FSML_CHECK(core < nodes_.size());
  return nodes_[core].l2;
}

void MemorySystem::l2_line_event(void* ctx, Addr line, MesiState from,
                                 MesiState to) {
  CoreNode* node = static_cast<CoreNode*>(ctx);
  node->directory->on_line_event(node->id, line, from, to);
}

void MemorySystem::retire_instructions(CoreId core, std::uint64_t n) {
  FSML_DCHECK(core < nodes_.size());
  count(core, RawEvent::kInstructionsRetired, n);
  if (!observers_.empty())
    for (AccessObserver* obs : observers_) obs->on_instructions(core, n);
}

void MemorySystem::account_cycles(CoreId core, Cycles cycles) {
  FSML_DCHECK(core < nodes_.size());
  count(core, RawEvent::kCyclesTotal, cycles);
}

AccessResult MemorySystem::access(CoreId core, Addr addr, std::uint32_t size,
                                  AccessType type, Cycles now) {
  FSML_DCHECK(core < nodes_.size());
  FSML_DCHECK(size >= 1);

  // One instruction retires per access.
  count(core, RawEvent::kInstructionsRetired, 1);
  switch (type) {
    case AccessType::kLoad:
      count(core, RawEvent::kLoadsRetired, 1);
      break;
    case AccessType::kStore:
      count(core, RawEvent::kStoresRetired, 1);
      break;
    case AccessType::kRmw:
      count(core, RawEvent::kAtomicsRetired, 1);
      break;
  }

  const std::uint32_t line_bytes = config_.l1d.line_bytes;
  const Addr first_line = config_.l1d.line_addr(addr);
  const Addr last_line = config_.l1d.line_addr(addr + size - 1);

  AccessResult total{};
  bool first = true;
  for (Addr line = first_line; line <= last_line; line += line_bytes) {
    AccessResult r = access_line(core, line, type, now + total.latency);
    total.latency += r.latency;
    total.dtlb_miss = total.dtlb_miss || r.dtlb_miss;
    if (first || static_cast<int>(r.level) > static_cast<int>(total.level))
      total.level = r.level;  // report the deepest service level
    first = false;
  }

  if (!observers_.empty()) {
    const AccessRecord record{core, addr, size, type, total.level, now};
    for (AccessObserver* obs : observers_) obs->on_access(record);
  }
  return total;
}

AccessResult MemorySystem::access_line(CoreId core, Addr line,
                                       AccessType type, Cycles now) {
  // A read-modify-write is a load (paying its miss latency synchronously —
  // the reason `x += v` on a contended line stalls the pipeline) followed
  // by a store that drains through the store buffer.
  if (type == AccessType::kRmw) {
    AccessResult load_part = access_line(core, line, AccessType::kLoad, now);
    const AccessResult store_part =
        access_line(core, line, AccessType::kStore, now + load_part.latency);
    load_part.latency += store_part.latency;
    load_part.dtlb_miss = load_part.dtlb_miss || store_part.dtlb_miss;
    if (static_cast<int>(store_part.level) >
        static_cast<int>(load_part.level))
      load_part.level = store_part.level;
    return load_part;
  }

  CoreNode& node = nodes_[core];
  const CycleModel& cm = config_.cycles;
  AccessResult result{};

  // Address translation first; the walk penalty applies to the whole access.
  if (node.dtlb.access(line)) {
    count(core, RawEvent::kDtlbHit, 1);
  } else {
    count(core, RawEvent::kDtlbMiss, 1);
    result.dtlb_miss = true;
    result.latency += cm.tlb_walk;
  }

  if (type == AccessType::kLoad) {
    const MesiState s1 = node.l1.touch(line);
    if (s1 != MesiState::kInvalid) {
      // Present, but is the fill that brought it still in flight? Then the
      // load merges with the fill buffer entry rather than hitting L1
      // proper (MEM_LOAD_RETIRED.HIT_LFB) and waits for the fill.
      if (const auto completion = node.lfb.pending_fill(line, now)) {
        count(core, RawEvent::kL1dHitLfb, 1);
        result.level = ServiceLevel::kLfb;
        const Cycles wait = *completion > now ? *completion - now : 0;
        result.latency += std::max<Cycles>(cm.lfb_hit, wait);
        count(core, RawEvent::kLoadStallCycles,
              result.latency > cm.l1_hit ? result.latency - cm.l1_hit : 0);
        return result;
      }
      count(core, RawEvent::kL1dLoadHit, 1);
      count(core, RawEvent::kMemLoadRetiredL1Hit, 1);
      result.level = ServiceLevel::kL1;
      result.latency += cm.l1_hit;
      return result;
    }

    count(core, RawEvent::kL1dLoadMiss, 1);
    count(core, RawEvent::kL2DemandRequests, 1);
    const MesiState s2 = node.l2.touch(line);
    if (s2 != MesiState::kInvalid) {
      count(core, RawEvent::kL2Hit, 1);
      count(core, RawEvent::kMemLoadRetiredL2Hit, 1);
      fill_private(core, line, s2);  // bring into L1 (L2 state unchanged)
      result.level = ServiceLevel::kL2;
      result.latency += cm.l2_hit;
      // Hits on prefetched lines keep the streamer running ahead.
      maybe_stream_prefetch(core, line, now, /*allocate=*/false);
    } else {
      count(core, RawEvent::kL2DemandIState, 1);
      count(core, RawEvent::kL2Miss, 1);
      count(core, RawEvent::kL2LdMiss, 1);
      count(core, RawEvent::kOffcoreDemandRdData, 1);
      const LineResult lr =
          service_request(core, line, /*want_ownership=*/false,
                          now + result.latency);
      fill_private(core, line, lr.fill_state);
      result.level = lr.level;
      result.latency += cm.latency_for(lr.level) + lr.extra_latency;
      node.lfb.insert(line, now + result.latency, now);
      // Prefetches overlap the demand miss: issue them at the demand's
      // issue time, not after its latency.
      maybe_stream_prefetch(core, line, now, /*allocate=*/true);
      switch (lr.level) {
        case ServiceLevel::kL3:
          count(core, RawEvent::kMemLoadRetiredL3Hit, 1);
          break;
        case ServiceLevel::kDram:
          count(core, RawEvent::kMemLoadRetiredDram, 1);
          break;
        case ServiceLevel::kPeerHit:
        case ServiceLevel::kPeerHitM:
          count(core, RawEvent::kMemLoadRetiredPeer, 1);
          break;
        default:
          break;
      }
    }
    count(core, RawEvent::kLoadStallCycles,
          result.latency > cm.l1_hit ? result.latency - cm.l1_hit : 0);
    return result;
  }

  // --- Store / RMW path ----------------------------------------------------
  // Determine the drain latency (the background cost of obtaining ownership
  // and writing the line); the core itself only pays commit + stall.
  Cycles drain_latency = 0;
  bool fill_lfb = false;

  const MesiState s1 = node.l1.touch(line);
  if (s1 == MesiState::kModified) {
    count(core, RawEvent::kL1dStoreHit, 1);
    result.level = ServiceLevel::kL1;
    drain_latency = cm.l1_hit;
  } else if (s1 == MesiState::kExclusive) {
    count(core, RawEvent::kL1dStoreHit, 1);
    count(core, RawEvent::kTransEM, 1);
    node.l1.set_state(line, MesiState::kModified);
    node.l2.set_state(line, MesiState::kModified);
    result.level = ServiceLevel::kL1;
    drain_latency = cm.l1_hit;
  } else {
    count(core, RawEvent::kL1dStoreMiss, 1);
    count(core, RawEvent::kL2DemandRequests, 1);
    const MesiState s2 = node.l2.touch(line);
    if (s2 == MesiState::kModified || s2 == MesiState::kExclusive) {
      count(core, RawEvent::kL2Hit, 1);
      if (s2 == MesiState::kExclusive) count(core, RawEvent::kTransEM, 1);
      node.l2.set_state(line, MesiState::kModified);
      fill_private(core, line, MesiState::kModified);
      result.level = ServiceLevel::kL2;
      drain_latency = cm.l2_hit;
      // Keep a detected RFO stream running ahead.
      maybe_stream_prefetch(core, line, now, /*allocate=*/false);
    } else if (s2 == MesiState::kShared) {
      // Upgrade: we hold the line Shared; invalidate every other holder.
      count(core, RawEvent::kL2Hit, 1);
      count(core, RawEvent::kL2RfoHitS, 1);
      count(core, RawEvent::kRfoUpgrades, 1);
      count(core, RawEvent::kTransSM, 1);
      bool remote_sharer = false;
      // Every holder except ourselves gets invalidated, in core order (the
      // same order the peer scan visited them). Snapshot the mask first:
      // snoop_peer mutates the directory entry as peers drop the line.
      SharerMask peers = line_holders(line).sharers;
      sharer_index_.clear(peers, core);
      sharer_index_.for_each(peers, [&](CoreId peer) {
        snoop_peer(peer, line, /*for_ownership=*/true);
        count(core, RawEvent::kInvalidationsSent, 1);
        if (socket_of(peer) != socket_of(core)) remote_sharer = true;
      });
      invalidate_other_l3s(socket_of(core), line);
      node.l2.set_state(line, MesiState::kModified);
      if (node.l1.contains(line))
        node.l1.set_state(line, MesiState::kModified);
      result.level = ServiceLevel::kUpgrade;
      drain_latency = cm.upgrade;
      if (remote_sharer) {
        count(core, RawEvent::kCrossSocketTransfers, 1);
        drain_latency += cm.cross_socket_hop();
      }
    } else {
      count(core, RawEvent::kL2DemandIState, 1);
      count(core, RawEvent::kL2Miss, 1);
      count(core, RawEvent::kL2StMiss, 1);
      count(core, RawEvent::kOffcoreRfo, 1);
      const LineResult lr = service_request(core, line, /*want_ownership=*/true,
                                            now + result.latency);
      fill_private(core, line, MesiState::kModified);
      result.level = lr.level;
      drain_latency = cm.latency_for(lr.level) + lr.extra_latency;
      fill_lfb = true;
      // The streamer also covers RFO streams (streaming writes), so linear
      // output stores do not pay the full miss chain per line.
      maybe_stream_prefetch(core, line, now, /*allocate=*/true);
    }
  }

  // Store-buffer timing: stall only if the queue is full.
  node.store_buffer.retire_completed(now);
  const Cycles stall = node.store_buffer.stall_until_slot(now);
  if (stall > 0) {
    count(core, RawEvent::kStoreBufferStallCycles, stall);
    node.store_buffer.retire_completed(now + stall);
  }
  const Cycles completion = node.store_buffer.push(now + stall, drain_latency);
  if (fill_lfb) node.lfb.insert(line, completion, now);
  result.latency += cm.store_commit + stall;
  return result;
}

void MemorySystem::maybe_stream_prefetch(CoreId core, Addr line, Cycles now,
                                         bool allocate) {
  CoreNode& node = nodes_[core];
  const Addr line_bytes = config_.l1d.line_bytes;

  // A demand access continues a stream if it falls just behind (or at) the
  // stream's prefetch frontier.
  Addr* frontier = nullptr;
  for (Addr& next : node.stream_table) {
    if (next == 0) continue;
    if (line + line_bytes >= next - kPrefetchAhead * line_bytes &&
        line < next + line_bytes) {
      frontier = &next;
      break;
    }
  }
  if (frontier == nullptr) {
    if (allocate) {
      node.stream_table[node.stream_rr] = line + line_bytes;
      node.stream_rr = (node.stream_rr + 1) % node.stream_table.size();
    }
    return;
  }

  // Hysteresis: refill only when the demand stream has consumed most of the
  // window, then issue a whole burst. The target list is a fixed inline
  // buffer — the burst is bounded, so a per-burst heap allocation here was
  // pure hot-path overhead.
  if (*frontier > line + (kPrefetchAhead - kPrefetchBurst) * line_bytes)
    return;
  std::array<Addr, 2 * kPrefetchBurst> targets;
  std::size_t num_targets = 0;
  while (*frontier <= line + kPrefetchAhead * line_bytes &&
         num_targets < targets.size()) {
    targets[num_targets++] = *frontier;
    *frontier += line_bytes;
  }
  for (std::size_t t = 0; t < num_targets; ++t) {
    const Addr target = targets[t];
    if (node.l2.contains(target)) continue;
    // Never disturb a line another core owns (M/E) — the prefetcher queues
    // behind the coherence protocol on real parts too. One directory
    // lookup answers both probes the peer scan used to make.
    const LineHolders holders = line_holders(target);
    const bool owned_elsewhere =
        holders.owner != CoherenceDirectory::kNoOwner && holders.owner != core;
    SharerMask s_mask = holders.sharers;
    sharer_index_.clear(s_mask, core);
    if (holders.owner != CoherenceDirectory::kNoOwner)
      sharer_index_.clear(s_mask, holders.owner);
    const bool shared_elsewhere = s_mask.any();
    if (owned_elsewhere) continue;
    Cache& local_l3 = l3s_[socket_of(core)];
    if (!local_l3.contains(target)) {
      // Prefetches are the lowest-priority memory traffic: a saturated
      // channel refuses them (kPrefetchDropped) rather than queueing them —
      // otherwise the backlog they create would silently defer onto later
      // demand misses.
      if (dram_queue_delay(now, target, /*demand=*/false) ==
          kPrefetchDropped)
        continue;
      count(core, RawEvent::kHwPrefetchesIssued, 1);
      count(core, RawEvent::kDramReads, 1);
      count(core,
            dram_home_socket(target) == socket_of(core)
                ? RawEvent::kDramReadsLocal
                : RawEvent::kDramReadsRemote,
            1);
      fill_l3(socket_of(core), target, MesiState::kExclusive);
    } else {
      count(core, RawEvent::kHwPrefetchesIssued, 1);
      local_l3.touch(target);
    }
    count(core, RawEvent::kPrefetchFillsL2, 1);
    fill_private(core, target,
                 shared_elsewhere ? MesiState::kShared : MesiState::kExclusive,
                 /*fill_l1=*/false);
    // A prefetch fill is "in flight" briefly; demand loads arriving before
    // it lands merge with it (HIT_LFB).
    node.lfb.insert(target, now + config_.cycles.l2_hit, now);
  }
}

bool MemorySystem::stream_would_prefetch(CoreId core, Addr line) const {
  const CoreNode& node = nodes_[core];
  const Addr line_bytes = config_.l1d.line_bytes;
  // Mirror of maybe_stream_prefetch's frontier match (first hit wins) and
  // hysteresis test; the callers that pair with this probe never allocate,
  // so a missing frontier means no mutation at all.
  for (const Addr next : node.stream_table) {
    if (next == 0) continue;
    if (line + line_bytes >= next - kPrefetchAhead * line_bytes &&
        line < next + line_bytes) {
      return next <= line + (kPrefetchAhead - kPrefetchBurst) * line_bytes;
    }
  }
  return false;
}

MemorySystem::AccessClass MemorySystem::classify_access(
    CoreId core, Addr addr, std::uint32_t size, AccessType type,
    Cycles now) const {
  FSML_DCHECK(core < nodes_.size());
  // A straddling access couples its lines (the first line's fill can evict
  // the second before it is touched), so only single-line accesses are
  // candidates for group-local execution.
  if (config_.l1d.line_addr(addr) !=
      config_.l1d.line_addr(addr + size - 1))
    return {};
  const Addr line = config_.l1d.line_addr(addr);
  const CoreNode& node = nodes_[core];
  const CycleModel& cm = config_.cycles;

  AccessClass cls;
  if (!node.dtlb.would_hit(line)) cls.latency += cm.tlb_walk;

  // The load half (plain loads, and the synchronous load of an RMW).
  MesiState state = node.l1.state_of(line);
  if (type == AccessType::kLoad || type == AccessType::kRmw) {
    if (state != MesiState::kInvalid) {
      if (const auto completion = node.lfb.peek_pending_fill(line, now)) {
        const Cycles wait = *completion > now ? *completion - now : 0;
        cls.latency += std::max<Cycles>(cm.lfb_hit, wait);
      } else {
        cls.latency += cm.l1_hit;
      }
    } else {
      // L1 miss. An L2 hit fills only this core's L1 — local, unless it
      // would wake the stream prefetcher, whose burst probes the directory
      // and fills shared levels.
      state = node.l2.state_of(line);
      if (state == MesiState::kInvalid) return {};
      if (stream_would_prefetch(core, line)) return {};
      cls.latency += cm.l2_hit;
    }
    if (type == AccessType::kLoad) {
      cls.local = true;
      return cls;
    }
    // RMW store half: after the load half the line sits in L1 in `state`;
    // anything short of M/E means an upgrade (peer invalidations).
    if (state != MesiState::kModified && state != MesiState::kExclusive)
      return {};
    // Its second translation always hits (the load half installed the
    // page), so the store half adds only commit + store-buffer stall at
    // its own issue time.
    cls.latency +=
        cm.store_commit + node.store_buffer.peek_stall(now + cls.latency);
    cls.local = true;
    return cls;
  }

  // Plain store: local only while ownership is already held — an L1 M/E
  // hit, or an L2 M/E hit whose fill touches nothing outside this core
  // (E->M stays a core-private transition; the directory's owner-state
  // field update is in place on a line no concurrent probe may read).
  if (state != MesiState::kModified && state != MesiState::kExclusive) {
    state = node.l2.state_of(line);
    if (state != MesiState::kModified && state != MesiState::kExclusive)
      return {};
    if (stream_would_prefetch(core, line)) return {};
  }
  cls.latency += cm.store_commit + node.store_buffer.peek_stall(now);
  cls.local = true;
  return cls;
}



Cycles MemorySystem::dram_queue_delay(Cycles now, Addr line, bool demand) {
  const Addr row = line / config_.cycles.dram_row_bytes;
  // The line's home socket owns the servicing controller: NUMA machines
  // split their DRAM bandwidth across one controller per socket.
  DramController& ctl = dram_[dram_home_socket(line)];
  // Banks interleave at 512-byte granularity: a prefetch burst (8
  // consecutive lines) lands on one bank as a single row activation plus
  // row hits, successive bursts rotate banks, and no stream can monopolize
  // a bank for a whole 4 KiB row. This matches real controllers' channel/
  // bank interleave functions sitting between line and row granularity.
  constexpr Addr kBankInterleaveBytes = 512;
  const std::size_t bank_index =
      (line / kBankInterleaveBytes) % ctl.banks.size();

  const auto occupy = [&](DramBank& bank, Cycles& bus_free) -> Cycles {
    const bool row_hit = bank.open_row == row;
    bank.open_row = row;
    const Cycles bank_busy =
        row_hit ? config_.cycles.dram_bus_occupancy
                : config_.cycles.dram_row_miss_occupancy;
    const Cycles start = std::max({now, bank.free_at, bus_free});
    bank.free_at = start + bank_busy;
    bus_free = start + config_.cycles.dram_bus_occupancy;
    return start - now;
  };

  if (!demand) {
    // Prefetch admission: accept only while the channel's run-ahead is
    // bounded; a saturated channel sheds prefetches one by one (duty-cycled
    // prefetching) instead of building an unbounded backlog, and resumes as
    // soon as the queue drains.
    DramBank& bank = ctl.banks[bank_index];
    const Cycles start = std::max({now, bank.free_at, ctl.bus_free});
    if (start - now > kPrefetchAdmissionWindow) return kPrefetchDropped;
    return occupy(bank, ctl.bus_free);
  }
  // Demand traffic has its own service domain (FR-FCFS reserves service
  // share for demand; a prefetch backlog can never delay it).
  return occupy(ctl.demand_banks[bank_index], ctl.demand_bus_free);
}

MemorySystem::LineResult MemorySystem::service_request(CoreId core, Addr line,
                                                       bool want_ownership,
                                                       Cycles now) {
  FSML_DCHECK(nodes_[core].l2.state_of(line) == MesiState::kInvalid);
  const std::uint32_t my_socket = socket_of(core);

  // The (unique) M/E owner and the S sharers across every socket, from one
  // O(1) directory lookup (or the reference peer scan). The requester holds
  // nothing here, so its bit cannot be set.
  const LineHolders holders = line_holders(line);
  const CoreId owner = holders.owner;
  const MesiState owner_state = holders.owner_state;
  FSML_DCHECK(!sharer_index_.test(holders.sharers, core));
  SharerMask sharer_mask = holders.sharers;
  if (owner != CoherenceDirectory::kNoOwner)
    sharer_index_.clear(sharer_mask, owner);

  // Cross-socket transfers pay the QPI wire hop plus the home agent's
  // directory lookup (cross_socket_hop()).
  const auto qpi_extra = [&](std::uint32_t other_socket) -> Cycles {
    if (other_socket == my_socket) return 0;
    count(core, RawEvent::kCrossSocketTransfers, 1);
    return config_.cycles.cross_socket_hop();
  };

  if (owner_state == MesiState::kModified) {
    const std::uint32_t owner_socket = socket_of(owner);
    snoop_peer(owner, line, want_ownership);
    // The transfer refreshes the dirty copy in the owner's socket L3 and
    // installs the line in ours.
    writeback_to_l3(owner_socket, line);
    if (want_ownership) {
      invalidate_other_l3s(my_socket, line);
      writeback_to_l3(my_socket, line);
      count(core, RawEvent::kInvalidationsSent, 1);
    } else if (owner_socket != my_socket) {
      fill_l3(my_socket, line, MesiState::kShared);
    }
    count(core, RawEvent::kHitmTransfersIn, 1);
    count(core,
          owner_socket == my_socket ? RawEvent::kHitmTransfersLocal
                                    : RawEvent::kHitmTransfersRemote,
          1);
    return {ServiceLevel::kPeerHitM,
            want_ownership ? MesiState::kModified : MesiState::kShared,
            qpi_extra(owner_socket)};
  }
  if (owner_state == MesiState::kExclusive) {
    const std::uint32_t owner_socket = socket_of(owner);
    snoop_peer(owner, line, want_ownership);
    if (want_ownership) {
      invalidate_other_l3s(my_socket, line);
      fill_l3(my_socket, line, MesiState::kExclusive);
      count(core, RawEvent::kInvalidationsSent, 1);
    } else if (owner_socket != my_socket) {
      fill_l3(my_socket, line, MesiState::kShared);
    }
    count(core, RawEvent::kCleanTransfersIn, 1);
    return {ServiceLevel::kPeerHit,
            want_ownership ? MesiState::kModified : MesiState::kShared,
            qpi_extra(owner_socket)};
  }

  // No private owner. Serve from the nearest L3 holding the line.
  const MesiState local_l3 = l3s_[my_socket].touch(line);
  std::uint32_t home_socket = my_socket;
  if (local_l3 == MesiState::kInvalid) {
    bool found = false;
    for (std::uint32_t sock = 0; sock < l3s_.size(); ++sock) {
      if (sock == my_socket) continue;
      if (l3s_[sock].contains(line)) {
        home_socket = sock;
        found = true;
        break;
      }
    }
    if (!found) {
      // Not cached anywhere: fetch from the line's home memory controller
      // into our socket's L3. A remote home adds the interconnect hop and
      // the remote-read penalty on top of the (home-side) queueing delay.
      const std::uint32_t dram_home = dram_home_socket(line);
      count(core, RawEvent::kL3Miss, 1);
      count(core, RawEvent::kDramReads, 1);
      count(core,
            dram_home == my_socket ? RawEvent::kDramReadsLocal
                                   : RawEvent::kDramReadsRemote,
            1);
      fill_l3(my_socket, line, MesiState::kExclusive);
      Cycles extra = dram_queue_delay(now, line);
      if (dram_home != my_socket) {
        count(core, RawEvent::kCrossSocketTransfers, 1);
        extra +=
            config_.cycles.cross_socket_hop() + config_.cycles.dram_remote_extra;
      }
      return {ServiceLevel::kDram,
              want_ownership ? MesiState::kModified : MesiState::kExclusive,
              extra};
    }
    count(core, RawEvent::kRemoteL3Hits, 1);
  }
  count(core, RawEvent::kL3Hit, 1);

  if (want_ownership) {
    sharer_index_.for_each(sharer_mask, [&](CoreId peer) {
      snoop_peer(peer, line, /*for_ownership=*/true);
      count(core, RawEvent::kInvalidationsSent, 1);
    });
    invalidate_other_l3s(my_socket, line);
    if (!l3s_[my_socket].contains(line))
      fill_l3(my_socket, line, MesiState::kExclusive);
    return {ServiceLevel::kL3, MesiState::kModified,
            qpi_extra(home_socket)};
  }
  if (!l3s_[my_socket].contains(line))
    fill_l3(my_socket, line, MesiState::kShared);
  return {ServiceLevel::kL3,
          sharer_mask.none() ? MesiState::kExclusive : MesiState::kShared,
          qpi_extra(home_socket)};
}

MemorySystem::LineHolders MemorySystem::scan_line_holders(Addr line) const {
  LineHolders h;
  for (CoreId peer = 0; peer < nodes_.size(); ++peer) {
    const MesiState s = nodes_[peer].l2.state_of(line);
    if (s == MesiState::kInvalid) continue;
    sharer_index_.set(h.sharers, peer);
    if (s == MesiState::kModified || s == MesiState::kExclusive) {
      FSML_DCHECK(h.owner == CoherenceDirectory::kNoOwner);
      h.owner = peer;
      h.owner_state = s;
    }
  }
  return h;
}

MemorySystem::LineHolders MemorySystem::line_holders(Addr line) const {
  if (!config_.directory_enabled()) return scan_line_holders(line);
  LineHolders h;
  if (const CoherenceDirectory::Entry* e = dir_.lookup(line)) {
    h.owner = e->owner;
    h.owner_state = e->owner_state;
    h.sharers = e->sharers;
  }
#ifndef NDEBUG
  // Exact-sync cross-validation: the directory must answer precisely what
  // the full peer scan would have.
  const LineHolders ref = scan_line_holders(line);
  FSML_DCHECK(h.owner == ref.owner && h.owner_state == ref.owner_state &&
              h.sharers == ref.sharers);
#endif
  return h;
}

MesiState MemorySystem::snoop_peer(CoreId peer, Addr line,
                                   bool for_ownership) {
  CoreNode& node = nodes_[peer];
  const MesiState s = node.l2.state_of(line);
  if (s == MesiState::kInvalid) return s;
  count(peer, RawEvent::kSnoopRequestsReceived, 1);
  switch (s) {
    case MesiState::kModified:
      count(peer, RawEvent::kSnoopResponseHitM, 1);
      if (for_ownership) {
        count(peer, RawEvent::kTransMI, 1);
        count(peer, RawEvent::kInvalidationsReceived, 1);
        node.l1.invalidate(line);
        node.l2.invalidate(line);
      } else {
        count(peer, RawEvent::kTransMS, 1);
        if (node.l1.contains(line)) node.l1.set_state(line, MesiState::kShared);
        node.l2.set_state(line, MesiState::kShared);
      }
      break;
    case MesiState::kExclusive:
      count(peer, RawEvent::kSnoopResponseHitE, 1);
      if (for_ownership) {
        count(peer, RawEvent::kTransEI, 1);
        count(peer, RawEvent::kInvalidationsReceived, 1);
        node.l1.invalidate(line);
        node.l2.invalidate(line);
      } else {
        count(peer, RawEvent::kTransES, 1);
        if (node.l1.contains(line)) node.l1.set_state(line, MesiState::kShared);
        node.l2.set_state(line, MesiState::kShared);
      }
      break;
    case MesiState::kShared:
      count(peer, RawEvent::kSnoopResponseHit, 1);
      FSML_DCHECK(for_ownership);  // read requests never snoop S holders
      count(peer, RawEvent::kTransSI, 1);
      count(peer, RawEvent::kInvalidationsReceived, 1);
      node.l1.invalidate(line);
      node.l2.invalidate(line);
      break;
    case MesiState::kInvalid:
      break;
  }
  return s;
}

void MemorySystem::record_fill_transition(CoreId core, MesiState state) {
  switch (state) {
    case MesiState::kShared:
      count(core, RawEvent::kTransIS, 1);
      break;
    case MesiState::kExclusive:
      count(core, RawEvent::kTransIE, 1);
      break;
    case MesiState::kModified:
      count(core, RawEvent::kTransIM, 1);
      break;
    case MesiState::kInvalid:
      break;
  }
}

void MemorySystem::fill_private(CoreId core, Addr line, MesiState state,
                                bool fill_l1) {
  CoreNode& node = nodes_[core];

  if (node.l2.state_of(line) == MesiState::kInvalid) {
    count(core, RawEvent::kL2Fill, 1);
    record_fill_transition(core, state);
    switch (state) {
      case MesiState::kShared:
        count(core, RawEvent::kL2LinesInS, 1);
        break;
      case MesiState::kExclusive:
        count(core, RawEvent::kL2LinesInE, 1);
        break;
      case MesiState::kModified:
        count(core, RawEvent::kL2LinesInM, 1);
        break;
      case MesiState::kInvalid:
        break;
    }
    const auto evicted = node.l2.fill(line, state);
    if (evicted) {
      // Inclusion: the victim leaves L1 too; its dirtiness travels along.
      const MesiState l1_victim = node.l1.invalidate(evicted->line_addr);
      const bool dirty = evicted->state == MesiState::kModified ||
                         l1_victim == MesiState::kModified;
      if (dirty) {
        count(core, RawEvent::kL2LinesOutDemandDirty, 1);
        writeback_to_l3(socket_of(core), evicted->line_addr);
      } else {
        count(core, RawEvent::kL2LinesOutDemandClean, 1);
      }
    }
  } else {
    node.l2.set_state(line, state);
  }

  if (!fill_l1) return;
  if (node.l1.state_of(line) == state) return;
  count(core, RawEvent::kL1dReplacement, 1);
  const auto evicted = node.l1.fill(line, state);
  if (evicted) {
    if (evicted->state == MesiState::kModified) {
      count(core, RawEvent::kL1dEvictDirty, 1);
      // Writeback into L2; inclusion guarantees the line is resident there.
      node.l2.set_state(evicted->line_addr, MesiState::kModified);
    } else {
      count(core, RawEvent::kL1dEvictClean, 1);
    }
  }
}

void MemorySystem::fill_l3(std::uint32_t socket, Addr line, MesiState state) {
  const auto evicted = l3s_[socket].fill(line, state);
  if (!evicted) return;
  // Inclusion: back-invalidate the victim in this socket's cores; a
  // Modified private copy (or a dirty L3 copy) must reach memory.
  bool dirty = evicted->state == MesiState::kModified;
  for (CoreId peer = 0; peer < nodes_.size(); ++peer) {
    if (socket_of(peer) != socket) continue;
    CoreNode& node = nodes_[peer];
    const MesiState s = node.l2.state_of(evicted->line_addr);
    if (s == MesiState::kInvalid) continue;
    if (s == MesiState::kModified) dirty = true;
    const MesiState l1s = node.l1.invalidate(evicted->line_addr);
    if (l1s == MesiState::kModified) dirty = true;
    node.l2.invalidate(evicted->line_addr);
    count(peer, RawEvent::kInvalidationsReceived, 1);
    switch (s) {
      case MesiState::kModified:
        count(peer, RawEvent::kTransMI, 1);
        break;
      case MesiState::kExclusive:
        count(peer, RawEvent::kTransEI, 1);
        break;
      case MesiState::kShared:
        count(peer, RawEvent::kTransSI, 1);
        break;
      case MesiState::kInvalid:
        break;
    }
  }
  if (dirty && counting_) {
    // Attribute the memory write to the machine, not a specific core: use
    // core 0's bank (the aggregate view is what the PMU layer reads).
    nodes_[0].counters.add(RawEvent::kDramWrites, 1);
  }
}

void MemorySystem::writeback_to_l3(std::uint32_t socket, Addr line) {
  if (l3s_[socket].contains(line)) {
    l3s_[socket].set_state(line, MesiState::kModified);
  } else {
    fill_l3(socket, line, MesiState::kModified);
  }
}

void MemorySystem::invalidate_other_l3s(std::uint32_t keep_socket,
                                        Addr line) {
  for (std::uint32_t sock = 0; sock < l3s_.size(); ++sock)
    if (sock != keep_socket) l3s_[sock].invalidate(line);
}

bool MemorySystem::check_coherence_invariant() const {
  // The directory mirrors every L2 exactly (proven against a full scan
  // first), so the cross-core single-writer check is one pass over its
  // entries — no per-line multimap needed.
  if (!check_directory_invariant()) return false;
  bool ok = true;
  dir_.for_each([&](const CoherenceDirectory::Entry& e) {
    if (e.owner == CoherenceDirectory::kNoOwner) return;
    SharerMask others = e.sharers;
    sharer_index_.clear(others, e.owner);
    if (others.any()) ok = false;
  });
  if (!ok) return false;
  for (const CoreNode& node : nodes_) {
    // L1 state must agree with the same core's L2 (or be absent).
    node.l1.for_each_line([&](Addr line, MesiState s) {
      if (node.l2.state_of(line) != s) ok = false;
    });
    if (!ok) return false;
  }
  return true;
}

bool MemorySystem::check_directory_invariant() const {
  bool ok = true;
  // Every resident L2 line must be tracked with exactly the right record...
  std::size_t resident = 0;
  for (CoreId core = 0; core < nodes_.size(); ++core) {
    nodes_[core].l2.for_each_line([&](Addr line, MesiState s) {
      ++resident;
      const CoherenceDirectory::Entry* e = dir_.lookup(line);
      if (e == nullptr || !sharer_index_.test(e->sharers, core)) {
        ok = false;
        return;
      }
      const bool exclusive_like =
          s == MesiState::kModified || s == MesiState::kExclusive;
      if (exclusive_like && (e->owner != core || e->owner_state != s))
        ok = false;
      if (!exclusive_like && e->owner == core) ok = false;
    });
  }
  if (!ok) return false;
  // ...and the directory must track nothing else: the (core, line) pairs it
  // holds are exactly the resident ones, every entry is non-empty, and a
  // recorded owner is always among its entry's sharers.
  std::size_t tracked = 0;
  std::size_t entries = 0;
  dir_.for_each([&](const CoherenceDirectory::Entry& e) {
    ++entries;
    tracked += static_cast<std::size_t>(e.sharers.count());
    if (e.sharers.none()) ok = false;
    if (e.owner != CoherenceDirectory::kNoOwner &&
        !sharer_index_.test(e.sharers, e.owner))
      ok = false;
  });
  return ok && tracked == resident && entries == dir_.size();
}

bool MemorySystem::check_inclusion() const {
  for (CoreId core = 0; core < nodes_.size(); ++core) {
    const CoreNode& node = nodes_[core];
    const Cache& socket_l3 = l3s_[socket_of(core)];
    bool ok = true;
    node.l1.for_each_line([&](Addr line, MesiState) {
      if (!node.l2.contains(line)) ok = false;
    });
    node.l2.for_each_line([&](Addr line, MesiState) {
      if (!socket_l3.contains(line)) ok = false;
    });
    if (!ok) return false;
  }
  return true;
}

}  // namespace fsml::sim
