// Timing-only models of the store buffer and the line-fill buffers.
//
// Stores retire into a fixed-capacity drain queue and complete in the
// background; the core only stalls when the queue is full. This is the
// mechanism that makes false sharing expensive on real hardware: each store
// to a contended line drains at cross-core RFO latency, the queue fills, and
// the core back-pressures (RESOURCE_STALLS.STORE).
//
// The line-fill buffer tracks lines with fills still in flight; a load that
// misses L1 but matches an in-flight fill merges with it instead of issuing
// a new request (MEM_LOAD_RETIRED.HIT_LFB).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sim/types.hpp"
#include "util/check.hpp"

namespace fsml::sim {

/// Fixed-capacity queue of background-drain completion times with `ports`
/// parallel drain engines: up to `ports` store misses proceed through the
/// memory system concurrently (they occupy distinct line-fill buffers on
/// real parts), so one slow coherence transfer does not serialize the
/// cheap L1-hit drains behind it. The core stalls only when `capacity`
/// stores are outstanding.
class DrainQueue {
 public:
  explicit DrainQueue(std::uint32_t capacity, std::uint32_t ports = 4)
      : capacity_(capacity), ports_(std::min(ports, capacity)) {
    FSML_CHECK(capacity >= 1);
    FSML_CHECK(ports >= 1);
    port_free_.assign(ports_, 0);
  }

  /// Drops entries whose drain completed at or before `now`.
  void retire_completed(Cycles now) {
    while (!q_.empty() && q_.front() <= now) q_.pop_front();
  }

  /// Cycles the core must stall at `now` before a slot is free.
  /// Call retire_completed(now) first.
  Cycles stall_until_slot(Cycles now) const {
    if (q_.size() < capacity_) return 0;
    return q_.front() > now ? q_.front() - now : 0;
  }

  /// What retire_completed(now) + stall_until_slot(now) would report,
  /// without dropping completed entries (read-only access classification).
  Cycles peek_stall(Cycles now) const {
    const auto first_live = std::upper_bound(q_.begin(), q_.end(), now);
    if (static_cast<std::size_t>(q_.end() - first_live) < capacity_) return 0;
    return *first_live - now;
  }

  /// Enqueues a drain of `drain_latency` cycles starting when the least
  /// loaded drain port frees up; returns its completion time.
  Cycles push(Cycles now, Cycles drain_latency) {
    FSML_DCHECK(q_.size() < capacity_);
    auto port = std::min_element(port_free_.begin(), port_free_.end());
    const Cycles start = std::max(now, *port);
    const Cycles completion = start + drain_latency;
    *port = completion;
    // Keep outstanding completions sorted so front() is the earliest.
    q_.insert(std::lower_bound(q_.begin(), q_.end(), completion), completion);
    return completion;
  }

  std::size_t size() const { return q_.size(); }
  std::uint32_t capacity() const { return capacity_; }
  bool empty() const { return q_.empty(); }
  Cycles last_completion() const { return q_.empty() ? 0 : q_.back(); }

 private:
  std::uint32_t capacity_;
  std::uint32_t ports_;
  std::vector<Cycles> port_free_;
  std::deque<Cycles> q_;
};

/// Small fully-associative buffer of in-flight line fills.
class LineFillBuffer {
 public:
  explicit LineFillBuffer(std::uint32_t capacity) : capacity_(capacity) {
    FSML_CHECK(capacity >= 1);
    entries_.reserve(capacity);
  }

  /// Completion time of an in-flight fill of `line`, if any is pending at
  /// `now` (expired entries are pruned lazily).
  std::optional<Cycles> pending_fill(Addr line, Cycles now) {
    prune(now);
    for (const Entry& e : entries_)
      if (e.line == line) return e.completion;
    return std::nullopt;
  }

  /// What pending_fill(line, now) would report, without pruning expired
  /// entries (read-only access classification).
  std::optional<Cycles> peek_pending_fill(Addr line, Cycles now) const {
    for (const Entry& e : entries_)
      if (e.line == line && e.completion > now) return e.completion;
    return std::nullopt;
  }

  /// Records a fill of `line` completing at `completion`. Oldest entry is
  /// recycled when full (the hardware would stall; the timing difference is
  /// below the granularity this model cares about).
  void insert(Addr line, Cycles completion, Cycles now) {
    prune(now);
    for (Entry& e : entries_) {
      if (e.line == line) {
        e.completion = std::max(e.completion, completion);
        return;
      }
    }
    if (entries_.size() < capacity_) {
      entries_.push_back({line, completion});
      return;
    }
    std::size_t oldest = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i)
      if (entries_[i].completion < entries_[oldest].completion) oldest = i;
    entries_[oldest] = {line, completion};
  }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Addr line = 0;
    Cycles completion = 0;
  };

  void prune(Cycles now) {
    std::erase_if(entries_, [now](const Entry& e) { return e.completion <= now; });
  }

  std::uint32_t capacity_;
  std::vector<Entry> entries_;
};

}  // namespace fsml::sim
