// Instrumentation hook: external tools (the Zhao-style shadow detector, the
// SHERIFF-style epoch detector, tracing) observe every demand access the
// simulated cores make. This is the moral equivalent of binary
// instrumentation (Umbra / Pin) on a real machine.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace fsml::sim {

/// One observed demand access, delivered after the hierarchy serviced it.
struct AccessRecord {
  CoreId core = 0;
  Addr addr = 0;
  std::uint32_t size = 0;
  AccessType type = AccessType::kLoad;
  ServiceLevel level = ServiceLevel::kL1;
  Cycles issue_clock = 0;  ///< core-local clock at issue
};

class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  virtual void on_access(const AccessRecord& record) = 0;
  /// Called when `core` retires `count` non-memory instructions.
  virtual void on_instructions(CoreId core, std::uint64_t count) {
    (void)core;
    (void)count;
  }
};

}  // namespace fsml::sim
