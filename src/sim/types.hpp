// Fundamental types of the multicore memory-hierarchy simulator.
#pragma once

#include <cstdint>
#include <string_view>

namespace fsml::sim {

using Addr = std::uint64_t;     ///< simulated virtual address
using Cycles = std::uint64_t;   ///< core-local virtual time
using CoreId = std::uint32_t;

enum class AccessType : std::uint8_t {
  kLoad,   ///< demand data read
  kStore,  ///< demand write (issues RFO on miss / upgrade on S)
  kRmw,    ///< atomic read-modify-write; coherence behaviour of a store
};

constexpr bool is_write(AccessType t) {
  return t == AccessType::kStore || t == AccessType::kRmw;
}

/// MESI stable states of a line in a private cache.
enum class MesiState : std::uint8_t {
  kInvalid,
  kShared,
  kExclusive,
  kModified,
};

constexpr std::string_view to_string(MesiState s) {
  switch (s) {
    case MesiState::kInvalid: return "I";
    case MesiState::kShared: return "S";
    case MesiState::kExclusive: return "E";
    case MesiState::kModified: return "M";
  }
  return "?";
}

/// Where a demand access was ultimately serviced from.
enum class ServiceLevel : std::uint8_t {
  kL1,        ///< hit in the core's L1D
  kLfb,       ///< merged with an in-flight fill (line-fill buffer hit)
  kL2,        ///< hit in the core's private L2
  kPeerHit,   ///< supplied by another core holding the line S/E (clean)
  kPeerHitM,  ///< supplied by another core holding the line Modified (HITM)
  kL3,        ///< hit in the shared last-level cache
  kDram,      ///< serviced from memory
  kUpgrade,   ///< write hit on a Shared line: invalidate-only RFO upgrade
};

constexpr std::string_view to_string(ServiceLevel l) {
  switch (l) {
    case ServiceLevel::kL1: return "L1";
    case ServiceLevel::kLfb: return "LFB";
    case ServiceLevel::kL2: return "L2";
    case ServiceLevel::kPeerHit: return "PeerHit";
    case ServiceLevel::kPeerHitM: return "PeerHITM";
    case ServiceLevel::kL3: return "L3";
    case ServiceLevel::kDram: return "DRAM";
    case ServiceLevel::kUpgrade: return "Upgrade";
  }
  return "?";
}

/// Result of one demand access through the hierarchy.
struct AccessResult {
  ServiceLevel level = ServiceLevel::kL1;
  Cycles latency = 0;       ///< total cycles charged to the access
  bool dtlb_miss = false;
};

}  // namespace fsml::sim
