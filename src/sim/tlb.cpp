#include "sim/tlb.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace fsml::sim {

Dtlb::Dtlb(std::uint32_t entries, std::uint32_t ways, std::uint32_t page_bytes)
    : ways_(ways), page_bytes_(page_bytes) {
  FSML_CHECK(entries > 0 && ways > 0 && entries % ways == 0);
  FSML_CHECK(std::has_single_bit(static_cast<std::uint64_t>(page_bytes)));
  num_sets_ = entries / ways;
  FSML_CHECK(std::has_single_bit(num_sets_));
  entries_.resize(entries);
}

bool Dtlb::access(Addr addr) {
  const std::uint64_t vpn = addr / page_bytes_;
  const std::uint64_t set = vpn & (num_sets_ - 1);
  Entry* base = &entries_[set * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Entry& e = base[w];
    if (e.valid && e.vpn == vpn) {
      e.lru_stamp = ++stamp_;
      return true;
    }
  }
  // Miss: install over an invalid way or the LRU way.
  Entry* victim = base;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru_stamp < victim->lru_stamp) victim = &base[w];
  }
  victim->vpn = vpn;
  victim->valid = true;
  victim->lru_stamp = ++stamp_;
  return false;
}

bool Dtlb::would_hit(Addr addr) const {
  const std::uint64_t vpn = addr / page_bytes_;
  const std::uint64_t set = vpn & (num_sets_ - 1);
  const Entry* base = &entries_[set * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w)
    if (base[w].valid && base[w].vpn == vpn) return true;
  return false;
}

void Dtlb::reset() {
  for (Entry& e : entries_) e = Entry{};
  stamp_ = 0;
}

}  // namespace fsml::sim
