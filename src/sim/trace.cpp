#include "sim/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

#include "util/check.hpp"

namespace fsml::sim {

void Trace::add_access(const AccessRecord& record) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kAccess;
  ev.access = record;
  events_.push_back(ev);
  ++accesses_;
  max_core_ = std::max(max_core_, record.core);
}

void Trace::add_instructions(CoreId core, std::uint64_t count) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kInstructions;
  ev.core = core;
  ev.instructions = count;
  events_.push_back(ev);
  instructions_ += count;
  max_core_ = std::max(max_core_, core);
}

void Trace::save(std::ostream& os) const {
  os << "fsml-trace v1 " << events_.size() << '\n';
  for (const TraceEvent& ev : events_) {
    if (ev.kind == TraceEvent::Kind::kAccess) {
      const AccessRecord& a = ev.access;
      os << "A " << a.core << ' ' << a.addr << ' ' << a.size << ' '
         << static_cast<int>(a.type) << ' ' << static_cast<int>(a.level)
         << ' ' << a.issue_clock << '\n';
    } else {
      os << "I " << ev.core << ' ' << ev.instructions << '\n';
    }
  }
}

Trace Trace::load(std::istream& is) {
  std::string magic, version;
  std::size_t count = 0;
  is >> magic >> version >> count;
  FSML_CHECK_MSG(magic == "fsml-trace" && version == "v1",
                 "not a fsml-trace v1 file");
  Trace trace;
  for (std::size_t i = 0; i < count; ++i) {
    std::string kind;
    is >> kind;
    FSML_CHECK_MSG(static_cast<bool>(is), "truncated trace");
    if (kind == "A") {
      AccessRecord a;
      int type = 0, level = 0;
      is >> a.core >> a.addr >> a.size >> type >> level >> a.issue_clock;
      FSML_CHECK_MSG(static_cast<bool>(is), "malformed access record");
      a.type = static_cast<AccessType>(type);
      a.level = static_cast<ServiceLevel>(level);
      trace.add_access(a);
    } else if (kind == "I") {
      CoreId core = 0;
      std::uint64_t n = 0;
      is >> core >> n;
      FSML_CHECK_MSG(static_cast<bool>(is), "malformed instruction record");
      trace.add_instructions(core, n);
    } else {
      FSML_CHECK_MSG(false, "unknown trace record kind '" + kind + "'");
    }
  }
  return trace;
}

void replay(const Trace& trace, AccessObserver& observer) {
  for (const TraceEvent& ev : trace.events()) {
    if (ev.kind == TraceEvent::Kind::kAccess)
      observer.on_access(ev.access);
    else
      observer.on_instructions(ev.core, ev.instructions);
  }
}

}  // namespace fsml::sim
