// Raw micro-architectural event counters produced by the simulator.
//
// The simulator counts fine-grained micro-events (per level, per MESI state,
// per snoop outcome). The PMU layer (src/pmu) maps a subset of these to the
// named Westmere-DP architectural events of the paper's Table 2, and the
// whole list doubles as the ~60-entry *candidate* event list that the
// Section-2.3 selection procedure searches over.
//
// Counters are per core; "responder-side" snoop events are attributed to the
// core that answers the snoop, matching Intel's SNOOP_RESPONSE.* semantics.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace fsml::sim {

enum class RawEvent : std::uint16_t {
  // Retirement
  kInstructionsRetired,
  kLoadsRetired,
  kStoresRetired,
  kAtomicsRetired,
  kCyclesTotal,

  // L1D
  kL1dLoadHit,
  kL1dLoadMiss,
  kL1dStoreHit,
  kL1dStoreMiss,
  kL1dHitLfb,             ///< load merged with an in-flight fill
  kL1dReplacement,        ///< any line filled into L1D displacing another
  kL1dEvictClean,
  kL1dEvictDirty,         ///< writeback to L2

  // L2 (private, unified in the model)
  kL2DemandRequests,      ///< all demand requests reaching L2
  kL2DemandIState,        ///< demand request found the line Invalid (miss)
  kL2Hit,
  kL2Miss,
  kL2LdMiss,              ///< demand load misses at L2
  kL2StMiss,              ///< demand RFO misses at L2
  kL2RfoHitS,             ///< write found line Shared in L2 -> upgrade RFO
  kL2Fill,                ///< lines filled into L2 (L2_TRANSACTIONS.FILL)
  kL2LinesInS,            ///< fills arriving in Shared state
  kL2LinesInE,            ///< fills arriving in Exclusive state
  kL2LinesInM,            ///< fills arriving in Modified state
  kL2LinesOutDemandClean, ///< clean evictions caused by demand fills
  kL2LinesOutDemandDirty, ///< dirty evictions (writeback) by demand fills

  // Offcore / uncore
  kOffcoreDemandRdData,   ///< demand data reads leaving the private caches
  kOffcoreRfo,            ///< RFOs leaving the private caches
  kL3Hit,
  kL3Miss,
  kDramReads,
  kDramReadsLocal,        ///< DRAM reads whose home controller is local
  kDramReadsRemote,       ///< DRAM reads homed on another socket
  kDramWrites,
  kHwPrefetchesIssued,    ///< stream-prefetcher requests sent offcore
  kPrefetchFillsL2,       ///< prefetched lines installed into L2
  kCrossSocketTransfers,  ///< coherence transfers that crossed QPI
  kRemoteL3Hits,          ///< demand requests served by the other socket's L3

  // Snooping (responder side)
  kSnoopRequestsReceived,
  kSnoopResponseHit,      ///< responded HIT: line Shared here
  kSnoopResponseHitE,     ///< responded HIT: line Exclusive here
  kSnoopResponseHitM,     ///< responded HITM: line Modified here (transfer)
  kInvalidationsReceived, ///< lines invalidated here by remote RFO/upgrade

  // Requester-side coherence outcomes
  kHitmTransfersIn,       ///< demand access serviced by a peer's M line
  kHitmTransfersLocal,    ///< HITM where the peer shares the socket
  kHitmTransfersRemote,   ///< HITM where the peer sits on another socket
  kCleanTransfersIn,      ///< demand access serviced by a peer's S/E line
  kRfoUpgrades,           ///< S->M upgrades (invalidate-only RFO)
  kInvalidationsSent,

  // MESI transitions observed in this core's private caches
  kTransIS,
  kTransIE,
  kTransIM,
  kTransSM,
  kTransEM,
  kTransES,
  kTransMS,
  kTransSI,
  kTransEI,
  kTransMI,

  // DTLB
  kDtlbHit,
  kDtlbMiss,

  // Pipeline resource stalls (cycles)
  kStoreBufferStallCycles, ///< store buffer full (RESOURCE_STALLS.STORE)
  kLoadStallCycles,        ///< cycles a load waited beyond L1 latency

  // Service-level breakdown for retired loads (MEM_LOAD_RETIRED.*)
  kMemLoadRetiredL1Hit,
  kMemLoadRetiredL2Hit,
  kMemLoadRetiredL3Hit,
  kMemLoadRetiredDram,
  kMemLoadRetiredPeer,

  kNumRawEvents,  // sentinel
};

constexpr std::size_t kNumRawEvents =
    static_cast<std::size_t>(RawEvent::kNumRawEvents);

/// Short stable identifier (used in CSV headers and candidate lists).
std::string_view raw_event_name(RawEvent e);

/// One-line description for documentation output.
std::string_view raw_event_description(RawEvent e);

/// Per-core counter bank.
class RawCounters {
 public:
  std::uint64_t get(RawEvent e) const {
    return counts_[static_cast<std::size_t>(e)];
  }
  void add(RawEvent e, std::uint64_t n = 1) {
    counts_[static_cast<std::size_t>(e)] += n;
  }
  void reset() { counts_.fill(0); }

  /// Element-wise accumulation (used to aggregate across cores).
  RawCounters& operator+=(const RawCounters& other) {
    for (std::size_t i = 0; i < kNumRawEvents; ++i)
      counts_[i] += other.counts_[i];
    return *this;
  }

  /// Element-wise difference; `other` must be a later snapshot of the same
  /// monotonically increasing counters (used for time-sliced sampling).
  RawCounters delta_to(const RawCounters& later) const {
    RawCounters out;
    for (std::size_t i = 0; i < kNumRawEvents; ++i)
      out.counts_[i] = later.counts_[i] - counts_[i];
    return out;
  }

 private:
  std::array<std::uint64_t, kNumRawEvents> counts_{};
};

}  // namespace fsml::sim
