// Access-trace recording and replay.
//
// A TraceRecorder captures every demand access and instruction-retire event
// of an instrumented run; the trace can be saved, shipped, and replayed
// into any AccessObserver-based tool later — "collect once, analyze many".
// The heavyweight ground-truth detectors (shadow memory, epoch diffing) can
// then run offline against one recorded execution instead of re-simulating,
// and two tools replaying the same trace see *exactly* the same events.
//
//   sim::TraceRecorder recorder;
//   machine.memory().add_observer(&recorder);
//   machine.run();
//   ...
//   baseline::ShadowDetector shadow(threads);
//   sim::replay(recorder.trace(), shadow);
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/observer.hpp"

namespace fsml::sim {

/// One trace entry: either a memory access or a batch of retired
/// instructions (compute), in program-global observation order.
struct TraceEvent {
  enum class Kind : std::uint8_t { kAccess, kInstructions };
  Kind kind = Kind::kAccess;
  AccessRecord access;          ///< valid when kind == kAccess
  CoreId core = 0;              ///< valid when kind == kInstructions
  std::uint64_t instructions = 0;
};

class Trace {
 public:
  void add_access(const AccessRecord& record);
  void add_instructions(CoreId core, std::uint64_t count);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  std::uint64_t total_accesses() const { return accesses_; }
  std::uint64_t total_instructions() const { return instructions_; }
  std::uint32_t max_core() const { return max_core_; }

  /// Line-oriented text serialization ("A core addr size type level clock"
  /// / "I core count").
  void save(std::ostream& os) const;
  static Trace load(std::istream& is);

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t accesses_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint32_t max_core_ = 0;
};

/// Records all observed events into an in-memory Trace.
class TraceRecorder final : public AccessObserver {
 public:
  void on_access(const AccessRecord& record) override {
    trace_.add_access(record);
  }
  void on_instructions(CoreId core, std::uint64_t count) override {
    trace_.add_instructions(core, count);
  }

  const Trace& trace() const { return trace_; }
  Trace take() { return std::move(trace_); }

 private:
  Trace trace_;
};

/// Feeds every event of `trace` to `observer` in recorded order.
void replay(const Trace& trace, AccessObserver& observer);

}  // namespace fsml::sim
