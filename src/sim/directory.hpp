// Coherence directory: O(1) per-line owner/sharer lookup for the memory
// hierarchy.
//
// The linear-scan protocol in MemorySystem::service_request (and the
// prefetcher's owned/shared-elsewhere probe) walks every peer core's L2 on
// every miss, so a 32-core sweep pays O(cores) tag probes per coherence
// event. Real Westmere parts avoid exactly this with the inclusive L3's
// snoop filter; this directory is the simulator's equivalent: one record
// per line resident in *any* private L2, holding
//
//   * `sharers` — a hierarchical bitmask of every core whose L2 holds the
//     line in any valid MESI state (one 64-bit word per socket), and
//   * `owner` / `owner_state` — the unique core holding the line Modified
//     or Exclusive, if one exists (MESI single-writer invariant).
//
// The directory is maintained *exactly* in sync with the caches: every L2
// line transition (fill, upgrade, downgrade, invalidate, eviction,
// writeback restate) flows through Cache's line-event hook into
// on_line_event(). It is a pure index — it never decides protocol actions,
// it only answers "who holds this line?" in O(1) — so enabling it cannot
// change a single counter or cycle (MemorySystem cross-validates it
// against a full peer scan in debug builds, and the fuzz tests compare it
// to a reference scan after every access).
//
// Storage is an open-addressing hash table kept below a 1/2 load factor so
// probes stay short. It starts small (a machine is constructed per trainer
// run, and pre-sizing for the worst case — every L2 way of every core
// holding a distinct line — made construction cost rival short
// simulations) and doubles as the tracked working set grows, an amortized
// O(1) deterministic rehash that typically settles within the first few
// thousand fills; the access path itself never allocates. Erase uses
// backward-shift deletion so no tombstones accumulate over long
// simulations.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/topology.hpp"
#include "sim/types.hpp"
#include "util/check.hpp"

namespace fsml::sim {

/// Hierarchical sharer set: one 64-bit word per socket, inline (no heap).
/// On a single-socket machine only word 0 is ever touched, so the layout,
/// iteration order, and cost degenerate to the pre-NUMA single-word mask.
struct SharerMask {
  std::array<std::uint64_t, kMaxSockets> words{};

  bool any() const {
    return (words[0] | words[1] | words[2] | words[3]) != 0;
  }
  bool none() const { return !any(); }
  int count() const {
    int n = 0;
    for (const std::uint64_t w : words) n += std::popcount(w);
    return n;
  }
  void reset() { words.fill(0); }
  std::uint64_t word(std::uint32_t socket) const { return words[socket]; }

  friend bool operator==(const SharerMask&, const SharerMask&) = default;
};

/// Maps core ids onto (word, bit) positions of a SharerMask for a fixed
/// SocketTopology, and iterates masks in ascending core order — socket
/// words low to high, bits low to high — which, with socket-contiguous
/// core numbering, is exactly the ascending core-id order the pre-NUMA
/// single-word mask produced (the bit-identity contract relies on this).
class SharerIndex {
 public:
  SharerIndex() = default;
  explicit SharerIndex(const SocketTopology& topo)
      : span_(topo.cores_per_socket == 0 ? kMaxCoresPerSocket
                                         : topo.cores_per_socket) {}

  void set(SharerMask& m, CoreId core) const {
    m.words[core / span_] |= std::uint64_t{1} << (core % span_);
  }
  void clear(SharerMask& m, CoreId core) const {
    m.words[core / span_] &= ~(std::uint64_t{1} << (core % span_));
  }
  bool test(const SharerMask& m, CoreId core) const {
    return (m.words[core / span_] >> (core % span_)) & 1u;
  }

  /// Visits every set core in ascending core-id order.
  template <typename F>
  void for_each(const SharerMask& m, F&& visit) const {
    for (std::uint32_t w = 0; w < kMaxSockets; ++w) {
      std::uint64_t bits = m.words[w];
      while (bits != 0) {
        visit(static_cast<CoreId>(
            w * span_ + static_cast<std::uint32_t>(std::countr_zero(bits))));
        bits &= bits - 1;
      }
    }
  }

  std::uint32_t span() const { return span_; }

 private:
  std::uint32_t span_ = kMaxCoresPerSocket;  ///< cores per mask word
};

class CoherenceDirectory {
 public:
  static constexpr CoreId kNoOwner = ~CoreId{0};

  struct Entry {
    Addr line = 0;
    SharerMask sharers;       ///< all valid holders; empty marks a free slot
    CoreId owner = kNoOwner;  ///< the M/E holder, if any
    MesiState owner_state = MesiState::kInvalid;
  };

  /// `max_lines` is the worst-case number of simultaneously tracked lines
  /// (num_cores * lines-per-L2 for an inclusive hierarchy); the table sizes
  /// itself for small worst cases and grows on demand toward large ones.
  CoherenceDirectory(const SocketTopology& topo, std::uint32_t num_cores,
                     std::uint64_t max_lines);

  /// O(1) lookup: the record for `line`, or nullptr if no private L2 holds
  /// it. The returned pointer is invalidated by the next state change.
  const Entry* lookup(Addr line) const {
    const std::size_t slot = find_slot(line);
    return slots_[slot].sharers.any() ? &slots_[slot] : nullptr;
  }

  /// Applies one L2 line transition (wired into Cache::set_line_event_hook;
  /// `from == to` transitions are filtered out by the cache).
  void on_line_event(CoreId core, Addr line, MesiState from, MesiState to);

  /// Number of distinct lines currently tracked.
  std::size_t size() const { return size_; }

  /// Visits every tracked line (cold path: invariant checks, debug dumps).
  template <typename F>
  void for_each(F&& visit) const {
    for (const Entry& e : slots_)
      if (e.sharers.any()) visit(e);
  }

  const SharerIndex& index() const { return idx_; }

 private:
  std::size_t find_slot(Addr line) const {
    std::size_t i =
        static_cast<std::size_t>((line * 0x9E3779B97F4A7C15ull) >> shift_);
    while (slots_[i].sharers.any() && slots_[i].line != line)
      i = (i + 1) & mask_;
    return i;
  }

  /// Backward-shift deletion keeps probe chains tombstone-free.
  void erase_slot(std::size_t slot);

  /// Doubles capacity and rehashes every live entry (amortized O(1)).
  void grow();

  SharerIndex idx_;
  std::vector<Entry> slots_;
  std::size_t mask_ = 0;   ///< capacity - 1 (capacity is a power of two)
  unsigned shift_ = 0;     ///< 64 - log2(capacity), for the fibonacci hash
  std::size_t size_ = 0;
};

}  // namespace fsml::sim
