// Coherence directory: O(1) per-line owner/sharer lookup for the memory
// hierarchy.
//
// The linear-scan protocol in MemorySystem::service_request (and the
// prefetcher's owned/shared-elsewhere probe) walks every peer core's L2 on
// every miss, so a 32-core sweep pays O(cores) tag probes per coherence
// event. Real Westmere parts avoid exactly this with the inclusive L3's
// snoop filter; this directory is the simulator's equivalent: one record
// per line resident in *any* private L2, holding
//
//   * `sharers` — a bitmask of every core whose L2 holds the line in any
//     valid MESI state (bit i == core i), and
//   * `owner` / `owner_state` — the unique core holding the line Modified
//     or Exclusive, if one exists (MESI single-writer invariant).
//
// The directory is maintained *exactly* in sync with the caches: every L2
// line transition (fill, upgrade, downgrade, invalidate, eviction,
// writeback restate) flows through Cache's line-event hook into
// on_line_event(). It is a pure index — it never decides protocol actions,
// it only answers "who holds this line?" in O(1) — so enabling it cannot
// change a single counter or cycle (MemorySystem cross-validates it
// against a full peer scan in debug builds, and the fuzz tests compare it
// to a reference scan after every access).
//
// Storage is an open-addressing hash table kept below a 1/2 load factor so
// probes stay short. It starts small (a machine is constructed per trainer
// run, and pre-sizing for the worst case — every L2 way of every core
// holding a distinct line — made construction cost rival short
// simulations) and doubles as the tracked working set grows, an amortized
// O(1) deterministic rehash that typically settles within the first few
// thousand fills; the access path itself never allocates. Erase uses
// backward-shift deletion so no tombstones accumulate over long
// simulations.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"
#include "util/check.hpp"

namespace fsml::sim {

/// The sharer bitmask is one 64-bit word; MachineConfig::validate enforces
/// this bound (the paper's experiments top out at 32 simulated cores).
inline constexpr std::uint32_t kMaxDirectoryCores = 64;

class CoherenceDirectory {
 public:
  static constexpr CoreId kNoOwner = ~CoreId{0};

  struct Entry {
    Addr line = 0;
    std::uint64_t sharers = 0;  ///< all valid holders; 0 marks an empty slot
    CoreId owner = kNoOwner;    ///< the M/E holder, if any
    MesiState owner_state = MesiState::kInvalid;
  };

  /// `max_lines` is the worst-case number of simultaneously tracked lines
  /// (num_cores * lines-per-L2 for an inclusive hierarchy); the table sizes
  /// itself for small worst cases and grows on demand toward large ones.
  CoherenceDirectory(std::uint32_t num_cores, std::uint64_t max_lines);

  /// O(1) lookup: the record for `line`, or nullptr if no private L2 holds
  /// it. The returned pointer is invalidated by the next state change.
  const Entry* lookup(Addr line) const {
    const std::size_t slot = find_slot(line);
    return slots_[slot].sharers != 0 ? &slots_[slot] : nullptr;
  }

  /// Applies one L2 line transition (wired into Cache::set_line_event_hook;
  /// `from == to` transitions are filtered out by the cache).
  void on_line_event(CoreId core, Addr line, MesiState from, MesiState to);

  /// Number of distinct lines currently tracked.
  std::size_t size() const { return size_; }

  /// Visits every tracked line (cold path: invariant checks, debug dumps).
  template <typename F>
  void for_each(F&& visit) const {
    for (const Entry& e : slots_)
      if (e.sharers != 0) visit(e);
  }

  static constexpr std::uint64_t bit_of(CoreId core) {
    return std::uint64_t{1} << core;
  }

 private:
  std::size_t find_slot(Addr line) const {
    std::size_t i =
        static_cast<std::size_t>((line * 0x9E3779B97F4A7C15ull) >> shift_);
    while (slots_[i].sharers != 0 && slots_[i].line != line)
      i = (i + 1) & mask_;
    return i;
  }

  /// Backward-shift deletion keeps probe chains tombstone-free.
  void erase_slot(std::size_t slot);

  /// Doubles capacity and rehashes every live entry (amortized O(1)).
  void grow();

  std::vector<Entry> slots_;
  std::size_t mask_ = 0;   ///< capacity - 1 (capacity is a power of two)
  unsigned shift_ = 0;     ///< 64 - log2(capacity), for the fibonacci hash
  std::size_t size_ = 0;
};

}  // namespace fsml::sim
