// Set-associative tag store with true-LRU replacement and per-line MESI
// state. Used for both private levels (L1D, L2) and the shared L3.
//
// The store is tags-only: the simulator models coherence and timing, not
// data values (kernels compute on host values and drive the simulator with
// their access streams).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/geometry.hpp"
#include "sim/types.hpp"

namespace fsml::sim {

/// A line evicted to make room for a fill.
struct Eviction {
  Addr line_addr = 0;
  MesiState state = MesiState::kInvalid;  ///< state at eviction time
};

/// Observes every per-line MESI transition a cache makes, including the
/// implicit victim invalidation inside fill(). Plain function pointer +
/// context (no std::function) — it sits on the access hot path. The
/// coherence directory hangs off every L2 through this hook so it can stay
/// exactly in sync without MemorySystem hand-maintaining it at each of the
/// dozen mutation sites.
using LineEventHook = void (*)(void* ctx, Addr line, MesiState from,
                               MesiState to);

class Cache {
 public:
  explicit Cache(CacheGeometry geometry);

  const CacheGeometry& geometry() const { return geometry_; }

  /// State of the line containing `addr`, or kInvalid if absent.
  MesiState state_of(Addr addr) const;

  bool contains(Addr addr) const {
    return state_of(addr) != MesiState::kInvalid;
  }

  /// Looks up and, on hit, promotes the line to MRU. Returns state.
  MesiState touch(Addr addr);

  /// Inserts (or re-states) the line in `state`, evicting the LRU way if the
  /// set is full. Returns the eviction, if one happened.
  std::optional<Eviction> fill(Addr addr, MesiState state);

  /// Changes the state of a resident line (hit required).
  void set_state(Addr addr, MesiState state);

  /// Removes the line if present; returns its prior state.
  MesiState invalidate(Addr addr);

  /// Number of valid lines currently resident (for tests/invariants).
  std::size_t occupancy() const;

  /// Visits every valid line (for inclusion checks in tests).
  void for_each_line(
      const std::function<void(Addr, MesiState)>& visit) const;

  /// Installs (or clears, with nullptr) the line-event hook. Fires on every
  /// state transition where `from != to`; eviction victims report
  /// `to == kInvalid`.
  void set_line_event_hook(LineEventHook hook, void* ctx) {
    hook_ = hook;
    hook_ctx_ = ctx;
  }

 private:
  struct Way {
    std::uint64_t tag = 0;
    MesiState state = MesiState::kInvalid;
    std::uint64_t lru_stamp = 0;  ///< larger = more recently used
  };

  Way* find(Addr addr);
  const Way* find(Addr addr) const;

  /// First way of the set holding `addr` in the flat tag store.
  Way* set_base(Addr addr) {
    return ways_.data() + geometry_.set_index(addr) * geometry_.ways;
  }

  void notify(Addr line, MesiState from, MesiState to) {
    if (hook_ != nullptr && from != to) hook_(hook_ctx_, line, from, to);
  }

  CacheGeometry geometry_;
  /// Flat tag store, one contiguous allocation: way w of set s lives at
  /// ways_[s * geometry_.ways + w]. A whole 8-way set spans three host
  /// cache lines, so a set scan never leaves the line the prefetcher
  /// already pulled — the per-set std::vector this replaces cost one heap
  /// block (and one pointer chase) per set.
  std::vector<Way> ways_;
  std::uint64_t stamp_ = 0;
  LineEventHook hook_ = nullptr;
  void* hook_ctx_ = nullptr;
};

}  // namespace fsml::sim
