// Set-associative tag store with true-LRU replacement and per-line MESI
// state. Used for both private levels (L1D, L2) and the shared L3.
//
// The store is tags-only: the simulator models coherence and timing, not
// data values (kernels compute on host values and drive the simulator with
// their access streams).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/geometry.hpp"
#include "sim/types.hpp"

namespace fsml::sim {

/// A line evicted to make room for a fill.
struct Eviction {
  Addr line_addr = 0;
  MesiState state = MesiState::kInvalid;  ///< state at eviction time
};

class Cache {
 public:
  explicit Cache(CacheGeometry geometry);

  const CacheGeometry& geometry() const { return geometry_; }

  /// State of the line containing `addr`, or kInvalid if absent.
  MesiState state_of(Addr addr) const;

  bool contains(Addr addr) const {
    return state_of(addr) != MesiState::kInvalid;
  }

  /// Looks up and, on hit, promotes the line to MRU. Returns state.
  MesiState touch(Addr addr);

  /// Inserts (or re-states) the line in `state`, evicting the LRU way if the
  /// set is full. Returns the eviction, if one happened.
  std::optional<Eviction> fill(Addr addr, MesiState state);

  /// Changes the state of a resident line (hit required).
  void set_state(Addr addr, MesiState state);

  /// Removes the line if present; returns its prior state.
  MesiState invalidate(Addr addr);

  /// Number of valid lines currently resident (for tests/invariants).
  std::size_t occupancy() const;

  /// Visits every valid line (for inclusion checks in tests).
  void for_each_line(
      const std::function<void(Addr, MesiState)>& visit) const;

 private:
  struct Way {
    std::uint64_t tag = 0;
    MesiState state = MesiState::kInvalid;
    std::uint64_t lru_stamp = 0;  ///< larger = more recently used
  };

  struct Set {
    std::vector<Way> ways;
  };

  Way* find(Addr addr);
  const Way* find(Addr addr) const;

  CacheGeometry geometry_;
  std::vector<Set> sets_;
  std::uint64_t stamp_ = 0;
};

}  // namespace fsml::sim
