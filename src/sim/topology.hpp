// Socket topology of the simulated machine.
//
// The coherence directory's sharer set is hierarchical: one 64-bit word per
// socket (inline array, at most kMaxSockets sockets), so the simulator
// scales to kMaxSockets * kMaxCoresPerSocket = 256 cores while the
// single-socket fast path stays exactly one word — bit-identical to the
// pre-NUMA directory. Cores are numbered socket-contiguously: socket s owns
// cores [s * cores_per_socket, (s+1) * cores_per_socket).
#pragma once

#include <cstdint>

#include "sim/types.hpp"
#include "util/check.hpp"

namespace fsml::sim {

/// The hierarchical sharer mask holds one inline word per socket.
inline constexpr std::uint32_t kMaxSockets = 4;
/// Each socket's sharer set is one 64-bit word.
inline constexpr std::uint32_t kMaxCoresPerSocket = 64;
/// Hard ceiling on simulated cores (4 sockets x 64 cores).
inline constexpr std::uint32_t kMaxSimulatedCores =
    kMaxSockets * kMaxCoresPerSocket;

/// Socket layout of a machine: `sockets` sockets of `cores_per_socket`
/// cores each, one shared L3 and one memory controller per socket.
/// `cores_per_socket == 0` is the single-socket default: every core lives
/// on socket 0 (and the 64-core single-word limit applies).
struct SocketTopology {
  std::uint32_t sockets = 1;
  std::uint32_t cores_per_socket = 0;

  std::uint32_t socket_of(CoreId core) const {
    return cores_per_socket == 0 ? 0 : core / cores_per_socket;
  }

  bool multi_socket() const { return sockets > 1; }

  friend bool operator==(const SocketTopology&,
                         const SocketTopology&) = default;

  /// Validates the layout against the machine's core count. Multi-socket
  /// layouts must tile `num_cores` exactly: ragged last sockets would make
  /// socket_of/home-node arithmetic silently wrong, so they are rejected.
  void validate(std::uint32_t num_cores) const {
    FSML_CHECK_MSG(sockets >= 1,
                   "a machine needs at least one socket (sockets=0)");
    FSML_CHECK_MSG(sockets <= kMaxSockets,
                   "the hierarchical sharer mask holds one inline word per "
                   "socket and caps the machine at 4 sockets");
    if (cores_per_socket == 0) {
      FSML_CHECK_MSG(sockets == 1,
                     "cores_per_socket=0 means one socket holding every "
                     "core; set cores_per_socket for a multi-socket layout");
      FSML_CHECK_MSG(num_cores <= kMaxCoresPerSocket,
                     "a single socket's sharer word caps at 64 cores; use "
                     "SocketTopology{sockets, cores_per_socket} to go wider");
      return;
    }
    FSML_CHECK_MSG(cores_per_socket <= kMaxCoresPerSocket,
                   "the per-socket sharer word caps cores_per_socket at 64");
    const std::uint32_t needed =
        (num_cores + cores_per_socket - 1) / cores_per_socket;
    FSML_CHECK_MSG(sockets == needed,
                   "socket count does not match num_cores / cores_per_socket "
                   "(every core must map onto exactly one socket)");
    FSML_CHECK_MSG(sockets == 1 || num_cores % cores_per_socket == 0,
                   "ragged sockets are unsupported: num_cores must be a "
                   "multiple of cores_per_socket on multi-socket machines");
  }
};

}  // namespace fsml::sim
