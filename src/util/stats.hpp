// Small statistics helpers shared by the ML library and the bench harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fsml::util {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);   // population variance
double sample_variance(std::span<const double> xs);
double stdev(std::span<const double> xs);
double median(std::vector<double> xs);         // by value: needs to sort
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double sum(std::span<const double> xs);

/// Geometric mean of strictly positive values.
double geomean(std::span<const double> xs);

/// p-quantile (0 <= p <= 1) with linear interpolation.
double quantile(std::vector<double> xs, double p);

/// Relative difference |a-b| / max(|a|,|b|); 0 if both are 0.
double rel_diff(double a, double b);

}  // namespace fsml::util
