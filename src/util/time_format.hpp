// Human-readable virtual-time formatting in the paper's styles.
#pragma once

#include <cstdint>
#include <string>

namespace fsml::util {

/// "0.445s" style with three decimals (Table 8 small inputs).
std::string seconds_short(double seconds);

/// "3m12.78s" style used by the paper for the native streamcluster input;
/// falls back to seconds_short below one minute.
std::string seconds_minutes(double seconds);

/// Converts simulator cycles to seconds at a given core frequency (Hz).
double cycles_to_seconds(std::uint64_t cycles, double hz);

/// Auto-scaled unit ("813us", "4.21ms", "1.37s", "2m05.33s") — simulated
/// inputs are scaled down from the paper's, so runs last micro- to
/// milliseconds and fixed-unit formatting would print all zeros.
std::string auto_time(double seconds);

}  // namespace fsml::util
