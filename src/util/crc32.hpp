// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// check used by every durable fsml artifact: training-cache footers,
// collection-journal records, and model-file trailers. Incremental so
// streaming writers can fold bytes in as they go.
//
// Known-answer: crc32("123456789") == 0xCBF43926.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fsml::util {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// Incremental CRC-32 accumulator.
class Crc32 {
 public:
  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    const auto& table = detail::crc32_table();
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < n; ++i)
      c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    state_ = c;
  }
  void update(std::string_view s) { update(s.data(), s.size()); }

  /// Finalized checksum; the accumulator stays usable for more update()s.
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a buffer.
inline std::uint32_t crc32(std::string_view s) {
  Crc32 c;
  c.update(s);
  return c.value();
}

}  // namespace fsml::util
