// AtomicFile: crash-safe whole-file replacement (temp + fsync + rename).
//
// Every durable fsml artifact — training cache, robustness JSON, model
// files — goes through this class so an interrupt at any instant leaves
// either the complete old file or the complete new file on disk, never a
// torn prefix:
//
//   util::AtomicFile file("results.csv");
//   file.stream() << ...;      // buffered in memory
//   file.commit();             // write temp, fsync, rename over the target
//
// commit() writes the buffered bytes to `<path>.tmp.<pid>`, fsyncs the file,
// renames it over the target (atomic on POSIX), and fsyncs the containing
// directory so the rename itself is durable. A destructor without commit()
// (e.g. an exception while formatting) removes the temp file and leaves any
// existing target untouched.
#pragma once

#include <sstream>
#include <string>

namespace fsml::util {

class AtomicFile {
 public:
  explicit AtomicFile(std::string path);
  ~AtomicFile();  ///< removes the temp file when commit() was never reached

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// The in-memory buffer being composed; written durably by commit().
  std::ostream& stream() { return buffer_; }

  /// Bytes buffered so far (what commit() would publish).
  std::string contents() const { return buffer_.str(); }

  /// Durably publishes the buffer at `path`. Throws std::runtime_error on
  /// any I/O failure, leaving the previous target file intact. One-shot.
  void commit();

  const std::string& path() const { return path_; }
  bool committed() const { return committed_; }

 private:
  std::string path_;
  std::string temp_path_;
  std::ostringstream buffer_;
  bool committed_ = false;
};

/// Convenience: atomically writes `contents` at `path`.
void write_file_atomic(const std::string& path, const std::string& contents);

}  // namespace fsml::util
