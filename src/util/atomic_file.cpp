#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace fsml::util {

namespace {

[[noreturn]] void io_error(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

/// Directory containing `path` ("." for bare filenames).
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir opens
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)),
      temp_path_(path_ + ".tmp." + std::to_string(::getpid())) {}

AtomicFile::~AtomicFile() {
  if (!committed_) std::remove(temp_path_.c_str());
}

void AtomicFile::commit() {
  if (committed_)
    throw std::runtime_error("AtomicFile::commit() is one-shot: " + path_);
  const std::string data = buffer_.str();

  const int fd = ::open(temp_path_.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) io_error("cannot create", temp_path_);

  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(temp_path_.c_str());
      io_error("cannot write", temp_path_);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(temp_path_.c_str());
    io_error("cannot fsync", temp_path_);
  }
  if (::close(fd) != 0) {
    std::remove(temp_path_.c_str());
    io_error("cannot close", temp_path_);
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(temp_path_.c_str());
    io_error("cannot rename into", path_);
  }
  fsync_dir(parent_dir(path_));
  committed_ = true;
}

void write_file_atomic(const std::string& path, const std::string& contents) {
  AtomicFile file(path);
  file.stream() << contents;
  file.commit();
}

}  // namespace fsml::util
