#include "util/time_format.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace fsml::util {

std::string seconds_short(double seconds) {
  std::ostringstream os;
  if (seconds < 0.1) {
    os << std::fixed << std::setprecision(3) << seconds << 's';
  } else if (seconds < 10.0) {
    os << std::fixed << std::setprecision(2) << seconds << 's';
  } else {
    os << std::fixed << std::setprecision(1) << seconds << 's';
  }
  return os.str();
}

std::string seconds_minutes(double seconds) {
  if (seconds < 60.0) return seconds_short(seconds);
  const auto minutes = static_cast<long long>(seconds / 60.0);
  const double rem = seconds - static_cast<double>(minutes) * 60.0;
  std::ostringstream os;
  os << minutes << 'm' << std::fixed << std::setprecision(2) << rem << 's';
  return os.str();
}

double cycles_to_seconds(std::uint64_t cycles, double hz) {
  FSML_CHECK(hz > 0.0);
  return static_cast<double>(cycles) / hz;
}

std::string auto_time(double seconds) {
  std::ostringstream os;
  if (seconds >= 60.0) return seconds_minutes(seconds);
  if (seconds >= 1.0) {
    os << std::fixed << std::setprecision(2) << seconds << 's';
  } else if (seconds >= 1e-3) {
    os << std::fixed << std::setprecision(2) << seconds * 1e3 << "ms";
  } else {
    os << std::fixed << std::setprecision(0) << seconds * 1e6 << "us";
  }
  return os.str();
}

}  // namespace fsml::util
