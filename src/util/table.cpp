#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace fsml::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FSML_CHECK(!header_.empty());
  aligns_.assign(header_.size(), Align::kLeft);
}

void Table::add_row(std::vector<std::string> cells) {
  FSML_CHECK_MSG(cells.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void Table::add_separator() { pending_separator_ = true; }

void Table::set_align(std::size_t column, Align align) {
  FSML_CHECK(column < aligns_.size());
  aligns_[column] = align;
}

namespace {

std::string pad(const std::string& s, std::size_t width, Align align) {
  if (s.size() >= width) return s;
  const std::string fill(width - s.size(), ' ');
  return align == Align::kLeft ? s + fill : fill + s;
}

}  // namespace

void Table::render(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const Row& row : rows_)
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());

  const auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << pad(cells[c], widths[c], aligns_[c]) << " |";
    os << '\n';
  };

  rule();
  line(header_);
  rule();
  for (const Row& row : rows_) {
    if (row.separator_before) rule();
    line(row.cells);
  }
  rule();
}

std::string Table::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

std::string fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string sci(double value, int digits) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(digits) << value;
  return os.str();
}

std::string with_commas(long long value) {
  const bool neg = value < 0;
  unsigned long long v =
      neg ? 0ULL - static_cast<unsigned long long>(value)
          : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace fsml::util
