// Deterministic pseudo-random number generation for fsml.
//
// Every stochastic choice in the simulator and the ML library flows through
// these generators so that a (seed) fully determines an experiment. We use
// SplitMix64 for seeding and xoshiro256** for the stream — both are tiny,
// fast, and well studied, and keep us independent of libstdc++'s unspecified
// distribution implementations (std::shuffle order etc. would not be
// reproducible across standard libraries).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace fsml::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedf00dULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Debiased via rejection sampling.
  std::uint64_t next_below(std::uint64_t bound) {
    FSML_CHECK(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    FSML_CHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p of true.
  bool next_bool(double p) { return next_double() < p; }

  /// Derive an independent child generator (for per-thread streams).
  Rng split() { return Rng(next() ^ 0xa5a5a5a5deadbeefULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Deterministic Fisher–Yates shuffle (std::shuffle's visit order is
/// implementation-defined; this one is pinned).
template <typename RandomIt>
void shuffle(RandomIt first, RandomIt last, Rng& rng) {
  const auto n = static_cast<std::uint64_t>(last - first);
  for (std::uint64_t i = n; i > 1; --i) {
    const auto j = rng.next_below(i);
    using std::swap;
    swap(first[i - 1], first[j]);
  }
}

}  // namespace fsml::util
