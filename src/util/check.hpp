// Lightweight invariant checking for fsml.
//
// FSML_CHECK is always on (simulation correctness beats a few branches);
// FSML_DCHECK compiles out in release builds for hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fsml::util {

/// Thrown when an FSML_CHECK fails. Deriving from logic_error keeps the
/// distinction between programming errors (this) and IO/user errors.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "FSML_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace fsml::util

#define FSML_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr)) ::fsml::util::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define FSML_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr))                                                        \
      ::fsml::util::check_failed(#expr, __FILE__, __LINE__, (msg));     \
  } while (0)

#ifdef NDEBUG
#define FSML_DCHECK(expr) ((void)0)
#else
#define FSML_DCHECK(expr) FSML_CHECK(expr)
#endif
