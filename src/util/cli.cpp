#include "util/cli.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace fsml::util {

namespace {

// "0.05" rather than "5.000000e-02": default ostream formatting reads well
// in error messages for both integers and fractions.
template <typename T>
std::string range_text(T lo, T hi) {
  std::ostringstream os;
  os << '[' << lo << ", " << hi << ']';
  return os.str();
}

[[noreturn]] void range_error(const std::string& name, const char* kind,
                              const std::string& range,
                              const std::string& value) {
  throw std::runtime_error("option --" + name + " expects " + kind + " in " +
                           range + ", got '" + value + "'");
}

template <typename T>
T checked(const std::string& name, const char* kind, T value, T lo, T hi,
          const std::string& raw) {
  if (std::isnan(static_cast<double>(value)) || value < lo || value > hi)
    range_error(name, kind, range_text(lo, hi), raw);
  return value;
}

// Splits on ',' and parses every element with `parse`; rejects empty
// elements ("1,,2") so a stray comma cannot silently shrink a sweep axis.
template <typename T, typename Parse>
std::vector<T> parse_list(const std::string& name, const char* kind,
                          const char* kind_plural, const std::string& raw,
                          T lo, T hi, Parse parse) {
  std::vector<T> out;
  std::size_t start = 0;
  while (start <= raw.size()) {
    std::size_t end = raw.find(',', start);
    if (end == std::string::npos) end = raw.size();
    const std::string piece = raw.substr(start, end - start);
    T value{};
    try {
      if (piece.empty()) throw std::invalid_argument("empty");
      std::size_t used = 0;
      value = parse(piece, &used);
      if (used != piece.size()) throw std::invalid_argument("trailing");
    } catch (const std::exception&) {
      throw std::runtime_error("option --" + name +
                               " expects a comma-separated list of " +
                               kind_plural + ", got '" + raw +
                               "' (bad element '" + piece + "')");
    }
    out.push_back(checked(name, kind, value, lo, hi, piece));
    start = end + 1;
  }
  return out;
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  FSML_CHECK(argc >= 1);
  program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "true";  // bare flag
    }
  }
}

bool Cli::has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::runtime_error("option --" + name + " expects an integer, got '" +
                             it->second + "'");
  }
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::runtime_error("option --" + name + " expects a number, got '" +
                             it->second + "'");
  }
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::runtime_error("option --" + name + " expects a boolean, got '" +
                           v + "'");
}

std::int64_t Cli::get_int_in(const std::string& name, std::int64_t fallback,
                             std::int64_t lo, std::int64_t hi) const {
  if (!has(name)) return fallback;
  return checked(name, "an integer", get_int(name, fallback), lo, hi,
                 get(name, ""));
}

double Cli::get_double_in(const std::string& name, double fallback, double lo,
                          double hi) const {
  if (!has(name)) return fallback;
  return checked(name, "a number", get_double(name, fallback), lo, hi,
                 get(name, ""));
}

std::vector<double> Cli::get_double_list(const std::string& name,
                                         std::vector<double> fallback,
                                         double lo, double hi) const {
  if (!has(name)) return fallback;
  return parse_list(
      name, "a number", "numbers", get(name, ""), lo, hi,
      [](const std::string& s, std::size_t* used) { return std::stod(s, used); });
}

std::vector<std::int64_t> Cli::get_int_list(const std::string& name,
                                            std::vector<std::int64_t> fallback,
                                            std::int64_t lo,
                                            std::int64_t hi) const {
  if (!has(name)) return fallback;
  return parse_list(name, "an integer", "integers", get(name, ""), lo, hi,
                    [](const std::string& s, std::size_t* used) {
                      return static_cast<std::int64_t>(std::stoll(s, used));
                    });
}

std::vector<std::string> Cli::option_names() const {
  std::vector<std::string> names;
  names.reserve(options_.size());
  for (const auto& [k, _] : options_) names.push_back(k);
  return names;
}

}  // namespace fsml::util
