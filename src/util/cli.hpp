// Minimal long-option command-line parsing for benches and examples.
//
// Supports "--name=value", "--name value" and boolean "--flag". Unknown
// options raise, so typos in experiment scripts fail loudly instead of
// silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fsml::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-option) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program_name() const { return program_name_; }

  /// Names consumed so far; used by benches to print effective config.
  std::vector<std::string> option_names() const;

 private:
  std::string program_name_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace fsml::util
