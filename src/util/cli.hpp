// Minimal long-option command-line parsing for benches and examples.
//
// Supports "--name=value", "--name value" and boolean "--flag". Unknown
// options raise, so typos in experiment scripts fail loudly instead of
// silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fsml::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// get_int with an inclusive range check: "option --repeats expects an
  /// integer in [1, 1001], got '0'".
  std::int64_t get_int_in(const std::string& name, std::int64_t fallback,
                          std::int64_t lo, std::int64_t hi) const;
  /// get_double with an inclusive range check; NaN is always rejected.
  double get_double_in(const std::string& name, double fallback, double lo,
                       double hi) const;
  /// Comma-separated numbers ("0,0.05,0.1"), each range-checked as in
  /// get_double_in. Empty elements and empty lists are rejected.
  std::vector<double> get_double_list(const std::string& name,
                                      std::vector<double> fallback, double lo,
                                      double hi) const;
  /// Comma-separated integers ("0,4,2"), each range-checked.
  std::vector<std::int64_t> get_int_list(const std::string& name,
                                         std::vector<std::int64_t> fallback,
                                         std::int64_t lo,
                                         std::int64_t hi) const;

  /// Positional (non-option) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program_name() const { return program_name_; }

  /// Names consumed so far; used by benches to print effective config.
  std::vector<std::string> option_names() const;

 private:
  std::string program_name_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace fsml::util
