#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace fsml::util {

double sum(std::span<const double> xs) {
  // Kahan summation: the ML library sums thousands of small normalized
  // counts where naive summation drift can move split thresholds.
  double s = 0.0, c = 0.0;
  for (double x : xs) {
    const double y = x - c;
    const double t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

double mean(std::span<const double> xs) {
  FSML_CHECK(!xs.empty());
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  FSML_CHECK(!xs.empty());
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) {
  FSML_CHECK(xs.size() >= 2);
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stdev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  FSML_CHECK(!xs.empty());
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double min_of(std::span<const double> xs) {
  FSML_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  FSML_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double geomean(std::span<const double> xs) {
  FSML_CHECK(!xs.empty());
  double acc = 0.0;
  for (double x : xs) {
    FSML_CHECK_MSG(x > 0.0, "geomean requires positive values");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

double quantile(std::vector<double> xs, double p) {
  FSML_CHECK(!xs.empty());
  FSML_CHECK(p >= 0.0 && p <= 1.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double rel_diff(double a, double b) {
  const double denom = std::max(std::abs(a), std::abs(b));
  if (denom == 0.0) return 0.0;
  return std::abs(a - b) / denom;
}

}  // namespace fsml::util
