// k-nearest-neighbours with per-attribute z-score normalization (IB1/IBk
// style) — another comparison classifier for the paper's Section-3 claim.
#pragma once

#include <vector>

#include "ml/classifier.hpp"

namespace fsml::ml {

class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(std::size_t k = 3) : k_(k) {}

  void train(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::vector<double> distribution(std::span<const double> x) const override;
  std::string describe() const override;
  std::string name() const override;
  std::unique_ptr<Classifier> make_untrained() const override;

  std::size_t k() const { return k_; }

 private:
  std::vector<double> standardize(std::span<const double> x) const;

  std::size_t k_;
  std::vector<Instance> train_set_;  // standardized copies
  std::vector<double> mean_;
  std::vector<double> stdev_;
};

}  // namespace fsml::ml
