// Base interface shared by every classifier in fsml::ml.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace fsml::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Fits the model; may be called again to refit.
  virtual void train(const Dataset& data) = 0;

  /// Predicted class index for a feature vector. Vectors may contain
  /// kMissingValue (NaN) slots only if handles_missing() is true.
  virtual int predict(std::span<const double> x) const = 0;

  /// Whether predict()/train() accept missing (NaN) attribute values.
  /// Classifiers without explicit support would silently mispropagate NaN
  /// through their arithmetic, so callers with degraded measurements must
  /// check this.
  virtual bool handles_missing() const { return false; }

  /// Class membership distribution; default is a one-hot of predict().
  virtual std::vector<double> distribution(std::span<const double> x) const;

  /// Human-readable model dump (tree text, per-class stats, ...).
  virtual std::string describe() const = 0;

  virtual std::string name() const = 0;

  /// Fresh untrained copy with identical hyper-parameters (used by CV).
  virtual std::unique_ptr<Classifier> make_untrained() const = 0;

 protected:
  /// Stored at train() time so distribution() knows the class arity.
  std::size_t trained_num_classes_ = 0;
};

}  // namespace fsml::ml
