// Base interface shared by every classifier in fsml::ml.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace fsml::ml {

class FlatTree;

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Fits the model; may be called again to refit.
  virtual void train(const Dataset& data) = 0;

  /// Predicted class index for a feature vector. Vectors may contain
  /// kMissingValue (NaN) slots only if handles_missing() is true.
  virtual int predict(std::span<const double> x) const = 0;

  /// Whether predict()/train() accept missing (NaN) attribute values.
  /// Classifiers without explicit support would silently mispropagate NaN
  /// through their arithmetic, so callers with degraded measurements must
  /// check this.
  virtual bool handles_missing() const { return false; }

  /// Class membership distribution; default is a one-hot of predict().
  virtual std::vector<double> distribution(std::span<const double> x) const;

  /// Scratch-buffer distribution: writes into `out` (trained class arity)
  /// instead of allocating. Hot serving paths call this in a loop with one
  /// reused buffer; the default delegates to distribution() and copies.
  virtual void distribution_into(std::span<const double> x,
                                 std::span<double> out) const;

  /// Batch classify: row r of the row-major block `xs` (rows of `stride`
  /// doubles) yields out[r]. Exactly equivalent to a loop of predict();
  /// the default is that loop, so every classifier supports batching and
  /// hot ones (C45Tree via its compiled FlatTree) override it to amortize
  /// dispatch.
  virtual void classify_many(std::span<const double> xs, std::size_t stride,
                             std::span<int> out) const;

  /// Optional compiled flat form for the serving hot path; nullptr when
  /// the classifier has none (the default). The compiled form is derived —
  /// never persisted — and predicts bit-identically to this classifier.
  virtual std::shared_ptr<const FlatTree> compile() const { return nullptr; }

  /// Human-readable model dump (tree text, per-class stats, ...).
  virtual std::string describe() const = 0;

  virtual std::string name() const = 0;

  /// Fresh untrained copy with identical hyper-parameters (used by CV).
  virtual std::unique_ptr<Classifier> make_untrained() const = 0;

 protected:
  /// Stored at train() time so distribution() knows the class arity.
  std::size_t trained_num_classes_ = 0;
};

}  // namespace fsml::ml
