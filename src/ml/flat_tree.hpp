// FlatTree: a trained C45Tree compiled into one contiguous structure-of-
// arrays node pool — the serving-side inference kernel.
//
// The pointer tree (c45.hpp) is the single source of truth: it is what
// trains, prunes, serializes and persists. FlatTree is a *compiled form*
// derived from it for the classify hot path:
//
//  * one allocation — every per-node array (attribute, threshold, child
//    indices, leaf-distribution arena) lives in a single 8-byte-aligned
//    pool, so a compiled model is one cache-friendly block instead of a
//    heap-scattered unique_ptr graph;
//  * breadth-first layout — node 0 is the root and each level's nodes are
//    contiguous, so the hot top levels of the tree share cache lines;
//  * branch-predictable descent — `x[attr[i]] <= thr[i] ? left[i] :
//    right[i]` with no virtual dispatch and no per-call allocation;
//  * batch `classify_many()` — classifies a row-major block of feature
//    vectors in one call, amortizing dispatch; rows are independent, so
//    callers may split the output span across par::parallel_for workers;
//  * Quinlan fractional NaN descent — a vector with missing (NaN) slots
//    blends both branch distributions over the flat leaf arena with the
//    exact arithmetic (values, operation order, tie-breaks) of
//    C45Tree::predict/distribution.
//
// Bit-identity contract: for every input — clean or with NaN slots —
// predict(), distribution() and classify_many() return results bit-
// identical to the pointer tree they were compiled from. The compiler
// copies raw training counts (never pre-normalized ratios) so every
// floating-point expression evaluates in the same order on the same
// values; tests/flat_tree_test.cpp fuzzes the contract and
// core::FalseSharingDetector cross-checks it per lookup in debug builds,
// exactly like sim::CoherenceDirectory keeps the snoop scan as its
// reference.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/c45.hpp"

namespace fsml::ml {

class FlatTree {
 public:
  /// An empty (uncompiled) tree; predict/distribution on it throw.
  FlatTree() = default;

  /// Compiles a trained pointer tree. Throws util::CheckFailure when the
  /// tree is untrained (no root).
  static FlatTree compile(const C45Tree& tree);

  bool empty() const { return count_ == 0; }
  std::size_t num_nodes() const { return count_; }
  std::size_t num_leaves() const { return leaves_; }
  std::size_t num_classes() const { return num_classes_; }
  std::size_t num_attributes() const { return num_attributes_; }
  /// Size of the contiguous node pool, for describe/bench output.
  std::size_t pool_bytes() const { return pool_.size() * sizeof(pool_[0]); }

  /// Predicted class index; bit-identical to C45Tree::predict, including
  /// the fractional NaN descent and its first-max tie-break.
  int predict(std::span<const double> x) const;

  /// Class membership distribution, accumulated into `out` (size
  /// num_classes()) without allocating; bit-identical to
  /// C45Tree::distribution.
  void distribution_into(std::span<const double> x,
                         std::span<double> out) const;
  std::vector<double> distribution(std::span<const double> x) const;

  /// Batch classify: row r of the row-major block `xs` (rows of `stride`
  /// doubles, stride >= num_attributes()) yields out[r]. Exactly equal to
  /// a loop of predict() over the rows; `this` is immutable, so disjoint
  /// chunks of (xs, out) may run on parallel workers.
  void classify_many(std::span<const double> xs, std::size_t stride,
                     std::span<int> out) const;

 private:
  /// Raw-pointer views of every pool array, derived once per lookup (or
  /// once per batch) and passed down the descent — re-deriving them per
  /// node costs more than the descent itself on a shallow tree.
  struct View {
    const std::int32_t* attr;
    const std::int32_t* left;
    const std::int32_t* right;
    const std::int32_t* predicted;
    const std::int32_t* slot;
    const double* thr;
    const double* share;
    const double* counts;
    const double* totals;
  };
  View view() const;
  int classify_row(const View& t, const double* x) const;
  int predict_missing(const View& t, std::int32_t node,
                      const double* x) const;
  void blend(const View& t, std::int32_t node, const double* x,
             double weight, double* out) const;

  // Accessors into the single pool. Doubles and int32s share the 8-byte-
  // aligned uint64 storage; offsets are in uint64 words so default
  // copy/move keep every view valid.
  const double* thresholds() const {
    return reinterpret_cast<const double*>(pool_.data() + off_threshold_);
  }
  const double* left_shares() const {
    return reinterpret_cast<const double*>(pool_.data() + off_left_share_);
  }
  const double* leaf_counts() const {
    return reinterpret_cast<const double*>(pool_.data() + off_leaf_counts_);
  }
  const double* leaf_totals() const {
    return reinterpret_cast<const double*>(pool_.data() + off_leaf_total_);
  }
  const std::int32_t* ints(std::size_t off) const {
    return reinterpret_cast<const std::int32_t*>(pool_.data() + off);
  }
  const std::int32_t* attributes() const { return ints(off_attribute_); }
  const std::int32_t* lefts() const { return ints(off_left_); }
  const std::int32_t* rights() const { return ints(off_right_); }
  const std::int32_t* predictions() const { return ints(off_predicted_); }
  const std::int32_t* leaf_slots() const { return ints(off_leaf_slot_); }

  std::size_t count_ = 0;           ///< nodes, breadth-first; 0 == empty
  std::size_t leaves_ = 0;
  std::size_t num_classes_ = 0;
  std::size_t num_attributes_ = 0;

  std::size_t off_threshold_ = 0;   ///< double[count_]
  std::size_t off_left_share_ = 0;  ///< double[count_]; internal nodes only
  std::size_t off_leaf_counts_ = 0; ///< double[leaves_ * num_classes_]
  std::size_t off_leaf_total_ = 0;  ///< double[leaves_]
  std::size_t off_attribute_ = 0;   ///< int32[count_]
  std::size_t off_left_ = 0;        ///< int32[count_]; < 0 marks a leaf
  std::size_t off_right_ = 0;       ///< int32[count_]
  std::size_t off_predicted_ = 0;   ///< int32[count_]
  std::size_t off_leaf_slot_ = 0;   ///< int32[count_]; arena slot for leaves

  /// The single allocation backing every array above.
  std::vector<std::uint64_t> pool_;
};

}  // namespace fsml::ml
