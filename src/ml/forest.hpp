// Random forest of C4.5 trees (bagging + per-tree attribute subsampling).
// Included in the classifier-comparison ablation; not used by the paper's
// final pipeline, which picked plain J48.
#pragma once

#include <memory>
#include <vector>

#include "ml/c45.hpp"
#include "ml/classifier.hpp"
#include "util/rng.hpp"

namespace fsml::ml {

struct ForestParams {
  std::size_t num_trees = 25;
  /// Attributes sampled per tree; 0 = ceil(sqrt(num_attributes)).
  std::size_t attributes_per_tree = 0;
  std::uint64_t seed = 1;
  C45Params tree_params{.prune = false};  // forests use unpruned trees
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(ForestParams params = {});

  void train(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::vector<double> distribution(std::span<const double> x) const override;
  std::string describe() const override;
  std::string name() const override { return "RandomForest"; }
  std::unique_ptr<Classifier> make_untrained() const override;

  std::size_t num_trees() const { return trees_.size(); }

 private:
  struct Member {
    C45Tree tree;
    std::vector<std::size_t> attributes;  ///< projected attribute indices
    Member(C45Tree t, std::vector<std::size_t> a)
        : tree(std::move(t)), attributes(std::move(a)) {}
  };

  ForestParams params_;
  std::vector<Member> trees_;
};

}  // namespace fsml::ml
