#include "ml/dataset.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fsml::ml {

Dataset::Dataset(std::vector<std::string> attribute_names,
                 std::vector<std::string> class_names)
    : attribute_names_(std::move(attribute_names)),
      class_names_(std::move(class_names)) {
  FSML_CHECK_MSG(!attribute_names_.empty(), "need at least one attribute");
  FSML_CHECK_MSG(class_names_.size() >= 2, "need at least two classes");
}

void Dataset::add(std::vector<double> values, int label, double weight) {
  FSML_CHECK_MSG(values.size() == attribute_names_.size(),
                 "attribute count mismatch");
  FSML_CHECK_MSG(label >= 0 && static_cast<std::size_t>(label) <
                                   class_names_.size(),
                 "class label out of range");
  FSML_CHECK_MSG(weight > 0.0, "instance weight must be positive");
  instances_.push_back(Instance{std::move(values), label, weight});
}

void Dataset::add(const Instance& instance) {
  add(instance.x, instance.y, instance.weight);
}

std::size_t Dataset::num_incomplete() const {
  std::size_t n = 0;
  for (const Instance& inst : instances_)
    for (const double v : inst.x)
      if (is_missing(v)) {
        ++n;
        break;
      }
  return n;
}

const std::string& Dataset::class_name(int label) const {
  FSML_CHECK(label >= 0 &&
             static_cast<std::size_t>(label) < class_names_.size());
  return class_names_[static_cast<std::size_t>(label)];
}

int Dataset::class_index(const std::string& name) const {
  for (std::size_t i = 0; i < class_names_.size(); ++i)
    if (class_names_[i] == name) return static_cast<int>(i);
  return -1;
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(class_names_.size(), 0);
  for (const Instance& inst : instances_)
    ++counts[static_cast<std::size_t>(inst.y)];
  return counts;
}

int Dataset::majority_class() const {
  const auto counts = class_counts();
  return static_cast<int>(std::distance(
      counts.begin(), std::max_element(counts.begin(), counts.end())));
}

Dataset Dataset::schema_clone() const {
  return Dataset(attribute_names_, class_names_);
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out = schema_clone();
  for (const std::size_t i : indices) out.add(at(i));
  return out;
}

std::vector<std::vector<std::size_t>> Dataset::stratified_folds(
    std::size_t k, util::Rng& rng) const {
  FSML_CHECK_MSG(k >= 2, "need at least two folds");
  FSML_CHECK_MSG(k <= size(), "more folds than instances");

  std::vector<std::vector<std::size_t>> by_class(num_classes());
  for (std::size_t i = 0; i < instances_.size(); ++i)
    by_class[static_cast<std::size_t>(instances_[i].y)].push_back(i);

  std::vector<std::vector<std::size_t>> folds(k);
  std::size_t next_fold = 0;
  for (auto& members : by_class) {
    util::shuffle(members.begin(), members.end(), rng);
    for (const std::size_t idx : members) {
      folds[next_fold].push_back(idx);
      next_fold = (next_fold + 1) % k;
    }
  }
  return folds;
}

}  // namespace fsml::ml
