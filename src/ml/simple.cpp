#include "ml/simple.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace fsml::ml {

void ZeroR::train(const Dataset& data) {
  FSML_CHECK_MSG(!data.empty(), "cannot train on an empty dataset");
  trained_num_classes_ = data.num_classes();
  majority_ = data.majority_class();
  majority_name_ = data.class_name(majority_);
}

int ZeroR::predict(std::span<const double>) const { return majority_; }

std::string ZeroR::describe() const {
  return "ZeroR: always predict '" + majority_name_ + "'\n";
}

std::unique_ptr<Classifier> ZeroR::make_untrained() const {
  return std::make_unique<ZeroR>();
}

void DecisionStump::train(const Dataset& data) {
  FSML_CHECK_MSG(!data.empty(), "cannot train on an empty dataset");
  trained_num_classes_ = data.num_classes();
  const std::size_t num_classes = data.num_classes();
  const std::size_t n = data.size();

  std::size_t best_correct = 0;
  std::vector<std::size_t> sorted(n);
  for (std::size_t a = 0; a < data.num_attributes(); ++a) {
    for (std::size_t i = 0; i < n; ++i) sorted[i] = i;
    std::sort(sorted.begin(), sorted.end(), [&](std::size_t i, std::size_t j) {
      return data.at(i).x[a] < data.at(j).x[a];
    });
    std::vector<std::size_t> left(num_classes, 0);
    std::vector<std::size_t> right(num_classes, 0);
    for (const Instance& inst : data.instances())
      ++right[static_cast<std::size_t>(inst.y)];
    for (std::size_t pos = 0; pos + 1 < n; ++pos) {
      const Instance& cur = data.at(sorted[pos]);
      ++left[static_cast<std::size_t>(cur.y)];
      --right[static_cast<std::size_t>(cur.y)];
      const double next_val = data.at(sorted[pos + 1]).x[a];
      if (cur.x[a] == next_val) continue;
      const auto lbest = std::max_element(left.begin(), left.end());
      const auto rbest = std::max_element(right.begin(), right.end());
      const std::size_t correct = *lbest + *rbest;
      if (correct > best_correct) {
        best_correct = correct;
        attribute_ = a;
        threshold_ = 0.5 * (cur.x[a] + next_val);
        left_class_ = static_cast<int>(std::distance(left.begin(), lbest));
        right_class_ = static_cast<int>(std::distance(right.begin(), rbest));
        attribute_name_ = data.attribute_names()[a];
      }
    }
  }
  if (best_correct == 0) {
    // Degenerate data (all attribute values identical): act like ZeroR.
    left_class_ = right_class_ = data.majority_class();
    attribute_name_ = data.attribute_names()[0];
  }
}

int DecisionStump::predict(std::span<const double> x) const {
  FSML_CHECK_MSG(trained_num_classes_ > 0, "DecisionStump is not trained");
  return x[attribute_] <= threshold_ ? left_class_ : right_class_;
}

std::string DecisionStump::describe() const {
  std::ostringstream os;
  os << "stump: " << attribute_name_ << " <= " << threshold_ << " -> class "
     << left_class_ << ", else class " << right_class_ << '\n';
  return os.str();
}

std::unique_ptr<Classifier> DecisionStump::make_untrained() const {
  return std::make_unique<DecisionStump>();
}

}  // namespace fsml::ml
