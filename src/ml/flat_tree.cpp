#include "ml/flat_tree.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>

#include "ml/dataset.hpp"
#include "util/check.hpp"

namespace fsml::ml {

namespace {

constexpr std::int32_t kLeafMark = -1;

/// uint64 words needed for `n` int32 slots.
std::size_t int_words(std::size_t n) { return (n + 1) / 2; }

}  // namespace

FlatTree FlatTree::compile(const C45Tree& tree) {
  const C45Tree::Node* root = tree.root();
  FSML_CHECK_MSG(root != nullptr, "cannot compile an untrained C45Tree");

  // Breadth-first node order: children are assigned the next free indices
  // as their parent is visited, so node 0 is the root, a level's nodes are
  // contiguous, and both children of one split are adjacent.
  std::vector<const C45Tree::Node*> order{root};
  order.reserve(tree.num_nodes());
  std::vector<std::int32_t> left_of{kLeafMark}, right_of{kLeafMark};
  left_of.reserve(tree.num_nodes());
  right_of.reserve(tree.num_nodes());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const C45Tree::Node* node = order[i];
    if (node->is_leaf) continue;
    left_of[i] = static_cast<std::int32_t>(order.size());
    order.push_back(node->left.get());
    right_of[i] = static_cast<std::int32_t>(order.size());
    order.push_back(node->right.get());
    left_of.insert(left_of.end(), 2, kLeafMark);
    right_of.insert(right_of.end(), 2, kLeafMark);
  }
  FSML_CHECK_MSG(
      order.size() < static_cast<std::size_t>(
                         std::numeric_limits<std::int32_t>::max()),
      "tree too large to compile (node index must fit int32)");

  FlatTree out;
  out.count_ = order.size();
  out.num_classes_ = root->class_counts.size();
  out.num_attributes_ = tree.attribute_names().size();
  for (const C45Tree::Node* node : order)
    if (node->is_leaf) ++out.leaves_;

  // Single-allocation pool layout, in uint64 words.
  const std::size_t n = out.count_;
  const std::size_t iw = int_words(n);
  out.off_threshold_ = 0;
  out.off_left_share_ = n;
  out.off_leaf_counts_ = 2 * n;
  out.off_leaf_total_ = out.off_leaf_counts_ + out.leaves_ * out.num_classes_;
  out.off_attribute_ = out.off_leaf_total_ + out.leaves_;
  out.off_left_ = out.off_attribute_ + iw;
  out.off_right_ = out.off_left_ + iw;
  out.off_predicted_ = out.off_right_ + iw;
  out.off_leaf_slot_ = out.off_predicted_ + iw;
  out.pool_.assign(out.off_leaf_slot_ + iw, 0);

  auto* thresholds = reinterpret_cast<double*>(out.pool_.data());
  auto* left_shares =
      reinterpret_cast<double*>(out.pool_.data() + out.off_left_share_);
  auto* arena =
      reinterpret_cast<double*>(out.pool_.data() + out.off_leaf_counts_);
  auto* totals =
      reinterpret_cast<double*>(out.pool_.data() + out.off_leaf_total_);
  auto* attrs =
      reinterpret_cast<std::int32_t*>(out.pool_.data() + out.off_attribute_);
  auto* lefts =
      reinterpret_cast<std::int32_t*>(out.pool_.data() + out.off_left_);
  auto* rights =
      reinterpret_cast<std::int32_t*>(out.pool_.data() + out.off_right_);
  auto* predicted =
      reinterpret_cast<std::int32_t*>(out.pool_.data() + out.off_predicted_);
  auto* slots =
      reinterpret_cast<std::int32_t*>(out.pool_.data() + out.off_leaf_slot_);

  std::size_t next_slot = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const C45Tree::Node* node = order[i];
    lefts[i] = left_of[i];
    rights[i] = right_of[i];
    predicted[i] = node->predicted_class;
    if (node->is_leaf) {
      attrs[i] = 0;
      thresholds[i] = 0.0;
      left_shares[i] = 0.0;
      // Raw training counts, never pre-normalized ratios: the blend below
      // must evaluate weight * counts[k] / total in the pointer tree's
      // exact operation order to stay bit-identical.
      const std::size_t slot = next_slot++;
      slots[i] = static_cast<std::int32_t>(slot);
      std::memcpy(arena + slot * out.num_classes_, node->class_counts.data(),
                  out.num_classes_ * sizeof(double));
      totals[slot] = std::accumulate(node->class_counts.begin(),
                                     node->class_counts.end(), 0.0);
    } else {
      attrs[i] = static_cast<std::int32_t>(node->attribute);
      thresholds[i] = node->threshold;
      slots[i] = kLeafMark;
      // Precomputed NaN blend weight: identical every call, so hoisting it
      // out of the descent is exact (same accumulate order as
      // accumulate_distribution in c45.cpp).
      const double lw = std::accumulate(node->left->class_counts.begin(),
                                        node->left->class_counts.end(), 0.0);
      const double rw = std::accumulate(node->right->class_counts.begin(),
                                        node->right->class_counts.end(), 0.0);
      const double total = lw + rw;
      left_shares[i] = total > 0 ? lw / total : 0.5;
    }
  }
  FSML_DCHECK(next_slot == out.leaves_);
  return out;
}

FlatTree::View FlatTree::view() const {
  return View{attributes(), lefts(),      rights(),     predictions(),
              leaf_slots(), thresholds(), left_shares(), leaf_counts(),
              leaf_totals()};
}

void FlatTree::blend(const View& t, std::int32_t node, const double* x,
                     double weight, double* out) const {
  if (t.left[node] < 0) {  // leaf
    const std::int32_t slot = t.slot[node];
    const double total = t.totals[slot];
    const double* counts = t.counts + slot * num_classes_;
    if (total > 0) {
      for (std::size_t k = 0; k < num_classes_; ++k)
        out[k] += weight * counts[k] / total;
    } else {
      for (std::size_t k = 0; k < num_classes_; ++k)
        out[k] += weight / static_cast<double>(num_classes_);
    }
    return;
  }
  const double v = x[t.attr[node]];
  if (is_missing(v)) {
    const double left_share = t.share[node];
    blend(t, t.left[node], x, weight * left_share, out);
    blend(t, t.right[node], x, weight * (1.0 - left_share), out);
    return;
  }
  blend(t, v <= t.thr[node] ? t.left[node] : t.right[node], x, weight, out);
}

int FlatTree::predict_missing(const View& t, std::int32_t node,
                              const double* x) const {
  // The class arity is tiny (3 for the detector); a small stack buffer
  // keeps the NaN path allocation-free too.
  double inline_buf[16];
  std::vector<double> heap;
  double* dist = inline_buf;
  if (num_classes_ > 16) {
    heap.resize(num_classes_);
    dist = heap.data();
  }
  std::fill(dist, dist + num_classes_, 0.0);
  blend(t, node, x, 1.0, dist);
  return static_cast<int>(std::distance(
      dist, std::max_element(dist, dist + num_classes_)));
}

int FlatTree::classify_row(const View& t, const double* x) const {
  std::int32_t i = 0;
  while (t.left[i] >= 0) {
    const double v = x[t.attr[i]];
    if (is_missing(v)) return predict_missing(t, i, x);
    i = v <= t.thr[i] ? t.left[i] : t.right[i];
  }
  return t.predicted[i];
}

int FlatTree::predict(std::span<const double> x) const {
  FSML_CHECK_MSG(!empty(), "FlatTree is not compiled");
  FSML_CHECK_MSG(x.size() >= num_attributes_,
                 "feature vector shorter than the training schema");
  return classify_row(view(), x.data());
}

void FlatTree::distribution_into(std::span<const double> x,
                                 std::span<double> out) const {
  FSML_CHECK_MSG(!empty(), "FlatTree is not compiled");
  FSML_CHECK_MSG(x.size() >= num_attributes_,
                 "feature vector shorter than the training schema");
  FSML_CHECK_MSG(out.size() == num_classes_,
                 "distribution buffer must have num_classes() slots");
  std::fill(out.begin(), out.end(), 0.0);
  blend(view(), 0, x.data(), 1.0, out.data());
}

std::vector<double> FlatTree::distribution(std::span<const double> x) const {
  std::vector<double> out(num_classes_, 0.0);
  distribution_into(x, out);
  return out;
}

void FlatTree::classify_many(std::span<const double> xs, std::size_t stride,
                             std::span<int> out) const {
  FSML_CHECK_MSG(!empty(), "FlatTree is not compiled");
  FSML_CHECK_MSG(stride >= num_attributes_,
                 "classify_many stride shorter than the training schema");
  FSML_CHECK_MSG(xs.size() >= stride * out.size(),
                 "classify_many input block shorter than out.size() rows");
  // The batch win: the array pointers are derived once, into a View the
  // row loop keeps in registers. Deriving them per row (as the single-
  // vector predict must) costs more than a full descent on a shallow tree,
  // and the store to out[r] could alias pool_, so the compiler cannot
  // hoist member loads itself.
  const View t = view();
  const double* row = xs.data();
  for (std::size_t r = 0; r < out.size(); ++r, row += stride)
    out[r] = classify_row(t, row);
}

}  // namespace fsml::ml
