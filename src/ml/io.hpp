// Dataset and model serialization.
//
// Datasets: CSV (read/write) and ARFF (write) — ARFF being Weka's native
// format, so collected training data can be loaded into the actual Weka J48
// for an external cross-check.
//
// Models: a versioned, integrity-checked container around C45Tree's raw
// text payload, so a trained tree survives process restarts and a corrupt
// or mismatched file is rejected with an actionable error instead of
// silently mis-predicting:
//
//   fsml-model v<format-version>
//   schema <16-hex FNV hash of attribute + class names>
//   payload <byte count>
//   <payload: the fsml-c45 v1 text stream>
//   crc32 <8-hex CRC of the payload bytes>
//
// load_model verifies, in order: magic, version (newer-than-build files are
// rejected, not guessed at), payload framing, CRC, and that the embedded
// schema hash matches the payload's actual attribute/class names. A loaded
// tree predicts bit-identically to the tree that was saved.
//
// Model files persist only the pointer tree. The compiled serving form
// (ml::FlatTree) is never written to disk — every loader recompiles it from
// the loaded tree, so the persisted payload stays the single source of
// truth and a format bump is never needed for flat-layout changes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "ml/c45.hpp"
#include "ml/dataset.hpp"

namespace fsml::ml {

/// CSV layout: header "attr1,...,attrN,class"; one instance per row with
/// the class written by name.
void write_csv(const Dataset& data, std::ostream& os);

/// Reads the CSV layout produced by write_csv. Class names are taken from
/// `class_names` (rows with unknown classes raise).
Dataset read_csv(std::istream& is, const std::vector<std::string>& class_names);

/// Weka ARFF with numeric attributes and a nominal class.
void write_arff(const Dataset& data, const std::string& relation,
                std::ostream& os);

// ---- versioned model persistence -------------------------------------------

/// Current model container format version.
inline constexpr std::uint32_t kModelFormatVersion = 2;

/// The raw contents of an fsml-model container: an opaque text payload plus
/// the schema fingerprint the writer embedded. The container framing (magic,
/// version, payload byte count, CRC32) is shared by every model kind this
/// library persists — the C4.5 tree and the zero-positive anomaly model —
/// so corruption handling and version policy live in exactly one place.
struct ModelContainer {
  std::string payload;
  std::uint64_t schema = 0;
};

/// Writes the container framing around `payload`.
void write_container(std::ostream& os, const std::string& payload,
                     std::uint64_t schema);

/// Reads and verifies a container: magic, version (newer-than-build files
/// are rejected, not guessed at), payload framing, and CRC. Schema
/// *semantics* are the caller's to check — the container only transports the
/// hash. Throws std::runtime_error with an actionable message.
ModelContainer read_container(std::istream& is);

/// Order-sensitive FNV-1a hash over attribute names then class names — the
/// feature-schema fingerprint embedded in model files.
std::uint64_t schema_hash(const std::vector<std::string>& attributes,
                          const std::vector<std::string>& classes);

/// Writes the versioned, checksummed model container.
void save_model(const C45Tree& tree, std::ostream& os);

/// Reads a model container, verifying magic, version, framing, CRC, and
/// schema hash. Throws std::runtime_error with an actionable message on any
/// mismatch. Also accepts a bare legacy "fsml-c45 v1" stream (pre-container
/// files) so existing models keep loading.
C45Tree load_model(std::istream& is, C45Params params = {});

/// File variants. save_model_file writes atomically (util::AtomicFile):
/// a crash mid-save leaves the previous model intact.
void save_model_file(const C45Tree& tree, const std::string& path);
C45Tree load_model_file(const std::string& path, C45Params params = {});

}  // namespace fsml::ml
