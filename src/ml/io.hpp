// Dataset serialization: CSV (read/write) and ARFF (write) — ARFF being
// Weka's native format, so collected training data can be loaded into the
// actual Weka J48 for an external cross-check.
#pragma once

#include <iosfwd>
#include <string>

#include "ml/dataset.hpp"

namespace fsml::ml {

/// CSV layout: header "attr1,...,attrN,class"; one instance per row with
/// the class written by name.
void write_csv(const Dataset& data, std::ostream& os);

/// Reads the CSV layout produced by write_csv. Class names are taken from
/// `class_names` (rows with unknown classes raise).
Dataset read_csv(std::istream& is, const std::vector<std::string>& class_names);

/// Weka ARFF with numeric attributes and a nominal class.
void write_arff(const Dataset& data, const std::string& relation,
                std::ostream& os);

}  // namespace fsml::ml
