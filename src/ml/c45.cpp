#include "ml/c45.hpp"

#include "ml/flat_tree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace fsml::ml {

namespace {

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9). Needed for the pruning confidence bound.
double normal_inverse(double p) {
  FSML_CHECK(p > 0.0 && p < 1.0);
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1 - p_low;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

double log2_safe(double x) { return x <= 0.0 ? 0.0 : std::log2(x); }

}  // namespace

double entropy(std::span<const double> counts) {
  double total = 0.0;
  for (double c : counts) total += c;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    const double p = c / total;
    h -= p * std::log2(p);
  }
  return h;
}

double added_errors(double n, double e, double confidence) {
  FSML_CHECK(n > 0.0 && e >= 0.0 && e <= n);
  FSML_CHECK(confidence > 0.0 && confidence < 1.0);
  if (e < 1.0) {
    // Exact binomial bound for the zero-error case, interpolated below one
    // error (this is what both C4.5 and Weka do).
    const double base = n * (1.0 - std::pow(confidence, 1.0 / n));
    if (e == 0.0) return base;
    return base + e * (added_errors(n, 1.0, confidence) - base);
  }
  if (e + 0.5 >= n) return std::max(n - e, 0.0);
  const double z = normal_inverse(1.0 - confidence);
  const double f = (e + 0.5) / n;
  const double r =
      (f + z * z / (2 * n) +
       z * std::sqrt(f / n - f * f / n + z * z / (4 * n * n))) /
      (1 + z * z / n);
  return r * n - e;
}

std::size_t C45Tree::Node::count_leaves() const {
  if (is_leaf) return 1;
  return left->count_leaves() + right->count_leaves();
}

std::size_t C45Tree::Node::count_nodes() const {
  if (is_leaf) return 1;
  return 1 + left->count_nodes() + right->count_nodes();
}

C45Tree::C45Tree(C45Params params) : params_(params) {}
C45Tree::~C45Tree() = default;

namespace {

std::unique_ptr<C45Tree::Node> clone_node(const C45Tree::Node* n) {
  if (!n) return nullptr;
  auto out = std::make_unique<C45Tree::Node>();
  out->is_leaf = n->is_leaf;
  out->predicted_class = n->predicted_class;
  out->class_counts = n->class_counts;
  out->training_errors = n->training_errors;
  out->attribute = n->attribute;
  out->threshold = n->threshold;
  out->left = clone_node(n->left.get());
  out->right = clone_node(n->right.get());
  return out;
}

}  // namespace

C45Tree::C45Tree(const C45Tree& other)
    : Classifier(other),
      params_(other.params_),
      root_(clone_node(other.root_.get())),
      attribute_names_(other.attribute_names_),
      class_names_(other.class_names_) {}

std::unique_ptr<Classifier> C45Tree::make_untrained() const {
  return std::make_unique<C45Tree>(params_);
}

namespace {

/// One (possibly fractional) training instance inside the builder. Fully
/// observed data keeps weight exactly 1.0, so every weighted sum below
/// reproduces the integer-count arithmetic bit-for-bit; only instances
/// missing a split attribute are ever subdivided.
struct Item {
  std::size_t index = 0;
  double weight = 1.0;
};

/// Fractional weights below this are dropped when an instance is split
/// across branches — they cannot influence a (min 2 instances) leaf and
/// bounding them keeps item lists from growing without bound on data with
/// many missing values.
constexpr double kMinItemWeight = 1e-6;

struct Builder {
  const Dataset& data;
  const C45Params& params;

  struct BestSplit {
    std::size_t attribute = 0;
    double threshold = 0.0;
    double gain = 0.0;
    double gain_ratio = 0.0;
  };

  std::unique_ptr<C45Tree::Node> build(std::vector<Item>& items, int depth) {
    auto node = std::make_unique<C45Tree::Node>();
    node->class_counts.assign(data.num_classes(), 0.0);
    double n = 0.0;
    for (const Item& it : items) {
      node->class_counts[static_cast<std::size_t>(data.at(it.index).y)] +=
          it.weight;
      n += it.weight;
    }
    const auto max_it = std::max_element(node->class_counts.begin(),
                                         node->class_counts.end());
    node->predicted_class =
        static_cast<int>(std::distance(node->class_counts.begin(), max_it));
    node->training_errors = n - *max_it;

    const bool pure = *max_it == n;
    if (pure || n < 2.0 * static_cast<double>(params.min_leaf_instances) ||
        depth >= params.max_depth) {
      return node;  // leaf
    }

    const auto best = find_best_split(items, n);
    if (!best) return node;

    // Known values pick a side; instances missing the split attribute go to
    // BOTH sides, weighted by the known-value proportions (Quinlan ch. 5).
    double left_known = 0.0, known = 0.0;
    for (const Item& it : items) {
      const double v = data.at(it.index).x[best->attribute];
      if (is_missing(v)) continue;
      known += it.weight;
      if (v <= best->threshold) left_known += it.weight;
    }
    const double left_share = left_known / known;

    std::vector<Item> left_items, right_items;
    left_items.reserve(items.size());
    right_items.reserve(items.size());
    for (const Item& it : items) {
      const double v = data.at(it.index).x[best->attribute];
      if (is_missing(v)) {
        const double lw = it.weight * left_share;
        const double rw = it.weight - lw;
        if (lw >= kMinItemWeight) left_items.push_back({it.index, lw});
        if (rw >= kMinItemWeight) right_items.push_back({it.index, rw});
        continue;
      }
      (v <= best->threshold ? left_items : right_items).push_back(it);
    }
    FSML_DCHECK(!left_items.empty() && !right_items.empty());

    node->is_leaf = false;
    node->attribute = best->attribute;
    node->threshold = best->threshold;
    node->left = build(left_items, depth + 1);
    node->right = build(right_items, depth + 1);
    return node;
  }

  std::optional<BestSplit> find_best_split(const std::vector<Item>& items,
                                           double total_weight) {
    const std::size_t num_classes = data.num_classes();

    std::vector<BestSplit> candidates;  // best per attribute
    std::vector<Item> sorted;
    std::vector<double> known_counts(num_classes);

    for (std::size_t a = 0; a < data.num_attributes(); ++a) {
      // Gain is computed on the instances whose value for `a` is known,
      // then discounted by the known fraction F = known/total. With no
      // missing values F is exactly 1 and this matches the unweighted
      // criterion bit-for-bit.
      sorted.clear();
      std::fill(known_counts.begin(), known_counts.end(), 0.0);
      double known_weight = 0.0;
      for (const Item& it : items) {
        if (is_missing(data.at(it.index).x[a])) continue;
        sorted.push_back(it);
        known_counts[static_cast<std::size_t>(data.at(it.index).y)] +=
            it.weight;
        known_weight += it.weight;
      }
      if (sorted.size() < 2) continue;
      std::sort(sorted.begin(), sorted.end(),
                [&](const Item& i, const Item& j) {
                  return data.at(i.index).x[a] < data.at(j.index).x[a];
                });

      const double base_entropy = entropy(known_counts);
      const double known_fraction = known_weight / total_weight;
      const double missing_weight = total_weight - known_weight;

      std::vector<double> left_counts(num_classes, 0.0);
      std::vector<double> right_counts = known_counts;

      double best_gain = 0.0;
      double best_threshold = 0.0;
      double best_split_info = 0.0;
      std::size_t num_candidates = 0;
      bool found = false;

      double left_weight = 0.0;
      for (std::size_t pos = 0; pos + 1 < sorted.size(); ++pos) {
        const Instance& cur = data.at(sorted[pos].index);
        left_counts[static_cast<std::size_t>(cur.y)] += sorted[pos].weight;
        right_counts[static_cast<std::size_t>(cur.y)] -= sorted[pos].weight;
        left_weight += sorted[pos].weight;
        const double next_val = data.at(sorted[pos + 1].index).x[a];
        if (cur.x[a] == next_val) continue;  // not a cut point
        const double right_weight = known_weight - left_weight;
        if (left_weight < static_cast<double>(params.min_leaf_instances) ||
            right_weight < static_cast<double>(params.min_leaf_instances))
          continue;
        ++num_candidates;
        const double pl = left_weight / known_weight;
        const double pr = right_weight / known_weight;
        const double gain =
            known_fraction * (base_entropy - pl * entropy(left_counts) -
                              pr * entropy(right_counts));
        if (gain > best_gain) {
          best_gain = gain;
          best_threshold = 0.5 * (cur.x[a] + next_val);
          // Split info charges the *three*-way partition the split actually
          // induces: left, right, and the unknown bucket.
          const double ql = left_weight / total_weight;
          const double qr = right_weight / total_weight;
          const double qm = missing_weight / total_weight;
          best_split_info = -ql * log2_safe(ql) - qr * log2_safe(qr) -
                            (qm > 0.0 ? qm * log2_safe(qm) : 0.0);
          found = true;
        }
      }

      if (!found) continue;
      // C4.5 Release-8 MDL correction: charge log2(#thresholds)/n bits for
      // having chosen among num_candidates cut points.
      if (params.mdl_correction && num_candidates > 0)
        best_gain -= std::log2(static_cast<double>(num_candidates)) /
                     total_weight;
      if (best_gain <= 0.0) continue;
      BestSplit s;
      s.attribute = a;
      s.threshold = best_threshold;
      s.gain = best_gain;
      s.gain_ratio = best_split_info > 0 ? best_gain / best_split_info : 0.0;
      candidates.push_back(s);
    }

    if (candidates.empty()) return std::nullopt;

    // C4.5's two-stage criterion: among attributes whose gain is at least
    // the average gain of all viable attributes, pick the best gain ratio.
    double avg_gain = 0.0;
    for (const auto& c : candidates) avg_gain += c.gain;
    avg_gain /= static_cast<double>(candidates.size());

    const BestSplit* best = nullptr;
    for (const auto& c : candidates) {
      if (c.gain + 1e-12 < avg_gain) continue;
      if (!best || c.gain_ratio > best->gain_ratio) best = &c;
    }
    FSML_DCHECK(best != nullptr);
    return *best;
  }
};

/// Pessimistic-error pruning: replace a subtree by a leaf when the leaf's
/// upper-bound error estimate does not exceed the subtree's.
double pessimistic_errors(const C45Tree::Node& node, double cf) {
  const double n = std::accumulate(node.class_counts.begin(),
                                   node.class_counts.end(), 0.0);
  if (node.is_leaf)
    return node.training_errors + added_errors(n, node.training_errors, cf);
  return pessimistic_errors(*node.left, cf) +
         pessimistic_errors(*node.right, cf);
}

void prune_node(C45Tree::Node& node, double cf) {
  if (node.is_leaf) return;
  prune_node(*node.left, cf);
  prune_node(*node.right, cf);
  const double n = std::accumulate(node.class_counts.begin(),
                                   node.class_counts.end(), 0.0);
  const double as_leaf =
      node.training_errors + added_errors(n, node.training_errors, cf);
  const double as_subtree = pessimistic_errors(node, cf);
  if (as_leaf <= as_subtree + 0.1) {
    node.is_leaf = true;
    node.left.reset();
    node.right.reset();
  }
}

}  // namespace

void C45Tree::train(const Dataset& data) {
  FSML_CHECK_MSG(!data.empty(), "cannot train on an empty dataset");
  attribute_names_ = data.attribute_names();
  class_names_ = data.class_names();
  trained_num_classes_ = data.num_classes();

  std::vector<Item> items(data.size());
  for (std::size_t i = 0; i < items.size(); ++i)
    items[i] = Item{i, data.at(i).weight};
  Builder builder{data, params_};
  root_ = builder.build(items, 0);
  if (params_.prune) prune_node(*root_, params_.confidence_factor);
}

namespace {

/// Adds this subtree's class distribution for `x`, scaled by `weight`. A
/// node testing a missing attribute forwards the instance down both
/// branches in proportion to the training weight each branch received.
void accumulate_distribution(const C45Tree::Node& node,
                             std::span<const double> x, double weight,
                             std::span<double> out) {
  if (node.is_leaf) {
    const double total = std::accumulate(node.class_counts.begin(),
                                         node.class_counts.end(), 0.0);
    if (total > 0) {
      for (std::size_t i = 0; i < out.size(); ++i)
        out[i] += weight * node.class_counts[i] / total;
    } else {
      for (double& o : out) o += weight / static_cast<double>(out.size());
    }
    return;
  }
  const double v = x[node.attribute];
  if (is_missing(v)) {
    const double lw = std::accumulate(node.left->class_counts.begin(),
                                      node.left->class_counts.end(), 0.0);
    const double rw = std::accumulate(node.right->class_counts.begin(),
                                      node.right->class_counts.end(), 0.0);
    const double total = lw + rw;
    const double left_share = total > 0 ? lw / total : 0.5;
    accumulate_distribution(*node.left, x, weight * left_share, out);
    accumulate_distribution(*node.right, x, weight * (1.0 - left_share),
                            out);
    return;
  }
  accumulate_distribution(v <= node.threshold ? *node.left : *node.right, x,
                          weight, out);
}

}  // namespace

int C45Tree::predict(std::span<const double> x) const {
  FSML_CHECK_MSG(root_ != nullptr, "C45Tree is not trained");
  const std::size_t k = root_->class_counts.size();
  double inline_buf[16];
  if (k <= 16) return predict(x, std::span<double>(inline_buf, k));
  std::vector<double> scratch(k);
  return predict(x, scratch);
}

int C45Tree::predict(std::span<const double> x,
                     std::span<double> scratch) const {
  FSML_CHECK_MSG(root_ != nullptr, "C45Tree is not trained");
  const Node* node = root_.get();
  while (!node->is_leaf) {
    const double v = x[node->attribute];
    if (is_missing(v)) {
      // Fractional descent from here on; argmax of the combined
      // distribution (ties resolve to the lowest class index, like
      // max_element over class_counts does on the fast path).
      FSML_CHECK_MSG(scratch.size() == root_->class_counts.size(),
                     "predict scratch must have the trained class arity");
      std::fill(scratch.begin(), scratch.end(), 0.0);
      accumulate_distribution(*node, x, 1.0, scratch);
      return static_cast<int>(std::distance(
          scratch.begin(),
          std::max_element(scratch.begin(), scratch.end())));
    }
    node = v <= node->threshold ? node->left.get() : node->right.get();
  }
  return node->predicted_class;
}

std::vector<double> C45Tree::distribution(std::span<const double> x) const {
  FSML_CHECK_MSG(root_ != nullptr, "C45Tree is not trained");
  std::vector<double> dist(root_->class_counts.size(), 0.0);
  accumulate_distribution(*root_, x, 1.0, dist);
  return dist;
}

void C45Tree::distribution_into(std::span<const double> x,
                                std::span<double> out) const {
  FSML_CHECK_MSG(root_ != nullptr, "C45Tree is not trained");
  FSML_CHECK_MSG(out.size() == root_->class_counts.size(),
                 "distribution buffer must have the trained class arity");
  std::fill(out.begin(), out.end(), 0.0);
  accumulate_distribution(*root_, x, 1.0, out);
}

void C45Tree::classify_many(std::span<const double> xs, std::size_t stride,
                            std::span<int> out) const {
  FSML_CHECK_MSG(root_ != nullptr, "C45Tree is not trained");
  FSML_CHECK_MSG(stride >= 1, "classify_many stride must be >= 1");
  FSML_CHECK_MSG(xs.size() >= stride * out.size(),
                 "classify_many input block shorter than out.size() rows");
  std::vector<double> scratch(root_->class_counts.size());
  for (std::size_t r = 0; r < out.size(); ++r)
    out[r] = predict(xs.subspan(r * stride, stride), scratch);
}

std::shared_ptr<const FlatTree> C45Tree::compile() const {
  if (!root_) return nullptr;
  return std::make_shared<const FlatTree>(FlatTree::compile(*this));
}

namespace {

void describe_node(const C45Tree::Node& node,
                   const std::vector<std::string>& attribute_names,
                   const std::vector<std::string>& class_names,
                   const std::string& indent, std::ostringstream& os) {
  const auto leaf_text = [&](const C45Tree::Node& leaf) {
    const double total = std::accumulate(leaf.class_counts.begin(),
                                         leaf.class_counts.end(), 0.0);
    std::ostringstream t;
    t << class_names[static_cast<std::size_t>(leaf.predicted_class)] << " ("
      << total;
    if (leaf.training_errors > 0) t << '/' << leaf.training_errors;
    t << ')';
    return t.str();
  };
  const auto child = [&](const C45Tree::Node& c, const std::string& test) {
    os << indent << attribute_names[node.attribute] << ' ' << test << ' '
       << node.threshold;
    if (c.is_leaf) {
      os << ": " << leaf_text(c) << '\n';
    } else {
      os << '\n';
      describe_node(c, attribute_names, class_names, indent + "|   ", os);
    }
  };
  child(*node.left, "<=");
  child(*node.right, ">");
}

}  // namespace

std::string C45Tree::describe() const {
  std::ostringstream os;
  if (!root_) return "(untrained)\n";
  if (root_->is_leaf) {
    os << class_names_[static_cast<std::size_t>(root_->predicted_class)]
       << " (all)\n";
    return os.str();
  }
  describe_node(*root_, attribute_names_, class_names_, "", os);
  os << "\nNumber of Leaves  : " << num_leaves() << '\n';
  os << "Size of the tree  : " << num_nodes() << '\n';
  return os.str();
}

std::size_t C45Tree::num_leaves() const {
  return root_ ? root_->count_leaves() : 0;
}

std::size_t C45Tree::num_nodes() const {
  return root_ ? root_->count_nodes() : 0;
}

namespace {

void collect_attributes(const C45Tree::Node& node,
                        std::vector<std::size_t>& out) {
  if (node.is_leaf) return;
  if (std::find(out.begin(), out.end(), node.attribute) == out.end())
    out.push_back(node.attribute);
  collect_attributes(*node.left, out);
  collect_attributes(*node.right, out);
}

void save_node(const C45Tree::Node& node, std::ostream& os) {
  if (node.is_leaf) {
    os << "L " << node.predicted_class << ' ' << node.class_counts.size();
    for (const double c : node.class_counts) os << ' ' << c;
    os << ' ' << node.training_errors << '\n';
    return;
  }
  os << "N " << node.attribute << ' ' << node.threshold << '\n';
  save_node(*node.left, os);
  save_node(*node.right, os);
}

std::unique_ptr<C45Tree::Node> load_node(std::istream& is) {
  std::string kind;
  is >> kind;
  FSML_CHECK_MSG(static_cast<bool>(is), "truncated tree file");
  auto node = std::make_unique<C45Tree::Node>();
  if (kind == "L") {
    std::size_t k = 0;
    is >> node->predicted_class >> k;
    node->class_counts.resize(k);
    for (double& c : node->class_counts) is >> c;
    is >> node->training_errors;
    FSML_CHECK_MSG(static_cast<bool>(is), "malformed leaf record");
    return node;
  }
  FSML_CHECK_MSG(kind == "N", "unknown node kind '" + kind + "'");
  node->is_leaf = false;
  is >> node->attribute >> node->threshold;
  FSML_CHECK_MSG(static_cast<bool>(is), "malformed node record");
  node->left = load_node(is);
  node->right = load_node(is);
  // Recompute leaf-derived fields for internal nodes.
  node->class_counts.assign(node->left->class_counts.size(), 0.0);
  for (std::size_t i = 0; i < node->class_counts.size(); ++i)
    node->class_counts[i] =
        node->left->class_counts[i] + node->right->class_counts[i];
  const auto max_it = std::max_element(node->class_counts.begin(),
                                       node->class_counts.end());
  node->predicted_class =
      static_cast<int>(std::distance(node->class_counts.begin(), max_it));
  node->training_errors =
      std::accumulate(node->class_counts.begin(), node->class_counts.end(),
                      0.0) -
      *max_it;
  return node;
}

}  // namespace

std::vector<std::size_t> C45Tree::used_attributes() const {
  std::vector<std::size_t> out;
  if (root_) collect_attributes(*root_, out);
  return out;
}

void C45Tree::save(std::ostream& os) const {
  FSML_CHECK_MSG(root_ != nullptr, "cannot save an untrained tree");
  // max_digits10 makes the text round trip exact: fractional leaf counts
  // (missing-value training splits instances fractionally) must reload to
  // the same bits, or a recompiled FlatTree would drift from the original.
  const std::streamsize old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "fsml-c45 v1\n";
  os << "classes " << class_names_.size();
  for (const auto& c : class_names_) os << ' ' << c;
  os << '\n';
  os << "attributes " << attribute_names_.size();
  for (const auto& a : attribute_names_) os << ' ' << a;
  os << '\n';
  save_node(*root_, os);
  os.precision(old_precision);
}

C45Tree C45Tree::load(std::istream& is, C45Params params) {
  std::string magic, version;
  is >> magic >> version;
  FSML_CHECK_MSG(magic == "fsml-c45" && version == "v1",
                 "not a fsml-c45 v1 model file");
  C45Tree tree(params);
  std::string keyword;
  std::size_t count = 0;
  is >> keyword >> count;
  FSML_CHECK_MSG(keyword == "classes", "expected 'classes'");
  tree.class_names_.resize(count);
  for (auto& c : tree.class_names_) is >> c;
  is >> keyword >> count;
  FSML_CHECK_MSG(keyword == "attributes", "expected 'attributes'");
  tree.attribute_names_.resize(count);
  for (auto& a : tree.attribute_names_) is >> a;
  FSML_CHECK_MSG(static_cast<bool>(is), "malformed model header");
  tree.root_ = load_node(is);
  tree.trained_num_classes_ = tree.class_names_.size();
  return tree;
}

}  // namespace fsml::ml
