#include "ml/io.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace fsml::ml {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  return fields;
}

}  // namespace

void write_csv(const Dataset& data, std::ostream& os) {
  for (const auto& name : data.attribute_names()) os << name << ',';
  os << "class\n";
  os << std::setprecision(17);
  for (const Instance& inst : data.instances()) {
    for (const double v : inst.x) os << v << ',';
    os << data.class_name(inst.y) << '\n';
  }
}

Dataset read_csv(std::istream& is,
                 const std::vector<std::string>& class_names) {
  std::string line;
  FSML_CHECK_MSG(static_cast<bool>(std::getline(is, line)),
                 "empty CSV stream");
  auto header = split_csv_line(line);
  FSML_CHECK_MSG(header.size() >= 2 && header.back() == "class",
                 "CSV header must end with 'class'");
  header.pop_back();
  Dataset data(header, class_names);

  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto fields = split_csv_line(line);
    if (fields.size() != header.size() + 1)
      throw std::runtime_error("CSV line " + std::to_string(lineno) +
                               ": wrong field count");
    std::vector<double> x;
    x.reserve(header.size());
    for (std::size_t i = 0; i < header.size(); ++i)
      x.push_back(std::stod(fields[i]));
    const int label = data.class_index(fields.back());
    if (label < 0)
      throw std::runtime_error("CSV line " + std::to_string(lineno) +
                               ": unknown class '" + fields.back() + "'");
    data.add(std::move(x), label);
  }
  return data;
}

void write_arff(const Dataset& data, const std::string& relation,
                std::ostream& os) {
  os << "@relation " << relation << '\n' << '\n';
  for (const auto& name : data.attribute_names())
    os << "@attribute " << name << " numeric\n";
  os << "@attribute class {";
  for (std::size_t i = 0; i < data.class_names().size(); ++i) {
    if (i) os << ',';
    os << data.class_names()[i];
  }
  os << "}\n\n@data\n";
  os << std::setprecision(17);
  for (const Instance& inst : data.instances()) {
    for (const double v : inst.x) os << v << ',';
    os << data.class_name(inst.y) << '\n';
  }
}

}  // namespace fsml::ml
