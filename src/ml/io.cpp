#include "ml/io.hpp"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"

namespace fsml::ml {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  return fields;
}

}  // namespace

void write_csv(const Dataset& data, std::ostream& os) {
  for (const auto& name : data.attribute_names()) os << name << ',';
  os << "class\n";
  os << std::setprecision(17);
  for (const Instance& inst : data.instances()) {
    for (const double v : inst.x) os << v << ',';
    os << data.class_name(inst.y) << '\n';
  }
}

Dataset read_csv(std::istream& is,
                 const std::vector<std::string>& class_names) {
  std::string line;
  FSML_CHECK_MSG(static_cast<bool>(std::getline(is, line)),
                 "empty CSV stream");
  auto header = split_csv_line(line);
  FSML_CHECK_MSG(header.size() >= 2 && header.back() == "class",
                 "CSV header must end with 'class'");
  header.pop_back();
  Dataset data(header, class_names);

  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto fields = split_csv_line(line);
    if (fields.size() != header.size() + 1)
      throw std::runtime_error("CSV line " + std::to_string(lineno) +
                               ": wrong field count");
    std::vector<double> x;
    x.reserve(header.size());
    for (std::size_t i = 0; i < header.size(); ++i)
      x.push_back(std::stod(fields[i]));
    const int label = data.class_index(fields.back());
    if (label < 0)
      throw std::runtime_error("CSV line " + std::to_string(lineno) +
                               ": unknown class '" + fields.back() + "'");
    data.add(std::move(x), label);
  }
  return data;
}

void write_arff(const Dataset& data, const std::string& relation,
                std::ostream& os) {
  os << "@relation " << relation << '\n' << '\n';
  for (const auto& name : data.attribute_names())
    os << "@attribute " << name << " numeric\n";
  os << "@attribute class {";
  for (std::size_t i = 0; i < data.class_names().size(); ++i) {
    if (i) os << ',';
    os << data.class_names()[i];
  }
  os << "}\n\n@data\n";
  os << std::setprecision(17);
  for (const Instance& inst : data.instances()) {
    for (const double v : inst.x) os << v << ',';
    os << data.class_name(inst.y) << '\n';
  }
}

// ---- versioned model persistence -------------------------------------------

namespace {

constexpr const char* kModelMagic = "fsml-model";

[[noreturn]] void model_error(const std::string& what) {
  throw std::runtime_error(
      "model file: " + what +
      " — if the file is damaged, delete it and retrain with "
      "`fsml_analyze train`");
}

}  // namespace

std::uint64_t schema_hash(const std::vector<std::string>& attributes,
                          const std::vector<std::string>& classes) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::string_view s) {
    for (const char c : s) h = (h ^ static_cast<std::uint64_t>(c)) *
                               1099511628211ULL;
    h = (h ^ 0x1Fu) * 1099511628211ULL;  // name separator
  };
  for (const auto& a : attributes) mix(a);
  mix("|");  // attribute/class boundary
  for (const auto& c : classes) mix(c);
  return h;
}

void write_container(std::ostream& os, const std::string& payload,
                     std::uint64_t schema) {
  char schema_hex[32], crc[16];
  std::snprintf(schema_hex, sizeof schema_hex, "%016llx",
                static_cast<unsigned long long>(schema));
  std::snprintf(crc, sizeof crc, "%08x", util::crc32(payload));

  os << kModelMagic << " v" << kModelFormatVersion << '\n'
     << "schema " << schema_hex << '\n'
     << "payload " << payload.size() << '\n'
     << payload << "crc32 " << crc << '\n';
}

ModelContainer read_container(std::istream& is) {
  std::string magic;
  is >> magic;
  if (!is) model_error("empty or unreadable stream");
  if (magic != kModelMagic)
    model_error("bad magic '" + magic + "' (expected '" + kModelMagic +
                "'): not an fsml model file");

  std::string version;
  is >> version;
  unsigned parsed_version = 0;
  if (std::sscanf(version.c_str(), "v%u", &parsed_version) != 1)
    model_error("malformed version '" + version + "'");
  if (parsed_version != kModelFormatVersion)
    model_error("format v" + std::to_string(parsed_version) +
                " is not supported by this build (expects v" +
                std::to_string(kModelFormatVersion) +
                "); retrain or use a matching fsml build");

  std::string keyword;
  ModelContainer out;
  unsigned long long schema = 0;
  is >> keyword >> std::hex >> schema >> std::dec;
  if (!is || keyword != "schema") model_error("malformed schema line");
  out.schema = schema;
  std::size_t payload_bytes = 0;
  is >> keyword >> payload_bytes;
  if (!is || keyword != "payload") model_error("malformed payload header");
  is.ignore(1);  // the newline ending the payload header

  out.payload.assign(payload_bytes, '\0');
  is.read(out.payload.data(), static_cast<std::streamsize>(payload_bytes));
  if (is.gcount() != static_cast<std::streamsize>(payload_bytes))
    model_error("truncated payload (expected " +
                std::to_string(payload_bytes) + " bytes, got " +
                std::to_string(is.gcount()) + ")");

  unsigned long long crc = 0;
  is >> keyword >> std::hex >> crc >> std::dec;
  if (!is || keyword != "crc32") model_error("missing CRC footer");
  if (util::crc32(out.payload) != crc)
    model_error("CRC mismatch: the file is corrupt");
  return out;
}

void save_model(const C45Tree& tree, std::ostream& os) {
  std::ostringstream payload;
  tree.save(payload);
  write_container(os, payload.str(),
                  schema_hash(tree.attribute_names(), tree.class_names()));
}

C45Tree load_model(std::istream& is, C45Params params) {
  std::string magic;
  is >> magic;
  if (!is) model_error("empty or unreadable stream");
  is.seekg(0);
  if (magic == "fsml-c45") {
    // Legacy bare payload (pre-container): load directly.
    return C45Tree::load(is, params);
  }

  const ModelContainer container = read_container(is);
  std::istringstream ps(container.payload);
  C45Tree tree = C45Tree::load(ps, params);
  if (schema_hash(tree.attribute_names(), tree.class_names()) !=
      container.schema)
    model_error("schema hash does not match the payload: the file is "
                "corrupt or was tampered with");
  return tree;
}

void save_model_file(const C45Tree& tree, const std::string& path) {
  util::AtomicFile file(path);
  save_model(tree, file.stream());
  file.commit();
}

C45Tree load_model_file(const std::string& path, C45Params params) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    throw std::runtime_error("cannot open model file " + path +
                             " — train one with `fsml_analyze train "
                             "--save-model=" + path + "`");
  try {
    return load_model(is, params);
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace fsml::ml
