// Gaussian naive Bayes — one of the "several classifiers available in the
// public domain" the paper experimented with before settling on J48
// (Section 3). Kept as a comparison point for the ablation bench.
#pragma once

#include <vector>

#include "ml/classifier.hpp"

namespace fsml::ml {

class NaiveBayes final : public Classifier {
 public:
  void train(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::vector<double> distribution(std::span<const double> x) const override;
  std::string describe() const override;
  std::string name() const override { return "NaiveBayes (Gaussian)"; }
  std::unique_ptr<Classifier> make_untrained() const override;

 private:
  std::vector<double> log_prior_;                 // [class]
  std::vector<std::vector<double>> mean_;         // [class][attribute]
  std::vector<std::vector<double>> variance_;     // [class][attribute]
  std::vector<std::string> class_names_;
};

}  // namespace fsml::ml
