// C45Tree: a from-scratch implementation of the C4.5 decision-tree learner
// (Quinlan 1992) in the configuration Weka's J48 uses by default — the
// classifier the paper selected after comparing several (Section 3).
//
// Supported features (continuous attributes, which is all our data has):
//  * binary threshold splits on continuous attributes;
//  * split selection by gain ratio among attributes with at least average
//    information gain (C4.5's two-stage criterion);
//  * the Release-8 MDL correction for continuous splits
//    (gain -= log2(#candidate thresholds)/n);
//  * minimum-instances-per-leaf stopping (J48 default 2);
//  * pessimistic error pruning with confidence factor 0.25 (J48 default),
//    using the binomial upper-confidence error estimate;
//  * Quinlan's fractional-instance missing-value handling: gains are
//    computed on known values and scaled by the known fraction, instances
//    missing the split attribute descend both branches with proportional
//    weights, and classification of a vector with NaN slots combines the
//    branch distributions the same way. Training and classifying datasets
//    without missing values is bit-identical to a tree without this
//    machinery (weights are exactly 1.0 and all scale factors cancel).
//
// The learned tree can be rendered as text (the paper's Figure 2) and
// serialized/deserialized for model persistence.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>

#include "ml/classifier.hpp"

namespace fsml::ml {

struct C45Params {
  std::size_t min_leaf_instances = 2;   ///< J48 "-M 2"
  double confidence_factor = 0.25;      ///< J48 "-C 0.25"; pruning strength
  bool prune = true;                    ///< pessimistic pruning on/off
  bool mdl_correction = true;           ///< C4.5 Rel-8 continuous-split fix
  int max_depth = 64;                   ///< safety bound
};

class C45Tree final : public Classifier {
 public:
  explicit C45Tree(C45Params params = {});
  C45Tree(const C45Tree& other);
  C45Tree(C45Tree&&) noexcept = default;
  C45Tree& operator=(C45Tree&&) noexcept = default;
  ~C45Tree() override;

  void train(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  /// Scratch-buffer predict: identical result, but the fractional NaN
  /// descent accumulates into `scratch` (trained class arity) instead of
  /// allocating per call — the serve vote loop reuses one buffer.
  int predict(std::span<const double> x, std::span<double> scratch) const;
  std::vector<double> distribution(std::span<const double> x) const override;
  /// Allocation-free distribution into a caller-owned buffer.
  void distribution_into(std::span<const double> x,
                         std::span<double> out) const override;
  /// Loop of scratch-buffer predict(); the compiled FlatTree (flat_tree.hpp)
  /// is the faster batch kernel when the pointer walk itself is the cost.
  void classify_many(std::span<const double> xs, std::size_t stride,
                     std::span<int> out) const override;
  /// Compiles this tree into its flat SoA serving form (bit-identical
  /// predictions); nullptr before train()/load().
  std::shared_ptr<const FlatTree> compile() const override;
  std::string describe() const override;
  std::string name() const override {
    return params_.prune ? "J48 (C4.5)" : "J48 (C4.5, unpruned)";
  }
  bool handles_missing() const override { return true; }
  std::unique_ptr<Classifier> make_untrained() const override;

  const C45Params& params() const { return params_; }

  /// Leaf count / total node count of the trained tree (Figure 2 reports
  /// "6 leaves and 11 nodes").
  std::size_t num_leaves() const;
  std::size_t num_nodes() const;

  /// Attribute indices actually used at decision nodes (Figure 2 shows the
  /// model uses only 4 of the 15 features).
  std::vector<std::size_t> used_attributes() const;

  /// Serialization: a small line-oriented text format. This is the *raw*
  /// payload; durable model files wrap it in the versioned, checksummed
  /// container of ml/io.hpp (save_model/load_model).
  void save(std::ostream& os) const;
  static C45Tree load(std::istream& is, C45Params params = {});

  /// Training schema (set by train() or load()); empty before either.
  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }
  const std::vector<std::string>& class_names() const { return class_names_; }

  struct Node;  // exposed for white-box tests

  /// Root access for structural tests; nullptr before train().
  const Node* root() const { return root_.get(); }

 private:
  C45Params params_;
  std::unique_ptr<Node> root_;
  std::vector<std::string> attribute_names_;
  std::vector<std::string> class_names_;
};

/// Tree node. Leaves carry a class distribution; internal nodes carry a
/// threshold test "x[attribute] <= threshold ? left : right".
struct C45Tree::Node {
  bool is_leaf = true;
  int predicted_class = 0;
  std::vector<double> class_counts;  ///< training distribution at this node
  double training_errors = 0.0;      ///< misclassified training instances

  std::size_t attribute = 0;
  double threshold = 0.0;
  std::unique_ptr<Node> left;   ///< x[attribute] <= threshold
  std::unique_ptr<Node> right;  ///< x[attribute] >  threshold

  std::size_t count_leaves() const;
  std::size_t count_nodes() const;
};

// ---- information-theory helpers (exposed for unit tests) -------------------

/// Shannon entropy in bits of a count vector.
double entropy(std::span<const double> counts);

/// Binomial upper-confidence-bound *additional* errors: given `n` instances
/// at a leaf of which `e` are errors, the pessimistic estimate adds this
/// many errors (C4.5's U_CF(e, n) * n - e; Weka Stats::addErrs).
double added_errors(double n, double e, double confidence);

}  // namespace fsml::ml
