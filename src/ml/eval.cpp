#include "ml/eval.hpp"

#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace fsml::ml {

ConfusionMatrix::ConfusionMatrix(std::vector<std::string> class_names)
    : class_names_(std::move(class_names)),
      cells_(class_names_.size() * class_names_.size(), 0) {
  FSML_CHECK(!class_names_.empty());
}

void ConfusionMatrix::record(int actual, int predicted) {
  const auto k = class_names_.size();
  FSML_CHECK(actual >= 0 && static_cast<std::size_t>(actual) < k);
  FSML_CHECK(predicted >= 0 && static_cast<std::size_t>(predicted) < k);
  ++cells_[static_cast<std::size_t>(actual) * k +
           static_cast<std::size_t>(predicted)];
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  FSML_CHECK(other.cells_.size() == cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
}

std::uint64_t ConfusionMatrix::at(int actual, int predicted) const {
  const auto k = class_names_.size();
  return cells_[static_cast<std::size_t>(actual) * k +
                static_cast<std::size_t>(predicted)];
}

std::uint64_t ConfusionMatrix::total() const {
  std::uint64_t t = 0;
  for (const auto c : cells_) t += c;
  return t;
}

std::uint64_t ConfusionMatrix::correct() const {
  std::uint64_t t = 0;
  const auto k = class_names_.size();
  for (std::size_t i = 0; i < k; ++i) t += cells_[i * k + i];
  return t;
}

double ConfusionMatrix::accuracy() const {
  const std::uint64_t n = total();
  return n == 0 ? 0.0 : static_cast<double>(correct()) / static_cast<double>(n);
}

double ConfusionMatrix::false_positive_rate(int class_index) const {
  const auto k = static_cast<int>(class_names_.size());
  std::uint64_t fp = 0, negatives = 0;
  for (int a = 0; a < k; ++a) {
    if (a == class_index) continue;
    for (int p = 0; p < k; ++p) {
      negatives += at(a, p);
      if (p == class_index) fp += at(a, p);
    }
  }
  return negatives == 0
             ? 0.0
             : static_cast<double>(fp) / static_cast<double>(negatives);
}

double ConfusionMatrix::recall(int class_index) const {
  const auto k = static_cast<int>(class_names_.size());
  std::uint64_t tp = at(class_index, class_index), actual = 0;
  for (int p = 0; p < k; ++p) actual += at(class_index, p);
  return actual == 0 ? 0.0
                     : static_cast<double>(tp) / static_cast<double>(actual);
}

double ConfusionMatrix::precision(int class_index) const {
  const auto k = static_cast<int>(class_names_.size());
  std::uint64_t tp = at(class_index, class_index), predicted = 0;
  for (int a = 0; a < k; ++a) predicted += at(a, class_index);
  return predicted == 0
             ? 0.0
             : static_cast<double>(tp) / static_cast<double>(predicted);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream os;
  const auto k = static_cast<int>(class_names_.size());
  std::size_t w = 8;
  for (const auto& n : class_names_) w = std::max(w, n.size() + 2);
  os << std::setw(static_cast<int>(w)) << "actual\\pred";
  for (const auto& n : class_names_)
    os << std::setw(static_cast<int>(w)) << n;
  os << '\n';
  for (int a = 0; a < k; ++a) {
    os << std::setw(static_cast<int>(w))
       << class_names_[static_cast<std::size_t>(a)];
    for (int p = 0; p < k; ++p)
      os << std::setw(static_cast<int>(w)) << at(a, p);
    os << '\n';
  }
  return os.str();
}

CrossValidationResult cross_validate(const Classifier& prototype,
                                     const Dataset& data, std::size_t k,
                                     util::Rng& rng) {
  const auto folds = data.stratified_folds(k, rng);
  CrossValidationResult result{ConfusionMatrix(data.class_names()), 0.0, {}};

  for (std::size_t f = 0; f < k; ++f) {
    std::vector<std::size_t> train_idx;
    for (std::size_t g = 0; g < k; ++g)
      if (g != f)
        train_idx.insert(train_idx.end(), folds[g].begin(), folds[g].end());

    const Dataset train_set = data.subset(train_idx);
    const Dataset test_set = data.subset(folds[f]);
    auto model = prototype.make_untrained();
    model->train(train_set);

    ConfusionMatrix fold_cm(data.class_names());
    for (const Instance& inst : test_set.instances())
      fold_cm.record(inst.y, model->predict(inst.x));
    result.fold_accuracy.push_back(fold_cm.accuracy());
    result.confusion.merge(fold_cm);
  }
  result.accuracy = result.confusion.accuracy();
  return result;
}

ConfusionMatrix evaluate_on(const Classifier& trained, const Dataset& test) {
  ConfusionMatrix cm(test.class_names());
  for (const Instance& inst : test.instances())
    cm.record(inst.y, trained.predict(inst.x));
  return cm;
}

}  // namespace fsml::ml
