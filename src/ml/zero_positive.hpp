// ZeroPositiveModel: a reconstruction-error anomaly detector trained only
// on *good* runs (zero-positive learning — no labelled bad examples).
//
// The paper's J48 tree only knows the ~30 workloads it was trained on; the
// zero-positive model complements it by learning what "normal" looks like
// and flagging anything that reconstructs poorly, which generalizes to
// workloads the labelled corpus never saw:
//
//  * every feature is z-normalized with the good-run mean/std (a per-feature
//    normalizer, with a relative floor so near-constant features still
//    discriminate without exploding on rounding noise);
//  * an autoencoder-lite PCA (Jacobi eigendecomposition of the normalized
//    covariance) keeps the top components explaining `variance_captured` of
//    the good-run variance; the anomaly score of a vector is its mean
//    squared reconstruction residual after projecting onto that subspace;
//  * the alarm threshold is calibrated on a seeded held-out split of the
//    good rows: `threshold_margin` times the `quantile` of their scores —
//    so the false-alarm budget on normal data is set by construction, not
//    hand-tuned.
//
// Everything is a pure function of (rows, params): the held-out split is
// drawn with the library's pinned shuffle from `params.seed`, the
// eigensolver is deterministic, and save/load round-trips scores
// bit-identically through the versioned fsml-model container (ml/io.hpp).
//
// Missing features (NaN slots from degraded measurement) impute the
// good-run mean — a neutral value that biases toward "normal", matching the
// detector's abstain-rather-than-alarm degradation contract.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace fsml::ml {

struct ZeroPositiveParams {
  /// Fraction of good-run variance the kept PCA components must explain.
  double variance_captured = 0.95;
  /// Hard cap on kept components (the "bottleneck" width).
  std::size_t max_components = 8;
  /// Fraction of good rows held out for threshold calibration.
  double calibration_fraction = 0.25;
  /// Score quantile of the held-out rows used as the calibration point
  /// (1.0 = their maximum).
  double quantile = 1.0;
  /// Safety factor applied on top of the calibration quantile.
  double threshold_margin = 2.0;
  /// Seed of the held-out split.
  std::uint64_t seed = 42;

  /// Throws std::runtime_error on out-of-range values.
  void validate() const;
};

class ZeroPositiveModel {
 public:
  explicit ZeroPositiveModel(ZeroPositiveParams params = {});

  /// Fits normalizer, components, and threshold on good-run feature rows.
  /// Requires at least 4 rows, all of `names.size()` finite values.
  void fit(const std::vector<std::vector<double>>& good_rows,
           std::vector<std::string> names);

  bool fitted() const { return fitted_; }
  const ZeroPositiveParams& params() const { return params_; }

  /// Mean squared reconstruction residual per feature (z-space). NaN slots
  /// impute the good-run mean. Requires fitted().
  double score(std::span<const double> x) const;

  /// score(x) > threshold(): the run does not look like any good run seen
  /// in training.
  bool anomalous(std::span<const double> x) const {
    return score(x) > threshold();
  }

  double threshold() const;
  std::size_t num_components() const { return components_.size(); }
  std::size_t num_features() const { return names_.size(); }
  const std::vector<std::string>& feature_names() const { return names_; }

  /// "zero-positive: 17 features, 4 components, threshold 3.1e-02 ..."
  std::string describe() const;

  /// Raw "fsml-zero-positive v1" payload; file variants wrap it in the
  /// versioned, checksummed fsml-model container and write atomically.
  void save(std::ostream& os) const;
  static ZeroPositiveModel load(std::istream& is);
  void save_file(const std::string& path) const;
  static ZeroPositiveModel load_file(const std::string& path);

 private:
  ZeroPositiveParams params_;
  std::vector<std::string> names_;
  std::vector<double> mean_;
  std::vector<double> inv_std_;
  std::vector<std::vector<double>> components_;  ///< k x d, orthonormal
  double threshold_ = 0.0;
  bool fitted_ = false;
};

}  // namespace fsml::ml
