#include "ml/forest.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace fsml::ml {

RandomForest::RandomForest(ForestParams params) : params_(params) {}

void RandomForest::train(const Dataset& data) {
  FSML_CHECK_MSG(!data.empty(), "cannot train on an empty dataset");
  trained_num_classes_ = data.num_classes();
  trees_.clear();
  util::Rng rng(params_.seed);

  std::size_t attrs_per_tree = params_.attributes_per_tree;
  if (attrs_per_tree == 0)
    attrs_per_tree = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(data.num_attributes()))));
  attrs_per_tree = std::min(attrs_per_tree, data.num_attributes());

  std::vector<std::size_t> all_attrs(data.num_attributes());
  std::iota(all_attrs.begin(), all_attrs.end(), 0);

  for (std::size_t t = 0; t < params_.num_trees; ++t) {
    // Attribute subsample.
    std::vector<std::size_t> attrs = all_attrs;
    util::shuffle(attrs.begin(), attrs.end(), rng);
    attrs.resize(attrs_per_tree);
    std::sort(attrs.begin(), attrs.end());

    // Projected schema + bootstrap sample.
    std::vector<std::string> names;
    names.reserve(attrs.size());
    for (const std::size_t a : attrs) names.push_back(data.attribute_names()[a]);
    Dataset boot(names, data.class_names());
    for (std::size_t i = 0; i < data.size(); ++i) {
      const Instance& src = data.at(rng.next_below(data.size()));
      std::vector<double> x;
      x.reserve(attrs.size());
      for (const std::size_t a : attrs) x.push_back(src.x[a]);
      boot.add(std::move(x), src.y);
    }

    C45Tree tree(params_.tree_params);
    tree.train(boot);
    trees_.emplace_back(std::move(tree), std::move(attrs));
  }
}

std::vector<double> RandomForest::distribution(
    std::span<const double> x) const {
  FSML_CHECK_MSG(!trees_.empty(), "RandomForest is not trained");
  std::vector<double> votes(trained_num_classes_, 0.0);
  std::vector<double> projected;
  for (const Member& m : trees_) {
    projected.clear();
    for (const std::size_t a : m.attributes) projected.push_back(x[a]);
    votes[static_cast<std::size_t>(m.tree.predict(projected))] += 1.0;
  }
  for (double& v : votes) v /= static_cast<double>(trees_.size());
  return votes;
}

int RandomForest::predict(std::span<const double> x) const {
  const auto votes = distribution(x);
  return static_cast<int>(std::distance(
      votes.begin(), std::max_element(votes.begin(), votes.end())));
}

std::string RandomForest::describe() const {
  std::ostringstream os;
  os << "random forest of " << trees_.size() << " unpruned C4.5 trees\n";
  return os.str();
}

std::unique_ptr<Classifier> RandomForest::make_untrained() const {
  return std::make_unique<RandomForest>(params_);
}

}  // namespace fsml::ml
