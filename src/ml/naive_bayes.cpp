#include "ml/naive_bayes.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace fsml::ml {

namespace {
// Variance floor keeps degenerate (constant) attributes from producing
// infinite densities; normalized event counts can legally be all-zero.
constexpr double kVarianceFloor = 1e-12;
}  // namespace

void NaiveBayes::train(const Dataset& data) {
  FSML_CHECK_MSG(!data.empty(), "cannot train on an empty dataset");
  const std::size_t num_classes = data.num_classes();
  const std::size_t num_attrs = data.num_attributes();
  trained_num_classes_ = num_classes;
  class_names_ = data.class_names();

  const auto counts = data.class_counts();
  log_prior_.assign(num_classes, 0.0);
  mean_.assign(num_classes, std::vector<double>(num_attrs, 0.0));
  variance_.assign(num_classes, std::vector<double>(num_attrs, 0.0));

  for (const Instance& inst : data.instances()) {
    auto& m = mean_[static_cast<std::size_t>(inst.y)];
    for (std::size_t a = 0; a < num_attrs; ++a) m[a] += inst.x[a];
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    // Laplace-smoothed class prior.
    log_prior_[c] = std::log(
        (static_cast<double>(counts[c]) + 1.0) /
        (static_cast<double>(data.size()) + static_cast<double>(num_classes)));
    if (counts[c] == 0) continue;
    for (double& m : mean_[c]) m /= static_cast<double>(counts[c]);
  }
  for (const Instance& inst : data.instances()) {
    const auto c = static_cast<std::size_t>(inst.y);
    for (std::size_t a = 0; a < num_attrs; ++a) {
      const double d = inst.x[a] - mean_[c][a];
      variance_[c][a] += d * d;
    }
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    for (double& v : variance_[c]) {
      if (counts[c] > 1) v /= static_cast<double>(counts[c] - 1);
      v = std::max(v, kVarianceFloor);
    }
  }
}

std::vector<double> NaiveBayes::distribution(std::span<const double> x) const {
  FSML_CHECK_MSG(trained_num_classes_ > 0, "NaiveBayes is not trained");
  std::vector<double> log_post(trained_num_classes_);
  for (std::size_t c = 0; c < trained_num_classes_; ++c) {
    double lp = log_prior_[c];
    for (std::size_t a = 0; a < x.size(); ++a) {
      const double v = variance_[c][a];
      const double d = x[a] - mean_[c][a];
      lp += -0.5 * (std::log(2 * M_PI * v) + d * d / v);
    }
    log_post[c] = lp;
  }
  const double mx = *std::max_element(log_post.begin(), log_post.end());
  double sum = 0.0;
  std::vector<double> dist(trained_num_classes_);
  for (std::size_t c = 0; c < trained_num_classes_; ++c) {
    dist[c] = std::exp(log_post[c] - mx);
    sum += dist[c];
  }
  for (double& d : dist) d /= sum;
  return dist;
}

int NaiveBayes::predict(std::span<const double> x) const {
  const auto dist = distribution(x);
  return static_cast<int>(std::distance(
      dist.begin(), std::max_element(dist.begin(), dist.end())));
}

std::string NaiveBayes::describe() const {
  std::ostringstream os;
  os << "Gaussian naive Bayes over " << mean_.empty() << " classes\n";
  for (std::size_t c = 0; c < class_names_.size(); ++c)
    os << "  class " << class_names_[c]
       << " log-prior=" << log_prior_[c] << '\n';
  return os.str();
}

std::unique_ptr<Classifier> NaiveBayes::make_untrained() const {
  return std::make_unique<NaiveBayes>();
}

}  // namespace fsml::ml
