#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace fsml::ml {

void KnnClassifier::train(const Dataset& data) {
  FSML_CHECK_MSG(!data.empty(), "cannot train on an empty dataset");
  FSML_CHECK_MSG(k_ >= 1, "k must be positive");
  trained_num_classes_ = data.num_classes();
  const std::size_t num_attrs = data.num_attributes();

  mean_.assign(num_attrs, 0.0);
  stdev_.assign(num_attrs, 0.0);
  for (const Instance& inst : data.instances())
    for (std::size_t a = 0; a < num_attrs; ++a) mean_[a] += inst.x[a];
  for (double& m : mean_) m /= static_cast<double>(data.size());
  for (const Instance& inst : data.instances())
    for (std::size_t a = 0; a < num_attrs; ++a) {
      const double d = inst.x[a] - mean_[a];
      stdev_[a] += d * d;
    }
  for (double& s : stdev_) {
    s = std::sqrt(s / static_cast<double>(data.size()));
    if (s < 1e-12) s = 1.0;  // constant attribute: contributes nothing
  }

  train_set_.clear();
  train_set_.reserve(data.size());
  for (const Instance& inst : data.instances())
    train_set_.push_back(Instance{standardize(inst.x), inst.y});
}

std::vector<double> KnnClassifier::standardize(
    std::span<const double> x) const {
  std::vector<double> z(x.size());
  for (std::size_t a = 0; a < x.size(); ++a)
    z[a] = (x[a] - mean_[a]) / stdev_[a];
  return z;
}

std::vector<double> KnnClassifier::distribution(
    std::span<const double> x) const {
  FSML_CHECK_MSG(!train_set_.empty(), "KnnClassifier is not trained");
  const std::vector<double> z = standardize(x);

  std::vector<std::pair<double, int>> dist;  // (distance^2, class)
  dist.reserve(train_set_.size());
  for (const Instance& inst : train_set_) {
    double d2 = 0.0;
    for (std::size_t a = 0; a < z.size(); ++a) {
      const double d = z[a] - inst.x[a];
      d2 += d * d;
    }
    dist.emplace_back(d2, inst.y);
  }
  const std::size_t k = std::min(k_, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                    dist.end());
  std::vector<double> votes(trained_num_classes_, 0.0);
  for (std::size_t i = 0; i < k; ++i)
    votes[static_cast<std::size_t>(dist[i].second)] += 1.0;
  for (double& v : votes) v /= static_cast<double>(k);
  return votes;
}

int KnnClassifier::predict(std::span<const double> x) const {
  const auto votes = distribution(x);
  return static_cast<int>(std::distance(
      votes.begin(), std::max_element(votes.begin(), votes.end())));
}

std::string KnnClassifier::describe() const {
  std::ostringstream os;
  os << k_ << "-NN over " << train_set_.size()
     << " standardized training instances\n";
  return os.str();
}

std::string KnnClassifier::name() const {
  return std::to_string(k_) + "-NN";
}

std::unique_ptr<Classifier> KnnClassifier::make_untrained() const {
  return std::make_unique<KnnClassifier>(k_);
}

}  // namespace fsml::ml
