// Dataset: labelled numeric feature vectors for the classifiers.
//
// All attributes are continuous (the paper's features are normalized event
// counts); the class attribute is nominal. Layout and terminology follow
// Weka loosely so the J48 comparison in the paper maps one-to-one.
//
// Missing values: an attribute value of NaN (kMissingValue) marks a feature
// that was not measured — e.g. a PMU event dropped under counter
// multiplexing. C4.5 handles them with Quinlan's fractional-instance
// scheme; the other classifiers do not (see Classifier::handles_missing).
// Instances also carry a weight, which that scheme uses to distribute an
// instance fractionally across tree branches; fully-observed data always
// has weight 1.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace fsml::ml {

/// Sentinel for an unmeasured attribute value.
inline constexpr double kMissingValue =
    std::numeric_limits<double>::quiet_NaN();

inline bool is_missing(double v) { return std::isnan(v); }

struct Instance {
  std::vector<double> x;  ///< attribute values; NaN = missing
  int y = 0;              ///< class index
  double weight = 1.0;    ///< fractional-instance weight (training only)
};

class Dataset {
 public:
  Dataset(std::vector<std::string> attribute_names,
          std::vector<std::string> class_names);

  void add(std::vector<double> values, int label, double weight = 1.0);
  void add(const Instance& instance);

  /// Instances with at least one missing attribute value.
  std::size_t num_incomplete() const;

  std::size_t size() const { return instances_.size(); }
  bool empty() const { return instances_.empty(); }
  std::size_t num_attributes() const { return attribute_names_.size(); }
  std::size_t num_classes() const { return class_names_.size(); }

  const Instance& at(std::size_t i) const { return instances_.at(i); }
  const std::vector<Instance>& instances() const { return instances_; }

  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }
  const std::vector<std::string>& class_names() const { return class_names_; }
  const std::string& class_name(int label) const;
  int class_index(const std::string& name) const;  ///< -1 if unknown

  /// Instances per class.
  std::vector<std::size_t> class_counts() const;
  /// Index of the most frequent class (ties -> lowest index).
  int majority_class() const;

  /// Empty dataset with the same schema.
  Dataset schema_clone() const;

  /// Subset by instance indices.
  Dataset subset(std::span<const std::size_t> indices) const;

  /// Stratified k-fold split: returns, per fold, the *test* indices. Each
  /// class's instances are shuffled (deterministically from rng) and dealt
  /// round-robin, matching Weka's stratified CV behaviour.
  std::vector<std::vector<std::size_t>> stratified_folds(std::size_t k,
                                                         util::Rng& rng) const;

 private:
  std::vector<std::string> attribute_names_;
  std::vector<std::string> class_names_;
  std::vector<Instance> instances_;
};

}  // namespace fsml::ml
