#include "ml/classifier.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fsml::ml {

std::vector<double> Classifier::distribution(std::span<const double> x) const {
  FSML_CHECK_MSG(trained_num_classes_ > 0, "classifier is not trained");
  std::vector<double> dist(trained_num_classes_, 0.0);
  dist[static_cast<std::size_t>(predict(x))] = 1.0;
  return dist;
}

void Classifier::distribution_into(std::span<const double> x,
                                   std::span<double> out) const {
  const std::vector<double> dist = distribution(x);
  FSML_CHECK_MSG(out.size() == dist.size(),
                 "distribution buffer must have the trained class arity");
  std::copy(dist.begin(), dist.end(), out.begin());
}

void Classifier::classify_many(std::span<const double> xs, std::size_t stride,
                               std::span<int> out) const {
  FSML_CHECK_MSG(stride >= 1, "classify_many stride must be >= 1");
  FSML_CHECK_MSG(xs.size() >= stride * out.size(),
                 "classify_many input block shorter than out.size() rows");
  for (std::size_t r = 0; r < out.size(); ++r)
    out[r] = predict(xs.subspan(r * stride, stride));
}

}  // namespace fsml::ml
