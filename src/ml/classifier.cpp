#include "ml/classifier.hpp"

#include "util/check.hpp"

namespace fsml::ml {

std::vector<double> Classifier::distribution(std::span<const double> x) const {
  FSML_CHECK_MSG(trained_num_classes_ > 0, "classifier is not trained");
  std::vector<double> dist(trained_num_classes_, 0.0);
  dist[static_cast<std::size_t>(predict(x))] = 1.0;
  return dist;
}

}  // namespace fsml::ml
