// Model evaluation: confusion matrices and Weka-style stratified k-fold
// cross-validation (the paper's Table 4 reports stratified 10-fold CV).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace fsml::ml {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::vector<std::string> class_names);

  void record(int actual, int predicted);
  void merge(const ConfusionMatrix& other);

  std::uint64_t at(int actual, int predicted) const;
  std::uint64_t total() const;
  std::uint64_t correct() const;
  double accuracy() const;

  /// Predicted-as-`predicted` among actual-not-`predicted` over all
  /// actual-not-`predicted` — per-class false-positive rate.
  double false_positive_rate(int class_index) const;
  double recall(int class_index) const;
  double precision(int class_index) const;

  std::size_t num_classes() const { return class_names_.size(); }
  const std::vector<std::string>& class_names() const { return class_names_; }

  /// Paper-style rendering (actual rows, predicted columns).
  std::string to_string() const;

 private:
  std::vector<std::string> class_names_;
  std::vector<std::uint64_t> cells_;  // actual * k + predicted
};

struct CrossValidationResult {
  ConfusionMatrix confusion;
  double accuracy = 0.0;
  std::vector<double> fold_accuracy;
};

/// Stratified k-fold CV: trains a fresh copy of `prototype` per fold on the
/// other k-1 folds and scores on the held-out fold.
CrossValidationResult cross_validate(const Classifier& prototype,
                                     const Dataset& data, std::size_t k,
                                     util::Rng& rng);

/// Resubstitution evaluation (train == test), for sanity checks.
ConfusionMatrix evaluate_on(const Classifier& trained, const Dataset& test);

}  // namespace fsml::ml
