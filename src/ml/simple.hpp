// Baseline classifiers: ZeroR (majority class) and OneR-style decision
// stump (best single-attribute threshold). These anchor the ablation bench:
// any useful event set must beat ZeroR, and the stump shows how far one
// event alone (e.g. HITM) gets.
#pragma once

#include "ml/classifier.hpp"

namespace fsml::ml {

class ZeroR final : public Classifier {
 public:
  void train(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::string describe() const override;
  std::string name() const override { return "ZeroR"; }
  std::unique_ptr<Classifier> make_untrained() const override;

 private:
  int majority_ = 0;
  std::string majority_name_;
};

class DecisionStump final : public Classifier {
 public:
  void train(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::string describe() const override;
  std::string name() const override { return "OneR-stump"; }
  std::unique_ptr<Classifier> make_untrained() const override;

  std::size_t attribute() const { return attribute_; }
  double threshold() const { return threshold_; }

 private:
  std::size_t attribute_ = 0;
  double threshold_ = 0.0;
  int left_class_ = 0;   ///< prediction for x[attr] <= threshold
  int right_class_ = 0;  ///< prediction for x[attr] > threshold
  std::string attribute_name_;
};

}  // namespace fsml::ml
