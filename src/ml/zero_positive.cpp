#include "ml/zero_positive.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "ml/io.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fsml::ml {

namespace {

constexpr const char* kPayloadMagic = "fsml-zero-positive";
constexpr int kPayloadVersion = 1;

[[noreturn]] void zp_error(const std::string& what) {
  throw std::runtime_error("zero-positive model: " + what);
}

/// The per-feature std floor: a feature that is (near-)constant over the
/// good runs still discriminates — a bad run deviating from the constant
/// gets a large z — but double-rounding noise around a large mean must not
/// explode, so the floor is relative to the mean's magnitude.
double std_floor(double mean) {
  return 1e-9 + 1e-6 * std::fabs(mean);
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix. Deterministic:
/// fixed sweep order, fixed convergence bound. `a` is destroyed; returns
/// eigenvalues, fills `vectors` with the matching orthonormal eigenvectors
/// (row per eigenvalue).
std::vector<double> jacobi_eigen(std::vector<std::vector<double>> a,
                                 std::vector<std::vector<double>>& vectors) {
  const std::size_t d = a.size();
  vectors.assign(d, std::vector<double>(d, 0.0));
  for (std::size_t i = 0; i < d; ++i) vectors[i][i] = 1.0;

  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < d; ++p)
      for (std::size_t q = p + 1; q < d; ++q) off += a[p][q] * a[p][q];
    if (off < 1e-24) break;

    for (std::size_t p = 0; p < d; ++p) {
      for (std::size_t q = p + 1; q < d; ++q) {
        if (std::fabs(a[p][q]) < 1e-300) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < d; ++k) {
          const double akp = a[k][p], akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < d; ++k) {
          const double apk = a[p][k], aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < d; ++k) {
          const double vpk = vectors[p][k], vqk = vectors[q][k];
          vectors[p][k] = c * vpk - s * vqk;
          vectors[q][k] = s * vpk + c * vqk;
        }
      }
    }
  }

  std::vector<double> eigenvalues(d);
  for (std::size_t i = 0; i < d; ++i) eigenvalues[i] = a[i][i];
  return eigenvalues;
}

/// Quantile of a sorted sample (nearest-rank on the inclusive scale:
/// q=1.0 -> max, q=0.0 -> min).
double sorted_quantile(const std::vector<double>& sorted, double q) {
  FSML_CHECK(!sorted.empty());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

void ZeroPositiveParams::validate() const {
  const auto in_unit = [](double v) {
    return !std::isnan(v) && v >= 0.0 && v <= 1.0;
  };
  if (!in_unit(variance_captured) || variance_captured <= 0.0)
    zp_error("variance_captured must be in (0, 1]");
  if (max_components < 1 || max_components > 64)
    zp_error("max_components must be in 1..64");
  if (!in_unit(calibration_fraction) || calibration_fraction <= 0.0 ||
      calibration_fraction >= 1.0)
    zp_error("calibration_fraction must be in (0, 1)");
  if (!in_unit(quantile)) zp_error("quantile must be in [0, 1]");
  if (std::isnan(threshold_margin) || threshold_margin < 1.0 ||
      threshold_margin > 1e6)
    zp_error("threshold_margin must be in [1, 1e6]");
}

ZeroPositiveModel::ZeroPositiveModel(ZeroPositiveParams params)
    : params_(params) {}

void ZeroPositiveModel::fit(const std::vector<std::vector<double>>& good_rows,
                            std::vector<std::string> names) {
  params_.validate();
  const std::size_t d = names.size();
  if (d == 0) zp_error("cannot fit on an empty feature schema");
  if (good_rows.size() < 4)
    zp_error("needs at least 4 good runs to fit and calibrate, got " +
             std::to_string(good_rows.size()));
  for (const auto& row : good_rows) {
    if (row.size() != d)
      zp_error("row width " + std::to_string(row.size()) +
               " does not match the feature schema (" + std::to_string(d) +
               ")");
    for (const double v : row)
      if (!std::isfinite(v))
        zp_error("training rows must be fully observed and finite "
                 "(good-run collection never drops events)");
  }

  // Seeded held-out split: calibration rows never influence the normalizer
  // or the components, so the threshold measures genuine generalization
  // error on unseen good runs.
  std::vector<std::size_t> order(good_rows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  util::Rng rng(params_.seed);
  util::shuffle(order.begin(), order.end(), rng);
  std::size_t n_calib = static_cast<std::size_t>(
      params_.calibration_fraction * static_cast<double>(order.size()));
  n_calib = std::max<std::size_t>(1, n_calib);
  n_calib = std::min(n_calib, order.size() - 2);  // keep >= 2 fit rows
  const std::size_t n_fit = order.size() - n_calib;

  names_ = std::move(names);

  // Per-feature normalizer from the fit split.
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 0.0);
  for (std::size_t r = 0; r < n_fit; ++r)
    for (std::size_t j = 0; j < d; ++j) mean_[j] += good_rows[order[r]][j];
  for (double& m : mean_) m /= static_cast<double>(n_fit);
  std::vector<double> var(d, 0.0);
  for (std::size_t r = 0; r < n_fit; ++r)
    for (std::size_t j = 0; j < d; ++j) {
      const double dv = good_rows[order[r]][j] - mean_[j];
      var[j] += dv * dv;
    }
  for (std::size_t j = 0; j < d; ++j) {
    const double s = std::sqrt(var[j] / static_cast<double>(n_fit));
    inv_std_[j] = 1.0 / std::max(s, std_floor(mean_[j]));
  }

  // Covariance of the z-scored fit rows (== their correlation matrix).
  std::vector<std::vector<double>> z(n_fit, std::vector<double>(d));
  for (std::size_t r = 0; r < n_fit; ++r)
    for (std::size_t j = 0; j < d; ++j)
      z[r][j] = (good_rows[order[r]][j] - mean_[j]) * inv_std_[j];
  std::vector<std::vector<double>> cov(d, std::vector<double>(d, 0.0));
  for (std::size_t r = 0; r < n_fit; ++r)
    for (std::size_t i = 0; i < d; ++i)
      for (std::size_t j = i; j < d; ++j) cov[i][j] += z[r][i] * z[r][j];
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = i; j < d; ++j) {
      cov[i][j] /= static_cast<double>(n_fit);
      cov[j][i] = cov[i][j];
    }

  std::vector<std::vector<double>> vectors;
  const std::vector<double> eigenvalues = jacobi_eigen(cov, vectors);

  // Keep the smallest component set explaining `variance_captured` of the
  // (clamped-positive) total, capped at max_components. Ties and order are
  // pinned: sort by (eigenvalue desc, index asc).
  std::vector<std::size_t> by_value(d);
  for (std::size_t i = 0; i < d; ++i) by_value[i] = i;
  std::sort(by_value.begin(), by_value.end(),
            [&](std::size_t a, std::size_t b) {
              if (eigenvalues[a] != eigenvalues[b])
                return eigenvalues[a] > eigenvalues[b];
              return a < b;
            });
  double total = 0.0;
  for (const double ev : eigenvalues) total += std::max(ev, 0.0);
  components_.clear();
  double captured = 0.0;
  for (const std::size_t i : by_value) {
    if (components_.size() >= params_.max_components) break;
    if (!components_.empty() &&
        captured >= params_.variance_captured * total)
      break;
    // Deterministic sign convention: first component of largest magnitude
    // is positive.
    std::vector<double> v = vectors[i];
    std::size_t arg = 0;
    for (std::size_t j = 1; j < d; ++j)
      if (std::fabs(v[j]) > std::fabs(v[arg])) arg = j;
    if (v[arg] < 0.0)
      for (double& x : v) x = -x;
    components_.push_back(std::move(v));
    captured += std::max(eigenvalues[i], 0.0);
  }
  fitted_ = true;

  // Calibrate the threshold on the held-out scores.
  std::vector<double> errors;
  errors.reserve(n_calib);
  for (std::size_t r = n_fit; r < order.size(); ++r)
    errors.push_back(score(good_rows[order[r]]));
  std::sort(errors.begin(), errors.end());
  threshold_ = std::max(
      params_.threshold_margin * sorted_quantile(errors, params_.quantile),
      1e-9);
}

double ZeroPositiveModel::score(std::span<const double> x) const {
  FSML_CHECK_MSG(fitted_, "zero-positive model is not fitted");
  const std::size_t d = names_.size();
  FSML_CHECK_MSG(x.size() == d,
                 "feature vector width does not match the fitted schema");
  std::vector<double> z(d);
  for (std::size_t j = 0; j < d; ++j)
    z[j] = std::isnan(x[j]) ? 0.0 : (x[j] - mean_[j]) * inv_std_[j];

  // Residual after projecting onto the kept components.
  std::vector<double> r = z;
  for (const std::vector<double>& v : components_) {
    double dot = 0.0;
    for (std::size_t j = 0; j < d; ++j) dot += v[j] * z[j];
    for (std::size_t j = 0; j < d; ++j) r[j] -= dot * v[j];
  }
  double err = 0.0;
  for (const double rv : r) err += rv * rv;
  return err / static_cast<double>(d);
}

double ZeroPositiveModel::threshold() const {
  FSML_CHECK_MSG(fitted_, "zero-positive model is not fitted");
  return threshold_;
}

std::string ZeroPositiveModel::describe() const {
  std::ostringstream os;
  if (!fitted_) return "zero-positive: unfitted";
  os << "zero-positive: " << names_.size() << " features, "
     << components_.size() << " components, threshold ";
  os.precision(3);
  os << std::scientific << threshold_;
  return os.str();
}

void ZeroPositiveModel::save(std::ostream& os) const {
  FSML_CHECK_MSG(fitted_, "cannot save an unfitted zero-positive model");
  os.precision(17);
  os << kPayloadMagic << " v" << kPayloadVersion << '\n';
  os << "features " << names_.size();
  for (const auto& n : names_) os << ' ' << n;
  os << '\n';
  os << "mean";
  for (const double v : mean_) os << ' ' << v;
  os << '\n';
  os << "inv_std";
  for (const double v : inv_std_) os << ' ' << v;
  os << '\n';
  os << "components " << components_.size() << '\n';
  for (const auto& c : components_) {
    os << "c";
    for (const double v : c) os << ' ' << v;
    os << '\n';
  }
  os << "threshold " << threshold_ << '\n';
}

ZeroPositiveModel ZeroPositiveModel::load(std::istream& is) {
  std::string magic, version;
  is >> magic >> version;
  if (!is || magic != kPayloadMagic)
    zp_error("payload is not an fsml-zero-positive stream");
  std::string expected_version = "v";
  expected_version += std::to_string(kPayloadVersion);
  if (version != expected_version)
    zp_error("payload version '" + version +
             "' is not supported by this build");

  ZeroPositiveModel model;
  std::string keyword;
  std::size_t d = 0;
  is >> keyword >> d;
  if (!is || keyword != "features" || d == 0 || d > 4096)
    zp_error("malformed feature schema line");
  model.names_.resize(d);
  for (auto& n : model.names_) is >> n;

  const auto read_row = [&](const char* name, std::vector<double>& out) {
    is >> keyword;
    if (!is || keyword != name)
      zp_error(std::string("malformed ") + name + " line");
    out.resize(d);
    for (double& v : out) is >> v;
    if (!is) zp_error(std::string("truncated ") + name + " line");
  };
  read_row("mean", model.mean_);
  read_row("inv_std", model.inv_std_);

  std::size_t k = 0;
  is >> keyword >> k;
  if (!is || keyword != "components" || k > d)
    zp_error("malformed components header");
  model.components_.resize(k);
  for (auto& c : model.components_) read_row("c", c);

  is >> keyword >> model.threshold_;
  if (!is || keyword != "threshold" || !(model.threshold_ > 0.0))
    zp_error("malformed threshold line");
  model.fitted_ = true;
  return model;
}

void ZeroPositiveModel::save_file(const std::string& path) const {
  std::ostringstream payload;
  save(payload);
  util::AtomicFile file(path);
  write_container(file.stream(), payload.str(),
                  schema_hash(names_, {"zero-positive"}));
  file.commit();
}

ZeroPositiveModel ZeroPositiveModel::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    throw std::runtime_error("cannot open anomaly model file " + path +
                             " — train one with `fsml_analyze train "
                             "--save-anomaly=" + path + "`");
  try {
    const ModelContainer container = read_container(is);
    std::istringstream ps(container.payload);
    ZeroPositiveModel model = load(ps);
    if (schema_hash(model.names_, {"zero-positive"}) != container.schema)
      zp_error("schema hash does not match the payload: the file is "
               "corrupt or was tampered with");
    return model;
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace fsml::ml
