// Machine: the simulated multicore system a kernel runs on.
//
//   exec::Machine m(sim::MachineConfig::westmere_dp(12), /*seed=*/42);
//   const sim::Addr data = m.arena().alloc(1024);
//   m.spawn([&](exec::ThreadCtx& ctx) -> exec::SimTask {
//     for (int i = 0; i < 128; ++i) {
//       co_await ctx.load(data + 8 * (i % 16));
//       ctx.compute(2);
//     }
//   });
//   const exec::RunResult r = m.run();
//
// One simulated thread runs per core. The scheduler is a discrete-event
// loop: it always resumes the unfinished thread with the smallest virtual
// clock, so threads interleave at memory-operation granularity exactly as
// their access latencies dictate. Given (config, seed, kernel) the entire
// execution — interleaving, coherence traffic, event counts — is
// reproducible bit-for-bit. set_host_threads(N) runs that same loop
// epoch-parallel across N host threads with an identical result — see
// DESIGN.md §15 for the ordering contract.
//
// NOTE on lambda kernels: the closure object passed to spawn() is kept
// alive by the Machine for the whole run, but anything it captures by
// reference must outlive run() — allocate simulated data before spawning
// and keep host-side state in scope.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "exec/arena.hpp"
#include "exec/task.hpp"
#include "sim/machine_config.hpp"
#include "sim/memory_system.hpp"
#include "util/rng.hpp"

namespace fsml::exec {

/// Thrown by Machine::run() when a cancellation flag set via
/// set_cancel_flag() fires mid-simulation (cooperative cancellation; see
/// par::Supervisor's per-job deadlines).
class Cancelled : public std::runtime_error {
 public:
  Cancelled() : std::runtime_error("simulation cancelled") {}
};

class Machine;

/// Thread-to-core placement policy for Machine::spawn.
///
/// kPacked (default, and the pre-NUMA behavior): thread t runs on core t,
/// filling socket 0 before socket 1. kScatter: threads round-robin across
/// sockets (thread t -> socket t % sockets), the OS-scheduler-like spread
/// that turns intra-socket false sharing into cross-socket false sharing.
/// On a single-socket machine both policies are identical.
enum class ThreadPlacement : std::uint8_t { kPacked, kScatter };

/// Per-thread handle kernels use to talk to the simulated hardware.
class ThreadCtx {
 public:
  sim::CoreId core() const { return core_; }
  sim::Cycles clock() const { return clock_; }
  std::uint64_t ops_issued() const { return ops_; }

  Machine& machine() { return *machine_; }
  util::Rng& rng() { return rng_; }

  /// Retires `n` plain ALU instructions (no suspension).
  void compute(std::uint64_t n);

  // -- Awaitable memory operations ------------------------------------------
  // `Fn` runs immediately after the access is applied and before any other
  // thread runs, so it can implement atomic read-modify-write semantics on
  // host-side state (see sync.hpp). Its return value is the result of the
  // co_await expression.

  template <typename Fn>
  struct OpAwaitable {
    ThreadCtx* ctx;
    sim::Addr addr;
    std::uint32_t size;
    sim::AccessType type;
    Fn fn;
    using Result = std::invoke_result_t<Fn&, sim::AccessResult>;
    alignas(Result) unsigned char storage[sizeof(Result)];

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      if (ctx->defer_ops_) {
        ctx->pending_ = {addr, size, type, /*has_fn=*/true, /*armed=*/true,
                         &OpAwaitable::apply_deferred, this};
        ctx->set_resume(h);
        return;
      }
      const sim::AccessResult r = ctx->perform(addr, size, type);
      new (storage) Result(fn(r));
      ctx->set_resume(h);
    }
    static void apply_deferred(void* self_untyped) {
      auto* self = static_cast<OpAwaitable*>(self_untyped);
      const sim::AccessResult r =
          self->ctx->perform(self->addr, self->size, self->type);
      new (self->storage) Result(self->fn(r));
    }
    Result await_resume() {
      Result* p = std::launder(reinterpret_cast<Result*>(storage));
      Result out = std::move(*p);
      p->~Result();
      return out;
    }
  };

  struct VoidOpAwaitable {
    ThreadCtx* ctx;
    sim::Addr addr;
    std::uint32_t size;
    sim::AccessType type;
    sim::AccessResult result{};

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      if (ctx->defer_ops_) {
        ctx->pending_ = {addr, size, type, /*has_fn=*/false, /*armed=*/true,
                         &VoidOpAwaitable::apply_deferred, this};
        ctx->set_resume(h);
        return;
      }
      result = ctx->perform(addr, size, type);
      ctx->set_resume(h);
    }
    static void apply_deferred(void* self_untyped) {
      auto* self = static_cast<VoidOpAwaitable*>(self_untyped);
      self->result =
          self->ctx->perform(self->addr, self->size, self->type);
    }
    sim::AccessResult await_resume() const { return result; }
  };

  VoidOpAwaitable load(sim::Addr addr, std::uint32_t size = 8) {
    return {this, addr, size, sim::AccessType::kLoad};
  }
  VoidOpAwaitable store(sim::Addr addr, std::uint32_t size = 8) {
    return {this, addr, size, sim::AccessType::kStore};
  }
  VoidOpAwaitable rmw(sim::Addr addr, std::uint32_t size = 8) {
    return {this, addr, size, sim::AccessType::kRmw};
  }

  /// Access with an atomically-applied host-side side effect.
  template <typename Fn>
  OpAwaitable<Fn> op(sim::Addr addr, std::uint32_t size, sim::AccessType type,
                     Fn fn) {
    return {this, addr, size, type, std::move(fn), {}};
  }

  /// Yields the core for one cycle without touching memory.
  struct YieldAwaitable {
    ThreadCtx* ctx;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      ctx->clock_ += 1;
      ctx->set_resume(h);
    }
    void await_resume() const noexcept {}
  };
  YieldAwaitable yield() { return {this}; }

 private:
  friend class Machine;

  ThreadCtx(Machine* machine, sim::CoreId core, std::uint64_t seed)
      : machine_(machine), core_(core), rng_(seed) {}

  sim::AccessResult perform(sim::Addr addr, std::uint32_t size,
                            sim::AccessType type);
  void set_resume(std::coroutine_handle<> h) { resume_ = h; }
  std::coroutine_handle<> take_resume() {
    auto h = resume_;
    resume_ = nullptr;
    return h;
  }

  /// Deferred-instruction flush for the parallel scheduler: compute() calls
  /// buffered while defer_ops_ was set drain into this core's counter bank
  /// here, under the same no-conflicting-cross guarantee as a local apply.
  void flush_pending_instructions();

  /// The memory operation the thread suspended on, stashed instead of
  /// performed when the parallel scheduler defers applies (defer_ops_). The
  /// engine invokes `apply(awaitable)` once the slice's position in the
  /// global (clock, tid) order is safe; the thunk performs the access and
  /// materialises the co_await result exactly as the serial inline path
  /// would have.
  struct PendingOp {
    sim::Addr addr = 0;
    std::uint32_t size = 0;
    sim::AccessType type = sim::AccessType::kLoad;
    bool has_fn = false;  ///< fn-ops touch host state: never local
    bool armed = false;   ///< false after a yield() or thread completion
    void (*apply)(void*) = nullptr;
    void* awaitable = nullptr;
  };

  Machine* machine_;
  sim::CoreId core_;
  sim::Cycles clock_ = 0;
  std::uint64_t ops_ = 0;
  util::Rng rng_;
  std::coroutine_handle<> resume_;
  bool defer_ops_ = false;
  PendingOp pending_;
  std::uint64_t pending_instructions_ = 0;
};

/// Outcome of Machine::run().
struct RunResult {
  sim::Cycles total_cycles = 0;        ///< max over all cores
  std::vector<sim::Cycles> core_cycles;
  std::uint64_t instructions = 0;      ///< aggregate retired (0 if PMU off)
  std::uint64_t memory_ops = 0;
  double seconds = 0.0;                ///< total_cycles / core_hz
  sim::RawCounters aggregate;          ///< zeroed if PMU off
  /// Per-slice counter deltas when enable_slicing() was called: slice k
  /// covers virtual time [k*slice, (k+1)*slice). The final partial slice is
  /// included. Empty when slicing is off.
  std::vector<sim::RawCounters> slices;
  sim::Cycles slice_cycles = 0;
};

class Machine {
 public:
  using ThreadFn = std::function<SimTask(ThreadCtx&)>;

  explicit Machine(const sim::MachineConfig& config, std::uint64_t seed = 1);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  VirtualArena& arena() { return arena_; }
  sim::MemorySystem& memory() { return memory_; }
  const sim::MachineConfig& config() const { return memory_.config(); }
  std::uint64_t seed() const { return seed_; }

  /// Registers a simulated thread; the placement policy picks its core.
  void spawn(ThreadFn fn);

  /// Chooses how subsequent spawn() calls map threads onto sockets. Must be
  /// called before the first spawn so core assignment stays deterministic.
  void set_thread_placement(ThreadPlacement placement) {
    FSML_CHECK_MSG(threads_.empty(),
                   "set_thread_placement before spawning threads");
    placement_ = placement;
  }
  ThreadPlacement thread_placement() const { return placement_; }

  /// Core the i-th spawned thread runs on.
  sim::CoreId core_of_thread(std::uint32_t i) const {
    return threads_.at(i)->ctx->core();
  }

  /// Samples the aggregate PMU every `slice_cycles` of virtual time and
  /// reports per-slice counter deltas in RunResult::slices. This is the
  /// paper's "detection at finer granularity, e.g. in short time slices"
  /// future-work direction: a phase-level verdict instead of a
  /// whole-program one. Call before run(); 0 disables.
  void enable_slicing(sim::Cycles slice_cycles) {
    slice_cycles_ = slice_cycles;
  }

  std::uint32_t num_threads() const {
    return static_cast<std::uint32_t>(threads_.size());
  }

  /// Cooperative cancellation: the scheduler inner loop polls `flag` every
  /// few thousand steps and unwinds run() with exec::Cancelled once it goes
  /// true. The flag must outlive run(); nullptr (default) disables polling.
  /// This is how par::Supervisor deadlines reach a running simulation.
  /// Parallel runs poll the flag from every worker's wait loops.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_flag_ = flag; }

  /// Epoch-parallel execution: partition the simulated threads across `n`
  /// host threads (round-robin, tid % n) and run the discrete-event loop
  /// concurrently, committing every access that can touch shared state in
  /// the exact (clock, tid) order the serial heap would have produced. The
  /// result — every latency, counter and derived feature — is bit-identical
  /// to the serial scheduler; see DESIGN.md §15 for the ordering contract.
  ///
  /// n <= 1 (default) keeps the serial scheduler. Slicing
  /// (enable_slicing) and access observers sample global state
  /// mid-run and force a silent fallback to serial execution.
  ///
  /// Kernel contract under parallel execution: cross-simulated-thread host
  /// state may be shared only inside fn-ops (ctx.op / sync.hpp — these
  /// commit under global mutual exclusion); plain loads/stores/rmws and
  /// compute() must touch only thread-private host state.
  void set_host_threads(std::uint32_t n) { host_threads_ = n == 0 ? 1 : n; }
  std::uint32_t host_threads() const { return host_threads_; }

  /// Test hook: record the packed (clock << kKeyTidBits | tid + 1) commit
  /// key of every globally-ordered (cross) access during a parallel run.
  /// The log must come out strictly increasing — that IS the bit-identity
  /// argument, and the EpochFuzz tests assert it.
  void set_record_commit_log(bool on) { record_commit_log_ = on; }
  const std::vector<std::uint64_t>& commit_log() const { return commit_log_; }

  /// Bits of the packed (clock, tid) slice key reserved for the tid.
  static constexpr unsigned kKeyTidBits = 12;

  /// Runs all spawned threads to completion. One-shot.
  /// Throws if any core exceeds `max_cycles` (deadlock guard) or a kernel
  /// throws.
  RunResult run(sim::Cycles max_cycles = 1ULL << 40);

  /// Converts virtual cycles to seconds at the configured core frequency.
  double seconds(sim::Cycles cycles) const;

 private:
  friend class ThreadCtx;

  struct ThreadState {
    ThreadFn fn;                       // keeps lambda captures alive
    std::unique_ptr<ThreadCtx> ctx;
    SimTask task;
    bool done = false;
  };

  /// Core for the `thread`-th spawned thread under the active placement.
  sim::CoreId placement_core(std::uint32_t thread) const;

  /// Instantiates the coroutines and seeds each thread's resume handle.
  void start_threads();

  /// End-of-run accounting shared by the serial and parallel schedulers.
  RunResult tally_result();

  /// The epoch-parallel engine (run() dispatches here when eligible).
  RunResult run_parallel(sim::Cycles max_cycles, std::uint32_t groups);

  sim::MemorySystem memory_;
  VirtualArena arena_;
  std::uint64_t seed_;
  util::Rng spawn_rng_;
  ThreadPlacement placement_ = ThreadPlacement::kPacked;
  std::vector<std::unique_ptr<ThreadState>> threads_;
  ThreadState* running_ = nullptr;
  bool ran_ = false;
  sim::Cycles slice_cycles_ = 0;
  const std::atomic<bool>* cancel_flag_ = nullptr;
  std::uint32_t host_threads_ = 1;
  bool record_commit_log_ = false;
  std::vector<std::uint64_t> commit_log_;
};

}  // namespace fsml::exec
