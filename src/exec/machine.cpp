#include "exec/machine.hpp"

#include <utility>

#include "util/check.hpp"

namespace fsml::exec {

void ThreadCtx::compute(std::uint64_t n) {
  if (n == 0) return;
  const double cpi = machine_->config().cycles.compute_cpi;
  clock_ += static_cast<sim::Cycles>(static_cast<double>(n) * cpi + 0.5);
  machine_->memory().retire_instructions(core_, n);
}

sim::AccessResult ThreadCtx::perform(sim::Addr addr, std::uint32_t size,
                                     sim::AccessType type) {
  const sim::AccessResult r =
      machine_->memory().access(core_, addr, size, type, clock_);
  clock_ += r.latency;
  ++ops_;
  return r;
}

Machine::Machine(const sim::MachineConfig& config, std::uint64_t seed)
    : memory_(config),
      arena_(/*base=*/0x10000, config.l1d.line_bytes, config.page_bytes),
      seed_(seed),
      spawn_rng_(seed) {}

sim::CoreId Machine::placement_core(std::uint32_t thread) const {
  if (placement_ == ThreadPlacement::kPacked) return thread;
  const sim::SocketTopology& topo = config().topology;
  if (!topo.multi_socket()) return thread;
  // Round-robin across sockets: thread t is the (t / sockets)-th thread on
  // socket t % sockets. With threads <= cores on an even topology this
  // always finds a free core.
  const std::uint32_t socket = thread % topo.sockets;
  const std::uint32_t slot = thread / topo.sockets;
  FSML_CHECK_MSG(slot < topo.cores_per_socket,
                 "scatter placement ran out of per-socket cores");
  return socket * topo.cores_per_socket + slot;
}

void Machine::spawn(ThreadFn fn) {
  FSML_CHECK_MSG(!ran_, "spawn after run() is not supported");
  FSML_CHECK_MSG(threads_.size() < config().num_cores,
                 "more threads than cores: enlarge the MachineConfig");
  auto state = std::make_unique<ThreadState>();
  state->fn = std::move(fn);
  const sim::CoreId core =
      placement_core(static_cast<std::uint32_t>(threads_.size()));
  // Per-thread RNG stream derived deterministically from the machine seed.
  state->ctx.reset(new ThreadCtx(this, core, spawn_rng_.next()));
  threads_.push_back(std::move(state));
}

RunResult Machine::run(sim::Cycles max_cycles) {
  FSML_CHECK_MSG(!ran_, "Machine::run() is one-shot");
  FSML_CHECK_MSG(!threads_.empty(), "no threads spawned");
  ran_ = true;

  // Instantiate the coroutines and seed each thread's resume handle.
  for (auto& t : threads_) {
    t->task = t->fn(*t->ctx);
    FSML_CHECK_MSG(t->task.valid(), "thread function must return a SimTask");
    t->task.handle().promise().done_flag = &t->done;
    t->ctx->set_resume(t->task.handle());
  }

  // Scheduler ready-queue: a binary min-heap over (clock, thread id), so
  // picking the next thread is O(log threads) instead of a linear scan per
  // step. Only the resumed thread's clock can change, so each step is one
  // sift-down of the root. The comparator breaks clock ties on the lower
  // thread id — the same thread the old first-wins linear scan chose — so
  // the interleaving (and with it every counter) is bit-identical.
  struct Ready {
    sim::Cycles clock;
    std::uint32_t tid;
  };
  std::vector<Ready> heap(threads_.size());
  std::size_t heap_size = threads_.size();
  for (std::size_t i = 0; i < heap_size; ++i)
    heap[i] = {threads_[i]->ctx->clock(), static_cast<std::uint32_t>(i)};
  const auto before = [](const Ready& a, const Ready& b) {
    return a.clock < b.clock || (a.clock == b.clock && a.tid < b.tid);
  };
  const auto sift_down = [&](std::size_t pos) {
    for (;;) {
      std::size_t least = pos;
      const std::size_t left = 2 * pos + 1;
      const std::size_t right = left + 1;
      if (left < heap_size && before(heap[left], heap[least])) least = left;
      if (right < heap_size && before(heap[right], heap[least])) least = right;
      if (least == pos) return;
      std::swap(heap[pos], heap[least]);
      pos = least;
    }
  };
  // All clocks start at 0 and the identity layout orders tids parent<child,
  // so the initial array already satisfies the heap property; heapify anyway
  // in case a future caller spawns mid-run with a nonzero clock.
  for (std::size_t i = heap_size / 2; i-- > 0;) sift_down(i);

  std::uint64_t memory_ops = 0;
  RunResult result;
  sim::RawCounters last_snapshot;
  sim::Cycles next_boundary = slice_cycles_;
  std::uint32_t cancel_poll = 0;
  while (heap_size > 0) {
    // Cooperative cancellation: poll the flag every 4096 scheduler steps —
    // often enough to honour a deadline promptly, rare enough to stay off
    // the hot path.
    if (cancel_flag_ != nullptr && (++cancel_poll & 0xFFFu) == 0 &&
        cancel_flag_->load(std::memory_order_relaxed))
      throw Cancelled();
    ThreadState* const next = threads_[heap[0].tid].get();

    // Slice sampling: when the global time front (the min clock) crosses a
    // boundary, everything counted so far belongs to completed slices.
    if (slice_cycles_ > 0) {
      while (heap[0].clock >= next_boundary) {
        const sim::RawCounters now = memory_.aggregate_counters();
        result.slices.push_back(last_snapshot.delta_to(now));
        last_snapshot = now;
        next_boundary += slice_cycles_;
      }
    }

    FSML_CHECK_MSG(heap[0].clock <= max_cycles,
                   "simulation exceeded the cycle budget (deadlock or "
                   "runaway kernel?)");

    const auto handle = next->ctx->take_resume();
    FSML_CHECK_MSG(static_cast<bool>(handle),
                   "runnable thread without a resume point");
    running_ = next;
    handle.resume();
    running_ = nullptr;

    if (next->done) {
      if (auto ep = next->task.handle().promise().exception)
        std::rethrow_exception(ep);
      heap[0] = heap[--heap_size];
    } else {
      heap[0].clock = next->ctx->clock();
    }
    sift_down(0);
  }

  result.core_cycles.reserve(threads_.size());
  for (auto& t : threads_) {
    const sim::Cycles c = t->ctx->clock();
    result.core_cycles.push_back(c);
    result.total_cycles = std::max(result.total_cycles, c);
    memory_ops += t->ctx->ops_issued();
    memory_.account_cycles(t->ctx->core(), c);
  }
  result.memory_ops = memory_ops;
  result.aggregate = memory_.aggregate_counters();
  if (slice_cycles_ > 0) {
    // Final partial slice (account_cycles above does not affect deltas of
    // interest beyond CYCLES_TOTAL).
    result.slices.push_back(last_snapshot.delta_to(result.aggregate));
    result.slice_cycles = slice_cycles_;
  }
  result.instructions =
      result.aggregate.get(sim::RawEvent::kInstructionsRetired);
  result.seconds = seconds(result.total_cycles);
  return result;
}

double Machine::seconds(sim::Cycles cycles) const {
  return static_cast<double>(cycles) / config().core_hz;
}

}  // namespace fsml::exec
