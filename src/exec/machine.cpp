#include "exec/machine.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <utility>

#include "par/worker_group.hpp"
#include "util/check.hpp"

namespace fsml::exec {

void ThreadCtx::compute(std::uint64_t n) {
  if (n == 0) return;
  const double cpi = machine_->config().cycles.compute_cpi;
  clock_ += static_cast<sim::Cycles>(static_cast<double>(n) * cpi + 0.5);
  if (defer_ops_) {
    // Parallel mode: the clock bump above is thread-private, but the counter
    // bank write below is not (crosses snooping this core write the same
    // bank). Buffer the count; perform()/flush drain it under the scheduler's
    // no-conflicting-cross guarantee.
    pending_instructions_ += n;
    return;
  }
  machine_->memory().retire_instructions(core_, n);
}

void ThreadCtx::flush_pending_instructions() {
  if (pending_instructions_ == 0) return;
  machine_->memory().retire_instructions(core_, pending_instructions_);
  pending_instructions_ = 0;
}

sim::AccessResult ThreadCtx::perform(sim::Addr addr, std::uint32_t size,
                                     sim::AccessType type) {
  flush_pending_instructions();
  const sim::AccessResult r =
      machine_->memory().access(core_, addr, size, type, clock_);
  clock_ += r.latency;
  ++ops_;
  return r;
}

Machine::Machine(const sim::MachineConfig& config, std::uint64_t seed)
    : memory_(config),
      arena_(/*base=*/0x10000, config.l1d.line_bytes, config.page_bytes),
      seed_(seed),
      spawn_rng_(seed) {}

sim::CoreId Machine::placement_core(std::uint32_t thread) const {
  if (placement_ == ThreadPlacement::kPacked) return thread;
  const sim::SocketTopology& topo = config().topology;
  if (!topo.multi_socket()) return thread;
  // Round-robin across sockets: thread t is the (t / sockets)-th thread on
  // socket t % sockets. With threads <= cores on an even topology this
  // always finds a free core.
  const std::uint32_t socket = thread % topo.sockets;
  const std::uint32_t slot = thread / topo.sockets;
  FSML_CHECK_MSG(slot < topo.cores_per_socket,
                 "scatter placement ran out of per-socket cores");
  return socket * topo.cores_per_socket + slot;
}

void Machine::spawn(ThreadFn fn) {
  FSML_CHECK_MSG(!ran_, "spawn after run() is not supported");
  FSML_CHECK_MSG(threads_.size() < config().num_cores,
                 "more threads than cores: enlarge the MachineConfig");
  auto state = std::make_unique<ThreadState>();
  state->fn = std::move(fn);
  const sim::CoreId core =
      placement_core(static_cast<std::uint32_t>(threads_.size()));
  // Per-thread RNG stream derived deterministically from the machine seed.
  state->ctx.reset(new ThreadCtx(this, core, spawn_rng_.next()));
  threads_.push_back(std::move(state));
}

void Machine::start_threads() {
  for (auto& t : threads_) {
    t->task = t->fn(*t->ctx);
    FSML_CHECK_MSG(t->task.valid(), "thread function must return a SimTask");
    t->task.handle().promise().done_flag = &t->done;
    t->ctx->set_resume(t->task.handle());
  }
}

RunResult Machine::tally_result() {
  RunResult result;
  std::uint64_t memory_ops = 0;
  result.core_cycles.reserve(threads_.size());
  for (auto& t : threads_) {
    const sim::Cycles c = t->ctx->clock();
    result.core_cycles.push_back(c);
    result.total_cycles = std::max(result.total_cycles, c);
    memory_ops += t->ctx->ops_issued();
    memory_.account_cycles(t->ctx->core(), c);
  }
  result.memory_ops = memory_ops;
  result.aggregate = memory_.aggregate_counters();
  result.instructions =
      result.aggregate.get(sim::RawEvent::kInstructionsRetired);
  result.seconds = seconds(result.total_cycles);
  return result;
}

RunResult Machine::run(sim::Cycles max_cycles) {
  FSML_CHECK_MSG(!ran_, "Machine::run() is one-shot");
  FSML_CHECK_MSG(!threads_.empty(), "no threads spawned");
  ran_ = true;
  start_threads();

  // Epoch-parallel dispatch: needs more than one group to be worth a gang
  // of host threads, and falls back to serial when slicing or observers
  // would sample global state mid-run (both are inherently sequential
  // views of the simulation).
  const std::uint32_t groups = std::min<std::uint32_t>(
      host_threads_, static_cast<std::uint32_t>(threads_.size()));
  if (groups > 1 && slice_cycles_ == 0 && !memory_.has_observers())
    return run_parallel(max_cycles, groups);

  // Scheduler ready-queue: a binary min-heap over (clock, thread id), so
  // picking the next thread is O(log threads) instead of a linear scan per
  // step. Only the resumed thread's clock can change, so each step is one
  // sift-down of the root. The comparator breaks clock ties on the lower
  // thread id — the same thread the old first-wins linear scan chose — so
  // the interleaving (and with it every counter) is bit-identical.
  struct Ready {
    sim::Cycles clock;
    std::uint32_t tid;
  };
  std::vector<Ready> heap(threads_.size());
  std::size_t heap_size = threads_.size();
  for (std::size_t i = 0; i < heap_size; ++i)
    heap[i] = {threads_[i]->ctx->clock(), static_cast<std::uint32_t>(i)};
  const auto before = [](const Ready& a, const Ready& b) {
    return a.clock < b.clock || (a.clock == b.clock && a.tid < b.tid);
  };
  const auto sift_down = [&](std::size_t pos) {
    for (;;) {
      std::size_t least = pos;
      const std::size_t left = 2 * pos + 1;
      const std::size_t right = left + 1;
      if (left < heap_size && before(heap[left], heap[least])) least = left;
      if (right < heap_size && before(heap[right], heap[least])) least = right;
      if (least == pos) return;
      std::swap(heap[pos], heap[least]);
      pos = least;
    }
  };
  // All clocks start at 0 and the identity layout orders tids parent<child,
  // so the initial array already satisfies the heap property; heapify anyway
  // in case a future caller spawns mid-run with a nonzero clock.
  for (std::size_t i = heap_size / 2; i-- > 0;) sift_down(i);

  RunResult result;  // collects completed slices; everything else re-tallied
  sim::RawCounters last_snapshot;
  sim::Cycles next_boundary = slice_cycles_;
  std::uint32_t cancel_poll = 0;
  while (heap_size > 0) {
    // Cooperative cancellation: poll the flag every 4096 scheduler steps —
    // often enough to honour a deadline promptly, rare enough to stay off
    // the hot path.
    if (cancel_flag_ != nullptr && (++cancel_poll & 0xFFFu) == 0 &&
        cancel_flag_->load(std::memory_order_relaxed))
      throw Cancelled();
    ThreadState* const next = threads_[heap[0].tid].get();

    // Slice sampling: when the global time front (the min clock) crosses a
    // boundary, everything counted so far belongs to completed slices.
    if (slice_cycles_ > 0) {
      while (heap[0].clock >= next_boundary) {
        const sim::RawCounters now = memory_.aggregate_counters();
        result.slices.push_back(last_snapshot.delta_to(now));
        last_snapshot = now;
        next_boundary += slice_cycles_;
      }
    }

    FSML_CHECK_MSG(heap[0].clock <= max_cycles,
                   "simulation exceeded the cycle budget (deadlock or "
                   "runaway kernel?)");

    const auto handle = next->ctx->take_resume();
    FSML_CHECK_MSG(static_cast<bool>(handle),
                   "runnable thread without a resume point");
    running_ = next;
    handle.resume();
    running_ = nullptr;

    if (next->done) {
      if (auto ep = next->task.handle().promise().exception)
        std::rethrow_exception(ep);
      heap[0] = heap[--heap_size];
    } else {
      heap[0].clock = next->ctx->clock();
    }
    sift_down(0);
  }

  RunResult tallied = tally_result();
  if (slice_cycles_ > 0) {
    // Final partial slice (account_cycles above does not affect deltas of
    // interest beyond CYCLES_TOTAL).
    tallied.slices = std::move(result.slices);
    tallied.slices.push_back(last_snapshot.delta_to(tallied.aggregate));
    tallied.slice_cycles = slice_cycles_;
  }
  return tallied;
}

// ---------------------------------------------------------------------------
// Epoch-parallel scheduler.
//
// The serial loop always resumes the thread with the smallest (clock, tid),
// runs it to its next co_await and applies exactly one memory access. The
// parallel engine reproduces that slice sequence exactly. Each host worker
// owns a round-robin share of the simulated threads (tid % groups) with its
// own min-heap, and publishes two monotone keys per group on a shared cache
// line:
//
//   front — the packed (clock, tid) key of the group's current minimum slice.
//   cross — a lower bound on the key of the next access from this group that
//           could touch shared simulated state. The publish is a promise:
//           "no access of mine below `cross` will ever reach shared state."
//
// A worker takes its minimum slice K and first waits until every other
// group's `cross` exceeds K (the local gate). From then on no conflicting
// access below K exists or can ever start — later slices elsewhere are
// blocked by our own front == K — so classifying the pending access by
// reading our private cache state is race-free. Accesses that touch only
// core-private state (MemorySystem::classify_access) then apply immediately
// and concurrently; before applying, the worker raises `cross` to its next
// possible slice key (the classified access's exact completion key, or the
// heap's second minimum if that is smaller), which is what lets other groups
// overlap with it. Anything else — misses, upgrades, prefetch bursts, fn-ops
// — additionally waits until every other group's `front` exceeds K; at that
// moment K is the global minimum, the access is the very one the serial loop
// would run next, and it applies under effectively global mutual exclusion.
//
// Deadlock-freedom: keys are unique, and the globally minimal group's gates
// always pass (every other group's keys are strictly larger). Bit-identity:
// cross-capable accesses apply in exactly serial order; local accesses
// commute with everything that can run concurrently with them (disjoint
// simulated state), so every counter, latency and derived feature lands on
// the serial value. DESIGN.md §15 gives the full argument.
// ---------------------------------------------------------------------------
RunResult Machine::run_parallel(sim::Cycles max_cycles, std::uint32_t groups) {
  constexpr unsigned kTidBits = kKeyTidBits;
  constexpr std::uint64_t kIdleKey = ~std::uint64_t{0};
  FSML_CHECK_MSG(threads_.size() < (std::size_t{1} << kTidBits) - 1,
                 "too many simulated threads for the packed slice key");
  FSML_CHECK_MSG(max_cycles < (sim::Cycles{1} << (62 - kTidBits)),
                 "cycle budget too large for the packed slice key");
  const auto pack = [](sim::Cycles clock, std::uint32_t tid) {
    // tid + 1 keeps key 0 strictly below every real slice, so the initial
    // gate values published before the workers start are conservative.
    return (clock << kTidBits) | (tid + 1);
  };

  commit_log_.clear();
  for (auto& t : threads_) t->ctx->defer_ops_ = true;

  struct Ready {
    sim::Cycles clock;
    std::uint32_t tid;
  };
  const auto before = [](const Ready& a, const Ready& b) {
    return a.clock < b.clock || (a.clock == b.clock && a.tid < b.tid);
  };

  // Round-robin thread-to-group assignment: the serial scheduler breaks
  // clock ties on the lower tid, so same-clock slices of consecutive tids
  // are the common adjacent pairs — contiguous blocks would funnel every
  // such tie through one group and serialize.
  std::vector<std::vector<Ready>> initial(groups);
  for (std::uint32_t tid = 0; tid < threads_.size(); ++tid)
    initial[tid % groups].push_back({threads_[tid]->ctx->clock(), tid});

  struct alignas(64) GroupGate {
    std::atomic<std::uint64_t> front{kIdleKey};
    std::atomic<std::uint64_t> cross{kIdleKey};
  };
  std::vector<GroupGate> gates(groups);
  for (std::uint32_t g = 0; g < groups; ++g) {
    if (initial[g].empty()) continue;
    const std::uint64_t k = pack(initial[g][0].clock, initial[g][0].tid);
    gates[g].front.store(k, std::memory_order_relaxed);
    gates[g].cross.store(k, std::memory_order_relaxed);
  }

  std::atomic<bool> abort{false};
  std::atomic<bool> cancelled{false};
  std::mutex error_mu;
  std::uint64_t error_key = kIdleKey;
  std::exception_ptr error;

  const auto worker = [&](std::size_t g) {
    std::vector<Ready> heap = std::move(initial[g]);
    std::size_t heap_size = heap.size();
    const auto sift_down = [&](std::size_t pos) {
      for (;;) {
        std::size_t least = pos;
        const std::size_t left = 2 * pos + 1;
        const std::size_t right = left + 1;
        if (left < heap_size && before(heap[left], heap[least])) least = left;
        if (right < heap_size && before(heap[right], heap[least]))
          least = right;
        if (least == pos) return;
        std::swap(heap[pos], heap[least]);
        pos = least;
      }
    };

    GroupGate& mine = gates[g];
    par::SpinBackoff backoff;
    std::uint32_t cancel_poll = 0;
    // Cached minimum of the other groups' `cross` keys: those keys are
    // monotone promises, so every key below the cached value stays safely
    // local without touching shared state again — the fast path that makes
    // local-dominated workloads scale.
    std::uint64_t others_cross_floor = 0;

    const auto poll_cancel = [&] {
      if (cancel_flag_ != nullptr && (++cancel_poll & 0x3FFu) == 0 &&
          cancel_flag_->load(std::memory_order_relaxed)) {
        cancelled.store(true, std::memory_order_relaxed);
        abort.store(true, std::memory_order_release);
      }
    };

    // Local gate: wait until no other group can ever issue a cross-capable
    // access at or below `key`. Returns false if the run is aborting.
    const auto wait_no_cross_below = [&](std::uint64_t key) -> bool {
      if (key < others_cross_floor) return true;
      for (;;) {
        std::uint64_t floor = kIdleKey;
        for (std::uint32_t h = 0; h < groups; ++h) {
          if (h == g) continue;
          floor = std::min(
              floor, gates[h].cross.load(std::memory_order_acquire));
        }
        if (floor > key) {
          others_cross_floor = floor;
          backoff.reset();
          return true;
        }
        if (abort.load(std::memory_order_acquire)) return false;
        poll_cancel();
        backoff.pause();
      }
    };

    // Full gate: wait until `key` is the global minimum slice. Returns
    // false if the run is aborting.
    const auto wait_globally_min = [&](std::uint64_t key) -> bool {
      for (;;) {
        bool is_min = true;
        for (std::uint32_t h = 0; h < groups; ++h) {
          if (h == g) continue;
          if (gates[h].front.load(std::memory_order_acquire) <= key) {
            is_min = false;
            break;
          }
        }
        if (is_min) {
          backoff.reset();
          return true;
        }
        if (abort.load(std::memory_order_acquire)) return false;
        poll_cancel();
        backoff.pause();
      }
    };

    // Stall-in-order error protocol: hold position at `key`, wait until
    // every earlier slice has applied, then record the failure. The
    // minimum recorded key wins, which is exactly the first error the
    // serial loop would have hit.
    const auto fail_at = [&](std::uint64_t key, std::exception_ptr ep) {
      wait_globally_min(key);
      {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (key < error_key) {
          error_key = key;
          error = ep;
        }
      }
      abort.store(true, std::memory_order_release);
    };

    std::uint64_t key = kIdleKey;
    try {
      while (heap_size > 0) {
        if (abort.load(std::memory_order_acquire)) break;
        poll_cancel();
        ThreadState* const t = threads_[heap[0].tid].get();
        key = pack(heap[0].clock, heap[0].tid);
        mine.cross.store(key, std::memory_order_release);
        mine.front.store(key, std::memory_order_release);

        if (heap[0].clock > max_cycles) {
          // The serial loop checks the budget on the global minimum slice;
          // fail_at stalls until this is it, then fails identically.
          std::exception_ptr ep;
          try {
            FSML_CHECK_MSG(false,
                           "simulation exceeded the cycle budget (deadlock "
                           "or runaway kernel?)");
          } catch (...) {
            ep = std::current_exception();
          }
          fail_at(key, ep);
          break;
        }

        // Phase 1: run host code up to the next co_await. The memory access
        // is stashed in ctx->pending_, not performed; only thread-private
        // state (clock, rng, kernel locals) changes here.
        t->ctx->pending_.armed = false;
        const auto handle = t->ctx->take_resume();
        FSML_CHECK_MSG(static_cast<bool>(handle),
                       "runnable thread without a resume point");
        handle.resume();

        if (t->done) {
          if (auto ep = t->task.handle().promise().exception) {
            fail_at(key, ep);
            break;
          }
          // Trailing compute() counts flush into this core's counter bank:
          // gate like a local apply so no earlier cross is snooping it.
          if (!wait_no_cross_below(key)) break;
          t->ctx->flush_pending_instructions();
          heap[0] = heap[--heap_size];
          sift_down(0);
          continue;
        }

        ThreadCtx::PendingOp& op = t->ctx->pending_;
        if (!op.armed) {
          // yield(): the clock advanced, nothing touches shared state.
          heap[0].clock = t->ctx->clock();
          sift_down(0);
          continue;
        }

        const sim::Cycles issue_clock = t->ctx->clock();
        // Gate BEFORE classifying: once no cross at or below `key` can ever
        // start, this core's cache state is frozen from the outside and the
        // classification reads are race-free.
        if (!wait_no_cross_below(key)) break;
        const sim::MemorySystem::AccessClass cls =
            op.has_fn ? sim::MemorySystem::AccessClass{}
                      : memory_.classify_access(t->ctx->core(), op.addr,
                                                op.size, op.type, issue_clock);
        if (cls.local) {
          // Raise our conflict bound to the earliest key at which this group
          // could next reach shared state — this thread's post-access slice
          // or the heap's runner-up, whichever is smaller — then apply
          // concurrently.
          std::uint64_t bound = pack(issue_clock + cls.latency, heap[0].tid);
          if (heap_size > 1)
            bound = std::min(bound, pack(heap[1].clock, heap[1].tid));
          if (heap_size > 2)
            bound = std::min(bound, pack(heap[2].clock, heap[2].tid));
          mine.cross.store(bound, std::memory_order_release);
          try {
            op.apply(op.awaitable);
          } catch (...) {
            fail_at(key, std::current_exception());
            break;
          }
          FSML_CHECK_MSG(t->ctx->clock() == issue_clock + cls.latency,
                         "classify_access latency diverged from access()");
        } else {
          // Cross-capable: commit in exact global order.
          if (!wait_globally_min(key)) break;
          try {
            op.apply(op.awaitable);
          } catch (...) {
            fail_at(key, std::current_exception());
            break;
          }
          if (record_commit_log_) commit_log_.push_back(key);
        }
        heap[0].clock = t->ctx->clock();
        sift_down(0);
      }
    } catch (...) {
      // Engine-internal failure (e.g. the latency cross-check): record at
      // the current slice and bring the gang down.
      {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (key < error_key) {
          error_key = key;
          error = std::current_exception();
        }
      }
      abort.store(true, std::memory_order_release);
    }
    // Drained or aborting: this group can never conflict again; unblock
    // everyone still gating on us.
    mine.cross.store(kIdleKey, std::memory_order_release);
    mine.front.store(kIdleKey, std::memory_order_release);
  };

  par::WorkerGroup::run(groups, worker);

  for (auto& t : threads_) t->ctx->defer_ops_ = false;
  if (error) std::rethrow_exception(error);
  if (cancelled.load(std::memory_order_relaxed)) throw Cancelled();
  return tally_result();
}

double Machine::seconds(sim::Cycles cycles) const {
  return static_cast<double>(cycles) / config().core_hz;
}

}  // namespace fsml::exec
