#include "exec/machine.hpp"

#include <limits>

#include "util/check.hpp"

namespace fsml::exec {

void ThreadCtx::compute(std::uint64_t n) {
  if (n == 0) return;
  const double cpi = machine_->config().cycles.compute_cpi;
  clock_ += static_cast<sim::Cycles>(static_cast<double>(n) * cpi + 0.5);
  machine_->memory().retire_instructions(core_, n);
}

sim::AccessResult ThreadCtx::perform(sim::Addr addr, std::uint32_t size,
                                     sim::AccessType type) {
  const sim::AccessResult r =
      machine_->memory().access(core_, addr, size, type, clock_);
  clock_ += r.latency;
  ++ops_;
  return r;
}

Machine::Machine(const sim::MachineConfig& config, std::uint64_t seed)
    : memory_(config),
      arena_(/*base=*/0x10000, config.l1d.line_bytes, config.page_bytes),
      seed_(seed),
      spawn_rng_(seed) {}

void Machine::spawn(ThreadFn fn) {
  FSML_CHECK_MSG(!ran_, "spawn after run() is not supported");
  FSML_CHECK_MSG(threads_.size() < config().num_cores,
                 "more threads than cores: enlarge the MachineConfig");
  auto state = std::make_unique<ThreadState>();
  state->fn = std::move(fn);
  const auto core = static_cast<sim::CoreId>(threads_.size());
  // Per-thread RNG stream derived deterministically from the machine seed.
  state->ctx.reset(new ThreadCtx(this, core, spawn_rng_.next()));
  threads_.push_back(std::move(state));
}

RunResult Machine::run(sim::Cycles max_cycles) {
  FSML_CHECK_MSG(!ran_, "Machine::run() is one-shot");
  FSML_CHECK_MSG(!threads_.empty(), "no threads spawned");
  ran_ = true;

  // Instantiate the coroutines and seed each thread's resume handle.
  for (auto& t : threads_) {
    t->task = t->fn(*t->ctx);
    FSML_CHECK_MSG(t->task.valid(), "thread function must return a SimTask");
    t->task.handle().promise().done_flag = &t->done;
    t->ctx->set_resume(t->task.handle());
  }

  std::uint64_t memory_ops = 0;
  RunResult result;
  sim::RawCounters last_snapshot;
  sim::Cycles next_boundary = slice_cycles_;
  std::uint32_t cancel_poll = 0;
  for (;;) {
    // Cooperative cancellation: poll the flag every 4096 scheduler steps —
    // often enough to honour a deadline promptly, rare enough to stay off
    // the hot path.
    if (cancel_flag_ != nullptr && (++cancel_poll & 0xFFFu) == 0 &&
        cancel_flag_->load(std::memory_order_relaxed))
      throw Cancelled();
    ThreadState* next = nullptr;
    for (auto& t : threads_) {
      if (t->done) continue;
      if (next == nullptr || t->ctx->clock() < next->ctx->clock())
        next = t.get();
    }
    if (next == nullptr) break;  // all threads finished

    // Slice sampling: when the global time front (the min clock) crosses a
    // boundary, everything counted so far belongs to completed slices.
    if (slice_cycles_ > 0) {
      while (next->ctx->clock() >= next_boundary) {
        const sim::RawCounters now = memory_.aggregate_counters();
        result.slices.push_back(last_snapshot.delta_to(now));
        last_snapshot = now;
        next_boundary += slice_cycles_;
      }
    }

    FSML_CHECK_MSG(next->ctx->clock() <= max_cycles,
                   "simulation exceeded the cycle budget (deadlock or "
                   "runaway kernel?)");

    const auto handle = next->ctx->take_resume();
    FSML_CHECK_MSG(static_cast<bool>(handle),
                   "runnable thread without a resume point");
    running_ = next;
    handle.resume();
    running_ = nullptr;

    if (next->done) {
      if (auto ep = next->task.handle().promise().exception)
        std::rethrow_exception(ep);
    }
  }

  result.core_cycles.reserve(threads_.size());
  for (auto& t : threads_) {
    const sim::Cycles c = t->ctx->clock();
    result.core_cycles.push_back(c);
    result.total_cycles = std::max(result.total_cycles, c);
    memory_ops += t->ctx->ops_issued();
    memory_.account_cycles(t->ctx->core(), c);
  }
  result.memory_ops = memory_ops;
  result.aggregate = memory_.aggregate_counters();
  if (slice_cycles_ > 0) {
    // Final partial slice (account_cycles above does not affect deltas of
    // interest beyond CYCLES_TOTAL).
    result.slices.push_back(last_snapshot.delta_to(result.aggregate));
    result.slice_cycles = slice_cycles_;
  }
  result.instructions =
      result.aggregate.get(sim::RawEvent::kInstructionsRetired);
  result.seconds = seconds(result.total_cycles);
  return result;
}

double Machine::seconds(sim::Cycles cycles) const {
  return static_cast<double>(cycles) / config().core_hz;
}

}  // namespace fsml::exec
