// Synchronization primitives for simulated threads.
//
// All primitives live at simulated addresses, so acquiring a lock or
// spinning on a barrier produces real coherence traffic (RFOs, HITM
// transfers) and burns retired instructions — faithfully reproducing the
// spin-wait instruction-count inflation the paper analyses for
// streamcluster (Section 4.3).
//
// Atomicity: the host-side state mutation runs inside the memory-op
// awaitable's apply step, before any other simulated thread can run, so a
// kRmw op plus its callback is a true atomic read-modify-write under the
// discrete-event scheduler.
#pragma once

#include <cstdint>

#include "exec/machine.hpp"
#include "exec/task.hpp"
#include "util/check.hpp"

namespace fsml::exec {

/// Test-and-test-and-set spin lock on a simulated cache line.
class SpinLock {
 public:
  explicit SpinLock(VirtualArena& arena)
      : addr_(arena.alloc_line_aligned(8)) {}

  sim::Addr addr() const { return addr_; }
  bool held() const { return held_; }
  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t contended_acquisitions() const { return contended_; }

  /// One atomic test-and-set attempt; true when the lock was taken.
  /// count_contention bumps the contended counter when the lock is found
  /// held — inside the fn-op, because lock statistics are cross-thread
  /// host state and parallel runs only serialize fn-op callbacks (plain
  /// coroutine-body code in different core groups runs concurrently).
  auto try_acquire(ThreadCtx& ctx, bool count_contention = false) {
    return ctx.op(addr_, 8, sim::AccessType::kRmw,
                  [this, core = ctx.core(), count_contention](
                      sim::AccessResult) {
                    if (held_) {
                      if (count_contention) ++contended_;
                      return false;
                    }
                    held_ = true;
                    owner_ = core;
                    ++acquisitions_;
                    return true;
                  });
  }

  /// Plain read of the lock word (the "test" of test-and-test-and-set).
  auto peek(ThreadCtx& ctx) {
    return ctx.op(addr_, 8, sim::AccessType::kLoad,
                  [this](sim::AccessResult) { return held_; });
  }

  /// Blocking acquire: spins (issuing loads, burning instructions) until
  /// the lock is free, then retries the test-and-set.
  ///
  /// NOTE: co_await results are bound to named locals before being tested.
  /// GCC 12 miscompiles `if (co_await expr)` / `while (co_await expr)` in
  /// nested coroutines (the frame loses its resume point mid-condition);
  /// binding the result first sidesteps the bug.
  SimTask acquire(ThreadCtx& ctx) {
    const bool first_try = co_await try_acquire(ctx, /*count_contention=*/true);
    if (first_try) co_return;
    for (;;) {
      for (;;) {
        const bool busy = co_await peek(ctx);
        if (!busy) break;
        ctx.compute(2);  // spin-read + branch
      }
      const bool taken = co_await try_acquire(ctx);
      if (taken) co_return;
    }
  }

  auto release(ThreadCtx& ctx) {
    return ctx.op(addr_, 8, sim::AccessType::kStore,
                  [this, core = ctx.core()](sim::AccessResult) {
                    FSML_CHECK_MSG(held_ && owner_ == core,
                                   "release by a thread not holding the lock");
                    held_ = false;
                    return true;
                  });
  }

 private:
  sim::Addr addr_;
  bool held_ = false;
  sim::CoreId owner_ = 0;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t contended_ = 0;
};

/// Centralized sense-style spin barrier for a fixed set of parties.
class SpinBarrier {
 public:
  SpinBarrier(VirtualArena& arena, std::uint32_t parties)
      : count_addr_(arena.alloc_line_aligned(8)),
        gen_addr_(arena.alloc_line_aligned(8)),
        parties_(parties) {
    FSML_CHECK(parties >= 1);
  }

  std::uint64_t generation() const { return generation_; }
  std::uint64_t waits() const { return waits_; }

  SimTask wait(ThreadCtx& ctx) {
    struct Arrival {
      std::uint64_t generation;
      bool last;
    };
    const Arrival arrival = co_await ctx.op(
        count_addr_, 8, sim::AccessType::kRmw, [this](sim::AccessResult) {
          ++waits_;
          ++arrived_;
          if (arrived_ == parties_) {
            arrived_ = 0;
            ++generation_;
            return Arrival{generation_, true};
          }
          return Arrival{generation_, false};
        });
    if (arrival.last) {
      // Publish the new generation so spinners observe the release write.
      co_await ctx.store(gen_addr_, 8);
      co_return;
    }
    for (;;) {
      const std::uint64_t g =
          co_await ctx.op(gen_addr_, 8, sim::AccessType::kLoad,
                          [this](sim::AccessResult) { return generation_; });
      if (g > arrival.generation) co_return;
      ctx.compute(2);  // spin-read + branch
    }
  }

 private:
  sim::Addr count_addr_;
  sim::Addr gen_addr_;
  std::uint32_t parties_;
  std::uint32_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t waits_ = 0;
};

/// Shared atomic counter at a simulated address (fetch_add / read).
class AtomicU64 {
 public:
  explicit AtomicU64(VirtualArena& arena, std::uint64_t initial = 0,
                     bool line_aligned = true)
      : addr_(line_aligned ? arena.alloc_line_aligned(8) : arena.alloc(8, 8)),
        value_(initial) {}

  sim::Addr addr() const { return addr_; }
  std::uint64_t value() const { return value_; }

  auto fetch_add(ThreadCtx& ctx, std::uint64_t delta) {
    return ctx.op(addr_, 8, sim::AccessType::kRmw,
                  [this, delta](sim::AccessResult) {
                    const std::uint64_t old = value_;
                    value_ += delta;
                    return old;
                  });
  }

  auto read(ThreadCtx& ctx) {
    return ctx.op(addr_, 8, sim::AccessType::kLoad,
                  [this](sim::AccessResult) { return value_; });
  }

  auto write(ThreadCtx& ctx, std::uint64_t v) {
    return ctx.op(addr_, 8, sim::AccessType::kStore,
                  [this, v](sim::AccessResult) {
                    value_ = v;
                    return v;
                  });
  }

 private:
  sim::Addr addr_;
  std::uint64_t value_;
};

}  // namespace fsml::exec
