#include "exec/arena.hpp"

#include <bit>

#include "util/check.hpp"

namespace fsml::exec {

VirtualArena::VirtualArena(sim::Addr base, std::uint32_t line_bytes,
                           std::uint32_t page_bytes)
    : base_(base), next_(base), line_bytes_(line_bytes),
      page_bytes_(page_bytes) {
  FSML_CHECK(std::has_single_bit(static_cast<std::uint64_t>(line_bytes)));
  FSML_CHECK(std::has_single_bit(static_cast<std::uint64_t>(page_bytes)));
  FSML_CHECK(page_bytes >= line_bytes);
}

sim::Addr VirtualArena::alloc(std::uint64_t bytes, std::uint64_t align) {
  FSML_CHECK(bytes > 0);
  FSML_CHECK(std::has_single_bit(align));
  next_ = (next_ + align - 1) & ~(align - 1);
  const sim::Addr addr = next_;
  next_ += bytes;
  return addr;
}

sim::Addr VirtualArena::alloc_line_aligned(std::uint64_t bytes) {
  return alloc(bytes, line_bytes_);
}

sim::Addr VirtualArena::alloc_page_aligned(std::uint64_t bytes) {
  return alloc(bytes, page_bytes_);
}

sim::Addr VirtualArena::alloc_named(const std::string& name,
                                    std::uint64_t bytes, std::uint64_t align) {
  const sim::Addr addr = alloc(bytes, align);
  allocations_.push_back(Allocation{name, addr, bytes});
  return addr;
}

sim::Addr VirtualArena::alloc_line_aligned_named(const std::string& name,
                                                 std::uint64_t bytes) {
  return alloc_named(name, bytes, line_bytes_);
}

std::optional<Allocation> VirtualArena::find_allocation(sim::Addr addr) const {
  for (const Allocation& a : allocations_)
    if (a.contains(addr)) return a;
  return std::nullopt;
}

void VirtualArena::skip(std::uint64_t bytes) { next_ += bytes; }

void VirtualArena::reset() {
  next_ = base_;
  allocations_.clear();
}

}  // namespace fsml::exec
