// VirtualArena: bump allocator over the simulated address space.
//
// Kernels lay out their simulated data with this allocator. Whether two
// per-thread variables share a cache line is decided here — exactly the
// data-layout accident that causes false sharing in real programs — so the
// trainers' "good" vs "bad-fs" modes are expressed purely as allocation
// choices (packed vs line-aligned).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace fsml::exec {

/// A named allocation, recorded so analysis tools can attribute cache
/// lines back to data structures (the "which variable is false sharing?"
/// question).
struct Allocation {
  std::string name;
  sim::Addr begin = 0;
  std::uint64_t bytes = 0;
  bool contains(sim::Addr addr) const {
    return addr >= begin && addr < begin + bytes;
  }
};

class VirtualArena {
 public:
  explicit VirtualArena(sim::Addr base = 0x10000, std::uint32_t line_bytes = 64,
                        std::uint32_t page_bytes = 4096);

  /// Allocates `bytes` with the given alignment (power of two).
  sim::Addr alloc(std::uint64_t bytes, std::uint64_t align = 8);

  /// Named variants: same allocation, plus a registry entry that lets the
  /// mitigation advisor name the offending structure.
  sim::Addr alloc_named(const std::string& name, std::uint64_t bytes,
                        std::uint64_t align = 8);
  sim::Addr alloc_line_aligned_named(const std::string& name,
                                     std::uint64_t bytes);

  /// The allocation covering `addr`, if any was named.
  std::optional<Allocation> find_allocation(sim::Addr addr) const;
  const std::vector<Allocation>& allocations() const { return allocations_; }

  /// Allocates starting on a fresh cache line.
  sim::Addr alloc_line_aligned(std::uint64_t bytes);

  /// Allocates starting on a fresh page (forces new DTLB entries).
  sim::Addr alloc_page_aligned(std::uint64_t bytes);

  /// Inserts an unused gap, useful to pad between allocations.
  void skip(std::uint64_t bytes);

  std::uint64_t bytes_allocated() const { return next_ - base_; }
  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint32_t page_bytes() const { return page_bytes_; }

  /// Releases everything (allocation addresses may repeat afterwards).
  void reset();

 private:
  sim::Addr base_;
  sim::Addr next_;
  std::uint32_t line_bytes_;
  std::uint32_t page_bytes_;
  std::vector<Allocation> allocations_;
};

}  // namespace fsml::exec
