// sync.hpp is header-only (awaitable templates); this TU just anchors the
// library and type-checks the header standalone.
#include "exec/sync.hpp"
