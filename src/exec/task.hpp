// SimTask: the coroutine type simulated threads are written in.
//
// A simulated thread is an ordinary C++20 coroutine that co_awaits every
// memory operation (ThreadCtx::load/store/rmw). Each co_await applies the
// access to the memory system, charges its latency to the thread's virtual
// clock, and yields control to the scheduler, which always resumes the
// runnable thread with the smallest clock — a discrete-event simulation of
// fine-grain SMP interleaving, fully deterministic for a given seed.
//
// SimTask supports composition: a kernel can `co_await` helper coroutines
// (lock acquisition, barrier waits) via symmetric transfer, so synchronization
// primitives read like straight-line code.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "util/check.hpp"

namespace fsml::exec {

class SimTask {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;  ///< parent coroutine, if awaited
    bool* done_flag = nullptr;             ///< set for root (thread) tasks
    std::exception_ptr exception;

    SimTask get_return_object() {
      return SimTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) const noexcept {
        promise_type& p = h.promise();
        if (p.done_flag != nullptr) *p.done_flag = true;
        if (p.continuation) return p.continuation;
        return std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  SimTask() = default;
  explicit SimTask(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}

  SimTask(SimTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;

  ~SimTask() { destroy(); }

  std::coroutine_handle<promise_type> handle() const { return handle_; }
  bool valid() const { return static_cast<bool>(handle_); }

  /// Awaiting a subtask starts it immediately (symmetric transfer) and
  /// resumes the parent when the subtask completes. Exceptions propagate.
  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) const {
        h.promise().continuation = parent;
        return h;
      }
      void await_resume() const {
        if (h && h.promise().exception)
          std::rethrow_exception(h.promise().exception);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace fsml::exec
