// Multi-socket topology tests: per-socket L3s, QPI latencies for
// cross-socket coherence, inclusion per socket, invariants under stress,
// and the classifier's robustness to the 2x6 layout of the paper's actual
// X5690 machine.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/training.hpp"
#include "sim/machine_config.hpp"
#include "sim/memory_system.hpp"
#include "trainers/trainer.hpp"
#include "util/rng.hpp"

namespace {

using namespace fsml;
using sim::AccessType;
using sim::MesiState;
using sim::RawEvent;

constexpr sim::Addr kLine = 0x20000;

sim::MachineConfig two_socket(std::uint32_t cores = 4,
                              std::uint32_t per_socket = 2) {
  sim::MachineConfig cfg = sim::MachineConfig::tiny(cores);
  cfg.topology = {(cores + per_socket - 1) / per_socket, per_socket};
  cfg.validate();
  return cfg;
}

TEST(Topology, SocketMapping) {
  sim::MemorySystem mem(two_socket(4, 2));
  EXPECT_EQ(mem.num_sockets(), 2u);
  EXPECT_EQ(mem.socket_of(0), 0u);
  EXPECT_EQ(mem.socket_of(1), 0u);
  EXPECT_EQ(mem.socket_of(2), 1u);
  EXPECT_EQ(mem.socket_of(3), 1u);
}

TEST(Topology, SingleSocketByDefault) {
  sim::MemorySystem mem(sim::MachineConfig::westmere_dp(12));
  EXPECT_EQ(mem.num_sockets(), 1u);
  EXPECT_EQ(mem.socket_of(11), 0u);
}

TEST(Topology, PaperMachineIsTwoBySix) {
  const auto cfg = sim::MachineConfig::westmere_dp_2s();
  sim::MemorySystem mem(cfg);
  EXPECT_EQ(mem.num_sockets(), 2u);
  EXPECT_EQ(mem.socket_of(5), 0u);
  EXPECT_EQ(mem.socket_of(6), 1u);
}

TEST(Topology, CrossSocketHitmCostsQpiHop) {
  const auto cfg = two_socket(4, 2);
  sim::MemorySystem mem(cfg);
  mem.access(0, kLine, 8, AccessType::kStore, 0);  // M on socket 0

  // Same-socket transfer.
  const auto local = mem.access(1, kLine, 8, AccessType::kLoad, 1000);
  // Reset: core 2 (socket 1) writes, then core 3 (socket 1)... instead use a
  // second line for the remote case.
  mem.access(0, kLine + 0x1000, 8, AccessType::kStore, 2000);
  const auto remote =
      mem.access(2, kLine + 0x1000, 8, AccessType::kLoad, 3000);

  EXPECT_EQ(local.level, sim::ServiceLevel::kPeerHitM);
  EXPECT_EQ(remote.level, sim::ServiceLevel::kPeerHitM);
  EXPECT_GE(remote.latency, local.latency + cfg.cycles.qpi_hop);
  EXPECT_EQ(mem.counters(2).get(RawEvent::kCrossSocketTransfers), 1u);
  EXPECT_EQ(mem.counters(1).get(RawEvent::kCrossSocketTransfers), 0u);
}

TEST(Topology, ReadAcrossSocketsPopulatesBothL3s) {
  sim::MemorySystem mem(two_socket(4, 2));
  mem.access(0, kLine, 8, AccessType::kLoad, 0);
  EXPECT_TRUE(mem.l3(0).contains(kLine));
  EXPECT_FALSE(mem.l3(1).contains(kLine));
  mem.access(2, kLine, 8, AccessType::kLoad, 1000);
  EXPECT_TRUE(mem.l3(0).contains(kLine));
  EXPECT_TRUE(mem.l3(1).contains(kLine));
  EXPECT_GE(mem.counters(2).get(RawEvent::kRemoteL3Hits) +
                mem.counters(2).get(RawEvent::kCleanTransfersIn),
            1u);
}

TEST(Topology, RfoInvalidatesRemoteL3Copy) {
  sim::MemorySystem mem(two_socket(4, 2));
  mem.access(0, kLine, 8, AccessType::kLoad, 0);
  mem.access(2, kLine, 8, AccessType::kLoad, 1000);  // both L3s hold it
  mem.access(2, kLine, 8, AccessType::kStore, 2000); // socket-1 core owns
  EXPECT_FALSE(mem.l3(0).contains(kLine))
      << "stale remote L3 copy after exclusive ownership";
  EXPECT_TRUE(mem.l3(1).contains(kLine));
  EXPECT_TRUE(mem.check_coherence_invariant());
  EXPECT_TRUE(mem.check_inclusion());
}

TEST(Topology, InclusionPerSocket) {
  sim::MemorySystem mem(two_socket(4, 2));
  util::Rng rng(3);
  for (int op = 0; op < 2000; ++op) {
    const auto core = static_cast<sim::CoreId>(rng.next_below(4));
    const sim::Addr addr = 0x8000 + rng.next_below(512) * 32;
    const auto type = static_cast<AccessType>(rng.next_below(3));
    mem.access(core, addr, 8, type, static_cast<sim::Cycles>(op) * 3);
  }
  EXPECT_TRUE(mem.check_inclusion());
  EXPECT_TRUE(mem.check_coherence_invariant());
}

// Params: (sockets, cores per socket, seed). Multi-socket machines must
// tile evenly (ragged layouts are rejected by validation), so the sweep is
// expressed as sockets x per-socket rather than raw core counts.
class TopologyStress
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TopologyStress, InvariantsUnderRandomTraffic) {
  const auto [sockets, per_socket, seed] = GetParam();
  const std::uint32_t cores =
      static_cast<std::uint32_t>(sockets) *
      static_cast<std::uint32_t>(per_socket);
  sim::MemorySystem mem(
      two_socket(cores, static_cast<std::uint32_t>(per_socket)));
  ASSERT_EQ(mem.num_sockets(), static_cast<std::uint32_t>(sockets));
  util::Rng rng(static_cast<std::uint64_t>(seed));
  for (int op = 0; op < 3000; ++op) {
    const auto core = static_cast<sim::CoreId>(rng.next_below(cores));
    const sim::Addr addr = 0x8000 + rng.next_below(192) * 32;
    const auto type = static_cast<AccessType>(rng.next_below(3));
    mem.access(core, addr, 8, type, static_cast<sim::Cycles>(op) * 3);
    if (op % 300 == 0) {
      ASSERT_TRUE(mem.check_coherence_invariant()) << "op " << op;
      ASSERT_TRUE(mem.check_inclusion()) << "op " << op;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopologyStress,
    ::testing::Combine(::testing::Values(2, 3), ::testing::Values(2, 3),
                       ::testing::Values(5, 9)));

TEST(Topology, FalseSharingCostlierAcrossSockets) {
  // Two threads false-sharing a line: same socket vs different sockets.
  const auto run_pair = [](bool cross_socket) {
    sim::MachineConfig cfg = sim::MachineConfig::westmere_dp(12);
    cfg.topology = {2, 6};
    cfg.validate();
    sim::MemorySystem mem(cfg);
    const sim::CoreId a = 0;
    const sim::CoreId b = cross_socket ? 6 : 1;
    sim::Cycles clock_a = 0, clock_b = 0;
    for (int i = 0; i < 500; ++i) {
      clock_a += mem.access(a, kLine, 8, AccessType::kRmw, clock_a).latency;
      clock_b +=
          mem.access(b, kLine + 8, 8, AccessType::kRmw, clock_b).latency;
    }
    return std::max(clock_a, clock_b);
  };
  EXPECT_GT(run_pair(true), run_pair(false) * 5 / 4);
}

TEST(Topology, DetectorTrainedOnOneSocketWorksOnTwo) {
  // The paper claims the methodology ports across platforms; the harder
  // version: the *trained model* itself carries over to the same machine's
  // true 2x6 topology, because normalized HITM signatures survive the
  // topology change (cross-socket HITMs are slower but just as countable).
  core::TrainingConfig config = core::TrainingConfig::reduced();
  // The test classifies 12-thread runs, so the (reduced) training grid must
  // include 12-thread instances — the learned thresholds shift with the
  // thread count's prefetch-coverage profile.
  config.thread_counts = {3, 12};
  core::FalseSharingDetector detector;
  detector.train(core::collect_training_data(config));

  trainers::TrainerParams params;
  params.threads = 12;
  params.size = 32768;
  const auto cfg2s = sim::MachineConfig::westmere_dp_2s();

  params.mode = trainers::Mode::kBadFs;
  const auto bad =
      trainers::run_trainer(trainers::find_program("pdot"), params, cfg2s);
  EXPECT_EQ(detector.classify(bad.features), trainers::Mode::kBadFs);
  EXPECT_GT(bad.raw.get(RawEvent::kCrossSocketTransfers), 100u);

  params.mode = trainers::Mode::kGood;
  const auto good =
      trainers::run_trainer(trainers::find_program("pdot"), params, cfg2s);
  EXPECT_EQ(detector.classify(good.features), trainers::Mode::kGood);
}

}  // namespace
