// Tests for the ground-truth detectors: the Zhao-style shadow-memory
// contention tracker (byte-overlap classification of invalidation misses,
// cold-miss handling, the 8-thread limit, the cold-as-FS flaw switch) and
// the SHERIFF-style epoch write-diff detector.
#include <gtest/gtest.h>

#include "baseline/epoch_detector.hpp"
#include "baseline/shadow_detector.hpp"
#include "util/check.hpp"

namespace {

using namespace fsml;
using sim::AccessRecord;
using sim::AccessType;

AccessRecord rec(sim::CoreId core, sim::Addr addr, std::uint32_t size,
                 AccessType type) {
  return AccessRecord{core, addr, size, type, sim::ServiceLevel::kL1, 0};
}

constexpr sim::Addr kLine = 0x4000;

// ---- shadow detector ---------------------------------------------------------

TEST(ShadowDetector, DisjointWritesAreFalseSharing) {
  baseline::ShadowDetector d(2);
  // Thread 0 writes bytes 0-7, thread 1 writes bytes 32-39, repeatedly.
  for (int i = 0; i < 10; ++i) {
    d.on_access(rec(0, kLine, 8, AccessType::kStore));
    d.on_access(rec(1, kLine + 32, 8, AccessType::kStore));
  }
  const auto r = d.report();
  EXPECT_GT(r.false_sharing_misses, 15u);
  EXPECT_EQ(r.true_sharing_misses, 0u);
}

TEST(ShadowDetector, OverlappingWritesAreTrueSharing) {
  baseline::ShadowDetector d(2);
  for (int i = 0; i < 10; ++i) {
    d.on_access(rec(0, kLine, 8, AccessType::kStore));
    d.on_access(rec(1, kLine, 8, AccessType::kStore));  // same bytes
  }
  const auto r = d.report();
  EXPECT_EQ(r.false_sharing_misses, 0u);
  EXPECT_GT(r.true_sharing_misses, 15u);
}

TEST(ShadowDetector, ReaderOfForeignBytesIsTrueSharing) {
  baseline::ShadowDetector d(2);
  d.on_access(rec(0, kLine, 8, AccessType::kStore));
  d.on_access(rec(1, kLine, 8, AccessType::kLoad));  // reads written bytes
  d.on_access(rec(0, kLine, 8, AccessType::kStore)); // invalidates reader
  d.on_access(rec(1, kLine, 8, AccessType::kLoad));
  const auto r = d.report();
  EXPECT_EQ(r.false_sharing_misses, 0u);
  EXPECT_GE(r.true_sharing_misses, 1u);
}

TEST(ShadowDetector, ReaderOfDisjointBytesIsFalseSharing) {
  baseline::ShadowDetector d(2);
  d.on_access(rec(1, kLine + 32, 8, AccessType::kLoad));  // establish copy
  for (int i = 0; i < 5; ++i) {
    d.on_access(rec(0, kLine, 8, AccessType::kStore));
    d.on_access(rec(1, kLine + 32, 8, AccessType::kLoad));
  }
  const auto r = d.report();
  EXPECT_GE(r.false_sharing_misses, 5u);
  EXPECT_EQ(r.true_sharing_misses, 0u);
}

TEST(ShadowDetector, ColdMissesAreNotContention) {
  baseline::ShadowDetector d(4);
  for (sim::CoreId t = 0; t < 4; ++t)
    d.on_access(rec(t, kLine + 64 * t, 8, AccessType::kLoad));
  const auto r = d.report();
  EXPECT_EQ(r.cold_misses, 4u);
  EXPECT_EQ(r.false_sharing_misses, 0u);
}

TEST(ShadowDetector, ColdAsFsFlagReproducesHistogramFlaw) {
  // The original tool misattributed cold misses on written lines as FS —
  // the histogram false positive the paper discusses in Section 5.
  baseline::ShadowDetectorOptions opts;
  opts.count_cold_as_fs = true;
  baseline::ShadowDetector flawed(2, opts);
  flawed.on_access(rec(0, kLine, 8, AccessType::kStore));
  flawed.on_access(rec(1, kLine + 32, 8, AccessType::kLoad));  // cold!
  EXPECT_EQ(flawed.report().false_sharing_misses, 1u);

  baseline::ShadowDetector correct(2);
  correct.on_access(rec(0, kLine, 8, AccessType::kStore));
  correct.on_access(rec(1, kLine + 32, 8, AccessType::kLoad));
  EXPECT_EQ(correct.report().false_sharing_misses, 0u);
}

TEST(ShadowDetector, RateUsesInstructions) {
  baseline::ShadowDetector d(2);
  d.on_access(rec(0, kLine, 8, AccessType::kStore));
  d.on_access(rec(1, kLine + 32, 8, AccessType::kStore));
  d.on_access(rec(0, kLine, 8, AccessType::kStore));
  d.on_instructions(0, 997);  // plus 3 access instructions -> 1000 total
  const auto r = d.report();
  EXPECT_EQ(r.instructions, 1000u);
  EXPECT_NEAR(r.false_sharing_rate(),
              static_cast<double>(r.false_sharing_misses) / 1000.0, 1e-12);
}

TEST(ShadowDetector, ThresholdRule) {
  baseline::SharingReport r;
  r.instructions = 1000;
  r.false_sharing_misses = 1;
  EXPECT_FALSE(r.has_false_sharing());  // 1e-3 is NOT strictly greater
  r.false_sharing_misses = 2;
  EXPECT_TRUE(r.has_false_sharing());
}

TEST(ShadowDetector, EightThreadLimit) {
  EXPECT_NO_THROW(baseline::ShadowDetector d(8));
  EXPECT_THROW(baseline::ShadowDetector d(9), util::CheckFailure);
}

TEST(ShadowDetector, TopLinesRankedByFsEvents) {
  baseline::ShadowDetector d(2);
  // Heavy FS on line A, light on line B.
  for (int i = 0; i < 20; ++i) {
    d.on_access(rec(0, kLine, 8, AccessType::kStore));
    d.on_access(rec(1, kLine + 32, 8, AccessType::kStore));
  }
  d.on_access(rec(0, kLine + 0x100, 8, AccessType::kStore));
  d.on_access(rec(1, kLine + 0x120, 8, AccessType::kStore));
  d.on_access(rec(0, kLine + 0x100, 8, AccessType::kStore));
  const auto r = d.report();
  ASSERT_GE(r.top_lines.size(), 2u);
  EXPECT_EQ(r.top_lines[0].line, kLine);
  EXPECT_GT(r.top_lines[0].false_sharing_events,
            r.top_lines[1].false_sharing_events);
  EXPECT_EQ(r.top_lines[0].writer_mask, 0x3u);
}

TEST(ShadowDetector, LineCrossingAccessSplit) {
  baseline::ShadowDetector d(2);
  d.on_access(rec(0, kLine + 60, 8, AccessType::kStore));  // spans 2 lines
  const auto r = d.report();
  EXPECT_EQ(r.accesses, 2u);
  EXPECT_EQ(r.instructions, 1u);  // still one instruction
}

TEST(ShadowDetector, SameThreadNeverContendsWithItself) {
  baseline::ShadowDetector d(2);
  for (int i = 0; i < 50; ++i)
    d.on_access(rec(0, kLine + 8 * (i % 8), 8, AccessType::kRmw));
  const auto r = d.report();
  EXPECT_EQ(r.false_sharing_misses, 0u);
  EXPECT_EQ(r.true_sharing_misses, 0u);
}

// ---- epoch detector -----------------------------------------------------------

TEST(EpochDetector, DisjointWritersInOneEpochAreFalseSharing) {
  baseline::EpochDetectorOptions opts;
  opts.epoch_instructions = 1000;
  baseline::EpochDetector d(2, opts);
  for (int i = 0; i < 10; ++i) {
    d.on_access(rec(0, kLine, 8, AccessType::kStore));
    d.on_access(rec(1, kLine + 32, 8, AccessType::kStore));
  }
  const auto r = d.report();
  EXPECT_GT(r.false_sharing_misses, 0u);
  EXPECT_EQ(r.true_sharing_misses, 0u);
}

TEST(EpochDetector, OverlappingWritersAreTrueSharing) {
  baseline::EpochDetector d(2);
  for (int i = 0; i < 10; ++i) {
    d.on_access(rec(0, kLine, 8, AccessType::kStore));
    d.on_access(rec(1, kLine, 8, AccessType::kStore));
  }
  const auto r = d.report();
  EXPECT_EQ(r.false_sharing_misses, 0u);
  EXPECT_GT(r.true_sharing_misses, 0u);
}

TEST(EpochDetector, ReadsAreInvisible) {
  // SHERIFF's write-diff design cannot see reader-side contention.
  baseline::EpochDetector d(2);
  for (int i = 0; i < 20; ++i) {
    d.on_access(rec(0, kLine, 8, AccessType::kStore));
    d.on_access(rec(1, kLine + 32, 8, AccessType::kLoad));
  }
  const auto r = d.report();
  EXPECT_EQ(r.false_sharing_misses, 0u);
}

TEST(EpochDetector, WritersInDifferentEpochsDoNotContend) {
  baseline::EpochDetectorOptions opts;
  opts.epoch_instructions = 5;
  baseline::EpochDetector d(2, opts);
  for (int i = 0; i < 10; ++i)
    d.on_access(rec(0, kLine, 8, AccessType::kStore));
  // Epochs roll over; thread 1 writes long after thread 0 stopped.
  for (int i = 0; i < 10; ++i)
    d.on_access(rec(1, kLine + 32, 8, AccessType::kStore));
  const auto r = d.report();
  EXPECT_EQ(r.false_sharing_misses, 0u);
  EXPECT_GT(d.epochs_committed(), 2u);
}

TEST(EpochDetector, FinalPartialEpochCommitted) {
  baseline::EpochDetectorOptions opts;
  opts.epoch_instructions = 1000000;  // never rolls over on its own
  baseline::EpochDetector d(2, opts);
  d.on_access(rec(0, kLine, 8, AccessType::kStore));
  d.on_access(rec(1, kLine + 32, 8, AccessType::kStore));
  const auto r = d.report();  // forces the final commit
  EXPECT_GT(r.false_sharing_misses, 0u);
  EXPECT_EQ(d.epochs_committed(), 1u);
}

}  // namespace
