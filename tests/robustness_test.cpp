// Tests for graceful classifier degradation: the retry/vote/abstain loop,
// the `unknown` verdict, and the robustness sweep harness (including the
// acceptance bar: under the moderate-noise preset — 4-counter multiplexing
// plus 5% jitter — the voting detector raises zero false alarms on good
// programs while still classifying at least 90% of runs).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "core/detector.hpp"
#include "core/robustness.hpp"
#include "core/training.hpp"
#include "ml/dataset.hpp"
#include "pmu/counters.hpp"

namespace {

using namespace fsml;
using trainers::Mode;

/// A detector whose verdict is driven purely by feature 0:
/// <= 0.5 -> good, <= 1.5 -> bad-fs, else bad-ma.
core::FalseSharingDetector stub_detector() {
  ml::Dataset d(pmu::FeatureVector::feature_names(),
                {"good", "bad-fs", "bad-ma"});
  for (int rep = 0; rep < 4; ++rep)
    for (int y = 0; y < 3; ++y) {
      std::vector<double> x(pmu::kNumFeatures, 0.25 * rep);
      x[0] = static_cast<double>(y);
      d.add(std::move(x), y);
    }
  core::FalseSharingDetector detector;
  detector.train(d);
  return detector;
}

pmu::FeatureVector features_for(Mode mode) {
  pmu::FeatureVector fv;
  fv.set(0, static_cast<double>(core::label_of(mode)));
  return fv;
}

/// Detector trained on the reduced mini-program grid, shared across the
/// harness tests (training costs a few seconds).
const core::FalseSharingDetector& trained_detector() {
  static const core::FalseSharingDetector detector = [] {
    core::FalseSharingDetector d;
    d.train(core::collect_training_data(core::TrainingConfig::reduced()));
    return d;
  }();
  return detector;
}

core::RobustnessConfig harness_config() {
  core::RobustnessConfig config;
  config.reduced = true;
  config.jobs = 2;
  return config;
}

TEST(RobustVerdict, UnanimousVotesAreConfident) {
  const core::FalseSharingDetector detector = stub_detector();
  const core::RobustVerdict v = detector.classify_robust(
      [](std::size_t) { return features_for(Mode::kBadFs); });
  EXPECT_TRUE(v.known);
  EXPECT_EQ(v.mode, Mode::kBadFs);
  EXPECT_DOUBLE_EQ(v.confidence, 1.0);
  EXPECT_EQ(v.repeats, 5u);
  EXPECT_EQ(v.classified, 5u);
  EXPECT_EQ(v.votes[core::kBadFs], 5u);
  EXPECT_NE(v.to_string().find("bad-fs"), std::string::npos);
}

TEST(RobustVerdict, AllMeasurementsUnusableMeansUnknown) {
  const core::FalseSharingDetector detector = stub_detector();
  const core::RobustVerdict v = detector.classify_robust(
      [](std::size_t) -> std::optional<pmu::FeatureVector> {
        return std::nullopt;
      });
  EXPECT_FALSE(v.known);
  EXPECT_EQ(v.classified, 0u);
  EXPECT_NE(v.to_string().find("unknown"), std::string::npos);
}

TEST(RobustVerdict, ScatteredVotesAbstainUntilThresholdAllows) {
  const core::FalseSharingDetector detector = stub_detector();
  // 2 good, 2 bad-fs, 1 unusable: a 50% winner.
  const auto measure =
      [](std::size_t r) -> std::optional<pmu::FeatureVector> {
    if (r == 4) return std::nullopt;
    return features_for(r < 2 ? Mode::kGood : Mode::kBadFs);
  };
  const core::RobustVerdict abstain = detector.classify_robust(measure);
  EXPECT_FALSE(abstain.known);  // 0.5 < default min_confidence 0.6
  EXPECT_EQ(abstain.classified, 4u);

  core::RobustConfig lenient;
  lenient.min_confidence = 0.5;
  const core::RobustVerdict called = detector.classify_robust(measure,
                                                              lenient);
  EXPECT_TRUE(called.known);
  // Ties break toward the worse verdict, as in majority().
  EXPECT_EQ(called.mode, Mode::kBadFs);
  EXPECT_DOUBLE_EQ(called.confidence, 0.5);
}

TEST(RobustVerdict, ConfigValidates) {
  const core::FalseSharingDetector detector = stub_detector();
  const auto measure = [](std::size_t) { return features_for(Mode::kGood); };
  core::RobustConfig bad;
  bad.repeats = 0;
  EXPECT_THROW(detector.classify_robust(measure, bad), std::runtime_error);
  bad.repeats = 5;
  bad.min_confidence = std::nan("");
  EXPECT_THROW(detector.classify_robust(measure, bad), std::runtime_error);
}

TEST(Robustness, CleanPointMatchesBaseline) {
  core::RobustnessConfig config = harness_config();
  config.jitters = {0.0};
  config.counter_groups = {0};
  config.drops = {0.0};
  const core::RobustnessReport report =
      core::evaluate_robustness(trained_detector(), config);
  ASSERT_EQ(report.points.size(), 1u);
  const core::RobustnessPoint& p = report.points[0];
  EXPECT_EQ(p.runs, report.baseline.runs);
  EXPECT_EQ(p.abstained, 0u);
  EXPECT_DOUBLE_EQ(p.coverage(), 1.0);
  // Noise fully off: every repeat sees the clean features, so the vote is
  // unanimous and the point reproduces the single-shot baseline exactly.
  EXPECT_EQ(p.correct, report.baseline.correct);
  EXPECT_EQ(p.false_positives, report.baseline.false_positives);
}

TEST(Robustness, ModerateNoisePresetMeetsAcceptanceBar) {
  core::RobustnessConfig config = harness_config();
  config.jitters = {0.05};
  config.counter_groups = {4};
  config.drops = {0.0};
  const core::RobustnessReport report =
      core::evaluate_robustness(trained_detector(), config);
  ASSERT_EQ(report.points.size(), 1u);
  const core::RobustnessPoint& p = report.points[0];
  EXPECT_EQ(p.false_positives, 0u);
  EXPECT_GE(p.coverage(), 0.9);
  EXPECT_GE(p.accuracy(), 0.9);
}

TEST(Robustness, ExtremeNoiseAbstainsRatherThanFalselyAlarming) {
  core::RobustnessConfig config = harness_config();
  config.jitters = {1.0};
  config.counter_groups = {2};
  config.drops = {0.6};
  const core::RobustnessReport report =
      core::evaluate_robustness(trained_detector(), config);
  ASSERT_EQ(report.points.size(), 1u);
  // Degradation must surface as lost coverage (abstentions), never as a
  // false alarm on a good program.
  const core::RobustnessPoint& p = report.points[0];
  EXPECT_EQ(p.false_positives, 0u);
  EXPECT_GT(p.abstained, 0u);
  // The per-label breakdown partitions the abstention count exactly.
  EXPECT_EQ(p.abstained_good + p.abstained_bad_fs + p.abstained_bad_ma,
            p.abstained);
}

TEST(Robustness, ReportIsDeterministicAcrossJobs) {
  core::RobustnessConfig config = harness_config();
  config.jitters = {0.0, 0.1};
  config.counter_groups = {4};
  config.drops = {0.0, 0.3};
  core::RobustnessConfig serial = config;
  serial.jobs = 1;
  std::ostringstream a, b;
  core::evaluate_robustness(trained_detector(), config).write_json(a);
  core::evaluate_robustness(trained_detector(), serial).write_json(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Robustness, JsonArtifactHasSchemaAndPoints) {
  core::RobustnessConfig config = harness_config();
  config.jitters = {0.0, 0.05};
  config.counter_groups = {4};
  config.drops = {0.0};
  const core::RobustnessReport report =
      core::evaluate_robustness(trained_detector(), config);
  std::ostringstream os;
  report.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"fsml-robustness-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"baseline\""), std::string::npos);
  EXPECT_NE(json.find("\"points\""), std::string::npos);
  EXPECT_NE(json.find("\"accuracy\""), std::string::npos);
  EXPECT_NE(json.find("\"abstained_good\""), std::string::npos);
  EXPECT_NE(json.find("\"abstained_bad_fs\""), std::string::npos);
  EXPECT_NE(json.find("\"abstained_bad_ma\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Robustness, ConfigRejectsBadAxes) {
  const auto invalid = [](auto mutate) {
    core::RobustnessConfig config;
    mutate(config);
    config.validate();
  };
  EXPECT_THROW(
      invalid([](core::RobustnessConfig& c) { c.jitters = {}; }),
      std::runtime_error);
  EXPECT_THROW(
      invalid([](core::RobustnessConfig& c) { c.jitters = {1.5}; }),
      std::runtime_error);
  EXPECT_THROW(
      invalid([](core::RobustnessConfig& c) { c.drops = {std::nan("")}; }),
      std::runtime_error);
  EXPECT_THROW(
      invalid([](core::RobustnessConfig& c) { c.counter_groups = {17}; }),
      std::runtime_error);
  EXPECT_THROW(
      invalid([](core::RobustnessConfig& c) { c.repeats = -1; }),
      std::runtime_error);
}

}  // namespace
