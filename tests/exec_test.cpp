// Tests for the execution substrate: arena layout, coroutine scheduling
// (determinism, min-clock interleaving, exceptions), task composition and
// the synchronization primitives' atomicity under the DES scheduler.
#include <gtest/gtest.h>

#include <stdexcept>

#include "exec/machine.hpp"
#include "exec/sync.hpp"
#include "sim/machine_config.hpp"
#include "util/check.hpp"

namespace {

using namespace fsml;

// ---- arena -----------------------------------------------------------------

TEST(Arena, AlignmentRespected) {
  exec::VirtualArena arena;
  EXPECT_EQ(arena.alloc(1, 8) % 8, 0u);
  EXPECT_EQ(arena.alloc_line_aligned(1) % 64, 0u);
  EXPECT_EQ(arena.alloc_page_aligned(1) % 4096, 0u);
}

TEST(Arena, AllocationsDisjoint) {
  exec::VirtualArena arena;
  const sim::Addr a = arena.alloc(100, 8);
  const sim::Addr b = arena.alloc(100, 8);
  EXPECT_GE(b, a + 100);
}

TEST(Arena, PackedSlotsShareLines) {
  exec::VirtualArena arena;
  const sim::Addr base = arena.alloc_line_aligned(8 * 8);
  EXPECT_EQ((base + 8 * 7) / 64, base / 64);  // 8 slots on one line
}

TEST(Arena, ResetReusesAddresses) {
  exec::VirtualArena arena;
  const sim::Addr a = arena.alloc(64, 64);
  arena.reset();
  EXPECT_EQ(arena.alloc(64, 64), a);
}

TEST(Arena, RejectsBadArguments) {
  exec::VirtualArena arena;
  EXPECT_THROW(arena.alloc(0, 8), util::CheckFailure);
  EXPECT_THROW(arena.alloc(8, 3), util::CheckFailure);
}

// ---- machine / scheduler -----------------------------------------------------

TEST(Machine, RunsSingleThreadToCompletion) {
  exec::Machine m(sim::MachineConfig::tiny(1), 1);
  const sim::Addr a = m.arena().alloc_line_aligned(8);
  int finished = 0;
  m.spawn([&, a](exec::ThreadCtx& ctx) -> exec::SimTask {
    for (int i = 0; i < 10; ++i) co_await ctx.load(a);
    finished = 1;
  });
  const auto r = m.run();
  EXPECT_EQ(finished, 1);
  EXPECT_EQ(r.memory_ops, 10u);
  EXPECT_GT(r.total_cycles, 0u);
}

TEST(Machine, DeterministicAcrossRuns) {
  const auto run_once = [] {
    exec::Machine m(sim::MachineConfig::tiny(2), 5);
    const sim::Addr a = m.arena().alloc_line_aligned(16);
    for (int t = 0; t < 2; ++t) {
      m.spawn([&, a, t](exec::ThreadCtx& ctx) -> exec::SimTask {
        for (int i = 0; i < 50; ++i) {
          co_await ctx.rmw(a + 8 * t);
          ctx.compute(ctx.rng().next_below(4));
        }
      });
    }
    return m.run().total_cycles;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Machine, MinClockSchedulingInterleavesFairly) {
  // Two identical threads must end with near-identical clocks.
  exec::Machine m(sim::MachineConfig::tiny(2), 1);
  const sim::Addr a = m.arena().alloc_line_aligned(128);
  for (int t = 0; t < 2; ++t) {
    const sim::Addr mine = a + 64 * t;
    m.spawn([mine](exec::ThreadCtx& ctx) -> exec::SimTask {
      for (int i = 0; i < 100; ++i) co_await ctx.load(mine);
    });
  }
  const auto r = m.run();
  ASSERT_EQ(r.core_cycles.size(), 2u);
  const auto hi = std::max(r.core_cycles[0], r.core_cycles[1]);
  const auto lo = std::min(r.core_cycles[0], r.core_cycles[1]);
  EXPECT_LT(hi - lo, hi / 4);
}

TEST(Machine, SpawnBeyondCoresRejected) {
  exec::Machine m(sim::MachineConfig::tiny(1), 1);
  m.spawn([](exec::ThreadCtx&) -> exec::SimTask { co_return; });
  EXPECT_THROW(
      m.spawn([](exec::ThreadCtx&) -> exec::SimTask { co_return; }),
      util::CheckFailure);
}

TEST(Machine, RunIsOneShot) {
  exec::Machine m(sim::MachineConfig::tiny(1), 1);
  m.spawn([](exec::ThreadCtx&) -> exec::SimTask { co_return; });
  m.run();
  EXPECT_THROW(m.run(), util::CheckFailure);
}

TEST(Machine, KernelExceptionPropagates) {
  exec::Machine m(sim::MachineConfig::tiny(1), 1);
  const sim::Addr a = m.arena().alloc_line_aligned(8);
  m.spawn([a](exec::ThreadCtx& ctx) -> exec::SimTask {
    co_await ctx.load(a);
    throw std::runtime_error("kernel bug");
  });
  EXPECT_THROW(m.run(), std::runtime_error);
}

TEST(Machine, CycleBudgetGuardsAgainstRunaway) {
  exec::Machine m(sim::MachineConfig::tiny(1), 1);
  const sim::Addr a = m.arena().alloc_line_aligned(8);
  m.spawn([a](exec::ThreadCtx& ctx) -> exec::SimTask {
    for (;;) co_await ctx.load(a);  // never terminates
  });
  EXPECT_THROW(m.run(/*max_cycles=*/10000), util::CheckFailure);
}

TEST(Machine, ComputeRetiresInstructionsAndAdvancesClock) {
  exec::Machine m(sim::MachineConfig::tiny(1), 1);
  m.spawn([](exec::ThreadCtx& ctx) -> exec::SimTask {
    ctx.compute(123);
    co_return;
  });
  const auto r = m.run();
  EXPECT_EQ(r.instructions, 123u);
  EXPECT_EQ(r.total_cycles, 123u);
}

TEST(Machine, SubtaskCompositionRuns) {
  exec::Machine m(sim::MachineConfig::tiny(1), 1);
  const sim::Addr a = m.arena().alloc_line_aligned(8);
  int order = 0, at_helper = 0, after_helper = 0;

  struct Helper {
    static exec::SimTask touch_twice(exec::ThreadCtx& ctx, sim::Addr addr,
                                     int& order, int& at_helper) {
      co_await ctx.load(addr);
      at_helper = ++order;
      co_await ctx.load(addr);
    }
  };
  m.spawn([&, a](exec::ThreadCtx& ctx) -> exec::SimTask {
    co_await Helper::touch_twice(ctx, a, order, at_helper);
    after_helper = ++order;
  });
  const auto r = m.run();
  EXPECT_EQ(at_helper, 1);
  EXPECT_EQ(after_helper, 2);
  EXPECT_EQ(r.memory_ops, 2u);
}

TEST(Machine, SubtaskExceptionPropagatesThroughCoAwait) {
  exec::Machine m(sim::MachineConfig::tiny(1), 1);
  struct Helper {
    static exec::SimTask boom(exec::ThreadCtx& ctx, sim::Addr a) {
      co_await ctx.load(a);
      throw std::logic_error("deep failure");
    }
  };
  const sim::Addr a = m.arena().alloc_line_aligned(8);
  m.spawn([a](exec::ThreadCtx& ctx) -> exec::SimTask {
    co_await Helper::boom(ctx, a);
  });
  EXPECT_THROW(m.run(), std::logic_error);
}

TEST(Machine, PerThreadRngStreamsDiffer) {
  exec::Machine m(sim::MachineConfig::tiny(2), 1);
  std::uint64_t draws[2] = {0, 0};
  for (int t = 0; t < 2; ++t) {
    m.spawn([&, t](exec::ThreadCtx& ctx) -> exec::SimTask {
      draws[t] = ctx.rng().next();
      co_await ctx.yield();
    });
  }
  m.run();
  EXPECT_NE(draws[0], draws[1]);
}

// ---- sync primitives ------------------------------------------------------------

TEST(SpinLock, MutualExclusionUnderContention) {
  exec::Machine m(sim::MachineConfig::tiny(4), 3);
  auto lock = std::make_shared<exec::SpinLock>(m.arena());
  auto in_critical = std::make_shared<int>(0);
  auto max_seen = std::make_shared<int>(0);
  auto total = std::make_shared<int>(0);
  const sim::Addr scratch = m.arena().alloc_line_aligned(64);

  for (int t = 0; t < 4; ++t) {
    m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
      for (int i = 0; i < 25; ++i) {
        co_await lock->acquire(ctx);
        ++*in_critical;
        *max_seen = std::max(*max_seen, *in_critical);
        co_await ctx.load(scratch);  // yield inside the critical section
        co_await ctx.store(scratch);
        ++*total;
        --*in_critical;
        co_await lock->release(ctx);
      }
    });
  }
  m.run();
  EXPECT_EQ(*max_seen, 1) << "two threads were in the critical section";
  EXPECT_EQ(*total, 100);
  EXPECT_EQ(lock->acquisitions(), 100u);
}

TEST(SpinLock, ReleaseByNonOwnerRejected) {
  exec::Machine m(sim::MachineConfig::tiny(2), 1);
  auto lock = std::make_shared<exec::SpinLock>(m.arena());
  m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
    co_await lock->acquire(ctx);
    // Hold forever (thread 1 will illegally release).
    for (int i = 0; i < 50; ++i) co_await ctx.yield();
    co_await lock->release(ctx);
  });
  m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
    co_await ctx.yield();
    co_await lock->release(ctx);  // not the owner
  });
  EXPECT_THROW(m.run(), util::CheckFailure);
}

TEST(SpinBarrier, NoThreadCrossesEarly) {
  constexpr int kThreads = 4, kRounds = 5;
  exec::Machine m(sim::MachineConfig::tiny(kThreads), 7);
  auto barrier = std::make_shared<exec::SpinBarrier>(m.arena(), kThreads);
  auto counts = std::make_shared<std::array<int, kRounds>>();
  counts->fill(0);
  auto violations = std::make_shared<int>(0);

  for (int t = 0; t < kThreads; ++t) {
    m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
      for (int r = 0; r < kRounds; ++r) {
        ctx.compute(ctx.rng().next_below(200));  // desynchronize arrivals
        ++(*counts)[static_cast<std::size_t>(r)];
        co_await barrier->wait(ctx);
        // After the barrier, everyone must have arrived in round r.
        if ((*counts)[static_cast<std::size_t>(r)] != kThreads)
          ++*violations;
      }
    });
  }
  m.run();
  EXPECT_EQ(*violations, 0);
  EXPECT_EQ(barrier->generation(), static_cast<std::uint64_t>(kRounds));
}

TEST(AtomicU64, FetchAddIsAtomicAcrossThreads) {
  exec::Machine m(sim::MachineConfig::tiny(4), 9);
  auto counter = std::make_shared<exec::AtomicU64>(m.arena());
  auto seen = std::make_shared<std::vector<std::uint64_t>>();
  for (int t = 0; t < 4; ++t) {
    m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
      for (int i = 0; i < 100; ++i)
        seen->push_back(co_await counter->fetch_add(ctx, 1));
    });
  }
  m.run();
  EXPECT_EQ(counter->value(), 400u);
  // Every ticket must be unique (atomicity) and cover exactly [0, 400).
  std::sort(seen->begin(), seen->end());
  for (std::uint64_t i = 0; i < 400; ++i) ASSERT_EQ((*seen)[i], i);
}

TEST(AtomicU64, ContendedCounterGeneratesHitm) {
  exec::Machine m(sim::MachineConfig::tiny(4), 9);
  auto counter = std::make_shared<exec::AtomicU64>(m.arena());
  for (int t = 0; t < 4; ++t) {
    m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
      for (int i = 0; i < 64; ++i) co_await counter->fetch_add(ctx, 1);
    });
  }
  const auto r = m.run();
  EXPECT_GT(r.aggregate.get(sim::RawEvent::kSnoopResponseHitM), 50u);
}

}  // namespace
