// Tests for the core pipeline: labels, training-data collection (census,
// filtering, CSV round trip), the event-selection procedure (reduced), and
// the public detector API (training, classification, majority vote,
// persistence).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/detector.hpp"
#include "core/event_selection.hpp"
#include "core/training.hpp"
#include "util/check.hpp"

namespace {

using namespace fsml;
using trainers::Mode;

// A small-but-real training run shared by the tests in this file.
const core::TrainingData& reduced_data() {
  static const core::TrainingData data = [] {
    core::TrainingConfig config = core::TrainingConfig::reduced();
    return core::collect_training_data(config);
  }();
  return data;
}

TEST(Labels, RoundTrip) {
  for (const Mode m : {Mode::kGood, Mode::kBadFs, Mode::kBadMa})
    EXPECT_EQ(core::mode_of(core::label_of(m)), m);
  EXPECT_EQ(core::class_names().size(), 3u);
}

TEST(Training, CensusAccountsForEveryInstance) {
  const core::TrainingData& data = reduced_data();
  const std::size_t expected = data.census_a.final_total() +
                               data.census_b.final_total();
  EXPECT_EQ(data.instances.size(), expected);
  EXPECT_GT(data.census_a.initial_good, 0u);
  EXPECT_GT(data.census_a.initial_bad_fs, 0u);
  EXPECT_GT(data.census_b.initial_bad_ma, 0u);
  EXPECT_EQ(data.census_b.initial_bad_fs, 0u);  // no sequential bad-fs
}

TEST(Training, AllThreeClassesPresent) {
  const auto counts = reduced_data().to_dataset().class_counts();
  EXPECT_GT(counts[core::kGood], 0u);
  EXPECT_GT(counts[core::kBadFs], 0u);
  EXPECT_GT(counts[core::kBadMa], 0u);
}

TEST(Training, InstancesCarryProvenance) {
  for (const core::LabeledInstance& inst : reduced_data().instances) {
    EXPECT_FALSE(inst.program.empty());
    EXPECT_GT(inst.size, 0u);
    EXPECT_GE(inst.threads, 1u);
    EXPECT_GT(inst.seconds, 0.0);
  }
}

TEST(Training, PartBIsSequentialOnly) {
  for (const core::LabeledInstance& inst : reduced_data().instances) {
    if (!inst.part_a) {
      EXPECT_EQ(inst.threads, 1u);
    }
  }
}

TEST(Training, CsvRoundTripPreservesEverything) {
  const core::TrainingData& data = reduced_data();
  std::stringstream ss;
  data.save_csv(ss);
  const core::TrainingData back = core::TrainingData::load_csv(ss);
  ASSERT_EQ(back.instances.size(), data.instances.size());
  EXPECT_EQ(back.census_a.initial_good, data.census_a.initial_good);
  EXPECT_EQ(back.census_b.removed_good, data.census_b.removed_good);
  for (std::size_t i = 0; i < data.instances.size(); ++i) {
    const auto& a = data.instances[i];
    const auto& b = back.instances[i];
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.program, b.program);
    EXPECT_EQ(a.size, b.size);
    EXPECT_EQ(a.threads, b.threads);
    EXPECT_EQ(a.part_a, b.part_a);
    EXPECT_DOUBLE_EQ(a.hitm_remote_ratio, b.hitm_remote_ratio);
    EXPECT_DOUBLE_EQ(a.dram_remote_ratio, b.dram_remote_ratio);
    for (std::size_t f = 0; f < pmu::kNumFeatures; ++f)
      EXPECT_DOUBLE_EQ(a.features.at(f), b.features.at(f));
  }
}

TEST(TrainingBitIdentity, CoherenceDirectoryDoesNotChangeCacheBytes) {
  // The O(1) coherence directory is a pure lookup index: a full collection
  // grid slice simulated with it enabled must serialize to the exact same
  // training-cache bytes as the reference linear-scan implementation
  // (mirrors the jobs=1 vs jobs=4 determinism test from the par layer).
  core::TrainingConfig config = core::TrainingConfig::reduced();
  config.thread_counts = {3};
  config.jobs = 2;
  ASSERT_TRUE(config.machine.directory_enabled());
  const core::TrainingData with_dir = core::collect_training_data(config);

  core::TrainingConfig reference = config;
  reference.machine.use_coherence_directory = false;
  const core::TrainingData with_scan = core::collect_training_data(reference);

  std::stringstream a, b;
  with_dir.save_csv(a);
  with_scan.save_csv(b);
  ASSERT_EQ(with_dir.instances.size(), with_scan.instances.size());
  EXPECT_EQ(a.str(), b.str());  // byte-identical cache
}

TEST(Training, LoadCsvRejectsGarbage) {
  std::stringstream ss("not a training file");
  EXPECT_THROW(core::TrainingData::load_csv(ss), std::exception);
}

TEST(Training, LoadCsvRejectsRowBoundaryTruncation) {
  // A cache cut at a row boundary parses line-by-line; the census header
  // must still expose the missing rows. Drop the CRC footer too — a
  // truncated legacy cache (no footer) must be rejected by the census
  // alone.
  std::stringstream full;
  reduced_data().save_csv(full);
  std::string text = full.str();
  text.erase(text.rfind('\n', text.size() - 2) + 1);  // drop the footer
  text.erase(text.rfind('\n', text.size() - 2) + 1);  // drop the last row
  std::stringstream truncated(text);
  EXPECT_THROW(core::TrainingData::load_csv(truncated), std::exception);
}

TEST(Training, LoadCsvRejectsFlippedByte) {
  // In-row corruption keeps the row count intact; only the CRC32 footer
  // can catch it.
  std::stringstream full;
  reduced_data().save_csv(full);
  std::string text = full.str();
  const std::size_t pos = text.find(",A,");  // the part column
  ASSERT_NE(pos, std::string::npos);
  text[pos + 1] = 'B';  // flip one byte inside a row
  std::stringstream corrupt(text);
  EXPECT_THROW(core::TrainingData::load_csv(corrupt), std::exception);
}

TEST(Training, SaveCsvRoundTripsThroughFooter) {
  const core::TrainingData data = reduced_data();
  std::stringstream ss;
  data.save_csv(ss);
  const core::TrainingData back = core::TrainingData::load_csv(ss);
  ASSERT_EQ(back.instances.size(), data.instances.size());
  std::stringstream again;
  back.save_csv(again);
  EXPECT_EQ(ss.str(), again.str());  // byte-identical re-serialization
}

// ---- collect_or_load cache behaviour --------------------------------------

class TrainingCache : public ::testing::Test {
 protected:
  TrainingCache() : path_(::testing::TempDir() + "fsml_cache_test.csv") {
    std::remove(path_.c_str());
    config_ = core::TrainingConfig::reduced();
    config_.thread_counts = {3};  // smallest useful grid: re-collected twice
  }
  ~TrainingCache() override { std::remove(path_.c_str()); }

  void expect_same(const core::TrainingData& a, const core::TrainingData& b) {
    ASSERT_EQ(a.instances.size(), b.instances.size());
    EXPECT_EQ(a.census_a.initial_good, b.census_a.initial_good);
    EXPECT_EQ(a.census_b.initial_bad_ma, b.census_b.initial_bad_ma);
    for (std::size_t i = 0; i < a.instances.size(); ++i) {
      EXPECT_EQ(a.instances[i].program, b.instances[i].program);
      EXPECT_EQ(a.instances[i].label, b.instances[i].label);
      EXPECT_EQ(a.instances[i].threads, b.instances[i].threads);
      for (std::size_t f = 0; f < pmu::kNumFeatures; ++f)
        EXPECT_DOUBLE_EQ(a.instances[i].features.at(f),
                         b.instances[i].features.at(f));
    }
  }

  std::string file_contents() const {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  void write_file(const std::string& text) const {
    std::ofstream out(path_, std::ios::trunc);
    out << text;
  }

  std::string path_;
  core::TrainingConfig config_;
};

TEST_F(TrainingCache, SaveThenLoadYieldsIdenticalDataset) {
  const auto collected = core::collect_or_load(config_, path_);  // collects
  const auto loaded = core::collect_or_load(config_, path_);     // loads
  expect_same(collected, loaded);
}

TEST_F(TrainingCache, CorruptCacheTriggersCleanRecollection) {
  const auto collected = core::collect_or_load(config_, path_);
  const std::string good_file = file_contents();

  // Truncated mid-line: parsing fails partway through a row.
  write_file(good_file.substr(0, good_file.size() / 2));
  const auto after_truncation = core::collect_or_load(config_, path_);
  expect_same(collected, after_truncation);
  EXPECT_EQ(file_contents(), good_file);  // cache was rewritten, not left bad

  // Outright garbage.
  write_file("these are not the rows you are looking for\n");
  const auto after_garbage = core::collect_or_load(config_, path_);
  expect_same(collected, after_garbage);
  EXPECT_EQ(file_contents(), good_file);
}

TEST(Training, DeterministicForSeed) {
  core::TrainingConfig config = core::TrainingConfig::reduced();
  const auto a = core::collect_training_data(config);
  const auto b = core::collect_training_data(config);
  ASSERT_EQ(a.instances.size(), b.instances.size());
  for (std::size_t i = 0; i < a.instances.size(); ++i)
    EXPECT_DOUBLE_EQ(a.instances[i].seconds, b.instances[i].seconds);
}

TEST(Training, FilterCanBeDisabled) {
  core::TrainingConfig config = core::TrainingConfig::reduced();
  config.filter = false;
  const auto data = core::collect_training_data(config);
  EXPECT_EQ(data.census_a.removed_bad_ma, 0u);
  EXPECT_EQ(data.census_b.removed_good, 0u);
}

// ---- detector ----------------------------------------------------------------

TEST(Detector, TrainsAndSeparatesTrainingData) {
  core::FalseSharingDetector detector;
  detector.train(reduced_data());
  EXPECT_TRUE(detector.trained());
  std::size_t correct = 0;
  for (const core::LabeledInstance& inst : reduced_data().instances)
    if (core::label_of(detector.classify(inst.features)) == inst.label)
      ++correct;
  EXPECT_GT(static_cast<double>(correct) /
                static_cast<double>(reduced_data().instances.size()),
            0.97);
}

TEST(Detector, UntrainedThrows) {
  core::FalseSharingDetector detector;
  EXPECT_THROW(detector.classify(pmu::FeatureVector{}), util::CheckFailure);
}

TEST(Detector, MajorityVote) {
  using V = std::vector<Mode>;
  EXPECT_EQ(core::FalseSharingDetector::majority(
                V{Mode::kGood, Mode::kGood, Mode::kBadFs}),
            Mode::kGood);
  EXPECT_EQ(core::FalseSharingDetector::majority(
                V{Mode::kBadFs, Mode::kBadFs, Mode::kGood}),
            Mode::kBadFs);
  // Plurality (the paper's streamcluster: 15 fs / 11 good / 10 ma).
  V plurality;
  plurality.insert(plurality.end(), 15, Mode::kBadFs);
  plurality.insert(plurality.end(), 11, Mode::kGood);
  plurality.insert(plurality.end(), 10, Mode::kBadMa);
  EXPECT_EQ(core::FalseSharingDetector::majority(plurality), Mode::kBadFs);
  // Ties resolve to the worse verdict.
  EXPECT_EQ(core::FalseSharingDetector::majority(
                V{Mode::kGood, Mode::kBadFs}),
            Mode::kBadFs);
  EXPECT_EQ(core::FalseSharingDetector::majority(
                V{Mode::kGood, Mode::kBadMa}),
            Mode::kBadMa);
  EXPECT_THROW(core::FalseSharingDetector::majority(V{}),
               util::CheckFailure);
}

TEST(Detector, SaveLoadRoundTrip) {
  core::FalseSharingDetector detector;
  detector.train(reduced_data());
  std::stringstream ss;
  detector.save(ss);
  const core::FalseSharingDetector loaded =
      core::FalseSharingDetector::load(ss);
  for (std::size_t i = 0; i < std::min<std::size_t>(
                              reduced_data().instances.size(), 50);
       ++i) {
    const auto& inst = reduced_data().instances[i];
    EXPECT_EQ(loaded.classify(inst.features),
              detector.classify(inst.features));
  }
}

TEST(Detector, RootSplitsOnHitm) {
  core::FalseSharingDetector detector;
  detector.train(reduced_data());
  const auto* root = detector.model().root();
  ASSERT_NE(root, nullptr);
  ASSERT_FALSE(root->is_leaf);
  EXPECT_EQ(static_cast<pmu::WestmereEvent>(root->attribute),
            pmu::WestmereEvent::kSnoopResponseHitM);
}

// ---- event selection ------------------------------------------------------------

TEST(EventSelection, FindsHitmAsFsDiscriminator) {
  core::EventSelectionConfig config;
  config.thread_counts = {3, 6};  // reduced for test speed
  const auto result = core::select_events(config);
  const auto& fs = result.fs_discriminators;
  EXPECT_NE(std::find(fs.begin(), fs.end(),
                      sim::RawEvent::kSnoopResponseHitM),
            fs.end())
      << "HITM must discriminate good vs bad-fs";
  EXPECT_FALSE(result.ma_discriminators.empty());
  // Steps are disjoint.
  for (const sim::RawEvent e : result.ma_discriminators)
    EXPECT_EQ(std::find(fs.begin(), fs.end(), e), fs.end());
  // Selected = union, stats cover all candidates.
  EXPECT_EQ(result.selected.size(),
            fs.size() + result.ma_discriminators.size());
}

TEST(EventSelection, StricterRatioSelectsFewer) {
  core::EventSelectionConfig loose;
  loose.thread_counts = {3};
  core::EventSelectionConfig strict = loose;
  strict.ratio_threshold = 50.0;
  const auto a = core::select_events(loose);
  const auto b = core::select_events(strict);
  EXPECT_LE(b.selected.size(), a.selected.size());
}

}  // namespace
