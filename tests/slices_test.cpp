// Tests for time-sliced (phase-level) detection: slice accounting in the
// machine, verdict timelines, phase localization, and the report helpers.
#include <gtest/gtest.h>

#include <memory>

#include "core/slices.hpp"
#include "core/training.hpp"
#include "exec/machine.hpp"
#include "exec/sync.hpp"

namespace {

using namespace fsml;
using trainers::Mode;

const core::FalseSharingDetector& detector() {
  static const core::FalseSharingDetector d = [] {
    core::TrainingConfig config = core::TrainingConfig::reduced();
    core::FalseSharingDetector out;
    out.train(core::collect_training_data(config));
    return out;
  }();
  return d;
}

/// Three-phase kernel: streaming (good), packed-counter hammering (bad-fs),
/// streaming again. Phases are separated by barriers so they align in time
/// across threads.
exec::RunResult run_phased(sim::Cycles slice_cycles) {
  constexpr std::uint32_t kThreads = 6;
  constexpr std::uint64_t kN = 8192;
  exec::Machine m(sim::MachineConfig::westmere_dp(kThreads), 17);
  m.enable_slicing(slice_cycles);
  const sim::Addr data = m.arena().alloc_page_aligned(kN * 8 * kThreads);
  const sim::Addr packed = m.arena().alloc_line_aligned(8 * kThreads);
  auto barrier = std::make_shared<exec::SpinBarrier>(m.arena(), kThreads);

  for (std::uint32_t t = 0; t < kThreads; ++t) {
    const sim::Addr mine = data + kN * 8 * t;
    const sim::Addr slot = packed + 8 * t;
    m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
      for (std::uint64_t i = 0; i < kN; ++i) {  // phase 1: stream
        co_await ctx.load(mine + i * 8);
        ctx.compute(2);
      }
      co_await barrier->wait(ctx);
      for (std::uint64_t i = 0; i < kN / 2; ++i) {  // phase 2: false share
        co_await ctx.rmw(slot);
        ctx.compute(2);
      }
      co_await barrier->wait(ctx);
      for (std::uint64_t i = 0; i < kN; ++i) {  // phase 3: stream again
        co_await ctx.load(mine + i * 8);
        ctx.compute(2);
      }
    });
  }
  return m.run();
}

TEST(Slicing, DisabledByDefault) {
  exec::Machine m(sim::MachineConfig::tiny(1), 1);
  m.spawn([](exec::ThreadCtx& ctx) -> exec::SimTask {
    ctx.compute(100);
    co_return;
  });
  const auto r = m.run();
  EXPECT_TRUE(r.slices.empty());
  EXPECT_EQ(r.slice_cycles, 0u);
}

TEST(Slicing, SliceDeltasSumToAggregate) {
  const auto run = run_phased(20000);
  ASSERT_FALSE(run.slices.empty());
  sim::RawCounters total;
  for (const auto& s : run.slices) total += s;
  for (std::size_t e = 0; e < sim::kNumRawEvents; ++e) {
    const auto ev = static_cast<sim::RawEvent>(e);
    if (ev == sim::RawEvent::kCyclesTotal) continue;  // accounted at exit
    EXPECT_EQ(total.get(ev), run.aggregate.get(ev))
        << sim::raw_event_name(ev);
  }
}

TEST(Slicing, SliceCountMatchesRunLength) {
  const auto run = run_phased(20000);
  const auto expected = run.total_cycles / 20000 + 1;
  EXPECT_NEAR(static_cast<double>(run.slices.size()),
              static_cast<double>(expected), 2.0);
}

TEST(Slicing, AnalyzeRejectsUnslicedRun) {
  exec::Machine m(sim::MachineConfig::tiny(1), 1);
  m.spawn([](exec::ThreadCtx& ctx) -> exec::SimTask {
    ctx.compute(10);
    co_return;
  });
  const auto run = m.run();
  EXPECT_THROW(core::analyze_slices(detector(), run), std::exception);
}

TEST(Slicing, LocalizesFalseSharingPhase) {
  const auto run = run_phased(20000);
  const auto report = core::analyze_slices(detector(), run);
  const std::string timeline = report.timeline();

  // There must be a bad-fs region strictly inside the run, with good
  // slices before and after it.
  const auto ranges = report.bad_fs_ranges();
  ASSERT_FALSE(ranges.empty()) << timeline;
  const core::SliceRange main_range = ranges.front();
  EXPECT_GT(main_range.first, 0u) << timeline;
  EXPECT_LT(main_range.last, report.slices().size() - 1) << timeline;

  // The first and last classified slices are the streaming phases.
  EXPECT_EQ(report.slices().front().verdict, Mode::kGood) << timeline;
  std::size_t last_classified = report.slices().size() - 1;
  while (!report.slices()[last_classified].classified) --last_classified;
  EXPECT_EQ(report.slices()[last_classified].verdict, Mode::kGood)
      << timeline;

  EXPECT_GT(report.count(Mode::kBadFs), 0u);
  EXPECT_GT(report.count(Mode::kGood), report.count(Mode::kBadMa));
}

TEST(Slicing, HitmRateConcentratesInFsPhase) {
  const auto run = run_phased(20000);
  const auto report = core::analyze_slices(detector(), run);
  double max_fs = 0, max_good = 0;
  for (const auto& s : report.slices()) {
    if (!s.classified) continue;
    if (s.verdict == Mode::kBadFs) max_fs = std::max(max_fs, s.hitm_rate);
    if (s.verdict == Mode::kGood) max_good = std::max(max_good, s.hitm_rate);
  }
  EXPECT_GT(max_fs, 10 * (max_good + 1e-9));
}

TEST(Slicing, FractionAndOverall) {
  const auto run = run_phased(20000);
  const auto report = core::analyze_slices(detector(), run);
  const double total = report.fraction(Mode::kGood) +
                       report.fraction(Mode::kBadFs) +
                       report.fraction(Mode::kBadMa);
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Contention stretches the false-sharing phase in *time* (fewer
  // instructions per cycle), so bad-fs slices dominate the timeline even
  // though the phase is a minority of the code — the time-domain view makes
  // the cost visible, not just the presence.
  EXPECT_GT(report.fraction(Mode::kBadFs), report.fraction(Mode::kGood));
  EXPECT_EQ(report.overall(), Mode::kBadFs);
}

TEST(Slicing, CoarseSlicesDiluteTheSignal) {
  const auto fine = core::analyze_slices(detector(), run_phased(20000));
  const auto coarse = core::analyze_slices(detector(), run_phased(2000000));
  EXPECT_GE(fine.count(Mode::kBadFs), coarse.count(Mode::kBadFs));
  EXPECT_GT(fine.slices().size(), coarse.slices().size());
}

TEST(Slicing, TimelineCharactersWellFormed) {
  const auto report = core::analyze_slices(detector(), run_phased(20000));
  for (const char c : report.timeline())
    EXPECT_TRUE(c == 'g' || c == 'F' || c == 'm' || c == '.')
        << "unexpected char " << c;
}

}  // namespace
