// Tests for the PMU measurement-degradation model: the opt-in guarantee
// (a disabled model is bit-identical to clean reads), seeded determinism on
// any host thread count, and each fault mechanism (multiplex coverage loss,
// jitter, drops, saturation).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "par/parallel_for.hpp"
#include "par/thread_pool.hpp"
#include "pmu/noise.hpp"
#include "util/check.hpp"

namespace {

using namespace fsml;
using pmu::WestmereEvent;

pmu::CounterSnapshot sample_snapshot() {
  pmu::CounterSnapshot s;
  for (std::size_t i = 0; i < pmu::kNumWestmereEvents; ++i)
    s.set(static_cast<WestmereEvent>(i), 1000 + 317 * i);
  s.set(WestmereEvent::kInstructionsRetired, 1000000);
  return s;
}

std::vector<std::uint64_t> counts_of(const pmu::DegradedSnapshot& d) {
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < pmu::kNumWestmereEvents; ++i)
    out.push_back(d.counts.get(static_cast<WestmereEvent>(i)));
  return out;
}

TEST(NoiseModel, DisabledModelIsIdentity) {
  const pmu::CounterSnapshot clean = sample_snapshot();
  const pmu::MeasurementModel model{pmu::NoiseConfig{}};
  EXPECT_FALSE(model.config().enabled());
  EXPECT_EQ(model.num_groups(), 1u);
  for (const std::uint64_t id : {0u, 1u, 17u}) {
    const pmu::DegradedSnapshot d = model.measure(clean, id);
    EXPECT_EQ(d.num_missing(), 0u);
    ASSERT_TRUE(d.usable());
    for (std::size_t i = 0; i < pmu::kNumWestmereEvents; ++i) {
      const auto e = static_cast<WestmereEvent>(i);
      EXPECT_EQ(d.counts.get(e), clean.get(e));
      EXPECT_FALSE(d.saturated[i]);
    }
    // The feature path is bit-identical to the clean normalization.
    const pmu::FeatureVector noisy = d.to_features();
    const pmu::FeatureVector ref = pmu::FeatureVector::normalize(clean);
    for (std::size_t i = 0; i < pmu::kNumFeatures; ++i)
      EXPECT_EQ(noisy.at(i), ref.at(i));
  }
}

TEST(NoiseModel, SameSeedIsBitExact) {
  pmu::NoiseConfig config;
  config.counters = 4;
  config.jitter = 0.05;
  config.drop_probability = 0.1;
  config.seed = 7;
  const pmu::MeasurementModel a(config), b(config);
  const pmu::CounterSnapshot clean = sample_snapshot();
  for (std::uint64_t id = 0; id < 16; ++id) {
    const pmu::DegradedSnapshot da = a.measure(clean, id);
    const pmu::DegradedSnapshot db = b.measure(clean, id);
    EXPECT_EQ(counts_of(da), counts_of(db));
    EXPECT_EQ(da.present, db.present);
    EXPECT_EQ(da.saturated, db.saturated);
  }
}

TEST(NoiseModel, DistinctIdsDrawIndependentNoise) {
  pmu::NoiseConfig config;
  config.jitter = 0.05;
  config.seed = 7;
  const pmu::MeasurementModel model(config);
  const pmu::CounterSnapshot clean = sample_snapshot();
  EXPECT_NE(counts_of(model.measure(clean, 0)),
            counts_of(model.measure(clean, 1)));
}

TEST(NoiseModel, DeterministicAcrossJobs) {
  pmu::NoiseConfig config;
  config.counters = 4;
  config.jitter = 0.1;
  config.drop_probability = 0.2;
  config.seed = 99;
  const pmu::MeasurementModel model(config);
  const pmu::CounterSnapshot clean = sample_snapshot();

  std::vector<std::uint64_t> ids(32);
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  const auto measure_all = [&](par::ThreadPool& pool) {
    return par::parallel_transform(pool, ids, [&](std::uint64_t id) {
      return counts_of(model.measure(clean, id));
    });
  };
  par::ThreadPool serial(0), parallel(3);
  EXPECT_EQ(measure_all(serial), measure_all(parallel));
}

TEST(NoiseModel, MultiplexingWithoutSlicesIsExact) {
  // Coverage error is a time-variation artifact: with no per-slice data the
  // time_enabled/time_running compensation recovers the exact count.
  pmu::NoiseConfig config;
  config.counters = 4;
  const pmu::MeasurementModel model(config);
  EXPECT_EQ(model.num_groups(), 4u);
  const pmu::CounterSnapshot clean = sample_snapshot();
  const pmu::DegradedSnapshot d = model.measure(clean, 3);
  EXPECT_EQ(d.num_missing(), 0u);
  for (std::size_t i = 0; i < pmu::kNumWestmereEvents; ++i)
    EXPECT_EQ(d.counts.get(static_cast<WestmereEvent>(i)),
              clean.get(static_cast<WestmereEvent>(i)));
}

TEST(NoiseModel, UniformSlicesScaleExactly) {
  // Eight identical slices: whichever slices an event was resident in, the
  // residency scaling reconstructs the aggregate exactly.
  sim::RawCounters slice;
  for (std::size_t i = 0; i < sim::kNumRawEvents; ++i)
    slice.add(static_cast<sim::RawEvent>(i), 400);
  std::vector<sim::RawCounters> slices(8, slice);
  sim::RawCounters aggregate;
  for (const sim::RawCounters& s : slices) aggregate += s;

  pmu::NoiseConfig config;
  config.counters = 4;
  const pmu::MeasurementModel model(config);
  const pmu::DegradedSnapshot d = model.measure(aggregate, slices, 5);
  const pmu::CounterSnapshot clean = pmu::CounterSnapshot::from_raw(aggregate);
  EXPECT_EQ(d.num_missing(), 0u);
  for (std::size_t i = 0; i < pmu::kNumWestmereEvents; ++i)
    EXPECT_EQ(d.counts.get(static_cast<WestmereEvent>(i)),
              clean.get(static_cast<WestmereEvent>(i)));
}

TEST(NoiseModel, PhaseConcentrationCausesCoverageError) {
  // All activity in slice 0 of 8: an event is resident in 2 of 8 slices, so
  // events not scheduled during slice 0 read zero and the rest overshoot.
  sim::RawCounters burst;
  for (std::size_t i = 0; i < sim::kNumRawEvents; ++i)
    burst.add(static_cast<sim::RawEvent>(i), 4000);
  std::vector<sim::RawCounters> slices(8);
  slices[0] = burst;
  sim::RawCounters aggregate = burst;

  pmu::NoiseConfig config;
  config.counters = 4;
  const pmu::MeasurementModel model(config);
  const pmu::DegradedSnapshot d = model.measure(aggregate, slices, 2);
  const pmu::CounterSnapshot clean = pmu::CounterSnapshot::from_raw(aggregate);
  bool any_differs = false;
  for (std::size_t i = 0; i < pmu::kNumWestmereEvents; ++i)
    if (d.counts.get(static_cast<WestmereEvent>(i)) !=
        clean.get(static_cast<WestmereEvent>(i)))
      any_differs = true;
  EXPECT_TRUE(any_differs);
}

TEST(NoiseModel, JitterStaysWithinConfiguredBand) {
  pmu::NoiseConfig config;
  config.jitter = 0.05;
  config.seed = 11;
  const pmu::MeasurementModel model(config);
  const pmu::CounterSnapshot clean = sample_snapshot();
  for (std::uint64_t id = 0; id < 8; ++id) {
    const pmu::DegradedSnapshot d = model.measure(clean, id);
    for (std::size_t i = 0; i < pmu::kNumWestmereEvents; ++i) {
      const auto e = static_cast<WestmereEvent>(i);
      const double v = static_cast<double>(clean.get(e));
      EXPECT_GE(static_cast<double>(d.counts.get(e)), 0.95 * v - 1.0);
      EXPECT_LE(static_cast<double>(d.counts.get(e)), 1.05 * v + 1.0);
    }
  }
}

TEST(NoiseModel, DropsMarkEventsMissing) {
  pmu::NoiseConfig config;
  config.drop_probability = 1.0;
  const pmu::MeasurementModel model(config);
  const pmu::DegradedSnapshot d = model.measure(sample_snapshot(), 0);
  EXPECT_EQ(d.num_missing(), pmu::kNumWestmereEvents);
  EXPECT_FALSE(d.usable());  // the normalizer is gone
}

TEST(NoiseModel, PartialDropsYieldNaNFeatureSlots) {
  pmu::NoiseConfig config;
  config.drop_probability = 0.3;
  config.seed = 21;
  const pmu::MeasurementModel model(config);
  const pmu::CounterSnapshot clean = sample_snapshot();
  bool checked_one = false;
  for (std::uint64_t id = 0; id < 32; ++id) {
    const pmu::DegradedSnapshot d = model.measure(clean, id);
    if (!d.usable() || d.num_missing() == 0) continue;
    checked_one = true;
    const pmu::FeatureVector fv = d.to_features();
    for (std::size_t i = 0; i < pmu::kNumFeatures; ++i)
      EXPECT_EQ(std::isnan(fv.at(i)), !d.present[i]);
  }
  EXPECT_TRUE(checked_one);
}

TEST(NoiseModel, SaturationPegsAndFlagsCounters) {
  pmu::NoiseConfig config;
  config.saturation_limit = 2000;
  const pmu::MeasurementModel model(config);
  const pmu::CounterSnapshot clean = sample_snapshot();
  const pmu::DegradedSnapshot d = model.measure(clean, 0);
  for (std::size_t i = 0; i < pmu::kNumWestmereEvents; ++i) {
    const auto e = static_cast<WestmereEvent>(i);
    if (clean.get(e) >= 2000) {
      EXPECT_TRUE(d.saturated[i]);
      EXPECT_FALSE(d.present[i]);
      EXPECT_EQ(d.counts.get(e), 2000u);
    } else {
      EXPECT_FALSE(d.saturated[i]);
      EXPECT_TRUE(d.present[i]);
      EXPECT_EQ(d.counts.get(e), clean.get(e));
    }
  }
  EXPECT_FALSE(d.usable());  // instructions (1e6) saturated too
}

TEST(NoiseModel, RejectsOutOfRangeConfig) {
  const auto model_with = [](auto mutate) {
    pmu::NoiseConfig config;
    mutate(config);
    [[maybe_unused]] const pmu::MeasurementModel model(config);
  };
  EXPECT_THROW(model_with([](pmu::NoiseConfig& c) { c.jitter = 1.5; }),
               std::runtime_error);
  EXPECT_THROW(model_with([](pmu::NoiseConfig& c) { c.jitter = std::nan(""); }),
               std::runtime_error);
  EXPECT_THROW(
      model_with([](pmu::NoiseConfig& c) { c.drop_probability = -0.1; }),
      std::runtime_error);
  EXPECT_THROW(model_with([](pmu::NoiseConfig& c) { c.counters = 17; }),
               std::runtime_error);
  EXPECT_THROW(model_with([](pmu::NoiseConfig& c) { c.saturation_limit = 0; }),
               std::runtime_error);
}

TEST(NoiseModel, UnusableSnapshotRefusesFeatures) {
  pmu::NoiseConfig config;
  config.drop_probability = 1.0;
  const pmu::MeasurementModel model(config);
  const pmu::DegradedSnapshot d = model.measure(sample_snapshot(), 0);
  EXPECT_THROW((void)d.to_features(), util::CheckFailure);
}

}  // namespace
