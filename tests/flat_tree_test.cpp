// Tests for ml::FlatTree, the compiled SoA serving form of the C4.5 tree.
//
// The load-bearing property is the bit-identity contract: for every input —
// clean or with NaN (missing) slots — the flat kernel's predict(),
// distribution() and classify_many() must equal the pointer tree it was
// compiled from, bit for bit. The fuzz suites below exercise that across
// tree shapes (separable, three-class, unpruned, depth-capped, trained on
// missing values), the persistence round trip (save → load → recompile),
// parallel batch chunking, and the detector-level vote loop.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "core/detector.hpp"
#include "core/labels.hpp"
#include "ml/c45.hpp"
#include "ml/flat_tree.hpp"
#include "ml/io.hpp"
#include "par/parallel_for.hpp"
#include "par/thread_pool.hpp"
#include "pmu/counters.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace fsml;
using ml::Dataset;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Dataset separable(std::size_t n_per_class, util::Rng& rng) {
  Dataset d({"a", "b"}, {"neg", "pos"});
  for (std::size_t i = 0; i < n_per_class; ++i) {
    d.add({2.0 + rng.next_double(), rng.next_double() * 10}, 0);
    d.add({8.0 + rng.next_double(), rng.next_double() * 10}, 1);
  }
  return d;
}

Dataset three_class(std::size_t n_per_class, util::Rng& rng,
                    double missing_rate = 0.0) {
  Dataset d({"hitm", "repl", "noise1", "noise2"},
            {"good", "bad-fs", "bad-ma"});
  for (std::size_t i = 0; i < n_per_class; ++i) {
    const double n1 = rng.next_double(), n2 = rng.next_double();
    std::vector<std::vector<double>> xs = {
        {rng.next_double() * 1e-4, rng.next_double() * 0.05, n1, n2},
        {0.01 + rng.next_double() * 0.1, rng.next_double() * 0.2, n1, n2},
        {rng.next_double() * 1e-4, 0.5 + rng.next_double() * 0.5, n1, n2},
    };
    for (int y = 0; y < 3; ++y) {
      if (missing_rate > 0 && rng.next_bool(missing_rate))
        xs[static_cast<std::size_t>(y)]
          [rng.next_below(xs[static_cast<std::size_t>(y)].size())] = kNaN;
      d.add(xs[static_cast<std::size_t>(y)], y);
    }
  }
  return d;
}

/// A fuzz vector in the rough value range of the training data above, with
/// NaN slots injected at `nan_rate`.
std::vector<double> fuzz_vector(std::size_t arity, util::Rng& rng,
                                double nan_rate) {
  std::vector<double> x(arity);
  for (double& v : x) v = rng.next_double() * 12.0 - 1.0;
  for (double& v : x)
    if (rng.next_bool(nan_rate)) v = kNaN;
  return x;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// The contract itself: predict and distribution bit-identical across
/// `rounds` fuzz vectors (a quarter of them with NaN slots).
void expect_bit_identity(const ml::C45Tree& tree, const ml::FlatTree& flat,
                         std::uint64_t seed, std::size_t rounds = 400) {
  ASSERT_FALSE(flat.empty());
  EXPECT_EQ(flat.num_nodes(), tree.num_nodes());
  EXPECT_EQ(flat.num_leaves(), tree.num_leaves());
  EXPECT_EQ(flat.num_attributes(), tree.attribute_names().size());
  EXPECT_EQ(flat.num_classes(), tree.class_names().size());
  util::Rng rng(seed);
  for (std::size_t i = 0; i < rounds; ++i) {
    const std::vector<double> x =
        fuzz_vector(flat.num_attributes(), rng, i % 4 == 0 ? 0.3 : 0.0);
    ASSERT_EQ(flat.predict(x), tree.predict(x)) << "round " << i;
    ASSERT_TRUE(bits_equal(flat.distribution(x), tree.distribution(x)))
        << "round " << i;
  }
}

// ---- compile-time structure ------------------------------------------------

TEST(FlatTree, UntrainedTreeDoesNotCompile) {
  ml::C45Tree tree;
  EXPECT_EQ(tree.compile(), nullptr);
  EXPECT_THROW(ml::FlatTree::compile(tree), util::CheckFailure);
}

TEST(FlatTree, EmptyFlatTreeRejectsLookups) {
  const ml::FlatTree flat;
  EXPECT_TRUE(flat.empty());
  const std::vector<double> x(4, 0.0);
  EXPECT_THROW(flat.predict(x), util::CheckFailure);
  EXPECT_THROW(flat.distribution(x), util::CheckFailure);
  std::vector<int> out(1);
  EXPECT_THROW(flat.classify_many(x, 4, out), util::CheckFailure);
}

TEST(FlatTree, SingleLeafTreeCompilesToOneNode) {
  // A pure dataset trains to a lone leaf; the flat form is one node, no
  // descent, and still answers every lookup (including all-NaN vectors).
  Dataset d({"a"}, {"only", "never"});
  for (int i = 0; i < 8; ++i) d.add({static_cast<double>(i)}, 0);
  ml::C45Tree tree;
  tree.train(d);
  ASSERT_EQ(tree.num_nodes(), 1u);
  const ml::FlatTree flat = ml::FlatTree::compile(tree);
  EXPECT_EQ(flat.num_nodes(), 1u);
  EXPECT_EQ(flat.num_leaves(), 1u);
  EXPECT_GT(flat.pool_bytes(), 0u);
  EXPECT_EQ(flat.predict(std::vector<double>{3.0}), 0);
  EXPECT_EQ(flat.predict(std::vector<double>{kNaN}), 0);
  EXPECT_TRUE(bits_equal(flat.distribution(std::vector<double>{kNaN}),
                         tree.distribution(std::vector<double>{kNaN})));
}

TEST(FlatTree, ShortFeatureVectorIsRejected) {
  util::Rng rng(7);
  ml::C45Tree tree;
  tree.train(three_class(40, rng));
  const ml::FlatTree flat = ml::FlatTree::compile(tree);
  const std::vector<double> too_short(flat.num_attributes() - 1, 0.0);
  EXPECT_THROW(flat.predict(too_short), util::CheckFailure);
}

// ---- bit-identity fuzz -----------------------------------------------------

TEST(FlatTree, BitIdenticalOnSeparableTree) {
  util::Rng rng(11);
  ml::C45Tree tree;
  tree.train(separable(60, rng));
  expect_bit_identity(tree, ml::FlatTree::compile(tree), 101);
}

TEST(FlatTree, BitIdenticalOnThreeClassTree) {
  util::Rng rng(12);
  ml::C45Tree tree;
  tree.train(three_class(80, rng));
  expect_bit_identity(tree, ml::FlatTree::compile(tree), 102);
}

TEST(FlatTree, BitIdenticalOnUnprunedTree) {
  util::Rng rng(13);
  ml::C45Params params;
  params.prune = false;
  ml::C45Tree tree(params);
  tree.train(three_class(80, rng));
  expect_bit_identity(tree, ml::FlatTree::compile(tree), 103);
}

TEST(FlatTree, BitIdenticalOnDepthCappedTree) {
  util::Rng rng(14);
  ml::C45Params params;
  params.max_depth = 2;
  ml::C45Tree tree(params);
  tree.train(three_class(80, rng));
  expect_bit_identity(tree, ml::FlatTree::compile(tree), 104);
}

TEST(FlatTree, BitIdenticalOnTreeTrainedWithMissingValues) {
  // Fractional training weights make leaf counts non-integral — exactly
  // the case where pre-normalizing ratios would break bit-identity.
  util::Rng rng(15);
  ml::C45Tree tree;
  tree.train(three_class(80, rng, /*missing_rate=*/0.25));
  expect_bit_identity(tree, ml::FlatTree::compile(tree), 105);
}

TEST(FlatTree, DistributionIntoMatchesAllocatingOverload) {
  util::Rng rng(16);
  ml::C45Tree tree;
  tree.train(three_class(50, rng));
  const ml::FlatTree flat = ml::FlatTree::compile(tree);
  std::vector<double> buf(flat.num_classes(), 99.0);  // stale contents
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x =
        fuzz_vector(flat.num_attributes(), rng, 0.2);
    flat.distribution_into(x, buf);
    EXPECT_TRUE(bits_equal(buf, flat.distribution(x)));
  }
  std::vector<double> wrong(flat.num_classes() + 1);
  EXPECT_THROW(flat.distribution_into(std::vector<double>(4, 0.0), wrong),
               util::CheckFailure);
}

// ---- batch classify --------------------------------------------------------

TEST(FlatTree, ClassifyManyEqualsPredictLoop) {
  util::Rng rng(21);
  ml::C45Tree tree;
  tree.train(three_class(60, rng));
  const ml::FlatTree flat = ml::FlatTree::compile(tree);
  const std::size_t arity = flat.num_attributes();

  // Padded stride: rows carry trailing garbage the kernel must ignore.
  for (const std::size_t stride : {arity, arity + 3}) {
    constexpr std::size_t kRows = 257;
    std::vector<double> xs(kRows * stride, -1e9);
    for (std::size_t r = 0; r < kRows; ++r) {
      const std::vector<double> x = fuzz_vector(arity, rng, 0.2);
      std::copy(x.begin(), x.end(),
                xs.begin() + static_cast<std::ptrdiff_t>(r * stride));
    }
    std::vector<int> batch(kRows), loop(kRows);
    flat.classify_many(xs, stride, batch);
    tree.classify_many(xs, stride, loop);
    for (std::size_t r = 0; r < kRows; ++r) {
      EXPECT_EQ(batch[r], loop[r]) << "row " << r << " stride " << stride;
      EXPECT_EQ(batch[r],
                flat.predict(std::span<const double>(
                    xs.data() + r * stride, arity)))
          << "row " << r;
    }
  }

  std::vector<int> out(4);
  EXPECT_THROW(flat.classify_many(std::vector<double>(8, 0.0), 2, out),
               util::CheckFailure)
      << "stride below the training arity must be rejected";
}

TEST(FlatTree, ClassifyManyDeterministicAcrossParallelChunks) {
  // Rows are independent, so splitting one batch across pool workers must
  // be bit-identical to the serial call — for any worker count.
  util::Rng rng(22);
  ml::C45Tree tree;
  tree.train(three_class(60, rng));
  const ml::FlatTree flat = ml::FlatTree::compile(tree);
  const std::size_t arity = flat.num_attributes();

  constexpr std::size_t kRows = 503;
  std::vector<double> xs(kRows * arity);
  for (std::size_t r = 0; r < kRows; ++r) {
    const std::vector<double> x = fuzz_vector(arity, rng, 0.25);
    std::copy(x.begin(), x.end(),
              xs.begin() + static_cast<std::ptrdiff_t>(r * arity));
  }
  std::vector<int> serial(kRows);
  flat.classify_many(xs, arity, serial);

  for (const std::size_t workers : {0u, 1u, 4u}) {
    par::ThreadPool pool(workers);
    constexpr std::size_t kChunk = 64;
    const std::size_t chunks = (kRows + kChunk - 1) / kChunk;
    std::vector<int> parallel(kRows);
    par::parallel_for(pool, chunks, [&](std::size_t c) {
      const std::size_t begin = c * kChunk;
      const std::size_t rows = std::min(kChunk, kRows - begin);
      flat.classify_many(
          std::span<const double>(xs.data() + begin * arity, rows * arity),
          arity, std::span<int>(parallel.data() + begin, rows));
    });
    EXPECT_EQ(parallel, serial) << "workers=" << workers;
  }
}

// ---- persistence: load → recompile -----------------------------------------

TEST(FlatTree, LoadedModelRecompilesBitIdentically) {
  // Model files persist only the pointer tree; the flat form is recompiled
  // on load and must match both the loaded tree and the original flat form.
  util::Rng rng(31);
  ml::C45Tree tree;
  tree.train(three_class(70, rng, /*missing_rate=*/0.1));
  const ml::FlatTree original = ml::FlatTree::compile(tree);

  std::stringstream file;
  ml::save_model(tree, file);
  const ml::C45Tree loaded = ml::load_model(file);
  const ml::FlatTree recompiled = ml::FlatTree::compile(loaded);
  expect_bit_identity(loaded, recompiled, 301);

  util::Rng probe(32);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> x =
        fuzz_vector(original.num_attributes(), probe, 0.2);
    EXPECT_EQ(recompiled.predict(x), original.predict(x));
    EXPECT_TRUE(bits_equal(recompiled.distribution(x),
                           original.distribution(x)));
  }
}

TEST(FlatTree, CorruptContainerIsRejectedBeforeCompile) {
  // A torn/corrupt model file must fail at load — it can never reach the
  // compiler and produce a silently wrong flat kernel.
  util::Rng rng(33);
  ml::C45Tree tree;
  tree.train(separable(40, rng));
  std::ostringstream os;
  ml::save_model(tree, os);
  std::string bytes = os.str();
  bytes[bytes.size() / 2] ^= 0x20;  // flip one payload bit
  std::istringstream corrupt(bytes);
  EXPECT_THROW(ml::load_model(corrupt), std::runtime_error);

  std::istringstream truncated(os.str().substr(0, os.str().size() / 2));
  EXPECT_THROW(ml::load_model(truncated), std::runtime_error);
}

// ---- detector integration --------------------------------------------------

/// Synthetic 15-attribute dataset in the detector's schema: class decided
/// by two feature thresholds, like the paper's HITM/replacement signals.
Dataset detector_dataset(std::size_t n_per_class, util::Rng& rng) {
  Dataset d(pmu::FeatureVector::feature_names(), core::class_names());
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (int y = 0; y < 3; ++y) {
      std::vector<double> x(pmu::kNumFeatures);
      for (double& v : x) v = rng.next_double() * 0.01;
      if (y == 1) x[4] = 0.5 + rng.next_double();   // "bad-fs" signal
      if (y == 2) x[9] = 0.5 + rng.next_double();   // "bad-ma" signal
      d.add(x, y);
    }
  }
  return d;
}

TEST(FlatTreeDetector, RobustVoteIdenticalToPointerEngine) {
  util::Rng rng(41);
  core::FalseSharingDetector detector;
  detector.train(detector_dataset(60, rng));
  ASSERT_NE(detector.flat(), nullptr);

  // One measurement stream replayed through both engines: some repeats
  // unusable, some with NaN slots, the rest clean.
  const auto measure = [](std::size_t r) -> std::optional<pmu::FeatureVector> {
    if (r % 5 == 4) return std::nullopt;
    util::Rng mrng(1000 + r);
    pmu::FeatureVector f;
    for (std::size_t i = 0; i < pmu::kNumFeatures; ++i)
      f.set(i, mrng.next_double() * 0.01);
    if (r % 2 == 0) f.set(4, 0.5 + mrng.next_double());
    if (r % 3 == 0) f.set(r % pmu::kNumFeatures, kNaN);
    return f;
  };

  core::RobustConfig flat_cfg;
  flat_cfg.repeats = 21;
  core::RobustConfig pointer_cfg = flat_cfg;
  pointer_cfg.use_flat_tree = false;

  const core::RobustVerdict a = detector.classify_robust(measure, flat_cfg);
  const core::RobustVerdict b =
      detector.classify_robust(measure, pointer_cfg);
  EXPECT_EQ(a.known, b.known);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.votes, b.votes);
  EXPECT_EQ(a.classified, b.classified);
  EXPECT_EQ(a.confidence, b.confidence);
  EXPECT_GT(a.classified, 0u);
}

TEST(FlatTreeDetector, TrainLoadAndFileRoundTripRebuildFlatForm) {
  util::Rng rng(42);
  core::FalseSharingDetector detector;
  detector.train(detector_dataset(40, rng));
  ASSERT_NE(detector.flat(), nullptr);

  std::stringstream stream;
  detector.save(stream);
  const core::FalseSharingDetector loaded =
      core::FalseSharingDetector::load(stream);
  ASSERT_NE(loaded.flat(), nullptr) << "load() must recompile the flat form";

  util::Rng probe(43);
  for (int i = 0; i < 60; ++i) {
    pmu::FeatureVector f;
    for (std::size_t k = 0; k < pmu::kNumFeatures; ++k)
      f.set(k, probe.next_double());
    if (i % 4 == 0) f.set(i % pmu::kNumFeatures, kNaN);
    EXPECT_EQ(loaded.classify(f), detector.classify(f));
  }
}

}  // namespace
