// End-to-end smoke: a two-core kernel with deliberate false sharing must
// produce HITM snoop traffic; a padded variant must not.
#include <gtest/gtest.h>

#include "exec/machine.hpp"
#include "pmu/counters.hpp"
#include "sim/machine_config.hpp"

namespace {

using namespace fsml;

sim::RawCounters run_two_writers(bool padded) {
  exec::Machine m(sim::MachineConfig::westmere_dp(2), /*seed=*/7);
  const sim::Addr a0 = m.arena().alloc_line_aligned(8);
  const sim::Addr a1 = padded ? m.arena().alloc_line_aligned(8)
                              : m.arena().alloc(8, 8);  // same line as a0
  for (int t = 0; t < 2; ++t) {
    const sim::Addr mine = t == 0 ? a0 : a1;
    m.spawn([mine](exec::ThreadCtx& ctx) -> exec::SimTask {
      for (int i = 0; i < 2000; ++i) {
        co_await ctx.store(mine);
        ctx.compute(3);
      }
    });
  }
  const exec::RunResult r = m.run();
  EXPECT_GT(r.instructions, 0u);
  EXPECT_TRUE(m.memory().check_coherence_invariant());
  EXPECT_TRUE(m.memory().check_inclusion());
  return r.aggregate;
}

TEST(Smoke, FalseSharingProducesHitm) {
  const sim::RawCounters fs = run_two_writers(/*padded=*/false);
  const sim::RawCounters good = run_two_writers(/*padded=*/true);
  EXPECT_GT(fs.get(sim::RawEvent::kSnoopResponseHitM), 100u);
  EXPECT_LT(good.get(sim::RawEvent::kSnoopResponseHitM), 5u);
}

TEST(Smoke, FeatureVectorNormalizes) {
  const sim::RawCounters fs = run_two_writers(false);
  const auto snap = pmu::CounterSnapshot::from_raw(fs);
  const auto fv = pmu::FeatureVector::normalize(snap);
  const double hitm = fv.get(pmu::WestmereEvent::kSnoopResponseHitM);
  EXPECT_GT(hitm, 0.01);
  EXPECT_LT(hitm, 1.0);
}

}  // namespace
