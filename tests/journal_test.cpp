// Durability tests: the collection journal (format, torn-tail and
// corruption recovery) and the end-to-end crash/resume contract — a sweep
// killed mid-flight by an injected abort must resume to a cache that is
// byte-identical to an uninterrupted run. Journal/Resume suites run under
// TSan in CI alongside the supervisor tests.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/training.hpp"
#include "fault/fault.hpp"
#include "trainers/trainer.hpp"

namespace {

using namespace fsml;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

bool file_exists(const std::string& path) {
  return static_cast<bool>(std::ifstream(path));
}

class JournalFile : public ::testing::Test {
 protected:
  JournalFile() : path_(::testing::TempDir() + "fsml_journal_test.journal") {
    std::remove(path_.c_str());
  }
  ~JournalFile() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(JournalFile, RoundTripReplaysEveryRecord) {
  {
    core::Journal journal;
    EXPECT_TRUE(journal.open_and_replay(path_, 0xABCD).empty());
    journal.append(0, "row zero");
    journal.append(7, "row seven");
    journal.append(3, "row three");
  }
  core::Journal journal;
  std::string note;
  const auto records = journal.open_and_replay(path_, 0xABCD, &note);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.at(0), "row zero");
  EXPECT_EQ(records.at(3), "row three");
  EXPECT_EQ(records.at(7), "row seven");
  EXPECT_NE(note.find("replayed 3"), std::string::npos);
}

TEST_F(JournalFile, MismatchedConfigHashStartsOver) {
  {
    core::Journal journal;
    journal.open_and_replay(path_, 0xABCD);
    journal.append(0, "stale row");
  }
  core::Journal journal;
  std::string note;
  // A journal written under a different configuration must be ignored
  // wholesale, never half-applied.
  const auto records = journal.open_and_replay(path_, 0x1234, &note);
  EXPECT_TRUE(records.empty());
  EXPECT_NE(note.find("does not match"), std::string::npos);
}

TEST_F(JournalFile, TornTailIsDiscardedAndTruncated) {
  {
    core::Journal journal;
    journal.open_and_replay(path_, 0xABCD);
    journal.append(0, "intact");
    journal.append(1, "also intact");
  }
  // Simulate a crash mid-write: a final record without its newline.
  const std::string intact = read_file(path_);
  write_file(path_, intact + "J 2 00000000 torn rec");
  {
    core::Journal journal;
    const auto records = journal.open_and_replay(path_, 0xABCD);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records.at(1), "also intact");
  }
  // The torn bytes were ftruncated away, so the next append is clean.
  EXPECT_EQ(read_file(path_), intact);
}

TEST_F(JournalFile, CorruptRecordEndsTheValidPrefix) {
  {
    core::Journal journal;
    journal.open_and_replay(path_, 0xABCD);
    journal.append(0, "first");
    journal.append(1, "second");
    journal.append(2, "third");
  }
  // Flip one payload byte of record 1: its CRC no longer matches, so
  // replay keeps only the prefix before it (a torn write leaves no
  // trustworthy framing behind it).
  std::string text = read_file(path_);
  const std::size_t pos = text.find("second");
  ASSERT_NE(pos, std::string::npos);
  text[pos] = 'S';
  write_file(path_, text);
  core::Journal journal;
  std::string note;
  const auto records = journal.open_and_replay(path_, 0xABCD, &note);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records.at(0), "first");
  EXPECT_NE(note.find("invalid record"), std::string::npos);
}

TEST_F(JournalFile, AppendRejectsNewlines) {
  core::Journal journal;
  journal.open_and_replay(path_, 0xABCD);
  EXPECT_THROW(journal.append(0, "two\nlines"), std::exception);
}

// ---- end-to-end crash / resume ---------------------------------------------

core::TrainingConfig tiny_config() {
  core::TrainingConfig config = core::TrainingConfig::reduced();
  config.thread_counts = {3};
  return config;
}

std::string cell_key(const trainers::MiniProgram& program, std::uint64_t size,
                     std::uint32_t threads, trainers::Mode mode,
                     trainers::AccessPattern pattern, int rep) {
  return std::string(program.name()) + "/" + std::to_string(size) + "/" +
         std::to_string(threads) + "/" +
         std::string(trainers::to_string(mode)) + "/" +
         std::string(trainers::to_string(pattern)) + "/" + std::to_string(rep);
}

bool same_instance(const core::LabeledInstance& a,
                   const core::LabeledInstance& b) {
  if (a.program != b.program || a.size != b.size || a.threads != b.threads ||
      a.label != b.label || a.part_a != b.part_a || a.pattern != b.pattern ||
      a.seconds != b.seconds)
    return false;
  for (std::size_t f = 0; f < pmu::kNumFeatures; ++f)
    if (a.features.at(f) != b.features.at(f)) return false;
  return true;
}

class ResumeFiles : public ::testing::Test {
 protected:
  ResumeFiles()
      : cache_(::testing::TempDir() + "fsml_resume_cache.csv"),
        clean_(::testing::TempDir() + "fsml_resume_clean.csv") {
    cleanup();
  }
  ~ResumeFiles() override { cleanup(); }

  void cleanup() {
    for (const std::string& p :
         {cache_, cache_ + ".journal", clean_, clean_ + ".journal"})
      std::remove(p.c_str());
  }

  std::string cache_;
  std::string clean_;
};

TEST_F(ResumeFiles, FaultedSweepQuarantinesOnlyTheFaultedCells) {
  core::TrainingConfig config = tiny_config();
  config.filter = false;  // survivors map 1:1 onto clean rows

  const core::TrainingData clean = core::collect_training_data(config);

  const trainers::MiniProgram& victim = *trainers::multithreaded_set()[0];
  const std::uint64_t size = victim.default_sizes()[0];
  fault::FaultPlan plan;
  plan.seed = 2026;
  plan.throw_rate = 0.15;  // transient: first attempt fails, retry succeeds
  plan.hang_keys = {
      cell_key(victim, size, 3, trainers::Mode::kGood,
               trainers::AccessPattern::kLinear, 0),
      cell_key(victim, size, 3, trainers::Mode::kBadFs,
               trainers::AccessPattern::kLinear, 0),
  };
  fault::FaultInjector injector(plan);

  core::CollectOptions options;
  options.injector = &injector;
  options.supervision.max_attempts = 2;
  // Far above any legitimate reduced-config simulation, far below the
  // suite timeout: only the injected hangs ever reach it.
  options.supervision.deadline = std::chrono::milliseconds(2000);
  options.supervision.backoff_base = std::chrono::milliseconds(0);
  options.supervision.backoff_cap = std::chrono::milliseconds(0);
  core::CollectReport report;
  const core::TrainingData faulted =
      core::collect_training_data(config, nullptr, options, &report);

  // The two hang cells — and nothing else — were quarantined.
  ASSERT_EQ(report.quarantined.size(), 2u);
  EXPECT_EQ(report.quarantined[0].cell, plan.hang_keys[0]);
  EXPECT_EQ(report.quarantined[1].cell, plan.hang_keys[1]);
  EXPECT_TRUE(report.quarantined[0].failure.timed_out);
  EXPECT_GT(report.retried_attempts, 0u);  // the injected throws were retried

  // Every surviving row is bit-identical to the clean run's row, in order.
  ASSERT_EQ(clean.instances.size(), faulted.instances.size() + 2);
  std::size_t ci = 0;
  for (const core::LabeledInstance& inst : faulted.instances) {
    while (ci < clean.instances.size() &&
           !same_instance(clean.instances[ci], inst))
      ++ci;
    ASSERT_LT(ci, clean.instances.size()) << "row not found in clean run";
    ++ci;
  }
}

TEST_F(ResumeFiles, AbortedSweepResumesToBitIdenticalCache) {
  const core::TrainingConfig config = tiny_config();

  // Reference: an uninterrupted collect_or_load.
  core::collect_or_load(config, clean_);
  const std::string clean_bytes = read_file(clean_);
  ASSERT_FALSE(clean_bytes.empty());
  EXPECT_FALSE(file_exists(clean_ + ".journal"));  // removed after commit

  // "Crash" mid-sweep: an injected NonRetryable abort after 5 completions.
  fault::FaultPlan plan;
  plan.abort_after = 5;
  fault::FaultInjector injector(plan);
  core::CollectOptions options;
  options.injector = &injector;
  EXPECT_THROW(
      core::collect_or_load(config, cache_, nullptr, options, nullptr),
      fault::InjectedAbort);
  EXPECT_FALSE(file_exists(cache_));            // no torn cache artifact
  ASSERT_TRUE(file_exists(cache_ + ".journal"));  // progress survived

  // Resume: replay the journal, run only the missing cells.
  core::CollectOptions resume;
  resume.resume = true;
  core::CollectReport report;
  core::collect_or_load(config, cache_, nullptr, resume, &report);
  EXPECT_GT(report.replayed, 0u);
  EXPECT_EQ(report.replayed + report.executed, report.total_jobs);
  EXPECT_LT(report.executed, report.total_jobs);

  EXPECT_EQ(read_file(cache_), clean_bytes);      // byte-identical cache
  EXPECT_FALSE(file_exists(cache_ + ".journal"));  // consumed on commit
}

TEST_F(ResumeFiles, CorruptedCacheIsRejectedAndRecollected) {
  const core::TrainingConfig config = tiny_config();

  // A fault plan that flips one byte of the cache as it is written.
  fault::FaultPlan plan;
  plan.seed = 99;
  plan.corrupt_artifacts = true;
  fault::FaultInjector injector(plan);
  core::CollectOptions options;
  options.injector = &injector;
  core::collect_or_load(config, cache_, nullptr, options, nullptr);

  // The CRC32 footer (or the parse it guards) rejects the damaged file...
  std::ifstream in(cache_);
  EXPECT_THROW(core::TrainingData::load_csv(in), std::exception);

  // ...so the next collect_or_load re-collects and heals the cache.
  std::ostringstream log;
  const core::TrainingData healed = core::collect_or_load(config, cache_, &log);
  EXPECT_NE(log.str().find("re-collecting"), std::string::npos);
  std::ifstream healed_in(cache_);
  EXPECT_NO_THROW(core::TrainingData::load_csv(healed_in));
  EXPECT_FALSE(healed.instances.empty());
}

TEST_F(ResumeFiles, JournaledSweepMatchesPlainSweep) {
  const core::TrainingConfig config = tiny_config();
  const core::TrainingData plain = core::collect_training_data(config);

  core::CollectOptions options;
  options.journal_path = cache_ + ".journal";
  core::CollectReport report;
  const core::TrainingData journaled =
      core::collect_training_data(config, nullptr, options, &report);
  EXPECT_EQ(report.executed, report.total_jobs);
  ASSERT_EQ(plain.instances.size(), journaled.instances.size());
  for (std::size_t i = 0; i < plain.instances.size(); ++i)
    EXPECT_TRUE(same_instance(plain.instances[i], journaled.instances[i]))
        << i;

  // A full journal replays to the identical dataset without running a
  // single simulation.
  core::CollectOptions resume = options;
  resume.resume = true;
  core::CollectReport replay_report;
  const core::TrainingData replayed =
      core::collect_training_data(config, nullptr, resume, &replay_report);
  EXPECT_EQ(replay_report.executed, 0u);
  EXPECT_EQ(replay_report.replayed, replay_report.total_jobs);
  ASSERT_EQ(plain.instances.size(), replayed.instances.size());
  for (std::size_t i = 0; i < plain.instances.size(); ++i)
    EXPECT_TRUE(same_instance(plain.instances[i], replayed.instances[i]))
        << i;
}

}  // namespace
