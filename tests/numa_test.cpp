// NUMA multi-socket tests.
//
// Three suites pin down the 64-core-wall break:
//  * NumaValidation — the new topology limits: >64 cores accepted across
//    sockets, >64 cores per socket rejected, 0-socket/ragged/mismatched
//    layouts rejected with actionable messages.
//  * NumaBitIdentity — the regression gate the tentpole demands: an
//    explicit 1-socket SocketTopology is byte-identical to the pre-change
//    single-socket default (per-access latencies, RawCounters, and
//    reduced-collection training-cache bytes at jobs=1 and jobs=4).
//  * NumaCycleModel / NumaPlacement — the NUMA cost model's ordering
//    properties (remote HITM > local HITM, remote DRAM > local DRAM) and
//    the cross-socket false-sharing gap exceeding its intra-socket twin,
//    plus scatter/packed thread pinning through exec::Machine and the
//    trainer layer.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/training.hpp"
#include "exec/machine.hpp"
#include "sim/machine_config.hpp"
#include "sim/memory_system.hpp"
#include "trainers/trainer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace fsml;
using sim::AccessType;
using sim::RawEvent;

// A line whose page index is even: homed on socket 0 under the page
// round-robin policy (and on the only socket of a 1-socket machine).
constexpr sim::Addr kHome0Line = 0x20000;
// A line in the next (odd) page: homed on socket 1 on a 2-socket machine.
constexpr sim::Addr kHome1Line = 0x21000;

// ---- NumaValidation --------------------------------------------------------

std::string validation_error(const sim::MachineConfig& cfg) {
  try {
    cfg.validate();
  } catch (const util::CheckFailure& e) {
    return e.what();
  }
  return {};
}

TEST(NumaValidation, AcceptsMoreThan64CoresAcrossSockets) {
  // The old single-word sharer mask rejected num_cores > 64 outright; the
  // hierarchical mask accepts up to 4 sockets x 64 cores.
  const auto two = sim::MachineConfig::numa(2, 48);  // 96 cores
  EXPECT_EQ(two.num_cores, 96u);
  sim::MemorySystem mem(two);
  EXPECT_EQ(mem.num_sockets(), 2u);
  EXPECT_EQ(mem.socket_of(47), 0u);
  EXPECT_EQ(mem.socket_of(48), 1u);

  const auto four = sim::MachineConfig::numa(4, 64);  // 256 cores
  EXPECT_EQ(four.num_cores, 256u);
  EXPECT_EQ(validation_error(four), "");
}

TEST(NumaValidation, RejectsMoreThan64CoresPerSocket) {
  sim::MachineConfig cfg = sim::MachineConfig::tiny(2);
  cfg.num_cores = 130;
  cfg.topology = {2, 65};
  const std::string msg = validation_error(cfg);
  EXPECT_NE(msg.find("64"), std::string::npos) << msg;
  EXPECT_THROW(sim::MemorySystem mem(cfg), util::CheckFailure);
}

TEST(NumaValidation, RejectsSingleSocketBeyondTheSharerWord) {
  // The pre-NUMA limit survives per socket: a default (one-socket) config
  // still caps at 64 cores, and the message points at SocketTopology.
  sim::MachineConfig cfg = sim::MachineConfig::tiny(2);
  cfg.num_cores = 65;
  const std::string msg = validation_error(cfg);
  EXPECT_NE(msg.find("SocketTopology"), std::string::npos) << msg;
  EXPECT_THROW(sim::MemorySystem mem(cfg), util::CheckFailure);
}

TEST(NumaValidation, RejectsZeroSockets) {
  sim::MachineConfig cfg = sim::MachineConfig::tiny(4);
  cfg.topology = {0, 4};
  const std::string msg = validation_error(cfg);
  EXPECT_NE(msg.find("at least one socket"), std::string::npos) << msg;
}

TEST(NumaValidation, RejectsMoreThanFourSockets) {
  sim::MachineConfig cfg = sim::MachineConfig::tiny(10);
  cfg.topology = {5, 2};
  const std::string msg = validation_error(cfg);
  EXPECT_NE(msg.find("4 sockets"), std::string::npos) << msg;
}

TEST(NumaValidation, RejectsRaggedSockets) {
  // 9 cores on 2x6 would leave the second socket ragged (6 + 3).
  sim::MachineConfig cfg = sim::MachineConfig::tiny(4);
  cfg.num_cores = 9;
  cfg.topology = {2, 6};
  const std::string msg = validation_error(cfg);
  EXPECT_NE(msg.find("multiple of cores_per_socket"), std::string::npos)
      << msg;
}

TEST(NumaValidation, RejectsSocketCountMismatch) {
  // 6 cores fit on one 6-core socket; claiming 2 sockets is inconsistent.
  sim::MachineConfig cfg = sim::MachineConfig::tiny(6);
  cfg.topology = {2, 6};
  const std::string msg = validation_error(cfg);
  EXPECT_NE(msg.find("socket count"), std::string::npos) << msg;
}

// ---- NumaBitIdentity -------------------------------------------------------

TEST(NumaBitIdentity, ExplicitOneSocketTopologyMatchesDefaultPerAccess) {
  // A SocketTopology{1, cores} machine must be indistinguishable from the
  // pre-change default ({1, 0}): identical per-access latencies, service
  // levels, DTLB outcomes, and every per-core raw counter over a random
  // multi-core trace.
  const sim::MachineConfig base = sim::MachineConfig::tiny(4);
  sim::MachineConfig explicit_cfg = base;
  explicit_cfg.topology = {1, 4};
  sim::MemorySystem def(base);
  sim::MemorySystem one(explicit_cfg);
  util::Rng rng(123);
  for (int op = 0; op < 4000; ++op) {
    const auto core = static_cast<sim::CoreId>(rng.next_below(4));
    const sim::Addr addr = 0x8000 + rng.next_below(384) * 16;
    const auto type = static_cast<AccessType>(rng.next_below(3));
    const auto now = static_cast<sim::Cycles>(op) * 5;
    const auto a = def.access(core, addr, 8, type, now);
    const auto b = one.access(core, addr, 8, type, now);
    ASSERT_EQ(a.latency, b.latency) << "op " << op;
    ASSERT_EQ(a.level, b.level) << "op " << op;
    ASSERT_EQ(a.dtlb_miss, b.dtlb_miss) << "op " << op;
  }
  for (sim::CoreId c = 0; c < 4; ++c)
    for (std::size_t e = 0; e < sim::kNumRawEvents; ++e)
      ASSERT_EQ(def.counters(c).get(static_cast<RawEvent>(e)),
                one.counters(c).get(static_cast<RawEvent>(e)))
          << "core " << c << " event "
          << sim::raw_event_name(static_cast<RawEvent>(e));
}

TEST(NumaBitIdentity, SingleSocketHasNoRemoteTraffic) {
  // On one socket, every HITM and every DRAM read must be classified local.
  sim::MemorySystem mem(sim::MachineConfig::tiny(4));
  util::Rng rng(5);
  for (int op = 0; op < 2000; ++op)
    mem.access(static_cast<sim::CoreId>(rng.next_below(4)),
               0x8000 + rng.next_below(256) * 32, 8,
               static_cast<AccessType>(rng.next_below(3)),
               static_cast<sim::Cycles>(op) * 3);
  const sim::RawCounters total = mem.aggregate_counters();
  EXPECT_GT(total.get(RawEvent::kHitmTransfersIn), 0u);
  EXPECT_EQ(total.get(RawEvent::kHitmTransfersLocal),
            total.get(RawEvent::kHitmTransfersIn));
  EXPECT_EQ(total.get(RawEvent::kHitmTransfersRemote), 0u);
  EXPECT_EQ(total.get(RawEvent::kDramReadsLocal),
            total.get(RawEvent::kDramReads));
  EXPECT_EQ(total.get(RawEvent::kDramReadsRemote), 0u);
}

TEST(NumaBitIdentity, OneSocketTopologyDoesNotChangeCacheBytes) {
  // The reduced collection grid must serialize to the exact same
  // training-cache bytes whether the machine uses the pre-change default
  // topology (jobs=1 baseline) or an explicit 1-socket SocketTopology — at
  // jobs=1 and at jobs=4.
  core::TrainingConfig baseline = core::TrainingConfig::reduced();
  baseline.thread_counts = {3};
  baseline.jobs = 1;
  const core::TrainingData def = core::collect_training_data(baseline);
  std::stringstream def_csv;
  def.save_csv(def_csv);

  for (const unsigned jobs : {1u, 4u}) {
    core::TrainingConfig explicit_cfg = baseline;
    explicit_cfg.machine.topology = {1, 64};
    explicit_cfg.jobs = jobs;
    const core::TrainingData one = core::collect_training_data(explicit_cfg);
    std::stringstream one_csv;
    one.save_csv(one_csv);
    ASSERT_EQ(one.instances.size(), def.instances.size()) << "jobs " << jobs;
    EXPECT_EQ(one_csv.str(), def_csv.str()) << "jobs " << jobs;
  }
}

// ---- NumaCycleModel --------------------------------------------------------

TEST(NumaCycleModel, RemoteHitmStrictlyCostlierThanLocalHitm) {
  const auto cfg = sim::MachineConfig::numa(2, 2);  // cores 0,1 | 2,3
  sim::MemorySystem mem(cfg);

  mem.access(0, kHome0Line, 8, AccessType::kStore, 0);  // M on core 0
  const auto local = mem.access(1, kHome0Line, 8, AccessType::kLoad, 5000);

  mem.access(0, kHome0Line + 0x4000, 8, AccessType::kStore, 10000);
  const auto remote =
      mem.access(2, kHome0Line + 0x4000, 8, AccessType::kLoad, 15000);

  ASSERT_EQ(local.level, sim::ServiceLevel::kPeerHitM);
  ASSERT_EQ(remote.level, sim::ServiceLevel::kPeerHitM);
  EXPECT_GT(remote.latency, local.latency);
  // The gap is exactly the interconnect: QPI wire hop + home-agent lookup.
  EXPECT_GE(remote.latency, local.latency + cfg.cycles.cross_socket_hop());

  EXPECT_EQ(mem.counters(1).get(RawEvent::kHitmTransfersLocal), 1u);
  EXPECT_EQ(mem.counters(1).get(RawEvent::kHitmTransfersRemote), 0u);
  EXPECT_EQ(mem.counters(2).get(RawEvent::kHitmTransfersLocal), 0u);
  EXPECT_EQ(mem.counters(2).get(RawEvent::kHitmTransfersRemote), 1u);
}

TEST(NumaCycleModel, RemoteDramStrictlyCostlierThanLocalDram) {
  const auto cfg = sim::MachineConfig::numa(2, 2);
  // Fresh machines so the DRAM channel state cannot skew the comparison.
  sim::MemorySystem local_mem(cfg);
  sim::MemorySystem remote_mem(cfg);

  // Core 0 (socket 0) cold-reads a socket-0-homed and a socket-1-homed
  // line; both are pure DRAM fetches.
  const auto local = local_mem.access(0, kHome0Line, 8, AccessType::kLoad, 0);
  const auto remote =
      remote_mem.access(0, kHome1Line, 8, AccessType::kLoad, 0);

  ASSERT_EQ(local.level, sim::ServiceLevel::kDram);
  ASSERT_EQ(remote.level, sim::ServiceLevel::kDram);
  EXPECT_GT(remote.latency, local.latency);
  EXPECT_EQ(remote.latency, local.latency + cfg.cycles.cross_socket_hop() +
                                cfg.cycles.dram_remote_extra);

  EXPECT_EQ(local_mem.counters(0).get(RawEvent::kDramReadsLocal), 1u);
  EXPECT_EQ(local_mem.counters(0).get(RawEvent::kDramReadsRemote), 0u);
  EXPECT_EQ(remote_mem.counters(0).get(RawEvent::kDramReadsLocal), 0u);
  EXPECT_EQ(remote_mem.counters(0).get(RawEvent::kDramReadsRemote), 1u);
}

// Two threads false-sharing one line (bad) or writing padded lines (good),
// placed either on one socket (packed) or across sockets (scatter).
sim::Cycles run_fs_pair(exec::ThreadPlacement placement, bool false_share) {
  exec::Machine m(sim::MachineConfig::numa(2, 2), /*seed=*/7);
  m.set_thread_placement(placement);
  const sim::Addr base = m.arena().alloc_page_aligned(4096);
  for (std::uint32_t t = 0; t < 2; ++t) {
    const sim::Addr slot = false_share ? base + 8 * t : base + 256 * t;
    m.spawn([=](exec::ThreadCtx& ctx) -> exec::SimTask {
      for (int i = 0; i < 400; ++i) {
        co_await ctx.rmw(slot);
        ctx.compute(2);
      }
    });
  }
  return m.run().total_cycles;
}

TEST(NumaCycleModel, CrossSocketFalseSharingGapExceedsIntraSocket) {
  // The good/bad cycle gap of the false-sharing mini-program must widen
  // when the two threads sit on different sockets: every ping-pong HITM
  // then rides the interconnect.
  const sim::Cycles intra_good =
      run_fs_pair(exec::ThreadPlacement::kPacked, false);
  const sim::Cycles intra_bad =
      run_fs_pair(exec::ThreadPlacement::kPacked, true);
  const sim::Cycles cross_good =
      run_fs_pair(exec::ThreadPlacement::kScatter, false);
  const sim::Cycles cross_bad =
      run_fs_pair(exec::ThreadPlacement::kScatter, true);

  ASSERT_GT(intra_bad, intra_good);
  ASSERT_GT(cross_bad, cross_good);
  EXPECT_GT(cross_bad - cross_good, intra_bad - intra_good);
}

// ---- NumaPlacement ---------------------------------------------------------

TEST(NumaPlacement, ScatterRoundRobinsThreadsAcrossSockets) {
  exec::Machine m(sim::MachineConfig::numa(2, 2), 1);
  m.set_thread_placement(exec::ThreadPlacement::kScatter);
  for (int t = 0; t < 4; ++t)
    m.spawn([](exec::ThreadCtx& ctx) -> exec::SimTask {
      co_await ctx.load(0x8000);
    });
  EXPECT_EQ(m.core_of_thread(0), 0u);  // socket 0
  EXPECT_EQ(m.core_of_thread(1), 2u);  // socket 1
  EXPECT_EQ(m.core_of_thread(2), 1u);  // socket 0
  EXPECT_EQ(m.core_of_thread(3), 3u);  // socket 1
}

TEST(NumaPlacement, PackedIsTheDefaultAndFillsSocketZeroFirst) {
  exec::Machine m(sim::MachineConfig::numa(2, 2), 1);
  ASSERT_EQ(m.thread_placement(), exec::ThreadPlacement::kPacked);
  for (int t = 0; t < 3; ++t)
    m.spawn([](exec::ThreadCtx& ctx) -> exec::SimTask {
      co_await ctx.load(0x8000);
    });
  EXPECT_EQ(m.core_of_thread(0), 0u);
  EXPECT_EQ(m.core_of_thread(1), 1u);
  EXPECT_EQ(m.core_of_thread(2), 2u);
}

TEST(NumaPlacement, TrainerScatterKnobMovesFalseSharingAcrossSockets) {
  // The trainer-level pinning knob: two bad-fs threads on a 2x2 machine
  // ping-pong within socket 0 when packed, across QPI when scattered.
  const auto base = sim::MachineConfig::numa(2, 2);
  trainers::TrainerParams params;
  params.mode = trainers::Mode::kBadFs;
  params.threads = 2;
  params.size = 4096;

  params.placement = exec::ThreadPlacement::kPacked;
  const auto packed =
      trainers::run_trainer(trainers::find_program("pdot"), params, base);
  params.placement = exec::ThreadPlacement::kScatter;
  const auto scatter =
      trainers::run_trainer(trainers::find_program("pdot"), params, base);

  EXPECT_GT(packed.raw.get(RawEvent::kHitmTransfersLocal), 0u);
  EXPECT_EQ(packed.raw.get(RawEvent::kHitmTransfersRemote), 0u);
  EXPECT_GT(scatter.raw.get(RawEvent::kHitmTransfersRemote), 0u);
  // The scattered run is strictly slower: the same sharing pattern now
  // pays the interconnect on every transfer.
  EXPECT_GT(scatter.result.total_cycles, packed.result.total_cycles);
}

}  // namespace
