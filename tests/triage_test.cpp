// Tests for the second-stage alarm triage: fusion-weight validation, the
// priority computation pinned against hand-computed fixtures, demotion of
// low-credibility alarms to `unknown`, the anomaly/phase terms, and the
// two-stage sweep harness (including the acceptance bar: triage keeps zero
// false positives with >= 90% coverage under the moderate-noise preset and
// the zero-positive model flags >= 80% of the held-out bad runs).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "core/detector.hpp"
#include "core/robustness.hpp"
#include "core/slices.hpp"
#include "core/training.hpp"
#include "core/triage.hpp"
#include "ml/zero_positive.hpp"
#include "util/rng.hpp"

namespace {

using namespace fsml;
using trainers::Mode;

core::RobustVerdict verdict_of(Mode mode, double confidence,
                               bool known = true) {
  core::RobustVerdict v;
  v.known = known;
  v.mode = mode;
  v.confidence = confidence;
  v.repeats = 5;
  v.classified = known ? 5 : 0;
  return v;
}

/// Training collection shared by the harness tests (costs a few seconds,
/// collected once).
const core::TrainingData& training_data() {
  static const core::TrainingData data =
      core::collect_training_data(core::TrainingConfig::reduced());
  return data;
}

const core::FalseSharingDetector& trained_detector() {
  static const core::FalseSharingDetector detector = [] {
    core::FalseSharingDetector d;
    d.train(training_data());
    return d;
  }();
  return detector;
}

const core::TriageStage& fitted_stage() {
  static const core::TriageStage stage = [] {
    core::TriageStage s;
    s.set_anomaly_model(core::fit_zero_positive(training_data()));
    return s;
  }();
  return stage;
}

core::TriageConfig harness_config() {
  core::TriageConfig config;
  config.sweep.reduced = true;
  config.sweep.jobs = 2;
  return config;
}

TEST(TriageWeights, Validate) {
  const auto invalid = [](auto mutate) {
    core::TriageWeights weights;
    mutate(weights);
    weights.validate();
  };
  EXPECT_NO_THROW(core::TriageWeights{}.validate());
  EXPECT_THROW(invalid([](core::TriageWeights& w) { w.anomaly = -0.1; }),
               std::runtime_error);
  EXPECT_THROW(invalid([](core::TriageWeights& w) {
                 w.tree_confidence = w.anomaly = w.phase = w.metadata = 0.0;
               }),
               std::runtime_error);
  EXPECT_THROW(invalid([](core::TriageWeights& w) { w.demote_below = 1.5; }),
               std::runtime_error);
  EXPECT_THROW(invalid([](core::TriageWeights& w) {
                 w.phase = std::nan("");
               }),
               std::runtime_error);
  // The constructor validates too.
  core::TriageWeights bad;
  bad.metadata = -1.0;
  EXPECT_THROW(core::TriageStage{bad}, std::runtime_error);
}

TEST(Triage, PriorityMatchesHandComputedFixture) {
  // No anomaly model, no slices: both terms neutral at 0.5. Default
  // weights (0.45, 0.30, 0.15, 0.10) sum to 1, so the priority is
  //   0.45*0.8 + 0.30*0.5 + 0.15*0.5 + 0.10*(0.5*8/16 + 0.25*0.4 + 0.25*0.2)
  //   = 0.36 + 0.15 + 0.075 + 0.10*0.40 = 0.625
  const core::TriageStage stage;
  core::AlarmContext context;
  context.threads = 8;
  context.hitm_remote_ratio = 0.4;
  context.dram_remote_ratio = 0.2;
  const core::TriagedAlarm alarm =
      stage.triage(verdict_of(Mode::kBadFs, 0.8), {}, context);
  EXPECT_NEAR(alarm.term_confidence, 0.80, 1e-12);
  EXPECT_NEAR(alarm.term_anomaly, 0.50, 1e-12);
  EXPECT_NEAR(alarm.term_phase, 0.50, 1e-12);
  EXPECT_NEAR(alarm.term_metadata, 0.40, 1e-12);
  EXPECT_NEAR(alarm.priority, 0.625, 1e-12);
  EXPECT_FALSE(alarm.demoted);
  EXPECT_TRUE(alarm.verdict.known);
  EXPECT_TRUE(std::isnan(alarm.anomaly_score));
  EXPECT_NE(alarm.to_string().find("bad-fs"), std::string::npos);
  EXPECT_NE(alarm.to_string().find("0.62"), std::string::npos);
}

TEST(Triage, PriorityOrdersByTreeConfidence) {
  const core::TriageStage stage;
  core::AlarmContext context;
  context.threads = 4;
  std::vector<double> priorities;
  for (const double confidence : {0.95, 0.7, 0.45})
    priorities.push_back(
        stage.triage(verdict_of(Mode::kBadMa, confidence), {}, context)
            .priority);
  EXPECT_TRUE(std::is_sorted(priorities.rbegin(), priorities.rend()));
  EXPECT_GT(priorities.front(), priorities.back());
}

TEST(Triage, LowPriorityAlarmDemotesToUnknown) {
  // conf 0.2, single thread, no locality:
  //   0.45*0.2 + 0.30*0.5 + 0.15*0.5 + 0.10*(0.5/16) = 0.318125 < 0.35
  const core::TriageStage stage;
  core::AlarmContext context;
  context.threads = 1;
  const core::TriagedAlarm alarm =
      stage.triage(verdict_of(Mode::kBadFs, 0.2), {}, context);
  EXPECT_NEAR(alarm.priority, 0.318125, 1e-12);
  EXPECT_TRUE(alarm.demoted);
  EXPECT_FALSE(alarm.verdict.known);
  EXPECT_NE(alarm.to_string().find("demoted to unknown"), std::string::npos);

  // A higher cutoff demotes the 0.625 fixture alarm too.
  core::TriageWeights strict;
  strict.demote_below = 0.7;
  context.threads = 8;
  context.hitm_remote_ratio = 0.4;
  context.dram_remote_ratio = 0.2;
  const core::TriagedAlarm strict_alarm = core::TriageStage(strict).triage(
      verdict_of(Mode::kBadFs, 0.8), {}, context);
  EXPECT_TRUE(strict_alarm.demoted);
}

TEST(Triage, GoodAndUnknownVerdictsAreNeverDemoted) {
  const core::TriageStage stage;
  const core::AlarmContext context;  // threads=1: minimal priority

  const core::TriagedAlarm good =
      stage.triage(verdict_of(Mode::kGood, 0.2), {}, context);
  EXPECT_FALSE(good.demoted);
  EXPECT_TRUE(good.verdict.known);  // still a (low-priority) good verdict

  const core::TriagedAlarm unknown =
      stage.triage(verdict_of(Mode::kGood, 0.0, /*known=*/false), {}, context);
  EXPECT_FALSE(unknown.demoted);
  EXPECT_FALSE(unknown.verdict.known);
  EXPECT_NEAR(unknown.term_confidence, 0.0, 1e-12);
  EXPECT_NE(unknown.to_string().find("unknown"), std::string::npos);
}

TEST(Triage, AnomalyTermTracksReconstructionError) {
  // A zero-positive model over a synthetic 4D cluster: rows near the
  // cluster push the term below neutral, far-off rows push it above.
  std::vector<std::vector<double>> rows;
  util::SplitMix64 rng(99);
  for (std::size_t i = 0; i < 64; ++i) {
    const double t = static_cast<double>(i) / 64.0;
    const double wobble =
        static_cast<double>(rng.next() % 1000) / 1000.0 * 0.01;
    rows.push_back({t, 2.0 * t + wobble, 0.5 - t, 3.0 + wobble});
  }
  ml::ZeroPositiveModel model;
  model.fit(rows, {"a", "b", "c", "d"});

  core::TriageStage stage;
  stage.set_anomaly_model(std::move(model));
  ASSERT_TRUE(stage.has_anomaly_model());

  core::AlarmContext context;
  context.threads = 8;
  const core::RobustVerdict verdict = verdict_of(Mode::kBadFs, 0.8);

  const core::TriagedAlarm normal = stage.triage(verdict, rows.front(),
                                                 context);
  EXPECT_FALSE(std::isnan(normal.anomaly_score));
  EXPECT_FALSE(normal.anomalous);
  EXPECT_LT(normal.term_anomaly, 0.5);

  const std::vector<double> outlier = {5.0, -10.0, 4.0, -7.0};
  const core::TriagedAlarm weird = stage.triage(verdict, outlier, context);
  EXPECT_TRUE(weird.anomalous);
  EXPECT_GT(weird.term_anomaly, 0.5);
  EXPECT_GT(weird.priority, normal.priority);

  // Feature-width mismatch (or an empty span) falls back to neutral.
  const core::TriagedAlarm mismatch =
      stage.triage(verdict, std::vector<double>{1.0, 2.0}, context);
  EXPECT_TRUE(std::isnan(mismatch.anomaly_score));
  EXPECT_NEAR(mismatch.term_anomaly, 0.5, 1e-12);

  // Attaching an unfitted model is rejected up front (FSML_CHECK).
  core::TriageStage empty_stage;
  EXPECT_THROW(empty_stage.set_anomaly_model(ml::ZeroPositiveModel{}),
               std::logic_error);
  EXPECT_THROW(empty_stage.anomaly_model(), std::logic_error);
}

TEST(Triage, PhaseTermIsTheAgreeingSliceFraction) {
  // Timeline: 3 classified bad-fs slices, 1 classified good, 1 idle.
  std::vector<core::SliceVerdict> slices(5);
  for (std::size_t i = 0; i < slices.size(); ++i) {
    slices[i].index = i;
    slices[i].classified = i != 4;
    slices[i].verdict = i == 3 ? Mode::kGood : Mode::kBadFs;
    slices[i].instructions = i == 4 ? 0 : 10'000;
  }
  const core::SliceReport report(std::move(slices), 50'000);

  const core::TriageStage stage;
  core::AlarmContext context;
  context.threads = 8;
  context.slices = &report;

  const core::TriagedAlarm agreeing =
      stage.triage(verdict_of(Mode::kBadFs, 0.8), {}, context);
  EXPECT_NEAR(agreeing.term_phase, 0.75, 1e-12);

  const core::TriagedAlarm disagreeing =
      stage.triage(verdict_of(Mode::kBadMa, 0.8), {}, context);
  EXPECT_NEAR(disagreeing.term_phase, 0.0, 1e-12);
  EXPECT_LT(disagreeing.priority, agreeing.priority);
}

TEST(TriageHarness, ModerateNoisePresetMeetsAcceptanceBar) {
  core::TriageConfig config = harness_config();
  config.sweep.jitters = {0.05};
  config.sweep.counter_groups = {4};
  config.sweep.drops = {0.0};
  const core::TriageReport report =
      core::evaluate_triage(trained_detector(), fitted_stage(), config);
  ASSERT_EQ(report.cells.size(), 1u);
  const core::TriageCell& cell = report.cells[0];

  // Zero false positives after triage, with at least 90% of runs still
  // getting a verdict.
  EXPECT_EQ(cell.stage2.false_alarms, 0u);
  EXPECT_LE(cell.stage2.abstention(report.runs), 0.1);
  EXPECT_GE(cell.stage2.recall(report.bad_runs), 0.9);

  // The anomaly model alone flags >= 80% of the held-out bad runs while
  // staying quiet on the good ones.
  ASSERT_GT(report.bad_runs, 0u);
  EXPECT_GE(static_cast<double>(report.flagged_bad),
            0.8 * static_cast<double>(report.bad_runs));
  EXPECT_EQ(report.flagged_good, 0u);
}

TEST(TriageHarness, TriageOnlyEverRemovesAlarms) {
  core::TriageConfig config = harness_config();
  config.sweep.jitters = {0.0, 0.4};
  config.sweep.counter_groups = {2};
  config.sweep.drops = {0.0, 0.3};
  const core::TriageReport report =
      core::evaluate_triage(trained_detector(), fitted_stage(), config);
  ASSERT_EQ(report.cells.size(), 4u);
  for (const core::TriageCell& cell : report.cells) {
    EXPECT_LE(cell.stage2.alarms, cell.stage1.alarms);
    EXPECT_LE(cell.stage2.false_alarms, cell.stage1.false_alarms);
    EXPECT_EQ(cell.stage1.alarms - cell.stage2.alarms, cell.demoted);
    EXPECT_LE(cell.demoted_true, cell.demoted);
  }
}

TEST(TriageHarness, ReportIsDeterministicAcrossJobs) {
  core::TriageConfig config = harness_config();
  config.sweep.jitters = {0.0, 0.1};
  config.sweep.counter_groups = {4};
  config.sweep.drops = {0.0, 0.3};
  core::TriageConfig serial = config;
  serial.sweep.jobs = 1;
  std::ostringstream a, b;
  core::evaluate_triage(trained_detector(), fitted_stage(), config)
      .write_json(a);
  core::evaluate_triage(trained_detector(), fitted_stage(), serial)
      .write_json(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(TriageHarness, JsonArtifactHasSchemaAndBothStages) {
  core::TriageConfig config = harness_config();
  config.sweep.jitters = {0.0, 0.05};
  config.sweep.counter_groups = {4};
  config.sweep.drops = {0.0};
  const core::TriageReport report =
      core::evaluate_triage(trained_detector(), fitted_stage(), config);
  std::ostringstream os;
  report.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"fsml-triage-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"zero_positive\""), std::string::npos);
  EXPECT_NE(json.find("\"weights\""), std::string::npos);
  EXPECT_NE(json.find("\"stage1\""), std::string::npos);
  EXPECT_NE(json.find("\"stage2\""), std::string::npos);
  EXPECT_NE(json.find("\"demoted\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TriageHarness, RequiresAnAnomalyModel) {
  const core::TriageStage bare;
  EXPECT_THROW(core::evaluate_triage(trained_detector(), bare,
                                     harness_config()),
               std::logic_error);
}

}  // namespace
