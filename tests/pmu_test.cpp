// Tests for the PMU layer: the Table-2 event table, counter snapshots,
// feature normalization, and candidate-list construction.
#include <gtest/gtest.h>

#include <set>

#include "pmu/counters.hpp"
#include "pmu/events.hpp"
#include "util/check.hpp"

namespace {

using namespace fsml;
using pmu::WestmereEvent;

TEST(Events, TableHasSixteenEntriesInPaperOrder) {
  const auto table = pmu::westmere_event_table();
  ASSERT_EQ(table.size(), 16u);
  // Spot-check against the paper's Table 2.
  EXPECT_EQ(table[0].event_code, 0x26);   // L2 Data Requests.Demand.I
  EXPECT_EQ(table[0].umask, 0x01);
  EXPECT_EQ(table[10].event_code, 0xB8);  // Snoop_Response.HIT_M
  EXPECT_EQ(table[10].umask, 0x04);
  EXPECT_EQ(table[15].event_code, 0xC0);  // Instructions_Retired
  EXPECT_EQ(table[15].id, WestmereEvent::kInstructionsRetired);
}

TEST(Events, ByNumberMatchesPaperNumbering) {
  EXPECT_EQ(pmu::event_by_number(11).id, WestmereEvent::kSnoopResponseHitM);
  EXPECT_EQ(pmu::event_by_number(13).id, WestmereEvent::kDtlbMisses);
  EXPECT_EQ(pmu::event_by_number(16).id,
            WestmereEvent::kInstructionsRetired);
  EXPECT_THROW(pmu::event_by_number(0), util::CheckFailure);
  EXPECT_THROW(pmu::event_by_number(17), util::CheckFailure);
}

TEST(Events, EveryEntryMapsToDistinctRawCounter) {
  std::set<sim::RawEvent> raws;
  for (const auto& info : pmu::westmere_event_table())
    raws.insert(info.raw);
  EXPECT_EQ(raws.size(), 16u);
}

TEST(Events, CandidateListExcludesNormalizers) {
  const auto candidates = pmu::candidate_events();
  EXPECT_GT(candidates.size(), 40u);  // the "60-70 events" scale
  for (const sim::RawEvent e : candidates) {
    EXPECT_NE(e, sim::RawEvent::kInstructionsRetired);
    EXPECT_NE(e, sim::RawEvent::kCyclesTotal);
  }
}

TEST(Counters, SnapshotReadsFromRawBank) {
  sim::RawCounters raw;
  raw.add(sim::RawEvent::kInstructionsRetired, 1000);
  raw.add(sim::RawEvent::kSnoopResponseHitM, 42);
  raw.add(sim::RawEvent::kDtlbMiss, 7);
  const auto snap = pmu::CounterSnapshot::from_raw(raw);
  EXPECT_EQ(snap.instructions(), 1000u);
  EXPECT_EQ(snap.get(WestmereEvent::kSnoopResponseHitM), 42u);
  EXPECT_EQ(snap.get(WestmereEvent::kDtlbMisses), 7u);
  EXPECT_EQ(snap.get(WestmereEvent::kL2TransactionsFill), 0u);
}

TEST(Counters, NormalizationDividesByInstructions) {
  sim::RawCounters raw;
  raw.add(sim::RawEvent::kInstructionsRetired, 2000);
  raw.add(sim::RawEvent::kSnoopResponseHitM, 20);
  const auto fv =
      pmu::FeatureVector::normalize(pmu::CounterSnapshot::from_raw(raw));
  EXPECT_DOUBLE_EQ(fv.get(WestmereEvent::kSnoopResponseHitM), 0.01);
  EXPECT_DOUBLE_EQ(fv.get(WestmereEvent::kDtlbMisses), 0.0);
}

TEST(Counters, NormalizationRejectsZeroInstructions) {
  const pmu::CounterSnapshot empty;
  EXPECT_THROW(pmu::FeatureVector::normalize(empty), util::CheckFailure);
}

TEST(Counters, FeatureNamesStableAndNumbered) {
  const auto names = pmu::FeatureVector::feature_names();
  ASSERT_EQ(names.size(), pmu::kNumFeatures);
  EXPECT_EQ(names[10].rfind("ev11_", 0), 0u);  // paper's event #11
  EXPECT_NE(names[10].find("Snoop_Response.HIT_M"), std::string::npos);
  // Names are unique.
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(Counters, NormalizeRawSubset) {
  sim::RawCounters raw;
  raw.add(sim::RawEvent::kInstructionsRetired, 100);
  raw.add(sim::RawEvent::kL2Hit, 25);
  raw.add(sim::RawEvent::kL3Miss, 5);
  const auto values = pmu::normalize_raw(
      raw, {sim::RawEvent::kL2Hit, sim::RawEvent::kL3Miss});
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 0.25);
  EXPECT_DOUBLE_EQ(values[1], 0.05);
}

TEST(RawCounters, DeltaToComputesPerSliceCounts) {
  sim::RawCounters a, b;
  a.add(sim::RawEvent::kL2Hit, 10);
  b.add(sim::RawEvent::kL2Hit, 25);
  b.add(sim::RawEvent::kDtlbMiss, 3);
  const auto d = a.delta_to(b);
  EXPECT_EQ(d.get(sim::RawEvent::kL2Hit), 15u);
  EXPECT_EQ(d.get(sim::RawEvent::kDtlbMiss), 3u);
}

TEST(RawCounters, NamesAndDescriptionsExistForAll) {
  for (std::size_t i = 0; i < sim::kNumRawEvents; ++i) {
    const auto e = static_cast<sim::RawEvent>(i);
    EXPECT_FALSE(sim::raw_event_name(e).empty());
    EXPECT_FALSE(sim::raw_event_description(e).empty());
  }
  // Names are unique (they become CSV headers).
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < sim::kNumRawEvents; ++i)
    names.insert(sim::raw_event_name(static_cast<sim::RawEvent>(i)));
  EXPECT_EQ(names.size(), sim::kNumRawEvents);
}

}  // namespace
