// Tests for the zero-positive anomaly model: good-only fitting, seeded
// threshold calibration, NaN imputation, model-file round-trips (including
// corrupt-file rejection), and bit-identical fits regardless of how many
// host threads collected the training data.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "core/training.hpp"
#include "core/triage.hpp"
#include "ml/zero_positive.hpp"
#include "util/rng.hpp"

namespace {

using namespace fsml;

/// Synthetic "good" rows: a tight cluster around a 2D line embedded in 4D,
/// with mild deterministic wobble — low-rank structure PCA can learn.
std::vector<std::vector<double>> synthetic_good_rows(std::size_t n = 64) {
  std::vector<std::vector<double>> rows;
  util::SplitMix64 rng(99);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    const double wobble =
        static_cast<double>(rng.next() % 1000) / 1000.0 * 0.01;
    rows.push_back({t, 2.0 * t + wobble, 0.5 - t, 3.0 + wobble});
  }
  return rows;
}

std::vector<std::string> names4() { return {"a", "b", "c", "d"}; }

ml::ZeroPositiveModel fitted_model() {
  ml::ZeroPositiveModel model;
  model.fit(synthetic_good_rows(), names4());
  return model;
}

TEST(ZeroPositive, ParamsValidate) {
  const auto invalid = [](auto mutate) {
    ml::ZeroPositiveParams params;
    mutate(params);
    params.validate();
  };
  EXPECT_THROW(invalid([](ml::ZeroPositiveParams& p) {
                 p.variance_captured = 0.0;
               }),
               std::runtime_error);
  EXPECT_THROW(invalid([](ml::ZeroPositiveParams& p) { p.quantile = 1.5; }),
               std::runtime_error);
  EXPECT_THROW(invalid([](ml::ZeroPositiveParams& p) {
                 p.calibration_fraction = std::nan("");
               }),
               std::runtime_error);
  EXPECT_THROW(invalid([](ml::ZeroPositiveParams& p) {
                 p.threshold_margin = 0.0;
               }),
               std::runtime_error);
  EXPECT_THROW(invalid([](ml::ZeroPositiveParams& p) {
                 p.max_components = 0;
               }),
               std::runtime_error);
}

TEST(ZeroPositive, FitRejectsBadInput) {
  ml::ZeroPositiveModel model;
  EXPECT_THROW(model.fit({}, names4()), std::runtime_error);
  EXPECT_THROW(model.fit({{1.0, 2.0}}, names4()), std::runtime_error);
  EXPECT_THROW(
      model.fit({{1, 2, 3, 4}, {1, 2, 3, std::nan("")}, {1, 2, 3, 4},
                 {1, 2, 3, 4}},
                names4()),
      std::runtime_error);
  EXPECT_FALSE(model.fitted());
  // Scoring before fitting is a programming error (FSML_CHECK).
  EXPECT_THROW(model.score(std::vector<double>{1, 2, 3, 4}),
               std::logic_error);
}

TEST(ZeroPositive, GoodRowsScoreBelowThresholdOutliersAbove) {
  const ml::ZeroPositiveModel model = fitted_model();
  EXPECT_TRUE(model.fitted());
  EXPECT_GT(model.threshold(), 0.0);

  // Every training row reconstructs well.
  for (const auto& row : synthetic_good_rows())
    EXPECT_FALSE(model.anomalous(row)) << model.score(row);

  // A point far off the learned subspace reconstructs terribly.
  const std::vector<double> outlier = {5.0, -10.0, 4.0, -7.0};
  EXPECT_TRUE(model.anomalous(outlier));
  EXPECT_GT(model.score(outlier), model.threshold() * 2.0);
}

TEST(ZeroPositive, ThresholdCalibrationIsSeedDeterministic) {
  ml::ZeroPositiveParams params;
  params.seed = 7;
  ml::ZeroPositiveModel a(params), b(params);
  a.fit(synthetic_good_rows(), names4());
  b.fit(synthetic_good_rows(), names4());
  // Same rows + same seed -> the same held-out split, the same calibration
  // errors, the exact same threshold and payload bytes.
  EXPECT_EQ(a.threshold(), b.threshold());
  std::ostringstream sa, sb;
  a.save(sa);
  b.save(sb);
  EXPECT_EQ(sa.str(), sb.str());

  // A different seed draws a different held-out split; the model still
  // fits (threshold positive, components unchanged in count).
  params.seed = 8;
  ml::ZeroPositiveModel c(params);
  c.fit(synthetic_good_rows(), names4());
  EXPECT_GT(c.threshold(), 0.0);
  EXPECT_EQ(c.num_components(), a.num_components());
}

TEST(ZeroPositive, NanSlotsImputeTheGoodRunMean) {
  const ml::ZeroPositiveModel model = fitted_model();
  // All-NaN imputes the mean everywhere -> z-vector is all zero -> the
  // residual is exactly zero: missing data biases toward "normal".
  const std::vector<double> all_nan(4,
                                    std::numeric_limits<double>::quiet_NaN());
  EXPECT_DOUBLE_EQ(model.score(all_nan), 0.0);
  EXPECT_FALSE(model.anomalous(all_nan));
}

TEST(ZeroPositive, SaveLoadRoundTripScoresBitIdentically) {
  const ml::ZeroPositiveModel model = fitted_model();
  std::stringstream ss;
  model.save(ss);
  const ml::ZeroPositiveModel back = ml::ZeroPositiveModel::load(ss);
  EXPECT_EQ(back.num_components(), model.num_components());
  EXPECT_EQ(back.feature_names(), model.feature_names());
  EXPECT_EQ(back.threshold(), model.threshold());
  const std::vector<std::vector<double>> probes = {
      {0.5, 1.0, 0.0, 3.0}, {5.0, -10.0, 4.0, -7.0}, {0.0, 0.0, 0.0, 0.0}};
  for (const auto& probe : probes)
    EXPECT_EQ(back.score(probe), model.score(probe));
}

TEST(ZeroPositive, FileRoundTripAndCorruptFileRejected) {
  const std::string path = "zp_roundtrip_test.model";
  const ml::ZeroPositiveModel model = fitted_model();
  model.save_file(path);
  const ml::ZeroPositiveModel back = ml::ZeroPositiveModel::load_file(path);
  EXPECT_EQ(back.threshold(), model.threshold());

  // Flip one payload byte: the container CRC must catch it.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes[bytes.size() / 2] ^= 0x20;
  std::ofstream(path, std::ios::binary) << bytes;
  EXPECT_THROW(ml::ZeroPositiveModel::load_file(path), std::runtime_error);

  // Truncation is rejected too.
  std::ofstream(path, std::ios::binary)
      << bytes.substr(0, bytes.size() / 3);
  EXPECT_THROW(ml::ZeroPositiveModel::load_file(path), std::runtime_error);

  // Not-a-model-file is rejected with the magic check.
  std::ofstream(path, std::ios::binary) << "definitely not a model\n";
  EXPECT_THROW(ml::ZeroPositiveModel::load_file(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(ml::ZeroPositiveModel::load_file(path), std::runtime_error);
}

TEST(ZeroPositive, DescribeMentionsShape) {
  const ml::ZeroPositiveModel model = fitted_model();
  const std::string text = model.describe();
  EXPECT_NE(text.find("zero-positive"), std::string::npos);
  EXPECT_NE(text.find("4 features"), std::string::npos);
}

/// The good-only training bridge is bit-identical no matter how many host
/// threads collected the data: collection rows assemble in job-list order
/// and the fit's held-out split depends only on (rows, seed).
TEST(ZeroPositiveTraining, FitIsBitIdenticalAcrossCollectionJobs) {
  core::TrainingConfig serial = core::TrainingConfig::reduced();
  serial.jobs = 1;
  core::TrainingConfig parallel = serial;
  parallel.jobs = 4;

  const ml::ZeroPositiveModel a =
      core::fit_zero_positive(core::collect_training_data(serial));
  const ml::ZeroPositiveModel b =
      core::fit_zero_positive(core::collect_training_data(parallel));
  std::ostringstream sa, sb;
  a.save(sa);
  b.save(sb);
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_EQ(a.num_features(), core::extended_feature_names().size());
}

}  // namespace
