// Tests for the mitigation advisor: allocation attribution, false- vs
// true-sharing remedies, noise filtering, padding-cost arithmetic, and the
// end-to-end detect -> advise -> apply-fix -> verify loop.
#include <gtest/gtest.h>

#include "baseline/shadow_detector.hpp"
#include "core/advisor.hpp"
#include "exec/machine.hpp"
#include "sim/machine_config.hpp"

namespace {

using namespace fsml;
using sim::AccessType;

sim::AccessRecord rec(sim::CoreId core, sim::Addr addr, AccessType type) {
  return sim::AccessRecord{core, addr, 8, type, sim::ServiceLevel::kL1, 0};
}

TEST(Arena, NamedAllocationsAreFindable) {
  exec::VirtualArena arena;
  const sim::Addr a = arena.alloc_named("stats", 256, 8);
  const sim::Addr b = arena.alloc_line_aligned_named("queue", 64);
  const auto found_a = arena.find_allocation(a + 100);
  ASSERT_TRUE(found_a.has_value());
  EXPECT_EQ(found_a->name, "stats");
  const auto found_b = arena.find_allocation(b);
  ASSERT_TRUE(found_b.has_value());
  EXPECT_EQ(found_b->name, "queue");
  EXPECT_FALSE(arena.find_allocation(b + 4096).has_value());
  EXPECT_EQ(arena.allocations().size(), 2u);
  arena.reset();
  EXPECT_TRUE(arena.allocations().empty());
}

TEST(Advisor, RecommendsPaddingForFalseSharing) {
  exec::VirtualArena arena;
  const sim::Addr stats = arena.alloc_line_aligned_named("worker_stats", 64);
  baseline::ShadowDetector shadow(4);
  for (int i = 0; i < 50; ++i)
    for (sim::CoreId t = 0; t < 4; ++t)
      shadow.on_access(rec(t, stats + 8 * t, AccessType::kRmw));

  const auto report = core::advise(shadow.report(), arena);
  ASSERT_FALSE(report.recommendations.empty());
  const auto& r = report.recommendations.front();
  EXPECT_EQ(r.remedy, core::Remedy::kPadToLine);
  EXPECT_EQ(r.allocation, "worker_stats");
  EXPECT_EQ(r.writers, 4u);
  EXPECT_EQ(r.padding_cost_bytes, 3u * 64u);
  EXPECT_NE(r.text.find("worker_stats"), std::string::npos);
  EXPECT_NE(r.text.find("alignas(64)"), std::string::npos);
  EXPECT_TRUE(report.has_false_sharing);
}

TEST(Advisor, TrueSharingGetsAlgorithmicRemedy) {
  exec::VirtualArena arena;
  const sim::Addr counter = arena.alloc_line_aligned_named("global_count", 8);
  baseline::ShadowDetector shadow(4);
  for (int i = 0; i < 50; ++i)
    for (sim::CoreId t = 0; t < 4; ++t)
      shadow.on_access(rec(t, counter, AccessType::kRmw));  // same bytes

  const auto report = core::advise(shadow.report(), arena);
  ASSERT_FALSE(report.recommendations.empty());
  EXPECT_EQ(report.recommendations.front().remedy,
            core::Remedy::kReduceSharing);
  EXPECT_FALSE(report.has_false_sharing);  // true sharing != false sharing
}

TEST(Advisor, NoiseLinesFiltered) {
  exec::VirtualArena arena;
  const sim::Addr a = arena.alloc_line_aligned_named("rare", 64);
  baseline::ShadowDetector shadow(2);
  shadow.on_access(rec(0, a, AccessType::kStore));
  shadow.on_access(rec(1, a + 8, AccessType::kStore));
  shadow.on_access(rec(0, a, AccessType::kStore));
  const auto report = core::advise(shadow.report(), arena, 64,
                                   /*min_events=*/16);
  EXPECT_TRUE(report.recommendations.empty());
}

TEST(Advisor, UnnamedAllocationsStillReported) {
  exec::VirtualArena arena;
  const sim::Addr anon = arena.alloc_line_aligned(64);  // not named
  baseline::ShadowDetector shadow(2);
  for (int i = 0; i < 50; ++i) {
    shadow.on_access(rec(0, anon, AccessType::kStore));
    shadow.on_access(rec(1, anon + 32, AccessType::kStore));
  }
  const auto report = core::advise(shadow.report(), arena);
  ASSERT_FALSE(report.recommendations.empty());
  EXPECT_EQ(report.recommendations.front().allocation, "<unnamed>");
}

TEST(Advisor, EndToEndFixVerification) {
  // The full loop: detect false sharing, apply the recommended padding,
  // verify the fix removes it.
  const auto run_with_stride = [](std::uint32_t stride) {
    exec::Machine m(sim::MachineConfig::westmere_dp(4), 3);
    baseline::ShadowDetector shadow(4);
    m.memory().add_observer(&shadow);
    const sim::Addr slots = m.arena().alloc_line_aligned_named(
        "accumulators", std::uint64_t{stride} * 4);
    for (std::uint32_t t = 0; t < 4; ++t) {
      const sim::Addr mine = slots + std::uint64_t{stride} * t;
      m.spawn([mine](exec::ThreadCtx& ctx) -> exec::SimTask {
        for (int i = 0; i < 2000; ++i) {
          co_await ctx.rmw(mine);
          ctx.compute(2);
        }
      });
    }
    m.run();
    return core::advise(shadow.report(), m.arena());
  };

  const auto buggy = run_with_stride(8);
  ASSERT_TRUE(buggy.has_false_sharing);
  ASSERT_FALSE(buggy.recommendations.empty());
  EXPECT_EQ(buggy.recommendations.front().remedy, core::Remedy::kPadToLine);
  EXPECT_EQ(buggy.recommendations.front().allocation, "accumulators");

  const auto fixed = run_with_stride(64);  // the recommendation applied
  EXPECT_FALSE(fixed.has_false_sharing);
  for (const auto& r : fixed.recommendations)
    EXPECT_NE(r.remedy, core::Remedy::kPadToLine);
}

TEST(Advisor, SocketAffinityLeadsWhenRemoteHitmsDominate) {
  exec::VirtualArena arena;
  const sim::Addr stats = arena.alloc_line_aligned_named("worker_stats", 64);
  baseline::ShadowDetector shadow(4);
  for (int i = 0; i < 50; ++i)
    for (sim::CoreId t = 0; t < 4; ++t)
      shadow.on_access(rec(t, stats + 8 * t, AccessType::kRmw));

  core::AdvisorContext context;
  context.hitm_remote_ratio = 0.8;
  const auto report = core::advise(shadow.report(), arena, 64, 8, context);
  ASSERT_GE(report.recommendations.size(), 2u);
  const auto& bind = report.recommendations.front();
  EXPECT_EQ(bind.remedy, core::Remedy::kBindToSocket);
  EXPECT_EQ(bind.allocation, "<thread placement>");
  EXPECT_NE(bind.text.find("80%"), std::string::npos);
  EXPECT_NE(bind.text.find("socket"), std::string::npos);
  // The layout fix is still listed after the placement advice.
  EXPECT_EQ(report.recommendations[1].remedy, core::Remedy::kPadToLine);

  // Mostly-local transfers: no placement advice.
  context.hitm_remote_ratio = 0.2;
  const auto local = core::advise(shadow.report(), arena, 64, 8, context);
  for (const auto& r : local.recommendations)
    EXPECT_NE(r.remedy, core::Remedy::kBindToSocket);
}

TEST(Advisor, LowPriorityAlarmIsCalledOutInRendering) {
  exec::VirtualArena arena;
  const sim::Addr stats = arena.alloc_line_aligned_named("worker_stats", 64);
  baseline::ShadowDetector shadow(4);
  for (int i = 0; i < 50; ++i)
    for (sim::CoreId t = 0; t < 4; ++t)
      shadow.on_access(rec(t, stats + 8 * t, AccessType::kRmw));

  core::AdvisorContext context;
  context.alarm_priority = 0.3;
  const auto report = core::advise(shadow.report(), arena, 64, 8, context);
  EXPECT_DOUBLE_EQ(report.alarm_priority, 0.3);
  EXPECT_NE(report.to_string().find("low-priority alarm"), std::string::npos);

  context.alarm_priority = 0.9;
  const auto confident = core::advise(shadow.report(), arena, 64, 8, context);
  EXPECT_EQ(confident.to_string().find("low-priority alarm"),
            std::string::npos);
}

TEST(Advisor, ReportRendering) {
  exec::VirtualArena arena;
  baseline::SharingReport empty;
  EXPECT_NE(core::advise(empty, arena).to_string().find("no contended"),
            std::string::npos);
}

}  // namespace
