// Unit and property tests for the ML library: information-theory math,
// C4.5 construction/pruning/serialization, companion classifiers, the
// evaluation framework and dataset IO.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

#include "ml/c45.hpp"
#include "ml/eval.hpp"
#include "ml/forest.hpp"
#include "ml/io.hpp"
#include "ml/knn.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/simple.hpp"
#include "util/rng.hpp"

namespace {

using namespace fsml;
using ml::Dataset;

// ---- helpers ---------------------------------------------------------------

Dataset two_class_schema() {
  return Dataset({"a", "b"}, {"neg", "pos"});
}

/// Linearly separable blobs: class = (a > 5).
Dataset separable(std::size_t n_per_class, util::Rng& rng) {
  Dataset d = two_class_schema();
  for (std::size_t i = 0; i < n_per_class; ++i) {
    d.add({2.0 + rng.next_double(), rng.next_double() * 10}, 0);
    d.add({8.0 + rng.next_double(), rng.next_double() * 10}, 1);
  }
  return d;
}

/// Three-class data mimicking the paper's feature shape: class decided by
/// two thresholded attributes plus noise dimensions.
Dataset three_class(std::size_t n_per_class, util::Rng& rng,
                    double label_noise = 0.0) {
  Dataset d({"hitm", "repl", "noise1", "noise2"},
            {"good", "bad-fs", "bad-ma"});
  for (std::size_t i = 0; i < n_per_class; ++i) {
    const double n1 = rng.next_double(), n2 = rng.next_double();
    int y0 = 0;
    d.add({rng.next_double() * 1e-4, rng.next_double() * 0.05, n1, n2}, y0);
    int y1 = 1;
    d.add({0.01 + rng.next_double() * 0.1, rng.next_double() * 0.2, n1, n2},
          y1);
    int y2 = 2;
    d.add({rng.next_double() * 1e-4, 0.5 + rng.next_double() * 0.5, n1, n2},
          y2);
    if (label_noise > 0 && rng.next_bool(label_noise)) {
      // mislabel one instance per draw
    }
  }
  return d;
}

// ---- entropy / pruning math ------------------------------------------------

TEST(Entropy, UniformIsLog2K) {
  const double counts[] = {10, 10, 10, 10};
  EXPECT_NEAR(ml::entropy(counts), 2.0, 1e-12);
}

TEST(Entropy, PureIsZero) {
  const double counts[] = {42, 0, 0};
  EXPECT_DOUBLE_EQ(ml::entropy(counts), 0.0);
}

TEST(Entropy, BinaryHalfIsOne) {
  const double counts[] = {7, 7};
  EXPECT_NEAR(ml::entropy(counts), 1.0, 1e-12);
}

TEST(Entropy, EmptyIsZero) {
  const double counts[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(ml::entropy(counts), 0.0);
}

TEST(AddedErrors, ZeroErrorsStillPessimistic) {
  // U_CF(0, n) > 0: a pure leaf still gets charged some future error.
  const double add = ml::added_errors(10, 0, 0.25);
  EXPECT_GT(add, 0.0);
  EXPECT_LT(add, 10.0);
}

TEST(AddedErrors, MonotonicInConfidence) {
  // Smaller confidence factor => more pessimism => more added errors.
  EXPECT_GT(ml::added_errors(20, 3, 0.10), ml::added_errors(20, 3, 0.50));
}

TEST(AddedErrors, DecreasesWithMoreData) {
  // Same error *rate*, more data => proportionally fewer added errors.
  const double small = ml::added_errors(10, 2, 0.25) / 10;
  const double large = ml::added_errors(1000, 200, 0.25) / 1000;
  EXPECT_GT(small, large);
}

TEST(AddedErrors, NearTotalErrorClamps) {
  EXPECT_DOUBLE_EQ(ml::added_errors(10, 10, 0.25), 0.0);
}

// ---- C4.5 ------------------------------------------------------------------

TEST(C45, LearnsSeparableDataPerfectly) {
  util::Rng rng(1);
  const Dataset d = separable(50, rng);
  ml::C45Tree tree;
  tree.train(d);
  for (const auto& inst : d.instances())
    EXPECT_EQ(tree.predict(inst.x), inst.y);
  // One threshold on attribute 'a' suffices.
  EXPECT_EQ(tree.num_leaves(), 2u);
  EXPECT_EQ(tree.num_nodes(), 3u);
  ASSERT_EQ(tree.used_attributes().size(), 1u);
  EXPECT_EQ(tree.used_attributes()[0], 0u);
  const auto* root = tree.root();
  ASSERT_FALSE(root->is_leaf);
  EXPECT_GT(root->threshold, 3.0);
  EXPECT_LT(root->threshold, 8.0);
}

TEST(C45, ThreeClassDataUsesSignalAttributesOnly) {
  util::Rng rng(2);
  const Dataset d = three_class(60, rng);
  ml::C45Tree tree;
  tree.train(d);
  EXPECT_GT(ml::evaluate_on(tree, d).accuracy(), 0.98);
  for (const std::size_t a : tree.used_attributes())
    EXPECT_LT(a, 2u) << "tree split on a noise attribute";
}

TEST(C45, PureDatasetIsSingleLeaf) {
  Dataset d = two_class_schema();
  for (int i = 0; i < 10; ++i) d.add({1.0 * i, 2.0}, 0);
  ml::C45Tree tree;
  tree.train(d);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.predict(std::vector<double>{99.0, 99.0}), 0);
}

TEST(C45, MinLeafRespected) {
  util::Rng rng(3);
  Dataset d = separable(50, rng);
  // One contradictory point cannot justify a split under min_leaf = 25.
  ml::C45Params params;
  params.min_leaf_instances = 60;
  ml::C45Tree tree(params);
  tree.train(d);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(C45, PruningShrinksNoisyTree) {
  util::Rng rng(4);
  // Noisy labels: flip 10% of classes.
  Dataset d = two_class_schema();
  for (int i = 0; i < 400; ++i) {
    const bool pos = rng.next_bool(0.5);
    int y = pos ? 1 : 0;
    if (rng.next_bool(0.10)) y = 1 - y;
    d.add({(pos ? 8.0 : 2.0) + rng.next_double(), rng.next_double() * 10}, y);
  }
  // Disable the MDL correction and the minimum-leaf guard so the unpruned
  // tree actually overfits the label noise; pruning must then shrink it.
  ml::C45Params overfit;
  overfit.prune = false;
  overfit.mdl_correction = false;
  overfit.min_leaf_instances = 1;
  ml::C45Tree t_unpruned(overfit);
  t_unpruned.train(d);
  ml::C45Params pruned = overfit;
  pruned.prune = true;
  ml::C45Tree t_pruned(pruned);
  t_pruned.train(d);
  EXPECT_LT(t_pruned.num_nodes(), t_unpruned.num_nodes());
  EXPECT_GE(ml::evaluate_on(t_pruned, d).accuracy(), 0.85);
}

TEST(C45, DistributionSumsToOne) {
  util::Rng rng(5);
  const Dataset d = three_class(40, rng);
  ml::C45Tree tree;
  tree.train(d);
  const auto dist = tree.distribution(d.at(7).x);
  ASSERT_EQ(dist.size(), 3u);
  double sum = 0;
  for (const double p : dist) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(C45, SaveLoadRoundTripPreservesPredictions) {
  util::Rng rng(6);
  const Dataset d = three_class(50, rng);
  ml::C45Tree tree;
  tree.train(d);
  std::stringstream ss;
  tree.save(ss);
  const ml::C45Tree loaded = ml::C45Tree::load(ss);
  EXPECT_EQ(loaded.num_nodes(), tree.num_nodes());
  for (const auto& inst : d.instances())
    EXPECT_EQ(loaded.predict(inst.x), tree.predict(inst.x));
}

TEST(C45, LoadRejectsGarbage) {
  std::stringstream ss("not a model");
  EXPECT_THROW(ml::C45Tree::load(ss), std::exception);
}

TEST(C45, UntrainedPredictThrows) {
  ml::C45Tree tree;
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}), std::exception);
}

TEST(C45, DescribeMentionsLeafAndNodeCounts) {
  util::Rng rng(7);
  const Dataset d = separable(30, rng);
  ml::C45Tree tree;
  tree.train(d);
  const std::string text = tree.describe();
  EXPECT_NE(text.find("Number of Leaves"), std::string::npos);
  EXPECT_NE(text.find("Size of the tree"), std::string::npos);
}

// ---- C4.5 missing values ----------------------------------------------------

TEST(C45Missing, LearnsDespiteMissingTrainingValues) {
  util::Rng rng(18);
  Dataset d = separable(40, rng);
  // A batch of instances whose signal attribute was not measured: the
  // fractional-instance machinery must absorb them without losing the split.
  for (int i = 0; i < 10; ++i) {
    d.add({ml::kMissingValue, rng.next_double() * 10}, i % 2);
  }
  EXPECT_EQ(d.num_incomplete(), 10u);
  ml::C45Tree tree;
  tree.train(d);
  util::Rng probe(19);
  const Dataset clean = separable(20, probe);
  for (const auto& inst : clean.instances())
    EXPECT_EQ(tree.predict(inst.x), inst.y);
}

TEST(C45Missing, PredictWithNaNCombinesBranchDistributions) {
  util::Rng rng(20);
  const Dataset d = separable(50, rng);
  ml::C45Tree tree;
  tree.train(d);
  ASSERT_TRUE(tree.handles_missing());
  // The split attribute is missing: the prediction blends both branches by
  // their training weight — here a 50/50 class balance.
  const std::vector<double> x = {ml::kMissingValue, 5.0};
  const auto dist = tree.distribution(x);
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_NEAR(dist[0] + dist[1], 1.0, 1e-9);
  EXPECT_NEAR(dist[0], 0.5, 0.05);
  const int predicted = tree.predict(x);
  EXPECT_TRUE(predicted == 0 || predicted == 1);
  // predict() must agree with the argmax of distribution().
  EXPECT_EQ(predicted, dist[0] >= dist[1] ? 0 : 1);
}

TEST(C45Missing, AllMissingAttributeIsNeverSplit) {
  Dataset d({"dead", "sig"}, {"neg", "pos"});
  util::Rng rng(21);
  for (int i = 0; i < 30; ++i) {
    d.add({ml::kMissingValue, 2.0 + rng.next_double()}, 0);
    d.add({ml::kMissingValue, 8.0 + rng.next_double()}, 1);
  }
  ml::C45Tree tree;
  tree.train(d);
  for (const std::size_t a : tree.used_attributes()) EXPECT_EQ(a, 1u);
  EXPECT_EQ(tree.predict(std::vector<double>{ml::kMissingValue, 8.5}), 1);
  EXPECT_EQ(tree.predict(std::vector<double>{ml::kMissingValue, 2.5}), 0);
}

TEST(C45Missing, WeightedInstanceEqualsDuplicatedInstance) {
  // Weight-2 instances must train the same tree as the instance repeated
  // twice at weight 1 — the weighted sums are identical doubles.
  util::Rng rng(22);
  Dataset twice = two_class_schema();
  Dataset weighted = two_class_schema();
  for (int i = 0; i < 30; ++i) {
    const double a = (i % 2 ? 8.0 : 2.0) + rng.next_double();
    const double b = rng.next_double() * 10;
    twice.add({a, b}, i % 2);
    twice.add({a, b}, i % 2);
    weighted.add({a, b}, i % 2, 2.0);
  }
  ml::C45Tree t_twice, t_weighted;
  t_twice.train(twice);
  t_weighted.train(weighted);
  EXPECT_EQ(t_twice.num_nodes(), t_weighted.num_nodes());
  for (const auto& inst : twice.instances()) {
    EXPECT_EQ(t_twice.predict(inst.x), t_weighted.predict(inst.x));
    const auto da = t_twice.distribution(inst.x);
    const auto db = t_weighted.distribution(inst.x);
    for (std::size_t c = 0; c < da.size(); ++c)
      EXPECT_DOUBLE_EQ(da[c], db[c]);
  }
}

TEST(C45Missing, SaveLoadRoundTripKeepsMissingValuePredictions) {
  util::Rng rng(23);
  Dataset d = separable(40, rng);
  d.add({ml::kMissingValue, 1.0}, 0);
  ml::C45Tree tree;
  tree.train(d);
  std::stringstream ss;
  tree.save(ss);
  const ml::C45Tree loaded = ml::C45Tree::load(ss);
  const std::vector<double> x = {ml::kMissingValue, 5.0};
  EXPECT_EQ(loaded.predict(x), tree.predict(x));
  const auto da = tree.distribution(x);
  const auto db = loaded.distribution(x);
  for (std::size_t c = 0; c < da.size(); ++c) EXPECT_DOUBLE_EQ(da[c], db[c]);
}

TEST(Dataset, TracksMissingAndValidatesWeights) {
  Dataset d = two_class_schema();
  d.add({1.0, 2.0}, 0);
  d.add({ml::kMissingValue, 2.0}, 1);
  EXPECT_EQ(d.num_incomplete(), 1u);
  EXPECT_TRUE(ml::is_missing(d.at(1).x[0]));
  EXPECT_DOUBLE_EQ(d.at(0).weight, 1.0);
  EXPECT_THROW(d.add({1.0, 1.0}, 0, 0.0), std::exception);
  EXPECT_THROW(d.add({1.0, 1.0}, 0, -2.0), std::exception);
}

TEST(Classifier, OnlyC45AdvertisesMissingSupport) {
  EXPECT_TRUE(ml::C45Tree().handles_missing());
  EXPECT_FALSE(ml::NaiveBayes().handles_missing());
  EXPECT_FALSE(ml::KnnClassifier(3).handles_missing());
  EXPECT_FALSE(ml::ZeroR().handles_missing());
}

// ---- companion classifiers --------------------------------------------------

template <typename C>
void expect_learns_separable(C&& c, double min_acc = 0.97) {
  util::Rng rng(8);
  const Dataset d = separable(60, rng);
  c.train(d);
  EXPECT_GE(ml::evaluate_on(c, d).accuracy(), min_acc) << c.name();
}

TEST(NaiveBayes, LearnsSeparable) { expect_learns_separable(ml::NaiveBayes()); }
TEST(Knn, LearnsSeparable) { expect_learns_separable(ml::KnnClassifier(3)); }
TEST(Stump, LearnsSeparable) { expect_learns_separable(ml::DecisionStump()); }
TEST(Forest, LearnsSeparable) { expect_learns_separable(ml::RandomForest()); }

TEST(ZeroR, PredictsMajority) {
  Dataset d = two_class_schema();
  for (int i = 0; i < 3; ++i) d.add({1, 1}, 0);
  for (int i = 0; i < 7; ++i) d.add({2, 2}, 1);
  ml::ZeroR z;
  z.train(d);
  EXPECT_EQ(z.predict(std::vector<double>{0.0, 0.0}), 1);
}

TEST(Stump, FindsSignalAttribute) {
  util::Rng rng(9);
  const Dataset d = separable(40, rng);
  ml::DecisionStump s;
  s.train(d);
  EXPECT_EQ(s.attribute(), 0u);
  EXPECT_GT(s.threshold(), 3.0);
  EXPECT_LT(s.threshold(), 8.0);
}

TEST(NaiveBayes, DistributionNormalized) {
  util::Rng rng(10);
  const Dataset d = three_class(30, rng);
  ml::NaiveBayes nb;
  nb.train(d);
  const auto dist = nb.distribution(d.at(0).x);
  double sum = 0;
  for (const double p : dist) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Knn, ConstantAttributeDoesNotPoisonDistance) {
  Dataset d({"sig", "const"}, {"neg", "pos"});
  for (int i = 0; i < 20; ++i) {
    d.add({static_cast<double>(i % 2 ? 10 : 0), 5.0}, i % 2);
  }
  ml::KnnClassifier knn(1);
  knn.train(d);
  EXPECT_EQ(knn.predict(std::vector<double>{9.5, 5.0}), 1);
  EXPECT_EQ(knn.predict(std::vector<double>{0.5, 5.0}), 0);
}

// ---- dataset / folds ---------------------------------------------------------

TEST(Dataset, ClassCountsAndMajority) {
  Dataset d = two_class_schema();
  d.add({1, 1}, 0);
  d.add({1, 1}, 1);
  d.add({1, 1}, 1);
  const auto counts = d.class_counts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(d.majority_class(), 1);
}

TEST(Dataset, StratifiedFoldsPreserveClassBalance) {
  util::Rng rng(11);
  Dataset d = two_class_schema();
  for (int i = 0; i < 40; ++i) d.add({1.0 * i, 0}, 0);
  for (int i = 0; i < 20; ++i) d.add({1.0 * i, 1}, 1);
  const auto folds = d.stratified_folds(10, rng);
  ASSERT_EQ(folds.size(), 10u);
  std::size_t total = 0;
  for (const auto& fold : folds) {
    std::size_t c0 = 0, c1 = 0;
    for (const std::size_t i : fold)
      (d.at(i).y == 0 ? c0 : c1)++;
    EXPECT_EQ(c0, 4u);
    EXPECT_EQ(c1, 2u);
    total += fold.size();
  }
  EXPECT_EQ(total, d.size());
}

TEST(Dataset, FoldsPartitionWithoutDuplicates) {
  util::Rng rng(12);
  Dataset d = two_class_schema();
  for (int i = 0; i < 55; ++i) d.add({1.0 * i, 0}, i % 2);
  const auto folds = d.stratified_folds(7, rng);
  std::vector<bool> seen(d.size(), false);
  for (const auto& fold : folds)
    for (const std::size_t i : fold) {
      ASSERT_FALSE(seen[i]);
      seen[i] = true;
    }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Dataset, RejectsBadInput) {
  Dataset d = two_class_schema();
  EXPECT_THROW(d.add({1.0}, 0), std::exception);       // wrong arity
  EXPECT_THROW(d.add({1.0, 2.0}, 5), std::exception);  // bad label
  EXPECT_THROW(d.stratified_folds(1, *(new util::Rng(1))), std::exception);
}

// ---- evaluation ---------------------------------------------------------------

TEST(ConfusionMatrix, AccuracyAndRates) {
  ml::ConfusionMatrix cm({"good", "bad-fs"});
  for (int i = 0; i < 90; ++i) cm.record(0, 0);
  for (int i = 0; i < 5; ++i) cm.record(0, 1);  // false positives
  for (int i = 0; i < 4; ++i) cm.record(1, 1);
  cm.record(1, 0);  // miss
  EXPECT_EQ(cm.total(), 100u);
  EXPECT_EQ(cm.correct(), 94u);
  EXPECT_NEAR(cm.accuracy(), 0.94, 1e-12);
  EXPECT_NEAR(cm.false_positive_rate(1), 5.0 / 95.0, 1e-12);
  EXPECT_NEAR(cm.recall(1), 0.8, 1e-12);
  EXPECT_NEAR(cm.precision(1), 4.0 / 9.0, 1e-12);
}

TEST(CrossValidation, HighAccuracyOnSeparableData) {
  util::Rng rng(13);
  const Dataset d = separable(60, rng);
  util::Rng cv_rng(14);
  const auto result = ml::cross_validate(ml::C45Tree(), d, 10, cv_rng);
  EXPECT_GT(result.accuracy, 0.95);
  EXPECT_EQ(result.fold_accuracy.size(), 10u);
  EXPECT_EQ(result.confusion.total(), d.size());
}

TEST(CrossValidation, DeterministicGivenRngSeed) {
  util::Rng rng(15);
  const Dataset d = three_class(40, rng);
  util::Rng r1(77), r2(77);
  const auto a = ml::cross_validate(ml::C45Tree(), d, 10, r1);
  const auto b = ml::cross_validate(ml::C45Tree(), d, 10, r2);
  EXPECT_EQ(a.confusion.correct(), b.confusion.correct());
}

// ---- io ------------------------------------------------------------------------

TEST(Io, CsvRoundTrip) {
  util::Rng rng(16);
  const Dataset d = three_class(10, rng);
  std::stringstream ss;
  ml::write_csv(d, ss);
  const Dataset back = ml::read_csv(ss, d.class_names());
  ASSERT_EQ(back.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(back.at(i).y, d.at(i).y);
    for (std::size_t a = 0; a < d.num_attributes(); ++a)
      EXPECT_DOUBLE_EQ(back.at(i).x[a], d.at(i).x[a]);
  }
}

TEST(Io, ArffHasWekaStructure) {
  util::Rng rng(17);
  const Dataset d = separable(5, rng);
  std::stringstream ss;
  ml::write_arff(d, "fsml_training", ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("@relation fsml_training"), std::string::npos);
  EXPECT_NE(text.find("@attribute a numeric"), std::string::npos);
  EXPECT_NE(text.find("@attribute class {neg,pos}"), std::string::npos);
  EXPECT_NE(text.find("@data"), std::string::npos);
}

TEST(Io, CsvRejectsMalformedRows) {
  std::stringstream ss("a,b,class\n1.0,2.0,neg\n1.0,oops\n");
  EXPECT_THROW(ml::read_csv(ss, {"neg", "pos"}), std::exception);
}

TEST(Io, CsvRejectsUnknownClass) {
  std::stringstream ss("a,b,class\n1.0,2.0,zebra\n");
  EXPECT_THROW(ml::read_csv(ss, {"neg", "pos"}), std::exception);
}

// ---- versioned model container ---------------------------------------------

ml::C45Tree trained_tree() {
  util::Rng rng(21);
  ml::C45Tree tree;
  tree.train(three_class(40, rng));
  return tree;
}

TEST(ModelIo, RoundTripIsBitIdentical) {
  util::Rng rng(21);
  const Dataset d = three_class(40, rng);
  const ml::C45Tree tree = trained_tree();
  std::stringstream ss;
  ml::save_model(tree, ss);
  const ml::C45Tree loaded = ml::load_model(ss);
  for (const auto& inst : d.instances())
    EXPECT_EQ(loaded.predict(inst.x), tree.predict(inst.x));
  // Re-serializing the loaded tree reproduces the file byte for byte.
  std::stringstream again;
  ml::save_model(loaded, again);
  EXPECT_EQ(ss.str(), again.str());
}

TEST(ModelIo, ContainerCarriesVersionSchemaAndCrc) {
  std::stringstream ss;
  ml::save_model(trained_tree(), ss);
  const std::string text = ss.str();
  EXPECT_EQ(text.rfind("fsml-model v2\n", 0), 0u);
  EXPECT_NE(text.find("\nschema "), std::string::npos);
  EXPECT_NE(text.find("\npayload "), std::string::npos);
  EXPECT_NE(text.find("crc32 "), std::string::npos);
}

TEST(ModelIo, RejectsFlippedPayloadByte) {
  std::stringstream ss;
  ml::save_model(trained_tree(), ss);
  std::string text = ss.str();
  const std::size_t pos = text.find("fsml-c45");  // inside the payload
  ASSERT_NE(pos, std::string::npos);
  text[pos] = 'F';
  std::stringstream corrupt(text);
  try {
    ml::load_model(corrupt);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC mismatch"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("retrain"), std::string::npos);
  }
}

TEST(ModelIo, RejectsTruncatedPayload) {
  std::stringstream ss;
  ml::save_model(trained_tree(), ss);
  const std::string text = ss.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  try {
    ml::load_model(truncated);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(ModelIo, RejectsUnsupportedFormatVersion) {
  std::stringstream ss;
  ml::save_model(trained_tree(), ss);
  std::string text = ss.str();
  text.replace(text.find(" v2\n"), 4, " v9\n");
  std::stringstream wrong(text);
  try {
    ml::load_model(wrong);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("v9"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("not supported"), std::string::npos);
  }
}

TEST(ModelIo, RejectsForeignMagic) {
  std::stringstream ss("definitely-not-a-model\n");
  EXPECT_THROW(ml::load_model(ss), std::runtime_error);
}

TEST(ModelIo, LegacyBarePayloadStillLoads) {
  util::Rng rng(21);
  const Dataset d = three_class(40, rng);
  const ml::C45Tree tree = trained_tree();
  std::stringstream legacy;
  tree.save(legacy);  // pre-container format
  const ml::C45Tree loaded = ml::load_model(legacy);
  for (const auto& inst : d.instances())
    EXPECT_EQ(loaded.predict(inst.x), tree.predict(inst.x));
}

TEST(ModelIo, FileRoundTripThroughAtomicWrite) {
  const std::string path = ::testing::TempDir() + "fsml_model_io_test.model";
  std::remove(path.c_str());
  const ml::C45Tree tree = trained_tree();
  ml::save_model_file(tree, path);
  const ml::C45Tree loaded = ml::load_model_file(path);
  EXPECT_EQ(loaded.num_nodes(), tree.num_nodes());
  std::remove(path.c_str());
}

TEST(ModelIo, MissingFileErrorSaysHowToTrain) {
  try {
    ml::load_model_file(::testing::TempDir() + "fsml_no_such.model");
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fsml_analyze train"),
              std::string::npos);
  }
}

}  // namespace
