// fsml::fault stall / overflow injection tests (the chaos sites added for
// the serve drills). The purity contract is the whole point: whether a
// (site, key, attempt) stalls or overflows is a pure function of the plan
// seed — never of call order, injector instance, or host thread — because
// the serve drill's bit-identical-across---jobs guarantee rests on it.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"

namespace {

namespace fault = fsml::fault;

fault::FaultPlan stall_plan(double rate, std::uint64_t steps,
                            std::uint64_t seed = 7) {
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.stall_rate = rate;
  plan.stall_steps = steps;
  return plan;
}

TEST(FaultStalls, DefaultPlanIsInert) {
  const fault::FaultPlan plan;
  EXPECT_FALSE(plan.any());
  const fault::FaultInjector injector(plan);
  for (int k = 0; k < 50; ++k) {
    EXPECT_EQ(injector.stall_for("site", std::to_string(k), 1), 0u);
    EXPECT_FALSE(injector.should_overflow("site", std::to_string(k), 1));
  }
}

TEST(FaultStalls, RateOneAlwaysStallsForConfiguredSteps) {
  const fault::FaultInjector injector(stall_plan(1.0, 6));
  for (int k = 0; k < 50; ++k)
    EXPECT_EQ(injector.stall_for("serve.dequeue", std::to_string(k), 1), 6u);
}

TEST(FaultStalls, ZeroStepsDisablesEvenAtRateOne) {
  const fault::FaultPlan plan = stall_plan(1.0, 0);
  EXPECT_FALSE(plan.any());
  const fault::FaultInjector injector(plan);
  EXPECT_EQ(injector.stall_for("serve.dequeue", "0", 1), 0u);
}

TEST(FaultStalls, PureInSeedSiteKeyAttempt) {
  const fault::FaultInjector a(stall_plan(0.4, 3, 99));
  const fault::FaultInjector b(stall_plan(0.4, 3, 99));
  bool any_stalled = false, any_clean = false;
  for (int key = 0; key < 200; ++key) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      const std::uint64_t draw_a =
          a.stall_for("serve.client", std::to_string(key), attempt);
      // Same (seed, site, key, attempt) — identical across instances, and
      // across *call order* (b is queried after a's full sweep below too).
      EXPECT_EQ(draw_a,
                b.stall_for("serve.client", std::to_string(key), attempt));
      (draw_a > 0 ? any_stalled : any_clean) = true;
    }
  }
  EXPECT_TRUE(any_stalled);
  EXPECT_TRUE(any_clean);
  // Different coordinates give independent draws: site, key and attempt
  // each re-key the hash.
  const std::uint64_t base = a.stall_for("serve.client", "17", 1);
  bool differs = false;
  differs |= a.stall_for("serve.dequeue", "17", 1) != base;
  differs |= a.stall_for("serve.client", "18", 1) != base;
  differs |= a.stall_for("serve.client", "17", 2) != base;
  EXPECT_TRUE(differs);
}

TEST(FaultStalls, CrossThreadAgreement) {
  const fault::FaultInjector injector(stall_plan(0.5, 4, 123));
  std::vector<std::uint64_t> serial(256);
  for (int k = 0; k < 256; ++k)
    serial[static_cast<std::size_t>(k)] =
        injector.stall_for("site", std::to_string(k), 1);

  std::vector<std::uint64_t> threaded(256);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([&, t] {
      for (int k = t; k < 256; k += 4)
        threaded[static_cast<std::size_t>(k)] =
            injector.stall_for("site", std::to_string(k), 1);
    });
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(serial, threaded);
}

TEST(FaultOverflow, RateOneAlwaysOverflows) {
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.overflow_rate = 1.0;
  EXPECT_TRUE(plan.any());
  const fault::FaultInjector injector(plan);
  for (int k = 0; k < 50; ++k)
    EXPECT_TRUE(injector.should_overflow("serve.enqueue",
                                         std::to_string(k), 1));
}

TEST(FaultOverflow, PureInSeedSiteKeyAttempt) {
  fault::FaultPlan plan;
  plan.seed = 31;
  plan.overflow_rate = 0.3;
  const fault::FaultInjector a(plan);
  const fault::FaultInjector b(plan);
  bool any_hit = false, any_miss = false;
  for (int key = 0; key < 200; ++key) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      const bool hit =
          a.should_overflow("serve.enqueue", std::to_string(key), attempt);
      EXPECT_EQ(hit, b.should_overflow("serve.enqueue", std::to_string(key),
                                       attempt));
      (hit ? any_hit : any_miss) = true;
    }
  }
  EXPECT_TRUE(any_hit);
  EXPECT_TRUE(any_miss);
}

TEST(FaultOverflow, SeedChangesTheDrawSet) {
  fault::FaultPlan p1, p2;
  p1.overflow_rate = p2.overflow_rate = 0.5;
  p1.seed = 1;
  p2.seed = 2;
  const fault::FaultInjector a(p1), b(p2);
  int differing = 0;
  for (int key = 0; key < 200; ++key)
    if (a.should_overflow("s", std::to_string(key), 1) !=
        b.should_overflow("s", std::to_string(key), 1))
      ++differing;
  EXPECT_GT(differing, 0);
}

// Stalls and overflows must not perturb the existing throw/hang draws for
// the same (site, key): each fault kind draws from its own salt namespace.
TEST(FaultStalls, IndependentOfThrowDraws) {
  fault::FaultPlan with_stalls;
  with_stalls.seed = 11;
  with_stalls.throw_rate = 0.5;
  with_stalls.stall_rate = 0.5;
  fault::FaultPlan throws_only = with_stalls;
  throws_only.stall_rate = 0.0;

  const fault::FaultInjector a(with_stalls);
  const fault::FaultInjector b(throws_only);
  for (int key = 0; key < 100; ++key) {
    const std::string k = std::to_string(key);
    bool a_threw = false, b_threw = false;
    try {
      a.maybe_throw("site", k, 1);
    } catch (const fault::InjectedFault&) {
      a_threw = true;
    }
    try {
      b.maybe_throw("site", k, 1);
    } catch (const fault::InjectedFault&) {
      b_threw = true;
    }
    EXPECT_EQ(a_threw, b_threw) << "stall plan perturbed throw draws";
  }
}

}  // namespace
