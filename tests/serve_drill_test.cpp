// Seeded chaos-drill tests for the streaming detection service: the three
// service contracts (determinism across --jobs, session conservation, zero
// false positives) asserted under every storm the drill can brew. These
// are the in-tree mirror of bench/serve_drill; the bench runs bigger
// populations, this suite runs small ones on every ctest invocation.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/training.hpp"
#include "serve/drill.hpp"

namespace {

using namespace fsml;

const core::FalseSharingDetector& shared_detector() {
  static const core::FalseSharingDetector detector = [] {
    core::FalseSharingDetector d;
    d.train(core::collect_training_data(core::TrainingConfig::reduced()));
    return d;
  }();
  return detector;
}

const std::vector<core::EvalRun>& shared_templates() {
  static const std::vector<core::EvalRun> templates =
      serve::drill_templates(/*seed=*/42, /*jobs=*/2);
  return templates;
}

serve::DrillConfig small_drill() {
  serve::DrillConfig config;
  config.sessions = 18;
  config.max_batches_per_session = 3;
  config.arrival_spread_steps = 24;
  config.burst_every = 6;
  config.service_rate = 3;
  config.seed = 42;
  config.server.queue_depth = 12;
  config.server.seed = 42;
  return config;
}

serve::DrillConfig chaos_drill() {
  serve::DrillConfig config = small_drill();
  config.malformed_rate = 0.3;
  config.cancel_rate = 0.2;
  config.cancel_step = 5;
  config.faults.seed = 42;
  config.faults.stall_rate = 0.25;
  config.faults.stall_steps = 4;
  config.faults.overflow_rate = 0.2;
  config.faults.throw_rate = 0.3;
  config.faults.throw_attempts = 3;
  config.service_rate = 2;
  return config;
}

void expect_contracts(const serve::DrillReport& report) {
  EXPECT_EQ(report.lost_sessions, 0u)
      << "every admitted session must get a terminal record";
  EXPECT_EQ(report.false_positives, 0u)
      << "overload/chaos must degrade to abstention, never a false alarm";
  EXPECT_EQ(report.health.terminal_records(), report.admitted);
  EXPECT_EQ(report.records.size(), report.admitted);
}

TEST(ServeDrill, BaselineBitIdenticalAcrossJobs) {
  serve::DrillConfig one = small_drill();
  one.jobs = 1;
  serve::DrillConfig four = small_drill();
  four.jobs = 4;
  const serve::DrillReport a =
      serve::run_drill(shared_detector(), shared_templates(), one);
  const serve::DrillReport b =
      serve::run_drill(shared_detector(), shared_templates(), four);
  expect_contracts(a);
  expect_contracts(b);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.records.size(), b.records.size());
  EXPECT_GT(a.verdicts + a.abstained, 0u) << "baseline should classify";
}

TEST(ServeDrill, CombinedChaosBitIdenticalAcrossJobs) {
  serve::DrillConfig one = chaos_drill();
  one.jobs = 1;
  serve::DrillConfig four = chaos_drill();
  four.jobs = 4;
  const serve::DrillReport a =
      serve::run_drill(shared_detector(), shared_templates(), one);
  const serve::DrillReport b =
      serve::run_drill(shared_detector(), shared_templates(), four);
  expect_contracts(a);
  expect_contracts(b);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  // The storm actually stormed: at least one of each chaos class fired.
  EXPECT_GT(a.quarantined, 0u);
  EXPECT_GT(a.health.classify_faults, 0u);
}

TEST(ServeDrill, RepeatedRunsAreBitIdentical) {
  const serve::DrillConfig config = chaos_drill();
  const serve::DrillReport a =
      serve::run_drill(shared_detector(), shared_templates(), config);
  const serve::DrillReport b =
      serve::run_drill(shared_detector(), shared_templates(), config);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.health.retry_afters, b.health.retry_afters);
}

TEST(ServeDrill, DifferentSeedsGiveDifferentStorms) {
  serve::DrillConfig other = chaos_drill();
  other.seed = 1234;
  other.faults.seed = 1234;
  other.server.seed = 1234;
  const serve::DrillReport a =
      serve::run_drill(shared_detector(), shared_templates(), chaos_drill());
  const serve::DrillReport b =
      serve::run_drill(shared_detector(), shared_templates(), other);
  expect_contracts(b);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(ServeDrill, MalformedStreamsAllQuarantineCleanly) {
  serve::DrillConfig config = small_drill();
  config.malformed_rate = 1.0;
  const serve::DrillReport report =
      serve::run_drill(shared_detector(), shared_templates(), config);
  expect_contracts(report);
  EXPECT_EQ(report.quarantined, report.admitted)
      << "every stream lies once, so every session must quarantine";
  EXPECT_EQ(report.verdicts, 0u);
}

TEST(ServeDrill, CancellationYieldsExplicitCancelledRecords) {
  serve::DrillConfig config = small_drill();
  config.cancel_rate = 1.0;
  config.cancel_step = 3;
  const serve::DrillReport report =
      serve::run_drill(shared_detector(), shared_templates(), config);
  expect_contracts(report);
  EXPECT_GT(report.cancelled, 0u);
}

TEST(ServeDrill, OverloadShedsInsteadOfGuessing) {
  serve::DrillConfig config = small_drill();
  config.server.queue_depth = 2;  // drastically undersized on purpose
  config.server.deadline_steps = 24;  // and impatient
  config.service_rate = 1;
  config.arrival_spread_steps = 8;  // everyone arrives almost at once
  config.burst_every = 8;
  const serve::DrillReport report =
      serve::run_drill(shared_detector(), shared_templates(), config);
  expect_contracts(report);
  EXPECT_GT(report.shed + report.expired + report.abstained, 0u);
  EXPECT_GT(report.health.retry_afters, 0u);
}

TEST(ServeDrill, ValidateRejectsBadConfig) {
  serve::DrillConfig config = small_drill();
  config.sessions = 0;
  EXPECT_THROW(serve::run_drill(shared_detector(), shared_templates(), config),
               std::runtime_error);
  config = small_drill();
  config.malformed_rate = 1.5;
  EXPECT_THROW(serve::run_drill(shared_detector(), shared_templates(), config),
               std::runtime_error);
}

}  // namespace
