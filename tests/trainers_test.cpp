// Signature tests for the mini-program suites: each mode must leave the
// hardware signature the detector relies on (bad-fs -> HITM snoop traffic,
// bad-ma -> cache/TLB pressure without HITM), runs must be deterministic,
// and the coherence/inclusion invariants must hold after every run.
#include <gtest/gtest.h>

#include <string>

#include "core/training.hpp"
#include "sim/machine_config.hpp"
#include "trainers/trainer.hpp"

namespace {

using namespace fsml;
using trainers::AccessPattern;
using trainers::Mode;
using trainers::TrainerParams;

sim::MachineConfig cfg() { return sim::MachineConfig::westmere_dp(12); }

trainers::TrainerRun run(const std::string& program, Mode mode,
                         std::uint32_t threads = 6,
                         AccessPattern pattern = AccessPattern::kRandom,
                         std::uint64_t seed = 3) {
  TrainerParams p;
  p.mode = mode;
  p.threads = threads;
  p.pattern = pattern;
  p.seed = seed;
  const auto& prog = trainers::find_program(program);
  p.size = prog.default_sizes()[0];
  if (!prog.multithreaded()) p.threads = 1;
  return trainers::run_trainer(prog, p, cfg());
}

double hitm_rate(const trainers::TrainerRun& r) {
  return r.features.get(pmu::WestmereEvent::kSnoopResponseHitM);
}

class MultithreadedPrograms : public ::testing::TestWithParam<const char*> {};

TEST_P(MultithreadedPrograms, BadFsProducesHitmGoodDoesNot) {
  const auto good = run(GetParam(), Mode::kGood);
  const auto bad = run(GetParam(), Mode::kBadFs);
  EXPECT_GT(hitm_rate(bad), 10.0 * (hitm_rate(good) + 1e-9))
      << "program " << GetParam();
  EXPECT_GT(hitm_rate(bad), 1e-3);
  EXPECT_LT(hitm_rate(good), 1e-3);
}

TEST_P(MultithreadedPrograms, BadFsIsSlowerThanGood) {
  // Dense-write kernels pay the coherence-transfer latency on the critical
  // path; sparse-write kernels (count: ~25% of iterations, pmatcompare:
  // 1 in 4) have it absorbed by the store buffer — false sharing that is
  // *detectable* (HITM signature) but not *costly*, the same phenomenon the
  // paper discusses for reverse_index/word_count (§4.1). Only dense
  // programs must slow down.
  const std::string name = GetParam();
  const bool sparse_writes = name == "count" || name == "pmatcompare";
  const auto good = run(GetParam(), Mode::kGood);
  const auto bad = run(GetParam(), Mode::kBadFs);
  if (sparse_writes) {
    EXPECT_GT(bad.raw.get(sim::RawEvent::kSnoopResponseHitM), 800u);
    EXPECT_GT(bad.result.total_cycles, good.result.total_cycles * 9 / 10);
  } else {
    EXPECT_GT(bad.result.total_cycles, good.result.total_cycles * 3 / 2)
        << "program " << GetParam();
  }
}

TEST_P(MultithreadedPrograms, DeterministicGivenSeed) {
  const auto a = run(GetParam(), Mode::kBadFs, 6, AccessPattern::kRandom, 17);
  const auto b = run(GetParam(), Mode::kBadFs, 6, AccessPattern::kRandom, 17);
  EXPECT_EQ(a.result.total_cycles, b.result.total_cycles);
  EXPECT_EQ(a.snapshot.instructions(), b.snapshot.instructions());
  for (std::size_t i = 0; i < pmu::kNumFeatures; ++i)
    EXPECT_DOUBLE_EQ(a.features.at(i), b.features.at(i));
}

INSTANTIATE_TEST_SUITE_P(AllMultithreaded, MultithreadedPrograms,
                         ::testing::Values("psums", "padding", "false1",
                                           "psumv", "pdot", "count",
                                           "pmatmult", "pmatcompare"));

class BadMaPrograms : public ::testing::TestWithParam<const char*> {};

TEST_P(BadMaPrograms, BadMaStressesCachesWithoutHitm) {
  const auto& prog = trainers::find_program(GetParam());
  TrainerParams pg;
  pg.threads = prog.multithreaded() ? 6 : 1;
  pg.size = prog.default_sizes().back();  // largest: make the contrast clear
  pg.seed = 5;
  pg.mode = Mode::kGood;
  const auto good = trainers::run_trainer(prog, pg, cfg());
  pg.mode = Mode::kBadMa;
  pg.pattern = AccessPattern::kRandom;
  const auto bad = trainers::run_trainer(prog, pg, cfg());

  const double good_repl =
      good.features.get(pmu::WestmereEvent::kL1dCacheReplacements);
  const double bad_repl =
      bad.features.get(pmu::WestmereEvent::kL1dCacheReplacements);
  EXPECT_GT(bad_repl, 2.0 * good_repl) << "program " << GetParam();
  EXPECT_LT(hitm_rate(bad), 1e-3) << "program " << GetParam();
  EXPECT_GT(bad.result.total_cycles, good.result.total_cycles);
}

TEST_P(BadMaPrograms, BadMaRaisesDtlbMissRate) {
  // Per-thread shares of the multi-threaded vector programs span too few
  // pages to overflow a 64-entry DTLB at simulation scale — which is
  // exactly why the paper added the *sequential* program set (Part B) to
  // strengthen the bad-ma training signal. Only programs whose bad-ma
  // working set clearly exceeds DTLB reach must show the TLB signature.
  const auto& prog = trainers::find_program(GetParam());
  const std::string name = GetParam();
  if (name != "seq_read" && name != "seq_write" && name != "seq_rmw" &&
      name != "pdot")
    GTEST_SKIP() << "working set spans too few pages to stress a TLB";
  TrainerParams pg;
  pg.threads = prog.multithreaded() ? 6 : 1;
  pg.size = prog.default_sizes().back();
  pg.seed = 5;
  pg.mode = Mode::kGood;
  const auto good = trainers::run_trainer(prog, pg, cfg());
  pg.mode = Mode::kBadMa;
  pg.pattern = AccessPattern::kRandom;
  const auto bad = trainers::run_trainer(prog, pg, cfg());
  const double g = good.features.get(pmu::WestmereEvent::kDtlbMisses);
  const double b = bad.features.get(pmu::WestmereEvent::kDtlbMisses);
  EXPECT_GT(b, 3.0 * (g + 1e-9)) << "program " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBadMa, BadMaPrograms,
                         ::testing::Values("psumv", "pdot", "count",
                                           "pmatmult", "pmatcompare",
                                           "seq_read", "seq_write", "seq_rmw",
                                           "seq_matmul"));

TEST(TrainerRegistry, SuitesHaveExpectedMembers) {
  EXPECT_EQ(trainers::multithreaded_set().size(), 8u);
  EXPECT_EQ(trainers::sequential_set().size(), 4u);
  EXPECT_EQ(trainers::all_programs().size(), 12u);
  EXPECT_EQ(trainers::find_program("pdot").name(), "pdot");
  EXPECT_THROW(trainers::find_program("nope"), std::exception);
}

TEST(TrainerRegistry, SequentialProgramsRejectMultithreadedParams) {
  TrainerParams p;
  p.threads = 4;
  EXPECT_THROW(
      trainers::run_trainer(trainers::find_program("seq_read"), p, cfg()),
      std::exception);
}

TEST(TrainerRegistry, ScalarProgramsRejectBadMa) {
  TrainerParams p;
  p.threads = 4;
  p.mode = Mode::kBadMa;
  EXPECT_THROW(
      trainers::run_trainer(trainers::find_program("psums"), p, cfg()),
      std::exception);
}

TEST(Traversal, BijectiveForAllPatterns) {
  for (const auto pattern : {AccessPattern::kLinear, AccessPattern::kStrided,
                             AccessPattern::kRandom}) {
    const std::uint64_t n = 1000;
    trainers::Traversal t(pattern, n, 16, 9);
    std::vector<bool> seen(n, false);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t idx = t.index(i);
      ASSERT_LT(idx, n);
      ASSERT_FALSE(seen[idx]) << "pattern " << static_cast<int>(pattern);
      seen[idx] = true;
    }
  }
}

TEST(Traversal, LinearIsIdentity) {
  trainers::Traversal t(AccessPattern::kLinear, 100, 16, 1);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(t.index(i), i);
}

// ---- host-parallel collection determinism ---------------------------------
//
// The fsml::par contract: the jobs knob decides only host scheduling, never
// simulated results. Collecting the same grid with 1 and 4 host threads
// must produce bit-identical TrainingData — features, labels, provenance,
// census, and row order.

void expect_bit_identical(const fsml::core::TrainingData& a,
                          const fsml::core::TrainingData& b) {
  ASSERT_EQ(a.instances.size(), b.instances.size());
  EXPECT_EQ(a.census_a.initial_good, b.census_a.initial_good);
  EXPECT_EQ(a.census_a.initial_bad_fs, b.census_a.initial_bad_fs);
  EXPECT_EQ(a.census_a.initial_bad_ma, b.census_a.initial_bad_ma);
  EXPECT_EQ(a.census_a.removed_bad_ma, b.census_a.removed_bad_ma);
  EXPECT_EQ(a.census_b.initial_good, b.census_b.initial_good);
  EXPECT_EQ(a.census_b.initial_bad_ma, b.census_b.initial_bad_ma);
  EXPECT_EQ(a.census_b.removed_good, b.census_b.removed_good);
  EXPECT_EQ(a.census_b.removed_bad_ma, b.census_b.removed_bad_ma);
  for (std::size_t i = 0; i < a.instances.size(); ++i) {
    const auto& x = a.instances[i];
    const auto& y = b.instances[i];
    EXPECT_EQ(x.program, y.program) << "row " << i;
    EXPECT_EQ(x.size, y.size) << "row " << i;
    EXPECT_EQ(x.threads, y.threads) << "row " << i;
    EXPECT_EQ(x.label, y.label) << "row " << i;
    EXPECT_EQ(x.pattern, y.pattern) << "row " << i;
    EXPECT_EQ(x.part_a, y.part_a) << "row " << i;
    EXPECT_EQ(x.seconds, y.seconds) << "row " << i;  // exact, not approx
    for (std::size_t f = 0; f < pmu::kNumFeatures; ++f)
      EXPECT_EQ(x.features.at(f), y.features.at(f))
          << "row " << i << " feature " << f;
  }
}

TEST(TrainingParallel, ParallelCollectionIsBitIdenticalToSerial) {
  fsml::core::TrainingConfig config = fsml::core::TrainingConfig::reduced();
  config.thread_counts = {3};  // trim the grid: this collects three times

  config.jobs = 1;
  const auto serial = fsml::core::collect_training_data(config);
  config.jobs = 4;
  const auto parallel_a = fsml::core::collect_training_data(config);
  const auto parallel_b = fsml::core::collect_training_data(config);

  EXPECT_GT(serial.instances.size(), 0u);
  expect_bit_identical(serial, parallel_a);   // jobs must not change results
  expect_bit_identical(parallel_a, parallel_b);  // nor make them flaky
}

}  // namespace
