// MESI coherence tests: exact event accounting for canonical scenarios
// (cold store, read-after-modify HITM, upgrade, back-invalidation), snoop
// attribution at the responder, the stream prefetcher, the DRAM row-buffer
// model, and randomized stress checks of the coherence and inclusion
// invariants.
#include <gtest/gtest.h>

#include <array>

#include "sim/machine_config.hpp"
#include "sim/memory_system.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace fsml;
using sim::AccessType;
using sim::MesiState;
using sim::RawEvent;
using sim::ServiceLevel;

sim::MachineConfig cfg2() { return sim::MachineConfig::westmere_dp(2); }

constexpr sim::Addr kLine = 0x10000;

TEST(Coherence, ColdStoreMissFetchesOwnershipFromDram) {
  sim::MemorySystem mem(cfg2());
  const auto r = mem.access(0, kLine, 8, AccessType::kStore, 0);
  EXPECT_EQ(r.level, ServiceLevel::kDram);
  const auto& c = mem.counters(0);
  EXPECT_EQ(c.get(RawEvent::kStoresRetired), 1u);
  EXPECT_EQ(c.get(RawEvent::kL1dStoreMiss), 1u);
  EXPECT_EQ(c.get(RawEvent::kL2DemandIState), 1u);
  EXPECT_EQ(c.get(RawEvent::kL2StMiss), 1u);
  EXPECT_EQ(c.get(RawEvent::kOffcoreRfo), 1u);
  EXPECT_EQ(c.get(RawEvent::kDramReads), 1u);
  EXPECT_EQ(c.get(RawEvent::kL2LinesInM), 1u);
  EXPECT_EQ(c.get(RawEvent::kTransIM), 1u);
  EXPECT_EQ(mem.l1(0).state_of(kLine), MesiState::kModified);
  EXPECT_EQ(mem.l2(0).state_of(kLine), MesiState::kModified);
  EXPECT_TRUE(mem.l3().contains(kLine));
}

TEST(Coherence, StoreHitOnOwnModifiedLineIsCheap) {
  sim::MemorySystem mem(cfg2());
  mem.access(0, kLine, 8, AccessType::kStore, 0);
  const auto r = mem.access(0, kLine, 8, AccessType::kStore, 100);
  EXPECT_EQ(r.level, ServiceLevel::kL1);
  EXPECT_EQ(mem.counters(0).get(RawEvent::kL1dStoreHit), 1u);
}

TEST(Coherence, ReadOfPeerModifiedLineIsHitm) {
  sim::MemorySystem mem(cfg2());
  mem.access(0, kLine, 8, AccessType::kStore, 0);
  const auto r = mem.access(1, kLine, 8, AccessType::kLoad, 1000);
  EXPECT_EQ(r.level, ServiceLevel::kPeerHitM);
  // Responder-side accounting (core 0 answered HITM).
  EXPECT_EQ(mem.counters(0).get(RawEvent::kSnoopRequestsReceived), 1u);
  EXPECT_EQ(mem.counters(0).get(RawEvent::kSnoopResponseHitM), 1u);
  EXPECT_EQ(mem.counters(0).get(RawEvent::kTransMS), 1u);
  // Requester-side accounting.
  EXPECT_EQ(mem.counters(1).get(RawEvent::kHitmTransfersIn), 1u);
  EXPECT_EQ(mem.counters(1).get(RawEvent::kMemLoadRetiredPeer), 1u);
  // Both copies end Shared.
  EXPECT_EQ(mem.l2(0).state_of(kLine), MesiState::kShared);
  EXPECT_EQ(mem.l2(1).state_of(kLine), MesiState::kShared);
  EXPECT_TRUE(mem.check_coherence_invariant());
}

TEST(Coherence, StoreToSharedLineUpgrades) {
  sim::MemorySystem mem(cfg2());
  mem.access(0, kLine, 8, AccessType::kStore, 0);
  mem.access(1, kLine, 8, AccessType::kLoad, 1000);  // both Shared now
  const auto r = mem.access(1, kLine, 8, AccessType::kStore, 2000);
  EXPECT_EQ(r.level, ServiceLevel::kUpgrade);
  EXPECT_EQ(mem.counters(1).get(RawEvent::kL2RfoHitS), 1u);
  EXPECT_EQ(mem.counters(1).get(RawEvent::kRfoUpgrades), 1u);
  EXPECT_EQ(mem.counters(1).get(RawEvent::kTransSM), 1u);
  EXPECT_EQ(mem.counters(1).get(RawEvent::kInvalidationsSent), 1u);
  EXPECT_EQ(mem.counters(0).get(RawEvent::kInvalidationsReceived), 1u);
  EXPECT_EQ(mem.counters(0).get(RawEvent::kSnoopResponseHit), 1u);
  EXPECT_EQ(mem.counters(0).get(RawEvent::kTransSI), 1u);
  EXPECT_EQ(mem.l2(0).state_of(kLine), MesiState::kInvalid);
  EXPECT_EQ(mem.l2(1).state_of(kLine), MesiState::kModified);
}

TEST(Coherence, StoreStealsPeerModifiedLine) {
  sim::MemorySystem mem(cfg2());
  mem.access(0, kLine, 8, AccessType::kStore, 0);
  const auto r = mem.access(1, kLine, 8, AccessType::kStore, 1000);
  EXPECT_EQ(r.level, ServiceLevel::kPeerHitM);
  EXPECT_EQ(mem.counters(0).get(RawEvent::kSnoopResponseHitM), 1u);
  EXPECT_EQ(mem.counters(0).get(RawEvent::kTransMI), 1u);
  EXPECT_EQ(mem.l2(0).state_of(kLine), MesiState::kInvalid);
  EXPECT_EQ(mem.l2(1).state_of(kLine), MesiState::kModified);
}

TEST(Coherence, ReadOfPeerExclusiveLineDowngrades) {
  sim::MemorySystem mem(cfg2());
  mem.access(0, kLine, 8, AccessType::kLoad, 0);  // E at core 0
  EXPECT_EQ(mem.l2(0).state_of(kLine), MesiState::kExclusive);
  const auto r = mem.access(1, kLine, 8, AccessType::kLoad, 1000);
  EXPECT_EQ(r.level, ServiceLevel::kPeerHit);
  EXPECT_EQ(mem.counters(0).get(RawEvent::kSnoopResponseHitE), 1u);
  EXPECT_EQ(mem.counters(0).get(RawEvent::kTransES), 1u);
  EXPECT_EQ(mem.l2(0).state_of(kLine), MesiState::kShared);
  EXPECT_EQ(mem.l2(1).state_of(kLine), MesiState::kShared);
}

TEST(Coherence, ReadSharedByTwoPeersComesFromL3WithoutSnoops) {
  sim::MemorySystem mem(sim::MachineConfig::westmere_dp(3));
  mem.access(0, kLine, 8, AccessType::kLoad, 0);
  mem.access(1, kLine, 8, AccessType::kLoad, 100);  // S everywhere
  mem.reset_counters();
  const auto r = mem.access(2, kLine, 8, AccessType::kLoad, 1000);
  EXPECT_EQ(r.level, ServiceLevel::kL3);
  EXPECT_EQ(mem.counters(0).get(RawEvent::kSnoopRequestsReceived), 0u);
  EXPECT_EQ(mem.counters(1).get(RawEvent::kSnoopRequestsReceived), 0u);
}

TEST(Coherence, RmwIsLoadPlusStore) {
  sim::MemorySystem mem(cfg2());
  mem.access(0, kLine, 8, AccessType::kRmw, 0);
  const auto& c = mem.counters(0);
  EXPECT_EQ(c.get(RawEvent::kAtomicsRetired), 1u);
  EXPECT_EQ(c.get(RawEvent::kInstructionsRetired), 1u);
  // Load part missed to DRAM, store part upgraded the E line.
  EXPECT_EQ(c.get(RawEvent::kL1dLoadMiss), 1u);
  EXPECT_EQ(c.get(RawEvent::kTransEM), 1u);
  EXPECT_EQ(mem.l1(0).state_of(kLine), MesiState::kModified);
}

TEST(Coherence, RmwOnPeerModifiedLinePaysHitmSynchronously) {
  sim::MemorySystem mem(cfg2());
  mem.access(0, kLine, 8, AccessType::kStore, 0);
  const auto r = mem.access(1, kLine, 8, AccessType::kRmw, 1000);
  // The load half waits for the cross-core transfer.
  EXPECT_GE(r.latency, cfg2().cycles.peer_hitm);
  EXPECT_EQ(mem.counters(1).get(RawEvent::kHitmTransfersIn), 1u);
}

TEST(Coherence, LineCrossingAccessTouchesBothLines) {
  sim::MemorySystem mem(cfg2());
  const auto r = mem.access(0, kLine + 60, 8, AccessType::kLoad, 0);
  (void)r;
  EXPECT_TRUE(mem.l1(0).contains(kLine));
  EXPECT_TRUE(mem.l1(0).contains(kLine + 64));
  EXPECT_EQ(mem.counters(0).get(RawEvent::kLoadsRetired), 1u);
  EXPECT_EQ(mem.counters(0).get(RawEvent::kL1dLoadMiss), 2u);
}

TEST(Coherence, CountingDisabledLeavesCountersZero) {
  sim::MemorySystem mem(cfg2());
  mem.set_counting_enabled(false);
  mem.access(0, kLine, 8, AccessType::kStore, 0);
  mem.access(1, kLine, 8, AccessType::kLoad, 100);
  EXPECT_EQ(mem.aggregate_counters().get(RawEvent::kInstructionsRetired), 0u);
  EXPECT_EQ(mem.aggregate_counters().get(RawEvent::kSnoopResponseHitM), 0u);
  // Coherence still behaves normally.
  EXPECT_EQ(mem.l2(1).state_of(kLine), MesiState::kShared);
}

// ---- prefetcher ---------------------------------------------------------------

TEST(Prefetcher, SequentialStreamGetsCovered) {
  sim::MemorySystem mem(cfg2());
  // Stream 64 consecutive lines; after the ramp, demand misses should be
  // rare and prefetches numerous.
  for (int i = 0; i < 64; ++i)
    mem.access(0, kLine + 64ull * i, 8, AccessType::kLoad,
               static_cast<sim::Cycles>(i) * 50);
  const auto& c = mem.counters(0);
  EXPECT_GT(c.get(RawEvent::kHwPrefetchesIssued), 40u);
  EXPECT_LT(c.get(RawEvent::kMemLoadRetiredDram), 10u);
}

TEST(Prefetcher, RandomAccessGetsNoCoverage) {
  sim::MemorySystem mem(cfg2());
  util::Rng rng(1);
  for (int i = 0; i < 64; ++i)
    mem.access(0, kLine + 64 * (rng.next_below(4096) * 7919 % 4096), 8,
               AccessType::kLoad, static_cast<sim::Cycles>(i) * 50);
  EXPECT_LT(mem.counters(0).get(RawEvent::kHwPrefetchesIssued), 8u);
}

TEST(Prefetcher, NeverStealsPeerOwnedLines) {
  sim::MemorySystem mem(cfg2());
  // Core 1 owns a line in the middle of core 0's stream.
  const sim::Addr owned = kLine + 64 * 5;
  mem.access(1, owned, 8, AccessType::kStore, 0);
  for (int i = 0; i < 12; ++i)
    mem.access(0, kLine + 64ull * i, 8, AccessType::kLoad,
               1000 + static_cast<sim::Cycles>(i) * 50);
  // Core 1's copy survived until core 0's *demand* access reached it.
  EXPECT_TRUE(mem.check_coherence_invariant());
  EXPECT_LE(mem.counters(1).get(RawEvent::kSnoopRequestsReceived), 1u);
}

// ---- DRAM row-buffer model ------------------------------------------------------

TEST(DramModel, QueueDelayGrowsUnderContention) {
  sim::MachineConfig cfg = sim::MachineConfig::westmere_dp(4);
  sim::MemorySystem mem(cfg);
  // Many same-time random-row reads from different cores: later ones queue.
  sim::Cycles first_latency = 0, last_latency = 0;
  for (sim::CoreId core = 0; core < 4; ++core) {
    const auto r = mem.access(core, 0x100000 + 0x10000ull * core, 8,
                              AccessType::kLoad, 0);
    if (core == 0) first_latency = r.latency;
    last_latency = r.latency;
  }
  EXPECT_GT(last_latency, first_latency);
}

TEST(DramModel, RowHitsOccupyBankLessThanRowMisses) {
  sim::MachineConfig cfg = sim::MachineConfig::westmere_dp(1);
  EXPECT_LT(cfg.cycles.dram_bus_occupancy,
            cfg.cycles.dram_row_miss_occupancy);
  EXPECT_GE(cfg.cycles.dram_banks, 2u);
}

TEST(DramModel, InterleavedStreamsShareBanksFairly) {
  // Eight concurrent streaming threads must finish within a small spread —
  // the single-open-row model trapped laggards in ever-growing queues.
  constexpr std::uint32_t kThreads = 8;
  sim::MemorySystem mem(sim::MachineConfig::westmere_dp(kThreads));
  std::array<sim::Cycles, kThreads> clock{};
  constexpr int kLines = 256;
  for (int i = 0; i < kLines; ++i) {
    for (sim::CoreId t = 0; t < kThreads; ++t) {
      const sim::Addr addr = 0x100000 + 0x40000ull * t +
                             64ull * static_cast<sim::Addr>(i);
      clock[t] += mem.access(t, addr, 8, AccessType::kLoad, clock[t]).latency;
    }
  }
  const auto [lo, hi] = std::minmax_element(clock.begin(), clock.end());
  EXPECT_LT(*hi - *lo, *hi / 3) << "unfair DRAM scheduling";
}

// ---- randomized invariants -------------------------------------------------------

struct StressParams {
  std::uint32_t cores;
  std::uint64_t seed;
};

class CoherenceStress
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CoherenceStress, InvariantsHoldUnderRandomTraffic) {
  const auto [cores, seed] = GetParam();
  sim::MemorySystem mem(
      sim::MachineConfig::tiny(static_cast<std::uint32_t>(cores)));
  util::Rng rng(static_cast<std::uint64_t>(seed));
  // Tight address range on a tiny machine maximizes evictions, sharing and
  // back-invalidation interplay.
  for (int op = 0; op < 4000; ++op) {
    const auto core = static_cast<sim::CoreId>(rng.next_below(
        static_cast<std::uint64_t>(cores)));
    const sim::Addr addr = 0x8000 + rng.next_below(256) * 32;
    const auto type = static_cast<AccessType>(rng.next_below(3));
    mem.access(core, addr, 8, type, static_cast<sim::Cycles>(op) * 3);
    if (op % 256 == 0) {
      ASSERT_TRUE(mem.check_coherence_invariant()) << "op " << op;
      ASSERT_TRUE(mem.check_inclusion()) << "op " << op;
    }
  }
  EXPECT_TRUE(mem.check_coherence_invariant());
  EXPECT_TRUE(mem.check_inclusion());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoherenceStress,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(11, 22, 33)));

// ---- coherence directory ---------------------------------------------------
//
// The directory must mirror every L2's MESI state *exactly* — same owner,
// same sharer set, nothing stale — after every access, and enabling it must
// not change one counter or cycle versus the reference linear scan.

TEST(Directory, TracksOwnerAndSharersThroughProtocolTransitions) {
  sim::MemorySystem mem(cfg2());
  // Cold store: core 0 owns the line Modified.
  mem.access(0, kLine, 8, AccessType::kStore, 0);
  const sim::CoherenceDirectory::Entry* e = mem.directory().lookup(kLine);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner, 0u);
  EXPECT_EQ(e->owner_state, MesiState::kModified);
  EXPECT_EQ(e->sharers.word(0), 0b01u);

  // Peer read (HITM): both end Shared, no owner.
  mem.access(1, kLine, 8, AccessType::kLoad, 1000);
  e = mem.directory().lookup(kLine);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner, sim::CoherenceDirectory::kNoOwner);
  EXPECT_EQ(e->sharers.word(0), 0b11u);

  // Upgrade: core 1 invalidates core 0 and takes sole ownership.
  mem.access(1, kLine, 8, AccessType::kStore, 2000);
  e = mem.directory().lookup(kLine);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner, 1u);
  EXPECT_EQ(e->owner_state, MesiState::kModified);
  EXPECT_EQ(e->sharers.word(0), 0b10u);
  EXPECT_TRUE(mem.check_directory_invariant());
}

TEST(Directory, EvictionRemovesTheEvictedCoreFromTheEntry) {
  // Tiny L2: 4 ways. Stream enough conflicting lines through one set to
  // evict the first, and the directory must forget it.
  sim::MemorySystem mem(sim::MachineConfig::tiny(2));
  const auto& geo = mem.l2(0).geometry();
  const sim::Addr stride =
      geo.num_sets() * geo.line_bytes;  // same set every time
  mem.access(0, kLine, 8, AccessType::kLoad, 0);
  ASSERT_NE(mem.directory().lookup(kLine), nullptr);
  for (sim::Addr i = 1; i <= geo.ways + 1; ++i)
    mem.access(0, kLine + i * stride, 8, AccessType::kLoad, 100 * i);
  EXPECT_FALSE(mem.l2(0).contains(kLine));
  EXPECT_EQ(mem.directory().lookup(kLine), nullptr);
  EXPECT_TRUE(mem.check_directory_invariant());
}

TEST(Directory, DirtyEvictionWritebackKeepsDirectoryExact) {
  // A Modified line evicted from L2 writes back to L3; the directory entry
  // must drop the owner along with the line.
  sim::MemorySystem mem(sim::MachineConfig::tiny(2));
  const auto& geo = mem.l2(0).geometry();
  const sim::Addr stride = geo.num_sets() * geo.line_bytes;
  mem.access(0, kLine, 8, AccessType::kStore, 0);  // Modified at core 0
  for (sim::Addr i = 1; i <= geo.ways + 1; ++i)
    mem.access(0, kLine + i * stride, 8, AccessType::kStore, 100 * i);
  EXPECT_FALSE(mem.l2(0).contains(kLine));
  EXPECT_EQ(mem.directory().lookup(kLine), nullptr);
  EXPECT_GT(mem.counters(0).get(RawEvent::kL2LinesOutDemandDirty), 0u);
  EXPECT_TRUE(mem.check_directory_invariant());
}

TEST(Directory, L3BackInvalidationDropsPrivateCopies) {
  // Overflow the tiny shared L3: its inclusion back-invalidations must
  // propagate into the directory (the classic stale-sharer trap).
  sim::MemorySystem mem(sim::MachineConfig::tiny(2));
  const std::uint64_t l3_lines = mem.l3().geometry().num_lines();
  for (sim::Addr i = 0; i < 2 * l3_lines; ++i)
    mem.access(i % 2, kLine + 64 * i, 8,
               i % 3 == 0 ? AccessType::kStore : AccessType::kLoad, 10 * i);
  EXPECT_TRUE(mem.check_directory_invariant());
  EXPECT_TRUE(mem.check_inclusion());
}

// Validation coverage for the core-count limits (>64 cores across sockets
// accepted, >64 per socket rejected, 0-socket/ragged rejected) lives in
// tests/numa_test.cpp (NumaValidation): the single-word 64-core cap became
// a per-socket cap when the sharer mask went hierarchical.

// Params: (cores per socket, sockets, seed). The differential fuzz runs on
// single-socket and 2/4-socket machines: the hierarchical-mask directory
// must match the brute-force reference scan over all peer L2s after every
// access, and the local/remote HITM split must always sum to the
// mode-oblivious total.
class DirectoryFuzz
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DirectoryFuzz, MatchesReferenceScanAfterEveryAccess) {
  const auto [per_socket, sockets, seed] = GetParam();
  const std::uint32_t cores = static_cast<std::uint32_t>(per_socket) *
                              static_cast<std::uint32_t>(sockets);
  sim::MachineConfig cfg = sim::MachineConfig::tiny(cores);
  if (sockets > 1)
    cfg.topology = {static_cast<std::uint32_t>(sockets),
                    static_cast<std::uint32_t>(per_socket)};
  sim::MemorySystem mem(cfg);
  ASSERT_EQ(mem.num_sockets(), static_cast<std::uint32_t>(sockets));
  util::Rng rng(static_cast<std::uint64_t>(seed));
  // Tight range on a tiny machine: maximal eviction/upgrade/writeback and
  // back-invalidation interplay, checked against the reference scan after
  // *every* access (check_directory_invariant is the full comparison).
  for (int op = 0; op < 3000; ++op) {
    const auto core = static_cast<sim::CoreId>(
        rng.next_below(static_cast<std::uint64_t>(cores)));
    const sim::Addr addr = 0x8000 + rng.next_below(512) * 24;
    const auto type = static_cast<AccessType>(rng.next_below(3));
    mem.access(core, addr, 8, type, static_cast<sim::Cycles>(op) * 3);
    ASSERT_TRUE(mem.check_directory_invariant()) << "op " << op;
    // NUMA counter invariant: the local/remote splits partition the
    // mode-oblivious totals exactly, on every core, after every access.
    const auto& c = mem.counters(core);
    ASSERT_EQ(c.get(RawEvent::kHitmTransfersLocal) +
                  c.get(RawEvent::kHitmTransfersRemote),
              c.get(RawEvent::kHitmTransfersIn))
        << "op " << op;
    ASSERT_EQ(c.get(RawEvent::kDramReadsLocal) +
                  c.get(RawEvent::kDramReadsRemote),
              c.get(RawEvent::kDramReads))
        << "op " << op;
  }
  EXPECT_TRUE(mem.check_coherence_invariant());
  EXPECT_TRUE(mem.check_inclusion());
  // Aggregate version of the same partition invariants.
  const sim::RawCounters total = mem.aggregate_counters();
  EXPECT_EQ(total.get(RawEvent::kHitmTransfersLocal) +
                total.get(RawEvent::kHitmTransfersRemote),
            total.get(RawEvent::kHitmTransfersIn));
  EXPECT_EQ(total.get(RawEvent::kDramReadsLocal) +
                total.get(RawEvent::kDramReadsRemote),
            total.get(RawEvent::kDramReads));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DirectoryFuzz,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(1, 2, 4),
                       ::testing::Values(7, 21)));

TEST(DirectoryBitIdentity, CountersAndLatenciesMatchReferenceScan) {
  // The same random multi-core trace through a directory-served hierarchy
  // and a reference linear-scan hierarchy must produce byte-identical
  // counters and identical per-access results.
  sim::MachineConfig dir_cfg = sim::MachineConfig::tiny(4);
  sim::MachineConfig ref_cfg = dir_cfg;
  ref_cfg.use_coherence_directory = false;
  sim::MemorySystem with_dir(dir_cfg);
  sim::MemorySystem with_scan(ref_cfg);
  util::Rng rng(99);
  for (int op = 0; op < 5000; ++op) {
    const auto core = static_cast<sim::CoreId>(rng.next_below(4));
    const sim::Addr addr = 0x8000 + rng.next_below(384) * 16;
    const auto type = static_cast<AccessType>(rng.next_below(3));
    const auto now = static_cast<sim::Cycles>(op) * 5;
    const auto a = with_dir.access(core, addr, 8, type, now);
    const auto b = with_scan.access(core, addr, 8, type, now);
    ASSERT_EQ(a.latency, b.latency) << "op " << op;
    ASSERT_EQ(a.level, b.level) << "op " << op;
    ASSERT_EQ(a.dtlb_miss, b.dtlb_miss) << "op " << op;
  }
  for (sim::CoreId c = 0; c < 4; ++c)
    for (std::size_t e = 0; e < sim::kNumRawEvents; ++e)
      ASSERT_EQ(with_dir.counters(c).get(static_cast<RawEvent>(e)),
                with_scan.counters(c).get(static_cast<RawEvent>(e)))
          << "core " << c << " event "
          << sim::raw_event_name(static_cast<RawEvent>(e));
}

TEST(Observer, DeliversEveryAccessWithFinalLevel) {
  struct Recorder : sim::AccessObserver {
    std::vector<sim::AccessRecord> records;
    std::uint64_t instructions = 0;
    void on_access(const sim::AccessRecord& r) override {
      records.push_back(r);
    }
    void on_instructions(sim::CoreId, std::uint64_t n) override {
      instructions += n;
    }
  } recorder;

  sim::MemorySystem mem(cfg2());
  mem.add_observer(&recorder);
  mem.access(0, kLine, 8, AccessType::kStore, 0);
  mem.access(1, kLine + 4, 4, AccessType::kLoad, 100);
  mem.retire_instructions(0, 7);
  ASSERT_EQ(recorder.records.size(), 2u);
  EXPECT_EQ(recorder.records[0].core, 0u);
  EXPECT_EQ(recorder.records[0].type, AccessType::kStore);
  EXPECT_EQ(recorder.records[1].level, ServiceLevel::kPeerHitM);
  EXPECT_EQ(recorder.records[1].size, 4u);
  EXPECT_EQ(recorder.instructions, 7u);

  mem.remove_observer(&recorder);
  mem.access(0, kLine, 8, AccessType::kLoad, 200);
  EXPECT_EQ(recorder.records.size(), 2u);
}

}  // namespace
