// fsml::serve unit tests: the bounded ring's overload contract, strict
// batch validation, the circuit breaker's trip/backoff schedule, and the
// Server's admission / shedding / expiry / quarantine / drain state
// machine. The suite names (ServeRing / ServeSession / CircuitBreaker /
// ServeServer) are part of the TSan ctest filter in tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/training.hpp"
#include "fault/fault.hpp"
#include "pmu/events.hpp"
#include "serve/breaker.hpp"
#include "serve/ring.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"

namespace {

using namespace fsml;

// ---- BoundedRing: reject-on-full, FIFO, drain-on-shutdown ------------------

TEST(ServeRing, RejectsWhenFullAndRecoversAfterPop) {
  serve::BoundedRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "full ring must reject, not grow";
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  const auto popped = ring.try_pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 0);  // FIFO
  EXPECT_TRUE(ring.try_push(99));
  EXPECT_FALSE(ring.try_push(100));
}

TEST(ServeRing, EmptyPopReturnsNullopt) {
  serve::BoundedRing<int> ring(2);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(ServeRing, FifoUnderConcurrentProducers) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  serve::BoundedRing<int> ring(64);
  std::vector<int> consumed;
  consumed.reserve(kProducers * kPerProducer);

  std::thread consumer([&] {
    for (int n = 0; n < kProducers * kPerProducer; ++n) {
      const auto item = ring.pop_wait();
      ASSERT_TRUE(item.has_value());
      consumed.push_back(*item);
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * 100000 + i;
        while (!ring.try_push(value)) std::this_thread::yield();
      }
    });
  for (std::thread& t : producers) t.join();
  consumer.join();

  // Conservation plus per-producer FIFO: each producer's items appear in
  // the order it pushed them (the global interleaving is scheduling-
  // dependent, the per-source order is not).
  ASSERT_EQ(consumed.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::vector<int> next(kProducers, 0);
  for (const int value : consumed) {
    const int p = value / 100000;
    ASSERT_GE(p, 0);
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(value % 100000, next[static_cast<std::size_t>(p)]++);
  }
}

TEST(ServeRing, CloseStopsAdmissionAndDrainsCompletely) {
  serve::BoundedRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring.try_push(i));
  ring.close();
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.try_push(11)) << "closed ring must not admit";
  // Every item accepted before close() is still delivered, in order.
  for (int i = 0; i < 10; ++i) {
    const auto item = ring.pop_wait();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(ring.pop_wait().has_value());  // drained + closed: no block
}

TEST(ServeRing, CloseWakesBlockedConsumers) {
  serve::BoundedRing<int> ring(4);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    EXPECT_FALSE(ring.pop_wait().has_value());
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.close();
  consumer.join();
  EXPECT_TRUE(woke.load());
}

// ---- batch validation ------------------------------------------------------

serve::SampleBatch full_batch(double scale = 1.0) {
  serve::SampleBatch batch;
  for (const pmu::EventInfo& info : pmu::westmere_event_table())
    batch.push_back({std::string(info.name), 1000.0 * scale});
  return batch;
}

TEST(ServeSession, AcceptsFullWellFormedBatch) {
  const serve::ValidatedBatch v = serve::validate_batch(full_batch());
  EXPECT_EQ(v.status, serve::BatchStatus::kOk);
}

TEST(ServeSession, UnknownEventIsMalformed) {
  serve::SampleBatch batch = full_batch();
  batch.push_back({"Totally_Made_Up.EVENT", 1.0});
  const serve::ValidatedBatch v = serve::validate_batch(batch);
  EXPECT_EQ(v.status, serve::BatchStatus::kMalformed);
  EXPECT_NE(v.detail.find("unknown event"), std::string::npos);
}

TEST(ServeSession, DuplicateEventIsMalformed) {
  serve::SampleBatch batch = full_batch();
  batch.push_back(batch.front());
  EXPECT_EQ(serve::validate_batch(batch).status,
            serve::BatchStatus::kMalformed);
}

TEST(ServeSession, NonFiniteAndNegativeCountsAreMalformed) {
  serve::SampleBatch batch = full_batch();
  batch.front().count = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(serve::validate_batch(batch).status,
            serve::BatchStatus::kMalformed);
  batch = full_batch();
  batch.front().count = std::numeric_limits<double>::infinity();
  EXPECT_EQ(serve::validate_batch(batch).status,
            serve::BatchStatus::kMalformed);
  batch = full_batch();
  batch.front().count = -1.0;
  EXPECT_EQ(serve::validate_batch(batch).status,
            serve::BatchStatus::kMalformed);
}

TEST(ServeSession, CounterOverflowIsMalformed) {
  serve::SampleBatch batch = full_batch();
  batch.front().count = 0x1p49;  // beyond a 48-bit Westmere counter
  EXPECT_EQ(serve::validate_batch(batch).status,
            serve::BatchStatus::kMalformed);
}

TEST(ServeSession, MissingNormalizerIsUnusableNotMalformed) {
  serve::SampleBatch batch;
  for (const pmu::EventInfo& info : pmu::westmere_event_table())
    if (info.name != "Instructions_Retired")
      batch.push_back({std::string(info.name), 1000.0});
  const serve::ValidatedBatch v = serve::validate_batch(batch);
  EXPECT_EQ(v.status, serve::BatchStatus::kUnusable);
  EXPECT_EQ(serve::validate_batch({}).status, serve::BatchStatus::kUnusable);
}

TEST(ServeSession, PartialBatchYieldsNaNFeatureSlots) {
  // Only the normalizer and one event present: usable, with NaN in the
  // missing slots for the C4.5 fractional-instance machinery.
  serve::SampleBatch batch{{"Instructions_Retired", 1000000.0},
                           {"Snoop_Response.HIT_M", 400.0}};
  const serve::ValidatedBatch v = serve::validate_batch(batch);
  ASSERT_EQ(v.status, serve::BatchStatus::kOk);
  bool any_nan = false, any_finite = false;
  for (const double x : v.features.values())
    (std::isnan(x) ? any_nan : any_finite) = true;
  EXPECT_TRUE(any_nan);
  EXPECT_TRUE(any_finite);
}

// ---- circuit breaker -------------------------------------------------------

serve::BreakerConfig breaker_config(int trip_after) {
  serve::BreakerConfig config;
  config.trip_after = trip_after;
  config.backoff_base_steps = 4;
  config.backoff_cap_steps = 16;
  config.seed = 7;
  return config;
}

TEST(CircuitBreaker, TripsAfterConsecutiveFaults) {
  serve::CircuitBreaker breaker(breaker_config(3));
  EXPECT_TRUE(breaker.allow(0));
  breaker.on_failure(0);
  breaker.on_failure(1);
  EXPECT_FALSE(breaker.open()) << "two faults must not trip trip_after=3";
  breaker.on_failure(2);
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_FALSE(breaker.allow(2)) << "backoff cannot elapse instantly";
}

TEST(CircuitBreaker, SuccessResetsConsecutiveCount) {
  serve::CircuitBreaker breaker(breaker_config(3));
  breaker.on_failure(0);
  breaker.on_failure(1);
  breaker.on_success();
  breaker.on_failure(2);
  breaker.on_failure(3);
  EXPECT_FALSE(breaker.open()) << "a success must clear the fault streak";
}

TEST(CircuitBreaker, HalfOpenProbeClosesOnSuccessReopensOnFailure) {
  serve::CircuitBreaker breaker(breaker_config(1));
  breaker.on_failure(0);
  ASSERT_TRUE(breaker.open());
  // The backoff is in [base, cap]; by base+cap steps it has surely elapsed.
  ASSERT_TRUE(breaker.allow(100));
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kHalfOpen);
  breaker.on_success();
  EXPECT_FALSE(breaker.open());

  breaker.on_failure(200);
  ASSERT_TRUE(breaker.allow(300));
  breaker.on_failure(300);  // failed probe: reopen, longer backoff
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.trips(), 3);
  EXPECT_FALSE(breaker.allow(301));
}

TEST(CircuitBreaker, BackoffScheduleIsDeterministic) {
  serve::CircuitBreaker a(breaker_config(1));
  serve::CircuitBreaker b(breaker_config(1));
  for (std::uint64_t step = 0; step < 200; step += 10) {
    a.on_failure(step);
    b.on_failure(step);
    for (std::uint64_t probe = step; probe < step + 10; ++probe)
      EXPECT_EQ(a.allow(probe), b.allow(probe)) << "step " << probe;
  }
  EXPECT_EQ(a.describe(), b.describe());
}

TEST(CircuitBreaker, ConfigValidateRejectsBadValues) {
  serve::BreakerConfig config;
  config.trip_after = 0;
  EXPECT_THROW(serve::CircuitBreaker{config}, std::runtime_error);
  config = {};
  config.backoff_base_steps = 10;
  config.backoff_cap_steps = 5;
  EXPECT_THROW(serve::CircuitBreaker{config}, std::runtime_error);
}

// ---- Server state machine --------------------------------------------------

/// Detector trained on the reduced mini-program grid, shared across the
/// server tests (training costs a few seconds once).
const core::FalseSharingDetector& shared_detector() {
  static const core::FalseSharingDetector detector = [] {
    core::FalseSharingDetector d;
    d.train(core::collect_training_data(core::TrainingConfig::reduced()));
    return d;
  }();
  return detector;
}

serve::ServeConfig small_config() {
  serve::ServeConfig config;
  config.queue_depth = 8;
  config.max_sessions = 4;
  config.max_batches = 8;
  config.deadline_steps = 50;
  config.idle_timeout_steps = 20;
  config.max_retry_after = 2;
  return config;
}

TEST(ServeServer, ConfigValidateRejectsBadValues) {
  par::ThreadPool pool(1);
  serve::ServeConfig config = small_config();
  config.queue_depth = 0;
  EXPECT_THROW(serve::Server(shared_detector(), pool, config),
               std::runtime_error);
  config = small_config();
  config.shed_watermark = 0.9;
  config.abstain_watermark = 0.5;  // must be >= shed
  EXPECT_THROW(serve::Server(shared_detector(), pool, config),
               std::runtime_error);
}

TEST(ServeServer, SessionReachesTerminalVerdictOrAbstention) {
  par::ThreadPool pool(1);
  serve::Server server(shared_detector(), pool, small_config());
  ASSERT_EQ(server.open_session(1, 0).admission, serve::Admission::kAdmitted);
  for (std::uint64_t j = 0; j < 3; ++j)
    ASSERT_EQ(server.submit(1, full_batch(1.0 + 0.1 * j), j).status,
              serve::Submit::kAccepted);
  server.close_session(1, 3);
  std::vector<serve::SessionRecord> records;
  for (std::uint64_t step = 4; step < 10 && records.empty(); ++step) {
    auto out = server.tick(step, 4);
    records.insert(records.end(), out.begin(), out.end());
  }
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].id, 1u);
  EXPECT_TRUE(records[0].outcome == serve::Outcome::kVerdict ||
              records[0].outcome == serve::Outcome::kAbstained);
  EXPECT_EQ(server.snapshot().terminal_records(), 1u);
}

TEST(ServeServer, AdmissionCapGivesRetryAfter) {
  par::ThreadPool pool(1);
  serve::Server server(shared_detector(), pool, small_config());
  for (std::uint64_t id = 0; id < 4; ++id)
    ASSERT_EQ(server.open_session(id, 0).admission,
              serve::Admission::kAdmitted);
  const serve::AdmitResult r = server.open_session(99, 0);
  EXPECT_EQ(r.admission, serve::Admission::kRetryAfter);
  EXPECT_GT(r.retry_after_steps, 0u);
  EXPECT_EQ(server.open_session(2, 0).admission, serve::Admission::kDuplicate);
}

TEST(ServeServer, MalformedBatchQuarantinesSessionNotServer) {
  par::ThreadPool pool(1);
  serve::Server server(shared_detector(), pool, small_config());
  ASSERT_EQ(server.open_session(1, 0).admission, serve::Admission::kAdmitted);
  serve::SampleBatch garbage{{"Not_A_Westmere_Event", 1.0}};
  const serve::SubmitResult r = server.submit(1, garbage, 1);
  EXPECT_EQ(r.status, serve::Submit::kQuarantined);
  EXPECT_NE(r.detail.find("unknown event"), std::string::npos);
  // The session is terminally gone; the server keeps serving.
  EXPECT_EQ(server.submit(1, full_batch(), 2).status,
            serve::Submit::kUnknownSession);
  ASSERT_EQ(server.open_session(2, 2).admission, serve::Admission::kAdmitted);
  const auto records = server.tick(3, 4);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, serve::Outcome::kQuarantined);
  EXPECT_EQ(server.snapshot().quarantined, 1u);
}

TEST(ServeServer, DeadlineAndIdleTimeoutsProduceExpiredRecords) {
  par::ThreadPool pool(1);
  serve::ServeConfig config = small_config();
  config.deadline_steps = 30;
  config.idle_timeout_steps = 5;
  serve::Server server(shared_detector(), pool, config);
  // Session 1 goes idle (never closed, no activity past step 0); session 2
  // keeps submitting but overruns the absolute deadline.
  ASSERT_EQ(server.open_session(1, 0).admission, serve::Admission::kAdmitted);
  ASSERT_EQ(server.open_session(2, 0).admission, serve::Admission::kAdmitted);
  std::vector<serve::SessionRecord> records;
  for (std::uint64_t step = 1; step <= 31; ++step) {
    if (step % 3 == 0) server.submit(2, full_batch(), step);
    auto out = server.tick(step, 4);
    records.insert(records.end(), out.begin(), out.end());
  }
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, 1u);
  EXPECT_EQ(records[0].outcome, serve::Outcome::kExpired);
  EXPECT_LE(records[0].final_step, 6u);  // idle fired, not the deadline
  EXPECT_EQ(records[1].id, 2u);
  EXPECT_EQ(records[1].outcome, serve::Outcome::kExpired);
  EXPECT_EQ(records[1].final_step, 30u);
}

TEST(ServeServer, CancelledSessionFinalizesWithCancelledRecord) {
  par::ThreadPool pool(1);
  serve::Server server(shared_detector(), pool, small_config());
  ASSERT_EQ(server.open_session(1, 0).admission, serve::Admission::kAdmitted);
  server.submit(1, full_batch(), 1);
  server.cancel_session(1);
  const auto records = server.tick(2, 4);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, serve::Outcome::kCancelled);
}

TEST(ServeServer, QueuePressureDegradesNewSessionsToShed) {
  par::ThreadPool pool(1);
  serve::ServeConfig config = small_config();
  config.queue_depth = 4;
  config.shed_watermark = 0.5;
  config.abstain_watermark = 1.0;
  serve::Server server(shared_detector(), pool, config);
  ASSERT_EQ(server.open_session(1, 0).admission, serve::Admission::kAdmitted);
  for (std::uint64_t j = 0; j < 3; ++j)
    ASSERT_EQ(server.submit(1, full_batch(), 1).status,
              serve::Submit::kAccepted);
  EXPECT_EQ(server.state(), serve::ServerState::kShedding);
  const serve::AdmitResult late = server.open_session(2, 1);
  EXPECT_EQ(late.admission, serve::Admission::kDegraded);
  server.close_session(2, 2);
  // No service this tick (rate 0 processes nothing), but the degraded
  // session still finalizes — to an explicit shed abstention.
  std::vector<serve::SessionRecord> records;
  for (std::uint64_t step = 2; step < 6 && records.empty(); ++step)
    records = server.tick(step, 0);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].id, 2u);
  EXPECT_EQ(records[0].outcome, serve::Outcome::kShed);
}

TEST(ServeServer, PersistentOverflowShedsTheSession) {
  par::ThreadPool pool(1);
  serve::ServeConfig config = small_config();
  config.queue_depth = 1;
  config.max_retry_after = 1;
  config.shed_watermark = 1.0;
  config.abstain_watermark = 1.0;
  serve::Server server(shared_detector(), pool, config);
  ASSERT_EQ(server.open_session(1, 0).admission, serve::Admission::kAdmitted);
  ASSERT_EQ(server.submit(1, full_batch(), 1).status, serve::Submit::kAccepted);
  const serve::SubmitResult first = server.submit(1, full_batch(), 1);
  EXPECT_EQ(first.status, serve::Submit::kRetryAfter);
  EXPECT_GT(first.retry_after_steps, 0u);
  EXPECT_EQ(server.submit(1, full_batch(), 2).status,
            serve::Submit::kRetryAfter);  // beyond max_retry_after: shed
  server.close_session(1, 3);
  const auto records = server.drain(4, 4);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, serve::Outcome::kShed);
  EXPECT_GE(server.snapshot().retry_afters, 2u);
}

TEST(ServeServer, ClassifyFaultsTripBreakerIntoAbstainOnly) {
  par::ThreadPool pool(1);
  fault::FaultPlan plan;
  plan.seed = 3;
  plan.throw_rate = 1.0;    // every classify attempt throws...
  plan.throw_attempts = 10;  // ...on all supervised retries
  const fault::FaultInjector injector(plan);
  serve::ServeConfig config = small_config();
  config.breaker.trip_after = 2;
  config.breaker.backoff_base_steps = 100;  // stays open for the whole test
  config.breaker.backoff_cap_steps = 100;
  serve::Server server(shared_detector(), pool, config, &injector);

  std::vector<serve::SessionRecord> records;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    // The breaker never *blocks* admission — once it is open, new sessions
    // are admitted degraded (destined for an explicit shed abstention).
    const serve::Admission admission =
        server.open_session(id, id * 10).admission;
    ASSERT_TRUE(admission == serve::Admission::kAdmitted ||
                admission == serve::Admission::kDegraded);
    server.submit(id, full_batch(), id * 10);
    server.close_session(id, id * 10 + 1);
    auto out = server.tick(id * 10 + 2, 4);
    records.insert(records.end(), out.begin(), out.end());
  }
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].outcome, serve::Outcome::kAbstained);
  EXPECT_EQ(records[1].outcome, serve::Outcome::kAbstained);
  // By the third session the breaker (trip_after=2) is open: abstain-only.
  EXPECT_EQ(records[2].outcome, serve::Outcome::kShed);
  const serve::HealthSnapshot health = server.snapshot();
  EXPECT_TRUE(health.breaker_open);
  EXPECT_EQ(health.state, serve::ServerState::kAbstainOnly);
  EXPECT_GT(health.classify_faults, 0u);
  EXPECT_GE(health.breaker_trips, 1);
}

TEST(ServeServer, DrainFinalizesEverySessionAndClosesAdmission) {
  par::ThreadPool pool(1);
  serve::Server server(shared_detector(), pool, small_config());
  for (std::uint64_t id = 1; id <= 3; ++id) {
    ASSERT_EQ(server.open_session(id, 0).admission,
              serve::Admission::kAdmitted);
    server.submit(id, full_batch(), 1);
    // Session 3 is never closed by its client — drain closes it.
  }
  const auto records = server.drain(2, 2);
  EXPECT_EQ(records.size(), 3u);
  const serve::HealthSnapshot health = server.snapshot();
  EXPECT_EQ(health.admitted, 3u);
  EXPECT_EQ(health.terminal_records(), 3u);
  EXPECT_EQ(health.open_sessions, 0u);
  EXPECT_EQ(server.open_session(9, 100).admission, serve::Admission::kClosed);
  EXPECT_EQ(server.state(), serve::ServerState::kDraining);
}

// ---- classify engine: flat kernel vs pointer-tree reference ----------------

/// One fixed client script against a server, returning the stable one-line
/// forms of every terminal record.
std::vector<std::string> run_script(serve::Server& server) {
  std::vector<std::string> lines;
  std::uint64_t step = 0;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    EXPECT_EQ(server.open_session(id, ++step).admission,
              serve::Admission::kAdmitted);
    for (std::uint64_t j = 0; j < 3; ++j)
      server.submit(id, full_batch(1.0 + 0.25 * static_cast<double>(id + j)),
                    ++step);
    server.close_session(id, ++step);
    // Service each session fully before the next opens, so the small test
    // queue never crosses the shed watermark.
    for (const serve::SessionRecord& r : server.tick(++step, 8))
      lines.push_back(r.to_string());
  }
  for (const serve::SessionRecord& r : server.drain(step + 1, 8))
    lines.push_back(r.to_string());
  return lines;
}

TEST(ServeServer, FlatAndPointerEnginesProduceIdenticalRecords) {
  par::ThreadPool pool(2);
  serve::ServeConfig flat_config = small_config();
  ASSERT_TRUE(flat_config.robust.use_flat_tree);  // the default engine
  serve::ServeConfig pointer_config = small_config();
  pointer_config.robust.use_flat_tree = false;

  serve::Server flat_server(shared_detector(), pool, flat_config);
  serve::Server pointer_server(shared_detector(), pool, pointer_config);
  EXPECT_EQ(run_script(flat_server), run_script(pointer_server));
}

TEST(ServeServer, SnapshotReportsClassifyEngineAndPercentiles) {
  par::ThreadPool pool(1);
  serve::Server server(shared_detector(), pool, small_config());
  run_script(server);
  const serve::HealthSnapshot health = server.snapshot();
  EXPECT_TRUE(health.use_flat_tree);
  EXPECT_GT(health.classify_calls, 0u);
  EXPECT_GT(health.classify_p50_us, 0.0);
  EXPECT_GE(health.classify_p99_us, health.classify_p50_us);
  EXPECT_NE(health.to_string().find("classify=flat"), std::string::npos);

  serve::ServeConfig pointer_config = small_config();
  pointer_config.robust.use_flat_tree = false;
  serve::Server pointer_server(shared_detector(), pool, pointer_config);
  run_script(pointer_server);
  const serve::HealthSnapshot reference = pointer_server.snapshot();
  EXPECT_FALSE(reference.use_flat_tree);
  EXPECT_NE(reference.to_string().find("classify=pointer"),
            std::string::npos);
}

}  // namespace
