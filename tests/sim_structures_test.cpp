// Unit tests for the simulator's building blocks: geometry, the
// set-associative tag store (LRU, eviction, invalidation), the DTLB, the
// drain queue and the line-fill buffer.
#include <gtest/gtest.h>

#include "sim/cache.hpp"
#include "sim/geometry.hpp"
#include "sim/store_buffer.hpp"
#include "sim/tlb.hpp"
#include "util/check.hpp"

namespace {

using namespace fsml;
using sim::MesiState;

// ---- geometry ---------------------------------------------------------------

TEST(Geometry, DerivedQuantities) {
  sim::CacheGeometry g{32 * 1024, 8, 64};
  g.validate();
  EXPECT_EQ(g.num_lines(), 512u);
  EXPECT_EQ(g.num_sets(), 64u);
}

TEST(Geometry, NonPowerOfTwoSetsSupported) {
  // Westmere's L3: 12 MiB / 16-way = 12288 sets.
  sim::CacheGeometry g{12 * 1024 * 1024, 16, 64};
  g.validate();
  EXPECT_EQ(g.num_sets(), 12288u);
  // set_index must stay within bounds for arbitrary addresses.
  for (sim::Addr a = 0; a < 1 << 22; a += 4093)
    EXPECT_LT(g.set_index(a), g.num_sets());
}

TEST(Geometry, LineAddrMasksOffset) {
  sim::CacheGeometry g{1024, 2, 64};
  EXPECT_EQ(g.line_addr(0x1234), 0x1200u);
  EXPECT_EQ(g.line_addr(0x1240), 0x1240u);
}

TEST(Geometry, SameSetSameTagMeansSameLine) {
  sim::CacheGeometry g{4096, 4, 64};
  const sim::Addr a = 0x10040, b = 0x10050;  // same line
  EXPECT_EQ(g.set_index(a), g.set_index(b));
  EXPECT_EQ(g.tag(a), g.tag(b));
}

TEST(Geometry, InvalidConfigsRejected) {
  sim::CacheGeometry zero{0, 8, 64};
  EXPECT_THROW(zero.validate(), util::CheckFailure);
  sim::CacheGeometry odd_line{1024, 2, 48};
  EXPECT_THROW(odd_line.validate(), util::CheckFailure);
  sim::CacheGeometry indivisible{1000, 3, 64};
  EXPECT_THROW(indivisible.validate(), util::CheckFailure);
}

// ---- cache tag store ---------------------------------------------------------

sim::Cache tiny_cache() { return sim::Cache({256, 2, 64}); }  // 2 sets, 2 ways

TEST(Cache, FillAndLookup) {
  sim::Cache c = tiny_cache();
  EXPECT_EQ(c.state_of(0x1000), MesiState::kInvalid);
  EXPECT_FALSE(c.fill(0x1000, MesiState::kExclusive).has_value());
  EXPECT_EQ(c.state_of(0x1000), MesiState::kExclusive);
  EXPECT_EQ(c.occupancy(), 1u);
}

TEST(Cache, SameLineDifferentOffsets) {
  sim::Cache c = tiny_cache();
  c.fill(0x1000, MesiState::kShared);
  EXPECT_EQ(c.state_of(0x103F), MesiState::kShared);
  EXPECT_EQ(c.state_of(0x1040), MesiState::kInvalid);
}

TEST(Cache, LruEvictionOrder) {
  sim::Cache c = tiny_cache();  // set stride = 128 bytes
  // Three lines mapping to set 0 (addresses 0x0, 0x80 apart... use 128B).
  c.fill(0x0000, MesiState::kExclusive);
  c.fill(0x0080, MesiState::kExclusive);
  c.touch(0x0000);  // 0x0000 is now MRU; 0x0080 is LRU
  const auto ev = c.fill(0x0100, MesiState::kExclusive);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, 0x0080u);
  EXPECT_EQ(c.state_of(0x0000), MesiState::kExclusive);
  EXPECT_EQ(c.state_of(0x0080), MesiState::kInvalid);
}

TEST(Cache, EvictionReportsState) {
  sim::Cache c = tiny_cache();
  c.fill(0x0000, MesiState::kModified);
  c.fill(0x0080, MesiState::kExclusive);
  const auto ev = c.fill(0x0100, MesiState::kShared);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->state, MesiState::kModified);
}

TEST(Cache, RefillingResidentLineUpdatesStateWithoutEviction) {
  sim::Cache c = tiny_cache();
  c.fill(0x0000, MesiState::kShared);
  const auto ev = c.fill(0x0000, MesiState::kModified);
  EXPECT_FALSE(ev.has_value());
  EXPECT_EQ(c.state_of(0x0000), MesiState::kModified);
  EXPECT_EQ(c.occupancy(), 1u);
}

TEST(Cache, InvalidateReturnsPriorState) {
  sim::Cache c = tiny_cache();
  c.fill(0x0000, MesiState::kModified);
  EXPECT_EQ(c.invalidate(0x0000), MesiState::kModified);
  EXPECT_EQ(c.invalidate(0x0000), MesiState::kInvalid);
  EXPECT_EQ(c.occupancy(), 0u);
}

TEST(Cache, SetStateRequiresResidency) {
  sim::Cache c = tiny_cache();
  EXPECT_THROW(c.set_state(0x0000, MesiState::kShared), util::CheckFailure);
}

TEST(Cache, ForEachLineVisitsAllValid) {
  sim::Cache c = tiny_cache();
  c.fill(0x0000, MesiState::kExclusive);
  c.fill(0x0040, MesiState::kShared);  // set 1
  std::size_t visited = 0;
  c.for_each_line([&](sim::Addr addr, MesiState s) {
    ++visited;
    EXPECT_EQ(c.state_of(addr), s);
  });
  EXPECT_EQ(visited, 2u);
}

TEST(Cache, FillPrefersInvalidWays) {
  sim::Cache c = tiny_cache();
  c.fill(0x0000, MesiState::kExclusive);
  c.invalidate(0x0000);
  c.fill(0x0080, MesiState::kExclusive);
  // Set 0 has one invalid way; filling must not evict 0x0080.
  const auto ev = c.fill(0x0100, MesiState::kExclusive);
  EXPECT_FALSE(ev.has_value());
  EXPECT_EQ(c.state_of(0x0080), MesiState::kExclusive);
}

// ---- dtlb --------------------------------------------------------------------

TEST(Dtlb, HitAfterInstall) {
  sim::Dtlb tlb(8, 2, 4096);
  EXPECT_FALSE(tlb.access(0x1000));  // cold miss installs
  EXPECT_TRUE(tlb.access(0x1000));
  EXPECT_TRUE(tlb.access(0x1FFF));  // same page
  EXPECT_FALSE(tlb.access(0x2000));  // next page
}

TEST(Dtlb, CapacityEviction) {
  sim::Dtlb tlb(4, 4, 4096);  // 1 set, 4 ways
  for (sim::Addr p = 0; p < 5; ++p) tlb.access(p * 4096);
  EXPECT_FALSE(tlb.access(0));  // page 0 was LRU-evicted by page 4
}

TEST(Dtlb, LruKeepsHotPages) {
  sim::Dtlb tlb(4, 4, 4096);
  for (sim::Addr p = 0; p < 4; ++p) tlb.access(p * 4096);
  tlb.access(0);                  // refresh page 0
  tlb.access(5 * 4096);           // evicts page 1 (LRU), not page 0
  EXPECT_TRUE(tlb.access(0));
  EXPECT_FALSE(tlb.access(1 * 4096));
}

TEST(Dtlb, ResetForgetsEverything) {
  sim::Dtlb tlb(8, 2, 4096);
  tlb.access(0x1000);
  tlb.reset();
  EXPECT_FALSE(tlb.access(0x1000));
}

// ---- drain queue --------------------------------------------------------------

TEST(DrainQueue, NoStallBelowCapacity) {
  sim::DrainQueue q(4, 1);
  for (int i = 0; i < 3; ++i) q.push(0, 100);
  q.retire_completed(0);
  EXPECT_EQ(q.stall_until_slot(0), 0u);
}

TEST(DrainQueue, StallsWhenFullUntilEarliestCompletion) {
  sim::DrainQueue q(2, 1);
  q.push(0, 10);   // completes at 10
  q.push(0, 10);   // serialized on one port: completes at 20
  q.retire_completed(5);
  EXPECT_EQ(q.stall_until_slot(5), 5u);  // wait until t=10
  q.retire_completed(10);
  EXPECT_EQ(q.stall_until_slot(10), 0u);
}

TEST(DrainQueue, PortsDrainInParallel) {
  sim::DrainQueue q(8, 4);
  // Four drains issued together with 4 ports: all complete at t=100.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.push(0, 100), 100u);
  // The fifth must wait for a port: completes at 200.
  EXPECT_EQ(q.push(0, 100), 200u);
}

TEST(DrainQueue, SlowDrainDoesNotBlockFastOnesOnOtherPorts) {
  sim::DrainQueue q(8, 2);
  EXPECT_EQ(q.push(0, 1000), 1000u);  // port A busy until 1000
  EXPECT_EQ(q.push(0, 5), 5u);        // port B: immediate
  EXPECT_EQ(q.push(10, 5), 15u);      // port B again at t=10
}

TEST(DrainQueue, RetireDropsCompleted) {
  sim::DrainQueue q(2, 2);
  q.push(0, 5);
  q.push(0, 7);
  q.retire_completed(6);
  EXPECT_EQ(q.size(), 1u);
  q.retire_completed(7);
  EXPECT_TRUE(q.empty());
}

// ---- line fill buffer ----------------------------------------------------------

TEST(LineFillBuffer, TracksPendingFills) {
  sim::LineFillBuffer lfb(4);
  lfb.insert(0x1000, 50, 0);
  EXPECT_TRUE(lfb.pending_fill(0x1000, 10).has_value());
  EXPECT_EQ(*lfb.pending_fill(0x1000, 10), 50u);
  EXPECT_FALSE(lfb.pending_fill(0x2000, 10).has_value());
}

TEST(LineFillBuffer, ExpiresCompletedFills) {
  sim::LineFillBuffer lfb(4);
  lfb.insert(0x1000, 50, 0);
  EXPECT_FALSE(lfb.pending_fill(0x1000, 50).has_value());
}

TEST(LineFillBuffer, MergingKeepsLatestCompletion) {
  sim::LineFillBuffer lfb(4);
  lfb.insert(0x1000, 50, 0);
  lfb.insert(0x1000, 80, 0);
  EXPECT_EQ(*lfb.pending_fill(0x1000, 10), 80u);
  EXPECT_EQ(lfb.size(), 1u);
}

TEST(LineFillBuffer, RecyclesOldestWhenFull) {
  sim::LineFillBuffer lfb(2);
  lfb.insert(0x1000, 100, 0);
  lfb.insert(0x2000, 200, 0);
  lfb.insert(0x3000, 300, 0);  // recycles the 0x1000 entry
  EXPECT_FALSE(lfb.pending_fill(0x1000, 0).has_value());
  EXPECT_TRUE(lfb.pending_fill(0x2000, 0).has_value());
  EXPECT_TRUE(lfb.pending_fill(0x3000, 0).has_value());
}

}  // namespace
